package rtmdm

import (
	"os"
	"reflect"
	"regexp"
	"strings"
	"testing"

	"rtmdm/internal/analysis"
	"rtmdm/internal/cluster"
	"rtmdm/internal/corpus"
	"rtmdm/internal/dse"
	"rtmdm/internal/exec"
	"rtmdm/internal/expr"
	"rtmdm/internal/lint"
	"rtmdm/internal/metrics"
	"rtmdm/internal/server"
	"rtmdm/internal/workload"
)

// allMetricNames registers every instrumented package on one registry and
// returns the full set of metric names the process can expose.
func allMetricNames() map[string]bool {
	reg := metrics.NewRegistry()
	exec.Instrument(reg)
	dse.Instrument(reg)
	expr.Instrument(reg)
	workload.Instrument(reg)
	analysis.Instrument(reg)
	cluster.Instrument(reg)
	corpus.Instrument(reg)
	server.RegisterMetrics(reg)
	cluster.RegisterMetrics(reg)
	defer func() {
		exec.Instrument(nil)
		dse.Instrument(nil)
		expr.Instrument(nil)
		workload.Instrument(nil)
		analysis.Instrument(nil)
		cluster.Instrument(nil)
		corpus.Instrument(nil)
	}()
	names := map[string]bool{}
	for _, s := range reg.Snapshot().Samples {
		names[s.Name] = true
	}
	return names
}

// metricName matches the catalogue entries in docs/OBSERVABILITY.md:
// backticked dotted identifiers like `exec.jobs_released`, scoped to the
// instrumented-package namespaces so file names like `out.json` don't count.
var metricName = regexp.MustCompile("`((?:sim|exec|dse|expr|workload|server|analysis|gateway|cluster|corpus)\\.[a-z0-9_]+)`")

// TestObservabilityDocMatchesRegistry keeps docs/OBSERVABILITY.md and the
// registry in lockstep, both directions: every metric named in the doc must
// exist, and every registered metric must be documented.
func TestObservabilityDocMatchesRegistry(t *testing.T) {
	doc, err := os.ReadFile("docs/OBSERVABILITY.md")
	if err != nil {
		t.Fatal(err)
	}
	documented := map[string]bool{}
	for _, m := range metricName.FindAllStringSubmatch(string(doc), -1) {
		documented[m[1]] = true
	}
	registered := allMetricNames()
	for name := range documented {
		if !registered[name] {
			t.Errorf("docs/OBSERVABILITY.md names %q, which is not in the registry", name)
		}
	}
	for name := range registered {
		if !documented[name] {
			t.Errorf("metric %q is registered but missing from docs/OBSERVABILITY.md", name)
		}
	}
}

// TestCorpusDocMatchesSpec keeps the spec-field table in docs/CORPUS.md
// and the corpus.Spec struct in lockstep, both directions: every JSON
// field the spec accepts must be documented, and every documented field
// must exist. The declared side comes from reflection over Spec's json
// tags, so adding an axis without documenting it fails here.
func TestCorpusDocMatchesSpec(t *testing.T) {
	doc, err := os.ReadFile("docs/CORPUS.md")
	if err != nil {
		t.Fatal(err)
	}
	// Table rows whose first column is a backticked snake_case field name.
	rowRe := regexp.MustCompile("(?m)^\\| `([a-z0-9_]+)` \\|")
	documented := map[string]bool{}
	for _, m := range rowRe.FindAllStringSubmatch(string(doc), -1) {
		documented[m[1]] = true
	}
	declared := map[string]bool{}
	st := reflect.TypeOf(corpus.Spec{})
	for i := 0; i < st.NumField(); i++ {
		name, _, _ := strings.Cut(st.Field(i).Tag.Get("json"), ",")
		if name == "" || name == "-" {
			t.Errorf("corpus.Spec field %s has no json name; the spec format is public", st.Field(i).Name)
			continue
		}
		declared[name] = true
	}
	for name := range declared {
		if !documented[name] {
			t.Errorf("corpus.Spec field %q is missing from docs/CORPUS.md's spec-field table", name)
		}
	}
	for name := range documented {
		if !declared[name] {
			t.Errorf("docs/CORPUS.md documents spec field %q, which corpus.Spec does not declare", name)
		}
	}
}

// TestRobustnessDocNamesExist keeps docs/ROBUSTNESS.md honest in one
// direction: every metric it mentions must exist in the registry (the
// catalogue itself lives in OBSERVABILITY.md, so full coverage is not
// required here).
func TestRobustnessDocNamesExist(t *testing.T) {
	doc, err := os.ReadFile("docs/ROBUSTNESS.md")
	if err != nil {
		t.Fatal(err)
	}
	registered := allMetricNames()
	for _, m := range metricName.FindAllStringSubmatch(string(doc), -1) {
		if !registered[m[1]] {
			t.Errorf("docs/ROBUSTNESS.md names %q, which is not in the registry", m[1])
		}
	}
}

// TestClusterDocMatchesGateway keeps the endpoint table in
// docs/CLUSTER.md and the gateway's mounted route table (cluster.Routes)
// in lockstep, both directions. Only the "## Gateway endpoints" section
// is scanned — the doc also names rtmdm-serve routes (like
// `GET /v1/snapshot`) elsewhere, which are pinned by SERVER.md.
func TestClusterDocMatchesGateway(t *testing.T) {
	doc, err := os.ReadFile("docs/CLUSTER.md")
	if err != nil {
		t.Fatal(err)
	}
	section := string(doc)
	if i := strings.Index(section, "## Gateway endpoints"); i >= 0 {
		section = section[i:]
		if j := strings.Index(section[1:], "\n## "); j >= 0 {
			section = section[:j+1]
		}
	} else {
		t.Fatal("docs/CLUSTER.md has no \"## Gateway endpoints\" section")
	}
	routeRe := regexp.MustCompile("`((?:GET|POST) /[a-z0-9/]+)`")
	documented := map[string]bool{}
	for _, m := range routeRe.FindAllStringSubmatch(section, -1) {
		documented[m[1]] = true
	}
	for _, route := range cluster.Routes() {
		if !documented[route] {
			t.Errorf("gateway route %q is missing from docs/CLUSTER.md's endpoint section", route)
		}
	}
	for route := range documented {
		found := false
		for _, r := range cluster.Routes() {
			if r == route {
				found = true
			}
		}
		if !found {
			t.Errorf("docs/CLUSTER.md documents route %q, which the gateway does not mount", route)
		}
	}
}

// TestServerDocMatchesRoutes keeps the "### `METHOD /path`" endpoint
// sections in docs/SERVER.md and rtmdm-serve's mounted route table
// (server.Routes) in lockstep, both directions.
func TestServerDocMatchesRoutes(t *testing.T) {
	doc, err := os.ReadFile("docs/SERVER.md")
	if err != nil {
		t.Fatal(err)
	}
	sectionRe := regexp.MustCompile("(?m)^### `((?:GET|POST) /[a-z0-9/]+)`$")
	documented := map[string]bool{}
	for _, m := range sectionRe.FindAllStringSubmatch(string(doc), -1) {
		documented[m[1]] = true
	}
	for _, route := range server.Routes() {
		if !documented[route] {
			t.Errorf("server route %q has no endpoint section in docs/SERVER.md", route)
		}
	}
	for route := range documented {
		found := false
		for _, r := range server.Routes() {
			if r == route {
				found = true
			}
		}
		if !found {
			t.Errorf("docs/SERVER.md documents route %q, which rtmdm-serve does not mount", route)
		}
	}
}

// TestStaticAnalysisDocMatchesAnalyzers keeps docs/STATIC_ANALYSIS.md and
// the lint suite in lockstep: every registered analyzer must have a
// "### `name`" section, and every such section must name a registered
// analyzer.
func TestStaticAnalysisDocMatchesAnalyzers(t *testing.T) {
	doc, err := os.ReadFile("docs/STATIC_ANALYSIS.md")
	if err != nil {
		t.Fatal(err)
	}
	sectionRe := regexp.MustCompile("(?m)^### `([a-z]+)`$")
	documented := map[string]bool{}
	for _, m := range sectionRe.FindAllStringSubmatch(string(doc), -1) {
		documented[m[1]] = true
	}
	registered := lint.Names()
	for _, name := range registered {
		if !documented[name] {
			t.Errorf("analyzer %q has no section in docs/STATIC_ANALYSIS.md", name)
		}
	}
	for name := range documented {
		found := false
		for _, r := range registered {
			if r == name {
				found = true
			}
		}
		if !found {
			t.Errorf("docs/STATIC_ANALYSIS.md documents %q, which is not a registered analyzer (lint.Names() = %s)",
				name, strings.Join(registered, ", "))
		}
	}
}

// TestDisabledInstrumentationAllocFree pins the zero-overhead-when-disabled
// guarantee at the top of the stack: instrumenting the process and then
// disabling it again must leave a full case-study simulation with exactly
// the allocation profile of a never-instrumented run.
func TestDisabledInstrumentationAllocFree(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc accounting is wall-time sensitive; skipped in -short")
	}
	plat := DefaultPlatform()
	pol := RTMDM()
	set, err := NewSystem(plat, pol).
		AddTask("kws", "ds-cnn", 50*Millisecond).
		AddTask("det", "mobilenetv1-0.25", 150*Millisecond).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	run := func() {
		if _, err := Simulate(set, plat, pol, 200*Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm the engine pool and offline caches
	baseline := testing.AllocsPerRun(5, run)

	// Round-trip through an enabled registry, then disable again.
	reg := metrics.NewRegistry()
	exec.Instrument(reg)
	run()
	exec.Instrument(nil)
	disabled := testing.AllocsPerRun(5, run)

	if disabled != baseline {
		t.Fatalf("disabled instrumentation changed the alloc profile: %.0f allocs/op, baseline %.0f",
			disabled, baseline)
	}
}
