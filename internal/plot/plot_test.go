package plot

import (
	"strings"
	"testing"
)

func chart() *Chart {
	return &Chart{
		Title: "demo", XLabel: "util", YLabel: "percent",
		Series: []Series{
			{Label: "a", X: []float64{0.2, 0.4, 0.6}, Y: []float64{100, 80, 20}},
			{Label: "b", X: []float64{0.2, 0.4, 0.6}, Y: []float64{90, 50, 0}},
		},
		YMax: 100,
	}
}

func TestRenderProducesValidSVGStructure(t *testing.T) {
	var sb strings.Builder
	if err := chart().Render(&sb); err != nil {
		t.Fatal(err)
	}
	svg := sb.String()
	for _, want := range []string{
		"<svg", "</svg>", "demo", "util", "percent",
		`<polyline`, `<circle`, ">a</text>", ">b</text>",
	} {
		if !strings.Contains(svg, want) {
			t.Fatalf("svg missing %q:\n%s", want, svg[:200])
		}
	}
	if got := strings.Count(svg, "<polyline"); got != 2 {
		t.Fatalf("polylines = %d, want 2", got)
	}
	if got := strings.Count(svg, "<circle"); got != 6 {
		t.Fatalf("markers = %d, want 6", got)
	}
}

func TestRenderIsDeterministic(t *testing.T) {
	var a, b strings.Builder
	if err := chart().Render(&a); err != nil {
		t.Fatal(err)
	}
	if err := chart().Render(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("SVG output not deterministic")
	}
}

func TestRenderRejectsBadSeries(t *testing.T) {
	c := &Chart{Series: []Series{{Label: "x", X: []float64{1}, Y: []float64{1, 2}}}}
	var sb strings.Builder
	if err := c.Render(&sb); err == nil {
		t.Fatal("mismatched series accepted")
	}
	if err := (&Chart{}).Render(&sb); err == nil {
		t.Fatal("empty chart accepted")
	}
}

func TestRenderEscapesMarkup(t *testing.T) {
	c := chart()
	c.Title = "a<b&c"
	var sb strings.Builder
	if err := c.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "a<b") {
		t.Fatal("title not escaped")
	}
	if !strings.Contains(sb.String(), "a&lt;b&amp;c") {
		t.Fatal("escaped title missing")
	}
}

func TestFromTablePercentColumns(t *testing.T) {
	cols := []string{"util", "npfp", "rt-mdm", "note"}
	rows := [][]string{
		{"0.20", "60.5%", "100.0%", "x"},
		{"0.40", "28.5%", "98.5%", "y"},
		{"0.60", "3.0%", "84.5%", "z"},
	}
	ch, err := FromTable("F4", cols, rows)
	if err != nil {
		t.Fatal(err)
	}
	if len(ch.Series) != 2 {
		t.Fatalf("series = %d, want 2 (note column skipped)", len(ch.Series))
	}
	if ch.YMax != 100 || ch.YLabel != "percent" {
		t.Fatalf("percent axis not detected: %v %q", ch.YMax, ch.YLabel)
	}
	if ch.Series[1].Y[2] != 84.5 {
		t.Fatalf("parsed y = %v", ch.Series[1].Y)
	}
	var sb strings.Builder
	if err := ch.Render(&sb); err != nil {
		t.Fatal(err)
	}
}

func TestFromTableRejectsUnplottable(t *testing.T) {
	if _, err := FromTable("x", []string{"a", "b"}, [][]string{{"foo", "1"}}); err == nil {
		t.Fatal("non-numeric x accepted")
	}
	if _, err := FromTable("x", []string{"a", "b"}, [][]string{{"1", "foo"}}); err == nil {
		t.Fatal("table with no numeric series accepted")
	}
	if _, err := FromTable("x", []string{"a"}, nil); err == nil {
		t.Fatal("empty table accepted")
	}
}

func TestFromTableMixedUnits(t *testing.T) {
	cols := []string{"bw", "lat(ms)"}
	rows := [][]string{{"16", "1.5"}, {"32", "1.2"}}
	ch, err := FromTable("F3", cols, rows)
	if err != nil {
		t.Fatal(err)
	}
	if ch.YMax != 0 || ch.YLabel != "value" {
		t.Fatal("non-percent table forced percent axis")
	}
}
