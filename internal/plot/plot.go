// Package plot renders experiment tables as standalone SVG line charts —
// the figures of the reconstructed evaluation. Stdlib only: the SVG is
// assembled textually with numeric formatting kept deterministic.
package plot

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Series is one labelled line.
type Series struct {
	Label string
	X, Y  []float64
}

// Chart is a complete figure.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
	// YMax forces the y-axis top (0 = auto).
	YMax float64
}

// palette cycles through distinguishable stroke colors.
var palette = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b", "#17becf",
}

const (
	width   = 720.0
	height  = 440.0
	marginL = 70.0
	marginR = 170.0
	marginT = 50.0
	marginB = 55.0
)

// Render writes the chart as an SVG document.
func (c *Chart) Render(w io.Writer) error {
	if len(c.Series) == 0 {
		return fmt.Errorf("plot: no series")
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := 0.0, math.Inf(-1)
	for _, s := range c.Series {
		if len(s.X) == 0 || len(s.X) != len(s.Y) {
			return fmt.Errorf("plot: series %q has %d x / %d y points", s.Label, len(s.X), len(s.Y))
		}
		for i := range s.X {
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			ymax = math.Max(ymax, s.Y[i])
		}
	}
	if c.YMax > 0 {
		ymax = c.YMax
	}
	if ymax <= ymin {
		ymax = ymin + 1
	}
	if xmax <= xmin {
		xmax = xmin + 1
	}

	plotW := width - marginL - marginR
	plotH := height - marginT - marginB
	px := func(x float64) float64 { return marginL + (x-xmin)/(xmax-xmin)*plotW }
	py := func(y float64) float64 { return marginT + plotH - (y-ymin)/(ymax-ymin)*plotH }
	f := func(v float64) string { return strconv.FormatFloat(v, 'f', 2, 64) }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%g" height="%g" viewBox="0 0 %g %g">`+"\n",
		width, height, width, height)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	fmt.Fprintf(&b, `<text x="%g" y="24" font-family="sans-serif" font-size="15" font-weight="bold">%s</text>`+"\n",
		marginL, escape(c.Title))

	// Gridlines and ticks: 5 divisions each axis.
	for i := 0; i <= 5; i++ {
		gx := xmin + (xmax-xmin)*float64(i)/5
		gy := ymin + (ymax-ymin)*float64(i)/5
		fmt.Fprintf(&b, `<line x1="%s" y1="%g" x2="%s" y2="%g" stroke="#ddd"/>`+"\n",
			f(px(gx)), marginT, f(px(gx)), marginT+plotH)
		fmt.Fprintf(&b, `<line x1="%g" y1="%s" x2="%g" y2="%s" stroke="#ddd"/>`+"\n",
			marginL, f(py(gy)), marginL+plotW, f(py(gy)))
		fmt.Fprintf(&b, `<text x="%s" y="%g" font-family="sans-serif" font-size="11" text-anchor="middle">%s</text>`+"\n",
			f(px(gx)), marginT+plotH+18, trimFloat(gx))
		fmt.Fprintf(&b, `<text x="%g" y="%s" font-family="sans-serif" font-size="11" text-anchor="end">%s</text>`+"\n",
			marginL-8, f(py(gy)+4), trimFloat(gy))
	}
	// Axes.
	fmt.Fprintf(&b, `<rect x="%g" y="%g" width="%g" height="%g" fill="none" stroke="#333"/>`+"\n",
		marginL, marginT, plotW, plotH)
	fmt.Fprintf(&b, `<text x="%g" y="%g" font-family="sans-serif" font-size="12" text-anchor="middle">%s</text>`+"\n",
		marginL+plotW/2, height-12, escape(c.XLabel))
	fmt.Fprintf(&b, `<text x="16" y="%g" font-family="sans-serif" font-size="12" text-anchor="middle" transform="rotate(-90 16 %g)">%s</text>`+"\n",
		marginT+plotH/2, marginT+plotH/2, escape(c.YLabel))

	// Series.
	for si, s := range c.Series {
		color := palette[si%len(palette)]
		var pts []string
		for i := range s.X {
			pts = append(pts, f(px(s.X[i]))+","+f(py(s.Y[i])))
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"/>`+"\n",
			strings.Join(pts, " "), color)
		for i := range s.X {
			fmt.Fprintf(&b, `<circle cx="%s" cy="%s" r="3" fill="%s"/>`+"\n",
				f(px(s.X[i])), f(py(s.Y[i])), color)
		}
		// Legend entry.
		ly := marginT + 16 + float64(si)*20
		fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="%s" stroke-width="2"/>`+"\n",
			marginL+plotW+12, ly, marginL+plotW+36, ly, color)
		fmt.Fprintf(&b, `<text x="%g" y="%g" font-family="sans-serif" font-size="12">%s</text>`+"\n",
			marginL+plotW+42, ly+4, escape(s.Label))
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func trimFloat(v float64) string {
	s := strconv.FormatFloat(v, 'f', 2, 64)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}

// FromTable interprets a table whose first column is numeric (the x axis)
// and whose remaining numeric/percent columns become series. Non-numeric
// columns are skipped; it errors when nothing plottable remains.
func FromTable(title string, columns []string, rows [][]string) (*Chart, error) {
	if len(rows) == 0 || len(columns) < 2 {
		return nil, fmt.Errorf("plot: table too small")
	}
	parse := func(cell string) (float64, bool) {
		cell = strings.TrimSuffix(strings.TrimSpace(cell), "%")
		v, err := strconv.ParseFloat(cell, 64)
		return v, err == nil
	}
	var xs []float64
	for _, row := range rows {
		x, ok := parse(row[0])
		if !ok {
			return nil, fmt.Errorf("plot: non-numeric x cell %q", row[0])
		}
		xs = append(xs, x)
	}
	ch := &Chart{Title: title, XLabel: columns[0], YLabel: "value"}
	percentY := true
	for col := 1; col < len(columns); col++ {
		var ys []float64
		ok := true
		for _, row := range rows {
			v, good := parse(row[col])
			if !good {
				ok = false
				break
			}
			ys = append(ys, v)
			if !strings.HasSuffix(strings.TrimSpace(row[col]), "%") {
				percentY = false
			}
		}
		if ok {
			ch.Series = append(ch.Series, Series{Label: columns[col], X: xs, Y: ys})
		}
	}
	if len(ch.Series) == 0 {
		return nil, fmt.Errorf("plot: no numeric series in table")
	}
	if percentY {
		ch.YLabel = "percent"
		ch.YMax = 100
	}
	return ch, nil
}
