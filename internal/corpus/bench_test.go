package corpus

import (
	"context"
	"testing"
)

// BenchmarkCorpusThroughput measures the end-to-end differential check —
// generation, cold + incremental analysis, nominal simulation, faulted
// simulation where drawn — cycling through a warm 64-instance slice of
// the smoke corpus. ns/op is the steady-state cost of one oracle check;
// recorded numbers live in docs/PERFORMANCE.md. The first pass over the
// slice warms the model/segmentation/spec caches, which is also the
// runner's steady state (workers share those caches process-wide).
func BenchmarkCorpusThroughput(b *testing.B) {
	spec := SmokeSpec()
	spec.Count = 64
	gen, err := NewGenerator(spec)
	if err != nil {
		b.Fatal(err)
	}
	o := NewOracle(gen)
	ctx := context.Background()
	for i := 0; i < gen.Count(); i++ {
		if out := o.Check(ctx, i); out.Class == ClassViolation {
			b.Fatalf("index %d: %v", i, out.Violations)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := o.Check(ctx, i%gen.Count()); out.Class == ClassViolation {
			b.Fatalf("index %d: %v", i%gen.Count(), out.Violations)
		}
	}
}
