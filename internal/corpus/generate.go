package corpus

import (
	"fmt"

	"rtmdm/internal/cost"
	"rtmdm/internal/fault"
	"rtmdm/internal/scenario"
	"rtmdm/internal/sim"
	"rtmdm/internal/workload"
)

// Axis classes for the per-scenario hash draws. Every generation
// decision is a pure splitmix64 hash of (spec seed, axis class, scenario
// index, sub-coordinate) — the internal/fault hash-decision idiom — so
// scenario i is independent of every other index: reordering, resuming,
// or extending the corpus never re-rolls an existing instance.
const (
	axisUtil uint64 = iota + 1
	axisTaskCount
	axisPolicy
	axisPlatform
	axisHorizon
	axisDeadline
	axisOffsetGate
	axisOffset
	axisFaultProfile
	axisOverrun
	axisWorkloadSeed
	axisFaultSeed
)

// mix64 is the splitmix64 finalizer (same constants as internal/fault).
func mix64(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// unit maps a hash to a uniform float64 in [0, 1).
func unit(h uint64) float64 { return float64(h>>11) / (1 << 53) }

// faultProfiles are the named fault.Config templates the fault_profiles
// axis selects from; the per-scenario fault seed is drawn separately.
// Rates are deliberately aggressive — faulted runs only check that the
// executor survives, not that deadlines hold.
var faultProfiles = map[string]fault.Config{
	"none": {},
	"overrun": {
		OverrunRate:   0.10,
		OverrunFactor: 1.5,
	},
	"overrun-heavy": {
		OverrunRate:      0.35,
		OverrunFactor:    1.5,
		OverrunFactorMax: 3.0,
	},
	"jitter": {
		ReleaseJitterRate:  0.25,
		ReleaseJitterMaxMs: 2,
	},
	"dma": {
		DMASlowdownRatePerSec: 40,
		DMASlowdownMs:         1,
		DMASlowdownFactor:     2.5,
	},
	"xfer": {
		TransferFaultRate: 0.02,
		MaxRetries:        3,
	},
	"mixed": {
		OverrunRate:           0.05,
		OverrunFactor:         1.3,
		ReleaseJitterRate:     0.10,
		ReleaseJitterMaxMs:    1,
		DMASlowdownRatePerSec: 10,
		DMASlowdownMs:         0.5,
		DMASlowdownFactor:     2,
		TransferFaultRate:     0.01,
	},
}

// FaultProfileNames returns the known profile names, sorted.
func FaultProfileNames() []string {
	return []string{"dma", "jitter", "mixed", "none", "overrun", "overrun-heavy", "xfer"}
}

// Axes records the per-axis values drawn for one scenario instance, so
// violation reports and the manifest say *why* a scenario looks the way
// it does without re-deriving the draws.
type Axes struct {
	Util         float64 `json:"util"`
	TaskCount    int     `json:"task_count"`
	Policy       string  `json:"policy"`
	Platform     string  `json:"platform"`
	HorizonMs    float64 `json:"horizon_ms"`
	DeadlineFrac float64 `json:"deadline_frac"`
	Offsets      bool    `json:"offsets"`
	FaultProfile string  `json:"fault_profile"`
	Overrun      string  `json:"overrun,omitempty"`
	// Salt counts how many workload regenerations were needed to find an
	// activation-feasible model mix (0 = first try).
	Salt int `json:"salt,omitempty"`
}

// Item is one expanded corpus instance.
type Item struct {
	// Index is the instance's position in [0, spec.Count).
	Index int
	// ID is scenario.CanonicalHash of the generated scenario: stable
	// across processes, worker counts, and corpus extensions.
	ID   string
	Axes Axes
	// Scenario is the concrete generated instance, already canonical.
	Scenario *scenario.Scenario
}

// Generator expands a Spec into scenario instances. Safe for concurrent
// use: At is a pure function of (spec, index).
type Generator struct {
	spec   *Spec
	digest string
	seed   uint64
}

// NewGenerator validates the spec (after filling defaults) and returns a
// generator over it.
func NewGenerator(s *Spec) (*Generator, error) {
	full := s.withDefaults()
	if err := full.Validate(); err != nil {
		return nil, err
	}
	dig, err := full.Digest()
	if err != nil {
		return nil, err
	}
	return &Generator{spec: full, digest: dig, seed: uint64(full.Seed)}, nil
}

// Spec returns the defaults-filled spec the generator expands.
func (g *Generator) Spec() *Spec { return g.spec }

// Digest returns the spec digest (see Spec.Digest).
func (g *Generator) Digest() string { return g.digest }

// Count returns the number of instances in the corpus.
func (g *Generator) Count() int { return g.spec.Count }

// draw hashes one decision coordinate into a uniform uint64.
func (g *Generator) draw(axis uint64, index int, sub int64) uint64 {
	h := g.seed ^ mix64(axis*0xa24baed4963ee407)
	h = mix64(h ^ uint64(index)*0x9fb21c651e98df25)
	return mix64(h ^ uint64(sub)*0xe7037ed1a0b428db)
}

// pick selects list[h % len] — axis lists act as weights.
func pickF(list []float64, h uint64) float64 { return list[h%uint64(len(list))] }
func pickI(list []int, h uint64) int         { return list[h%uint64(len(list))] }
func pickS(list []string, h uint64) string   { return list[h%uint64(len(list))] }

// At generates instance i. The only failure modes are a workload
// generation that cannot find an activation-feasible model mix after
// saltRetries attempts and internal marshaling errors; both are reported
// as errors so the oracle can classify them without panicking.
func (g *Generator) At(i int) (Item, error) {
	if i < 0 || i >= g.spec.Count {
		return Item{}, fmt.Errorf("corpus: index %d outside [0, %d)", i, g.spec.Count)
	}
	s := g.spec
	ax := Axes{
		Util:         pickF(s.Utils, g.draw(axisUtil, i, 0)),
		TaskCount:    pickI(s.TaskCounts, g.draw(axisTaskCount, i, 0)),
		Policy:       pickS(s.Policies, g.draw(axisPolicy, i, 0)),
		Platform:     pickS(s.Platforms, g.draw(axisPlatform, i, 0)),
		HorizonMs:    pickF(s.HorizonsMs, g.draw(axisHorizon, i, 0)),
		DeadlineFrac: pickF(s.DeadlineFracs, g.draw(axisDeadline, i, 0)),
		Offsets:      unit(g.draw(axisOffsetGate, i, 0)) < s.OffsetFrac,
		FaultProfile: pickS(s.FaultProfiles, g.draw(axisFaultProfile, i, 0)),
	}
	if ax.FaultProfile != "none" {
		ax.Overrun = pickS(s.Overruns, g.draw(axisOverrun, i, 0))
	}

	sc, salt, err := g.buildScenario(i, &ax)
	if err != nil {
		return Item{Index: i, Axes: ax}, err
	}
	ax.Salt = salt
	id, err := scenario.CanonicalHash(sc)
	if err != nil {
		return Item{Index: i, Axes: ax}, fmt.Errorf("corpus: instance %d: %w", i, err)
	}
	return Item{Index: i, ID: id, Axes: ax, Scenario: sc}, nil
}

// saltRetries bounds the deterministic regeneration attempts when a
// drawn combination is infeasible: either workload generation finds no
// activation-feasible model mix, or the drawn policy's segment budget
// cannot host the mix on the drawn platform (workload.Generate checks
// feasibility policy-blind, but e.g. rt-mdm-d4 needs more activation
// SRAM than the default budget). Each salt re-rolls only the workload
// seed, never the other axes, so the ladder is a pure function of the
// index.
const saltRetries = 8

func (g *Generator) buildScenario(i int, ax *Axes) (*scenario.Scenario, int, error) {
	plat, err := cost.PlatformByName(ax.Platform)
	if err != nil {
		return nil, 0, err
	}
	minP := sim.Duration(g.spec.MinPeriodMs * float64(sim.Millisecond)) //lint:allow millitime -- spec boundary: validated float ms from the corpus spec
	maxP := sim.Duration(g.spec.MaxPeriodMs * float64(sim.Millisecond)) //lint:allow millitime -- spec boundary: validated float ms from the corpus spec

	var lastErr error
	for salt := 0; salt < saltRetries; salt++ {
		wseed := int64(g.draw(axisWorkloadSeed, i, int64(salt))>>1) | 1
		sp, err := workload.Generate(workload.Params{
			Seed:         wseed,
			N:            ax.TaskCount,
			Util:         ax.Util,
			Platform:     plat,
			Models:       g.spec.Models,
			MinPeriod:    minP,
			MaxPeriod:    maxP,
			DeadlineFrac: ax.DeadlineFrac,
		})
		if err != nil {
			lastErr = err
			continue
		}
		sc := g.toScenario(i, ax, sp)
		if _, _, _, err := sc.Build(); err != nil {
			lastErr = err
			continue
		}
		return sc, salt, nil
	}
	return nil, saltRetries, fmt.Errorf("corpus: instance %d: no feasible workload after %d salts: %w", i, saltRetries, lastErr)
}

// toScenario converts a generated SetSpec into a canonical Scenario,
// applying the offset and fault axes.
func (g *Generator) toScenario(i int, ax *Axes, sp workload.SetSpec) *scenario.Scenario {
	sc := &scenario.Scenario{
		Platform:  ax.Platform,
		Policy:    ax.Policy,
		HorizonMs: ax.HorizonMs,
		Tasks:     make([]scenario.TaskSpec, len(sp.Tasks)),
	}
	for t, ts := range sp.Tasks {
		spec := scenario.TaskSpec{
			Name:     fmt.Sprintf("t%02d", t),
			Model:    ts.Model,
			Seed:     ts.Seed,
			PeriodMs: float64(ts.Period) / float64(sim.Millisecond), //lint:allow millitime -- scenario-file boundary: periods serialized as float ms
		}
		if ts.Deadline != ts.Period {
			spec.DeadlineMs = float64(ts.Deadline) / float64(sim.Millisecond) //lint:allow millitime -- scenario-file boundary: deadlines serialized as float ms
		}
		if ax.Offsets {
			// Offsets up to half the period, quantized to 10µs so the
			// serialized floats stay short and exact.
			frac := unit(g.draw(axisOffset, i, int64(t)))
			offNs := int64(frac * 0.5 * float64(ts.Period)) //lint:allow millitime -- offset draw: periods are µs-scale, far below 2^53 ns
			offNs -= offNs % 10_000
			spec.OffsetMs = float64(offNs) / float64(sim.Millisecond) //lint:allow millitime -- scenario-file boundary: offsets serialized as float ms
		}
		sc.Tasks[t] = spec
	}
	if ax.FaultProfile != "none" {
		cfg := faultProfiles[ax.FaultProfile]
		cfg.Seed = int64(g.draw(axisFaultSeed, i, 0)>>1) | 1
		sc.Faults = &scenario.FaultSpec{Config: cfg, Overrun: ax.Overrun}
	}
	return sc.Canonicalize()
}
