// Package corpus is the seeded generative scenario corpus and its
// differential soundness harness: a compact Spec describes axis domains
// (utilization, task count, model mix, policy, platform, horizon,
// deadline tightness, release offsets, fault profile, overrun handling),
// and a Generator expands it into thousands of concrete scenario
// instances — each a pure function of (spec, index), identified by its
// scenario.CanonicalHash. The Oracle then runs both the schedulability
// analysis (internal/analysis) and the simulator (internal/exec) on each
// instance and asserts the strongest property this repository can check:
// analysis-schedulable ⇒ zero simulated deadline misses, plus
// incremental-vs-cold analyzer verdict parity. The Runner parallelizes
// the sweep with a deterministic merge, so the corpus manifest digest is
// byte-identical regardless of worker count; see docs/CORPUS.md.
package corpus

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"os"

	"rtmdm/internal/core"
	"rtmdm/internal/cost"
	"rtmdm/internal/models"
)

// specDomain versions the spec digest: bump it whenever the Spec schema,
// the defaults, or the generation rules change, so checkpoints and
// manifests from different generations can never be resumed or compared
// silently.
const specDomain = "rtmdm-corpus-spec-v1\n"

// Spec is the compact, version-controllable corpus description. Every
// axis is a list of admissible values; the generator draws one value per
// axis per scenario with an independent splitmix64 hash of (seed, axis,
// index), so adding scenarios never re-rolls earlier ones and axis lists
// act as weights (repeat a value to make it more likely). Empty axes
// take the documented defaults (see DefaultSpec and docs/CORPUS.md).
type Spec struct {
	// Seed drives every generation decision. Zero means 1.
	Seed int64 `json:"seed,omitempty"`
	// Count is the number of scenario instances the corpus expands to.
	Count int `json:"count"`
	// Utils lists target reference utilizations; per-task shares are
	// split by workload.UUniFast.
	Utils []float64 `json:"utils,omitempty"`
	// TaskCounts lists admissible task-set sizes.
	TaskCounts []int `json:"task_counts,omitempty"`
	// Models restricts the zoo subset tasks draw from (empty = the whole
	// MLPerf-Tiny-class catalog).
	Models []string `json:"models,omitempty"`
	// Policies lists scheduling policies by name; depth variants
	// (rt-mdm-dN) sweep segment budget / SRAM pressure, since the
	// prefetch staging budget divides the weight buffer by n·depth.
	Policies []string `json:"policies,omitempty"`
	// Platforms lists platform presets by name.
	Platforms []string `json:"platforms,omitempty"`
	// HorizonsMs lists simulation horizons in milliseconds.
	HorizonsMs []float64 `json:"horizons_ms,omitempty"`
	// DeadlineFracs lists deadline/period ratios (1 = implicit).
	DeadlineFracs []float64 `json:"deadline_fracs,omitempty"`
	// OffsetFrac is the probability a scenario gets pseudo-random
	// release offsets (verdicts are offset-independent, so the oracle
	// must hold under any offset pattern). 0 means the default 0.5;
	// negative disables offsets entirely.
	OffsetFrac float64 `json:"offset_frac,omitempty"`
	// FaultProfiles lists named fault-injection profiles ("none",
	// "overrun", "overrun-heavy", "jitter", "dma", "xfer", "mixed").
	// Faulted instances additionally run a fault-injected simulation;
	// the soundness property is always asserted on the nominal run,
	// because injected overruns and slowdowns exceed the modeled WCETs
	// the analysis is sound against.
	FaultProfiles []string `json:"fault_profiles,omitempty"`
	// Overruns lists overrun-handling modes for faulted instances
	// ("continue", "abort", "skip-next").
	Overruns []string `json:"overruns,omitempty"`
	// MinPeriodMs and MaxPeriodMs clamp derived periods (0 = defaults).
	MinPeriodMs float64 `json:"min_period_ms,omitempty"`
	MaxPeriodMs float64 `json:"max_period_ms,omitempty"`
}

// DefaultSpec returns the full-breadth corpus defaults: every policy
// family with a sound analysis, both flagship platforms, utilizations
// spanning the schedulability boundary, and a fault mix that leaves
// roughly a third of the instances nominal.
func DefaultSpec() *Spec {
	return &Spec{
		Seed:          1,
		Count:         1000,
		Utils:         []float64{0.3, 0.45, 0.6, 0.75, 0.9},
		TaskCounts:    []int{2, 3, 4, 5},
		Policies:      []string{"rt-mdm", "rt-mdm-d3", "rt-mdm-d4", "serial-segfp", "serial-npfp", "rt-mdm-edf"},
		Platforms:     []string{"stm32h743", "stm32f746"},
		HorizonsMs:    []float64{200, 500},
		DeadlineFracs: []float64{1.0, 0.85},
		OffsetFrac:    0.5,
		FaultProfiles: []string{"none", "none", "overrun", "jitter", "dma", "xfer", "mixed"},
		Overruns:      []string{"continue", "abort", "skip-next"},
		MinPeriodMs:   5,
		MaxPeriodMs:   500,
	}
}

// SmokeSpec is the pinned CI slice: cheap horizons and small sets so a
// ≥1k-scenario sweep with the differential oracle stays inside a CI
// budget, while still covering every axis.
func SmokeSpec() *Spec {
	s := DefaultSpec()
	s.HorizonsMs = []float64{200}
	s.TaskCounts = []int{2, 3, 4}
	return s
}

// withDefaults returns a copy with every empty axis filled from
// DefaultSpec. The copy is what Digest hashes, so a spec that spells a
// default explicitly digests identically to one that omits it.
func (s *Spec) withDefaults() *Spec {
	d := DefaultSpec()
	out := *s
	if out.Seed == 0 {
		out.Seed = 1
	}
	if len(out.Utils) == 0 {
		out.Utils = d.Utils
	}
	if len(out.TaskCounts) == 0 {
		out.TaskCounts = d.TaskCounts
	}
	if len(out.Policies) == 0 {
		out.Policies = d.Policies
	}
	if len(out.Platforms) == 0 {
		out.Platforms = d.Platforms
	}
	if len(out.HorizonsMs) == 0 {
		out.HorizonsMs = d.HorizonsMs
	}
	if len(out.DeadlineFracs) == 0 {
		out.DeadlineFracs = d.DeadlineFracs
	}
	if out.OffsetFrac == 0 {
		out.OffsetFrac = d.OffsetFrac
	}
	if out.OffsetFrac < 0 {
		out.OffsetFrac = 0
	}
	if len(out.FaultProfiles) == 0 {
		out.FaultProfiles = d.FaultProfiles
	}
	if len(out.Overruns) == 0 {
		out.Overruns = d.Overruns
	}
	if out.MinPeriodMs == 0 {
		out.MinPeriodMs = d.MinPeriodMs
	}
	if out.MaxPeriodMs == 0 {
		out.MaxPeriodMs = d.MaxPeriodMs
	}
	return &out
}

// Validate rejects specs whose axis values cannot generate: unknown
// policies, platforms, models, fault profiles or overrun modes, and
// numeric values outside the ranges the downstream packages accept.
// Called on the defaults-filled spec by NewGenerator.
func (s *Spec) Validate() error {
	if s.Count < 1 {
		return fmt.Errorf("corpus: count %d < 1", s.Count)
	}
	for _, u := range s.Utils {
		if math.IsNaN(u) || u <= 0 || u > 2 {
			return fmt.Errorf("corpus: util %v outside (0, 2]", u)
		}
	}
	for _, n := range s.TaskCounts {
		if n < 1 || n > 16 {
			return fmt.Errorf("corpus: task count %d outside [1, 16]", n)
		}
	}
	for _, m := range s.Models {
		if _, err := models.Build(m, 1); err != nil {
			return fmt.Errorf("corpus: %w", err)
		}
	}
	for _, p := range s.Policies {
		if _, err := core.PolicyByName(p); err != nil {
			return fmt.Errorf("corpus: %w", err)
		}
	}
	for _, p := range s.Platforms {
		if _, err := cost.PlatformByName(p); err != nil {
			return fmt.Errorf("corpus: %w", err)
		}
	}
	for _, h := range s.HorizonsMs {
		if math.IsNaN(h) || h <= 0 || h > 60_000 {
			return fmt.Errorf("corpus: horizon %v ms outside (0, 60000]", h)
		}
	}
	for _, f := range s.DeadlineFracs {
		if math.IsNaN(f) || f <= 0 || f > 1 {
			return fmt.Errorf("corpus: deadline fraction %v outside (0, 1]", f)
		}
	}
	if math.IsNaN(s.OffsetFrac) || s.OffsetFrac > 1 {
		return fmt.Errorf("corpus: offset fraction %v outside [0, 1]", s.OffsetFrac)
	}
	for _, fp := range s.FaultProfiles {
		if _, ok := faultProfiles[fp]; !ok {
			return fmt.Errorf("corpus: unknown fault profile %q (have %v)", fp, FaultProfileNames())
		}
	}
	for _, o := range s.Overruns {
		if _, err := core.ParseOverrunPolicy(o); err != nil {
			return fmt.Errorf("corpus: %w", err)
		}
	}
	if math.IsNaN(s.MinPeriodMs) || s.MinPeriodMs < 0 || s.MinPeriodMs > 1e6 ||
		math.IsNaN(s.MaxPeriodMs) || s.MaxPeriodMs < 0 || s.MaxPeriodMs > 1e6 {
		return fmt.Errorf("corpus: period clamp [%v, %v] ms outside [0, 1e6]", s.MinPeriodMs, s.MaxPeriodMs)
	}
	if s.MaxPeriodMs > 0 && s.MinPeriodMs > s.MaxPeriodMs {
		return fmt.Errorf("corpus: min period %v ms above max %v ms", s.MinPeriodMs, s.MaxPeriodMs)
	}
	return nil
}

// ParseSpec decodes a Spec from JSON, rejecting unknown fields so typos
// in axis names fail loudly instead of silently falling back to
// defaults.
func ParseSpec(data []byte) (*Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("corpus: spec: %w", err)
	}
	return &s, nil
}

// LoadSpec reads and parses a spec file.
func LoadSpec(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("corpus: %w", err)
	}
	return ParseSpec(data)
}

// Digest returns a stable hex digest of the defaults-filled spec: the
// identity checkpoints and manifests are keyed by. Two specs digest
// equal iff they expand to the same corpus.
func (s *Spec) Digest() (string, error) {
	enc, err := json.Marshal(s.withDefaults())
	if err != nil {
		return "", fmt.Errorf("corpus: spec digest: %w", err)
	}
	h := sha256.New()
	h.Write([]byte(specDomain))
	h.Write(enc)
	return hex.EncodeToString(h.Sum(nil)), nil
}
