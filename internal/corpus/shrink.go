package corpus

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"rtmdm/internal/scenario"
)

// violationKind extracts the property label ("soundness",
// "incremental-cold", …) so the shrinker never trades the original
// failure for a different one mid-minimization.
func violationKind(v string) string {
	for i := 0; i < len(v); i++ {
		if v[i] == ':' {
			return v[:i]
		}
	}
	return v
}

// sameKind reports whether any violation in vs has the wanted kind.
func sameKind(vs []string, kind string) bool {
	for _, v := range vs {
		if violationKind(v) == kind {
			return true
		}
	}
	return false
}

// Shrink greedily minimizes a violating scenario while it still
// exhibits a violation of the same kind as the first one in seed order:
// it drops tasks one at a time, removes the fault stanza, zeroes
// offsets, rounds periods and deadlines to whole milliseconds, and
// halves the horizon, looping to a fixpoint. Returns the minimal
// scenario, its violations, and the number of candidates evaluated.
// Deterministic: candidate order is a pure function of the scenario.
func Shrink(ctx context.Context, o *Oracle, sc *scenario.Scenario) (*scenario.Scenario, []string, int) {
	ins := instr.Load()
	cur := sc.Canonicalize()
	vs := o.CheckScenario(ctx, cur)
	if len(vs) == 0 {
		return cur, nil, 0
	}
	kind := violationKind(vs[0])
	steps := 0
	try := func(cand *scenario.Scenario) bool {
		if ctx.Err() != nil {
			return false
		}
		steps++
		ins.shrinkSteps.Add(1)
		cvs := o.CheckScenario(ctx, cand)
		if sameKind(cvs, kind) {
			cur, vs = cand.Canonicalize(), cvs
			return true
		}
		return false
	}

	for changed := true; changed && ctx.Err() == nil; {
		changed = false
		// Drop tasks, last first so earlier indices stay valid.
		for i := len(cur.Tasks) - 1; i >= 0 && len(cur.Tasks) > 1; i-- {
			cand := cloneScenario(cur)
			cand.Tasks = append(cand.Tasks[:i:i], cand.Tasks[i+1:]...)
			if try(cand) {
				changed = true
			}
		}
		if cur.Faults != nil {
			cand := cloneScenario(cur)
			cand.Faults = nil
			if try(cand) {
				changed = true
			}
		}
		if anyOffset(cur) {
			cand := cloneScenario(cur)
			for i := range cand.Tasks {
				cand.Tasks[i].OffsetMs = 0
			}
			if try(cand) {
				changed = true
			}
		}
		if anyFraction(cur) {
			cand := cloneScenario(cur)
			for i := range cand.Tasks {
				cand.Tasks[i].PeriodMs = math.Ceil(cand.Tasks[i].PeriodMs)
				if cand.Tasks[i].DeadlineMs != 0 {
					cand.Tasks[i].DeadlineMs = math.Ceil(cand.Tasks[i].DeadlineMs)
				}
			}
			if try(cand) {
				changed = true
			}
		}
		if cur.HorizonMs > 2 {
			cand := cloneScenario(cur)
			cand.HorizonMs = math.Ceil(cand.HorizonMs / 2)
			if try(cand) {
				changed = true
			}
		}
	}
	return cur, vs, steps
}

func cloneScenario(sc *scenario.Scenario) *scenario.Scenario {
	out := *sc
	out.Tasks = append([]scenario.TaskSpec(nil), sc.Tasks...)
	if sc.Faults != nil {
		f := *sc.Faults
		out.Faults = &f
	}
	return &out
}

func anyOffset(sc *scenario.Scenario) bool {
	for _, t := range sc.Tasks {
		if t.OffsetMs != 0 {
			return true
		}
	}
	return false
}

func anyFraction(sc *scenario.Scenario) bool {
	for _, t := range sc.Tasks {
		if t.PeriodMs != math.Trunc(t.PeriodMs) || t.DeadlineMs != math.Trunc(t.DeadlineMs) {
			return true
		}
	}
	return false
}

// Repro is the minimal-counterexample file the shrinker writes under a
// repro directory: the scenario plus the violations it exhibits, so a
// failing corpus run leaves a self-describing artifact.
type Repro struct {
	// ID is the CanonicalHash of the *original* (unshrunk) scenario.
	ID         string             `json:"id"`
	SpecDigest string             `json:"spec_digest"`
	Index      int                `json:"index"`
	Violations []string           `json:"violations"`
	Scenario   *scenario.Scenario `json:"scenario"`
}

// WriteRepro writes the repro as pretty JSON to dir/corpus-<id12>.json
// and returns the path. The scenario stanza is directly loadable by
// scenario.Parse (and thus rtmdm-sim/-analyze) after extracting it.
func WriteRepro(dir string, rp *Repro) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("corpus: repro: %w", err)
	}
	id := rp.ID
	if len(id) > 12 {
		id = id[:12]
	}
	path := filepath.Join(dir, "corpus-"+id+".json")
	data, err := json.MarshalIndent(rp, "", "  ")
	if err != nil {
		return "", fmt.Errorf("corpus: repro: %w", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", fmt.Errorf("corpus: repro: %w", err)
	}
	return path, nil
}
