package corpus

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"rtmdm/internal/analysis"
	"rtmdm/internal/exec"
	"rtmdm/internal/scenario"
	"rtmdm/internal/trace"
)

// Outcome classes. Every scenario lands in exactly one.
const (
	// ClassOK: all checks ran and held.
	ClassOK = "ok"
	// ClassGenerateError: no activation-feasible workload for the drawn
	// axes (counted, not fatal — the axis draw is still deterministic).
	ClassGenerateError = "generate-error"
	// ClassUnsupported: the drawn policy has no sound schedulability
	// test (e.g. serial EDF); the simulator still runs for
	// crash-freedom, but there is no verdict to check soundness against.
	ClassUnsupported = "analysis-unsupported"
	// ClassViolation: a soundness or parity property failed — the only
	// class that fails a corpus run. A generated scenario that does not
	// even build lands here too: generation only draws validated axes,
	// so an unbuildable instance is itself a corpus bug.
	ClassViolation = "violation"
	// ClassCanceled: the context expired mid-check.
	ClassCanceled = "canceled"
)

// Outcome is the oracle's record for one scenario instance. Fields are
// serialized deterministically; the runner's manifest is a pure function
// of the outcome sequence.
type Outcome struct {
	Index         int      `json:"index"`
	ID            string   `json:"id"`
	Axes          Axes     `json:"axes"`
	Class         string   `json:"class"`
	Test          string   `json:"test,omitempty"`
	Schedulable   bool     `json:"schedulable,omitempty"`
	Reason        string   `json:"reason,omitempty"`
	Misses        int64    `json:"misses"`
	FaultedMisses int64    `json:"faulted_misses,omitempty"`
	Warm          bool     `json:"warm,omitempty"`
	Violations    []string `json:"violations,omitempty"`

	supported bool
	canceled  bool
}

// manifestLine renders the outcome's digest-relevant fields as one
// stable text line. Throughput and timing never appear here — the
// manifest must be byte-identical across machines and worker counts.
func (o *Outcome) manifestLine() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d %s %s test=%s sched=%t misses=%d fmisses=%d",
		o.Index, o.ID, o.Class, o.Test, o.Schedulable, o.Misses, o.FaultedMisses)
	for _, v := range o.Violations {
		fmt.Fprintf(&b, " violation=%q", v)
	}
	return b.String()
}

// Oracle runs the differential soundness checks for corpus instances:
// cold RTA, incremental-vs-cold verdict parity (fresh and warm), nominal
// simulation soundness (analysis-schedulable ⇒ zero simulated misses),
// and faulted-simulation crash-freedom.
type Oracle struct {
	gen *Generator
	// InjectVerdictBug deliberately corrupts the analysis verdict
	// (claiming every analyzable task set schedulable) before the
	// soundness check. Used by the self-check tier to prove the oracle
	// actually fails when the analysis is wrong; never set in real runs.
	InjectVerdictBug bool
}

// NewOracle returns an oracle over the generator's corpus.
func NewOracle(g *Generator) *Oracle { return &Oracle{gen: g} }

// Check generates instance i and runs every applicable property against
// it. Property failures are recorded in the outcome, never returned as
// errors, so a sweep always completes.
func (o *Oracle) Check(ctx context.Context, i int) Outcome {
	ins := instr.Load()
	item, err := o.gen.At(i)
	if err != nil {
		out := Outcome{Index: i, ID: item.ID, Axes: item.Axes}
		if ctx.Err() != nil {
			out.Class = ClassCanceled
			return out
		}
		out.Class = ClassGenerateError
		out.Reason = err.Error()
		ins.generateErrors.Add(1)
		return out
	}
	ins.generated.Add(1)

	out := o.evaluate(ctx, item.Scenario)
	out.Index = i
	out.ID = item.ID
	out.Axes = item.Axes
	switch {
	case out.canceled:
		out.Class = ClassCanceled
	case len(out.Violations) > 0:
		out.Class = ClassViolation
		ins.violations.Add(1)
	case !out.supported:
		out.Class = ClassUnsupported
		ins.unsupported.Add(1)
	default:
		out.Class = ClassOK
	}
	return out
}

// CheckScenario runs the oracle properties against an arbitrary
// scenario and returns the violations — the shrinker's predicate. A
// scenario that no longer builds (e.g. zero tasks after a shrink step)
// returns nil: an invalid candidate, not a violation.
func (o *Oracle) CheckScenario(ctx context.Context, sc *scenario.Scenario) []string {
	return o.evaluate(ctx, sc).Violations
}

// Generated regenerates instance i (for the shrinker and repro tools).
func (o *Oracle) Generated(i int) (Item, error) { return o.gen.At(i) }

// evaluate runs every property against one concrete scenario. The
// caller classifies from supported/canceled/Violations.
func (o *Oracle) evaluate(ctx context.Context, sc *scenario.Scenario) Outcome {
	ins := instr.Load()
	var out Outcome
	sc = sc.Canonicalize()
	set, plat, pol, err := sc.Build()
	if err != nil {
		if ctx.Err() != nil {
			out.canceled = true
			return out
		}
		if len(sc.Tasks) == 0 {
			return out
		}
		out.Reason = err.Error()
		out.Violations = append(out.Violations, "build: "+err.Error())
		return out
	}

	// Cold analysis is the reference verdict.
	cold, coldErr := analysis.EvaluateScenario(ctx, sc)
	if coldErr != nil && ctx.Err() != nil {
		out.canceled = true
		return out
	}
	out.supported = coldErr == nil
	if out.supported {
		out.Test = cold.Test
		out.Schedulable = cold.Schedulable
		out.Reason = cold.Reason
	} else {
		out.Reason = coldErr.Error()
	}

	// Differential parity: a fresh incremental analyzer must agree with
	// the cold path bit-for-bit, both on its first (cold-path)
	// evaluation and warm after committing the same scenario.
	inc := analysis.NewIncrementalAnalyzer()
	fresh, _, freshErr := inc.Evaluate(ctx, sc)
	if d := verdictDiff("incremental-cold", cold, coldErr, fresh, freshErr); d != "" {
		out.Violations = append(out.Violations, d)
	}
	if freshErr == nil {
		inc.Commit(sc)
		warm, st, warmErr := inc.Evaluate(ctx, sc)
		out.Warm = st.Warm
		if d := verdictDiff("incremental-warm", cold, coldErr, warm, warmErr); d != "" {
			out.Violations = append(out.Violations, d)
		}
	}

	// Nominal simulation: the soundness property proper. The nominal run
	// carries no fault plan — injected overruns and slowdowns exceed the
	// modeled WCETs the analysis is sound against, so soundness is only
	// claimable at modeled timing.
	res, simErr := exec.RunContext(ctx, set, plat, pol, sc.Horizon())
	if simErr != nil {
		if ctx.Err() != nil {
			out.canceled = true
			return out
		}
		out.Violations = append(out.Violations, "nominal-exec: "+simErr.Error())
		return out
	}
	out.Misses = totalMisses(res.Metrics)
	ins.simRuns.Add(1)
	claims := out.supported && cold.Schedulable
	if o.InjectVerdictBug && out.supported {
		claims = true
	}
	if claims && out.Misses > 0 {
		out.Violations = append(out.Violations,
			fmt.Sprintf("soundness: analysis says schedulable (test=%s) but nominal simulation missed %d deadlines", cold.Test, out.Misses))
	}

	// Faulted simulation: crash-freedom only. The executor must survive
	// any generated fault plan without an internal error.
	if sc.Faults != nil {
		plan, planErr := sc.FaultPlan()
		if planErr != nil {
			out.Violations = append(out.Violations, "fault-plan: "+planErr.Error())
			return out
		}
		fres, fErr := exec.RunWithFaultsContext(ctx, set, plat, pol, sc.Horizon(), plan)
		if fErr != nil {
			if ctx.Err() != nil {
				out.canceled = true
				return out
			}
			out.Violations = append(out.Violations, "faulted-exec: "+fErr.Error())
			return out
		}
		out.FaultedMisses = totalMisses(fres.Metrics)
		ins.faultedRuns.Add(1)
	}
	return out
}

// verdictDiff compares two (verdict, error) pairs for bit-identity and
// returns a one-line description of the first difference, or "".
func verdictDiff(label string, ref analysis.Verdict, refErr error, got analysis.Verdict, gotErr error) string {
	if (refErr == nil) != (gotErr == nil) {
		return fmt.Sprintf("%s: error parity: ref=%v got=%v", label, refErr, gotErr)
	}
	if refErr != nil {
		if refErr.Error() != gotErr.Error() {
			return fmt.Sprintf("%s: error text: ref=%q got=%q", label, refErr, gotErr)
		}
		return ""
	}
	if ref.Test != got.Test || ref.Schedulable != got.Schedulable || ref.Reason != got.Reason {
		return fmt.Sprintf("%s: verdict: ref={%s %t %q} got={%s %t %q}",
			label, ref.Test, ref.Schedulable, ref.Reason, got.Test, got.Schedulable, got.Reason)
	}
	if len(ref.WCRT) != len(got.WCRT) {
		return fmt.Sprintf("%s: wcrt count: ref=%d got=%d", label, len(ref.WCRT), len(got.WCRT))
	}
	names := make([]string, 0, len(ref.WCRT))
	for name := range ref.WCRT {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		g, ok := got.WCRT[name]
		if !ok || g != ref.WCRT[name] {
			return fmt.Sprintf("%s: wcrt[%s]: ref=%v got=%v", label, name, ref.WCRT[name], g)
		}
	}
	return ""
}

// totalMisses sums deadline misses across tasks.
func totalMisses(m *trace.Metrics) int64 {
	if m == nil {
		return 0
	}
	var n int64
	for _, tm := range m.PerTask {
		n += int64(tm.Misses)
	}
	return n
}
