package corpus

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// checkpointVersion versions the checkpoint wire format.
const checkpointVersion = 1

// Report summarizes a corpus sweep. Everything digest-relevant lives in
// the manifest; the report adds operational detail (class counts,
// violation records, throughput filled in by the caller) that may vary
// without breaking manifest identity.
type Report struct {
	SpecDigest     string         `json:"spec_digest"`
	Count          int            `json:"count"`
	Checked        int            `json:"checked"`
	Resumed        int            `json:"resumed,omitempty"`
	Classes        map[string]int `json:"classes"`
	WarmParity     int            `json:"warm_parity"`
	Violations     []Outcome      `json:"violations,omitempty"`
	ManifestDigest string         `json:"manifest_digest"`
	// ElapsedNs and ScenariosPerSec are filled by the caller (wall-clock
	// stays out of this package); both are excluded from the manifest.
	ElapsedNs       int64   `json:"elapsed_ns,omitempty"`
	ScenariosPerSec float64 `json:"scenarios_per_sec,omitempty"`
}

// Runner sweeps the oracle over every corpus index with a worker pool.
// Results are merged in index order, so the manifest and its digest are
// byte-identical regardless of Workers or GOMAXPROCS.
type Runner struct {
	Oracle *Oracle
	// Workers is the pool size (<=0 means 1).
	Workers int
	// CheckpointPath, when set, makes the sweep resumable: completed
	// outcomes are persisted every CheckpointEvery completions (default
	// 256) and on exit, atomically (temp file + rename).
	CheckpointPath  string
	CheckpointEvery int
	// Progress, when set, is called after every completed scenario with
	// (completed, total). Called from worker goroutines; must be
	// cheap and concurrency-safe. Never feeds the manifest.
	Progress func(done, total int)
}

// checkpoint is the persisted resume state. Only finished outcomes are
// stored; canceled ones re-run on resume.
type checkpoint struct {
	Version    int       `json:"version"`
	SpecDigest string    `json:"spec_digest"`
	Outcomes   []Outcome `json:"outcomes"`
}

// Run sweeps the corpus. On context cancellation it writes a final
// checkpoint (when configured) and returns the partial report alongside
// ctx's error; a later Run with the same checkpoint path resumes where
// it stopped.
func (r *Runner) Run(ctx context.Context) (*Report, []Outcome, error) {
	gen := r.Oracle.gen
	count := gen.Count()
	outcomes := make([]Outcome, count)
	done := make([]bool, count)

	resumed := 0
	if r.CheckpointPath != "" {
		n, err := r.loadCheckpoint(outcomes, done)
		if err != nil {
			return nil, nil, err
		}
		resumed = n
	}

	workers := r.Workers
	if workers <= 0 {
		workers = 1
	}
	every := r.CheckpointEvery
	if every <= 0 {
		every = 256
	}

	jobs := make(chan int)
	var wg sync.WaitGroup
	var mu sync.Mutex // guards completed counter + checkpoint writes
	completed := resumed
	var ckptErr error

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				out := r.Oracle.Check(ctx, i)
				mu.Lock()
				outcomes[i] = out
				if out.Class != ClassCanceled {
					done[i] = true
				}
				completed++
				c := completed
				if r.CheckpointPath != "" && out.Class != ClassCanceled && (c-resumed)%every == 0 {
					if err := r.writeCheckpoint(outcomes, done); err != nil && ckptErr == nil {
						ckptErr = err
					}
				}
				mu.Unlock()
				if r.Progress != nil {
					r.Progress(c, count)
				}
			}
		}()
	}

feed:
	for i := 0; i < count; i++ {
		if done[i] {
			continue
		}
		select {
		case jobs <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()

	if r.CheckpointPath != "" {
		if err := r.writeCheckpoint(outcomes, done); err != nil && ckptErr == nil {
			ckptErr = err
		}
	}

	rep := r.report(outcomes, resumed)
	if err := ctx.Err(); err != nil {
		return rep, outcomes, err
	}
	if ckptErr != nil {
		return rep, outcomes, ckptErr
	}
	return rep, outcomes, nil
}

// report builds the summary and manifest digest from index-ordered
// outcomes.
func (r *Runner) report(outcomes []Outcome, resumed int) *Report {
	rep := &Report{
		SpecDigest: r.Oracle.gen.Digest(),
		Count:      len(outcomes),
		Resumed:    resumed,
		Classes:    make(map[string]int),
	}
	for i := range outcomes {
		o := &outcomes[i]
		if o.Class == "" {
			o.Class = ClassCanceled
		}
		rep.Classes[o.Class]++
		if o.Class != ClassCanceled {
			rep.Checked++
		}
		if o.Warm {
			rep.WarmParity++
		}
		if o.Class == ClassViolation {
			rep.Violations = append(rep.Violations, *o)
		}
	}
	rep.ManifestDigest = ManifestDigest(r.Oracle.gen, outcomes)
	return rep
}

// Manifest renders the deterministic corpus manifest: a spec header
// followed by one line per outcome in index order. Byte-identical for
// the same spec regardless of worker count, GOMAXPROCS, or resume
// boundaries.
func Manifest(g *Generator, outcomes []Outcome) string {
	var b strings.Builder
	fmt.Fprintf(&b, "rtmdm-corpus-manifest-v1\nspec %s\ncount %d\n", g.Digest(), len(outcomes))
	for i := range outcomes {
		b.WriteString(outcomes[i].manifestLine())
		b.WriteByte('\n')
	}
	return b.String()
}

// ManifestDigest is the SHA-256 hex digest of Manifest.
func ManifestDigest(g *Generator, outcomes []Outcome) string {
	h := sha256.Sum256([]byte(Manifest(g, outcomes)))
	return hex.EncodeToString(h[:])
}

// loadCheckpoint restores finished outcomes from the checkpoint file, if
// present. A checkpoint for a different spec digest is an error, not a
// silent restart: resuming someone else's sweep would corrupt the
// manifest.
func (r *Runner) loadCheckpoint(outcomes []Outcome, done []bool) (int, error) {
	data, err := os.ReadFile(r.CheckpointPath)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, fmt.Errorf("corpus: checkpoint: %w", err)
	}
	var ck checkpoint
	if err := json.Unmarshal(data, &ck); err != nil {
		return 0, fmt.Errorf("corpus: checkpoint %s: %w", r.CheckpointPath, err)
	}
	if ck.Version != checkpointVersion {
		return 0, fmt.Errorf("corpus: checkpoint %s: version %d, want %d", r.CheckpointPath, ck.Version, checkpointVersion)
	}
	if want := r.Oracle.gen.Digest(); ck.SpecDigest != want {
		return 0, fmt.Errorf("corpus: checkpoint %s is for spec %.12s…, this run is %.12s…", r.CheckpointPath, ck.SpecDigest, want)
	}
	n := 0
	for _, o := range ck.Outcomes {
		if o.Index < 0 || o.Index >= len(outcomes) || o.Class == "" || o.Class == ClassCanceled {
			continue
		}
		outcomes[o.Index] = o
		done[o.Index] = true
		n++
	}
	return n, nil
}

// writeCheckpoint persists the finished outcomes atomically. Caller
// holds the runner mutex.
func (r *Runner) writeCheckpoint(outcomes []Outcome, done []bool) error {
	ck := checkpoint{Version: checkpointVersion, SpecDigest: r.Oracle.gen.Digest()}
	for i := range outcomes {
		if done[i] {
			ck.Outcomes = append(ck.Outcomes, outcomes[i])
		}
	}
	sort.Slice(ck.Outcomes, func(a, b int) bool { return ck.Outcomes[a].Index < ck.Outcomes[b].Index })
	data, err := json.Marshal(&ck)
	if err != nil {
		return fmt.Errorf("corpus: checkpoint: %w", err)
	}
	dir := filepath.Dir(r.CheckpointPath)
	tmp, err := os.CreateTemp(dir, ".corpus-ckpt-*")
	if err != nil {
		return fmt.Errorf("corpus: checkpoint: %w", err)
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr == nil {
			werr = cerr
		}
		return fmt.Errorf("corpus: checkpoint: %w", werr)
	}
	if err := os.Rename(tmp.Name(), r.CheckpointPath); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("corpus: checkpoint: %w", err)
	}
	instr.Load().checkpoints.Add(1)
	return nil
}
