package corpus

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"rtmdm/internal/metrics"
)

// testSpec is a small, fast slice used by most tests: single short
// horizon, small sets. Kept separate from SmokeSpec so CI-scale tuning
// never slows the unit tests.
func testSpec(count int) *Spec {
	s := SmokeSpec()
	s.Count = count
	s.TaskCounts = []int{2, 3}
	s.HorizonsMs = []float64{100}
	return s
}

func TestSpecDigestDefaultsInvariant(t *testing.T) {
	empty := &Spec{Count: 10}
	explicit := DefaultSpec()
	explicit.Count = 10
	d1, err := empty.Digest()
	if err != nil {
		t.Fatal(err)
	}
	d2, err := explicit.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Fatalf("digest of implicit defaults %s != explicit defaults %s", d1, d2)
	}
	other := DefaultSpec()
	other.Count = 10
	other.Seed = 2
	d3, err := other.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if d3 == d1 {
		t.Fatalf("different seeds must digest differently")
	}
}

func TestSpecValidate(t *testing.T) {
	bad := []*Spec{
		{Count: 0},
		{Count: 1, Policies: []string{"no-such-policy"}},
		{Count: 1, Platforms: []string{"no-such-platform"}},
		{Count: 1, Models: []string{"no-such-model"}},
		{Count: 1, FaultProfiles: []string{"no-such-profile"}},
		{Count: 1, Overruns: []string{"no-such-mode"}},
		{Count: 1, Utils: []float64{-1}},
		{Count: 1, TaskCounts: []int{0}},
		{Count: 1, HorizonsMs: []float64{-5}},
		{Count: 1, DeadlineFracs: []float64{1.5}},
		{Count: 1, MinPeriodMs: 100, MaxPeriodMs: 10},
	}
	for i, s := range bad {
		if err := s.withDefaults().Validate(); err == nil {
			t.Errorf("spec %d: expected validation error", i)
		}
	}
	if err := DefaultSpec().Validate(); err != nil {
		t.Fatalf("default spec must validate: %v", err)
	}
}

func TestParseSpecRejectsUnknownFields(t *testing.T) {
	if _, err := ParseSpec([]byte(`{"count": 5, "utilz": [0.5]}`)); err == nil {
		t.Fatal("unknown field must be rejected")
	}
	s, err := ParseSpec([]byte(`{"count": 5, "utils": [0.5]}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.Count != 5 || len(s.Utils) != 1 {
		t.Fatalf("parsed spec %+v", s)
	}
}

func TestGeneratorDeterministicAndIndexIndependent(t *testing.T) {
	g1, err := NewGenerator(testSpec(40))
	if err != nil {
		t.Fatal(err)
	}
	g2, err := NewGenerator(testSpec(40))
	if err != nil {
		t.Fatal(err)
	}
	// Same spec, any evaluation order: identical instances.
	for _, i := range []int{7, 0, 39, 12, 7} {
		a, errA := g1.At(i)
		b, errB := g2.At(i)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("index %d: error mismatch %v vs %v", i, errA, errB)
		}
		if errA != nil {
			continue
		}
		if a.ID != b.ID {
			t.Fatalf("index %d: ID %s != %s", i, a.ID, b.ID)
		}
		if a.Axes != b.Axes {
			t.Fatalf("index %d: axes %+v != %+v", i, a.Axes, b.Axes)
		}
	}
	// Extending the corpus must not re-roll existing indices.
	big, err := NewGenerator(testSpec(200))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		a, errA := g1.At(i)
		b, errB := big.At(i)
		if (errA == nil) != (errB == nil) || (errA == nil && a.ID != b.ID) {
			t.Fatalf("index %d changed when count grew: %v/%v", i, errA, errB)
		}
	}
	if _, err := g1.At(40); err == nil {
		t.Fatal("out-of-range index must error")
	}
}

func TestGeneratorCoversAxes(t *testing.T) {
	g, err := NewGenerator(testSpec(120))
	if err != nil {
		t.Fatal(err)
	}
	policies := map[string]bool{}
	profiles := map[string]bool{}
	offsets := 0
	for i := 0; i < g.Count(); i++ {
		it, err := g.At(i)
		if err != nil {
			continue
		}
		policies[it.Axes.Policy] = true
		profiles[it.Axes.FaultProfile] = true
		if it.Axes.Offsets {
			offsets++
		}
		if it.Scenario.Faults != nil && it.Scenario.Faults.Overrun == "" {
			t.Fatalf("index %d: faulted scenario without overrun mode", i)
		}
		if (it.Scenario.Faults != nil) != (it.Axes.FaultProfile != "none") {
			t.Fatalf("index %d: fault stanza/axis mismatch", i)
		}
	}
	if len(policies) < 4 {
		t.Fatalf("120 draws covered only %d policies: %v", len(policies), policies)
	}
	if len(profiles) < 4 {
		t.Fatalf("120 draws covered only %d fault profiles: %v", len(profiles), profiles)
	}
	if offsets == 0 || offsets == g.Count() {
		t.Fatalf("offset gate never flipped: %d/%d", offsets, g.Count())
	}
}

// TestRunnerDifferentialSoundness is the in-tree slice of the corpus
// acceptance property: every generated scenario passes the differential
// oracle (no soundness violations, full incremental/cold parity), and
// the manifest digest is byte-identical at 1 vs 8 workers.
func TestRunnerDifferentialSoundness(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus sweep in -short mode")
	}
	g, err := NewGenerator(testSpec(60))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	r1 := &Runner{Oracle: NewOracle(g), Workers: 1}
	rep1, out1, err := r1.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	r8 := &Runner{Oracle: NewOracle(g), Workers: 8}
	rep8, _, err := r8.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}

	if rep1.ManifestDigest != rep8.ManifestDigest {
		t.Fatalf("manifest digest differs across worker counts:\n1: %s\n8: %s", rep1.ManifestDigest, rep8.ManifestDigest)
	}
	if rep1.Classes[ClassViolation] != 0 {
		for _, v := range rep1.Violations {
			t.Errorf("violation at index %d (%s): %v", v.Index, v.ID, v.Violations)
		}
		t.Fatalf("%d violations in pinned corpus", rep1.Classes[ClassViolation])
	}
	if rep1.Classes[ClassOK] == 0 {
		t.Fatalf("no scenario passed all checks: %v", rep1.Classes)
	}
	// Manifest is reproducible from the outcomes alone.
	if d := ManifestDigest(g, out1); d != rep1.ManifestDigest {
		t.Fatalf("report digest %s != recomputed %s", rep1.ManifestDigest, d)
	}
	if !strings.HasPrefix(Manifest(g, out1), "rtmdm-corpus-manifest-v1\n") {
		t.Fatal("manifest missing version header")
	}
}

// TestInjectedBugTripsOracle proves the oracle is live: corrupting the
// analysis verdict (claiming everything schedulable) must produce
// soundness violations on a corpus slice that contains overloaded sets.
func TestInjectedBugTripsOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus sweep in -short mode")
	}
	s := testSpec(40)
	s.Utils = []float64{1.5}      // far past the schedulability boundary
	s.FaultProfiles = []string{"none"}
	g, err := NewGenerator(s)
	if err != nil {
		t.Fatal(err)
	}
	o := NewOracle(g)
	o.InjectVerdictBug = true
	rep, _, err := (&Runner{Oracle: o, Workers: 4}).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Classes[ClassViolation] == 0 {
		t.Fatalf("injected verdict bug produced no violations: %v", rep.Classes)
	}
	found := false
	for _, v := range rep.Violations {
		for _, msg := range v.Violations {
			if strings.HasPrefix(msg, "soundness:") {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("violations did not include a soundness failure: %+v", rep.Violations)
	}
}

func TestCheckpointResume(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus sweep in -short mode")
	}
	g, err := NewGenerator(testSpec(30))
	if err != nil {
		t.Fatal(err)
	}
	ckpt := filepath.Join(t.TempDir(), "ckpt.json")

	// Reference: clean single-shot run.
	ref, _, err := (&Runner{Oracle: NewOracle(g), Workers: 2}).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted run: cancel after a handful of completions.
	ctx, cancel := context.WithCancel(context.Background())
	var n atomic.Int32
	r := &Runner{Oracle: NewOracle(g), Workers: 2, CheckpointPath: ckpt, CheckpointEvery: 4,
		Progress: func(done, total int) {
			if n.Add(1) == 10 {
				cancel()
			}
		}}
	if _, _, err := r.Run(ctx); err == nil {
		t.Fatal("canceled run must return ctx error")
	}
	data, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatalf("checkpoint not written: %v", err)
	}
	var ck checkpoint
	if err := json.Unmarshal(data, &ck); err != nil {
		t.Fatal(err)
	}
	if len(ck.Outcomes) == 0 {
		t.Fatal("checkpoint holds no outcomes")
	}

	// Resume and converge to the same manifest digest.
	r2 := &Runner{Oracle: NewOracle(g), Workers: 3, CheckpointPath: ckpt}
	rep, _, err := r2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Resumed == 0 {
		t.Fatal("resume loaded nothing from checkpoint")
	}
	if rep.ManifestDigest != ref.ManifestDigest {
		t.Fatalf("resumed digest %s != clean digest %s", rep.ManifestDigest, ref.ManifestDigest)
	}

	// A checkpoint for another spec must be refused.
	other, err := NewGenerator(testSpec(31))
	if err != nil {
		t.Fatal(err)
	}
	r3 := &Runner{Oracle: NewOracle(other), Workers: 1, CheckpointPath: ckpt}
	if _, _, err := r3.Run(context.Background()); err == nil {
		t.Fatal("checkpoint with mismatched spec digest must be rejected")
	}
}

func TestShrinkMinimizesCounterexample(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus sweep in -short mode")
	}
	s := testSpec(60)
	s.Utils = []float64{1.5}
	s.TaskCounts = []int{4}
	g, err := NewGenerator(s)
	if err != nil {
		t.Fatal(err)
	}
	o := NewOracle(g)
	o.InjectVerdictBug = true
	ctx := context.Background()

	// Find a violating instance.
	var idx = -1
	for i := 0; i < g.Count(); i++ {
		if out := o.Check(ctx, i); out.Class == ClassViolation {
			idx = i
			break
		}
	}
	if idx < 0 {
		t.Fatal("no violating instance in overloaded slice")
	}
	item, err := o.Generated(idx)
	if err != nil {
		t.Fatal(err)
	}
	min, vs, steps := Shrink(ctx, o, item.Scenario)
	if len(vs) == 0 {
		t.Fatal("shrunk scenario lost the violation")
	}
	if steps == 0 {
		t.Fatal("shrinker evaluated no candidates")
	}
	if len(min.Tasks) > len(item.Scenario.Tasks) {
		t.Fatalf("shrink grew the task set: %d > %d", len(min.Tasks), len(item.Scenario.Tasks))
	}
	if len(min.Tasks) == len(item.Scenario.Tasks) && min.HorizonMs >= item.Scenario.HorizonMs && item.Scenario.HorizonMs > 2 {
		t.Fatalf("shrinker made no progress: %d tasks, horizon %v", len(min.Tasks), min.HorizonMs)
	}

	dir := t.TempDir()
	path, err := WriteRepro(dir, &Repro{ID: item.ID, SpecDigest: g.Digest(), Index: idx, Violations: vs, Scenario: min})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rp Repro
	if err := json.Unmarshal(data, &rp); err != nil {
		t.Fatalf("repro not valid JSON: %v", err)
	}
	if rp.ID != item.ID || rp.Scenario == nil || len(rp.Scenario.Tasks) != len(min.Tasks) {
		t.Fatalf("repro round-trip mismatch: %+v", rp)
	}
}

func TestShrinkNonViolatingIsNoop(t *testing.T) {
	g, err := NewGenerator(testSpec(10))
	if err != nil {
		t.Fatal(err)
	}
	o := NewOracle(g)
	it, err := o.Generated(0)
	if err != nil {
		t.Fatal(err)
	}
	min, vs, steps := Shrink(context.Background(), o, it.Scenario)
	if len(vs) != 0 || steps != 0 {
		t.Fatalf("non-violating scenario shrank: %v (%d steps)", vs, steps)
	}
	if len(min.Tasks) != len(it.Scenario.Tasks) {
		t.Fatal("no-op shrink changed the scenario")
	}
}

func TestCorpusMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	Instrument(reg)
	defer Instrument(nil)
	g, err := NewGenerator(testSpec(8))
	if err != nil {
		t.Fatal(err)
	}
	o := NewOracle(g)
	for i := 0; i < g.Count(); i++ {
		o.Check(context.Background(), i)
	}
	snap := reg.Snapshot()
	gen, _ := snap.Get("corpus.scenarios_generated")
	sim, _ := snap.Get("corpus.sim_runs")
	if gen.Value == 0 || sim.Value == 0 {
		t.Fatalf("corpus counters unwired: generated=%d sim_runs=%d", gen.Value, sim.Value)
	}
}
