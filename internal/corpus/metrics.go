package corpus

import (
	"sync/atomic"

	"rtmdm/internal/metrics"
)

// cInstruments bundles the corpus counters so they swap atomically; the
// zero value's nil counters are no-ops, keeping the disabled path free.
type cInstruments struct {
	generated      *metrics.Counter
	generateErrors *metrics.Counter
	violations     *metrics.Counter
	unsupported    *metrics.Counter
	simRuns        *metrics.Counter
	faultedRuns    *metrics.Counter
	shrinkSteps    *metrics.Counter
	checkpoints    *metrics.Counter
}

var instr atomic.Pointer[cInstruments]

func init() { instr.Store(&cInstruments{}) }

// Instrument wires the corpus counters to the registry; Instrument(nil)
// disables them again. See docs/OBSERVABILITY.md for the catalogue.
func Instrument(r *metrics.Registry) {
	if r == nil {
		instr.Store(&cInstruments{})
		return
	}
	instr.Store(&cInstruments{
		generated:      r.Counter("corpus.scenarios_generated", "scenarios", "corpus instances expanded from the spec"),
		generateErrors: r.Counter("corpus.generate_errors", "scenarios", "axis draws with no activation-feasible workload after the salt ladder"),
		violations:     r.Counter("corpus.violations", "scenarios", "scenarios where a soundness or parity property failed"),
		unsupported:    r.Counter("corpus.analysis_unsupported", "scenarios", "scenarios whose drawn policy has no sound schedulability test"),
		simRuns:        r.Counter("corpus.sim_runs", "runs", "nominal simulations executed by the oracle"),
		faultedRuns:    r.Counter("corpus.faulted_runs", "runs", "fault-injected simulations executed by the oracle"),
		shrinkSteps:    r.Counter("corpus.shrink_steps", "candidates", "shrink candidates evaluated while minimizing a counterexample"),
		checkpoints:    r.Counter("corpus.checkpoints_written", "files", "resumable checkpoint files written by the runner"),
	})
}
