package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"time"

	"rtmdm/internal/metrics"
	"rtmdm/internal/scenario"
)

// TenantHeader carries the tenant identity on every gateway request;
// absent means the anonymous default tenant (weight 1 share).
const TenantHeader = "X-Rtmdm-Tenant"

// ShardHeader reports, on every proxied response, which shard served the
// request — the observable half of the routing contract.
const ShardHeader = "X-Rtmdm-Shard"

// Config sizes the gateway. The zero value plus a shard list is usable:
// every other field has a production default applied by NewGateway.
type Config struct {
	// Shards lists the rtmdm-serve base URLs (required, order defines
	// shard indices 0..N-1 on the ring).
	Shards []string
	// Replicas is the virtual-point count per shard on the ring
	// (default 64).
	Replicas int
	// ShardTimeout bounds each proxied attempt (default 15s).
	ShardTimeout time.Duration
	// Retries is the extra attempts after a failed shard round trip
	// (transport error, 429, 502, 503, 504); default 2.
	Retries int
	// RetryBackoff is the first retry's backoff, doubling per attempt
	// (default 50ms).
	RetryBackoff time.Duration
	// FailThreshold is the consecutive-failure count that marks a shard
	// degraded (default 3); degraded shards fail fast until a probe
	// succeeds.
	FailThreshold int
	// ProbeInterval is how long a degraded shard rests before one
	// half-open probe request is let through (default 1s).
	ProbeInterval time.Duration
	// AdmitWindow gathers concurrent admissions per shard and forwards
	// them in (request_id, node) order (default 2ms; negative disables
	// batching — requests still flow through the per-node FIFO lanes).
	AdmitWindow time.Duration
	// MaxInflight bounds concurrent forwards per shard (default 16).
	MaxInflight int
	// TenantWeights enables per-tenant quotas with weighted fairness;
	// nil disables quota enforcement.
	TenantWeights map[string]int
	// TenantBudget is the global in-flight budget the weights divide
	// (default 64).
	TenantBudget int
	// MaxBodyBytes caps request bodies (default 1 MiB).
	MaxBodyBytes int64
	// Registry receives the gateway.* metric family; nil disables
	// instrumentation.
	Registry *metrics.Registry
	// Transport overrides the shard HTTP transport (tests); nil uses
	// http.DefaultTransport.
	Transport http.RoundTripper
}

func (c Config) withDefaults() Config {
	if c.Replicas <= 0 {
		c.Replicas = 64
	}
	if c.ShardTimeout <= 0 {
		c.ShardTimeout = 15 * time.Second
	}
	if c.Retries < 0 {
		c.Retries = 0
	} else if c.Retries == 0 {
		c.Retries = 2
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 50 * time.Millisecond
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = 3
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = time.Second
	}
	if c.AdmitWindow == 0 {
		c.AdmitWindow = 2 * time.Millisecond
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 16
	}
	if c.TenantBudget <= 0 {
		c.TenantBudget = 64
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	return c
}

// Routes is the gateway's route table, shared by NewGateway and the
// docs/CLUSTER.md doc-sync test so the documented endpoint list cannot
// drift from the mounted one.
func Routes() []string {
	return []string{
		"GET /healthz",
		"GET /v1/metrics",
		"POST /v1/admit",
		"POST /v1/analyze",
		"POST /v1/simulate",
	}
}

// Gateway routes admission-cluster traffic to rtmdm-serve shards: /v1/admit
// by consistent hash of the node name, /v1/analyze and /v1/simulate by
// consistent hash of the canonical scenario (cache affinity). Create with
// NewGateway, mount as an http.Handler, call Shutdown before exit.
type Gateway struct {
	cfg    Config
	mux    *http.ServeMux
	ring   *Ring
	met    *GatewayMetrics
	quotas *Quotas
	shards []*shard
	base   context.Context
	cancel context.CancelFunc

	// drainMu/idle track live admit-drain and lane goroutines, using the
	// cond-over-count pattern (a WaitGroup forbids Add racing Wait).
	drainMu sync.Mutex
	idle    *sync.Cond
	active  int
}

// NewGateway builds a ready-to-serve Gateway from cfg.
func NewGateway(cfg Config) (*Gateway, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("cluster: gateway needs at least one shard URL")
	}
	ring, err := NewRing(len(cfg.Shards), cfg.Replicas)
	if err != nil {
		return nil, err
	}
	var quotas *Quotas
	if cfg.TenantWeights != nil {
		if quotas, err = NewQuotas(cfg.TenantBudget, cfg.TenantWeights); err != nil {
			return nil, err
		}
	}
	base, cancel := context.WithCancel(context.Background())
	g := &Gateway{
		cfg:    cfg,
		mux:    http.NewServeMux(),
		ring:   ring,
		met:    RegisterMetrics(cfg.Registry),
		quotas: quotas,
		base:   base,
		cancel: cancel,
	}
	g.idle = sync.NewCond(&g.drainMu)
	transport := cfg.Transport
	if transport == nil {
		transport = http.DefaultTransport
	}
	for i, url := range cfg.Shards {
		g.shards = append(g.shards, &shard{
			gw:         g,
			index:      i,
			base:       strings.TrimRight(url, "/"),
			client:     &http.Client{Transport: transport},
			sem:        make(chan struct{}, cfg.MaxInflight),
			lanes:      map[string][]*admitCall{},
			laneActive: map[string]bool{},
		})
	}
	g.met.shardCount.Set(int64(len(g.shards)))

	handlers := map[string]http.HandlerFunc{
		"GET /healthz":      g.handleHealthz,
		"GET /v1/metrics":   g.handleMetrics,
		"POST /v1/admit":    g.handleAdmit,
		"POST /v1/analyze":  g.proxyByScenario("/v1/analyze"),
		"POST /v1/simulate": g.proxyByScenario("/v1/simulate"),
	}
	for _, pattern := range Routes() {
		g.handle(pattern, handlers[pattern])
	}
	return g, nil
}

// ServeHTTP implements http.Handler.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) { g.mux.ServeHTTP(w, r) }

// Shutdown cancels routing and waits for in-flight admit lanes to drain.
func (g *Gateway) Shutdown(ctx context.Context) error {
	g.cancel()
	done := make(chan struct{})
	go func() {
		g.drainMu.Lock()
		for g.active > 0 {
			g.idle.Wait()
		}
		g.drainMu.Unlock()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (g *Gateway) addActive() {
	g.drainMu.Lock()
	g.active++
	g.drainMu.Unlock()
}

func (g *Gateway) endActive() {
	g.drainMu.Lock()
	g.active--
	if g.active == 0 {
		g.idle.Broadcast()
	}
	g.drainMu.Unlock()
}

// handle mounts h under the shared middleware: accounting, latency,
// panic-to-500, and the per-tenant quota gate on the proxied routes.
func (g *Gateway) handle(pattern string, h http.HandlerFunc) {
	proxied := strings.HasPrefix(pattern, "POST ")
	g.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		g.met.requests.Inc()
		g.met.inflight.Add(1)
		defer func() {
			g.met.inflight.Add(-1)
			g.met.latency.Observe(time.Since(start).Nanoseconds())
			if v := recover(); v != nil {
				writeError(w, http.StatusInternalServerError,
					fmt.Sprintf("gateway panic: %v\n%s", v, debug.Stack()))
			}
		}()
		if proxied && g.quotas != nil {
			tenant := tenantOf(r)
			release, ok := g.quotas.Acquire(tenant)
			if !ok {
				g.met.quotaRej.Inc()
				w.Header().Set("Retry-After", "1")
				writeError(w, http.StatusTooManyRequests,
					fmt.Sprintf("tenant %q at its weighted in-flight cap (%d); retry shortly",
						tenant, g.quotas.Limit(tenant)))
				return
			}
			defer release()
		}
		h(w, r)
	})
}

func tenantOf(r *http.Request) string {
	if t := r.Header.Get(TenantHeader); t != "" {
		return t
	}
	return "default"
}

// shardHealth is one shard's entry in the /healthz report.
type shardHealth struct {
	Index    int    `json:"index"`
	URL      string `json:"url"`
	Degraded bool   `json:"degraded"`
}

func (g *Gateway) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	out := struct {
		Status  string        `json:"status"`
		Shards  []shardHealth `json:"shards"`
		Tenants []string      `json:"tenants,omitempty"`
	}{Status: "ok", Tenants: g.quotas.Tenants()}
	degraded := 0
	for _, sh := range g.shards {
		d := sh.isDegraded()
		if d {
			degraded++
		}
		out.Shards = append(out.Shards, shardHealth{Index: sh.index, URL: sh.base, Degraded: d})
	}
	if degraded == len(g.shards) {
		out.Status = "degraded"
	}
	writeJSON(w, http.StatusOK, out)
}

func (g *Gateway) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	if g.cfg.Registry == nil {
		writeError(w, http.StatusNotFound, "metrics registry not enabled")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	g.cfg.Registry.Snapshot().WriteJSON(w)
}

// admitCall is one admission request traversing a shard's batcher: the
// raw body, the ordering key, and the rendezvous the handler waits on.
type admitCall struct {
	body      []byte
	requestID uint64
	node      string
	res       *proxyResult
	err       error
	done      chan struct{}
}

// handleAdmit routes an admission to its node's shard through the
// per-shard batcher. Only request_id and node are decoded here — full
// validation is the shard's job; the gateway needs just the routing and
// ordering keys.
func (g *Gateway) handleAdmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, g.cfg.MaxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	var key struct {
		RequestID uint64 `json:"request_id"`
		Node      string `json:"node"`
	}
	if err := json.Unmarshal(body, &key); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("decode request: %v", err))
		return
	}
	if key.Node == "" {
		writeError(w, http.StatusBadRequest, "node must be set")
		return
	}
	sh := g.shards[g.ring.Shard(key.Node)]
	cl := &admitCall{body: body, requestID: key.RequestID, node: key.Node, done: make(chan struct{})}
	sh.enqueue(cl)
	select {
	case <-cl.done:
	case <-r.Context().Done():
		writeError(w, http.StatusServiceUnavailable, r.Context().Err().Error())
		return
	case <-g.base.Done():
		writeError(w, http.StatusServiceUnavailable, "gateway shutting down")
		return
	}
	g.writeProxied(w, sh, cl.res, cl.err)
}

// proxyByScenario returns a handler that forwards path to the shard
// owning the request's canonical scenario hash, giving every spelling of
// one deployment a home shard and therefore one result cache to hit.
// Bodies whose scenario cannot even be parsed still route (by raw-body
// hash) so the owning shard produces the authoritative 400.
func (g *Gateway) proxyByScenario(path string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, g.cfg.MaxBodyBytes))
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		key := "raw:" + string(body)
		var req struct {
			Scenario json.RawMessage `json:"scenario"`
		}
		if err := json.Unmarshal(body, &req); err == nil && len(req.Scenario) > 0 {
			if sc, err := scenario.Parse(req.Scenario); err == nil {
				if h, err := scenario.CanonicalHash(sc); err == nil {
					key = "scenario:" + h
				}
			}
		}
		sh := g.shards[g.ring.Shard(key)]
		res, err := sh.forward(r.Context(), path, body)
		g.writeProxied(w, sh, res, err)
	}
}

// writeProxied relays a shard's response (or the routing failure) to the
// client, stamping the serving shard.
func (g *Gateway) writeProxied(w http.ResponseWriter, sh *shard, res *proxyResult, err error) {
	w.Header().Set(ShardHeader, fmt.Sprintf("%d", sh.index))
	if err != nil {
		g.met.shardErrs.Inc()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusBadGateway, fmt.Sprintf("shard %d (%s): %v", sh.index, sh.base, err))
		return
	}
	if res.cache != "" {
		w.Header().Set("X-Rtmdm-Cache", res.cache)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(res.status)
	w.Write(res.body)
}

// proxyResult is a shard's response, buffered so retries can re-issue
// the request and coalesced waiters can share it.
type proxyResult struct {
	status int
	cache  string
	body   []byte
}

// errDegraded fails a request fast against a shard resting in its
// degraded window instead of burning a timeout per request.
var errDegraded = fmt.Errorf("cluster: shard degraded; probe pending")

// shard is one rtmdm-serve instance as seen by the gateway: its base
// URL, the bounded-fan-out semaphore, the failure breaker, and the
// admission batcher with per-node FIFO lanes.
type shard struct {
	gw     *Gateway
	index  int
	base   string
	client *http.Client
	sem    chan struct{}

	// breaker state.
	bmu         sync.Mutex
	consecFails int
	degraded    bool
	lastFail    time.Time
	probing     bool

	// admission batcher: pending gathers one window's arrivals; lanes
	// serialize forwards per node so a node's requests reach the shard
	// in the order the batch sort put them in.
	amu        sync.Mutex
	pending    []*admitCall
	draining   bool
	lanes      map[string][]*admitCall
	laneActive map[string]bool
}

func (sh *shard) isDegraded() bool {
	sh.bmu.Lock()
	defer sh.bmu.Unlock()
	return sh.degraded
}

// allowAttempt gates one forward attempt through the breaker: healthy
// shards always pass; a degraded shard passes exactly one half-open
// probe per ProbeInterval and fails everything else fast.
func (sh *shard) allowAttempt() (probe bool, ok bool) {
	sh.bmu.Lock()
	defer sh.bmu.Unlock()
	if !sh.degraded {
		return false, true
	}
	if sh.probing || time.Since(sh.lastFail) < sh.gw.cfg.ProbeInterval {
		return false, false
	}
	sh.probing = true
	return true, true
}

// recordAttempt feeds the breaker: a success closes it; a failure counts
// toward the threshold and, once crossed, opens it.
func (sh *shard) recordAttempt(probe, ok bool) {
	sh.bmu.Lock()
	defer sh.bmu.Unlock()
	if probe {
		sh.probing = false
	}
	if ok {
		if sh.degraded {
			sh.gw.met.degraded.Add(-1)
		}
		sh.consecFails, sh.degraded = 0, false
		return
	}
	sh.consecFails++
	sh.lastFail = time.Now()
	if !sh.degraded && sh.consecFails >= sh.gw.cfg.FailThreshold {
		sh.degraded = true
		sh.gw.met.trips.Inc()
		sh.gw.met.degraded.Add(1)
	}
}

// retryableStatus marks shard responses worth another attempt: load
// shedding (429) and gateway-class failures. 4xx validation errors and
// 200s pass through; 500 passes through too — it is a shard bug, and
// retrying a panic is how panics multiply.
func retryableStatus(code int) bool {
	switch code {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// forward proxies one request to the shard with bounded fan-out, a
// per-attempt timeout, retry with doubling backoff, and breaker
// accounting. It returns the first conclusive shard response, or the
// last error once the attempt budget is spent.
func (sh *shard) forward(ctx context.Context, path string, body []byte) (*proxyResult, error) {
	backoff := sh.gw.cfg.RetryBackoff
	var lastErr error
	for attempt := 0; attempt <= sh.gw.cfg.Retries; attempt++ {
		if attempt > 0 {
			sh.gw.met.retries.Inc()
			t := time.NewTimer(backoff)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return nil, ctx.Err()
			case <-sh.gw.base.Done():
				t.Stop()
				return nil, fmt.Errorf("gateway shutting down")
			}
			backoff *= 2
		}
		probe, ok := sh.allowAttempt()
		if !ok {
			lastErr = errDegraded
			continue
		}
		res, err := sh.attempt(ctx, path, body)
		if err != nil {
			sh.recordAttempt(probe, false)
			lastErr = err
			continue
		}
		if retryableStatus(res.status) {
			// 429 is the shard shedding load, not failing: back off and
			// retry without charging the breaker. The other retryable
			// statuses are failures and count toward degradation.
			sh.recordAttempt(probe, res.status == http.StatusTooManyRequests)
			lastErr = fmt.Errorf("shard status %d", res.status)
			if attempt == sh.gw.cfg.Retries {
				// Out of budget: relay the shard's own response rather
				// than masking it with a gateway error.
				return res, nil
			}
			continue
		}
		sh.recordAttempt(probe, true)
		return res, nil
	}
	return nil, lastErr
}

// attempt is one bounded round trip to the shard.
func (sh *shard) attempt(ctx context.Context, path string, body []byte) (*proxyResult, error) {
	select {
	case sh.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	defer func() { <-sh.sem }()
	actx, cancel := context.WithTimeout(ctx, sh.gw.cfg.ShardTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodPost, sh.base+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := sh.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	return &proxyResult{status: resp.StatusCode, cache: resp.Header.Get("X-Rtmdm-Cache"), body: data}, nil
}

// enqueue adds an admission to the shard's current batch window,
// starting the drain goroutine when none is live.
func (sh *shard) enqueue(cl *admitCall) {
	sh.amu.Lock()
	sh.pending = append(sh.pending, cl)
	if !sh.draining {
		sh.draining = true
		sh.gw.addActive()
		go sh.drainAdmits()
	}
	sh.amu.Unlock()
}

// drainAdmits gathers one admission window, sorts it by (request_id,
// node), and feeds the calls into per-node FIFO lanes — so concurrent
// requests for one node always reach the shard in request_id order, and
// requests for different nodes fan out in parallel under the shard's
// in-flight bound. Loops until the queue is empty.
func (sh *shard) drainAdmits() {
	defer sh.gw.endActive()
	for {
		sh.waitWindow()
		sh.amu.Lock()
		batch := sh.pending
		sh.pending = nil
		if len(batch) == 0 {
			sh.draining = false
			sh.amu.Unlock()
			return
		}
		sort.SliceStable(batch, func(i, j int) bool {
			if batch[i].requestID != batch[j].requestID {
				return batch[i].requestID < batch[j].requestID
			}
			return batch[i].node < batch[j].node
		})
		sh.gw.met.batches.Inc()
		for _, cl := range batch {
			sh.lanes[cl.node] = append(sh.lanes[cl.node], cl)
			if !sh.laneActive[cl.node] {
				sh.laneActive[cl.node] = true
				sh.gw.addActive()
				go sh.runLane(cl.node)
			}
		}
		sh.amu.Unlock()
	}
}

// waitWindow sleeps out the batching window, returning early on
// shutdown (pending admissions are still forwarded, just unbatched).
func (sh *shard) waitWindow() {
	if sh.gw.cfg.AdmitWindow <= 0 {
		return
	}
	t := time.NewTimer(sh.gw.cfg.AdmitWindow)
	defer t.Stop()
	select {
	case <-t.C:
	case <-sh.gw.base.Done():
	}
}

// runLane forwards one node's queued admissions sequentially until the
// lane empties. Sequential-per-node is the determinism contract: the
// shard sees each node's requests in the batcher's sorted order.
func (sh *shard) runLane(node string) {
	defer sh.gw.endActive()
	for {
		sh.amu.Lock()
		q := sh.lanes[node]
		if len(q) == 0 {
			delete(sh.lanes, node)
			sh.laneActive[node] = false
			delete(sh.laneActive, node)
			sh.amu.Unlock()
			return
		}
		cl := q[0]
		sh.lanes[node] = q[1:]
		sh.amu.Unlock()

		sh.gw.met.forwarded.Inc()
		cl.res, cl.err = sh.forward(sh.gw.base, "/v1/admit", cl.body)
		close(cl.done)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
