package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"time"

	"rtmdm/internal/metrics"
	"rtmdm/internal/scenario"
)

// TenantHeader carries the tenant identity on every gateway request;
// absent means the anonymous default tenant (weight 1 share).
const TenantHeader = "X-Rtmdm-Tenant"

// ShardHeader reports, on every proxied response, which shard served the
// request — the observable half of the routing contract. The value is
// the shard's index in the serving layout, or -1 when the request rode a
// post-abort per-node override outside the active ring.
const ShardHeader = "X-Rtmdm-Shard"

// EpochHeader reports the ring epoch the request was routed under, so
// clients and smoke scripts can observe migrations without scraping
// metrics.
const EpochHeader = "X-Rtmdm-Epoch"

// Degraded-mode policies for requests whose target node is mid-handoff
// or whose shard is unreachable during a migration window.
const (
	// DegradedConservativeDeny parks the request until its node finishes
	// moving (or the client's deadline fires): no admission is ever
	// decided against state that is in transit. This is the default — the
	// admission service's safety story is "never answer from stale state".
	DegradedConservativeDeny = "conservative-deny"
	// DegradedFailFast answers 503 immediately so latency-sensitive
	// callers can fail over themselves.
	DegradedFailFast = "fail-fast"
)

// Config sizes the gateway. The zero value plus a shard list is usable:
// every other field has a production default applied by NewGateway.
type Config struct {
	// Shards lists the rtmdm-serve base URLs (required, order defines
	// shard indices 0..N-1 on the ring).
	Shards []string
	// Replicas is the virtual-point count per shard on the ring
	// (default 64).
	Replicas int
	// ShardTimeout bounds each proxied attempt (default 15s).
	ShardTimeout time.Duration
	// Retries is the extra attempts after a failed shard round trip
	// (transport error, 429, 502, 503, 504); default 2.
	Retries int
	// RetryBackoff is the first retry's backoff, doubling per attempt
	// (default 50ms).
	RetryBackoff time.Duration
	// FailThreshold is the consecutive-failure count that marks a shard
	// degraded (default 3); degraded shards fail fast until a probe
	// succeeds.
	FailThreshold int
	// ProbeInterval is how long a degraded shard rests before one
	// half-open probe request is let through (default 1s).
	ProbeInterval time.Duration
	// AdmitWindow gathers concurrent admissions per shard and forwards
	// them in (request_id, node) order (default 2ms; negative disables
	// batching — requests still flow through the per-node FIFO lanes).
	AdmitWindow time.Duration
	// MaxInflight bounds concurrent forwards per shard (default 16).
	MaxInflight int
	// TenantWeights enables per-tenant quotas with weighted fairness;
	// nil disables quota enforcement.
	TenantWeights map[string]int
	// TenantBudget is the global in-flight budget the weights divide
	// (default 64).
	TenantBudget int
	// MaxBodyBytes caps request bodies (default 1 MiB).
	MaxBodyBytes int64
	// RequestBudget is the end-to-end deadline per proxied request,
	// covering lane queueing, migration waits, and every retry attempt
	// (default 45s; negative disables).
	RequestBudget time.Duration
	// HedgeDelay, when positive, issues one hedged attempt for the
	// read-only routes (/v1/analyze, /v1/simulate) against the next ring
	// owner if the primary has not answered within the delay — sound
	// because the engine is deterministic, so any shard computes the
	// same answer. 0 disables hedging (default).
	HedgeDelay time.Duration
	// DegradedMode picks the policy for requests caught behind a
	// migration: DegradedConservativeDeny (default) or DegradedFailFast.
	DegradedMode string
	// Registry receives the gateway.* metric family; nil disables
	// instrumentation.
	Registry *metrics.Registry
	// Transport overrides the shard HTTP transport (tests, chaos
	// injection); nil uses http.DefaultTransport.
	Transport http.RoundTripper
}

func (c Config) withDefaults() Config {
	if c.Replicas <= 0 {
		c.Replicas = 64
	}
	if c.ShardTimeout <= 0 {
		c.ShardTimeout = 15 * time.Second
	}
	if c.Retries < 0 {
		c.Retries = 0
	} else if c.Retries == 0 {
		c.Retries = 2
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 50 * time.Millisecond
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = 3
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = time.Second
	}
	if c.AdmitWindow == 0 {
		c.AdmitWindow = 2 * time.Millisecond
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 16
	}
	if c.TenantBudget <= 0 {
		c.TenantBudget = 64
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.RequestBudget == 0 {
		c.RequestBudget = 45 * time.Second
	}
	if c.RequestBudget < 0 {
		c.RequestBudget = 0
	}
	if c.DegradedMode == "" {
		c.DegradedMode = DegradedConservativeDeny
	}
	return c
}

// Routes is the gateway's route table, shared by NewGateway and the
// docs/CLUSTER.md doc-sync test so the documented endpoint list cannot
// drift from the mounted one.
func Routes() []string {
	return []string{
		"GET /healthz",
		"GET /readyz",
		"GET /v1/metrics",
		"POST /v1/admit",
		"POST /v1/analyze",
		"POST /v1/reshard",
		"POST /v1/simulate",
	}
}

// layout is one immutable routing epoch: a ring over an ordered shard
// list, plus per-node overrides for state stranded off-ring by an
// aborted migration. The gateway swaps layouts atomically under routeMu;
// readers never see a half-built one.
type layout struct {
	epoch  uint64
	ring   *Ring
	urls   []string
	shards []*shard
	// overrides pins specific nodes to a shard regardless of the ring —
	// the residue of an aborted migration whose already-moved nodes live
	// on their new owner until the next successful reshard.
	overrides map[string]*shard
}

// owner resolves a node's serving shard under this layout.
func (l *layout) owner(node string) *shard {
	if sh, ok := l.overrides[node]; ok {
		return sh
	}
	return l.shards[l.ring.Shard(node)]
}

func (l *layout) ownerURL(node string) string { return l.owner(node).base }

// indexOf returns the shard's position in the layout's ring, or -1 for
// override-only shards.
func (l *layout) indexOf(sh *shard) int {
	for i, s := range l.shards {
		if s == sh {
			return i
		}
	}
	return -1
}

// allShards lists the layout's ring shards plus any override-only
// shards, deduplicated — every shard that may hold authoritative state.
func (l *layout) allShards() []*shard {
	out := append([]*shard(nil), l.shards...)
	seen := map[*shard]bool{}
	for _, sh := range out {
		seen[sh] = true
	}
	names := make([]string, 0, len(l.overrides))
	for node := range l.overrides {
		names = append(names, node)
	}
	sort.Strings(names)
	for _, node := range names {
		if sh := l.overrides[node]; !seen[sh] {
			seen[sh] = true
			out = append(out, sh)
		}
	}
	return out
}

// withOverrides derives a layout with extra node→shard pins (the abort
// path). Existing overrides are kept unless re-pinned.
func (l *layout) withOverrides(epoch uint64, extra map[string]*shard) *layout {
	nl := &layout{epoch: epoch, ring: l.ring, urls: l.urls, shards: l.shards,
		overrides: make(map[string]*shard, len(l.overrides)+len(extra))}
	for node, sh := range l.overrides {
		nl.overrides[node] = sh
	}
	for node, sh := range extra {
		nl.overrides[node] = sh
	}
	return nl
}

// movingNode tracks one node's handoff; moved closes the instant its
// state is verified on the new owner, releasing parked requests early
// instead of holding them for the whole migration window.
type movingNode struct {
	moved chan struct{}
}

// migration is the window during which two layouts are live. Routing
// keeps serving nodes whose owner is identical under both; nodes whose
// owner differs are frozen until their handoff completes (or the window
// ends). done closes exactly once when the window ends, either by
// committing the to-layout or aborting back to from.
type migration struct {
	from, to *layout
	moving   map[string]*movingNode
	done     chan struct{}
	aborted  bool // written once before done closes; read after
}

// frozen reports whether a node must not be routed during this window:
// its owner changes between the layouts, so serving it on either side
// would race its state transfer. A pure function of ring math — new
// nodes created mid-window are judged correctly without bookkeeping.
func (m *migration) frozen(node string) bool {
	return m.from.ownerURL(node) != m.to.ownerURL(node)
}

// Gateway routes admission-cluster traffic to rtmdm-serve shards: /v1/admit
// by consistent hash of the node name, /v1/analyze and /v1/simulate by
// consistent hash of the canonical scenario (cache affinity). Layouts are
// epoch-versioned and live-reshardable via POST /v1/reshard. Create with
// NewGateway, mount as an http.Handler, call Shutdown before exit.
type Gateway struct {
	cfg    Config
	mux    *http.ServeMux
	met    *GatewayMetrics
	quotas *Quotas
	base   context.Context
	cancel context.CancelFunc

	// routeMu orders routing decisions against layout/migration swaps:
	// requests route (and enqueue) under RLock; Reshard installs and
	// clears the migration under Lock, so after the barrier no request
	// can be in flight toward a stale lane unseen by the drain step.
	routeMu sync.RWMutex
	cur     *layout
	mig     *migration

	// reshardMu serializes migrations (one at a time; TryLock → 409).
	reshardMu sync.Mutex

	// pool reuses shard objects by base URL across layouts so breaker
	// state, in-flight bounds, and lanes survive resharding.
	poolMu sync.Mutex
	pool   map[string]*shard

	// drainMu/idle track live admit-drain and lane goroutines, using the
	// cond-over-count pattern (a WaitGroup forbids Add racing Wait).
	drainMu sync.Mutex
	idle    *sync.Cond
	active  int
}

// NewGateway builds a ready-to-serve Gateway from cfg.
func NewGateway(cfg Config) (*Gateway, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("cluster: gateway needs at least one shard URL")
	}
	if cfg.DegradedMode != DegradedConservativeDeny && cfg.DegradedMode != DegradedFailFast {
		return nil, fmt.Errorf("cluster: unknown degraded mode %q (want %s or %s)",
			cfg.DegradedMode, DegradedConservativeDeny, DegradedFailFast)
	}
	var quotas *Quotas
	var err error
	if cfg.TenantWeights != nil {
		if quotas, err = NewQuotas(cfg.TenantBudget, cfg.TenantWeights); err != nil {
			return nil, err
		}
	}
	// Audited lifecycle root: the gateway's base context outlives any one
	// request; every request handler derives from it and Shutdown cancels it.
	base, cancel := context.WithCancel(context.Background()) //lint:allow ctxflow -- gateway-lifetime root; cancelled by Shutdown, request ctxs derive from it
	g := &Gateway{
		cfg:    cfg,
		mux:    http.NewServeMux(),
		met:    RegisterMetrics(cfg.Registry),
		quotas: quotas,
		base:   base,
		cancel: cancel,
		pool:   map[string]*shard{},
	}
	g.idle = sync.NewCond(&g.drainMu)
	lay, err := g.newLayout(1, cfg.Shards)
	if err != nil {
		cancel()
		return nil, err
	}
	g.cur = lay
	g.met.shardCount.Set(int64(len(lay.shards)))
	g.met.epoch.Set(int64(lay.epoch))

	handlers := map[string]http.HandlerFunc{
		"GET /healthz":      g.handleHealthz,
		"GET /readyz":       g.handleReadyz,
		"GET /v1/metrics":   g.handleMetrics,
		"POST /v1/admit":    g.handleAdmit,
		"POST /v1/analyze":  g.proxyByScenario("/v1/analyze"),
		"POST /v1/reshard":  g.handleReshard,
		"POST /v1/simulate": g.proxyByScenario("/v1/simulate"),
	}
	for _, pattern := range Routes() {
		g.handle(pattern, handlers[pattern])
	}
	return g, nil
}

// newLayout builds a layout over urls, reusing pooled shard objects.
func (g *Gateway) newLayout(epoch uint64, urls []string) (*layout, error) {
	cleaned := make([]string, 0, len(urls))
	seen := map[string]bool{}
	for _, u := range urls {
		u = strings.TrimRight(strings.TrimSpace(u), "/")
		if u == "" {
			return nil, fmt.Errorf("cluster: empty shard URL in layout")
		}
		if seen[u] {
			return nil, fmt.Errorf("cluster: duplicate shard URL %q in layout", u)
		}
		seen[u] = true
		cleaned = append(cleaned, u)
	}
	ring, err := NewRing(len(cleaned), g.cfg.Replicas)
	if err != nil {
		return nil, err
	}
	lay := &layout{epoch: epoch, ring: ring, urls: cleaned}
	for _, u := range cleaned {
		lay.shards = append(lay.shards, g.shardFor(u))
	}
	return lay, nil
}

// shardFor returns the pooled shard for a base URL, creating it on first
// use. Pooling keeps breaker and lane state stable across layouts.
func (g *Gateway) shardFor(url string) *shard {
	g.poolMu.Lock()
	defer g.poolMu.Unlock()
	if sh, ok := g.pool[url]; ok {
		return sh
	}
	transport := g.cfg.Transport
	if transport == nil {
		transport = http.DefaultTransport
	}
	sh := &shard{
		gw:         g,
		base:       url,
		client:     &http.Client{Transport: transport},
		sem:        make(chan struct{}, g.cfg.MaxInflight),
		lanes:      map[string][]*admitCall{},
		laneActive: map[string]bool{},
	}
	g.pool[url] = sh
	return sh
}

// currentLayout snapshots the serving layout.
func (g *Gateway) currentLayout() *layout {
	g.routeMu.RLock()
	defer g.routeMu.RUnlock()
	return g.cur
}

// Epoch reports the serving layout's epoch.
func (g *Gateway) Epoch() uint64 { return g.currentLayout().epoch }

// ServeHTTP implements http.Handler.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) { g.mux.ServeHTTP(w, r) }

// Shutdown cancels routing and waits for in-flight admit lanes to drain.
func (g *Gateway) Shutdown(ctx context.Context) error {
	g.cancel()
	done := make(chan struct{})
	go func() {
		g.drainMu.Lock()
		for g.active > 0 {
			g.idle.Wait()
		}
		g.drainMu.Unlock()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (g *Gateway) addActive() {
	g.drainMu.Lock()
	g.active++
	g.drainMu.Unlock()
}

func (g *Gateway) endActive() {
	g.drainMu.Lock()
	g.active--
	if g.active == 0 {
		g.idle.Broadcast()
	}
	g.drainMu.Unlock()
}

// handle mounts h under the shared middleware: accounting, latency, and
// panic-to-500. Tenant quotas are acquired inside the proxied handlers
// (not here) so a slot's lifetime can be tied to the forward that spends
// shard capacity, not to the client connection — see handleAdmit.
func (g *Gateway) handle(pattern string, h http.HandlerFunc) {
	g.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		g.met.requests.Inc()
		g.met.inflight.Add(1)
		defer func() {
			g.met.inflight.Add(-1)
			g.met.latency.Observe(time.Since(start).Nanoseconds())
			if v := recover(); v != nil {
				writeError(w, http.StatusInternalServerError,
					fmt.Sprintf("gateway panic: %v\n%s", v, debug.Stack()))
			}
		}()
		h(w, r)
	})
}

func tenantOf(r *http.Request) string {
	if t := r.Header.Get(TenantHeader); t != "" {
		return t
	}
	return "default"
}

// acquireQuota claims the tenant's slot or writes the 429. The returned
// release is non-nil iff ok.
func (g *Gateway) acquireQuota(w http.ResponseWriter, r *http.Request) (func(), bool) {
	if g.quotas == nil {
		return func() {}, true
	}
	tenant := tenantOf(r)
	release, ok := g.quotas.Acquire(tenant)
	if !ok {
		g.met.quotaRej.Inc()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests,
			fmt.Sprintf("tenant %q at its weighted in-flight cap (%d); retry shortly",
				tenant, g.quotas.Limit(tenant)))
		return nil, false
	}
	return release, true
}

// requestCtx applies the per-request budget on top of the client's own
// context.
func (g *Gateway) requestCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if g.cfg.RequestBudget <= 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), g.cfg.RequestBudget)
}

// shardHealth is one shard's entry in the /healthz report.
type shardHealth struct {
	Index    int    `json:"index"`
	URL      string `json:"url"`
	Degraded bool   `json:"degraded"`
}

func (g *Gateway) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	g.routeMu.RLock()
	lay, mig := g.cur, g.mig
	g.routeMu.RUnlock()
	out := struct {
		Status    string        `json:"status"`
		Epoch     uint64        `json:"epoch"`
		Migrating bool          `json:"migrating"`
		Shards    []shardHealth `json:"shards"`
		Tenants   []string      `json:"tenants,omitempty"`
	}{Status: "ok", Epoch: lay.epoch, Migrating: mig != nil, Tenants: g.quotas.Tenants()}
	degraded := 0
	for i, sh := range lay.shards {
		d := sh.isDegraded()
		if d {
			degraded++
		}
		out.Shards = append(out.Shards, shardHealth{Index: i, URL: sh.base, Degraded: d})
	}
	if degraded == len(lay.shards) {
		out.Status = "degraded"
	}
	writeJSON(w, http.StatusOK, out)
}

// handleReadyz is the readiness gate, distinct from liveness: not ready
// while a reshard migration is in flight, so orchestrators pause new
// topology work (and external balancers drain politely) until routing
// is single-ring again.
func (g *Gateway) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	g.routeMu.RLock()
	epoch, migrating := g.cur.epoch, g.mig != nil
	g.routeMu.RUnlock()
	if migrating {
		writeJSON(w, http.StatusServiceUnavailable,
			map[string]any{"ready": false, "reason": "reshard migration in flight", "epoch": epoch})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ready": true, "epoch": epoch})
}

func (g *Gateway) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	if g.cfg.Registry == nil {
		writeError(w, http.StatusNotFound, "metrics registry not enabled")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	g.cfg.Registry.Snapshot().WriteJSON(w)
}

// admitCall is one admission request traversing a shard's batcher: the
// raw body, the ordering key, the rendezvous the handler waits on, and
// the tenant quota slot the forward spends. The slot is released when
// the forward completes — not when the client hangs up — so a flood of
// cancelled requests cannot outrun the shard capacity the quota models.
type admitCall struct {
	body      []byte
	requestID uint64
	node      string
	res       *proxyResult
	err       error
	done      chan struct{}

	release     func()
	releaseOnce sync.Once
}

// settle releases the call's quota slot (idempotent, nil-safe).
func (cl *admitCall) settle() {
	cl.releaseOnce.Do(func() {
		if cl.release != nil {
			cl.release()
		}
	})
}

// Routing errors placeAdmit can return.
var (
	errMigrating    = fmt.Errorf("cluster: node is mid-handoff; retry shortly")
	errShuttingDown = fmt.Errorf("cluster: gateway shutting down")
)

// placeAdmit routes cl to its node's owning shard and enqueues it,
// honoring an in-flight migration: nodes whose owner is unchanged
// enqueue immediately (non-moving nodes never stall); nodes mid-handoff
// park until their state lands on the new owner (conservative-deny) or
// fail fast, per Config.DegradedMode. Enqueueing happens under routeMu's
// read lock so the migration barrier can never miss an in-flight entry.
func (g *Gateway) placeAdmit(ctx context.Context, cl *admitCall) (*layout, *shard, error) {
	for {
		g.routeMu.RLock()
		mig := g.mig
		if mig == nil {
			lay := g.cur
			sh := lay.owner(cl.node)
			sh.enqueue(cl)
			g.routeMu.RUnlock()
			return lay, sh, nil
		}
		var mn *movingNode
		if !mig.frozen(cl.node) {
			lay := mig.from
			sh := lay.owner(cl.node)
			sh.enqueue(cl)
			g.routeMu.RUnlock()
			return lay, sh, nil
		}
		if mn = mig.moving[cl.node]; mn != nil {
			select {
			case <-mn.moved:
				// Handed off and verified: serve on the new owner without
				// waiting for the rest of the migration.
				lay := mig.to
				sh := lay.owner(cl.node)
				sh.enqueue(cl)
				g.routeMu.RUnlock()
				return lay, sh, nil
			default:
			}
		}
		g.routeMu.RUnlock()

		if g.cfg.DegradedMode == DegradedFailFast {
			return nil, nil, errMigrating
		}
		var movedCh chan struct{} // nil (blocks forever) when the node has no handoff entry
		if mn != nil {
			movedCh = mn.moved
		}
		select {
		case <-movedCh:
		case <-mig.done:
		case <-ctx.Done():
			return nil, nil, ctx.Err()
		case <-g.base.Done():
			return nil, nil, errShuttingDown
		}
		// Re-route under the lock: the migration may have advanced,
		// finished, or aborted.
	}
}

// handleAdmit routes an admission to its node's shard through the
// per-shard batcher. Only request_id and node are decoded here — full
// validation is the shard's job; the gateway needs just the routing and
// ordering keys.
func (g *Gateway) handleAdmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, g.cfg.MaxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	var key struct {
		RequestID uint64 `json:"request_id"`
		Node      string `json:"node"`
	}
	if err := json.Unmarshal(body, &key); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("decode request: %v", err))
		return
	}
	if key.Node == "" {
		writeError(w, http.StatusBadRequest, "node must be set")
		return
	}
	release, ok := g.acquireQuota(w, r)
	if !ok {
		return
	}
	ctx, cancel := g.requestCtx(r)
	defer cancel()
	cl := &admitCall{body: body, requestID: key.RequestID, node: key.Node,
		done: make(chan struct{}), release: release}
	lay, sh, err := g.placeAdmit(ctx, cl)
	if err != nil {
		cl.settle()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	select {
	case <-cl.done:
	case <-ctx.Done():
		// The client is gone (or the budget fired) but the forward is
		// already in its lane; the quota slot stays held until the lane
		// completes it — released there, not here.
		writeError(w, http.StatusServiceUnavailable, ctx.Err().Error())
		return
	case <-g.base.Done():
		writeError(w, http.StatusServiceUnavailable, "gateway shutting down")
		return
	}
	g.writeProxied(w, lay, sh, cl.res, cl.err)
}

// proxyByScenario returns a handler that forwards path to the shard
// owning the request's canonical scenario hash, giving every spelling of
// one deployment a home shard and therefore one result cache to hit.
// Bodies whose scenario cannot even be parsed still route (by raw-body
// hash) so the owning shard produces the authoritative 400. Reads may
// hedge one attempt to the next ring owner (Config.HedgeDelay).
func (g *Gateway) proxyByScenario(path string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, g.cfg.MaxBodyBytes))
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		release, ok := g.acquireQuota(w, r)
		if !ok {
			return
		}
		defer release()
		key := "raw:" + string(body)
		var req struct {
			Scenario json.RawMessage `json:"scenario"`
		}
		if err := json.Unmarshal(body, &req); err == nil && len(req.Scenario) > 0 {
			if sc, err := scenario.Parse(req.Scenario); err == nil {
				if h, err := scenario.CanonicalHash(sc); err == nil {
					key = "scenario:" + h
				}
			}
		}
		g.routeMu.RLock()
		lay := g.cur
		if g.mig != nil {
			// Reads are stateless; during a migration they stay on the
			// from-ring, which every shard keeps serving throughout.
			lay = g.mig.from
		}
		g.routeMu.RUnlock()
		ctx, cancel := g.requestCtx(r)
		defer cancel()
		owners := lay.ring.Owners(key, 2)
		primary := lay.shards[owners[0]]
		var alt *shard
		if len(owners) > 1 {
			alt = lay.shards[owners[1]]
		}
		sh, res, err := g.forwardHedged(ctx, path, body, primary, alt)
		g.writeProxied(w, lay, sh, res, err)
	}
}

// forwardHedged forwards to primary, and — when hedging is enabled and
// a distinct alt owner exists — issues one hedged attempt if primary is
// slow (HedgeDelay) or fails outright. First conclusive response wins;
// determinism makes the two answers interchangeable.
func (g *Gateway) forwardHedged(ctx context.Context, path string, body []byte, primary, alt *shard) (*shard, *proxyResult, error) {
	if g.cfg.HedgeDelay <= 0 || alt == nil || alt == primary {
		res, err := primary.forward(ctx, path, body)
		return primary, res, err
	}
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type outcome struct {
		sh  *shard
		res *proxyResult
		err error
	}
	ch := make(chan outcome, 2)
	launch := func(sh *shard) {
		go func() {
			res, err := sh.forward(hctx, path, body)
			ch <- outcome{sh, res, err}
		}()
	}
	launch(primary)
	timer := time.NewTimer(g.cfg.HedgeDelay)
	defer timer.Stop()
	outstanding, hedged := 1, false
	var firstSh *shard
	var firstErr error
	for {
		select {
		case o := <-ch:
			outstanding--
			if o.err == nil {
				return o.sh, o.res, nil
			}
			if firstErr == nil {
				firstSh, firstErr = o.sh, o.err
			}
			if !hedged {
				// Primary failed before the hedge timer: fail over now.
				hedged = true
				g.met.hedged.Inc()
				launch(alt)
				outstanding++
				continue
			}
			if outstanding == 0 {
				return firstSh, nil, firstErr
			}
		case <-timer.C:
			if !hedged {
				hedged = true
				g.met.hedged.Inc()
				launch(alt)
				outstanding++
			}
		case <-ctx.Done():
			return primary, nil, ctx.Err()
		}
	}
}

// writeProxied relays a shard's response (or the routing failure) to the
// client, stamping the serving shard and epoch.
func (g *Gateway) writeProxied(w http.ResponseWriter, lay *layout, sh *shard, res *proxyResult, err error) {
	idx := lay.indexOf(sh)
	w.Header().Set(ShardHeader, fmt.Sprintf("%d", idx))
	w.Header().Set(EpochHeader, fmt.Sprintf("%d", lay.epoch))
	if err != nil {
		g.met.shardErrs.Inc()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusBadGateway, fmt.Sprintf("shard %d (%s): %v", idx, sh.base, err))
		return
	}
	if res.cache != "" {
		w.Header().Set("X-Rtmdm-Cache", res.cache)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(res.status)
	w.Write(res.body)
}

// proxyResult is a shard's response, buffered so retries can re-issue
// the request and coalesced waiters can share it.
type proxyResult struct {
	status int
	cache  string
	body   []byte
}

// errDegraded fails a request fast against a shard resting in its
// degraded window instead of burning a timeout per request.
var errDegraded = fmt.Errorf("cluster: shard degraded; probe pending")

// shard is one rtmdm-serve instance as seen by the gateway: its base
// URL, the bounded-fan-out semaphore, the failure breaker, and the
// admission batcher with per-node FIFO lanes. Shards are pooled by URL
// and survive layout swaps.
type shard struct {
	gw     *Gateway
	base   string
	client *http.Client
	sem    chan struct{}

	// breaker state.
	bmu         sync.Mutex
	consecFails int
	degraded    bool
	lastFail    time.Time
	probing     bool

	// admission batcher: pending gathers one window's arrivals; lanes
	// serialize forwards per node so a node's requests reach the shard
	// in the order the batch sort put them in.
	amu        sync.Mutex
	pending    []*admitCall
	draining   bool
	lanes      map[string][]*admitCall
	laneActive map[string]bool
}

func (sh *shard) isDegraded() bool {
	sh.bmu.Lock()
	defer sh.bmu.Unlock()
	return sh.degraded
}

// allowAttempt gates one forward attempt through the breaker: healthy
// shards always pass; a degraded shard passes exactly one half-open
// probe per ProbeInterval and fails everything else fast.
func (sh *shard) allowAttempt() (probe bool, ok bool) {
	sh.bmu.Lock()
	defer sh.bmu.Unlock()
	if !sh.degraded {
		return false, true
	}
	if sh.probing || time.Since(sh.lastFail) < sh.gw.cfg.ProbeInterval {
		return false, false
	}
	sh.probing = true
	return true, true
}

// recordAttempt feeds the breaker: a success closes it; a failure counts
// toward the threshold and, once crossed, opens it.
func (sh *shard) recordAttempt(probe, ok bool) {
	sh.bmu.Lock()
	defer sh.bmu.Unlock()
	if probe {
		sh.probing = false
	}
	if ok {
		if sh.degraded {
			sh.gw.met.degraded.Add(-1)
		}
		sh.consecFails, sh.degraded = 0, false
		return
	}
	sh.consecFails++
	sh.lastFail = time.Now()
	if !sh.degraded && sh.consecFails >= sh.gw.cfg.FailThreshold {
		sh.degraded = true
		sh.gw.met.trips.Inc()
		sh.gw.met.degraded.Add(1)
	}
}

// retryableStatus marks shard responses worth another attempt: load
// shedding (429), gateway-class failures, and 503 (a shard draining or a
// handoff target momentarily busy). 4xx validation errors and 200s pass
// through; 500 passes through too — it is a shard bug, and retrying a
// panic is how panics multiply.
func retryableStatus(code int) bool {
	switch code {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// forward proxies one request to the shard with bounded fan-out, a
// per-attempt timeout, retry with doubling backoff, and breaker
// accounting. It returns the first conclusive shard response, or the
// last error once the attempt budget is spent.
func (sh *shard) forward(ctx context.Context, path string, body []byte) (*proxyResult, error) {
	backoff := sh.gw.cfg.RetryBackoff
	var lastErr error
	for attempt := 0; attempt <= sh.gw.cfg.Retries; attempt++ {
		if attempt > 0 {
			sh.gw.met.retries.Inc()
			t := time.NewTimer(backoff)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return nil, ctx.Err()
			case <-sh.gw.base.Done():
				t.Stop()
				return nil, fmt.Errorf("gateway shutting down")
			}
			backoff *= 2
		}
		probe, ok := sh.allowAttempt()
		if !ok {
			lastErr = errDegraded
			continue
		}
		res, err := sh.attempt(ctx, path, body)
		if err != nil {
			sh.recordAttempt(probe, false)
			lastErr = err
			continue
		}
		if retryableStatus(res.status) {
			// 429 is the shard shedding load, not failing: back off and
			// retry without charging the breaker. The other retryable
			// statuses are failures and count toward degradation.
			sh.recordAttempt(probe, res.status == http.StatusTooManyRequests)
			lastErr = fmt.Errorf("shard status %d", res.status)
			if attempt == sh.gw.cfg.Retries {
				// Out of budget: relay the shard's own response rather
				// than masking it with a gateway error.
				return res, nil
			}
			continue
		}
		sh.recordAttempt(probe, true)
		return res, nil
	}
	return nil, lastErr
}

// attempt is one bounded round trip to the shard.
func (sh *shard) attempt(ctx context.Context, path string, body []byte) (*proxyResult, error) {
	select {
	case sh.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	defer func() { <-sh.sem }()
	actx, cancel := context.WithTimeout(ctx, sh.gw.cfg.ShardTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodPost, sh.base+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := sh.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	return &proxyResult{status: resp.StatusCode, cache: resp.Header.Get("X-Rtmdm-Cache"), body: data}, nil
}

// enqueue adds an admission to the shard's current batch window,
// starting the drain goroutine when none is live.
func (sh *shard) enqueue(cl *admitCall) {
	sh.amu.Lock()
	sh.pending = append(sh.pending, cl)
	if !sh.draining {
		sh.draining = true
		sh.gw.addActive()
		go sh.drainAdmits()
	}
	sh.amu.Unlock()
}

// nodeBusy reports whether the shard still holds queued or in-flight
// admissions for node — the migration drain barrier polls this after
// freezing, when no new entries for the node can arrive.
func (sh *shard) nodeBusy(node string) bool {
	sh.amu.Lock()
	defer sh.amu.Unlock()
	if sh.laneActive[node] || len(sh.lanes[node]) > 0 {
		return true
	}
	for _, cl := range sh.pending {
		if cl.node == node {
			return true
		}
	}
	return false
}

// busyNodes lists the nodes with queued or in-flight admissions for
// which keep returns true.
func (sh *shard) busyNodes(keep func(string) bool) []string {
	sh.amu.Lock()
	defer sh.amu.Unlock()
	set := map[string]bool{}
	for node, active := range sh.laneActive {
		if active && keep(node) {
			set[node] = true
		}
	}
	for node, q := range sh.lanes {
		if len(q) > 0 && keep(node) {
			set[node] = true
		}
	}
	for _, cl := range sh.pending {
		if keep(cl.node) {
			set[cl.node] = true
		}
	}
	out := make([]string, 0, len(set))
	for node := range set {
		out = append(out, node)
	}
	sort.Strings(out)
	return out
}

// drainAdmits gathers one admission window, sorts it by (request_id,
// node), and feeds the calls into per-node FIFO lanes — so concurrent
// requests for one node always reach the shard in request_id order, and
// requests for different nodes fan out in parallel under the shard's
// in-flight bound. Loops until the queue is empty.
func (sh *shard) drainAdmits() {
	defer sh.gw.endActive()
	for {
		sh.waitWindow()
		sh.amu.Lock()
		batch := sh.pending
		sh.pending = nil
		if len(batch) == 0 {
			sh.draining = false
			sh.amu.Unlock()
			return
		}
		sort.SliceStable(batch, func(i, j int) bool {
			if batch[i].requestID != batch[j].requestID {
				return batch[i].requestID < batch[j].requestID
			}
			return batch[i].node < batch[j].node
		})
		sh.gw.met.batches.Inc()
		for _, cl := range batch {
			sh.lanes[cl.node] = append(sh.lanes[cl.node], cl)
			if !sh.laneActive[cl.node] {
				sh.laneActive[cl.node] = true
				sh.gw.addActive()
				go sh.runLane(cl.node)
			}
		}
		sh.amu.Unlock()
	}
}

// waitWindow sleeps out the batching window, returning early on
// shutdown (pending admissions are still forwarded, just unbatched).
func (sh *shard) waitWindow() {
	if sh.gw.cfg.AdmitWindow <= 0 {
		return
	}
	t := time.NewTimer(sh.gw.cfg.AdmitWindow)
	defer t.Stop()
	select {
	case <-t.C:
	case <-sh.gw.base.Done():
	}
}

// runLane forwards one node's queued admissions sequentially until the
// lane empties. Sequential-per-node is the determinism contract: the
// shard sees each node's requests in the batcher's sorted order. Each
// call's quota slot is settled here, when the forward that consumed
// shard capacity completes — regardless of whether the client is still
// listening.
func (sh *shard) runLane(node string) {
	defer sh.gw.endActive()
	for {
		sh.amu.Lock()
		q := sh.lanes[node]
		if len(q) == 0 {
			delete(sh.lanes, node)
			sh.laneActive[node] = false
			delete(sh.laneActive, node)
			sh.amu.Unlock()
			return
		}
		cl := q[0]
		sh.lanes[node] = q[1:]
		sh.amu.Unlock()

		sh.gw.met.forwarded.Inc()
		cl.res, cl.err = sh.forward(sh.gw.base, "/v1/admit", cl.body)
		cl.settle()
		close(cl.done)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
