package cluster

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestParseChaosSpec(t *testing.T) {
	cfg, err := ParseChaosSpec("drop-out=0.1,drop-in=0.2,latency=0.3,latency-ms=40,truncate=0.05,corrupt=0.06,partition=10-20:in,partition=30-40:out:shard-2")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if cfg.DropOutRate != 0.1 || cfg.DropInRate != 0.2 || cfg.LatencyRate != 0.3 {
		t.Fatalf("rates wrong: %+v", cfg)
	}
	if cfg.Latency != 40*time.Millisecond {
		t.Fatalf("latency = %v", cfg.Latency)
	}
	if len(cfg.Partitions) != 2 {
		t.Fatalf("partitions = %+v", cfg.Partitions)
	}
	if p := cfg.Partitions[1]; p.From != 30 || p.To != 40 || p.Direction != "out" || p.Host != "shard-2" {
		t.Fatalf("partition[1] = %+v", p)
	}

	for _, bad := range []string{
		"drop-out=1.5",
		"latency-ms=-3",
		"partition=20-10:in",
		"partition=1-2:sideways",
		"nonsense=1",
		"drop-out",
	} {
		if _, err := ParseChaosSpec(bad); err == nil {
			t.Errorf("spec %q: want error", bad)
		}
	}
}

// TestChaosDeterministicSchedule pins the core replay property: two
// transports built from the same config observe the identical fault
// schedule for the same per-host request sequence.
func TestChaosDeterministicSchedule(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, `{"ok":true}`)
	}))
	defer backend.Close()

	cfg := ChaosConfig{Seed: 7, DropOutRate: 0.3, DropInRate: 0.2, TruncateRate: 0.2, CorruptRate: 0.2}
	run := func() []string {
		tr, err := NewChaosTransport(cfg, nil)
		if err != nil {
			t.Fatalf("transport: %v", err)
		}
		client := &http.Client{Transport: tr}
		var out []string
		for i := 0; i < 64; i++ {
			resp, err := client.Get(backend.URL)
			if err != nil {
				out = append(out, "err")
				continue
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			var probe struct{ OK bool }
			if json.Unmarshal(body, &probe) != nil {
				out = append(out, "tampered")
				continue
			}
			out = append(out, "ok")
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at attempt %d: %q vs %q", i, a[i], b[i])
		}
	}
	seen := map[string]bool{}
	for _, v := range a {
		seen[v] = true
	}
	for _, want := range []string{"err", "tampered", "ok"} {
		if !seen[want] {
			t.Fatalf("schedule never produced %q outcomes: %v", want, a)
		}
	}
}

// TestChaosDropDirections distinguishes the two drop classes: drop-out
// never reaches the server; drop-in reaches it (the work happens) and
// only the response is lost.
func TestChaosDropDirections(t *testing.T) {
	var hits atomic.Int64
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		io.WriteString(w, `{}`)
	}))
	defer backend.Close()

	tr, err := NewChaosTransport(ChaosConfig{Seed: 1, DropOutRate: 1}, nil)
	if err != nil {
		t.Fatalf("transport: %v", err)
	}
	if _, err := (&http.Client{Transport: tr}).Get(backend.URL); err == nil {
		t.Fatal("drop-out: want transport error")
	}
	if hits.Load() != 0 {
		t.Fatalf("drop-out reached the server %d times", hits.Load())
	}

	tr, err = NewChaosTransport(ChaosConfig{Seed: 1, DropInRate: 1}, nil)
	if err != nil {
		t.Fatalf("transport: %v", err)
	}
	if _, err := (&http.Client{Transport: tr}).Get(backend.URL); err == nil {
		t.Fatal("drop-in: want transport error")
	}
	if hits.Load() != 1 {
		t.Fatalf("drop-in server hits = %d, want 1 (request must be delivered)", hits.Load())
	}
}

// TestChaosTamperingAlwaysDetectable: truncation and corruption must
// break JSON framing so clients detect and retry rather than acting on
// altered fields.
func TestChaosTamperingAlwaysDetectable(t *testing.T) {
	payload := `{"admitted":true,"committed":["t00","t01"]}`
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, payload)
	}))
	defer backend.Close()

	for _, cfg := range []ChaosConfig{
		{Seed: 3, TruncateRate: 1},
		{Seed: 3, CorruptRate: 1},
	} {
		tr, err := NewChaosTransport(cfg, nil)
		if err != nil {
			t.Fatalf("transport: %v", err)
		}
		resp, err := (&http.Client{Transport: tr}).Get(backend.URL)
		if err != nil {
			t.Fatalf("round trip: %v", err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var out map[string]any
		if json.Unmarshal(body, &out) == nil {
			t.Fatalf("tampered body %q still decodes (cfg %+v)", body, cfg)
		}
	}
}

// TestChaosPartitionAsymmetry: an "out" window cuts requests before the
// server; an "in" window delivers them and cuts only the response.
// Outside the window traffic flows clean.
func TestChaosPartitionAsymmetry(t *testing.T) {
	var hits atomic.Int64
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		io.WriteString(w, `{}`)
	}))
	defer backend.Close()

	for _, dir := range []string{"out", "in"} {
		hits.Store(0)
		tr, err := NewChaosTransport(ChaosConfig{
			Seed:       1,
			Partitions: []ChaosPartition{{From: 2, To: 4, Direction: dir}},
		}, nil)
		if err != nil {
			t.Fatalf("transport: %v", err)
		}
		client := &http.Client{Transport: tr}
		var errs int
		for i := 0; i < 6; i++ {
			resp, err := client.Get(backend.URL)
			if err != nil {
				if i < 2 || i >= 4 {
					t.Fatalf("dir %s: attempt %d failed outside the window: %v", dir, i, err)
				}
				errs++
				continue
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		if errs != 2 {
			t.Fatalf("dir %s: %d injected failures, want 2", dir, errs)
		}
		wantHits := int64(6)
		if dir == "out" {
			wantHits = 4
		}
		if hits.Load() != wantHits {
			t.Fatalf("dir %s: server hits = %d, want %d", dir, hits.Load(), wantHits)
		}
	}
}

// TestChaosPartitionHostScoping: a host-scoped partition leaves other
// hosts untouched.
func TestChaosPartitionHostScoping(t *testing.T) {
	a := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { io.WriteString(w, `{}`) }))
	b := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { io.WriteString(w, `{}`) }))
	defer a.Close()
	defer b.Close()

	hostA := strings.TrimPrefix(a.URL, "http://")
	tr, err := NewChaosTransport(ChaosConfig{
		Seed:       1,
		Partitions: []ChaosPartition{{From: 0, To: 1000, Direction: "out", Host: hostA}},
	}, nil)
	if err != nil {
		t.Fatalf("transport: %v", err)
	}
	client := &http.Client{Transport: tr}
	if _, err := client.Get(a.URL); err == nil {
		t.Fatal("partitioned host: want error")
	}
	resp, err := client.Get(b.URL)
	if err != nil {
		t.Fatalf("unpartitioned host failed: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	stats := tr.Stats()
	if stats["partition-out"] != 1 {
		t.Fatalf("stats = %v, want one partition-out", stats)
	}
}
