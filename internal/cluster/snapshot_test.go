package cluster

import (
	"bytes"
	"strings"
	"testing"

	"rtmdm/internal/scenario"
)

func testNodes() []NodeState {
	return []NodeState{
		{
			Node: "n-b", Platform: "stm32h743", Policy: "rt-mdm", HorizonMs: 200,
			Tasks: []scenario.TaskSpec{
				{Name: "kws", Model: "ds-cnn", PeriodMs: 50},
				{Name: "ae", Model: "autoencoder", PeriodMs: 100},
			},
		},
		{
			Node: "n-a", Platform: "stm32h743", Policy: "rt-mdm", HorizonMs: 200,
			Tasks: []scenario.TaskSpec{{Name: "solo", Model: "tinymlp", PeriodMs: 40}},
		},
		// A bound node with nothing committed yet is still state.
		{Node: "n-empty", Platform: "stm32h743", Policy: "rt-mdm", HorizonMs: 200},
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	snap, err := NewSnapshot("shard-0", testNodes())
	if err != nil {
		t.Fatal(err)
	}
	// NewSnapshot sorts by node name.
	for i, want := range []string{"n-a", "n-b", "n-empty"} {
		if snap.Nodes[i].Node != want {
			t.Fatalf("node %d = %q, want %q", i, snap.Nodes[i].Node, want)
		}
	}
	var buf bytes.Buffer
	if err := snap.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Shard != "shard-0" || len(got.Nodes) != 3 || got.Checksum != snap.Checksum {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

// TestSnapshotEncodingStable: equal states serialize byte-identically —
// the property the cluster smoke's snapshot diff rests on.
func TestSnapshotEncodingStable(t *testing.T) {
	var a, b bytes.Buffer
	for _, buf := range []*bytes.Buffer{&a, &b} {
		snap, err := NewSnapshot("s", testNodes())
		if err != nil {
			t.Fatal(err)
		}
		if err := snap.Encode(buf); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("equal states produced different snapshot bytes")
	}
}

func TestSnapshotRejectsDuplicateNode(t *testing.T) {
	nodes := testNodes()
	nodes = append(nodes, nodes[0])
	if _, err := NewSnapshot("s", nodes); err == nil {
		t.Fatal("duplicate node accepted")
	}
}

func encodeTestSnapshot(t *testing.T) []byte {
	t.Helper()
	snap, err := NewSnapshot("s", testNodes())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := snap.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestSnapshotRejectsCorruption(t *testing.T) {
	good := encodeTestSnapshot(t)

	t.Run("bit flip in a record", func(t *testing.T) {
		bad := bytes.Replace(good, []byte(`"period_ms": 50`), []byte(`"period_ms": 51`), 1)
		if bytes.Equal(bad, good) {
			t.Fatal("tamper target not found")
		}
		if _, err := DecodeSnapshot(bytes.NewReader(bad)); err == nil {
			t.Fatal("tampered record restored")
		}
	})
	t.Run("truncated", func(t *testing.T) {
		if _, err := DecodeSnapshot(bytes.NewReader(good[:len(good)/2])); err == nil {
			t.Fatal("truncated snapshot restored")
		}
	})
	t.Run("trailing data", func(t *testing.T) {
		bad := append(append([]byte(nil), good...), []byte(`{"version":1}`)...)
		if _, err := DecodeSnapshot(bytes.NewReader(bad)); err == nil {
			t.Fatal("snapshot with trailing data restored")
		}
	})
	t.Run("unknown field", func(t *testing.T) {
		bad := bytes.Replace(good, []byte(`"version"`), []byte(`"surprise": 1, "version"`), 1)
		if _, err := DecodeSnapshot(bytes.NewReader(bad)); err == nil {
			t.Fatal("snapshot with unknown field restored")
		}
	})
	t.Run("wrong version", func(t *testing.T) {
		bad := bytes.Replace(good, []byte(`"version": 1`), []byte(`"version": 99`), 1)
		if _, err := DecodeSnapshot(bytes.NewReader(bad)); err == nil {
			t.Fatal("future-versioned snapshot restored")
		}
	})
	t.Run("checksum mismatch names the cause", func(t *testing.T) {
		// Flip one hex digit of the stored checksum; every digit appears
		// somewhere, so swap the first one found after the field name.
		i := bytes.Index(good, []byte(`"checksum": "`))
		if i < 0 {
			t.Fatal("checksum field not found")
		}
		bad := append([]byte(nil), good...)
		j := i + len(`"checksum": "`)
		if bad[j] == '0' {
			bad[j] = '1'
		} else {
			bad[j] = '0'
		}
		_, err := DecodeSnapshot(bytes.NewReader(bad))
		if err == nil || !strings.Contains(err.Error(), "corrupt or truncated") {
			t.Fatalf("want a checksum diagnosis, got %v", err)
		}
	})
}
