package cluster

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Quotas enforces per-tenant admission-to-the-gateway limits with
// weighted fairness: a global in-flight budget is divided among tenants
// in proportion to their configured weights, so a flooding tenant can
// saturate its own share but never starve another tenant's. Tenants
// without an explicit weight share the DefaultWeight. A nil *Quotas
// disables quota enforcement (every Acquire succeeds).
type Quotas struct {
	mu      sync.Mutex
	weights map[string]int
	limits  map[string]int
	used    map[string]int
	budget  int
	defaultWeight
}

type defaultWeight struct {
	weight int
	sumW   int
}

// NewQuotas builds the quota table: budget is the global in-flight
// request budget to split; weights maps tenant → weight (all ≥ 1).
// Every tenant's limit is max(1, round(weight/Σweights × budget)), where
// Σweights includes one DefaultWeight share for unlisted tenants.
func NewQuotas(budget int, weights map[string]int) (*Quotas, error) {
	if budget <= 0 {
		budget = 64
	}
	sumW := 1 // the implicit default-tenant share
	for t, w := range weights {
		if w < 1 {
			return nil, fmt.Errorf("cluster: tenant %q weight %d below 1", t, w)
		}
		sumW += w
	}
	q := &Quotas{
		weights:       make(map[string]int, len(weights)),
		limits:        make(map[string]int, len(weights)),
		used:          make(map[string]int),
		budget:        budget,
		defaultWeight: defaultWeight{weight: 1, sumW: sumW},
	}
	for t, w := range weights {
		q.weights[t] = w
		q.limits[t] = q.limitFor(w)
	}
	return q, nil
}

// limitFor converts a weight into an in-flight cap: the tenant's
// proportional share of the budget, never below 1.
func (q *Quotas) limitFor(w int) int {
	lim := (w*q.budget + q.sumW/2) / q.sumW
	if lim < 1 {
		lim = 1
	}
	return lim
}

// Limit reports a tenant's in-flight cap (unlisted tenants get the
// default-weight share).
func (q *Quotas) Limit(tenant string) int {
	if q == nil {
		return 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if lim, ok := q.limits[tenant]; ok {
		return lim
	}
	return q.limitFor(q.weight)
}

// Acquire claims one in-flight slot for tenant. It never blocks: a
// tenant at its cap is refused immediately (the gateway maps that to 429
// so the client retries with backoff, exactly like worker-pool
// saturation). On success the returned release must be called once.
func (q *Quotas) Acquire(tenant string) (release func(), ok bool) {
	if q == nil {
		return func() {}, true
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	lim, listed := q.limits[tenant]
	if !listed {
		lim = q.limitFor(q.weight)
	}
	if q.used[tenant] >= lim {
		return nil, false
	}
	q.used[tenant]++
	return func() {
		q.mu.Lock()
		q.used[tenant]--
		if q.used[tenant] == 0 {
			delete(q.used, tenant)
		}
		q.mu.Unlock()
	}, true
}

// InFlight reports the total in-flight slots currently held across all
// tenants — zero when the gateway is idle, which the leak tests pin.
func (q *Quotas) InFlight() int {
	if q == nil {
		return 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	total := 0
	for _, n := range q.used {
		total += n
	}
	return total
}

// Tenants returns the configured tenants sorted by name — the stable
// order /healthz and the docs use.
func (q *Quotas) Tenants() []string {
	if q == nil {
		return nil
	}
	names := make([]string, 0, len(q.weights))
	for t := range q.weights {
		names = append(names, t)
	}
	sort.Strings(names)
	return names
}

// ParseTenantWeights parses the CLI spec "a=3,b=1" shared by
// rtmdm-gateway and rtmdm-loadgen. An empty spec yields nil (quotas
// disabled at the gateway, one anonymous tenant at the loadgen).
func ParseTenantWeights(spec string) (map[string]int, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	out := map[string]int{}
	for _, part := range strings.Split(spec, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 || kv[0] == "" {
			return nil, fmt.Errorf("cluster: bad tenant entry %q (want name=weight)", part)
		}
		w, err := strconv.Atoi(kv[1])
		if err != nil || w < 1 {
			return nil, fmt.Errorf("cluster: bad tenant weight %q", part)
		}
		out[kv[0]] = w
	}
	return out, nil
}
