package cluster

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// ChaosPartition is one asymmetric partition window: while a host's
// attempt counter is in [From, To), traffic is cut in one direction
// only. Direction "out" drops requests before they reach the server
// (the server never sees them); direction "in" delivers the request —
// the server processes it and may commit state — but drops the
// response on the way back, which is exactly the duplicate-delivery
// case idempotent handoff and admit retries must survive. Host is a
// substring match on the request host; empty matches every host.
type ChaosPartition struct {
	Host      string
	From, To  int64
	Direction string // "in" | "out"
}

// ChaosConfig parameterizes the deterministic transport chaos injector.
// All rates are probabilities in [0, 1]; decisions are pure functions of
// (Seed, host, per-host attempt index, fault class) in the same
// hash-decision style as internal/fault — no shared RNG stream, so two
// transports built from the same config make identical decisions
// regardless of goroutine interleaving.
type ChaosConfig struct {
	// Seed drives every decision; the same seed replays the same faults.
	Seed int64
	// DropOutRate drops requests before they are sent (connection error;
	// the server never observes the request).
	DropOutRate float64
	// DropInRate delivers the request but drops the response after the
	// server has fully processed it — the client observes a transport
	// error for work that actually happened.
	DropInRate float64
	// LatencyRate injects Latency of extra delay before the request is
	// sent (context-respecting, so client deadlines still fire).
	LatencyRate float64
	Latency     time.Duration
	// TruncateRate cuts the response body in half, always breaking JSON
	// framing so clients detect it and retry.
	TruncateRate float64
	// CorruptRate overwrites the first response-body byte with 0xFF —
	// invalid as both UTF-8 and JSON, so corruption is always detected at
	// decode rather than silently flipping a verdict field.
	CorruptRate float64
	// Partitions are asymmetric partition windows over per-host attempt
	// indices.
	Partitions []ChaosPartition
}

func (c ChaosConfig) validate() error {
	for name, r := range map[string]float64{
		"drop-out": c.DropOutRate, "drop-in": c.DropInRate,
		"latency": c.LatencyRate, "truncate": c.TruncateRate, "corrupt": c.CorruptRate,
	} {
		if r < 0 || r > 1 {
			return fmt.Errorf("cluster: chaos rate %s=%v outside [0,1]", name, r)
		}
	}
	if c.Latency < 0 {
		return fmt.Errorf("cluster: chaos latency must be >= 0")
	}
	for _, p := range c.Partitions {
		if p.From < 0 || p.To <= p.From {
			return fmt.Errorf("cluster: chaos partition window %d-%d invalid (want 0 <= from < to)", p.From, p.To)
		}
		if p.Direction != "in" && p.Direction != "out" {
			return fmt.Errorf("cluster: chaos partition direction %q (want in or out)", p.Direction)
		}
	}
	return nil
}

// ParseChaosSpec parses the CLI chaos spec shared by rtmdm-loadgen and
// the smoke scripts: comma-separated key=value pairs, e.g.
//
//	drop-out=0.03,drop-in=0.03,latency=0.1,latency-ms=25,truncate=0.02,corrupt=0.02,partition=120-160:in
//
// partition may repeat; its value is FROM-TO:DIR[:HOSTSUBSTR] over the
// per-host attempt counter. The seed is set by the caller (loadgen
// reuses its workload seed so one -seed replays workload and faults).
func ParseChaosSpec(spec string) (ChaosConfig, error) {
	cfg := ChaosConfig{}
	rate := func(v string) (float64, error) { return strconv.ParseFloat(v, 64) }
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return cfg, fmt.Errorf("cluster: bad chaos entry %q (want key=value)", part)
		}
		var err error
		switch kv[0] {
		case "drop-out":
			cfg.DropOutRate, err = rate(kv[1])
		case "drop-in":
			cfg.DropInRate, err = rate(kv[1])
		case "latency":
			cfg.LatencyRate, err = rate(kv[1])
		case "latency-ms":
			var ms float64
			ms, err = rate(kv[1])
			cfg.Latency = time.Duration(ms * float64(time.Millisecond))
		case "truncate":
			cfg.TruncateRate, err = rate(kv[1])
		case "corrupt":
			cfg.CorruptRate, err = rate(kv[1])
		case "partition":
			var p ChaosPartition
			p, err = parsePartition(kv[1])
			cfg.Partitions = append(cfg.Partitions, p)
		default:
			return cfg, fmt.Errorf("cluster: unknown chaos key %q", kv[0])
		}
		if err != nil {
			return cfg, fmt.Errorf("cluster: bad chaos entry %q: %v", part, err)
		}
	}
	if err := cfg.validate(); err != nil {
		return cfg, err
	}
	return cfg, nil
}

func parsePartition(v string) (ChaosPartition, error) {
	var p ChaosPartition
	fields := strings.SplitN(v, ":", 3)
	if len(fields) < 2 {
		return p, fmt.Errorf("want FROM-TO:DIR[:HOST]")
	}
	window := strings.SplitN(fields[0], "-", 2)
	if len(window) != 2 {
		return p, fmt.Errorf("want FROM-TO attempt window")
	}
	from, err1 := strconv.ParseInt(window[0], 10, 64)
	to, err2 := strconv.ParseInt(window[1], 10, 64)
	if err1 != nil || err2 != nil {
		return p, fmt.Errorf("non-integer attempt window")
	}
	p.From, p.To, p.Direction = from, to, fields[1]
	if len(fields) == 3 {
		p.Host = fields[2]
	}
	return p, nil
}

// chaosMix is the splitmix64 finalizer — the same bit mixer
// internal/fault and loadgen's cluster mode use for hash decisions.
func chaosMix(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// chaosDraw hashes one decision coordinate (seed, class, host, attempt)
// to a uniform uint64. Each fault class gets an independent draw so
// e.g. enabling latency never shifts which attempts drop.
func chaosDraw(seed int64, class, host string, attempt int64) uint64 {
	h := chaosMix(uint64(seed) ^ 0x9e3779b97f4a7c15)
	for _, s := range []string{class, host} {
		for _, b := range []byte(s) {
			h = chaosMix(h ^ uint64(b))
		}
		h = chaosMix(h ^ 0xff)
	}
	return chaosMix(h ^ uint64(attempt))
}

// chaosUnit maps a draw into [0, 1).
func chaosUnit(d uint64) float64 { return float64(d>>11) / float64(1<<53) }

// chaosErr is the injected transport failure. It satisfies net-style
// temporary semantics only in the sense clients already handle: any
// RoundTrip error is retryable at the gateway and the loadgen.
type chaosErr struct{ class, host string }

func (e *chaosErr) Error() string {
	return fmt.Sprintf("chaos: injected %s fault (host %s)", e.class, e.host)
}

// ChaosTransport is a deterministic fault-injecting http.RoundTripper.
// It wraps an inner transport and, per request, draws each fault class
// from the (seed, host, attempt) coordinate — attempt being a per-host
// counter, so a fixed request sequence against a fixed topology replays
// the identical fault schedule. Corruption always breaks JSON framing
// (truncate to half / first byte 0xFF), never silently altering fields:
// the cluster's safety argument needs detectable faults, and its
// integrity argument is carried by the snapshot checksums underneath.
type ChaosTransport struct {
	cfg   ChaosConfig
	inner http.RoundTripper

	mu       sync.Mutex
	attempts map[string]int64
	injected map[string]int64
}

// NewChaosTransport validates cfg and wraps inner (nil inner uses
// http.DefaultTransport).
func NewChaosTransport(cfg ChaosConfig, inner http.RoundTripper) (*ChaosTransport, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if inner == nil {
		inner = http.DefaultTransport
	}
	return &ChaosTransport{
		cfg:      cfg,
		inner:    inner,
		attempts: map[string]int64{},
		injected: map[string]int64{},
	}, nil
}

// next claims the host's next attempt index.
func (t *ChaosTransport) next(host string) int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.attempts[host]
	t.attempts[host] = n + 1
	return n
}

func (t *ChaosTransport) count(class string) {
	t.mu.Lock()
	t.injected[class]++
	t.mu.Unlock()
}

// Stats snapshots the injected-fault counts by class (for loadgen
// reports and smoke-script non-vacuity checks).
func (t *ChaosTransport) Stats() map[string]int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]int64, len(t.injected))
	for k, v := range t.injected {
		out[k] = v
	}
	return out
}

// partitioned reports whether attempt n to host falls inside a
// partition window, and the cut direction if so.
func (t *ChaosTransport) partitioned(host string, n int64) (string, bool) {
	for _, p := range t.cfg.Partitions {
		if n >= p.From && n < p.To && (p.Host == "" || strings.Contains(host, p.Host)) {
			return p.Direction, true
		}
	}
	return "", false
}

// RoundTrip implements http.RoundTripper with the deterministic fault
// schedule. Decision order: outbound cut (partition out / drop-out),
// injected latency, real round trip, inbound cut (partition in /
// drop-in), then response tampering (truncate / corrupt).
func (t *ChaosTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	host := req.URL.Host
	n := t.next(host)
	seed := t.cfg.Seed

	dir, cut := t.partitioned(host, n)
	if cut && dir == "out" {
		t.count("partition-out")
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, &chaosErr{class: "partition-out", host: host}
	}
	if chaosUnit(chaosDraw(seed, "drop-out", host, n)) < t.cfg.DropOutRate {
		t.count("drop-out")
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, &chaosErr{class: "drop-out", host: host}
	}
	if t.cfg.Latency > 0 && chaosUnit(chaosDraw(seed, "latency", host, n)) < t.cfg.LatencyRate {
		t.count("latency")
		timer := time.NewTimer(t.cfg.Latency)
		select {
		case <-timer.C:
		case <-req.Context().Done():
			timer.Stop()
			if req.Body != nil {
				req.Body.Close()
			}
			return nil, req.Context().Err()
		}
	}

	resp, err := t.inner.RoundTrip(req)
	if err != nil {
		return nil, err
	}

	// Inbound faults happen after the server fully processed the request:
	// drain the body so the server side completes, then fail the client.
	if cut && dir == "in" {
		t.count("partition-in")
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, &chaosErr{class: "partition-in", host: host}
	}
	if chaosUnit(chaosDraw(seed, "drop-in", host, n)) < t.cfg.DropInRate {
		t.count("drop-in")
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, &chaosErr{class: "drop-in", host: host}
	}

	truncate := chaosUnit(chaosDraw(seed, "truncate", host, n)) < t.cfg.TruncateRate
	corrupt := chaosUnit(chaosDraw(seed, "corrupt", host, n)) < t.cfg.CorruptRate
	if !truncate && !corrupt {
		return resp, nil
	}
	body, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	if rerr != nil {
		return nil, rerr
	}
	if truncate && len(body) > 0 {
		t.count("truncate")
		body = body[:len(body)/2]
	}
	if corrupt && len(body) > 0 {
		t.count("corrupt")
		body = append([]byte(nil), body...)
		body[0] = 0xff
	}
	resp.Body = io.NopCloser(bytes.NewReader(body))
	resp.ContentLength = int64(len(body))
	resp.Header.Del("Content-Length")
	return resp, nil
}

// ChaosClasses lists the fault classes a transport can inject, sorted —
// report vocabulary for loadgen's JSON output.
func ChaosClasses() []string {
	cs := []string{"partition-out", "partition-in", "drop-out", "drop-in", "latency", "truncate", "corrupt"}
	sort.Strings(cs)
	return cs
}
