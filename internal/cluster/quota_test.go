package cluster

import (
	"reflect"
	"testing"
)

func TestQuotaWeightedLimits(t *testing.T) {
	// budget 12 over gold=3, free=1, plus the implicit default share:
	// sumW = 5, so gold ≈ 7, free ≈ 2, unlisted tenants ≈ 2.
	q, err := NewQuotas(12, map[string]int{"gold": 3, "free": 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := q.Limit("gold"); got != 7 {
		t.Fatalf("gold limit = %d, want 7", got)
	}
	if got := q.Limit("free"); got != 2 {
		t.Fatalf("free limit = %d, want 2", got)
	}
	if got := q.Limit("stranger"); got != 2 {
		t.Fatalf("unlisted limit = %d, want the default share 2", got)
	}
	if got := q.Tenants(); !reflect.DeepEqual(got, []string{"free", "gold"}) {
		t.Fatalf("Tenants() = %v", got)
	}
}

func TestQuotaAcquireReleaseCycle(t *testing.T) {
	q, err := NewQuotas(12, map[string]int{"gold": 3, "free": 1})
	if err != nil {
		t.Fatal(err)
	}
	var releases []func()
	for i := 0; i < 2; i++ {
		rel, ok := q.Acquire("free")
		if !ok {
			t.Fatalf("free acquire %d refused below its cap", i)
		}
		releases = append(releases, rel)
	}
	if _, ok := q.Acquire("free"); ok {
		t.Fatal("free acquired past its weighted cap")
	}
	// Another tenant's headroom is untouched by free's saturation.
	if rel, ok := q.Acquire("gold"); !ok {
		t.Fatal("gold refused while free is saturated")
	} else {
		rel()
	}
	releases[0]()
	if rel, ok := q.Acquire("free"); !ok {
		t.Fatal("free refused after a release freed a slot")
	} else {
		rel()
	}
}

func TestQuotaLimitNeverBelowOne(t *testing.T) {
	// A tiny budget over heavy weights still grants every tenant at
	// least one in-flight slot — weighted fairness must not starve.
	q, err := NewQuotas(2, map[string]int{"a": 100, "b": 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := q.Limit("b"); got < 1 {
		t.Fatalf("b limit = %d, want >= 1", got)
	}
}

func TestQuotaNilDisablesEnforcement(t *testing.T) {
	var q *Quotas
	rel, ok := q.Acquire("anyone")
	if !ok {
		t.Fatal("nil quotas refused an acquire")
	}
	rel()
	if q.Tenants() != nil {
		t.Fatal("nil quotas reported tenants")
	}
}

func TestQuotaRejectsBadWeight(t *testing.T) {
	if _, err := NewQuotas(8, map[string]int{"zero": 0}); err == nil {
		t.Fatal("weight 0 accepted")
	}
}

func TestParseTenantWeights(t *testing.T) {
	got, err := ParseTenantWeights(" gold=3, free=1 ")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, map[string]int{"gold": 3, "free": 1}) {
		t.Fatalf("parsed %v", got)
	}
	if got, err := ParseTenantWeights(""); err != nil || got != nil {
		t.Fatalf("empty spec: %v, %v (want nil, nil)", got, err)
	}
	for _, bad := range []string{"gold", "gold=0", "=3", "gold=x"} {
		if _, err := ParseTenantWeights(bad); err == nil {
			t.Fatalf("spec %q accepted", bad)
		}
	}
}
