package cluster

import (
	"sync/atomic"

	"rtmdm/internal/metrics"
)

// cInstruments holds the cluster.* package-level counters (snapshot
// lifecycle); the zero struct means disabled — metric methods are
// nil-safe.
type cInstruments struct {
	snapshotSaves    *metrics.Counter
	snapshotRestores *metrics.Counter
	snapshotRejected *metrics.Counter
	snapshotNodes    *metrics.Counter
	handoffExports   *metrics.Counter
	handoffImports   *metrics.Counter
	handoffReleases  *metrics.Counter
	handoffConflicts *metrics.Counter
}

// cinstr is swapped atomically so Instrument may race with snapshot
// encodes/decodes on live shards without a lock on the path.
var cinstr atomic.Pointer[cInstruments]

func init() { cinstr.Store(&cInstruments{}) }

// Instrument wires the cluster.* snapshot counters to the registry;
// Instrument(nil) disables them again. See docs/OBSERVABILITY.md.
func Instrument(r *metrics.Registry) {
	if r == nil {
		cinstr.Store(&cInstruments{})
		return
	}
	cinstr.Store(&cInstruments{
		snapshotSaves:    r.Counter("cluster.snapshot_saves", "snapshots", "admission snapshots encoded (shard drain or /v1/snapshot export)"),
		snapshotRestores: r.Counter("cluster.snapshot_restores", "snapshots", "admission snapshots decoded and fully verified"),
		snapshotRejected: r.Counter("cluster.snapshot_rejected", "snapshots", "snapshot decodes rejected (corrupt, truncated, version or hash mismatch)"),
		snapshotNodes:    r.Counter("cluster.snapshot_nodes", "nodes", "node records written across encoded snapshots"),
		handoffExports:   r.Counter("cluster.handoff_exports", "nodes", "single-node state exports served for live resharding (GET /v1/export)"),
		handoffImports:   r.Counter("cluster.handoff_imports", "nodes", "single-node state imports accepted during live resharding (POST /v1/import)"),
		handoffReleases:  r.Counter("cluster.handoff_releases", "nodes", "hash-guarded state releases processed after a verified handoff"),
		handoffConflicts: r.Counter("cluster.handoff_conflicts", "requests", "handoff imports or releases refused with 409 (hash mismatch or busy decision lane)"),
	})
}

// RecordHandoffExport counts one served state export. The Record*
// helpers let internal/server bump the cluster.* handoff counters
// without reaching into this package's instrument plumbing; all are
// nil-safe no-ops when Instrument has not been wired.
func RecordHandoffExport() { cinstr.Load().handoffExports.Inc() }

// RecordHandoffImport counts one accepted state import.
func RecordHandoffImport() { cinstr.Load().handoffImports.Inc() }

// RecordHandoffRelease counts one processed state release.
func RecordHandoffRelease() { cinstr.Load().handoffReleases.Inc() }

// RecordHandoffConflict counts one refused import/release (409).
func RecordHandoffConflict() { cinstr.Load().handoffConflicts.Inc() }

// GatewayMetrics holds the gateway.* instrument handles. All fields are
// nil-safe, so a gateway built without a registry pays only nil checks.
type GatewayMetrics struct {
	requests     *metrics.Counter
	inflight     *metrics.Gauge
	latency      *metrics.Histogram
	retries      *metrics.Counter
	shardErrs    *metrics.Counter
	degraded     *metrics.Gauge
	trips        *metrics.Counter
	quotaRej     *metrics.Counter
	batches      *metrics.Counter
	forwarded    *metrics.Counter
	shardCount   *metrics.Gauge
	hedged       *metrics.Counter
	epoch        *metrics.Gauge
	reshards     *metrics.Counter
	reshardFails *metrics.Counter
	reshardMoved *metrics.Counter
}

// gatewayLatencyBounds buckets proxied request latency from 100µs to 10s.
var gatewayLatencyBounds = []int64{
	100_000, 1_000_000, 10_000_000, 100_000_000, 1_000_000_000, 10_000_000_000,
}

// RegisterMetrics registers the gateway metric family on r and returns
// the handles; a nil registry yields all-nil (no-op) handles. Every name
// must appear in the docs/OBSERVABILITY.md catalogue (enforced by the
// metricname analyzer and docsync_test.go).
func RegisterMetrics(r *metrics.Registry) *GatewayMetrics {
	if r == nil {
		return &GatewayMetrics{}
	}
	return &GatewayMetrics{
		requests:   r.Counter("gateway.requests_total", "requests", "HTTP requests received by the gateway across all routes"),
		inflight:   r.Gauge("gateway.requests_inflight", "requests", "gateway requests currently being served"),
		latency:    r.Histogram("gateway.request_latency_ns", "ns", "wall latency per gateway request, shard round trips included", gatewayLatencyBounds),
		retries:    r.Counter("gateway.proxy_retries", "attempts", "shard request attempts retried after a transport error or 5xx"),
		shardErrs:  r.Counter("gateway.shard_errors", "requests", "proxied requests that exhausted their retry budget against a shard"),
		degraded:   r.Gauge("gateway.shards_degraded", "shards", "shards currently marked degraded by the failure breaker"),
		trips:      r.Counter("gateway.breaker_trips", "trips", "times a shard crossed the consecutive-failure threshold into degraded"),
		quotaRej:   r.Counter("gateway.quota_rejected", "requests", "requests refused with 429 because the tenant was at its weighted in-flight cap"),
		batches:    r.Counter("gateway.admit_batches", "batches", "per-shard admission batches drained in (request_id, node) order"),
		forwarded:  r.Counter("gateway.admit_forwarded", "requests", "admission requests forwarded to shards through the per-node FIFO lanes"),
		shardCount: r.Gauge("gateway.shards", "shards", "shards in the routing ring"),
		hedged:     r.Counter("gateway.hedged_requests", "requests", "read requests that issued a second attempt to the next ring owner (hedge timer or failover)"),
		epoch:      r.Gauge("gateway.reshard_epoch", "epoch", "current ring epoch (bumps once per completed or aborted reshard)"),
		reshards:   r.Counter("gateway.reshard_total", "migrations", "live reshard migrations started via POST /v1/reshard"),
		reshardFails: r.Counter("gateway.reshard_failed", "migrations",
			"reshard migrations aborted after exhausting handoff retries (routing stays on the old ring plus per-node overrides)"),
		reshardMoved: r.Counter("gateway.reshard_moved_nodes", "nodes", "nodes whose state was exported, imported, verified, and released across shards"),
	}
}
