package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"
)

// This file is the gateway side of live resharding (docs/CLUSTER.md):
// POST /v1/reshard installs a new epoch-versioned layout and migrates
// per-node admission state between shards through the export → verify →
// import → release handoff protocol, freezing only the lanes of nodes
// that actually change owner. Non-moving nodes — the vast majority when
// growing a ring, since virtual points are index-keyed — keep admitting
// throughout.

// ReshardRequest is the /v1/reshard wire shape: the complete shard URL
// list for the next epoch (order defines ring indices).
type ReshardRequest struct {
	Shards []string `json:"shards"`
}

// MovedNode records one completed handoff in the reshard response.
type MovedNode struct {
	Node string `json:"node"`
	From string `json:"from"`
	To   string `json:"to"`
	Hash string `json:"hash"`
}

// ReshardResponse reports a committed migration. StaleReleases lists
// nodes whose verified copy is live on the new owner but whose source
// copy could not be released before the retry budget ran out — harmless
// residue (routing no longer points there; the hash-guarded release can
// be repeated any time), surfaced so operators can clean up.
type ReshardResponse struct {
	Epoch         uint64      `json:"epoch"`
	Shards        []string    `json:"shards"`
	Moved         []MovedNode `json:"moved"`
	StaleReleases []string    `json:"stale_releases,omitempty"`
	DurationMs    float64     `json:"duration_ms"`
}

// Errors the reshard driver can surface to the handler.
var (
	errReshardBusy = fmt.Errorf("cluster: a reshard migration is already in flight")
)

// handleReshard drives a live migration to the posted shard list.
func (g *Gateway) handleReshard(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, g.cfg.MaxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	var req ReshardRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("decode request: %v", err))
		return
	}
	if len(req.Shards) == 0 {
		writeError(w, http.StatusBadRequest, "shards must list at least one URL")
		return
	}
	ctx, cancel := g.requestCtx(r)
	defer cancel()
	resp, err := g.Reshard(ctx, req.Shards)
	if err == errReshardBusy {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusConflict, err.Error())
		return
	}
	if err != nil {
		writeError(w, http.StatusBadGateway, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// nodeHome is one node's authoritative location: the shard holding its
// state and the sealed record describing it.
type nodeHome struct {
	sh    *shard
	state NodeState
}

// Reshard migrates the gateway from its current layout to one over urls,
// moving each stateful node whose owner changes and swapping the serving
// layout atomically at the end. On any handoff failure the migration
// aborts back to the old ring plus per-node overrides for nodes already
// moved — routing stays consistent with wherever each node's state
// actually lives, in both outcomes.
func (g *Gateway) Reshard(ctx context.Context, urls []string) (*ReshardResponse, error) {
	if !g.reshardMu.TryLock() {
		return nil, errReshardBusy
	}
	defer g.reshardMu.Unlock()
	start := time.Now()
	g.met.reshards.Inc()

	from := g.currentLayout()
	to, err := g.newLayout(from.epoch+1, urls)
	if err != nil {
		g.met.reshardFails.Inc()
		return nil, err
	}

	// Pre-freeze census: which nodes hold state, and where. Used only to
	// seed the early-unfreeze channels — the authoritative moving set is
	// re-gathered after the freeze barrier, when the frozen lanes are
	// provably quiet.
	plan, err := g.gatherStates(ctx, from)
	if err != nil {
		g.met.reshardFails.Inc()
		return nil, fmt.Errorf("pre-migration state census: %w", err)
	}
	mig := &migration{from: from, to: to, moving: map[string]*movingNode{}, done: make(chan struct{})}
	for node := range plan {
		if mig.frozen(node) {
			mig.moving[node] = &movingNode{moved: make(chan struct{})}
		}
	}

	// Barrier: publish the migration. From here every new admit routes
	// under the migration rules — frozen nodes park, everything else
	// flows — and no request can be enqueueing toward a stale lane
	// (enqueue happens under routeMu's read side).
	g.routeMu.Lock()
	if g.cur != from {
		g.routeMu.Unlock()
		g.met.reshardFails.Inc()
		return nil, fmt.Errorf("cluster: layout changed underfoot; retry")
	}
	g.mig = mig
	g.routeMu.Unlock()

	resp, err := g.migrate(ctx, mig, plan)
	if err != nil {
		// Abort: stay on the old ring, overriding nodes already moved so
		// routing follows their state. The epoch still bumps — routing
		// changed, and clients keying caches on the epoch must see that.
		g.met.reshardFails.Inc()
		moved := map[string]*shard{}
		for _, m := range resp.Moved {
			moved[m.Node] = g.shardFor(m.To)
		}
		ab := from.withOverrides(to.epoch, moved)
		g.routeMu.Lock()
		g.cur = ab
		g.mig = nil
		g.routeMu.Unlock()
		mig.aborted = true
		close(mig.done)
		g.met.epoch.Set(int64(ab.epoch))
		return nil, fmt.Errorf("cluster: reshard aborted (%d node(s) already on new owners, routed by override): %w",
			len(resp.Moved), err)
	}

	g.routeMu.Lock()
	g.cur = to
	g.mig = nil
	g.routeMu.Unlock()
	close(mig.done)
	g.met.epoch.Set(int64(to.epoch))
	g.met.shardCount.Set(int64(len(to.shards)))
	resp.DurationMs = float64(time.Since(start).Microseconds()) / 1000
	return resp, nil
}

// migrate runs the post-barrier phases: drain frozen lanes, re-census,
// hand off every node whose owner changes. Returns the partial response
// (moved-so-far) alongside any error so the abort path can build its
// overrides.
func (g *Gateway) migrate(ctx context.Context, mig *migration, plan map[string]nodeHome) (*ReshardResponse, error) {
	resp := &ReshardResponse{Epoch: mig.to.epoch, Shards: mig.to.urls, Moved: []MovedNode{}}
	if err := g.drainFrozenLanes(ctx, mig); err != nil {
		return resp, err
	}

	// Authoritative census, now that frozen nodes can gain no new
	// decisions. Nodes that appeared since the plan still move — they
	// just lack an early-unfreeze channel and wake with mig.done.
	homes, err := g.gatherStates(ctx, mig.from)
	if err != nil {
		return resp, fmt.Errorf("post-freeze state census: %w", err)
	}
	names := make([]string, 0, len(homes))
	for node := range homes {
		if mig.frozen(node) {
			names = append(names, node)
		}
	}
	sort.Strings(names)

	for _, node := range names {
		home := homes[node]
		toSh := mig.to.owner(node)
		if toSh.base == home.sh.base {
			continue // state already where the new ring wants it
		}
		hash, err := g.handoffNode(ctx, node, home.sh, toSh)
		if err != nil {
			return resp, fmt.Errorf("node %q (%s → %s): %w", node, home.sh.base, toSh.base, err)
		}
		if hash == staleReleaseMark {
			resp.StaleReleases = append(resp.StaleReleases, node)
			hash = home.state.Hash
		}
		resp.Moved = append(resp.Moved, MovedNode{Node: node, From: home.sh.base, To: toSh.base, Hash: hash})
		g.met.reshardMoved.Inc()
		if mn := mig.moving[node]; mn != nil {
			close(mn.moved) // unpark this node's requests onto the new owner now
		}
	}
	return resp, nil
}

// drainFrozenLanes waits until no from-shard holds queued or in-flight
// admissions for a frozen node. Past the barrier frozen nodes gain no
// new entries, so this strictly drains.
func (g *Gateway) drainFrozenLanes(ctx context.Context, mig *migration) error {
	tick := 2 * time.Millisecond
	for {
		busy := []string{}
		for _, sh := range mig.from.allShards() {
			busy = append(busy, sh.busyNodes(mig.frozen)...)
		}
		if len(busy) == 0 {
			return nil
		}
		select {
		case <-time.After(tick):
		case <-ctx.Done():
			sort.Strings(busy)
			return fmt.Errorf("frozen lanes never drained (still busy: %v): %w", busy, ctx.Err())
		case <-g.base.Done():
			return errShuttingDown
		}
	}
}

// gatherStates asks every shard that may hold state under lay for its
// full snapshot and keeps each node's record from the shard that owns it
// under lay — residue left on non-owners (e.g. an unreleased source
// copy) is ignored, never migrated.
func (g *Gateway) gatherStates(ctx context.Context, lay *layout) (map[string]nodeHome, error) {
	out := map[string]nodeHome{}
	for _, sh := range lay.allShards() {
		status, body, err := g.handoffRequest(ctx, sh, http.MethodGet, "/v1/snapshot", nil)
		if err != nil {
			return nil, fmt.Errorf("snapshot %s: %w", sh.base, err)
		}
		if status != http.StatusOK {
			return nil, fmt.Errorf("snapshot %s: status %d: %s", sh.base, status, body)
		}
		snap, err := DecodeSnapshot(bytes.NewReader(body))
		if err != nil {
			return nil, fmt.Errorf("snapshot %s does not verify: %w", sh.base, err)
		}
		for _, ns := range snap.Nodes {
			if lay.ownerURL(ns.Node) == sh.base {
				out[ns.Node] = nodeHome{sh: sh, state: ns}
			}
		}
	}
	return out, nil
}

// staleReleaseMark is handoffNode's in-band signal that the transfer
// verified but the source release ran out of retries.
const staleReleaseMark = "\x00stale-release"

// handoffNode moves one node's state: export from the old owner, verify
// the sealed bytes at the gateway, import into the new owner, check the
// echoed hash, then release the source copy. Every step retries through
// transient failures; a 409 on import self-heals once by releasing the
// target's stale copy (residue of an earlier aborted migration) before
// re-importing. Returns the verified hash, or staleReleaseMark when only
// the final release failed.
func (g *Gateway) handoffNode(ctx context.Context, node string, fromSh, toSh *shard) (string, error) {
	status, body, err := g.handoffRequest(ctx, fromSh, http.MethodGet, "/v1/export?node="+node, nil)
	if err != nil {
		return "", fmt.Errorf("export: %w", err)
	}
	if status == http.StatusNotFound {
		return "", fmt.Errorf("export: source no longer holds %q (concurrent release?)", node)
	}
	if status != http.StatusOK {
		return "", fmt.Errorf("export: status %d: %s", status, body)
	}
	snap, err := DecodeSnapshot(bytes.NewReader(body))
	if err != nil {
		return "", fmt.Errorf("export does not verify: %w", err)
	}
	if len(snap.Nodes) != 1 || snap.Nodes[0].Node != node {
		return "", fmt.Errorf("export returned wrong node set (%d nodes)", len(snap.Nodes))
	}
	hash := snap.Nodes[0].Hash

	imp, err := g.importVerified(ctx, toSh, node, hash, body)
	if err != nil {
		return "", err
	}
	if imp.Hash != hash {
		return "", fmt.Errorf("import verified wrong hash (sent %.12s…, target echoed %.12s…)", hash, imp.Hash)
	}

	rel, _ := json.Marshal(map[string]any{"release": map[string]string{"node": node, "hash": hash}})
	status, body, err = g.handoffRequest(ctx, fromSh, http.MethodPost, "/v1/import", rel)
	if err != nil || status != http.StatusOK {
		// The verified copy is live and routing will point at it; the
		// source copy is identical bytes guarded by this same hash, so a
		// later repeat of this release is always safe. Report, don't fail.
		return staleReleaseMark, nil
	}
	return hash, nil
}

// importVerified imports sealed bytes into toSh, self-healing one 409:
// export the target's own copy, release it by its own hash, retry once.
func (g *Gateway) importVerified(ctx context.Context, toSh *shard, node, hash string, sealed []byte) (*importReply, error) {
	for attempt := 0; ; attempt++ {
		status, body, err := g.handoffRequest(ctx, toSh, http.MethodPost, "/v1/import", sealed)
		if err != nil {
			return nil, fmt.Errorf("import: %w", err)
		}
		if status == http.StatusOK {
			var imp importReply
			if err := json.Unmarshal(body, &imp); err != nil {
				return nil, fmt.Errorf("import reply does not parse: %w", err)
			}
			return &imp, nil
		}
		if status != http.StatusConflict || attempt > 0 {
			return nil, fmt.Errorf("import: status %d: %s", status, body)
		}
		// 409: the target holds different state for this node — residue of
		// an aborted run. Release it by its own hash and retry once.
		es, ebody, err := g.handoffRequest(ctx, toSh, http.MethodGet, "/v1/export?node="+node, nil)
		if err != nil || es != http.StatusOK {
			return nil, fmt.Errorf("import conflict and target export failed (status %d, err %v)", es, err)
		}
		esnap, err := DecodeSnapshot(bytes.NewReader(ebody))
		if err != nil || len(esnap.Nodes) != 1 {
			return nil, fmt.Errorf("import conflict and target export does not verify: %v", err)
		}
		rel, _ := json.Marshal(map[string]any{"release": map[string]string{"node": node, "hash": esnap.Nodes[0].Hash}})
		rs, rbody, err := g.handoffRequest(ctx, toSh, http.MethodPost, "/v1/import", rel)
		if err != nil || rs != http.StatusOK {
			return nil, fmt.Errorf("import conflict and stale-copy release failed (status %d, err %v): %s", rs, err, rbody)
		}
	}
}

// importReply mirrors the shard's import/release response.
type importReply struct {
	Node      string `json:"node"`
	Hash      string `json:"hash"`
	Installed bool   `json:"installed"`
	Released  bool   `json:"released"`
}

// handoffRequest is the migration driver's HTTP primitive: per-attempt
// ShardTimeout, doubling backoff, retries on transport errors and
// retryable statuses (a shard answering 503 busy is mid-drain — exactly
// the transient the backoff absorbs). 409 is returned to the caller,
// never retried: it is a state conflict the protocol must resolve. The
// shard breaker is deliberately not involved — a migration must be able
// to talk to a shard the serving path has marked degraded.
func (g *Gateway) handoffRequest(ctx context.Context, sh *shard, method, path string, body []byte) (int, []byte, error) {
	backoff := g.cfg.RetryBackoff
	var lastErr error
	for attempt := 0; attempt <= g.cfg.Retries; attempt++ {
		if attempt > 0 {
			t := time.NewTimer(backoff)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return 0, nil, ctx.Err()
			}
			backoff *= 2
		}
		actx, cancel := context.WithTimeout(ctx, g.cfg.ShardTimeout)
		req, err := http.NewRequestWithContext(actx, method, sh.base+path, bytes.NewReader(body))
		if err != nil {
			cancel()
			return 0, nil, err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := sh.client.Do(req)
		if err != nil {
			cancel()
			lastErr = err
			continue
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		cancel()
		if err != nil {
			lastErr = err
			continue
		}
		if retryableStatus(resp.StatusCode) {
			lastErr = fmt.Errorf("status %d: %s", resp.StatusCode, data)
			continue
		}
		return resp.StatusCode, data, nil
	}
	return 0, nil, lastErr
}
