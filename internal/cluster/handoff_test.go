package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"rtmdm/internal/scenario"
)

// fakeShard is an in-memory stand-in for rtmdm-serve's handoff surface:
// /v1/admit appends a task to the node's committed set, /v1/snapshot and
// /v1/export seal it with the real codec, /v1/import installs or
// releases with the same idempotence and hash-guard semantics the server
// implements. It lets the cluster package test the migration driver
// without importing internal/server (which imports this package).
type fakeShard struct {
	label string

	mu    sync.Mutex
	nodes map[string][]scenario.TaskSpec

	// blockExport, when a node has an entry, parks /v1/export for that
	// node until the channel closes — how tests hold a migration open.
	blockExport map[string]chan struct{}
	// failImport, when set, answers every install with 500.
	failImport bool
	admits     []string // "node:request_id" in arrival order
}

func newFakeShard(label string) *fakeShard {
	return &fakeShard{label: label, nodes: map[string][]scenario.TaskSpec{}, blockExport: map[string]chan struct{}{}}
}

func (f *fakeShard) state(node string) (NodeState, bool) {
	tasks, ok := f.nodes[node]
	if !ok {
		return NodeState{}, false
	}
	return NodeState{Node: node, HorizonMs: 200, Tasks: append([]scenario.TaskSpec(nil), tasks...)}, true
}

func (f *fakeShard) hashOf(node string) string {
	ns, ok := f.state(node)
	if !ok {
		return ""
	}
	snap, err := NewSnapshot(f.label, []NodeState{ns})
	if err != nil {
		panic(err)
	}
	return snap.Nodes[0].Hash
}

func (f *fakeShard) taskCount(node string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.nodes[node])
}

func (f *fakeShard) seed(node string, tasks int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for i := 0; i < tasks; i++ {
		f.nodes[node] = append(f.nodes[node], scenario.TaskSpec{
			Name: fmt.Sprintf("t%02d", i), Model: "tinymlp", PeriodMs: float64(50 + 10*i)})
	}
}

func (f *fakeShard) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/admit", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			RequestID uint64 `json:"request_id"`
			Node      string `json:"node"`
			Task      struct {
				Name     string `json:"name"`
				Model    string `json:"model"`
				PeriodMs float64 `json:"period_ms"`
			} `json:"task"`
		}
		body, _ := io.ReadAll(r.Body)
		if err := json.Unmarshal(body, &req); err != nil {
			w.WriteHeader(http.StatusBadRequest)
			return
		}
		f.mu.Lock()
		f.admits = append(f.admits, fmt.Sprintf("%s:%d", req.Node, req.RequestID))
		f.nodes[req.Node] = append(f.nodes[req.Node], scenario.TaskSpec{
			Name: req.Task.Name, Model: req.Task.Model, PeriodMs: req.Task.PeriodMs})
		f.mu.Unlock()
		fmt.Fprint(w, `{"admitted": true}`)
	})
	mux.HandleFunc("GET /v1/snapshot", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		states := []NodeState{}
		for node := range f.nodes {
			ns, _ := f.state(node)
			states = append(states, ns)
		}
		f.mu.Unlock()
		snap, err := NewSnapshot(f.label, states)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		snap.Encode(w)
	})
	mux.HandleFunc("GET /v1/export", func(w http.ResponseWriter, r *http.Request) {
		node := r.URL.Query().Get("node")
		f.mu.Lock()
		gate := f.blockExport[node]
		ns, ok := f.state(node)
		f.mu.Unlock()
		if gate != nil {
			<-gate
		}
		if !ok {
			http.Error(w, "no such node", http.StatusNotFound)
			return
		}
		snap, err := NewSnapshot(f.label, []NodeState{ns})
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		snap.Encode(w)
	})
	mux.HandleFunc("POST /v1/import", func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		var probe struct {
			Release *struct{ Node, Hash string } `json:"release"`
		}
		if json.Unmarshal(body, &probe) == nil && probe.Release != nil {
			f.mu.Lock()
			defer f.mu.Unlock()
			if _, ok := f.nodes[probe.Release.Node]; !ok {
				json.NewEncoder(w).Encode(importReply{Node: probe.Release.Node})
				return
			}
			if f.hashOf(probe.Release.Node) != probe.Release.Hash {
				http.Error(w, "hash mismatch", http.StatusConflict)
				return
			}
			delete(f.nodes, probe.Release.Node)
			json.NewEncoder(w).Encode(importReply{Node: probe.Release.Node, Released: true})
			return
		}
		snap, err := DecodeSnapshot(bytes.NewReader(body))
		if err != nil || len(snap.Nodes) != 1 {
			http.Error(w, "bad snapshot", http.StatusBadRequest)
			return
		}
		f.mu.Lock()
		defer f.mu.Unlock()
		if f.failImport {
			http.Error(w, "import disabled", http.StatusInternalServerError)
			return
		}
		ns := snap.Nodes[0]
		if _, ok := f.nodes[ns.Node]; ok {
			if f.hashOf(ns.Node) == ns.Hash {
				json.NewEncoder(w).Encode(importReply{Node: ns.Node, Hash: ns.Hash})
				return
			}
			http.Error(w, "different state here", http.StatusConflict)
			return
		}
		f.nodes[ns.Node] = append([]scenario.TaskSpec(nil), ns.Tasks...)
		json.NewEncoder(w).Encode(importReply{Node: ns.Node, Hash: ns.Hash, Installed: true})
	})
	return mux
}

// reshardFixture stands up n fake shards and returns them with their
// URLs.
func reshardFixture(t *testing.T, n int) ([]*fakeShard, []string) {
	t.Helper()
	shards := make([]*fakeShard, n)
	urls := make([]string, n)
	for i := range shards {
		shards[i] = newFakeShard(fmt.Sprintf("shard-%d", i))
		ts := httptest.NewServer(shards[i].handler())
		t.Cleanup(ts.Close)
		urls[i] = ts.URL
	}
	return shards, urls
}

// ringOwners maps node names onto URL lists through fresh rings, letting
// tests classify nodes as moving or staying across a 2→4 growth.
func ownerURL(t *testing.T, urls []string, node string) string {
	t.Helper()
	ring, err := NewRing(len(urls), 0)
	if err != nil {
		t.Fatal(err)
	}
	return urls[ring.Shard(node)]
}

// pickNodes scans generated names for one that moves across the growth
// and one that stays, so tests need not hard-code ring internals.
func pickNodes(t *testing.T, oldURLs, newURLs []string) (moving, staying string) {
	t.Helper()
	for i := 0; i < 4096 && (moving == "" || staying == ""); i++ {
		name := fmt.Sprintf("node-%04d", i)
		if ownerURL(t, oldURLs, name) != ownerURL(t, newURLs, name) {
			if moving == "" {
				moving = name
			}
		} else if staying == "" {
			staying = name
		}
	}
	if moving == "" || staying == "" {
		t.Fatal("could not find both a moving and a staying node")
	}
	return moving, staying
}

func reshardTo(t *testing.T, gwURL string, urls []string) (*http.Response, ReshardResponse, []byte) {
	t.Helper()
	body, _ := json.Marshal(ReshardRequest{Shards: urls})
	resp, raw := postJSON(t, gwURL+"/v1/reshard", string(body))
	var out ReshardResponse
	json.Unmarshal(raw, &out)
	return resp, out, raw
}

// TestReshardMovesStateAndRouting: growing 2→4 moves exactly the nodes
// whose ring owner changes, state lands verified on the new owners, the
// old copies are released, and post-swap routing (plus the epoch header)
// follows the new ring.
func TestReshardMovesStateAndRouting(t *testing.T) {
	shards, urls := reshardFixture(t, 4)
	old := urls[:2]
	gw, ts := newTestGateway(t, Config{Shards: old, AdmitWindow: -1})

	// Seed 12 nodes on their old-ring owners.
	nodes := []string{}
	for i := 0; i < 12; i++ {
		name := fmt.Sprintf("node-%04d", i)
		nodes = append(nodes, name)
		for s, u := range old {
			if ownerURL(t, old, name) == u {
				shards[s].seed(name, 1+i%3)
			}
		}
	}

	resp, out, raw := reshardTo(t, ts.URL, urls)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reshard: status %d: %s", resp.StatusCode, raw)
	}
	if out.Epoch != 2 || len(out.Shards) != 4 {
		t.Fatalf("reshard response: %+v", out)
	}
	if len(out.Moved) == 0 {
		t.Fatal("reshard moved nothing — the fixture is vacuous")
	}
	if gw.Epoch() != 2 {
		t.Fatalf("gateway epoch %d after reshard, want 2", gw.Epoch())
	}

	movedSet := map[string]MovedNode{}
	for _, m := range out.Moved {
		movedSet[m.Node] = m
	}
	for _, name := range nodes {
		oldOwner, newOwner := ownerURL(t, old, name), ownerURL(t, urls, name)
		m, moved := movedSet[name]
		if (oldOwner != newOwner) != moved {
			t.Fatalf("node %s: owner change %v but moved=%v", name, oldOwner != newOwner, moved)
		}
		if moved && (m.From != oldOwner || m.To != newOwner) {
			t.Fatalf("node %s moved %s → %s, ring says %s → %s", name, m.From, m.To, oldOwner, newOwner)
		}
		// State lives exactly on the new owner now.
		for s, u := range urls {
			if n := shards[s].taskCount(name); (u == newOwner) != (n > 0) {
				t.Fatalf("node %s: shard %s holds %d tasks (new owner is %s)", name, u, n, newOwner)
			}
		}
	}

	// Routing follows the new ring and stamps the new epoch.
	aresp, abody := postJSON(t, ts.URL+"/v1/admit", admitJSON(99, nodes[0]))
	if aresp.StatusCode != http.StatusOK {
		t.Fatalf("admit after reshard: status %d: %s", aresp.StatusCode, abody)
	}
	if got := aresp.Header.Get(EpochHeader); got != "2" {
		t.Fatalf("epoch header %q, want 2", got)
	}
	newOwner := ownerURL(t, urls, nodes[0])
	for s, u := range urls {
		saw := false
		shards[s].mu.Lock()
		for _, a := range shards[s].admits {
			if strings.HasPrefix(a, nodes[0]+":") {
				saw = true
			}
		}
		shards[s].mu.Unlock()
		if saw != (u == newOwner) {
			t.Fatalf("post-reshard admit for %s reached %s (owner is %s)", nodes[0], u, newOwner)
		}
	}
}

// TestReshardNonMovingNodesKeepAdmitting pins the tentpole's core
// guarantee: while a migration is wedged open (a moving node's export is
// blocked), admissions for nodes that do not change owner complete
// promptly, and a parked admission for the moving node completes on the
// new owner once its handoff lands.
func TestReshardNonMovingNodesKeepAdmitting(t *testing.T) {
	shards, urls := reshardFixture(t, 4)
	old := urls[:2]
	moving, staying := pickNodes(t, old, urls)

	gate := make(chan struct{})
	for s, u := range old {
		if ownerURL(t, old, moving) == u {
			shards[s].seed(moving, 2)
			shards[s].mu.Lock()
			shards[s].blockExport[moving] = gate
			shards[s].mu.Unlock()
		}
		if ownerURL(t, old, staying) == u {
			shards[s].seed(staying, 1)
		}
	}

	_, ts := newTestGateway(t, Config{Shards: old, AdmitWindow: -1})

	reshardDone := make(chan ReshardResponse, 1)
	go func() {
		_, out, _ := reshardTo(t, ts.URL, urls)
		reshardDone <- out
	}()

	// Wait until the migration is visibly in flight (readyz flips).
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, _ := getJSON(t, ts.URL+"/readyz")
		if resp.StatusCode == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("migration never became visible on /readyz")
		}
		time.Sleep(time.Millisecond)
	}

	// Non-moving node: admitted promptly, mid-migration.
	start := time.Now()
	aresp, abody := postJSON(t, ts.URL+"/v1/admit", admitJSON(500, staying))
	if aresp.StatusCode != http.StatusOK {
		t.Fatalf("staying-node admit during migration: status %d: %s", aresp.StatusCode, abody)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("staying-node admit stalled %v behind the migration", elapsed)
	}

	// Moving node: the admission parks (conservative-deny)…
	parked := make(chan *http.Response, 1)
	go func() {
		resp, _ := postJSON(t, ts.URL+"/v1/admit", admitJSON(501, moving))
		parked <- resp
	}()
	select {
	case resp := <-parked:
		t.Fatalf("moving-node admit answered %d while its state was in transit", resp.StatusCode)
	case <-time.After(100 * time.Millisecond):
	}

	// …and completes on the new owner once the handoff lands.
	close(gate)
	out := <-reshardDone
	if out.Epoch != 2 {
		t.Fatalf("reshard did not commit: %+v", out)
	}
	resp := <-parked
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("parked admit after handoff: status %d", resp.StatusCode)
	}
	newOwner := ownerURL(t, urls, moving)
	for s, u := range urls {
		if u != newOwner {
			continue
		}
		// Old state (2 tasks) plus the parked admission.
		if n := shards[s].taskCount(moving); n != 3 {
			t.Fatalf("new owner holds %d tasks for %s, want 3", n, moving)
		}
	}
}

// TestReshardFailFastMode: with DegradedMode=fail-fast a frozen node's
// admission is answered 503 immediately instead of parking.
func TestReshardFailFastMode(t *testing.T) {
	shards, urls := reshardFixture(t, 4)
	old := urls[:2]
	moving, _ := pickNodes(t, old, urls)

	gate := make(chan struct{})
	for s, u := range old {
		if ownerURL(t, old, moving) == u {
			shards[s].seed(moving, 1)
			shards[s].mu.Lock()
			shards[s].blockExport[moving] = gate
			shards[s].mu.Unlock()
		}
	}
	_, ts := newTestGateway(t, Config{Shards: old, AdmitWindow: -1, DegradedMode: DegradedFailFast})

	reshardDone := make(chan struct{})
	go func() {
		defer close(reshardDone)
		reshardTo(t, ts.URL, urls)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, _ := getJSON(t, ts.URL+"/readyz")
		if resp.StatusCode == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("migration never became visible")
		}
		time.Sleep(time.Millisecond)
	}

	resp, body := postJSON(t, ts.URL+"/v1/admit", admitJSON(1, moving))
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(body), "mid-handoff") {
		t.Fatalf("fail-fast frozen admit: status %d body %s, want immediate 503", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("fail-fast 503 missing Retry-After")
	}
	close(gate)
	<-reshardDone
}

// TestReshardAbortKeepsServing: when the new shards refuse imports the
// migration aborts — and routing falls back to the old ring (epoch still
// bumped) with every node still admitting.
func TestReshardAbortKeepsServing(t *testing.T) {
	shards, urls := reshardFixture(t, 4)
	old := urls[:2]
	for _, f := range shards[2:] {
		f.mu.Lock()
		f.failImport = true
		f.mu.Unlock()
	}
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("node-%04d", i)
		for s, u := range old {
			if ownerURL(t, old, name) == u {
				shards[s].seed(name, 2)
			}
		}
	}
	gw, ts := newTestGateway(t, Config{
		Shards: old, AdmitWindow: -1,
		Retries: 1, RetryBackoff: time.Millisecond,
	})

	resp, _, raw := reshardTo(t, ts.URL, urls)
	if resp.StatusCode != http.StatusBadGateway || !strings.Contains(string(raw), "aborted") {
		t.Fatalf("reshard against broken targets: status %d: %s", resp.StatusCode, raw)
	}
	if gw.Epoch() != 2 {
		t.Fatalf("abort must still bump the epoch (routing changed), got %d", gw.Epoch())
	}

	// readyz recovered; every node still admits on the old ring.
	rresp, _ := getJSON(t, ts.URL+"/readyz")
	if rresp.StatusCode != http.StatusOK {
		t.Fatalf("readyz after abort: %d", rresp.StatusCode)
	}
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("node-%04d", i)
		aresp, abody := postJSON(t, ts.URL+"/v1/admit", admitJSON(uint64(100+i), name))
		if aresp.StatusCode != http.StatusOK {
			t.Fatalf("admit %s after abort: status %d: %s", name, aresp.StatusCode, abody)
		}
	}

	// A later reshard (targets fixed) succeeds from the aborted state.
	for _, f := range shards[2:] {
		f.mu.Lock()
		f.failImport = false
		f.mu.Unlock()
	}
	resp, out, raw := reshardTo(t, ts.URL, urls)
	if resp.StatusCode != http.StatusOK || out.Epoch != 3 {
		t.Fatalf("retry reshard: status %d: %s", resp.StatusCode, raw)
	}
}

// TestReshardSurvivesChaoticTransport: the migration driver completes a
// 2→4 growth through a lossy, slow, duplicate-delivering transport —
// the idempotent import/release protocol absorbs every duplicated or
// lost message — and no node's state is lost or doubled.
func TestReshardSurvivesChaoticTransport(t *testing.T) {
	shards, urls := reshardFixture(t, 4)
	old := urls[:2]
	seeded := map[string]int{}
	for i := 0; i < 10; i++ {
		name := fmt.Sprintf("node-%04d", i)
		tasks := 1 + i%3
		seeded[name] = tasks
		for s, u := range old {
			if ownerURL(t, old, name) == u {
				shards[s].seed(name, tasks)
			}
		}
	}
	chaos, err := ParseChaosSpec("drop-out=0.05,drop-in=0.08,latency=0.2,latency-ms=2")
	if err != nil {
		t.Fatal(err)
	}
	chaos.Seed = 11
	transport, err := NewChaosTransport(chaos, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestGateway(t, Config{
		Shards: old, AdmitWindow: -1,
		Retries: 8, RetryBackoff: time.Millisecond,
		Transport: transport,
	})

	resp, out, raw := reshardTo(t, ts.URL, urls)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reshard through chaos: status %d: %s", resp.StatusCode, raw)
	}
	if len(out.Moved) == 0 {
		t.Fatal("chaotic reshard moved nothing — fixture is vacuous")
	}
	for name, tasks := range seeded {
		owner := ownerURL(t, urls, name)
		total := 0
		for s, u := range urls {
			n := shards[s].taskCount(name)
			total += n
			if u == owner && n != tasks {
				t.Fatalf("node %s: new owner holds %d tasks, want %d", name, n, tasks)
			}
		}
		// Stale source copies may linger only if the response reported
		// them; otherwise state must live exactly once.
		stale := false
		for _, sr := range out.StaleReleases {
			if sr == name {
				stale = true
			}
		}
		if !stale && total != tasks {
			t.Fatalf("node %s: %d tasks across the cluster, want %d (lost or duplicated state)", name, total, tasks)
		}
	}
}

// TestReshardRejectsConcurrentMigrations: a second /v1/reshard while one
// is in flight answers 409.
func TestReshardRejectsConcurrentMigrations(t *testing.T) {
	shards, urls := reshardFixture(t, 4)
	old := urls[:2]
	moving, _ := pickNodes(t, old, urls)
	gate := make(chan struct{})
	for s, u := range old {
		if ownerURL(t, old, moving) == u {
			shards[s].seed(moving, 1)
			shards[s].mu.Lock()
			shards[s].blockExport[moving] = gate
			shards[s].mu.Unlock()
		}
	}
	_, ts := newTestGateway(t, Config{Shards: old, AdmitWindow: -1})
	done := make(chan struct{})
	go func() {
		defer close(done)
		reshardTo(t, ts.URL, urls)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, _ := getJSON(t, ts.URL+"/readyz")
		if resp.StatusCode == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("migration never became visible")
		}
		time.Sleep(time.Millisecond)
	}
	resp, _, _ := reshardTo(t, ts.URL, old)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("concurrent reshard: status %d, want 409", resp.StatusCode)
	}
	close(gate)
	<-done
}

// TestBreakerHalfOpenSingleProbe pins the half-open contract under
// concurrency: with the breaker open and the rest interval elapsed,
// N simultaneous requests collapse to exactly one probe reaching the
// shard; the rest fail fast. Run under -race this also proves the
// breaker fields are properly synchronized.
func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	var mu sync.Mutex
	hits, healthy := 0, false
	probeGate := make(chan struct{})
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		hits++
		ok := healthy
		mu.Unlock()
		if !ok {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		<-probeGate // hold the probe open while the others race it
		fmt.Fprint(w, `{"admitted": true}`)
	}))
	t.Cleanup(backend.Close)

	gw, ts := newTestGateway(t, Config{
		Shards: []string{backend.URL}, AdmitWindow: -1,
		Retries: -1, FailThreshold: 1, ProbeInterval: 5 * time.Millisecond,
	})

	// Trip the breaker.
	if resp, _ := postJSON(t, ts.URL+"/v1/admit", admitJSON(1, "n-0")); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("tripping request: status %d", resp.StatusCode)
	}
	if !gw.currentLayout().shards[0].isDegraded() {
		t.Fatal("breaker did not trip")
	}
	mu.Lock()
	hits, healthy = 0, true
	mu.Unlock()
	time.Sleep(10 * time.Millisecond) // past ProbeInterval

	// 8 concurrent requests on distinct nodes (so each rides its own
	// lane): exactly one may probe; the others fail fast.
	const n = 8
	codes := make(chan int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, _ := postJSON(t, ts.URL+"/v1/admit", admitJSON(uint64(10+i), fmt.Sprintf("n-%d", i)))
			codes <- resp.StatusCode
		}(i)
	}
	// Fast-failures settle first; then let the probe through.
	fastFails := 0
	for fastFails < n-1 {
		select {
		case code := <-codes:
			if code != http.StatusBadGateway {
				t.Fatalf("racing request got %d, want 502 fail-fast", code)
			}
			fastFails++
		case <-time.After(5 * time.Second):
			t.Fatalf("only %d of %d racing requests failed fast", fastFails, n-1)
		}
	}
	mu.Lock()
	if hits != 1 {
		mu.Unlock()
		t.Fatalf("backend saw %d requests in half-open, want exactly 1 probe", hits)
	}
	mu.Unlock()
	close(probeGate)
	wg.Wait()
	if code := <-codes; code != http.StatusOK {
		t.Fatalf("probe request: status %d", code)
	}
	if gw.currentLayout().shards[0].isDegraded() {
		t.Fatal("breaker still open after successful probe")
	}
}

// TestQuotaReleasedOnClientDisconnect hammers the gateway with requests
// whose clients vanish mid-flight and pins that every tenant quota slot
// returns: a cancelled client must not leak the in-flight slot its
// forward holds (the slot settles when the lane completes the forward).
func TestQuotaReleasedOnClientDisconnect(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(3 * time.Millisecond) // outlive the clients' deadlines
		fmt.Fprint(w, `{"admitted": true}`)
	}))
	t.Cleanup(backend.Close)

	gw, ts := newTestGateway(t, Config{
		Shards: []string{backend.URL}, AdmitWindow: -1,
		Retries: -1, FailThreshold: 1 << 30,
		TenantWeights: map[string]int{"free": 1, "gold": 3}, TenantBudget: 40,
	})

	const hammer = 48
	var wg sync.WaitGroup
	for i := 0; i < hammer; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), time.Duration(i%3)*time.Millisecond)
			defer cancel()
			req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/admit",
				strings.NewReader(admitJSON(uint64(i+1), fmt.Sprintf("n-%d", i))))
			if err != nil {
				t.Error(err)
				return
			}
			req.Header.Set(TenantHeader, []string{"free", "gold"}[i%2])
			resp, err := http.DefaultClient.Do(req)
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(i)
	}
	wg.Wait()

	// Every slot drains once the in-flight forwards settle.
	deadline := time.Now().Add(5 * time.Second)
	for gw.quotas.InFlight() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("quota slots leaked: %d still in flight after all clients vanished", gw.quotas.InFlight())
		}
		time.Sleep(time.Millisecond)
	}

	// And the quota still works: a well-behaved request succeeds.
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/admit", strings.NewReader(admitJSON(999, "final")))
	req.Header.Set(TenantHeader, "free")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-hammer request: status %d", resp.StatusCode)
	}
}

// TestRingOwners: Owners agrees with Shard on the primary and lists
// distinct successors.
func TestRingOwners(t *testing.T) {
	ring, err := NewRing(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		key := fmt.Sprintf("k-%d", i)
		owners := ring.Owners(key, 2)
		if len(owners) != 2 {
			t.Fatalf("Owners(%q, 2) = %v", key, owners)
		}
		if owners[0] != ring.Shard(key) {
			t.Fatalf("Owners primary %d != Shard %d", owners[0], ring.Shard(key))
		}
		if owners[0] == owners[1] {
			t.Fatalf("Owners(%q) not distinct: %v", key, owners)
		}
	}
	one, _ := NewRing(1, 0)
	if got := one.Owners("k", 2); len(got) != 1 || got[0] != 0 {
		t.Fatalf("single-shard Owners = %v", got)
	}
}

// TestGatewayHedgedReads: a slow primary triggers one hedged attempt on
// the next ring owner, and the hedge's answer serves the client.
func TestGatewayHedgedReads(t *testing.T) {
	const shards = 2
	slow := make(chan struct{})
	defer close(slow)
	var urls []string
	var hits [shards]int
	var mu sync.Mutex
	for i := 0; i < shards; i++ {
		i := i
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			mu.Lock()
			hits[i]++
			first := hits[0]+hits[1] == 1
			mu.Unlock()
			if first {
				<-slow // the first-touched shard hangs; the hedge answers
			}
			fmt.Fprint(w, `{"schedulable": true}`)
		}))
		t.Cleanup(ts.Close)
		urls = append(urls, ts.URL)
	}
	gw, ts := newTestGateway(t, Config{Shards: urls, HedgeDelay: 5 * time.Millisecond})

	resp, body := postJSON(t, ts.URL+"/v1/analyze", `{"scenario": {"tasks": [{"name": "a", "model": "tinymlp", "period_ms": 50}]}}`)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "schedulable") {
		t.Fatalf("hedged analyze: status %d: %s", resp.StatusCode, body)
	}
	mu.Lock()
	total := hits[0] + hits[1]
	mu.Unlock()
	if total != 2 {
		t.Fatalf("shards saw %d requests, want primary + hedge = 2", total)
	}
	if got := gw.met.hedged; got != nil {
		t.Log("hedged counter wired") // counter handle is nil without a registry
	}
}
