package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func newTestGateway(t *testing.T, cfg Config) (*Gateway, *httptest.Server) {
	t.Helper()
	gw, err := NewGateway(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(gw)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := gw.Shutdown(ctx); err != nil {
			t.Errorf("gateway shutdown: %v", err)
		}
	})
	return gw, ts
}

func postJSON(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func admitJSON(id uint64, node string) string {
	return fmt.Sprintf(`{"request_id": %d, "node": %q, "task": {"name": "t", "model": "tinymlp", "period_ms": 50}}`, id, node)
}

// okBackend is a fake shard recording the nodes it served.
type okBackend struct {
	mu    sync.Mutex
	nodes []string
}

func (b *okBackend) handler() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Node string `json:"node"`
		}
		body, _ := io.ReadAll(r.Body)
		json.Unmarshal(body, &req)
		b.mu.Lock()
		b.nodes = append(b.nodes, req.Node)
		b.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"admitted": true}`)
	}
}

func (b *okBackend) served() map[string]int {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := map[string]int{}
	for _, n := range b.nodes {
		out[n]++
	}
	return out
}

// TestGatewayRoutesAdmitByNode: every node's admissions land on the ring
// owner, and the response reports that shard.
func TestGatewayRoutesAdmitByNode(t *testing.T) {
	const shards = 3
	backends := make([]*okBackend, shards)
	urls := make([]string, shards)
	for i := range backends {
		backends[i] = &okBackend{}
		ts := httptest.NewServer(backends[i].handler())
		t.Cleanup(ts.Close)
		urls[i] = ts.URL
	}
	gw, ts := newTestGateway(t, Config{Shards: urls, AdmitWindow: -1})

	for i := 0; i < 24; i++ {
		node := fmt.Sprintf("cn-%03d", i)
		want := gw.currentLayout().ring.Shard(node)
		resp, body := postJSON(t, ts.URL+"/v1/admit", admitJSON(uint64(i+1), node))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("admit %s: status %d: %s", node, resp.StatusCode, body)
		}
		if got := resp.Header.Get(ShardHeader); got != fmt.Sprint(want) {
			t.Fatalf("admit %s: served by shard %s, ring owner is %d", node, got, want)
		}
		if n := backends[want].served()[node]; n != 1 {
			t.Fatalf("admit %s: owner backend saw it %d times", node, n)
		}
	}
}

// TestGatewayAdmitLaneOrder: concurrent admissions for one node reach
// the shard in request_id order — the per-shard determinism contract.
func TestGatewayAdmitLaneOrder(t *testing.T) {
	var mu sync.Mutex
	var order []uint64
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			RequestID uint64 `json:"request_id"`
		}
		body, _ := io.ReadAll(r.Body)
		json.Unmarshal(body, &req)
		mu.Lock()
		order = append(order, req.RequestID)
		mu.Unlock()
		fmt.Fprint(w, `{"admitted": true}`)
	}))
	t.Cleanup(backend.Close)

	// A long window so every concurrent request lands in one batch.
	_, ts := newTestGateway(t, Config{Shards: []string{backend.URL}, AdmitWindow: 300 * time.Millisecond})

	const n = 12
	ids := []uint64{7, 3, 11, 1, 9, 5, 12, 2, 10, 4, 8, 6}
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for _, id := range ids {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			resp, body := postJSON(t, ts.URL+"/v1/admit", admitJSON(id, "one-node"))
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("id %d: status %d: %s", id, resp.StatusCode, body)
			}
		}(id)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(order) != n {
		t.Fatalf("backend saw %d of %d requests", len(order), n)
	}
	for i := 1; i < len(order); i++ {
		if order[i-1] >= order[i] {
			t.Fatalf("requests arrived out of request_id order: %v", order)
		}
	}
}

// TestGatewayRetriesTransientFailures: retryable shard statuses are
// retried with backoff until a conclusive answer.
func TestGatewayRetriesTransientFailures(t *testing.T) {
	var mu sync.Mutex
	hits := 0
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		hits++
		n := hits
		mu.Unlock()
		if n <= 2 {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		fmt.Fprint(w, `{"admitted": true}`)
	}))
	t.Cleanup(backend.Close)

	_, ts := newTestGateway(t, Config{
		Shards: []string{backend.URL}, AdmitWindow: -1,
		Retries: 2, RetryBackoff: time.Millisecond, FailThreshold: 10,
	})
	resp, body := postJSON(t, ts.URL+"/v1/admit", admitJSON(1, "n"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d after retries: %s", resp.StatusCode, body)
	}
	mu.Lock()
	defer mu.Unlock()
	if hits != 3 {
		t.Fatalf("backend hit %d times, want 3 (2 failures + success)", hits)
	}
}

// TestGatewayBreakerDegradesAndRecovers: consecutive failures trip the
// breaker (fail-fast, no backend traffic), a half-open probe after
// ProbeInterval closes it again.
func TestGatewayBreakerDegradesAndRecovers(t *testing.T) {
	var mu sync.Mutex
	hits, healthy := 0, false
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		hits++
		ok := healthy
		mu.Unlock()
		if !ok {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		fmt.Fprint(w, `{"admitted": true}`)
	}))
	t.Cleanup(backend.Close)

	const probeInterval = 50 * time.Millisecond
	gw, ts := newTestGateway(t, Config{
		Shards: []string{backend.URL}, AdmitWindow: -1,
		Retries: -1, FailThreshold: 2, ProbeInterval: probeInterval,
	})

	// Two failures relay the shard's 503 and trip the breaker.
	for i := 0; i < 2; i++ {
		resp, _ := postJSON(t, ts.URL+"/v1/admit", admitJSON(uint64(i+1), "n"))
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("failure %d: status %d, want 503 relayed", i, resp.StatusCode)
		}
	}
	if !gw.currentLayout().shards[0].isDegraded() {
		t.Fatal("shard not degraded after FailThreshold failures")
	}

	// Degraded: fail fast with 502, without touching the backend.
	mu.Lock()
	before := hits
	mu.Unlock()
	resp, body := postJSON(t, ts.URL+"/v1/admit", admitJSON(3, "n"))
	if resp.StatusCode != http.StatusBadGateway || !strings.Contains(string(body), "degraded") {
		t.Fatalf("degraded shard: status %d body %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("degraded response missing Retry-After")
	}
	mu.Lock()
	if hits != before {
		mu.Unlock()
		t.Fatal("degraded shard still received traffic")
	}
	healthy = true
	mu.Unlock()

	// /healthz reports the degradation (sole shard → whole gateway).
	hresp, hbody := getJSON(t, ts.URL+"/healthz")
	if hresp.StatusCode != http.StatusOK || !strings.Contains(string(hbody), `"status":"degraded"`) {
		t.Fatalf("healthz while degraded: %d %s", hresp.StatusCode, hbody)
	}

	// After the rest interval one probe goes through and closes the
	// breaker.
	time.Sleep(probeInterval + 10*time.Millisecond)
	resp, body = postJSON(t, ts.URL+"/v1/admit", admitJSON(4, "n"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("probe request: status %d body %s", resp.StatusCode, body)
	}
	if gw.currentLayout().shards[0].isDegraded() {
		t.Fatal("shard still degraded after a successful probe")
	}
}

func getJSON(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// TestGatewayTenantQuota: a tenant at its weighted in-flight cap is
// refused with 429 while other tenants keep their headroom.
func TestGatewayTenantQuota(t *testing.T) {
	entered := make(chan struct{}, 8)
	release := make(chan struct{})
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		entered <- struct{}{}
		<-release
		fmt.Fprint(w, `{"admitted": true}`)
	}))
	t.Cleanup(backend.Close)
	defer close(release)

	// budget 4 over free=1, gold=3 (+default share): free's cap is 1.
	_, ts := newTestGateway(t, Config{
		Shards: []string{backend.URL}, AdmitWindow: -1,
		TenantWeights: map[string]int{"free": 1, "gold": 3}, TenantBudget: 4,
	})

	sendTo := func(tenant string, id uint64, node string) (*http.Response, []byte) {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/admit",
			strings.NewReader(admitJSON(id, node)))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set(TenantHeader, tenant)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, body
	}
	send := func(tenant string, id uint64) (*http.Response, []byte) { return sendTo(tenant, id, "n") }

	firstDone := make(chan struct{})
	go func() {
		defer close(firstDone)
		resp, body := send("free", 1)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("first free request: status %d: %s", resp.StatusCode, body)
		}
	}()
	<-entered // the slot is held inside the backend now

	resp, body := send("free", 2)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("free over cap: status %d body %s, want 429", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "free") || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("429 body/headers not diagnostic: %s", body)
	}

	// gold still has headroom while free is saturated. Its admission
	// targets a different node so it rides its own FIFO lane instead of
	// queueing behind free's blocked request.
	goldDone := make(chan struct{})
	go func() {
		defer close(goldDone)
		resp, body := sendTo("gold", 3, "m")
		if resp.StatusCode != http.StatusOK {
			t.Errorf("gold request: status %d: %s", resp.StatusCode, body)
		}
	}()
	<-entered
	release <- struct{}{}
	release <- struct{}{}
	<-firstDone
	<-goldDone
}

// TestGatewayScenarioAffinity: every spelling of one deployment routes
// to the same shard, so one result cache serves them all.
func TestGatewayScenarioAffinity(t *testing.T) {
	const shards = 4
	var mu sync.Mutex
	hits := make([]int, shards)
	urls := make([]string, shards)
	for i := 0; i < shards; i++ {
		i := i
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			mu.Lock()
			hits[i]++
			mu.Unlock()
			fmt.Fprint(w, `{}`)
		}))
		t.Cleanup(ts.Close)
		urls[i] = ts.URL
	}
	_, ts := newTestGateway(t, Config{Shards: urls})

	spellings := []string{
		`{"scenario": {"horizon_ms": 200, "tasks": [
			{"name": "kws", "model": "ds-cnn", "period_ms": 50},
			{"name": "ae", "model": "autoencoder", "period_ms": 100}]}}`,
		`{"scenario": {"policy": "rt-mdm", "horizon_ms": 200, "tasks": [
			{"name": "ae", "model": "autoencoder", "period_ms": 100, "deadline_ms": 100},
			{"name": "kws", "model": "ds-cnn", "period_ms": 50}]}}`,
	}
	var owner string
	for i, body := range spellings {
		resp, rbody := postJSON(t, ts.URL+"/v1/analyze", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("analyze spelling %d: status %d: %s", i, resp.StatusCode, rbody)
		}
		sh := resp.Header.Get(ShardHeader)
		if owner == "" {
			owner = sh
		} else if sh != owner {
			t.Fatalf("spelling %d routed to shard %s, first spelling went to %s", i, sh, owner)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	total := 0
	for _, h := range hits {
		total += h
	}
	if total != len(spellings) {
		t.Fatalf("backends saw %d requests, want %d", total, len(spellings))
	}
}

// TestGatewayRelaysShardErrors: non-retryable shard responses (validation
// errors) pass through verbatim — the shard is authoritative.
func TestGatewayRelaysShardErrors(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusUnprocessableEntity)
		fmt.Fprint(w, `{"error": "unknown model"}`)
	}))
	t.Cleanup(backend.Close)
	_, ts := newTestGateway(t, Config{Shards: []string{backend.URL}, AdmitWindow: -1})

	resp, body := postJSON(t, ts.URL+"/v1/admit", admitJSON(1, "n"))
	if resp.StatusCode != http.StatusUnprocessableEntity || !strings.Contains(string(body), "unknown model") {
		t.Fatalf("status %d body %s, want the shard's 422 relayed", resp.StatusCode, body)
	}
}

func TestGatewayRejectsBadAdmit(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t.Error("backend reached for an unroutable admit")
	}))
	t.Cleanup(backend.Close)
	_, ts := newTestGateway(t, Config{Shards: []string{backend.URL}, AdmitWindow: -1})

	resp, _ := postJSON(t, ts.URL+"/v1/admit", `{"request_id": 1}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("admit without node: status %d, want 400", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/admit", `not json`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unparseable admit: status %d, want 400", resp.StatusCode)
	}
}

func TestGatewayNeedsShards(t *testing.T) {
	if _, err := NewGateway(Config{}); err == nil {
		t.Fatal("gateway built with no shards")
	}
}
