package cluster

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"rtmdm/internal/scenario"
)

// SnapshotVersion versions the snapshot encoding. Bump it whenever the
// record schema changes so a shard can never silently restore state
// written under different semantics.
const SnapshotVersion = 1

// NodeState is one admission node's committed state: its pinned binding,
// the committed task specs in commit order, and the scenario.CanonicalHash
// of the committed scenario. The hash is the record's key and its
// integrity check — Decode recomputes it, so a record whose tasks or
// binding were corrupted (or hand-edited) is rejected rather than
// restored; it is also the cross-shard dedup vocabulary: two shards
// holding the same deployment state hold the same hash.
type NodeState struct {
	Node      string              `json:"node"`
	Platform  string              `json:"platform,omitempty"`
	Policy    string              `json:"policy,omitempty"`
	HorizonMs float64             `json:"horizon_ms,omitempty"`
	Tasks     []scenario.TaskSpec `json:"tasks"`
	Hash      string              `json:"hash"`
}

// Scenario reassembles the node's committed scenario (the input to
// CanonicalHash and to a warm re-analysis on restore).
func (ns *NodeState) Scenario() *scenario.Scenario {
	return &scenario.Scenario{
		Platform:  ns.Platform,
		Policy:    ns.Policy,
		HorizonMs: ns.HorizonMs,
		Tasks:     append([]scenario.TaskSpec(nil), ns.Tasks...),
	}
}

// Snapshot is a shard's full committed admission state. Nodes are sorted
// by name and Checksum covers the version plus every record, so equal
// states serialize byte-identically and any truncation or bit flip is
// detected before a single node is restored.
type Snapshot struct {
	Version  int         `json:"version"`
	Shard    string      `json:"shard,omitempty"`
	Nodes    []NodeState `json:"nodes"`
	Checksum string      `json:"checksum"`
}

// NewSnapshot assembles and seals a snapshot: per-node hashes are
// computed from each node's committed scenario, nodes are sorted by
// name, and the whole-snapshot checksum is stamped.
func NewSnapshot(shard string, nodes []NodeState) (*Snapshot, error) {
	snap := &Snapshot{Version: SnapshotVersion, Shard: shard, Nodes: append([]NodeState(nil), nodes...)}
	for i := range snap.Nodes {
		ns := &snap.Nodes[i]
		if ns.Node == "" {
			return nil, fmt.Errorf("cluster: snapshot node %d has no name", i)
		}
		h, err := scenario.CanonicalHash(ns.Scenario())
		if err != nil {
			return nil, fmt.Errorf("cluster: snapshot node %q: %w", ns.Node, err)
		}
		ns.Hash = h
	}
	sort.Slice(snap.Nodes, func(i, j int) bool { return snap.Nodes[i].Node < snap.Nodes[j].Node })
	for i := 1; i < len(snap.Nodes); i++ {
		if snap.Nodes[i].Node == snap.Nodes[i-1].Node {
			return nil, fmt.Errorf("cluster: snapshot has duplicate node %q", snap.Nodes[i].Node)
		}
	}
	sum, err := snap.checksum()
	if err != nil {
		return nil, err
	}
	snap.Checksum = sum
	return snap, nil
}

// checksum digests the version and the node records (Checksum itself
// excluded) under the deterministic JSON encoding.
func (s *Snapshot) checksum() (string, error) {
	h := sha256.New()
	fmt.Fprintf(h, "rtmdm-admission-snapshot-v%d\n", s.Version)
	enc, err := json.Marshal(s.Nodes)
	if err != nil {
		return "", fmt.Errorf("cluster: snapshot checksum: %w", err)
	}
	h.Write(enc)
	return hex.EncodeToString(h.Sum(nil)), nil
}

// Encode writes the snapshot as indented JSON (the format is an
// operational artifact; ops diff these files).
func (s *Snapshot) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s); err != nil {
		return fmt.Errorf("cluster: encode snapshot: %w", err)
	}
	cinstr.Load().snapshotSaves.Inc()
	cinstr.Load().snapshotNodes.Add(int64(len(s.Nodes)))
	return nil
}

// DecodeSnapshot reads and fully verifies a snapshot: JSON must decode
// with no unknown fields and no trailing garbage, the version must
// match, the whole-snapshot checksum must verify, node order must be
// sorted and duplicate-free, and every record's CanonicalHash must
// recompute to its stored value. Any failure rejects the whole snapshot
// — a shard either restores a provably intact state or starts cold.
func DecodeSnapshot(r io.Reader) (*Snapshot, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var snap Snapshot
	if err := dec.Decode(&snap); err != nil {
		cinstr.Load().snapshotRejected.Inc()
		return nil, fmt.Errorf("cluster: decode snapshot: %w", err)
	}
	if dec.More() {
		cinstr.Load().snapshotRejected.Inc()
		return nil, fmt.Errorf("cluster: decode snapshot: trailing data after snapshot object")
	}
	if err := snap.verify(); err != nil {
		cinstr.Load().snapshotRejected.Inc()
		return nil, err
	}
	cinstr.Load().snapshotRestores.Inc()
	return &snap, nil
}

func (s *Snapshot) verify() error {
	if s.Version != SnapshotVersion {
		return fmt.Errorf("cluster: snapshot version %d, this build reads v%d", s.Version, SnapshotVersion)
	}
	sum, err := s.checksum()
	if err != nil {
		return err
	}
	if sum != s.Checksum {
		return fmt.Errorf("cluster: snapshot checksum mismatch (stored %.12s…, computed %.12s…): file is corrupt or truncated", s.Checksum, sum)
	}
	for i := range s.Nodes {
		ns := &s.Nodes[i]
		if ns.Node == "" {
			return fmt.Errorf("cluster: snapshot node %d has no name", i)
		}
		if i > 0 && s.Nodes[i-1].Node >= ns.Node {
			return fmt.Errorf("cluster: snapshot nodes out of order at %q", ns.Node)
		}
		h, err := scenario.CanonicalHash(ns.Scenario())
		if err != nil {
			return fmt.Errorf("cluster: snapshot node %q: %w", ns.Node, err)
		}
		if h != ns.Hash {
			return fmt.Errorf("cluster: snapshot node %q hash mismatch (stored %.12s…, computed %.12s…)", ns.Node, ns.Hash, h)
		}
	}
	return nil
}
