// Package cluster scales the admission service horizontally: a
// consistent-hash ring that maps admission nodes onto rtmdm-serve shard
// instances, an HTTP gateway that routes /v1/admit, /v1/analyze and
// /v1/simulate to those shards with per-shard batching, bounded fan-out,
// retry/backoff and degraded-shard isolation, per-tenant quotas with
// weighted fairness, and a snapshot format for committed admission state
// so shards restart warm.
//
// Determinism is preserved per shard: a node name maps to exactly one
// shard for a fixed ring (shard list + replica count), admit requests
// gathered into one gateway batch are forwarded in (request_id, node)
// order with per-node FIFO lanes, and each shard's own request_id-ordered
// admission contract then makes the committed state a pure function of
// the request sequence. See docs/CLUSTER.md.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// Ring is an immutable consistent-hash ring over a fixed shard count.
// Each shard owns `replicas` virtual points placed by a SHA-256 based
// hash, so node keys spread evenly and adding a shard at the end moves
// only ~1/N of the keyspace. Safe for concurrent use.
type Ring struct {
	points []ringPoint
	shards int
}

type ringPoint struct {
	hash  uint64
	shard int
}

// hash64 is the ring's key hash: the first 8 bytes of SHA-256, which is
// deterministic across processes and Go versions (unlike maphash) — the
// gateway and any out-of-process tool (loadgen's per-shard report) must
// agree on the node→shard map.
func hash64(key string) uint64 {
	sum := sha256.Sum256([]byte(key))
	return binary.BigEndian.Uint64(sum[:8])
}

// NewRing builds a ring over shards instances with the given virtual
// replica count per shard (replicas <= 0 uses the default 64).
func NewRing(shards, replicas int) (*Ring, error) {
	if shards <= 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one shard, got %d", shards)
	}
	if replicas <= 0 {
		replicas = 64
	}
	r := &Ring{points: make([]ringPoint, 0, shards*replicas), shards: shards}
	for s := 0; s < shards; s++ {
		for v := 0; v < replicas; v++ {
			r.points = append(r.points, ringPoint{
				hash:  hash64(fmt.Sprintf("shard-%d#%d", s, v)),
				shard: s,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Colliding virtual points order by shard so the ring is a pure
		// function of (shards, replicas) regardless of sort internals.
		return r.points[i].shard < r.points[j].shard
	})
	return r, nil
}

// Shards returns the shard count the ring was built over.
func (r *Ring) Shards() int { return r.shards }

// Shard maps a key (an admission node name, or any routing key) to its
// owning shard: the first virtual point clockwise from the key's hash.
func (r *Ring) Shard(key string) int {
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}

// Owners returns the first n distinct shards walking clockwise from the
// key's hash — the primary owner first, then the successors a hedged or
// failed-over request may try. Owners(key, 1)[0] == Shard(key); n is
// capped at the shard count.
func (r *Ring) Owners(key string, n int) []int {
	if n > r.shards {
		n = r.shards
	}
	if n <= 0 {
		return nil
	}
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]int, 0, n)
	seen := make(map[int]bool, n)
	for k := 0; k < len(r.points) && len(out) < n; k++ {
		s := r.points[(i+k)%len(r.points)].shard
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}
