package cluster

import (
	"fmt"
	"testing"
)

func TestRingRejectsEmptyCluster(t *testing.T) {
	if _, err := NewRing(0, 64); err == nil {
		t.Fatal("NewRing(0) succeeded")
	}
	if _, err := NewRing(-1, 64); err == nil {
		t.Fatal("NewRing(-1) succeeded")
	}
}

// TestRingDeterministic pins the contract the loadgen's per-shard report
// depends on: two independently built rings over the same (shards,
// replicas) agree on every key, in-process and across processes.
func TestRingDeterministic(t *testing.T) {
	a, err := NewRing(4, 64)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing(4, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("cn-%03d", i)
		if a.Shard(key) != b.Shard(key) {
			t.Fatalf("ring disagrees on %q: %d vs %d", key, a.Shard(key), b.Shard(key))
		}
	}
	if a.Shards() != 4 {
		t.Fatalf("Shards() = %d, want 4", a.Shards())
	}
}

// TestRingDistribution checks the virtual replicas spread a realistic
// node-name population roughly evenly: no shard far above or below its
// fair share.
func TestRingDistribution(t *testing.T) {
	const shards, keys = 4, 8000
	r, err := NewRing(shards, 64)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, shards)
	for i := 0; i < keys; i++ {
		counts[r.Shard(fmt.Sprintf("node-%05d", i))]++
	}
	fair := keys / shards
	for s, n := range counts {
		if n < fair/2 || n > fair*2 {
			t.Fatalf("shard %d owns %d of %d keys (fair share %d): distribution too skewed %v",
				s, n, keys, fair, counts)
		}
	}
}

// TestRingGrowMovesMinority checks the consistent-hashing property:
// growing the cluster by one shard remaps only a minority of keys, and
// every remapped key lands on the new shard (existing shards never trade
// keys among themselves).
func TestRingGrowMovesMinority(t *testing.T) {
	const keys = 4000
	small, err := NewRing(4, 64)
	if err != nil {
		t.Fatal(err)
	}
	big, err := NewRing(5, 64)
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("node-%05d", i)
		before, after := small.Shard(key), big.Shard(key)
		if before == after {
			continue
		}
		moved++
		if after != 4 {
			t.Fatalf("key %q moved %d→%d instead of onto the new shard", key, before, after)
		}
	}
	// Expected move fraction is 1/5; allow generous slack but require a
	// clear minority.
	if moved == 0 || moved > keys/2 {
		t.Fatalf("grow moved %d of %d keys", moved, keys)
	}
}
