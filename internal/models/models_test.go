package models

import (
	"bytes"
	"math/rand"
	"testing"

	"rtmdm/internal/nn"
)

// expected magnitude windows for the zoo, anchored on the published
// MLPerf-Tiny reference models (int8 parameter bytes and MACs).
var expect = map[string]struct {
	minParams, maxParams int64
	minMACs, maxMACs     int64
}{
	"mobilenetv1-0.25":  {150_000, 350_000, 5_000_000, 12_000_000},
	"resnet8":           {60_000, 120_000, 8_000_000, 16_000_000},
	"ds-cnn":            {18_000, 40_000, 1_500_000, 6_000_000},
	"autoencoder":       {250_000, 320_000, 200_000, 400_000},
	"lenet5":            {50_000, 90_000, 200_000, 2_000_000},
	"tinymlp":           {35_000, 60_000, 30_000, 100_000},
	"mobilenetv2-micro": {20_000, 80_000, 2_000_000, 12_000_000},
	"squeezenet-micro":  {6_000, 60_000, 1_000_000, 10_000_000},
}

func TestCatalogComplete(t *testing.T) {
	names := Names()
	if len(names) != len(expect) {
		t.Fatalf("catalog has %d entries, want %d", len(names), len(expect))
	}
	for _, n := range names {
		if _, ok := expect[n]; !ok {
			t.Fatalf("unexpected catalog entry %q", n)
		}
	}
	// Names must be sorted.
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names() not sorted: %v", names)
		}
	}
}

func TestAllModelsValidateAndAccount(t *testing.T) {
	for _, info := range Catalog() {
		info := info
		t.Run(info.Name, func(t *testing.T) {
			m := info.Build(42)
			if err := m.Validate(); err != nil {
				t.Fatalf("validate: %v", err)
			}
			e := expect[info.Name]
			p, macs := m.TotalParamBytes(), m.TotalMACs()
			if p < e.minParams || p > e.maxParams {
				t.Errorf("param bytes = %d, want in [%d, %d]", p, e.minParams, e.maxParams)
			}
			if macs < e.minMACs || macs > e.maxMACs {
				t.Errorf("MACs = %d, want in [%d, %d]", macs, e.minMACs, e.maxMACs)
			}
			if m.PeakActivationBytes() <= 0 {
				t.Error("peak activation bytes not positive")
			}
		})
	}
}

func TestBuildByName(t *testing.T) {
	m, err := Build("ds-cnn", 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "ds-cnn" {
		t.Fatalf("built %q", m.Name)
	}
	if _, err := Build("nonexistent", 1); err == nil {
		t.Fatal("unknown model did not error")
	}
}

func TestBuildsAreDeterministic(t *testing.T) {
	for _, info := range Catalog() {
		a := info.Build(7)
		b := info.Build(7)
		if a.TotalParamBytes() != b.TotalParamBytes() {
			t.Fatalf("%s: param bytes differ across builds", info.Name)
		}
		// Compare the first conv/dense weights bit-for-bit.
		wa, ok1 := firstWeights(a)
		wb, ok2 := firstWeights(b)
		if !ok1 || !ok2 {
			t.Fatalf("%s: no weighted layer found", info.Name)
		}
		for i := range wa {
			if wa[i] != wb[i] {
				t.Fatalf("%s: weights differ at %d with same seed", info.Name, i)
			}
		}
	}
}

func TestDifferentSeedsDifferentWeights(t *testing.T) {
	a, _ := firstWeights(DSCNN(1))
	b, _ := firstWeights(DSCNN(2))
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical weights")
	}
}

func TestDifferentModelsDifferentStreams(t *testing.T) {
	// Same seed, different model names must not share the weight stream.
	a, _ := firstWeights(Autoencoder(3))
	b, _ := firstWeights(TinyMLP(3))
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	same := true
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("two models with the same seed share a weight stream")
	}
}

func firstWeights(m *nn.Model) ([]int8, bool) {
	for _, nd := range m.Nodes {
		switch l := nd.Layer.(type) {
		case *nn.Conv2D:
			return l.Weights, true
		case *nn.Dense:
			return l.Weights, true
		}
	}
	return nil, false
}

func TestAllModelsExecuteEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping full inference in -short mode")
	}
	for _, info := range Catalog() {
		info := info
		t.Run(info.Name, func(t *testing.T) {
			m := info.Build(42)
			rng := rand.New(rand.NewSource(99))
			x := nn.NewTensor(m.Input, m.InQuant)
			for i := range x.Data {
				x.Data[i] = int8(rng.Intn(255) - 127)
			}
			y := m.Forward(x)
			if y.Shape != m.OutShape() {
				t.Fatalf("output shape %v, want %v", y.Shape, m.OutShape())
			}
			// Output must not be a degenerate constant (all equal would
			// suggest systematic saturation through the whole net).
			allEq := true
			for i := 1; i < len(y.Data); i++ {
				if y.Data[i] != y.Data[0] {
					allEq = false
					break
				}
			}
			if allEq && len(y.Data) > 1 {
				t.Errorf("output is constant %d over %d elems (saturation collapse?)", y.Data[0], len(y.Data))
			}
		})
	}
}

func TestActivationsStayInRange(t *testing.T) {
	// The wScale heuristic should keep intermediate activations from
	// collapsing to full saturation: check the logits (pre-softmax) of a
	// mid-size model are not all ±127.
	m := ResNet8(5)
	rng := rand.New(rand.NewSource(123))
	x := nn.NewTensor(m.Input, m.InQuant)
	for i := range x.Data {
		x.Data[i] = int8(rng.Intn(255) - 127)
	}
	y := m.Forward(x)
	sat := 0
	for _, v := range y.Data {
		if v == 127 || v == -128 {
			sat++
		}
	}
	if sat == len(y.Data) {
		t.Fatalf("all %d outputs saturated", len(y.Data))
	}
}

func TestZooSerializationRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("zoo round trips in -short mode")
	}
	rng := rand.New(rand.NewSource(31))
	for _, info := range Catalog() {
		info := info
		t.Run(info.Name, func(t *testing.T) {
			m := info.Build(13)
			var buf bytes.Buffer
			if err := m.Save(&buf); err != nil {
				t.Fatal(err)
			}
			got, err := nn.Load(&buf)
			if err != nil {
				t.Fatal(err)
			}
			x := nn.NewTensor(m.Input, m.InQuant)
			for i := range x.Data {
				x.Data[i] = int8(rng.Intn(255) - 127)
			}
			a, b := m.Forward(x), got.Forward(x)
			for i := range a.Data {
				if a.Data[i] != b.Data[i] {
					t.Fatalf("loaded model diverges at %d", i)
				}
			}
		})
	}
}
