// Package models provides the DNN model zoo used throughout the RT-MDM
// reproduction. The topologies mirror the MLPerf Tiny reference models —
// the de-facto multi-DNN MCU workload mix (person detection, keyword
// spotting, image classification, anomaly detection) — so parameter counts,
// MAC counts and working sets match published magnitudes. Weights are
// synthetic but deterministic (seeded), with per-layer scales chosen so
// activations stay in-range; the graphs really execute via internal/nn.
package models

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"rtmdm/internal/nn"
)

// ActScale is the uniform activation quantization scale used by the zoo.
const ActScale = 1.0 / 32.0

var actQ = nn.QuantParams{Scale: ActScale, Zero: 0}

// wScale picks a weight scale so that random int8 weights behave like a
// He initialization: std ≈ gain/sqrt(fanIn), with gain √2 for layers
// followed by ReLU (which halves the activation variance) and 1 otherwise.
// (Uniform int8 has std ≈ 127/sqrt(3) ≈ 73.3.)
func wScale(fanIn int, relu bool) float64 {
	if fanIn < 1 {
		fanIn = 1
	}
	gain := 1.0
	if relu {
		gain = math.Sqrt2
	}
	return gain / (73.3 * math.Sqrt(float64(fanIn)))
}

// gen holds the deterministic weight stream for one model build.
type gen struct {
	rng *rand.Rand
	b   *nn.Builder
	n   int // layer counter for unique names
}

func newGen(name string, in nn.Shape, seed int64) *gen {
	// Mix the model name into the seed so different models built with the
	// same seed do not share weight streams.
	var h int64 = 1469598103934665603
	for _, c := range name {
		h = (h ^ int64(c)) * 1099511628211
	}
	return &gen{
		rng: rand.New(rand.NewSource(seed ^ h)),
		b:   nn.NewBuilder(name, in, actQ),
	}
}

func (g *gen) weights(n int) []int8 {
	w := make([]int8, n)
	for i := range w {
		w[i] = int8(g.rng.Intn(255) - 127)
	}
	return w
}

func (g *gen) bias(n int) []int32 {
	b := make([]int32, n)
	for i := range b {
		b[i] = int32(g.rng.Intn(129) - 64)
	}
	return b
}

func (g *gen) name(kind string) string {
	g.n++
	return fmt.Sprintf("%s%d", kind, g.n)
}

// conv appends a Conv2D chained from the previous node.
func (g *gen) conv(outC, kh, kw, stride int, pad nn.Padding, relu bool) {
	in := g.b.LastShape()
	fanIn := kh * kw * in.C
	l := nn.NewConv2D(g.name("conv"), in, outC, kh, kw, stride, pad,
		g.b.LastQuant(), nn.QuantParams{Scale: wScale(fanIn, relu)}, actQ,
		g.weights(outC*kh*kw*in.C), g.bias(outC), relu)
	g.b.Add(l)
}

// dw appends a depthwise conv chained from the previous node.
func (g *gen) dw(k, stride int, pad nn.Padding, relu bool) {
	in := g.b.LastShape()
	fanIn := k * k
	l := nn.NewDWConv2D(g.name("dwconv"), in, k, k, stride, pad,
		g.b.LastQuant(), nn.QuantParams{Scale: wScale(fanIn, relu)}, actQ,
		g.weights(k*k*in.C), g.bias(in.C), relu)
	g.b.Add(l)
}

// dense appends a fully-connected layer chained from the previous node.
func (g *gen) dense(outN int, relu bool) {
	in := g.b.LastShape()
	l := nn.NewDense(g.name("fc"), in, outN,
		g.b.LastQuant(), nn.QuantParams{Scale: wScale(in.Elems(), relu)}, actQ,
		g.weights(in.Elems()*outN), g.bias(outN), relu)
	g.b.Add(l)
}

func (g *gen) maxpool(k, stride int) {
	g.b.Add(nn.NewMaxPool2D(g.name("pool"), g.b.LastShape(), k, stride, nn.PadValid, g.b.LastQuant()))
}

func (g *gen) gap() {
	g.b.Add(nn.NewGlobalAvgPool(g.name("gap"), g.b.LastShape(), g.b.LastQuant(), actQ))
}

func (g *gen) flatten() {
	g.b.Add(nn.NewFlatten(g.name("flat"), g.b.LastShape(), g.b.LastQuant()))
}

func (g *gen) softmax() {
	g.b.Add(nn.NewSoftmax(g.name("softmax"), g.b.LastShape(), g.b.LastQuant()))
}

// MobileNetV1Q25 is the MLPerf-Tiny person-detection ("visual wake words")
// topology: MobileNetV1 with width multiplier 0.25 on 96x96 grayscale,
// 2 output classes. ≈ 220 K parameters, ≈ 7.5 M MACs.
func MobileNetV1Q25(seed int64) *nn.Model {
	g := newGen("mobilenetv1-0.25", nn.Shape{H: 96, W: 96, C: 1}, seed)
	g.conv(8, 3, 3, 2, nn.PadSame, true)
	type block struct{ stride, outC int }
	blocks := []block{
		{1, 16}, {2, 32}, {1, 32}, {2, 64}, {1, 64},
		{2, 128}, {1, 128}, {1, 128}, {1, 128}, {1, 128}, {1, 128},
		{2, 256}, {1, 256},
	}
	for _, bl := range blocks {
		g.dw(3, bl.stride, nn.PadSame, true)
		g.conv(bl.outC, 1, 1, 1, nn.PadSame, true)
	}
	g.gap()
	g.dense(2, false)
	g.softmax()
	return g.b.MustBuild()
}

// ResNet8 is the MLPerf-Tiny image-classification topology: an 8-layer
// residual CNN on 32x32x3 with 10 classes. ≈ 78 K parameters, ≈ 12.5 M MACs.
func ResNet8(seed int64) *nn.Model {
	g := newGen("resnet8", nn.Shape{H: 32, W: 32, C: 3}, seed)
	g.conv(16, 3, 3, 1, nn.PadSame, true) // stem

	stack := func(outC, stride int) {
		trunkIn := g.b.Last()
		inShape := g.b.LastShape()
		inQ := g.b.LastQuant()
		// Main path: conv(s) + conv(1).
		g.conv(outC, 3, 3, stride, nn.PadSame, true)
		g.conv(outC, 3, 3, 1, nn.PadSame, false)
		main := g.b.Last()
		mainQ := g.b.LastQuant()
		skip := trunkIn
		skipQ := inQ
		if stride != 1 || inShape.C != outC {
			// Projection shortcut: 1x1 conv with matching stride.
			fanIn := inShape.C
			l := nn.NewConv2D(g.name("proj"), inShape, outC, 1, 1, stride, nn.PadSame,
				inQ, nn.QuantParams{Scale: wScale(fanIn, false)}, actQ,
				g.weights(outC*inShape.C), g.bias(outC), false)
			skip = g.b.Add(l, trunkIn)
			skipQ = actQ
		}
		outShape := g.b.NodeShape(main)
		add := nn.NewAdd(g.name("add"), outShape, mainQ, skipQ, actQ, true)
		g.b.Add(add, main, skip)
	}
	stack(16, 1)
	stack(32, 2)
	stack(64, 2)
	g.gap()
	g.dense(10, false)
	g.softmax()
	return g.b.MustBuild()
}

// DSCNN is the MLPerf-Tiny keyword-spotting topology: a depthwise-separable
// CNN over a 49x10 MFCC spectrogram with 12 output classes.
// ≈ 22 K parameters, ≈ 2.7 M MACs.
func DSCNN(seed int64) *nn.Model {
	g := newGen("ds-cnn", nn.Shape{H: 49, W: 10, C: 1}, seed)
	g.conv(64, 10, 4, 2, nn.PadSame, true)
	for i := 0; i < 4; i++ {
		g.dw(3, 1, nn.PadSame, true)
		g.conv(64, 1, 1, 1, nn.PadSame, true)
	}
	g.gap()
	g.dense(12, false)
	g.softmax()
	return g.b.MustBuild()
}

// Autoencoder is the MLPerf-Tiny anomaly-detection topology: a symmetric
// dense autoencoder over a 640-dimensional log-mel input window.
// ≈ 264 K parameters (the heaviest parameter load in the zoo relative to
// its compute).
func Autoencoder(seed int64) *nn.Model {
	g := newGen("autoencoder", nn.Shape{H: 1, W: 1, C: 640}, seed)
	for i := 0; i < 4; i++ {
		g.dense(128, true)
	}
	g.dense(8, true) // bottleneck
	for i := 0; i < 4; i++ {
		g.dense(128, true)
	}
	g.dense(640, false)
	return g.b.MustBuild()
}

// LeNet5 is the classic MNIST CNN (28x28x1 → 10), the smallest member of
// the zoo. ≈ 61 K parameters.
func LeNet5(seed int64) *nn.Model {
	g := newGen("lenet5", nn.Shape{H: 28, W: 28, C: 1}, seed)
	g.conv(6, 5, 5, 1, nn.PadSame, true)
	g.maxpool(2, 2)
	g.conv(16, 5, 5, 1, nn.PadValid, true)
	g.maxpool(2, 2)
	g.flatten()
	g.dense(120, true)
	g.dense(84, true)
	g.dense(10, false)
	g.softmax()
	return g.b.MustBuild()
}

// TinyMLP is a small dense classifier useful for low-utilization filler
// tasks in synthetic task sets. ≈ 42 K parameters.
func TinyMLP(seed int64) *nn.Model {
	g := newGen("tinymlp", nn.Shape{H: 1, W: 1, C: 256}, seed)
	g.dense(128, true)
	g.dense(64, true)
	g.dense(10, false)
	g.softmax()
	return g.b.MustBuild()
}

// Info describes one zoo entry.
type Info struct {
	Name        string
	Description string
	Build       func(seed int64) *nn.Model
}

var catalog = map[string]Info{
	"mobilenetv1-0.25":  {"mobilenetv1-0.25", "person detection (visual wake words), 96x96x1", MobileNetV1Q25},
	"resnet8":           {"resnet8", "image classification, 32x32x3 CIFAR-style", ResNet8},
	"ds-cnn":            {"ds-cnn", "keyword spotting over 49x10 MFCC", DSCNN},
	"autoencoder":       {"autoencoder", "acoustic anomaly detection, 640-d window", Autoencoder},
	"lenet5":            {"lenet5", "MNIST digit classification, 28x28x1", LeNet5},
	"tinymlp":           {"tinymlp", "small dense classifier, 256-d input", TinyMLP},
	"mobilenetv2-micro": {"mobilenetv2-micro", "inverted-residual CNN, 96x96x3, per-channel quant", MobileNetV2Micro},
	"squeezenet-micro":  {"squeezenet-micro", "fire-module CNN with concat, 32x32x3", SqueezeNetMicro},
}

// Catalog lists zoo entries sorted by name.
func Catalog() []Info {
	out := make([]Info, 0, len(catalog))
	for _, v := range catalog {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Names lists the zoo model names sorted alphabetically.
func Names() []string {
	infos := Catalog()
	names := make([]string, len(infos))
	for i, in := range infos {
		names[i] = in.Name
	}
	return names
}

// Build constructs a zoo model by name.
func Build(name string, seed int64) (*nn.Model, error) {
	info, ok := catalog[name]
	if !ok {
		return nil, fmt.Errorf("models: unknown model %q (have %v)", name, Names())
	}
	return info.Build(seed), nil
}
