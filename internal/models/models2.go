package models

import (
	"rtmdm/internal/nn"
)

// convPC appends a per-output-channel-quantized 1x1/3x3 convolution — the
// TFLite int8 convention — with deterministic per-channel scale variation
// around the He value.
func (g *gen) convPC(outC, kh, kw, stride int, pad nn.Padding, relu bool) {
	in := g.b.LastShape()
	fanIn := kh * kw * in.C
	base := wScale(fanIn, relu)
	scales := make([]float64, outC)
	for i := range scales {
		// ±30% deterministic spread, as real per-channel calibration shows.
		scales[i] = base * (0.7 + 0.6*g.rng.Float64())
	}
	l := nn.NewConv2DPerChannel(g.name("conv"), in, outC, kh, kw, stride, pad,
		g.b.LastQuant(), scales, actQ,
		g.weights(outC*kh*kw*in.C), g.bias(outC), relu)
	g.b.Add(l)
}

// MobileNetV2Micro is a width-trimmed MobileNetV2-style network with
// inverted-residual bottlenecks on 96x96x3, using per-channel quantized
// pointwise convolutions. ≈ 45 K parameters, ≈ 6 M MACs.
func MobileNetV2Micro(seed int64) *nn.Model {
	g := newGen("mobilenetv2-micro", nn.Shape{H: 96, W: 96, C: 3}, seed)
	g.convPC(8, 3, 3, 2, nn.PadSame, true) // stem → 48x48x8

	// Inverted residual: expand (1x1, ×t), depthwise (3x3, stride s),
	// project (1x1, linear), residual add when shapes allow.
	block := func(t, outC, stride int) {
		inIdx := g.b.Last()
		inShape := g.b.LastShape()
		inQ := g.b.LastQuant()
		g.convPC(t*inShape.C, 1, 1, 1, nn.PadSame, true) // expand
		g.dw(3, stride, nn.PadSame, true)                // depthwise
		g.convPC(outC, 1, 1, 1, nn.PadSame, false)       // project (linear)
		if stride == 1 && inShape.C == outC {
			proj := g.b.Last()
			add := nn.NewAdd(g.name("add"), g.b.NodeShape(proj), g.b.NodeQuant(proj), inQ, actQ, false)
			g.b.Add(add, proj, inIdx)
		}
	}
	block(1, 8, 1)  // 48x48x8
	block(6, 12, 2) // 24x24x12
	block(6, 12, 1)
	block(6, 16, 2) // 12x12x16
	block(6, 16, 1)
	block(6, 24, 2) // 6x6x24
	block(6, 24, 1)
	block(6, 32, 1) // 6x6x32
	g.gap()
	g.dense(10, false)
	g.softmax()
	return g.b.MustBuild()
}

// SqueezeNetMicro is a fire-module network on 32x32x3 exercising channel
// concatenation. ≈ 9 K parameters, ≈ 3 M MACs.
func SqueezeNetMicro(seed int64) *nn.Model {
	g := newGen("squeezenet-micro", nn.Shape{H: 32, W: 32, C: 3}, seed)
	g.conv(16, 3, 3, 1, nn.PadSame, true)
	g.maxpool(2, 2) // 16x16x16

	// fire: squeeze 1x1 → {expand 1x1, expand 3x3} → concat.
	fire := func(squeeze, expand int) {
		g.convPC(squeeze, 1, 1, 1, nn.PadSame, true)
		sq := g.b.Last()
		sqShape := g.b.NodeShape(sq)
		g.convPC(expand, 1, 1, 1, nn.PadSame, true)
		e1 := g.b.Last()
		// Rewind the chain: the 3x3 expansion consumes the squeeze output
		// too, not e1.
		fanIn := 3 * 3 * sqShape.C
		l3 := nn.NewConv2D(g.name("conv"), sqShape, expand, 3, 3, 1, nn.PadSame,
			g.b.NodeQuant(sq), nn.QuantParams{Scale: wScale(fanIn, true)}, actQ,
			g.weights(expand*3*3*sqShape.C), g.bias(expand), true)
		e3 := g.b.Add(l3, sq)
		cat := nn.NewConcat(g.name("concat"), g.b.NodeShape(e1), g.b.NodeShape(e3),
			g.b.NodeQuant(e1), g.b.NodeQuant(e3), actQ)
		g.b.Add(cat, e1, e3)
	}
	fire(8, 16) // 16x16x32
	fire(8, 16)
	g.maxpool(2, 2) // 8x8x32
	fire(16, 24)    // 8x8x48
	g.gap()
	g.dense(10, false)
	g.softmax()
	return g.b.MustBuild()
}
