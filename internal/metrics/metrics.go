// Package metrics is a lightweight, allocation-free run-level metrics
// registry for the RT-MDM stack: named counters, gauges and fixed-bucket
// histograms that the sim kernel, executor, design-space explorer and
// experiment harness update on their hot paths.
//
// # Zero cost when off
//
// Every mutating method is safe on a nil receiver and does nothing there.
// Instrumented packages hold nil metric pointers until an explicit
// Instrument call wires them to a Registry, so disabled runs pay one
// predictable nil-check branch per instrumentation point — no allocation,
// no atomic traffic, no lock. This is the property the repo's alloc-budget
// tests pin (see docs/OBSERVABILITY.md).
//
// # Determinism
//
// Snapshot returns samples sorted by metric name, independent of
// registration or update order, so snapshots diff cleanly and serialize
// byte-identically across runs. All updates are atomic: the registry is
// safe for the parallel sweep workers in internal/expr and internal/dse.
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing accumulator. The nil Counter
// discards updates.
type Counter struct {
	v    atomic.Int64
	name string
}

// Add increments the counter by d (no-op on nil).
//
//rtmdm:hotpath
func (c *Counter) Add(d int64) {
	if c != nil {
		c.v.Add(d)
	}
}

// Inc increments the counter by one (no-op on nil).
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (zero on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value metric with a monotonic-max helper for high-water
// marks. The nil Gauge discards updates.
type Gauge struct {
	v    atomic.Int64
	name string
}

// Set stores v (no-op on nil).
//
//rtmdm:hotpath
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the gauge by d (no-op on nil).
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.v.Add(d)
	}
}

// SetMax raises the gauge to v if v exceeds the current value (no-op on
// nil). It is the high-water-mark primitive: lock-free and monotonic.
//
//rtmdm:hotpath
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur {
			return
		}
		if g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value (zero on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts observations into fixed buckets defined at registration
// by strictly increasing upper bounds; one implicit overflow bucket catches
// everything above the last bound. Observe is allocation-free. The nil
// Histogram discards observations.
type Histogram struct {
	name   string
	bounds []int64        // upper bounds, strictly increasing
	counts []atomic.Int64 // len(bounds)+1, last is overflow
	sum    atomic.Int64
}

// Observe records one value (no-op on nil).
//
//rtmdm:hotpath
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	// Linear scan: bucket counts are small (≤ ~16) and the early bounds
	// are the common case, so this beats binary search in practice.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
}

// kind discriminates sample types in snapshots.
const (
	KindCounter   = "counter"
	KindGauge     = "gauge"
	KindHistogram = "histogram"
)

// entry is one registered metric with its metadata.
type entry struct {
	name string
	kind string
	unit string
	help string
	c    *Counter
	g    *Gauge
	h    *Histogram
}

// Registry holds named metrics. The zero value is not ready; construct
// with NewRegistry. Registration is idempotent by (name, kind): asking for
// an existing metric returns the same instance, so several subsystems can
// share one registry without coordination.
type Registry struct {
	mu      sync.Mutex
	entries map[string]*entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: map[string]*entry{}}
}

func (r *Registry) lookup(name, kind, unit, help string) *entry {
	if name == "" {
		panic("metrics: empty metric name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[name]; ok {
		if e.kind != kind {
			panic(fmt.Sprintf("metrics: %q registered as %s, requested as %s", name, e.kind, kind))
		}
		return e
	}
	e := &entry{name: name, kind: kind, unit: unit, help: help}
	r.entries[name] = e
	return e
}

// Counter registers (or finds) a counter. unit is a free-form annotation
// ("events", "ns", "bytes"); help is a one-line meaning.
func (r *Registry) Counter(name, unit, help string) *Counter {
	e := r.lookup(name, KindCounter, unit, help)
	if e.c == nil {
		e.c = &Counter{name: name}
	}
	return e.c
}

// Gauge registers (or finds) a gauge.
func (r *Registry) Gauge(name, unit, help string) *Gauge {
	e := r.lookup(name, KindGauge, unit, help)
	if e.g == nil {
		e.g = &Gauge{name: name}
	}
	return e.g
}

// Histogram registers (or finds) a histogram with the given strictly
// increasing upper bounds. Bounds are fixed at first registration; a
// second registration under the same name returns the original histogram
// regardless of the bounds argument.
func (r *Registry) Histogram(name, unit, help string, bounds []int64) *Histogram {
	e := r.lookup(name, KindHistogram, unit, help)
	if e.h == nil {
		for i := 1; i < len(bounds); i++ {
			if bounds[i] <= bounds[i-1] {
				panic(fmt.Sprintf("metrics: %q bounds not strictly increasing at %d", name, i))
			}
		}
		e.h = &Histogram{
			name:   name,
			bounds: append([]int64(nil), bounds...),
			counts: make([]atomic.Int64, len(bounds)+1),
		}
	}
	return e.h
}

// Bucket is one histogram bucket in a snapshot. Le is the inclusive upper
// bound; the overflow bucket reports Le = math.MaxInt64.
type Bucket struct {
	Le    int64 `json:"le"`
	Count int64 `json:"count"`
}

// Sample is one metric's state at snapshot time.
type Sample struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
	Unit string `json:"unit,omitempty"`
	Help string `json:"help,omitempty"`
	// Value is the counter/gauge value; for histograms, the total
	// observation count.
	Value int64 `json:"value"`
	// Sum is the sum of observed values (histograms only).
	Sum     int64    `json:"sum,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot is a point-in-time copy of every registered metric, sorted by
// name — deterministic regardless of registration or update order.
type Snapshot struct {
	Samples []Sample `json:"metrics"`
}

// Snapshot captures the registry. Concurrent updates may land on either
// side of the capture; each individual metric is read atomically.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	entries := make([]*entry, 0, len(r.entries))
	for _, e := range r.entries {
		entries = append(entries, e)
	}
	r.mu.Unlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].name < entries[j].name })
	s := Snapshot{Samples: make([]Sample, 0, len(entries))}
	for _, e := range entries {
		sm := Sample{Name: e.name, Kind: e.kind, Unit: e.unit, Help: e.help}
		switch e.kind {
		case KindCounter:
			sm.Value = e.c.Value()
		case KindGauge:
			sm.Value = e.g.Value()
		case KindHistogram:
			sm.Buckets = make([]Bucket, len(e.h.counts))
			for i := range e.h.counts {
				le := int64(math.MaxInt64)
				if i < len(e.h.bounds) {
					le = e.h.bounds[i]
				}
				n := e.h.counts[i].Load()
				sm.Buckets[i] = Bucket{Le: le, Count: n}
				sm.Value += n
			}
			sm.Sum = e.h.sum.Load()
		}
		s.Samples = append(s.Samples, sm)
	}
	return s
}

// Get returns the sample with the given name.
func (s Snapshot) Get(name string) (Sample, bool) {
	for _, sm := range s.Samples {
		if sm.Name == name {
			return sm, true
		}
	}
	return Sample{}, false
}

// Diff returns this snapshot relative to an earlier base: counter values,
// histogram counts and sums subtract (a metric absent from base diffs
// against zero); gauges keep their current value, since a last-value or
// high-water metric has no meaningful delta.
func (s Snapshot) Diff(base Snapshot) Snapshot {
	prev := map[string]Sample{}
	for _, sm := range base.Samples {
		prev[sm.Name] = sm
	}
	out := Snapshot{Samples: make([]Sample, len(s.Samples))}
	for i, sm := range s.Samples {
		d := sm
		if p, ok := prev[sm.Name]; ok && sm.Kind != KindGauge {
			d.Value -= p.Value
			d.Sum -= p.Sum
			if len(p.Buckets) == len(d.Buckets) {
				d.Buckets = make([]Bucket, len(sm.Buckets))
				for j, b := range sm.Buckets {
					d.Buckets[j] = Bucket{Le: b.Le, Count: b.Count - p.Buckets[j].Count}
				}
			}
		}
		out.Samples[i] = d
	}
	return out
}

// WriteJSON serializes the snapshot as indented JSON. Output is
// byte-deterministic for a given snapshot.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteText writes the snapshot as aligned "name value unit" lines, with
// histogram buckets indented under their parent.
func (s Snapshot) WriteText(w io.Writer) error {
	width := 0
	for _, sm := range s.Samples {
		if len(sm.Name) > width {
			width = len(sm.Name)
		}
	}
	for _, sm := range s.Samples {
		if _, err := fmt.Fprintf(w, "%-*s %12d %s\n", width, sm.Name, sm.Value, sm.Unit); err != nil {
			return err
		}
		for _, b := range sm.Buckets {
			le := fmt.Sprintf("%d", b.Le)
			if b.Le == math.MaxInt64 {
				le = "+inf"
			}
			if _, err := fmt.Fprintf(w, "%-*s %12d   le=%s\n", width, "", b.Count, le); err != nil {
				return err
			}
		}
	}
	return nil
}
