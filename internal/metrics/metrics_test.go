package metrics

import (
	"bytes"
	"encoding/json"
	"math"
	"sync"
	"testing"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.count", "events", "test counter")
	g := r.Gauge("a.gauge", "bytes", "test gauge")
	h := r.Histogram("a.hist", "ns", "test histogram", []int64{10, 100})

	c.Add(3)
	c.Inc()
	if c.Value() != 4 {
		t.Fatalf("counter = %d, want 4", c.Value())
	}
	g.Set(7)
	g.SetMax(5) // lower: ignored
	g.SetMax(9)
	if g.Value() != 9 {
		t.Fatalf("gauge = %d, want 9", g.Value())
	}
	h.Observe(5)
	h.Observe(10) // boundary: inclusive upper bound
	h.Observe(50)
	h.Observe(1000) // overflow bucket

	s := r.Snapshot()
	hs, ok := s.Get("a.hist")
	if !ok {
		t.Fatal("histogram sample missing")
	}
	if hs.Value != 4 || hs.Sum != 1065 {
		t.Fatalf("hist count/sum = %d/%d, want 4/1065", hs.Value, hs.Sum)
	}
	want := []Bucket{{10, 2}, {100, 1}, {math.MaxInt64, 1}}
	for i, b := range hs.Buckets {
		if b != want[i] {
			t.Fatalf("bucket %d = %+v, want %+v", i, b, want[i])
		}
	}
}

// TestRegistrationIdempotent: re-registering a name returns the original
// instance so independent subsystems can share a registry.
func TestRegistrationIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x", "", "")
	b := r.Counter("x", "", "")
	if a != b {
		t.Fatal("re-registration returned a different counter")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	r.Gauge("x", "", "")
}

// TestSnapshotDeterministicOrder pins the ISSUE-2 determinism contract:
// sample order is sorted by name, independent of registration order.
func TestSnapshotDeterministicOrder(t *testing.T) {
	r1 := NewRegistry()
	r1.Counter("zz", "", "")
	r1.Gauge("aa", "", "")
	r1.Histogram("mm", "", "", []int64{1})

	r2 := NewRegistry()
	r2.Histogram("mm", "", "", []int64{1})
	r2.Counter("zz", "", "")
	r2.Gauge("aa", "", "")

	names := func(s Snapshot) []string {
		out := make([]string, len(s.Samples))
		for i, sm := range s.Samples {
			out[i] = sm.Name
		}
		return out
	}
	n1, n2 := names(r1.Snapshot()), names(r2.Snapshot())
	want := []string{"aa", "mm", "zz"}
	for i := range want {
		if n1[i] != want[i] || n2[i] != want[i] {
			t.Fatalf("order %v / %v, want %v", n1, n2, want)
		}
	}

	var b1, b2 bytes.Buffer
	if err := r1.Snapshot().WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := r2.Snapshot().WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Fatal("snapshot JSON differs across registration orders")
	}
	var decoded Snapshot
	if err := json.Unmarshal(b1.Bytes(), &decoded); err != nil {
		t.Fatalf("snapshot JSON invalid: %v", err)
	}
}

func TestDiff(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "", "")
	g := r.Gauge("g", "", "")
	h := r.Histogram("h", "", "", []int64{10})

	c.Add(5)
	g.Set(100)
	h.Observe(3)
	base := r.Snapshot()

	c.Add(2)
	g.Set(40)
	h.Observe(30)
	d := r.Snapshot().Diff(base)

	if cs, _ := d.Get("c"); cs.Value != 2 {
		t.Fatalf("counter diff = %d, want 2", cs.Value)
	}
	if gs, _ := d.Get("g"); gs.Value != 40 {
		t.Fatalf("gauge diff keeps current value: got %d, want 40", gs.Value)
	}
	hs, _ := d.Get("h")
	if hs.Value != 1 || hs.Sum != 30 || hs.Buckets[1].Count != 1 || hs.Buckets[0].Count != 0 {
		t.Fatalf("hist diff = %+v, want 1 observation of 30 in the overflow bucket", hs)
	}
}

// TestNilSafety: every mutator on a nil metric is a no-op — the
// zero-cost-when-off contract instrumented packages rely on.
func TestNilSafety(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Add(1)
	c.Inc()
	g.Set(1)
	g.Add(1)
	g.SetMax(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 {
		t.Fatal("nil metrics must read zero")
	}
}

// TestDisabledPathZeroAlloc pins the alloc half of the zero-cost-when-off
// guarantee: updates through nil metric pointers allocate nothing.
func TestDisabledPathZeroAlloc(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	if a := testing.AllocsPerRun(100, func() {
		c.Add(1)
		g.SetMax(7)
		h.Observe(3)
	}); a != 0 {
		t.Fatalf("disabled instrumentation allocates %.0f/op, want 0", a)
	}
}

// TestEnabledPathZeroAlloc: even live updates are allocation-free; only
// registration and snapshots allocate.
func TestEnabledPathZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "", "")
	g := r.Gauge("g", "", "")
	h := r.Histogram("h", "", "", []int64{10, 100, 1000})
	if a := testing.AllocsPerRun(100, func() {
		c.Add(1)
		g.SetMax(9)
		h.Observe(50)
	}); a != 0 {
		t.Fatalf("enabled instrumentation allocates %.0f/op, want 0", a)
	}
}

// TestConcurrentUpdates exercises the registry under the race detector.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("shared", "", "")
			g := r.Gauge("hwm", "", "")
			h := r.Histogram("obs", "", "", []int64{5})
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.SetMax(int64(i))
				h.Observe(int64(i % 10))
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	if cs, _ := s.Get("shared"); cs.Value != 8000 {
		t.Fatalf("counter = %d, want 8000", cs.Value)
	}
	if gs, _ := s.Get("hwm"); gs.Value != 999 {
		t.Fatalf("gauge = %d, want 999", gs.Value)
	}
}
