package exec

import (
	"errors"
	"reflect"
	"testing"

	"rtmdm/internal/core"
	"rtmdm/internal/fault"
	"rtmdm/internal/metrics"
	"rtmdm/internal/sim"
	"rtmdm/internal/task"
	"rtmdm/internal/trace"
)

func metricVal(t *testing.T, reg *metrics.Registry, name string) int64 {
	t.Helper()
	for _, s := range reg.Snapshot().Samples {
		if s.Name == name {
			return s.Value
		}
	}
	t.Fatalf("metric %q not in snapshot", name)
	return 0
}

func countKind(r *Result, k trace.Kind) int {
	n := 0
	for _, e := range r.Trace.Events {
		if e.Kind == k {
			n++
		}
	}
	return n
}

// TestRunWithNilPlanMatchesRun pins the no-plan guarantee: RunWithFaults
// with a nil plan is byte-identical to Run.
func TestRunWithNilPlanMatchesRun(t *testing.T) {
	p := testPlat()
	s := task.NewSet(
		mkTask(p, "a", sim.Millisecond, sim.Millisecond, 0, 0, segSpec{900, 1000}, segSpec{900, 1000}),
		mkTask(p, "b", 2*sim.Millisecond, 2*sim.Millisecond, 0, 1, segSpec{500, 2000}),
	)
	r1, err := Run(s, p, core.RTMDM(), 10*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunWithFaults(s, p, core.RTMDM(), 10*sim.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1.Trace.Events, r2.Trace.Events) {
		t.Error("nil-plan RunWithFaults trace differs from Run")
	}
	if r2.FaultsInjected != 0 || r2.JobsAborted != 0 || r2.DMARetries != 0 || r2.ReleasesSuppressed != 0 {
		t.Errorf("nil plan injected: %+v", r2)
	}
}

// TestFaultRunsAreDeterministic pins the reproducibility guarantee: two
// runs under the same plan produce identical traces and fault accounting,
// for both an RT-MDM and a serial (job-locked) policy.
func TestFaultRunsAreDeterministic(t *testing.T) {
	p := testPlat()
	mkSet := func() *task.Set {
		return task.NewSet(
			mkTask(p, "a", sim.Millisecond, sim.Millisecond, 0, 0, segSpec{900, 100_000}, segSpec{900, 100_000}),
			mkTask(p, "b", 2*sim.Millisecond, 2*sim.Millisecond, 0, 1, segSpec{50_000, 300_000}, segSpec{20_000, 200_000}),
		)
	}
	cfg := fault.Config{
		Seed:               11,
		OverrunRate:        0.5,
		OverrunFactor:      1.5,
		OverrunFactorMax:   3,
		ReleaseJitterRate:  0.5,
		ReleaseJitterMaxMs: 0.2,
		DMASlowdownRatePerSec: 200, DMASlowdownMs: 0.5, DMASlowdownFactor: 2,
		TransferFaultRate: 0.3,
	}
	for _, polName := range []string{"rt-mdm", "serial-npfp"} {
		pol, err := core.PolicyByName(polName)
		if err != nil {
			t.Fatal(err)
		}
		pol.Overrun = core.OverrunAbort
		run := func() *Result {
			plan, err := fault.New(cfg, 20*sim.Millisecond)
			if err != nil {
				t.Fatal(err)
			}
			r, err := RunWithFaults(mkSet(), p, pol, 20*sim.Millisecond, plan)
			if err != nil {
				t.Fatalf("%s: %v", polName, err)
			}
			return r
		}
		r1, r2 := run(), run()
		if !reflect.DeepEqual(r1.Trace.Events, r2.Trace.Events) {
			t.Errorf("%s: traces differ across identical fault runs", polName)
		}
		if r1.FaultsInjected != r2.FaultsInjected || r1.JobsAborted != r2.JobsAborted ||
			r1.DMARetries != r2.DMARetries || r1.SRAMPeak != r2.SRAMPeak {
			t.Errorf("%s: fault accounting differs: %+v vs %+v", polName, r1, r2)
		}
		if r1.FaultsInjected == 0 {
			t.Errorf("%s: plan injected nothing", polName)
		}
	}
}

// TestOverrunAbortInvariants drives a 100%-overrun plan into OverrunAbort
// and pins the acceptance criteria: every aborted job emits exactly one
// Abort, frees its staging buffers (SRAM residual returns to baseline), and
// is counted exactly once in exec.deadline_misses.
func TestOverrunAbortInvariants(t *testing.T) {
	reg := metrics.NewRegistry()
	Instrument(reg)
	defer Instrument(nil)

	p := testPlat()
	// Nominal response ≈ 1000 + 300k + 300k = 601k < 650k deadline; under a
	// factor-2 overrun every job blows past its deadline mid-compute while
	// holding a staged buffer.
	s := task.NewSet(mkTask(p, "a", sim.Millisecond, 650_000, 0, 0,
		segSpec{1000, 300_000}, segSpec{1000, 300_000}))
	plan, err := fault.New(fault.Config{OverrunRate: 1, OverrunFactor: 2}, 10*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	pol := core.RTMDM()
	pol.Overrun = core.OverrunAbort
	r, err := RunWithFaults(s, p, pol, 10*sim.Millisecond, plan)
	if err != nil {
		t.Fatal(err) // Run already checked the trace invariants
	}
	const jobs = 10
	if r.JobsAborted != jobs {
		t.Fatalf("JobsAborted = %d, want %d", r.JobsAborted, jobs)
	}
	perJob := map[int]int{}
	for _, e := range r.Trace.Events {
		if e.Kind == trace.Abort {
			perJob[e.Job]++
		}
	}
	if len(perJob) != jobs {
		t.Fatalf("aborts for %d jobs, want %d", len(perJob), jobs)
	}
	for job, n := range perJob {
		if n != 1 {
			t.Errorf("job %d has %d Abort events, want exactly 1", job, n)
		}
	}
	if r.SRAMResidual != 0 {
		t.Errorf("SRAM residual %d B after all jobs aborted, want 0 (buffers leaked)", r.SRAMResidual)
	}
	if got := metricVal(t, reg, "exec.deadline_misses"); got != jobs {
		t.Errorf("exec.deadline_misses = %d, want %d (each aborted job counted once)", got, jobs)
	}
	if got := metricVal(t, reg, "exec.jobs_aborted"); got != jobs {
		t.Errorf("exec.jobs_aborted = %d, want %d", got, jobs)
	}
	tm := r.Metrics.PerTask["a"]
	if tm.Misses != jobs || tm.Aborted != jobs || tm.Completed != 0 {
		t.Errorf("metrics misses=%d aborted=%d completed=%d, want %d/%d/0",
			tm.Misses, tm.Aborted, tm.Completed, jobs, jobs)
	}
	if n := countKind(r, trace.Overrun); n == 0 {
		t.Error("no Overrun events traced under a rate-1 plan")
	}
}

// TestAbortCancelsExactlyOnce pins the sim-kernel accounting of an abort
// (Cancel-vs-deadline edge cases): reclaiming a device cancels the armed
// completion event exactly once. In both scenarios each job performs
// exactly one device dispatch (whose bus rate-update re-arms the completion
// event, costing one cancellation) and is then aborted (one Activity.Pause
// cancellation), so sim.events_cancelled must equal released + aborted —
// any double-cancel or leaked pending event breaks the equality.
func TestAbortCancelsExactlyOnce(t *testing.T) {
	p := testPlat()
	scenarios := []struct {
		name string
		spec segSpec
	}{
		// Aborted mid-compute: zero-byte load, compute overruns the deadline.
		{"cpu", segSpec{0, 800_000}},
		// Aborted mid-transfer: the 450k-byte load alone overruns the
		// 300µs deadline (the channel is still busy at the abort instant).
		{"dma", segSpec{450_000, 100_000}},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			reg := metrics.NewRegistry()
			Instrument(reg)
			defer Instrument(nil)
			s := task.NewSet(mkTask(p, "a", sim.Millisecond, 300_000, 0, 0, sc.spec))
			pol := core.RTMDM()
			pol.Overrun = core.OverrunAbort
			r, err := RunWithFaults(s, p, pol, 5*sim.Millisecond, nil)
			if err != nil {
				t.Fatal(err)
			}
			const jobs = 5
			if r.JobsAborted != jobs {
				t.Fatalf("JobsAborted = %d, want %d", r.JobsAborted, jobs)
			}
			cancelled := metricVal(t, reg, "sim.events_cancelled")
			if want := int64(jobs + jobs); cancelled != want {
				t.Errorf("sim.events_cancelled = %d, want %d (1 dispatch re-arm + exactly 1 abort cancel per job)",
					cancelled, want)
			}
			if r.SRAMResidual != 0 {
				t.Errorf("SRAM residual %d B, want 0", r.SRAMResidual)
			}
		})
	}
}

// TestTransferRetryBackoffTiming pins the retry path's exact arithmetic: a
// rate-1 plan with budget 2 faults every chunk until the budget forces
// success, with doubling backoff between attempts.
func TestTransferRetryBackoffTiming(t *testing.T) {
	p := testPlat()
	s := task.NewSet(mkTask(p, "a", 10*sim.Millisecond, 10*sim.Millisecond, 0, 0, segSpec{1000, 1000}))
	plan, err := fault.New(fault.Config{TransferFaultRate: 1, MaxRetries: 2, RetryBackoffUs: 20}, 10*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	r, err := RunWithFaults(s, p, core.RTMDM(), 10*sim.Millisecond, plan)
	if err != nil {
		t.Fatal(err)
	}
	if r.DMARetries != 2 {
		t.Fatalf("DMARetries = %d, want 2 (budget exhausts after 2)", r.DMARetries)
	}
	if n := countKind(r, trace.DMARetry); n != 2 {
		t.Fatalf("%d DMARetry events, want 2", n)
	}
	// xfer 1000 + backoff 20µs + xfer 1000 + backoff 40µs + xfer 1000 +
	// compute 1000 = 64000 ns.
	if got := jobDoneAt(t, r, "a", 0); got != 64_000 {
		t.Fatalf("completion at %v, want 64000", got)
	}
	// Each attempt re-reads the chunk from flash.
	if r.FlashBytes != 3000 {
		t.Fatalf("FlashBytes = %d, want 3000 (3 attempts × 1000 B)", r.FlashBytes)
	}
	tm := r.Metrics.PerTask["a"]
	if tm.Misses != 0 || tm.Completed != 1 {
		t.Fatalf("misses=%d completed=%d, want 0/1", tm.Misses, tm.Completed)
	}
}

// TestOverrunSkipNextShedsReleases: a permanently overloaded task under
// skip-next sheds exactly one future release per miss, and every grid point
// is either released or suppressed.
func TestOverrunSkipNextShedsReleases(t *testing.T) {
	p := testPlat()
	s := task.NewSet(mkTask(p, "a", sim.Millisecond, sim.Millisecond, 0, 0, segSpec{0, 1_500_000}))
	pol := core.RTMDM()
	pol.Overrun = core.OverrunSkipNext
	r, err := RunWithFaults(s, p, pol, 10*sim.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.ReleasesSuppressed == 0 {
		t.Fatal("overloaded skip-next run suppressed nothing")
	}
	released := int64(countKind(r, trace.Release))
	if released+r.ReleasesSuppressed != 10 {
		t.Errorf("released %d + suppressed %d != 10 grid points", released, r.ReleasesSuppressed)
	}
	if r.JobsAborted != 0 {
		t.Errorf("skip-next aborted %d jobs", r.JobsAborted)
	}
	// Shedding keeps the backlog bounded: with every other release shed the
	// task alternates miss, skip — so completions keep happening.
	if r.Metrics.PerTask["a"].Completed == 0 {
		t.Error("skip-next run completed nothing; backlog was not shed")
	}
}

// TestMalformedPlanReturnsInternalError: a hand-built plan with a negative
// compute cost drives the platform layer into an invariant panic; the
// public boundary must convert it into a structured error, not a crash.
func TestMalformedPlanReturnsInternalError(t *testing.T) {
	p := testPlat()
	s := task.NewSet(mkTask(p, "a", sim.Millisecond, sim.Millisecond, 0, 0, segSpec{0, -5}))
	_, err := Run(s, p, core.RTMDM(), 5*sim.Millisecond)
	if err == nil {
		t.Fatal("negative compute cost did not error")
	}
	var ie *InternalError
	if !errors.As(err, &ie) {
		t.Fatalf("error %v is not an *InternalError", err)
	}
	if ie.Stack == "" {
		t.Error("InternalError without a stack")
	}
}

// TestAbortWithQueuedRetryIsRevoked covers the abort-during-backoff edge:
// the armed retry event and the re-queued transfer must both be revoked so
// nothing of the aborted job fires later (the trace invariant "no events
// after abort" catches any leak).
func TestAbortWithQueuedRetryIsRevoked(t *testing.T) {
	p := testPlat()
	// Transfer faults with a long backoff guarantee the job sits in backoff
	// (or re-queued) when its 300µs deadline arrives.
	s := task.NewSet(mkTask(p, "a", sim.Millisecond, 300_000, 0, 0, segSpec{100_000, 50_000}))
	plan, err := fault.New(fault.Config{TransferFaultRate: 1, MaxRetries: 3, RetryBackoffUs: 400}, 5*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	pol := core.RTMDM()
	pol.Overrun = core.OverrunAbort
	r, err := RunWithFaults(s, p, pol, 5*sim.Millisecond, plan)
	if err != nil {
		t.Fatal(err)
	}
	if r.JobsAborted == 0 {
		t.Fatal("no aborts; scenario does not exercise the backoff edge")
	}
	if r.SRAMResidual != 0 {
		t.Errorf("SRAM residual %d B, want 0", r.SRAMResidual)
	}
}
