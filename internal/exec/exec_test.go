package exec

import (
	"math/rand"
	"testing"

	"rtmdm/internal/core"
	"rtmdm/internal/cost"
	"rtmdm/internal/models"
	"rtmdm/internal/segment"
	"rtmdm/internal/sim"
	"rtmdm/internal/task"
	"rtmdm/internal/trace"
)

// testPlat moves 1 byte per ns with 100 ns DMA setup and executes CPU work
// 1:1, with no bus contention — every scenario below has exact arithmetic.
func testPlat() cost.Platform {
	return cost.Platform{
		Name:           "test",
		CPU:            cost.CPUProfile{Name: "cpu", Hz: 1_000_000_000, DefaultMACsPerCycle: 1},
		Mem:            cost.MemProfile{Name: "mem", BandwidthBps: 1_000_000_000, SetupNs: 0},
		SRAMBytes:      1 << 20,
		WeightBufBytes: 1 << 19,
		Bus:            cost.NoContention(),
	}
}

type segSpec struct {
	bytes   int64
	compute int64
}

func mkPlan(p cost.Platform, specs ...segSpec) *segment.Plan {
	pl := &segment.Plan{Platform: p, BudgetBytes: 1 << 19}
	for i, s := range specs {
		pl.Segments = append(pl.Segments, segment.Segment{
			Index:     i,
			Parts:     []segment.Part{{Node: i, Num: 1, Den: 1}},
			LoadBytes: s.bytes,
			ComputeNs: s.compute,
			LoadNs:    p.Mem.TransferNs(s.bytes),
		})
	}
	return pl
}

func mkTask(p cost.Platform, name string, period, deadline, offset sim.Duration, prio int, specs ...segSpec) *task.Task {
	return &task.Task{
		Name: name, Plan: mkPlan(p, specs...),
		Period: period, Deadline: deadline, Offset: offset, Priority: prio,
	}
}

func jobDoneAt(t *testing.T, r *Result, taskName string, job int) sim.Time {
	t.Helper()
	for _, e := range r.Trace.Events {
		if e.Kind == trace.JobDone && e.Task == taskName && e.Job == job {
			return e.At
		}
	}
	t.Fatalf("no JobDone for %s#%d", taskName, job)
	return 0
}

func TestSerialSingleTaskExactTiming(t *testing.T) {
	p := testPlat()
	tk := mkTask(p, "a", sim.Second, sim.Second, 0, 0,
		segSpec{900, 1000}, segSpec{900, 1000})
	s := task.NewSet(tk)
	r, err := Run(s, p, core.SerialSegFP(), 10*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	// Serial: (900+1000)+(900+1000) = 3800.
	if got := jobDoneAt(t, r, "a", 0); got != 3800 {
		t.Fatalf("serial completion at %v, want 3800", got)
	}
	if r.Metrics.PerTask["a"].MaxResponse != 3800 {
		t.Fatalf("max response %v", r.Metrics.PerTask["a"].MaxResponse)
	}
}

func TestRTMDMSingleTaskPipelinesLoads(t *testing.T) {
	p := testPlat()
	tk := mkTask(p, "a", sim.Second, sim.Second, 0, 0,
		segSpec{900, 1000}, segSpec{900, 1000})
	s := task.NewSet(tk)
	r, err := Run(s, p, core.RTMDM(), 10*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	// Pipeline depth 2: load1 0-900, comp1 900-1900 ∥ load2 900-1800,
	// comp2 1900-2900.
	if got := jobDoneAt(t, r, "a", 0); got != 2900 {
		t.Fatalf("pipelined completion at %v, want 2900", got)
	}
	// Must equal the task's analytical pipelined WCET.
	if got, want := r.Metrics.PerTask["a"].MaxResponse, tk.PipelineWCET(2); got != want {
		t.Fatalf("response %v != PipelineWCET %v", got, want)
	}
}

func TestSegmentBoundaryPreemption(t *testing.T) {
	p := testPlat()
	low := mkTask(p, "low", sim.Second, sim.Second, 0, 1,
		segSpec{900, 2000}, segSpec{900, 2000})
	high := mkTask(p, "high", sim.Second, sim.Second, 1500, 0,
		segSpec{400, 1000})
	s := task.NewSet(low, high)
	r, err := Run(s, p, core.RTMDM(), 20*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	// low: load1 0-900, comp1 900-2900; prefetch load2 900-1800.
	// high released 1500: DMA free at 1800 → load 1800-2200.
	// CPU frees at 2900 (non-preemptive segment) → high comp 2900-3900.
	// low comp2 3900-5900.
	if got := jobDoneAt(t, r, "high", 0); got != 3900 {
		t.Fatalf("high done at %v, want 3900", got)
	}
	if got := jobDoneAt(t, r, "low", 0); got != 5900 {
		t.Fatalf("low done at %v, want 5900", got)
	}
	// High's blocking was bounded by one segment of low (2000 ns), far
	// below low's whole job.
	if resp := r.Metrics.PerTask["high"].MaxResponse; resp != 2400 {
		t.Fatalf("high response %v, want 2400", resp)
	}
}

func TestJobLevelNonPreemptionBlocksWholeJob(t *testing.T) {
	p := testPlat()
	low := mkTask(p, "low", sim.Second, sim.Second, 0, 1,
		segSpec{900, 2000}, segSpec{900, 2000})
	high := mkTask(p, "high", sim.Second, sim.Second, 1500, 0,
		segSpec{400, 1000})
	s := task.NewSet(low, high)
	r, err := Run(s, p, core.SerialNPFP(), 20*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	// Serial NP low job: 900+2000+900+2000 = 5800 (loads serialize).
	if got := jobDoneAt(t, r, "low", 0); got != 5800 {
		t.Fatalf("low done at %v, want 5800", got)
	}
	// high waits for the whole low job: load 5800-6200, comp 6200-7200.
	if got := jobDoneAt(t, r, "high", 0); got != 7200 {
		t.Fatalf("high done at %v, want 7200", got)
	}
}

func TestEDFOrdersByAbsoluteDeadline(t *testing.T) {
	p := testPlat()
	// a has the better static priority but the later deadline.
	a := mkTask(p, "a", sim.Second, sim.Second, 0, 0, segSpec{100, 1000})
	b := mkTask(p, "b", 500*sim.Millisecond, 5*sim.Microsecond, 0, 1, segSpec{100, 1000})
	s := task.NewSet(a, b)

	r, err := Run(s, p, core.RTMDMEDF(), 10*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if jobDoneAt(t, r, "b", 0) > jobDoneAt(t, r, "a", 0) {
		t.Fatal("EDF did not favor the earlier deadline")
	}

	r, err = Run(s, p, core.RTMDM(), 10*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if jobDoneAt(t, r, "a", 0) > jobDoneAt(t, r, "b", 0) {
		t.Fatal("FP did not favor the higher static priority")
	}
}

func TestOverloadRecordsMisses(t *testing.T) {
	p := testPlat()
	// WCET 2000+900=2900 per job but deadline 2000.
	tk := mkTask(p, "a", 3*sim.Microsecond, 2*sim.Microsecond, 0, 0,
		segSpec{900, 2000})
	s := task.NewSet(tk)
	r, err := Run(s, p, core.SerialSegFP(), 30*sim.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Metrics.AnyMiss() {
		t.Fatal("overloaded task missed no deadlines")
	}
	if r.Metrics.PerTask["a"].MissRatio() == 0 {
		t.Fatal("zero miss ratio under overload")
	}
}

func TestBacklogExecutesJobsInOrder(t *testing.T) {
	p := testPlat()
	// Period 2 µs, WCET ≈ 2.9 µs: a backlog builds; jobs must still
	// complete in release order (checked by invariants) and all complete
	// eventually counts stay consistent.
	tk := mkTask(p, "a", 2*sim.Microsecond, 2*sim.Microsecond, 0, 0,
		segSpec{900, 2000})
	s := task.NewSet(tk)
	r, err := Run(s, p, core.RTMDM(), 40*sim.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	tm := r.Metrics.PerTask["a"]
	if tm.Released < 10 {
		t.Fatalf("released %d", tm.Released)
	}
	if tm.Completed == 0 {
		t.Fatal("no jobs completed under backlog")
	}
	// Completions in the trace must be ordered by job index.
	last := -1
	for _, e := range r.Trace.Events {
		if e.Kind == trace.JobDone {
			if e.Job != last+1 {
				t.Fatalf("job %d done after %d", e.Job, last)
			}
			last = e.Job
		}
	}
}

func TestZeroByteSegmentsStageInstantly(t *testing.T) {
	p := testPlat()
	tk := mkTask(p, "a", sim.Second, sim.Second, 0, 0,
		segSpec{0, 500}, segSpec{900, 1000}, segSpec{0, 250})
	s := task.NewSet(tk)
	r, err := Run(s, p, core.RTMDM(), 10*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	// seg0 stages free at t0, computes 0-500; seg1 load 0-900 (parallel),
	// comp 900-1900; seg2 free, comp 1900-2150.
	if got := jobDoneAt(t, r, "a", 0); got != 2150 {
		t.Fatalf("done at %v, want 2150", got)
	}
}

func TestSRAMStarvationDegradesGracefully(t *testing.T) {
	p := testPlat()
	p.WeightBufBytes = 500 // smaller than the 900-byte segment
	tk := mkTask(p, "a", 10*sim.Microsecond, 10*sim.Microsecond, 0, 0,
		segSpec{900, 1000})
	s := task.NewSet(tk)
	r, err := Run(s, p, core.RTMDM(), 50*sim.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	tm := r.Metrics.PerTask["a"]
	if tm.Completed != 0 {
		t.Fatal("job completed despite unfittable segment")
	}
	if tm.Misses == 0 {
		t.Fatal("starved task recorded no misses")
	}
}

func TestDMAPriorityVsFIFOArbitration(t *testing.T) {
	p := testPlat()
	// Three tasks race for the DMA at t=0. Under priority arbitration the
	// highest-priority job loads first; under FIFO the earliest release
	// (tie → name) wins. All release at 0, so FIFO tie-break is by name:
	// "a" first even though it has the lowest priority.
	a := mkTask(p, "a", sim.Second, sim.Second, 0, 2, segSpec{1000, 100})
	b := mkTask(p, "b", sim.Second, sim.Second, 0, 1, segSpec{1000, 100})
	c := mkTask(p, "c", sim.Second, sim.Second, 0, 0, segSpec{1000, 100})
	s := task.NewSet(a, b, c)

	firstLoad := func(pol core.Policy) string {
		r, err := Run(s, p, pol, 10*sim.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range r.Trace.Events {
			if e.Kind == trace.LoadStart && e.Bytes > 0 {
				return e.Task
			}
		}
		return ""
	}
	if got := firstLoad(core.RTMDM()); got != "c" {
		t.Fatalf("priority arbitration loaded %q first, want c", got)
	}
	if got := firstLoad(core.RTMDMFIFODMA()); got != "a" {
		t.Fatalf("FIFO arbitration loaded %q first, want a", got)
	}
}

func TestDepthLimitsPrefetchDistance(t *testing.T) {
	p := testPlat()
	// Loads are instant relative to computes; with depth 4 the DMA may
	// run up to 4 segments ahead, with depth 2 only 2.
	specs := []segSpec{{100, 10000}, {100, 10000}, {100, 10000}, {100, 10000}, {100, 10000}}
	tk := mkTask(p, "a", sim.Second, sim.Second, 0, 0, specs...)
	s := task.NewSet(tk)

	maxAhead := func(pol core.Policy) int {
		r, err := Run(s, p, pol, 10*sim.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		loads, comps := 0, 0
		ahead := 0
		for _, e := range r.Trace.Events {
			switch e.Kind {
			case trace.LoadEnd:
				loads++
			case trace.ComputeEnd:
				comps++
			}
			if d := loads - comps; d > ahead {
				ahead = d
			}
		}
		return ahead
	}
	if got := maxAhead(core.RTMDM()); got != 2 {
		t.Fatalf("depth-2 max prefetch distance = %d", got)
	}
	if got := maxAhead(core.RTMDMDepth(4)); got != 4 {
		t.Fatalf("depth-4 max prefetch distance = %d", got)
	}
}

func TestUtilizationAccounting(t *testing.T) {
	p := testPlat()
	tk := mkTask(p, "a", 10*sim.Microsecond, 10*sim.Microsecond, 0, 0,
		segSpec{900, 1000})
	s := task.NewSet(tk)
	r, err := Run(s, p, core.RTMDM(), 100*sim.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	// 10 jobs × 1000 ns compute = 10000 ns over 100000 ns = 0.1.
	if got := r.CPUUtilization(); got < 0.09 || got > 0.11 {
		t.Fatalf("CPU utilization %v, want ≈ 0.1", got)
	}
	if got := r.DMAUtilization(); got < 0.08 || got > 0.10 {
		t.Fatalf("DMA utilization %v, want ≈ 0.09", got)
	}
	if r.SRAMPeak != 900 {
		t.Fatalf("SRAM peak %d, want 900", r.SRAMPeak)
	}
}

func TestBusContentionStretchesExecution(t *testing.T) {
	p := testPlat()
	p.Bus = cost.Contention{CPUNum: 1, CPUDen: 2, DMANum: 1, DMADen: 2}
	tk := mkTask(p, "a", sim.Second, sim.Second, 0, 0,
		segSpec{1000, 1000}, segSpec{1000, 1000})
	s := task.NewSet(tk)
	r, err := Run(s, p, core.RTMDM(), 10*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	noC, err := Run(s, testPlat(), core.RTMDM(), 10*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if jobDoneAt(t, r, "a", 0) <= jobDoneAt(t, noC, "a", 0) {
		t.Fatal("bus contention did not stretch the pipelined job")
	}
}

func TestRunInputValidation(t *testing.T) {
	p := testPlat()
	tk := mkTask(p, "a", sim.Second, sim.Second, 0, 0, segSpec{100, 100})
	s := task.NewSet(tk)
	if _, err := Run(s, p, core.RTMDM(), 0); err == nil {
		t.Fatal("zero horizon accepted")
	}
	if _, err := Run(task.NewSet(), p, core.RTMDM(), sim.Second); err == nil {
		t.Fatal("empty set accepted")
	}
	bad := core.RTMDM()
	bad.Depth = 0
	if _, err := Run(s, p, bad, sim.Second); err == nil {
		t.Fatal("invalid policy accepted")
	}
}

func TestSwitchCostChargedOnJobChange(t *testing.T) {
	p := testPlat()
	p.CPU.SwitchNs = 100
	// Two single-segment tasks released together; the second compute pays
	// a switch, and so does the first (cold start).
	a := mkTask(p, "a", sim.Second, sim.Second, 0, 0, segSpec{100, 1000})
	b := mkTask(p, "b", sim.Second, sim.Second, 0, 1, segSpec{100, 1000})
	s := task.NewSet(a, b)
	r, err := Run(s, p, core.RTMDM(), 10*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	// a: load 0-100, compute 100-1200 (1000 + 100 switch).
	if got := jobDoneAt(t, r, "a", 0); got != 1200 {
		t.Fatalf("a done at %v, want 1200", got)
	}
	// b: load 100-200 (prefetched), compute 1200-2300 (switch again).
	if got := jobDoneAt(t, r, "b", 0); got != 2300 {
		t.Fatalf("b done at %v, want 2300", got)
	}
}

func TestNoSwitchCostWithinOneJob(t *testing.T) {
	p := testPlat()
	p.CPU.SwitchNs = 100
	// Back-to-back segments of the same job pay the switch only once.
	a := mkTask(p, "a", sim.Second, sim.Second, 0, 0,
		segSpec{100, 1000}, segSpec{100, 1000})
	s := task.NewSet(a)
	r, err := Run(s, p, core.RTMDM(), 10*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	// load1 0-100, comp1 100-1200 (switch), comp2 1200-2200 (no switch;
	// load2 prefetched during comp1).
	if got := jobDoneAt(t, r, "a", 0); got != 2200 {
		t.Fatalf("done at %v, want 2200", got)
	}
}

// Integration: the model zoo under every policy, with invariants (checked
// inside Run) and cross-policy sanity.
func TestZooIntegrationAllPolicies(t *testing.T) {
	plat := cost.STM32H743
	mk := func(pol core.Policy) *task.Set {
		budget := core.SegmentBudget(plat, 3, pol)
		names := []string{"ds-cnn", "lenet5", "autoencoder"}
		periods := []sim.Duration{100 * sim.Millisecond, 150 * sim.Millisecond, 200 * sim.Millisecond}
		var ts []*task.Task
		for i, n := range names {
			m, err := models.Build(n, 7)
			if err != nil {
				t.Fatal(err)
			}
			pl, err := segment.Build(m, plat, budget, segment.Greedy)
			if err != nil {
				t.Fatal(err)
			}
			ts = append(ts, &task.Task{Name: n, Plan: pl, Period: periods[i],
				Deadline: periods[i], Priority: i})
		}
		return task.NewSet(ts...)
	}

	results := map[string]*Result{}
	pols := append(core.ComparisonSet(), core.RTMDMEDF(), core.RTMDMFIFODMA())
	for _, pol := range pols {
		s := mk(pol)
		if err := core.Provision(s, plat, pol); err != nil {
			t.Fatalf("%s: %v", pol.Name, err)
		}
		r, err := Run(s, plat, pol, 600*sim.Millisecond)
		if err != nil {
			t.Fatalf("%s: %v", pol.Name, err)
		}
		results[pol.Name] = r
		for name, tm := range r.Metrics.PerTask {
			if tm.Released == 0 {
				t.Fatalf("%s: task %s never released", pol.Name, name)
			}
		}
		if r.Metrics.AnyMiss() {
			t.Fatalf("%s: unexpected miss at low utilization", pol.Name)
		}
	}
	// Structural difference: RT-MDM overlaps loads with computes; the
	// serial baselines never start a transfer while the CPU is computing.
	overlaps := func(r *Result) bool {
		computing := false
		for _, e := range r.Trace.Events {
			switch e.Kind {
			case trace.ComputeStart:
				computing = true
			case trace.ComputeEnd:
				computing = false
			case trace.LoadStart:
				if computing && e.Bytes > 0 {
					return true
				}
			}
		}
		return false
	}
	if !overlaps(results["rt-mdm"]) {
		t.Fatal("RT-MDM never overlapped a load with a compute")
	}
	if overlaps(results["serial-npfp"]) || overlaps(results["serial-segfp"]) {
		t.Fatal("a serial baseline overlapped load with compute")
	}
	// The load-bound autoencoder completes its (synchronously-released,
	// lowest-priority) first job no later under RT-MDM than under the
	// fully serial NP baseline: overlap shortens the busy period.
	ae := "autoencoder"
	if results["rt-mdm"].Metrics.PerTask[ae].MaxResponse >
		results["serial-npfp"].Metrics.PerTask[ae].MaxResponse {
		t.Fatal("RT-MDM did not help the load-bound lowest-priority task")
	}
}

// Property: randomized synthetic task sets run clean (invariants hold, no
// internal errors) under every policy.
func TestPropertyRandomTaskSetsRunClean(t *testing.T) {
	p := testPlat()
	pols := []core.Policy{
		core.RTMDM(), core.RTMDMEDF(), core.RTMDMDepth(3),
		core.SerialNPFP(), core.SerialSegFP(), core.RTMDMFIFODMA(),
	}
	for trial := 0; trial < 30; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		n := rng.Intn(3) + 2
		var ts []*task.Task
		for i := 0; i < n; i++ {
			nseg := rng.Intn(5) + 1
			var specs []segSpec
			for k := 0; k < nseg; k++ {
				specs = append(specs, segSpec{
					bytes:   int64(rng.Intn(2000)), // may be 0
					compute: int64(rng.Intn(3000) + 100),
				})
			}
			period := sim.Duration(rng.Intn(20000) + 5000)
			ts = append(ts, mkTask(p, string(rune('a'+i)), period, period,
				sim.Duration(rng.Intn(3000)), i, specs...))
		}
		s := task.NewSet(ts...)
		for _, pol := range pols {
			if _, err := Run(s, p, pol, 200*sim.Microsecond); err != nil {
				t.Fatalf("trial %d policy %s: %v", trial, pol.Name, err)
			}
		}
	}
}

// Determinism: identical inputs produce bit-identical traces, regardless of
// Go runtime scheduling — the property that makes a GC'd language viable
// for real-time reproduction.
func TestRunIsDeterministic(t *testing.T) {
	plat := cost.STM32H743
	mk := func() *task.Set {
		m1, _ := models.Build("ds-cnn", 3)
		m2, _ := models.Build("autoencoder", 3)
		lim := core.RTMDM().Limits(plat, 2)
		p1, err := segment.BuildLimits(m1, plat, lim, segment.Greedy)
		if err != nil {
			t.Fatal(err)
		}
		p2, err := segment.BuildLimits(m2, plat, lim, segment.Greedy)
		if err != nil {
			t.Fatal(err)
		}
		return task.NewSet(
			&task.Task{Name: "a", Plan: p1, Period: 40 * sim.Millisecond, Deadline: 40 * sim.Millisecond, Priority: 0},
			&task.Task{Name: "b", Plan: p2, Period: 70 * sim.Millisecond, Deadline: 70 * sim.Millisecond, Priority: 1},
		)
	}
	r1, err := Run(mk(), plat, core.RTMDM(), 300*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(mk(), plat, core.RTMDM(), 300*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Trace.Events) != len(r2.Trace.Events) {
		t.Fatalf("trace lengths differ: %d vs %d", len(r1.Trace.Events), len(r2.Trace.Events))
	}
	for i := range r1.Trace.Events {
		if r1.Trace.Events[i] != r2.Trace.Events[i] {
			t.Fatalf("traces diverge at event %d: %v vs %v",
				i, r1.Trace.Events[i], r2.Trace.Events[i])
		}
	}
	if r1.CPUBusyNs != r2.CPUBusyNs || r1.SRAMPeak != r2.SRAMPeak {
		t.Fatal("aggregate metrics diverge")
	}
}

func TestChunkedTransfersExactTiming(t *testing.T) {
	p := testPlat() // 1 B/ns, zero setup → chunking splits cleanly
	p.Mem.SetupNs = 50
	tk := mkTask(p, "a", sim.Second, sim.Second, 0, 0, segSpec{2500, 1000})
	s := task.NewSet(tk)
	pol := core.RTMDMChunked(1000)
	r, err := Run(s, p, pol, 10*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	// 3 chunks: (50+1000)+(50+1000)+(50+500) = 2650, then compute 1000.
	if got := jobDoneAt(t, r, "a", 0); got != 3650 {
		t.Fatalf("chunked job done at %v, want 3650", got)
	}
	// The trace must show three load start/end pairs for segment 0.
	starts := 0
	for _, e := range r.Trace.Events {
		if e.Kind == trace.LoadStart && e.Bytes > 0 {
			starts++
		}
	}
	if starts != 3 {
		t.Fatalf("chunked loads = %d, want 3", starts)
	}
}

func TestChunkingBoundsUrgentWait(t *testing.T) {
	p := testPlat()
	// A huge lower-priority transfer is in flight when the urgent job
	// releases. Whole-segment: the urgent load waits for all 10000 ns;
	// 1000-byte chunks: it waits at most one chunk.
	low := mkTask(p, "low", sim.Second, sim.Second, 0, 1, segSpec{10000, 500})
	high := mkTask(p, "high", sim.Second, sim.Second, 500, 0, segSpec{400, 300})
	s := task.NewSet(low, high)

	whole, err := Run(s, p, core.RTMDM(), 50*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	chunked, err := Run(s, p, core.RTMDMChunked(1000), 50*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	w := whole.Metrics.PerTask["high"].MaxResponse
	c := chunked.Metrics.PerTask["high"].MaxResponse
	// Whole: low's transfer runs 0-10000 np; high loads 10000-10400 while
	// low's (staged) np compute takes the CPU 10000-10500; high computes
	// 10500-10800 → response 10300. Chunked: the in-flight chunk ends at
	// 1000; high loads 1000-1400 and computes immediately → 1200.
	if w != 10300 {
		t.Fatalf("whole-segment response %v, want 10300", w)
	}
	if c != 1200 {
		t.Fatalf("chunked response %v, want 1200", c)
	}
}

// PT-8: for an isolated task with no contention and no switch cost, the
// executor's first response equals the analytic pipeline makespan exactly,
// for any random segment chain and any depth.
func TestPropertyExecutorMatchesPipelineRecurrence(t *testing.T) {
	p := testPlat()
	for trial := 0; trial < 60; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) + 555))
		nseg := rng.Intn(7) + 1
		var specs []segSpec
		for k := 0; k < nseg; k++ {
			specs = append(specs, segSpec{
				bytes:   int64(rng.Intn(3000)),
				compute: int64(rng.Intn(3000) + 1),
			})
		}
		depth := rng.Intn(3) + 1
		tk := mkTask(p, "a", sim.Second, sim.Second, 0, 0, specs...)
		pol := core.RTMDMDepth(depth)
		pol.MaxSegNs = 0
		r, err := Run(task.NewSet(tk), p, pol, 50*sim.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		got := int64(r.Metrics.PerTask["a"].MaxResponse)
		want := tk.Plan.PipelineNs(depth)
		if got != want {
			t.Fatalf("trial %d depth %d: executor %d != recurrence %d (segments %v)",
				trial, depth, got, want, specs)
		}
	}
}

func TestEnergyAccounting(t *testing.T) {
	p := testPlat()
	p.Energy = cost.EnergyProfile{CPUActiveMw: 100, IdleMw: 10, DMAActiveMw: 20, FlashReadNjPerByte: 2}
	tk := mkTask(p, "a", 10*sim.Microsecond, 10*sim.Microsecond, 0, 0,
		segSpec{900, 1000})
	s := task.NewSet(tk)
	r, err := Run(s, p, core.RTMDM(), 100*sim.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	// 10 jobs × 900 B flash reads.
	if r.FlashBytes != 9000 {
		t.Fatalf("FlashBytes = %d, want 9000", r.FlashBytes)
	}
	want := p.Energy.EnergyMicroJ(int64(r.Horizon), r.CPUBusyNs, r.DMABusyNs, r.FlashBytes)
	if r.EnergyMicroJ != want {
		t.Fatalf("EnergyMicroJ = %v, want %v", r.EnergyMicroJ, want)
	}
	if r.AvgPowerMw <= 10 {
		t.Fatalf("AvgPowerMw = %v, want > idle floor", r.AvgPowerMw)
	}
	// Same workload with zero releases costs only the idle floor.
	empty := mkTask(p, "b", sim.Second, sim.Second, 90*sim.Microsecond, 0, segSpec{1, 1})
	r2, err := Run(task.NewSet(empty), p, core.RTMDM(), 50*sim.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if r2.FlashBytes != 0 {
		t.Fatal("unreleased task read flash")
	}
}

func TestEnergyComparableAcrossPolicies(t *testing.T) {
	// Same completed work → flash bytes identical across policies; energy
	// differs only via busy-time bookkeeping (identical here) — so RT-MDM
	// pays no energy premium for its overlap.
	plat := cost.STM32H743
	mk := func(pol core.Policy) *Result {
		m, _ := models.Build("autoencoder", 3)
		pl, err := segment.BuildLimits(m, plat, pol.Limits(plat, 1), segment.Greedy)
		if err != nil {
			t.Fatal(err)
		}
		tk := &task.Task{Name: "a", Plan: pl, Period: 50 * sim.Millisecond, Deadline: 50 * sim.Millisecond}
		r, err := Run(task.NewSet(tk), plat, pol, 200*sim.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	serial := mk(core.SerialNPFP())
	rtmdm := mk(core.RTMDM())
	if serial.FlashBytes != rtmdm.FlashBytes {
		t.Fatalf("flash bytes differ: %d vs %d", serial.FlashBytes, rtmdm.FlashBytes)
	}
	ratio := rtmdm.EnergyMicroJ / serial.EnergyMicroJ
	if ratio < 0.95 || ratio > 1.05 {
		t.Fatalf("energy ratio %v, want ≈ 1 (overlap is energy-neutral)", ratio)
	}
}

// For an isolated task, deeper prefetch buffers never slow completion.
func TestPropertySingleTaskDepthMonotone(t *testing.T) {
	p := testPlat()
	for trial := 0; trial < 40; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) + 777))
		nseg := rng.Intn(6) + 2
		var specs []segSpec
		for k := 0; k < nseg; k++ {
			specs = append(specs, segSpec{
				bytes:   int64(rng.Intn(3000) + 1),
				compute: int64(rng.Intn(3000) + 1),
			})
		}
		tk := mkTask(p, "a", sim.Second, sim.Second, 0, 0, specs...)
		prev := sim.Duration(1 << 62)
		for _, d := range []int{1, 2, 3, 4} {
			pol := core.RTMDMDepth(d)
			pol.MaxSegNs = 0
			r, err := Run(task.NewSet(tk), p, pol, 100*sim.Millisecond)
			if err != nil {
				t.Fatal(err)
			}
			resp := r.Metrics.PerTask["a"].MaxResponse
			if resp > prev {
				t.Fatalf("trial %d: depth %d slower (%v) than depth %d (%v)",
					trial, d, resp, d-1, prev)
			}
			prev = resp
		}
	}
}

func TestDeadlineMissEventsEmitted(t *testing.T) {
	p := testPlat()
	tk := mkTask(p, "a", 3*sim.Microsecond, 2*sim.Microsecond, 0, 0,
		segSpec{900, 2000})
	s := task.NewSet(tk)
	r, err := Run(s, p, core.SerialSegFP(), 30*sim.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	misses := 0
	for _, e := range r.Trace.Events {
		if e.Kind == trace.DeadlineMiss {
			misses++
			// The miss instant is exactly the job's absolute deadline.
			want := sim.Time(e.Job)*3000 + 2000
			if e.At != want {
				t.Fatalf("miss for job %d at %v, want %v", e.Job, e.At, want)
			}
		}
	}
	if misses == 0 {
		t.Fatal("overload produced no explicit miss events")
	}
	if misses != r.Metrics.PerTask["a"].Misses {
		t.Fatalf("explicit events %d != metric misses %d", misses, r.Metrics.PerTask["a"].Misses)
	}
}

func TestCompletionAtExactDeadlineIsNotAMiss(t *testing.T) {
	p := testPlat()
	// Job completes at exactly t = 1900 (900 load + 1000 compute);
	// deadline exactly 1900.
	tk := mkTask(p, "a", 10*sim.Microsecond, 1900, 0, 0, segSpec{900, 1000})
	s := task.NewSet(tk)
	r, err := Run(s, p, core.RTMDM(), 30*sim.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if got := jobDoneAt(t, r, "a", 0); got != 1900 {
		t.Fatalf("job done at %v, want exactly 1900", got)
	}
	for _, e := range r.Trace.Events {
		if e.Kind == trace.DeadlineMiss && e.Job == 0 {
			t.Fatal("completion at exactly the deadline counted as a miss")
		}
	}
	if r.Metrics.PerTask["a"].Misses != 0 {
		t.Fatal("metrics recorded a miss for an on-time job")
	}
}

func TestReleaseJitterWindowAndDeterminism(t *testing.T) {
	p := testPlat()
	tk := mkTask(p, "a", 10*sim.Microsecond, 9*sim.Microsecond, 0, 0, segSpec{100, 100})
	tk.Jitter = 3 * sim.Microsecond
	run := func() []sim.Time {
		r, err := Run(task.NewSet(tk), p, core.RTMDM(), 100*sim.Microsecond)
		if err != nil {
			t.Fatal(err)
		}
		var rel []sim.Time
		for _, e := range r.Trace.Events {
			if e.Kind == trace.Release {
				rel = append(rel, e.At)
			}
		}
		return rel
	}
	a := run()
	b := run()
	if len(a) < 8 {
		t.Fatalf("only %d releases", len(a))
	}
	jittered := false
	for k, at := range a {
		nominal := sim.Time(k) * 10000
		if at < nominal || at > nominal+3000 {
			t.Fatalf("release %d at %v outside [%v, %v]", k, at, nominal, nominal+3000)
		}
		if at != nominal {
			jittered = true
		}
		if b[k] != at {
			t.Fatal("jittered releases not deterministic")
		}
	}
	if !jittered {
		t.Fatal("no release was actually jittered")
	}
}

func TestResultUtilizationZeroHorizon(t *testing.T) {
	r := &Result{}
	if r.CPUUtilization() != 0 || r.DMAUtilization() != 0 {
		t.Fatal("zero-horizon utilizations not zero")
	}
}

// TestGateFreezesLowerLoadsWhileUrgentWindowFull pins the strict gate
// semantics the RTA's serial-demand argument depends on (docs/ANALYSIS.md
// §4): while a more urgent job still has DMA demand, a lower job cannot
// stage — even when the urgent job's prefetch window is full and the DMA
// idles, and even while the lower job itself computes. Granting the idle
// channel to the lower job here ("gap stealing") would let it rebuild
// staged inventory inside the urgent job's busy window and void the
// inventory-bounded CPU blocking term.
func TestGateFreezesLowerLoadsWhileUrgentWindowFull(t *testing.T) {
	p := testPlat()
	lo := mkTask(p, "lo", 50_000, 50_000, 0, 1,
		segSpec{1000, 3000}, segSpec{1000, 3000}, segSpec{1000, 3000})
	hi := mkTask(p, "hi", 50_000, 50_000, 500, 0,
		segSpec{500, 5000}, segSpec{500, 5000}, segSpec{500, 5000})
	s := task.NewSet(lo, hi)
	r, err := Run(s, p, core.RTMDM(), 50_000)
	if err != nil {
		t.Fatal(err)
	}
	// lo load1 0-1000, lo comp1 1000-4000. hi (released 500) takes the
	// gate at 1000: load1 1000-1500, load2 1500-2000 — window full (depth
	// 2, slots free at compute END), one load left, so the DMA must idle
	// over (2000, 9000) although lo's next segment is ready to stage. hi
	// comp1 (4000-9000) ending frees a slot: hi load3 9000-9500 exhausts
	// hi's demand, and only then may lo stage again: load2 9500-10500,
	// load3 10500-11500.
	var loLoadStarts []sim.Time
	for _, e := range r.Trace.Events {
		if e.Kind == trace.LoadStart && e.At > 2000 && e.At < 9000 {
			t.Fatalf("transfer started at %v inside the gated window (2000,9000): %v", e.At, e)
		}
		if e.Kind == trace.LoadStart && e.Task == "lo" && e.Job == 0 {
			loLoadStarts = append(loLoadStarts, e.At)
		}
	}
	want := []sim.Time{0, 9500, 10_500}
	if len(loLoadStarts) != len(want) {
		t.Fatalf("lo load starts %v, want %v", loLoadStarts, want)
	}
	for i := range want {
		if loLoadStarts[i] != want[i] {
			t.Fatalf("lo load starts %v, want %v", loLoadStarts, want)
		}
	}
	// The exposure is real: lo's own comp1 (1000-4000) hid none of its
	// remaining loads, so lo finishes at 25000 — its serial chain under
	// hi's interference — and the serial-based bound must cover it.
	if got := jobDoneAt(t, r, "lo", 0); got != 25_000 {
		t.Fatalf("lo done at %v, want 25000", got)
	}
	if got := jobDoneAt(t, r, "hi", 0); got != 19_000 {
		t.Fatalf("hi done at %v, want 19000", got)
	}
}

// TestPerTaskDepthWindows pins heterogeneous prefetch windows (extension
// T24): each task's DMA may run exactly its own depth ahead, so a
// deep-window task reaches its deeper pipelined makespan while a depth-1
// task in the same run serializes.
func TestPerTaskDepthWindows(t *testing.T) {
	p := testPlat()
	// Three equal segments: depth 1 → 5700, depth 2 → 4800, depth 3 → 4700.
	specs := []segSpec{{900, 1000}, {900, 1000}, {900, 1000}}
	mk := func(name string, prio int) *task.Task {
		return mkTask(p, name, 40_000, 40_000, 0, prio, specs...)
	}
	pol := core.RTMDMPerTaskDepth(map[string]int{"solo": 3})
	r, err := Run(task.NewSet(mk("solo", 0)), p, pol, 40_000)
	if err != nil {
		t.Fatal(err)
	}
	want := mk("solo", 0).PipelineWCET(3)
	if got := r.Metrics.PerTask["solo"].MaxResponse; got != want {
		t.Fatalf("depth-3 override: response %v, want PipelineWCET(3) %v", got, want)
	}

	pol = core.RTMDMPerTaskDepth(map[string]int{"solo": 1})
	r, err = Run(task.NewSet(mk("solo", 0)), p, pol, 40_000)
	if err != nil {
		t.Fatal(err)
	}
	want = mk("solo", 0).PipelineWCET(1)
	if got := r.Metrics.PerTask["solo"].MaxResponse; got != want {
		t.Fatalf("depth-1 override: response %v, want serial %v", got, want)
	}

	// Unnamed tasks fall back to the base depth 2.
	pol = core.RTMDMPerTaskDepth(map[string]int{"other": 4})
	r, err = Run(task.NewSet(mk("solo", 0)), p, pol, 40_000)
	if err != nil {
		t.Fatal(err)
	}
	want = mk("solo", 0).PipelineWCET(2)
	if got := r.Metrics.PerTask["solo"].MaxResponse; got != want {
		t.Fatalf("fallback depth: response %v, want PipelineWCET(2) %v", got, want)
	}
}
