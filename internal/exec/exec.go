// Package exec runs a multi-DNN task set on the simulated MCU platform
// under a core.Policy, in virtual time. It is the runtime half of the
// RT-MDM framework: releases periodic jobs, stages segment parameters
// through the DMA engine, dispatches segment computes on the CPU, and
// records everything in a trace for metrics and invariant checking.
package exec

import (
	"context"
	"fmt"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"

	"rtmdm/internal/core"
	"rtmdm/internal/cost"
	"rtmdm/internal/fault"
	"rtmdm/internal/metrics"
	"rtmdm/internal/platform"
	"rtmdm/internal/segment"
	"rtmdm/internal/sim"
	"rtmdm/internal/task"
	"rtmdm/internal/trace"
)

// instruments is the package's metrics sink. All fields are nil when
// instrumentation is disabled (the default); metric methods are nil-safe,
// so every update below costs one branch and zero allocation when off.
type instruments struct {
	runs           *metrics.Counter
	jobsReleased   *metrics.Counter
	jobsCompleted  *metrics.Counter
	deadlineMisses *metrics.Counter
	ctxSwitches    *metrics.Counter
	cpuBusyNs      *metrics.Counter
	dmaBusyNs      *metrics.Counter
	flashBytes     *metrics.Counter
	sramPeak       *metrics.Gauge
	jobResponse    *metrics.Histogram
	faultsInjected *metrics.Counter
	jobsAborted    *metrics.Counter
	dmaRetries     *metrics.Counter
	releasesSupp   *metrics.Counter
	sim            *sim.Instruments
}

// instr is swapped atomically so Instrument may race with concurrent Runs
// (the parallel experiment sweeps) without a lock on the hot path. It always
// holds a non-nil struct; the zero struct means "disabled".
var instr atomic.Pointer[instruments]

func init() { instr.Store(&instruments{}) }

// Instrument wires the executor (and the sim engines it pools) to the
// registry; Instrument(nil) disables instrumentation again. Counts
// aggregate across every Run in the process, including concurrent ones.
// See docs/OBSERVABILITY.md for the metric catalogue.
func Instrument(r *metrics.Registry) {
	if r == nil {
		instr.Store(&instruments{})
		return
	}
	instr.Store(&instruments{
		runs:           r.Counter("exec.runs", "runs", "completed executor simulations"),
		jobsReleased:   r.Counter("exec.jobs_released", "jobs", "periodic job arrivals"),
		jobsCompleted:  r.Counter("exec.jobs_completed", "jobs", "jobs that finished their last segment"),
		deadlineMisses: r.Counter("exec.deadline_misses", "jobs", "jobs whose absolute deadline passed unfinished"),
		ctxSwitches:    r.Counter("exec.context_switches", "switches", "CPU dispatches that changed the running job"),
		cpuBusyNs:      r.Counter("exec.cpu_busy_ns", "ns", "pure CPU work simulated (unit rate)"),
		dmaBusyNs:      r.Counter("exec.dma_busy_ns", "ns", "pure DMA transfer work simulated (unit rate)"),
		flashBytes:     r.Counter("exec.flash_bytes", "bytes", "parameter bytes read from external memory"),
		sramPeak:       r.Gauge("exec.sram_peak_bytes", "bytes", "high-water mark of staged parameter bytes across runs"),
		jobResponse: r.Histogram("exec.job_response_ns", "ns",
			"response times of completed jobs",
			[]int64{1e5, 1e6, 5e6, 1e7, 5e7, 1e8, 5e8}),
		faultsInjected: r.Counter("exec.faults_injected", "faults", "injected fault events (overruns, release delays, DMA slowdown hits, transfer faults)"),
		jobsAborted:    r.Counter("exec.jobs_aborted", "jobs", "jobs killed at their deadline under the abort overrun policy"),
		dmaRetries:     r.Counter("exec.dma_retries", "transfers", "chunk transfers re-issued after an injected transient fault"),
		releasesSupp:   r.Counter("exec.releases_suppressed", "jobs", "job releases shed by the skip-next overrun policy"),
		sim: &sim.Instruments{
			Scheduled:     r.Counter("sim.events_scheduled", "events", "events entering the kernel queue"),
			Fired:         r.Counter("sim.events_fired", "events", "events whose callback executed"),
			Cancelled:     r.Counter("sim.events_cancelled", "events", "events removed before firing"),
			SlabHighWater: r.Gauge("sim.slab_high_water", "slots", "peak simultaneously pending events in any engine"),
		},
	})
}

// Result is everything one simulation run produces.
type Result struct {
	Trace   *trace.Trace
	Metrics *trace.Metrics
	Infos   []trace.TaskInfo
	Horizon sim.Time
	// CPUBusyNs and DMABusyNs are pure work nanoseconds (at unit rate).
	CPUBusyNs int64
	DMABusyNs int64
	// SRAMPeak is the high-water mark of staged parameter bytes.
	SRAMPeak int64
	// ActivationPeak is the high-water mark of activation bytes resident
	// at any instant: the running job's in-segment working set plus every
	// preempted job's parked boundary state.
	ActivationPeak int64
	// FlashBytes is the total parameter volume read from external memory.
	FlashBytes int64
	// EnergyMicroJ is the window's energy estimate from the platform's
	// energy profile (idle floor + CPU/DMA activity + flash reads).
	EnergyMicroJ float64
	// AvgPowerMw is EnergyMicroJ over the horizon.
	AvgPowerMw float64
	// FaultsInjected counts fault events the run's fault plan injected
	// (compute overruns, release delays, DMA slowdown hits, transfer
	// faults). Zero without a plan.
	FaultsInjected int64
	// JobsAborted counts jobs killed at their deadline (OverrunAbort).
	JobsAborted int64
	// DMARetries counts chunk transfers re-issued after an injected
	// transient transfer fault.
	DMARetries int64
	// ReleasesSuppressed counts job releases shed by OverrunSkipNext.
	ReleasesSuppressed int64
	// SRAMResidual is the staged parameter bytes still held at the horizon
	// (in-flight jobs only; aborted jobs must have released everything).
	SRAMResidual int64
}

// CPUUtilization is the fraction of the horizon the CPU computed.
func (r *Result) CPUUtilization() float64 {
	if r.Horizon == 0 {
		return 0
	}
	return float64(r.CPUBusyNs) / float64(r.Horizon) //lint:allow millitime -- utilization ratio at the result boundary
}

// DMAUtilization is the fraction of the horizon the DMA transferred.
func (r *Result) DMAUtilization() float64 {
	if r.Horizon == 0 {
		return 0
	}
	return float64(r.DMABusyNs) / float64(r.Horizon) //lint:allow millitime -- utilization ratio at the result boundary
}

// enginePool recycles simulation engines across runs: sweep-scale callers
// (F5/F19/F20/T21 run thousands of task sets) reuse each engine's event slab
// and queue capacity instead of re-growing them per simulated set. Nothing in
// a Result retains the engine, so pooling is invisible to callers.
var enginePool = sync.Pool{New: func() any { return sim.NewEngine() }}

// job is one released inference instance.
type job struct {
	rt          *rtask
	idx         int
	release     sim.Time
	absDeadline sim.Time
	// nextLoad is the first segment not yet fully staged; a transfer for
	// it may be in flight (loading). nextCompute is the first segment not
	// yet executed. Staged-and-unconsumed count = nextLoad - nextCompute.
	nextLoad    int
	nextCompute int
	loading     bool
	// segLoaded counts the bytes of segment nextLoad already staged when
	// transfers are chunked.
	segLoaded int64
	heldBytes int64
	done      bool
	aborted   bool
	// attempt counts transfer-fault retries of the current chunk; xfer and
	// retryEv track the in-flight (or queued) transfer and the armed backoff
	// so an abort can revoke them.
	attempt int
	xfer    *platform.Transfer
	retryEv sim.Event
}

func (j *job) name() string    { return j.rt.t.Name }
func (j *job) segments() int   { return j.rt.t.NumSegments() }
func (j *job) priority() int   { return j.rt.t.Priority }
func (j *job) staged() bool    { return j.nextCompute < j.nextLoad }
func (j *job) allLoaded() bool { return j.nextLoad >= j.segments() }

// rtask is the runtime state of one task.
type rtask struct {
	t *task.Task
	// pending holds released, unfinished jobs in release order; only the
	// head executes (jobs of one task are processed FIFO).
	pending []*job
	nextIdx int
	// suppress counts future releases to shed (OverrunSkipNext): each
	// deadline miss of this task suppresses one upcoming release.
	suppress int
}

//rtmdm:hotpath
func (rt *rtask) head() *job {
	if len(rt.pending) == 0 {
		return nil
	}
	return rt.pending[0]
}

type runner struct {
	eng  *sim.Engine
	cpu  *platform.CPU
	dma  *platform.DMA
	sram *platform.SRAM
	set  *task.Set
	plat cost.Platform
	pol  core.Policy
	tr   *trace.Trace
	rts  []*rtask
	// locked is the in-progress job under job-level non-preemption.
	locked *job
	// running is the job currently occupying the CPU (nil when idle).
	running *job
	// lastRan is the job that most recently held the CPU; dispatching a
	// different job costs plat.CPU.SwitchNs of extra compute.
	lastRan *job
	// actPeak tracks the activation-residency high-water mark.
	actPeak int64
	// flashBytes tallies parameter bytes read from external memory.
	flashBytes int64
	// kickPending coalesces same-instant scheduling decisions: all events
	// at one virtual instant (releases, completions) are processed before
	// the dispatcher picks work, so simultaneous releases are ordered by
	// urgency rather than by event-queue arrival.
	kickPending bool
	horizon     sim.Time
	err         error
	// ins is the process-wide metrics sink, loaded once per run (never
	// nil; the zero struct's nil metrics discard updates).
	ins *instruments
	// plan is the run's fault-injection schedule (nil = nominal run; every
	// plan method is nil-safe and injects nothing).
	plan *fault.Plan
	// Per-run fault accounting, surfaced on the Result.
	faultsInjected     int64
	jobsAborted        int64
	dmaRetries         int64
	releasesSuppressed int64
}

// noteFault records one injected fault event.
//
//rtmdm:hotpath
func (r *runner) noteFault() {
	r.faultsInjected++
	r.ins.faultsInjected.Add(1)
}

// InternalError wraps a panic recovered at the executor's public boundary:
// a malformed input (e.g. a hand-built plan with negative costs) drove the
// platform layer into an invariant panic. Callers get a structured error
// instead of a crash; the stack pinpoints the violated invariant.
type InternalError struct {
	Panic any
	Stack string
}

func (e *InternalError) Error() string {
	return fmt.Sprintf("exec: internal error: %v", e.Panic)
}

// Run simulates the task set on the platform under the policy until the
// horizon. The returned result carries the full trace; Run also verifies
// the trace invariants before returning.
func Run(set *task.Set, plat cost.Platform, pol core.Policy, horizon sim.Duration) (*Result, error) {
	return RunWithFaults(set, plat, pol, horizon, nil)
}

// RunContext is Run with a cancellation context: the event loop polls
// ctx every few hundred events (via the kernel's stop hook, so the poll
// is allocation-free and cannot perturb event order) and aborts the run
// with ctx.Err() once the context is done. A run that completes before
// cancellation is byte-identical to Run — the server's request deadlines
// ride on this without costing nominal runs anything.
func RunContext(ctx context.Context, set *task.Set, plat cost.Platform, pol core.Policy, horizon sim.Duration) (*Result, error) {
	return RunWithFaultsContext(ctx, set, plat, pol, horizon, nil)
}

// RunWithFaults is Run under a fault-injection plan (nil = nominal: the
// run is byte-identical to Run). The plan perturbs timing — compute
// overruns, release delays, DMA slowdowns, transfer retries — while
// pol.Overrun selects what happens to jobs that consequently miss their
// deadlines. Platform-layer invariant panics are converted to an
// *InternalError rather than crashing the caller.
func RunWithFaults(set *task.Set, plat cost.Platform, pol core.Policy, horizon sim.Duration, plan *fault.Plan) (res *Result, err error) {
	return RunWithFaultsContext(context.Background(), set, plat, pol, horizon, plan)
}

// RunWithFaultsContext is RunWithFaults with a cancellation context; see
// RunContext for the abort semantics.
func RunWithFaultsContext(ctx context.Context, set *task.Set, plat cost.Platform, pol core.Policy, horizon sim.Duration, plan *fault.Plan) (res *Result, err error) {
	if err := set.Validate(); err != nil {
		return nil, err
	}
	if err := pol.Validate(); err != nil {
		return nil, err
	}
	if err := plat.Validate(); err != nil {
		return nil, err
	}
	if horizon <= 0 {
		return nil, fmt.Errorf("exec: non-positive horizon %v", horizon)
	}
	defer func() {
		if rec := recover(); rec != nil {
			res, err = nil, &InternalError{Panic: rec, Stack: string(debug.Stack())}
		}
	}()
	eng := enginePool.Get().(*sim.Engine)
	eng.Reset()
	defer enginePool.Put(eng)
	ins := instr.Load()
	eng.SetInstruments(ins.sim)
	_, cpu, dma := platform.NewBus(eng, plat)
	r := &runner{
		eng: eng, cpu: cpu, dma: dma,
		sram: platform.NewSRAM(plat.WeightBufBytes),
		set:  set, plat: plat, pol: pol,
		tr:      &trace.Trace{},
		horizon: horizon,
		ins:     ins,
		plan:    plan,
	}
	if plan != nil {
		dma.SetDerate(func(at sim.Time, workNs int64) int64 {
			scaled := plan.DMADerateNs(at, workNs)
			if scaled != workNs {
				r.noteFault()
			}
			return scaled
		})
	}
	for _, t := range set.Tasks {
		rt := &rtask{t: t}
		r.rts = append(r.rts, rt)
		r.scheduleRelease(rt, 0)
	}
	if ctx.Done() != nil {
		// One closure per run (setup path, not hot); the kernel polls it
		// every few hundred events.
		eng.SetStop(func() bool { return ctx.Err() != nil })
	}
	eng.Run(horizon)
	if cerr := ctx.Err(); cerr != nil {
		return nil, fmt.Errorf("exec: run aborted: %w", cerr)
	}
	if r.err != nil {
		return nil, r.err
	}

	infos := make([]trace.TaskInfo, 0, len(set.Tasks))
	for _, t := range set.Tasks {
		infos = append(infos, trace.TaskInfo{
			Name: t.Name, Period: t.Period, Deadline: t.Deadline,
			Offset: t.Offset, Jitter: r.effJitter(t), Segments: t.NumSegments(),
		})
	}
	if err := r.tr.CheckInvariants(infos); err != nil {
		return nil, fmt.Errorf("exec: trace invariant violated under %s: %w", pol.Name, err)
	}
	ins.runs.Add(1)
	ins.cpuBusyNs.Add(cpu.BusyNs)
	ins.dmaBusyNs.Add(dma.BusyNs)
	ins.flashBytes.Add(r.flashBytes)
	ins.sramPeak.SetMax(r.sram.Peak())
	energy := plat.Energy.EnergyMicroJ(int64(horizon), cpu.BusyNs, dma.BusyNs, r.flashBytes)
	return &Result{
		Trace:              r.tr,
		Metrics:            r.tr.Analyze(infos, horizon),
		Infos:              infos,
		Horizon:            horizon,
		CPUBusyNs:          cpu.BusyNs,
		DMABusyNs:          dma.BusyNs,
		SRAMPeak:           r.sram.Peak(),
		ActivationPeak:     r.actPeak,
		FlashBytes:         r.flashBytes,
		EnergyMicroJ:       energy,
		AvgPowerMw:         energy / 1000 / horizon.Seconds(),
		FaultsInjected:     r.faultsInjected,
		JobsAborted:        r.jobsAborted,
		DMARetries:         r.dmaRetries,
		ReleasesSuppressed: r.releasesSuppressed,
		SRAMResidual:       r.sram.Used(),
	}, nil
}

// effJitter is a task's effective release window: its configured jitter
// plus the plan's worst-case injected delay, clamped below the period so
// releases stay ordered. Without a plan it equals t.Jitter.
//
//rtmdm:hotpath
func (r *runner) effJitter(t *task.Task) sim.Duration {
	j := t.Jitter + r.plan.MaxReleaseDelay()
	if j >= t.Period {
		j = t.Period - 1
	}
	return j
}

//rtmdm:hotpath
func (r *runner) emit(k trace.Kind, j *job, seg int, bytes int64) {
	r.tr.Add(trace.Event{
		At: r.eng.Now(), Kind: k, Task: j.name(), Job: j.idx, Segment: seg, Bytes: bytes,
	})
}

// scheduleRelease arms job k's arrival: nominal grid point plus a
// deterministic pseudo-random delay within the task's jitter bound, plus
// any sporadic delay the fault plan injects (clamped to the effective
// jitter window so release order and the trace invariants hold).
func (r *runner) scheduleRelease(rt *rtask, k int) {
	nominal := core.SatAddTime(rt.t.Offset, core.SatMulTime(rt.t.Period, int64(k)))
	if nominal >= r.horizon {
		return
	}
	at := nominal + releaseJitter(rt.t.Name, k, rt.t.Jitter)
	if d := r.plan.ReleaseDelay(rt.t.Name, k); d > 0 {
		r.noteFault()
		at += d
		if lim := nominal + r.effJitter(rt.t); at > lim {
			at = lim
		}
	}
	r.eng.Schedule(at, func() { r.release(rt) })
}

// releaseJitter derives a deterministic delay in [0, max] from the task
// name and job index (splitmix64-style hash), so jittered runs stay
// bit-reproducible.
//
//rtmdm:hotpath
func releaseJitter(name string, k int, max sim.Duration) sim.Duration {
	if max <= 0 {
		return 0
	}
	h := uint64(1469598103934665603)
	for _, c := range name {
		h = (h ^ uint64(c)) * 1099511628211
	}
	h ^= uint64(k) * 0x9e3779b97f4a7c15
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return sim.Duration(h % uint64(max+1))
}

// release creates the next job of rt and schedules the following release.
// Under OverrunSkipNext a pending suppression (earned by a deadline miss)
// consumes this arrival instead: no job is created, no Release is traced.
func (r *runner) release(rt *rtask) {
	if rt.suppress > 0 {
		rt.suppress--
		rt.nextIdx++
		r.releasesSuppressed++
		r.ins.releasesSupp.Add(1)
		r.scheduleRelease(rt, rt.nextIdx)
		return
	}
	j := &job{
		rt:          rt,
		idx:         rt.nextIdx,
		release:     r.eng.Now(),
		absDeadline: r.eng.Now() + rt.t.Deadline,
	}
	rt.nextIdx++
	rt.pending = append(rt.pending, j)
	r.ins.jobsReleased.Add(1)
	r.emit(trace.Release, j, -1, 0)
	if j.absDeadline <= r.horizon {
		// Watch the absolute deadline. The check double-defers through a
		// fresh same-instant event so that a completion at exactly the
		// deadline (whose events were queued earlier, with lower sequence
		// numbers) is processed first and does not count as a miss.
		r.eng.Schedule(j.absDeadline, func() {
			r.eng.Schedule(r.eng.Now(), func() {
				if j.done {
					return
				}
				r.ins.deadlineMisses.Add(1)
				r.emit(trace.DeadlineMiss, j, -1, 0)
				switch r.pol.Overrun {
				case core.OverrunAbort:
					r.abort(j)
				case core.OverrunSkipNext:
					rt.suppress++
				}
			})
		})
	}
	r.scheduleRelease(rt, rt.nextIdx)
	r.kick()
}

// abort kills job j at its deadline (core.OverrunAbort): the CPU and the
// DMA channel are reclaimed if j occupies them, the armed retry (if any) is
// revoked, every staging buffer the job holds is released, and the job
// leaves its task's pending queue. Exactly one Abort event is traced; all
// of the job's callbacks are keyed on the activities and events cancelled
// here, so nothing of it can fire afterwards.
func (r *runner) abort(j *job) {
	if j.done || j.aborted {
		return
	}
	j.aborted = true
	j.done = true
	// The Abort event goes first: it closes the job's open compute/load
	// intervals in the trace, and reclaiming the DMA below may immediately
	// start another job's queued transfer at this same instant.
	r.jobsAborted++
	r.ins.jobsAborted.Add(1)
	r.emit(trace.Abort, j, -1, 0)
	if r.locked == j {
		r.locked = nil
	}
	for i, p := range j.rt.pending {
		if p == j {
			j.rt.pending = append(j.rt.pending[:i], j.rt.pending[i+1:]...)
			break
		}
	}
	if r.running == j {
		r.cpu.Abort()
		r.running = nil
	}
	j.retryEv.Cancel()
	j.retryEv = sim.Event{}
	j.loading = false
	if j.heldBytes > 0 {
		r.sram.Release(j.heldBytes)
		j.heldBytes = 0
	}
	if j.xfer != nil {
		x := j.xfer
		j.xfer = nil
		if !r.dma.Cancel(x) && r.dma.Current() == x {
			r.dma.Abort()
		}
	}
	r.kick()
}

// kick requests a dispatch pass at the current instant. The pass is
// deferred to a fresh event so that every release/completion at this
// instant is processed first; loads may unblock computes and vice versa,
// but a single pass suffices: tryDMA only issues transfers (completion
// comes later), and tryCPU's completion re-kicks.
func (r *runner) kick() {
	if r.err != nil || r.kickPending {
		return
	}
	r.kickPending = true
	r.eng.Schedule(r.eng.Now(), func() {
		r.kickPending = false
		if r.err != nil {
			return
		}
		r.tryDMA()
		r.tryCPU()
	})
}

// less orders jobs most-urgent-first under the policy's discipline.
func (r *runner) less(a, b *job) bool {
	if r.pol.EDF {
		if a.absDeadline != b.absDeadline {
			return a.absDeadline < b.absDeadline
		}
	}
	if a.priority() != b.priority() {
		return a.priority() < b.priority()
	}
	return a.name() < b.name()
}

// headJobs returns the head job of every task that has one.
func (r *runner) headJobs() []*job {
	out := make([]*job, 0, len(r.rts))
	for _, rt := range r.rts {
		if j := rt.head(); j != nil {
			out = append(out, j)
		}
	}
	return out
}

// cpuEligible reports whether j could occupy the CPU next.
//
//rtmdm:hotpath
func (r *runner) cpuEligible(j *job) bool {
	if j.done || !j.staged() {
		return false
	}
	if r.pol.JobLevelNP && r.locked != nil && r.locked != j {
		return false
	}
	return true
}

// loadTarget returns the job whose segments the DMA should stage next, or
// nil. Under PrefetchAcrossJobs every head job with buffer room competes;
// otherwise only the job holding (or about to hold) the CPU may load.
func (r *runner) loadTarget() *job {
	heads := r.headJobs()
	if len(heads) == 0 {
		return nil
	}
	loadable := func(j *job) bool {
		if j.done || j.loading || j.allLoaded() {
			return false
		}
		return j.nextLoad-j.nextCompute < r.pol.DepthFor(j.rt.t.Name)
	}
	if !r.pol.PrefetchAcrossJobs {
		// Identify the head-of-line job: the one on the CPU, the locked
		// job, or the most urgent head job. Serial policies never load for
		// anyone else, so a single thread of control is preserved.
		var hol *job
		switch {
		case r.running != nil:
			hol = r.running
		case r.pol.JobLevelNP && r.locked != nil:
			hol = r.locked
		default:
			for _, j := range heads {
				if hol == nil || r.less(j, hol) {
					hol = j
				}
			}
		}
		if hol != nil && loadable(hol) {
			return hol
		}
		return nil
	}
	if r.pol.DMA == core.DMAFIFO {
		// Memory-unaware ablation: any job with buffer room competes, in
		// release order.
		cands := heads[:0]
		for _, j := range heads {
			if loadable(j) {
				cands = append(cands, j)
			}
		}
		if len(cands) == 0 {
			return nil
		}
		sort.Slice(cands, func(i, k int) bool {
			if cands[i].release != cands[k].release {
				return cands[i].release < cands[k].release
			}
			return cands[i].name() < cands[k].name()
		})
		return cands[0]
	}
	// Priority-gated issuing (the RT-MDM design point): the channel is
	// reserved for the most urgent incomplete job that still has loads
	// remaining. A less urgent job may only transfer once that job has no
	// DMA demand left, so an urgent job is blocked by at most one
	// in-flight transfer over its whole lifetime — the property the
	// schedulability analysis builds on.
	var gate *job
	for _, j := range heads {
		if j.done || j.allLoaded() {
			continue
		}
		if gate == nil || r.less(j, gate) {
			gate = j
		}
	}
	if gate != nil && loadable(gate) {
		return gate
	}
	// When the gate job's window is full the channel deliberately idles:
	// letting less urgent jobs "steal the gap" would let them re-stage
	// segments during an urgent job's busy window, voiding the staged-
	// inventory blocking bound every task's analysis builds on — and a
	// lower task gains no *guaranteed* latency from stealing anyway, since
	// its offline bound must already assume its loads freeze whenever a
	// more urgent job has DMA demand left (see docs/ANALYSIS.md §4).
	return nil
}

// tryDMA issues at most one transfer; zero-byte segments stage instantly
// in a loop (they never occupy the channel).
func (r *runner) tryDMA() {
	for {
		if r.dma.Busy() {
			return
		}
		j := r.loadTarget()
		if j == nil {
			return
		}
		seg := j.rt.t.Plan.Segments[j.nextLoad]
		if r.pol.JobLevelNP && r.locked == nil {
			// Vanilla single-threaded semantics: the job occupies the
			// runtime from its very first load. Without this, a job
			// staged before an urgent release could grab the lock during
			// the urgent job's load and chain a second whole-job
			// blocking.
			r.locked = j
		}
		if seg.LoadBytes == 0 {
			r.emit(trace.LoadStart, j, seg.Index, 0)
			r.emit(trace.LoadEnd, j, seg.Index, 0)
			j.nextLoad++
			continue // staging was free; look for more work
		}
		if j.segLoaded == 0 {
			// The whole segment's buffer is reserved at the first chunk.
			if !r.sram.Alloc(seg.LoadBytes) {
				// Staging SRAM exhausted. With core.Provision satisfied
				// this cannot happen; without it we degrade gracefully by
				// waiting for buffers to free up (a compute completion
				// re-kicks).
				return
			}
			j.heldBytes += seg.LoadBytes
		}
		bytes := seg.LoadBytes - j.segLoaded
		if c := r.pol.ChunkBytes; c > 0 && bytes > c {
			// Limited-preemption DMA: issue one chunk, then re-arbitrate
			// the channel at the chunk boundary.
			bytes = c
		}
		r.issueChunk(j, seg, bytes)
		return
	}
}

// issueChunk submits one parameter-chunk transfer for j's segment seg and
// handles its completion. Under a fault plan the chunk may be lost to a
// transient transfer fault: the channel was occupied for the full duration
// but nothing staged, so the chunk is re-issued after an exponential
// backoff, up to the plan's retry budget. Retried submissions may queue
// behind other jobs' transfers, so the LoadStart trace event (and the flash
// read) is tied to channel occupancy (OnStart), not submission.
func (r *runner) issueChunk(j *job, seg segment.Segment, bytes int64) {
	j.loading = true
	t := &platform.Transfer{
		Bytes:    bytes,
		Priority: j.priority(),
	}
	t.OnStart = func() {
		r.flashBytes += bytes
		r.emit(trace.LoadStart, j, seg.Index, bytes)
	}
	t.OnDone = func() {
		j.xfer = nil
		if r.plan.TransferFaulty(j.name(), j.idx, seg.Index, j.segLoaded, j.attempt) {
			j.attempt++
			r.dmaRetries++
			r.ins.dmaRetries.Add(1)
			r.noteFault()
			r.emit(trace.DMARetry, j, seg.Index, bytes)
			j.retryEv = r.eng.After(r.plan.RetryBackoffNs(j.attempt), func() {
				j.retryEv = sim.Event{}
				r.issueChunk(j, seg, bytes)
			})
			return
		}
		j.attempt = 0
		r.emit(trace.LoadEnd, j, seg.Index, bytes)
		j.loading = false
		j.segLoaded += bytes
		if j.segLoaded >= seg.LoadBytes {
			j.segLoaded = 0
			j.nextLoad++
		}
		r.kick()
	}
	j.xfer = t
	r.dma.Submit(t)
}

// tryCPU dispatches the most urgent staged segment if the CPU is idle.
func (r *runner) tryCPU() {
	if r.cpu.Busy() {
		return
	}
	var best *job
	for _, j := range r.headJobs() {
		if !r.cpuEligible(j) {
			continue
		}
		if best == nil || r.less(j, best) {
			best = j
		}
	}
	if best == nil {
		return
	}
	j := best
	seg := j.rt.t.Plan.Segments[j.nextCompute]
	if r.pol.JobLevelNP {
		r.locked = j
	}
	work := seg.ComputeNs
	if extra := r.plan.OverrunExtraNs(j.name(), j.idx, seg.Index, seg.ComputeNs); extra > 0 {
		// Injected WCET exceedance: the segment computes longer than its
		// modeled cost. Traced before ComputeStart, extra ns in Bytes.
		work += extra
		r.noteFault()
		r.emit(trace.Overrun, j, seg.Index, extra)
	}
	if r.lastRan != j {
		work += r.plat.CPU.SwitchNs
		r.ins.ctxSwitches.Add(1)
	}
	r.running = j
	r.lastRan = j
	r.accountActivations(j, seg)
	r.emit(trace.ComputeStart, j, seg.Index, 0)
	r.cpu.Run(work, func() { r.onComputeDone(j, seg) })
	// Starting a compute may open prefetch room (depth window slides only
	// on completion, not here) — nothing further to do.
}

func (r *runner) onComputeDone(j *job, seg segment.Segment) {
	r.running = nil
	r.emit(trace.ComputeEnd, j, seg.Index, 0)
	// The segment's staging buffer frees once its compute is done.
	if seg.LoadBytes > 0 {
		r.sram.Release(seg.LoadBytes)
		j.heldBytes -= seg.LoadBytes
	}
	j.nextCompute++
	if j.nextCompute >= j.segments() {
		j.done = true
		r.ins.jobsCompleted.Add(1)
		r.ins.jobResponse.Observe(int64(r.eng.Now() - j.release))
		r.emit(trace.JobDone, j, -1, 0)
		if j.heldBytes != 0 {
			r.fail(fmt.Errorf("exec: job %s#%d finished holding %d B", j.name(), j.idx, j.heldBytes))
			return
		}
		if j.rt.head() != j {
			r.fail(fmt.Errorf("exec: job %s#%d finished out of order", j.name(), j.idx))
			return
		}
		j.rt.pending = j.rt.pending[1:]
		if r.locked == j {
			r.locked = nil
		}
	}
	r.kick()
}

// accountActivations checks the activation-SRAM invariant at a dispatch
// instant: the running job's working set plus every other started-but-
// unfinished job's parked boundary state must fit the non-staging SRAM.
// With core.Provision satisfied this can never trip; it exists to validate
// the provisioning rule empirically on every simulated schedule.
func (r *runner) accountActivations(running *job, seg segment.Segment) {
	var resident int64
	if running.rt.t.Plan.Model != nil {
		resident = running.rt.t.Plan.Model.PeakActivationBytes()
	}
	for _, rt := range r.rts {
		j := rt.head()
		if j == nil || j == running || j.nextCompute == 0 {
			continue // not started: holds no activation state
		}
		resident += rt.t.Plan.Segments[j.nextCompute-1].ResidentBytes
	}
	if resident > r.actPeak {
		r.actPeak = resident
	}
	if act := r.plat.SRAMBytes - r.plat.WeightBufBytes; resident > act && running.rt.t.Plan.Model != nil {
		r.fail(fmt.Errorf("exec: activation SRAM overcommitted: %d B resident, %d B available (provisioning violated)",
			resident, act))
	}
}

func (r *runner) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}
