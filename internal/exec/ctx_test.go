package exec

import (
	"context"
	"errors"
	"testing"
	"time"

	"rtmdm/internal/core"
	"rtmdm/internal/cost"
	"rtmdm/internal/models"
	"rtmdm/internal/segment"
	"rtmdm/internal/sim"
	"rtmdm/internal/task"
)

func ctxTestSet(t *testing.T, plat cost.Platform, pol core.Policy) *task.Set {
	t.Helper()
	names := []string{"ds-cnn", "mobilenetv1-0.25"}
	periods := []sim.Duration{50 * sim.Millisecond, 150 * sim.Millisecond}
	var ts []*task.Task
	for i, n := range names {
		m, err := models.Build(n, 1)
		if err != nil {
			t.Fatal(err)
		}
		pl, err := segment.BuildLimits(m, plat, pol.Limits(plat, len(names)), segment.Greedy)
		if err != nil {
			t.Fatal(err)
		}
		ts = append(ts, &task.Task{
			Name: n, Plan: pl, Period: periods[i], Deadline: periods[i], Priority: i,
		})
	}
	set := task.NewSet(ts...)
	if err := core.Provision(set, plat, pol); err != nil {
		t.Fatal(err)
	}
	return set
}

// TestRunContextCanceled verifies a pre-canceled context aborts the run
// with the context's error instead of returning a partial result.
func TestRunContextCanceled(t *testing.T) {
	plat := cost.STM32H743
	pol := core.RTMDM()
	set := ctxTestSet(t, plat, pol)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunContext(ctx, set, plat, pol, sim.Second)
	if res != nil {
		t.Fatal("canceled run returned a result")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v; want context.Canceled", err)
	}
}

// TestRunContextDeadline verifies an already-expired deadline aborts with
// DeadlineExceeded.
func TestRunContextDeadline(t *testing.T) {
	plat := cost.STM32H743
	pol := core.RTMDM()
	set := ctxTestSet(t, plat, pol)

	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := RunContext(ctx, set, plat, pol, sim.Second); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v; want context.DeadlineExceeded", err)
	}
}

// TestRunContextNominalIdentical pins that threading a live context
// through a run that completes changes nothing: same trace, same metrics.
func TestRunContextNominalIdentical(t *testing.T) {
	plat := cost.STM32H743
	pol := core.RTMDM()
	set := ctxTestSet(t, plat, pol)

	want, err := Run(set, plat, pol, 300*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	got, err := RunContext(ctx, set, plat, pol, 300*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if got.Trace.Len() != want.Trace.Len() {
		t.Fatalf("trace length %d under context, %d without", got.Trace.Len(), want.Trace.Len())
	}
	if got.CPUBusyNs != want.CPUBusyNs || got.DMABusyNs != want.DMABusyNs {
		t.Fatalf("busy counters diverge: ctx (%d, %d) vs plain (%d, %d)",
			got.CPUBusyNs, got.DMABusyNs, want.CPUBusyNs, want.DMABusyNs)
	}
}
