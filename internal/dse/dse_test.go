package dse

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"rtmdm/internal/cost"
	"rtmdm/internal/workload"
)

func testSpec(t *testing.T, n int, util float64) workload.SetSpec {
	t.Helper()
	sp, err := workload.Generate(workload.Params{
		Seed: 42, N: n, Util: util, Platform: cost.STM32H743,
	})
	if err != nil {
		t.Fatalf("workload generation: %v", err)
	}
	return sp
}

func smallKnobs() Knobs {
	return Knobs{
		StagingBytes:  []int64{128 << 10, 192 << 10},
		Depths:        []int{2},
		GranularityNs: []int64{500_000, 1_000_000},
		ChunkBytes:    []int64{0},
	}
}

func TestDefaultKnobsValidate(t *testing.T) {
	for _, p := range cost.Platforms() {
		k := DefaultKnobs(p)
		if err := k.validate(p); err != nil {
			t.Errorf("%s: default knobs invalid: %v", p.Name, err)
		}
	}
}

func TestKnobsValidationRejectsBadAxes(t *testing.T) {
	plat := cost.STM32H743
	cases := []Knobs{
		{},
		{StagingBytes: []int64{0}, Depths: []int{2}, GranularityNs: []int64{1}, ChunkBytes: []int64{0}},
		{StagingBytes: []int64{plat.SRAMBytes}, Depths: []int{2}, GranularityNs: []int64{1}, ChunkBytes: []int64{0}},
		{StagingBytes: []int64{1024}, Depths: []int{1}, GranularityNs: []int64{1}, ChunkBytes: []int64{0}},
		{StagingBytes: []int64{1024}, Depths: []int{2}, GranularityNs: []int64{0}, ChunkBytes: []int64{0}},
		{StagingBytes: []int64{1024}, Depths: []int{2}, GranularityNs: []int64{1}, ChunkBytes: []int64{-1}},
	}
	for i, k := range cases {
		if err := k.validate(plat); err == nil {
			t.Errorf("case %d: invalid knobs accepted", i)
		}
	}
}

func TestExploreEnumeratesFullGridDeterministically(t *testing.T) {
	sp := testSpec(t, 2, 0.3)
	k := smallKnobs()
	r1, err := Explore(sp, cost.STM32H743, k)
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * 1 * 2 * 1; len(r1.Points) != want {
		t.Fatalf("grid size %d, want %d", len(r1.Points), want)
	}
	// Axis order: staging major, then depth, granularity, chunk.
	if r1.Points[0].StagingBytes != 128<<10 || r1.Points[2].StagingBytes != 192<<10 {
		t.Fatalf("grid not in axis order: %+v", r1.Points)
	}
	if r1.Points[0].GranularityNs != 500_000 || r1.Points[1].GranularityNs != 1_000_000 {
		t.Fatalf("granularity axis out of order: %+v", r1.Points[:2])
	}
	r2, err := Explore(sp, cost.STM32H743, k)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatal("exploration is not deterministic")
	}
}

func TestExploreSchedulablePointsAreConsistent(t *testing.T) {
	sp := testSpec(t, 3, 0.4)
	r, err := Explore(sp, cost.STM32H743, DefaultKnobs(cost.STM32H743))
	if err != nil {
		t.Fatal(err)
	}
	if r.Schedulable() == 0 {
		t.Fatal("no schedulable point at U=0.4 on the reference platform")
	}
	for _, p := range r.Points {
		if p.Schedulable && !p.Feasible {
			t.Fatalf("schedulable but infeasible point: %+v", p)
		}
		if !p.Feasible && p.Reason == "" {
			t.Fatalf("infeasible point without reason: %+v", p)
		}
		if p.Schedulable {
			// Schedulable at nominal rates ⇒ breakdown factor ≥ ~1
			// (up to the binary search tolerance).
			if p.Alpha < 0.97 {
				t.Fatalf("schedulable point with alpha %.3f: %+v", p.Alpha, p)
			}
			if p.SlackNs < 0 {
				t.Fatalf("schedulable point with negative slack: %+v", p)
			}
		} else if p.Alpha != 0 {
			t.Fatalf("unschedulable point with alpha %.3f: %+v", p.Alpha, p)
		}
	}
}

func TestFrontierIsParetoOptimalAndCovering(t *testing.T) {
	sp := testSpec(t, 3, 0.4)
	r, err := Explore(sp, cost.STM32H743, DefaultKnobs(cost.STM32H743))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Frontier) == 0 {
		t.Fatal("empty frontier with schedulable points present")
	}
	for i, f := range r.Frontier {
		for _, q := range r.Points {
			if f.dominatedBy(q) {
				t.Fatalf("frontier point %+v dominated by %+v", f, q)
			}
		}
		if i > 0 {
			prev := r.Frontier[i-1]
			if f.StagingBytes <= prev.StagingBytes || f.Alpha <= prev.Alpha {
				t.Fatalf("frontier not strictly improving: %+v then %+v", prev, f)
			}
		}
	}
	// Coverage: every schedulable point is matched or beaten by a frontier
	// point that costs no more.
	for _, p := range r.Points {
		if !p.Schedulable {
			continue
		}
		covered := false
		for _, f := range r.Frontier {
			if f.StagingBytes <= p.StagingBytes && f.Alpha >= p.Alpha {
				covered = true
				break
			}
		}
		if !covered {
			t.Fatalf("schedulable point not covered by frontier: %+v", p)
		}
	}
}

func TestRecommendPicksCheapestMeetingTarget(t *testing.T) {
	r := &Result{Frontier: []Point{
		{StagingBytes: 64 << 10, Alpha: 1.05, Schedulable: true},
		{StagingBytes: 128 << 10, Alpha: 1.20, Schedulable: true},
		{StagingBytes: 256 << 10, Alpha: 1.40, Schedulable: true},
	}}
	if p, ok := r.Recommend(1.0); !ok || p.StagingBytes != 64<<10 {
		t.Fatalf("want cheapest point, got %+v ok=%v", p, ok)
	}
	if p, ok := r.Recommend(1.15); !ok || p.StagingBytes != 128<<10 {
		t.Fatalf("want first point meeting 1.15, got %+v ok=%v", p, ok)
	}
	// Unreachable target: fall back to the highest-margin point.
	if p, ok := r.Recommend(9.9); !ok || p.StagingBytes != 256<<10 {
		t.Fatalf("want max-margin fallback, got %+v ok=%v", p, ok)
	}
	empty := &Result{}
	if _, ok := empty.Recommend(1.0); ok {
		t.Fatal("recommendation from empty frontier")
	}
}

func TestExploreReportsInfeasibleReasons(t *testing.T) {
	sp := testSpec(t, 3, 0.4)
	k := Knobs{
		// Nearly the whole SRAM: activation provisioning must starve.
		StagingBytes:  []int64{cost.STM32H743.SRAMBytes - 1024},
		Depths:        []int{2},
		GranularityNs: []int64{1_000_000},
		ChunkBytes:    []int64{0},
	}
	r, err := Explore(sp, cost.STM32H743, k)
	if err != nil {
		t.Fatal(err)
	}
	p := r.Points[0]
	if p.Feasible || p.Schedulable {
		t.Fatalf("activation-starved staging accepted: %+v", p)
	}
	if p.Reason == "" {
		t.Fatal("no failure reason recorded")
	}
	if len(r.Frontier) != 0 {
		t.Fatalf("frontier from infeasible grid: %+v", r.Frontier)
	}
}

// TestExplorePanicRecovery injects an evaluator that panics on one grid
// point of a pathological knob grid: Explore must still complete, the
// poisoned point must come back infeasible with the panic recorded as its
// Reason, and every sibling point must evaluate normally.
func TestExplorePanicRecovery(t *testing.T) {
	sp := testSpec(t, 2, 0.3)
	orig := evalPoint
	defer func() { evalPoint = orig }()
	evalPoint = func(spec workload.SetSpec, plat cost.Platform, pt Point) Point {
		if pt.StagingBytes == 192<<10 && pt.GranularityNs == 500_000 {
			panic("pathological grid point")
		}
		return orig(spec, plat, pt)
	}
	r, err := Explore(sp, cost.STM32H743, smallKnobs())
	if err != nil {
		t.Fatalf("explore died on a panicking point: %v", err)
	}
	if want := 2 * 1 * 2 * 1; len(r.Points) != want {
		t.Fatalf("grid size %d, want %d", len(r.Points), want)
	}
	poisoned := 0
	for _, p := range r.Points {
		if p.StagingBytes == 192<<10 && p.GranularityNs == 500_000 {
			poisoned++
			if p.Feasible || p.Schedulable || p.Alpha != 0 {
				t.Fatalf("panicked point not marked infeasible: %+v", p)
			}
			if p.Reason != "panic: pathological grid point" {
				t.Fatalf("panic not recorded as reason: %q", p.Reason)
			}
			continue
		}
		if !p.Feasible && p.Reason == "" {
			t.Fatalf("sibling point lost its evaluation: %+v", p)
		}
	}
	if poisoned != 1 {
		t.Fatalf("poisoned points %d, want 1", poisoned)
	}
	// The frontier must be built from the surviving points only.
	for _, f := range r.Frontier {
		if f.Reason != "" {
			t.Fatalf("panicked point on the frontier: %+v", f)
		}
	}
}

func TestExploreRejectsEmptySpec(t *testing.T) {
	if _, err := Explore(workload.SetSpec{}, cost.STM32H743, smallKnobs()); err == nil {
		t.Fatal("empty spec accepted")
	}
}

// TestPropertyFrontierInvariants drives the frontier extraction with
// random point clouds: the result must be an antichain under domination,
// sorted strictly on both axes, and must cover every schedulable point.
func TestPropertyFrontierInvariants(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 200,
		Values: func(vs []reflect.Value, rng *rand.Rand) {
			n := rng.Intn(40)
			pts := make([]Point, n)
			for i := range pts {
				pts[i] = Point{
					StagingBytes: int64(1+rng.Intn(8)) << 14,
					Alpha:        1 + rng.Float64(),
					Schedulable:  rng.Intn(3) > 0,
				}
				if !pts[i].Schedulable {
					pts[i].Alpha = 0
				}
			}
			vs[0] = reflect.ValueOf(pts)
		},
	}
	prop := func(pts []Point) bool {
		front := frontier(pts)
		for i, f := range front {
			if !f.Schedulable {
				return false
			}
			if i > 0 && (f.StagingBytes <= front[i-1].StagingBytes || f.Alpha <= front[i-1].Alpha) {
				return false
			}
			for _, q := range pts {
				if f.dominatedBy(q) {
					return false
				}
			}
		}
		for _, p := range pts {
			if !p.Schedulable {
				continue
			}
			covered := false
			for _, f := range front {
				if f.StagingBytes <= p.StagingBytes && f.Alpha >= p.Alpha {
					covered = true
					break
				}
			}
			if !covered {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestPointPolicyRoundTrip(t *testing.T) {
	p := Point{Depth: 3, GranularityNs: 750_000, ChunkBytes: 4096}
	pol := p.Policy()
	if pol.Depth != 3 || pol.MaxSegNs != 750_000 || pol.ChunkBytes != 4096 {
		t.Fatalf("policy %+v does not reflect point %+v", pol, p)
	}
	if err := pol.Validate(); err != nil {
		t.Fatalf("reconstructed policy invalid: %v", err)
	}
}

func TestTunedPointsJoinTheGrid(t *testing.T) {
	sp := testSpec(t, 3, 0.4)
	k := smallKnobs()
	k.TunePerTaskDepth = true
	r, err := Explore(sp, cost.STM32H743, k)
	if err != nil {
		t.Fatal(err)
	}
	// 2 staging × (1 depth × 2 δ × 1 chunk uniform + 2 δ × 1 chunk tuned).
	if want := 2 * (2 + 2); len(r.Points) != want {
		t.Fatalf("grid size %d, want %d", len(r.Points), want)
	}
	tuned := 0
	for _, p := range r.Points {
		if p.TaskDepths == nil {
			continue
		}
		tuned++
		if !p.Schedulable {
			continue
		}
		if len(p.TaskDepths) != 3 {
			t.Fatalf("tuned point with %d windows for 3 tasks: %+v", len(p.TaskDepths), p)
		}
		maxD := 0
		for _, d := range p.TaskDepths {
			if d < 1 || d > 4 {
				t.Fatalf("window %d outside {1..4}: %+v", d, p)
			}
			if d > maxD {
				maxD = d
			}
		}
		if p.Depth != maxD {
			t.Fatalf("Depth %d != deepest window %d", p.Depth, maxD)
		}
		pol := p.Policy()
		if err := pol.Validate(); err != nil {
			t.Fatalf("tuned policy invalid: %v", err)
		}
		if pol.TaskDepth == nil {
			t.Fatal("tuned point reconstructs a uniform policy")
		}
		if p.Alpha < 0.97 {
			t.Fatalf("schedulable tuned point with alpha %.3f", p.Alpha)
		}
	}
	if tuned != 4 {
		t.Fatalf("tuned points %d, want 4", tuned)
	}
	// A tuned point must never be beaten by the uniform point of the same
	// staging/δ/chunk cell on slack: its lattice contains every uniform
	// depth of that cell that provisions.
	for _, p := range r.Points {
		if p.TaskDepths == nil || !p.Schedulable {
			continue
		}
		for _, q := range r.Points {
			if q.TaskDepths != nil || !q.Schedulable {
				continue
			}
			if q.StagingBytes == p.StagingBytes && q.GranularityNs == p.GranularityNs &&
				q.ChunkBytes == p.ChunkBytes && q.SlackNs > p.SlackNs {
				t.Fatalf("uniform point out-slacks tuned sibling: %+v vs %+v", q, p)
			}
		}
	}
}
