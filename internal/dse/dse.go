// Package dse explores the coupled hardware/software configuration space
// of an RT-MDM deployment: the staging-SRAM partition (a hardware
// provisioning cost), the prefetch depth, the preemption granularity δ and
// the DMA chunk size (software knobs). For one policy-independent workload
// it evaluates every grid point with the full offline pipeline —
// segmentation, SRAM provisioning, response-time analysis, breakdown
// factor — and reports the Pareto frontier between staging cost and
// guaranteed timing margin, closing the design-automation loop that T18's
// single-knob δ tuner opens.
package dse

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"rtmdm/internal/analysis"
	"rtmdm/internal/core"
	"rtmdm/internal/cost"
	"rtmdm/internal/metrics"
	"rtmdm/internal/sim"
	"rtmdm/internal/workload"
)

// instruments is the explorer's metrics sink; the zero struct (all nil
// metrics, the default) makes every update a no-op.
type instruments struct {
	explored      *metrics.Counter
	infeasible    *metrics.Counter
	unschedulable *metrics.Counter
	schedulable   *metrics.Counter
	panicked      *metrics.Counter
}

var instr atomic.Pointer[instruments]

func init() { instr.Store(&instruments{}) }

// Instrument wires the explorer to the registry; Instrument(nil) disables
// instrumentation. Counters aggregate across every Explore in the process.
func Instrument(r *metrics.Registry) {
	if r == nil {
		instr.Store(&instruments{})
		return
	}
	instr.Store(&instruments{
		explored:      r.Counter("dse.points_explored", "points", "grid points evaluated"),
		infeasible:    r.Counter("dse.points_infeasible", "points", "points failing segmentation or provisioning"),
		unschedulable: r.Counter("dse.points_unschedulable", "points", "feasible points the analysis rejected"),
		schedulable:   r.Counter("dse.points_schedulable", "points", "points with an offline certificate"),
		panicked:      r.Counter("dse.points_panicked", "points", "points recovered from a pipeline panic"),
	})
}

// Knobs enumerates the candidate values on each configuration axis. Every
// axis must be non-empty; Explore evaluates the full cross product.
type Knobs struct {
	// StagingBytes are candidate weight-staging partition sizes
	// (cost.Platform.WeightBufBytes). Each must leave activation room
	// inside the platform's total SRAM.
	StagingBytes []int64
	// Depths are candidate prefetch-buffer depths (≥ 2 for RT-MDM).
	Depths []int
	// GranularityNs are candidate δ bounds on a segment's non-preemptive
	// compute region (core.Policy.MaxSegNs).
	GranularityNs []int64
	// ChunkBytes are candidate DMA transfer chunk sizes; 0 means
	// whole-segment transfers.
	ChunkBytes []int64
	// TunePerTaskDepth adds, for every (staging, granularity, chunk)
	// combination, one extra grid point whose windows are brute-force
	// tuned per task over {1..4} (extension T24): depth is spent on the
	// top-priority pipeline and saved on lower tasks' blocking inventory,
	// often certifying workloads no uniform depth can.
	TunePerTaskDepth bool
	// Progress, when non-nil, is called after each grid point completes
	// with the number of finished points and the grid size. It is invoked
	// from worker goroutines and must be safe for concurrent use; sweeps
	// use it to drive progress tickers without touching the results.
	Progress func(done, total int)
}

// DefaultKnobs returns a practical grid for the given platform: staging
// partitions from 1/8 to 1/2 of SRAM, depths 2–4, δ from 0.25 to 2 ms, and
// whole-segment vs 8 KiB chunked transfers.
func DefaultKnobs(plat cost.Platform) Knobs {
	sram := plat.SRAMBytes
	return Knobs{
		StagingBytes:  []int64{sram / 8, sram / 4, 3 * sram / 8, sram / 2},
		Depths:        []int{2, 3, 4},
		GranularityNs: []int64{250_000, 500_000, 1_000_000, 2_000_000},
		ChunkBytes:    []int64{0, 8192},
	}
}

func (k Knobs) validate(plat cost.Platform) error {
	if len(k.StagingBytes) == 0 || len(k.Depths) == 0 ||
		len(k.GranularityNs) == 0 || len(k.ChunkBytes) == 0 {
		return fmt.Errorf("dse: every knob axis needs at least one candidate")
	}
	for _, b := range k.StagingBytes {
		if b <= 0 || b >= plat.SRAMBytes {
			return fmt.Errorf("dse: staging partition %d outside (0, %d)", b, plat.SRAMBytes)
		}
	}
	for _, d := range k.Depths {
		if d < 2 {
			return fmt.Errorf("dse: prefetch depth %d < 2", d)
		}
	}
	for _, g := range k.GranularityNs {
		if g <= 0 {
			return fmt.Errorf("dse: non-positive granularity %d", g)
		}
	}
	for _, c := range k.ChunkBytes {
		if c < 0 {
			return fmt.Errorf("dse: negative chunk size %d", c)
		}
	}
	return nil
}

// Point is one evaluated configuration.
type Point struct {
	StagingBytes  int64
	Depth         int
	GranularityNs int64
	ChunkBytes    int64
	// TaskDepths holds the tuned per-task windows when this point came
	// from TunePerTaskDepth (nil for uniform points). Depth then records
	// the deepest window.
	TaskDepths map[string]int

	// Feasible reports that segmentation and SRAM provisioning succeeded;
	// Reason holds the first failure otherwise.
	Feasible bool
	Reason   string
	// Schedulable is the RTA verdict at nominal rates.
	Schedulable bool
	// Alpha is the breakdown factor: the largest period-compression the
	// analysis still certifies (> 1 means guaranteed headroom). Zero when
	// the point is infeasible or unschedulable.
	Alpha float64
	// SlackNs is the minimum D − R over tasks when schedulable.
	SlackNs int64
}

// Policy reconstructs the scheduling policy this point was evaluated with.
func (p Point) Policy() core.Policy {
	var pol core.Policy
	if p.TaskDepths != nil {
		pol = core.RTMDMPerTaskDepth(p.TaskDepths)
	} else {
		pol = core.RTMDMDepth(p.Depth)
	}
	pol.MaxSegNs = p.GranularityNs
	pol.ChunkBytes = p.ChunkBytes
	return pol
}

// dominatedBy reports whether q is at least as good on both objectives
// (staging cost down, timing margin up) and strictly better on one. Only
// schedulable points participate in domination.
func (p Point) dominatedBy(q Point) bool {
	if !p.Schedulable || !q.Schedulable {
		return false
	}
	if q.StagingBytes > p.StagingBytes || q.Alpha < p.Alpha {
		return false
	}
	return q.StagingBytes < p.StagingBytes || q.Alpha > p.Alpha
}

// Result is a completed exploration.
type Result struct {
	// Points holds every grid point in deterministic axis order
	// (staging, depth, granularity, chunk).
	Points []Point
	// Frontier is the Pareto-optimal subset of schedulable points:
	// no other point provides ≥ margin at ≤ staging cost. Sorted by
	// staging size ascending (and therefore Alpha ascending).
	Frontier []Point
}

// Schedulable returns the number of schedulable grid points.
func (r *Result) Schedulable() int {
	n := 0
	for _, p := range r.Points {
		if p.Schedulable {
			n++
		}
	}
	return n
}

// Recommend picks the deployment configuration: the cheapest (smallest
// staging partition) frontier point whose breakdown factor meets minAlpha.
// If none does, it falls back to the highest-margin frontier point. The
// second return is false when nothing on the grid is schedulable.
func (r *Result) Recommend(minAlpha float64) (Point, bool) {
	if len(r.Frontier) == 0 {
		return Point{}, false
	}
	for _, p := range r.Frontier {
		if p.Alpha >= minAlpha {
			return p, true
		}
	}
	return r.Frontier[len(r.Frontier)-1], true
}

// Explore evaluates the full knob grid for one workload on one platform.
// The workload is policy-independent (models and periods); each point
// re-segments it under its own δ and staging budget, so the comparison is
// the one a hardware designer actually faces.
func Explore(spec workload.SetSpec, plat cost.Platform, k Knobs) (*Result, error) {
	if err := k.validate(plat); err != nil {
		return nil, err
	}
	if len(spec.Tasks) == 0 {
		return nil, fmt.Errorf("dse: empty workload spec")
	}
	grid := make([]Point, 0, len(k.StagingBytes)*(len(k.Depths)+1)*len(k.GranularityNs)*len(k.ChunkBytes))
	for _, sb := range k.StagingBytes {
		for _, d := range k.Depths {
			for _, g := range k.GranularityNs {
				for _, c := range k.ChunkBytes {
					grid = append(grid, Point{
						StagingBytes: sb, Depth: d,
						GranularityNs: g, ChunkBytes: c,
					})
				}
			}
		}
		if k.TunePerTaskDepth {
			for _, g := range k.GranularityNs {
				for _, c := range k.ChunkBytes {
					grid = append(grid, Point{
						StagingBytes: sb, Depth: 0, // tuned marker until evaluation
						GranularityNs: g, ChunkBytes: c,
						TaskDepths: map[string]int{},
					})
				}
			}
		}
	}
	// Evaluate concurrently into indexed slots: deterministic output
	// regardless of scheduling.
	workers := runtime.GOMAXPROCS(0)
	if workers > len(grid) {
		workers = len(grid)
	}
	ins := instr.Load()
	var wg sync.WaitGroup
	var done atomic.Int64
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				grid[i] = safeEvaluate(spec, plat, grid[i])
				ins.explored.Add(1)
				switch {
				case grid[i].Schedulable:
					ins.schedulable.Add(1)
				case grid[i].Feasible:
					ins.unschedulable.Add(1)
				default:
					ins.infeasible.Add(1)
				}
				if k.Progress != nil {
					k.Progress(int(done.Add(1)), len(grid))
				}
			}
		}()
	}
	for i := range grid {
		next <- i
	}
	close(next)
	wg.Wait()
	return &Result{Points: grid, Frontier: frontier(grid)}, nil
}

// evalPoint is the per-point evaluator, indirected so tests can inject a
// pathological one.
var evalPoint = evaluate

// safeEvaluate shields the exploration from a panicking grid point: one
// degenerate configuration (however it breaks the pipeline) becomes an
// infeasible point with the panic as its Reason instead of killing the whole
// exploration and every sibling worker.
func safeEvaluate(spec workload.SetSpec, plat cost.Platform, pt Point) (out Point) {
	defer func() {
		if r := recover(); r != nil {
			instr.Load().panicked.Add(1)
			out = pt
			out.Feasible = false
			out.Schedulable = false
			out.Alpha = 0
			out.Reason = fmt.Sprintf("panic: %v", r)
		}
	}()
	return evalPoint(spec, plat, pt)
}

// evaluate runs the offline pipeline for one configuration. Tuned points
// (TaskDepths non-nil) first search the per-task window lattice on a
// uniform depth-2 segmentation of this point's δ/staging budget.
func evaluate(spec workload.SetSpec, plat cost.Platform, pt Point) Point {
	plat.WeightBufBytes = pt.StagingBytes
	if pt.TaskDepths != nil {
		return evaluateTuned(spec, plat, pt)
	}
	pol := pt.Policy()
	s, err := spec.Instantiate(plat, pol)
	if err != nil {
		pt.Reason = fmt.Sprintf("segmentation: %v", err)
		return pt
	}
	if err := core.Provision(s, plat, pol); err != nil {
		pt.Reason = fmt.Sprintf("provisioning: %v", err)
		return pt
	}
	pt.Feasible = true
	test, err := analysis.ForPolicy(pol)
	if err != nil {
		pt.Reason = fmt.Sprintf("analysis: %v", err)
		return pt
	}
	v := test(s, plat)
	if !v.Schedulable {
		pt.Reason = v.Reason
		return pt
	}
	pt.Schedulable = true
	slack := sim.Duration(1<<63 - 1)
	for _, t := range s.Tasks {
		if d := t.Deadline - v.WCRT[t.Name]; d < slack {
			slack = d
		}
	}
	pt.SlackNs = int64(slack)
	pt.Alpha = analysis.BreakdownFactor(s, plat, test, 0.02)
	return pt
}

// evaluateTuned brute-forces per-task windows over {1..4}ⁿ on a uniform
// depth-2 segmentation, keeping the accepted assignment with the largest
// worst-case slack (least staging as the tie-break), then scores it with
// the breakdown factor like any other point.
func evaluateTuned(spec workload.SetSpec, plat cost.Platform, pt Point) Point {
	base := core.RTMDM()
	base.MaxSegNs = pt.GranularityNs
	base.ChunkBytes = pt.ChunkBytes
	s, err := spec.Instantiate(plat, base)
	if err != nil {
		pt.Reason = fmt.Sprintf("segmentation: %v", err)
		return pt
	}
	pt.Feasible = true
	var best map[string]int
	var bestSlack sim.Duration
	var bestStaging int64
	assign := make([]int, len(s.Tasks))
	var walk func(int)
	walk = func(i int) {
		if i == len(s.Tasks) {
			depths := make(map[string]int, len(s.Tasks))
			var staging int64
			for k, tk := range s.Tasks {
				depths[tk.Name] = assign[k]
				d := assign[k]
				if d > tk.NumSegments() {
					d = tk.NumSegments()
				}
				staging += int64(d) * tk.Plan.MaxLoadBytes()
			}
			pol := core.RTMDMPerTaskDepth(depths)
			pol.MaxSegNs = pt.GranularityNs
			pol.ChunkBytes = pt.ChunkBytes
			if core.Provision(s, plat, pol) != nil {
				return
			}
			test, err := analysis.ForPolicy(pol)
			if err != nil {
				return
			}
			v := test(s, plat)
			if !v.Schedulable {
				return
			}
			slack := sim.Duration(1<<63 - 1)
			for _, tk := range s.Tasks {
				if d := tk.Deadline - v.WCRT[tk.Name]; d < slack {
					slack = d
				}
			}
			if best == nil || slack > bestSlack ||
				(slack == bestSlack && staging < bestStaging) {
				best, bestSlack, bestStaging = depths, slack, staging
			}
			return
		}
		for d := 1; d <= 4; d++ {
			assign[i] = d
			walk(i + 1)
		}
	}
	walk(0)
	if best == nil {
		pt.Reason = "no accepted per-task window assignment"
		return pt
	}
	pt.TaskDepths = best
	for _, d := range best {
		if d > pt.Depth {
			pt.Depth = d
		}
	}
	pt.Schedulable = true
	pt.SlackNs = int64(bestSlack)
	pol := pt.Policy()
	test, _ := analysis.ForPolicy(pol)
	pt.Alpha = analysis.BreakdownFactor(s, plat, test, 0.02)
	return pt
}

// frontier extracts the Pareto-optimal schedulable points, sorted by
// staging size. Within one staging size only the highest-margin point
// survives; across sizes, a larger partition must buy strictly more margin
// to stay on the frontier.
func frontier(points []Point) []Point {
	sched := make([]Point, 0, len(points))
	for _, p := range points {
		if p.Schedulable {
			sched = append(sched, p)
		}
	}
	sort.Slice(sched, func(i, j int) bool {
		if sched[i].StagingBytes != sched[j].StagingBytes {
			return sched[i].StagingBytes < sched[j].StagingBytes
		}
		return sched[i].Alpha > sched[j].Alpha
	})
	var front []Point
	bestAlpha := -1.0
	for _, p := range sched {
		if len(front) > 0 && front[len(front)-1].StagingBytes == p.StagingBytes {
			continue // only the best point per staging size
		}
		if p.Alpha > bestAlpha {
			front = append(front, p)
			bestAlpha = p.Alpha
		}
	}
	return front
}
