package nn

import (
	"fmt"
	"math"
)

// MaxPool2D is a spatial max-pooling operator.
type MaxPool2D struct {
	base
	K, Stride int
	Pad       Padding
}

// NewMaxPool2D constructs a max-pool layer. Output quantization equals the
// input quantization (max is order-preserving).
func NewMaxPool2D(name string, in Shape, k, stride int, pad Padding, q QuantParams) *MaxPool2D {
	out := Shape{convOutDim(in.H, k, stride, pad), convOutDim(in.W, k, stride, pad), in.C}
	if !out.Valid() {
		panic(fmt.Sprintf("nn: maxpool %s produces invalid shape %v from %v", name, out, in))
	}
	return &MaxPool2D{
		base: base{name: name, kind: KindMaxPool, in: in, out: out, outQuant: q},
		K:    k, Stride: stride, Pad: pad,
	}
}

func (l *MaxPool2D) ParamBytes() int64 { return 0 }

// MACs reports the comparison count as the op count.
func (l *MaxPool2D) MACs() int64 {
	return int64(l.out.Elems()) * int64(l.K) * int64(l.K)
}

func (l *MaxPool2D) Forward(ins ...*Tensor) *Tensor {
	checkInput(l, ins)
	x := ins[0]
	out := NewTensor(l.out, l.outQuant)
	ph := padBefore(l.in.H, l.K, l.Stride, l.Pad)
	pw := padBefore(l.in.W, l.K, l.Stride, l.Pad)
	for oh := 0; oh < l.out.H; oh++ {
		for ow := 0; ow < l.out.W; ow++ {
			for c := 0; c < l.out.C; c++ {
				best := int8(-128)
				seen := false
				for kh := 0; kh < l.K; kh++ {
					ih := oh*l.Stride + kh - ph
					if ih < 0 || ih >= l.in.H {
						continue
					}
					for kw := 0; kw < l.K; kw++ {
						iw := ow*l.Stride + kw - pw
						if iw < 0 || iw >= l.in.W {
							continue
						}
						if v := x.At(ih, iw, c); !seen || v > best {
							best = v
							seen = true
						}
					}
				}
				out.Set(oh, ow, c, best)
			}
		}
	}
	return out
}

// GlobalAvgPool averages each channel over the full spatial extent.
type GlobalAvgPool struct {
	base
	InQuant QuantParams
}

// NewGlobalAvgPool constructs a global average pooling layer.
func NewGlobalAvgPool(name string, in Shape, inQ, outQ QuantParams) *GlobalAvgPool {
	return &GlobalAvgPool{
		base:    base{name: name, kind: KindAvgPool, in: in, out: Shape{1, 1, in.C}, outQuant: outQ},
		InQuant: inQ,
	}
}

func (l *GlobalAvgPool) ParamBytes() int64 { return 0 }
func (l *GlobalAvgPool) MACs() int64       { return int64(l.in.Elems()) }

func (l *GlobalAvgPool) Forward(ins ...*Tensor) *Tensor {
	checkInput(l, ins)
	x := ins[0]
	out := NewTensor(l.out, l.outQuant)
	n := l.in.H * l.in.W
	for c := 0; c < l.in.C; c++ {
		var sum int32
		for h := 0; h < l.in.H; h++ {
			for w := 0; w < l.in.W; w++ {
				sum += int32(x.At(h, w, c)) - l.InQuant.Zero
			}
		}
		mean := l.InQuant.Scale * float64(sum) / float64(n)
		out.Data[c] = l.outQuant.Quant(mean)
	}
	return out
}

// Add is an element-wise residual addition of two tensors with (possibly)
// different quantizations.
type Add struct {
	base
	AQuant, BQuant QuantParams
	ReLU           bool
}

// NewAdd constructs a residual add; both inputs must share the shape.
func NewAdd(name string, in Shape, aQ, bQ, outQ QuantParams, relu bool) *Add {
	return &Add{
		base:   base{name: name, kind: KindAdd, in: in, out: in, outQuant: outQ},
		AQuant: aQ, BQuant: bQ, ReLU: relu,
	}
}

func (l *Add) Arity() int        { return 2 }
func (l *Add) ParamBytes() int64 { return 0 }
func (l *Add) MACs() int64       { return int64(l.in.Elems()) }

func (l *Add) Forward(ins ...*Tensor) *Tensor {
	checkInput(l, ins)
	a, b := ins[0], ins[1]
	if b.Shape != l.in {
		panic(fmt.Sprintf("nn: add %s second input %v, want %v", l.name, b.Shape, l.in))
	}
	out := NewTensor(l.out, l.outQuant)
	for i := range a.Data {
		r := l.AQuant.Dequant(a.Data[i]) + l.BQuant.Dequant(b.Data[i])
		if l.ReLU && r < 0 {
			r = 0
		}
		out.Data[i] = l.outQuant.Quant(r)
	}
	return out
}

// ReLULayer is a standalone rectifier for graphs that do not fuse it.
type ReLULayer struct {
	base
	InQuant QuantParams
}

// NewReLU constructs a standalone ReLU; output quant equals input quant.
func NewReLU(name string, in Shape, q QuantParams) *ReLULayer {
	return &ReLULayer{
		base:    base{name: name, kind: KindReLU, in: in, out: in, outQuant: q},
		InQuant: q,
	}
}

func (l *ReLULayer) ParamBytes() int64 { return 0 }
func (l *ReLULayer) MACs() int64       { return int64(l.in.Elems()) }

func (l *ReLULayer) Forward(ins ...*Tensor) *Tensor {
	checkInput(l, ins)
	x := ins[0]
	out := NewTensor(l.out, l.outQuant)
	z := satInt8(l.InQuant.Zero)
	for i, v := range x.Data {
		if v < z {
			v = z
		}
		out.Data[i] = v
	}
	return out
}

// Softmax produces a quantized probability vector; the output uses the
// conventional scale 1/256 with zero point -128.
type Softmax struct {
	base
	InQuant QuantParams
}

// SoftmaxQuant is the fixed output quantization of Softmax.
var SoftmaxQuant = QuantParams{Scale: 1.0 / 256.0, Zero: -128}

// NewSoftmax constructs a softmax over the channel dimension of a 1x1xC
// input.
func NewSoftmax(name string, in Shape, inQ QuantParams) *Softmax {
	if in.H != 1 || in.W != 1 {
		panic(fmt.Sprintf("nn: softmax %s needs 1x1xC input, got %v", name, in))
	}
	return &Softmax{
		base:    base{name: name, kind: KindSoftmax, in: in, out: in, outQuant: SoftmaxQuant},
		InQuant: inQ,
	}
}

func (l *Softmax) ParamBytes() int64 { return 0 }
func (l *Softmax) MACs() int64       { return int64(l.in.Elems()) * 4 } // exp approx cost

func (l *Softmax) Forward(ins ...*Tensor) *Tensor {
	checkInput(l, ins)
	x := ins[0]
	out := NewTensor(l.out, l.outQuant)
	maxV := math.Inf(-1)
	vals := make([]float64, len(x.Data))
	for i, v := range x.Data {
		vals[i] = l.InQuant.Dequant(v)
		if vals[i] > maxV {
			maxV = vals[i]
		}
	}
	var sum float64
	for i := range vals {
		vals[i] = math.Exp(vals[i] - maxV)
		sum += vals[i]
	}
	for i := range vals {
		out.Data[i] = l.outQuant.Quant(vals[i] / sum)
	}
	return out
}

// Flatten reshapes HxWxC to 1x1x(H*W*C) without touching data.
type Flatten struct {
	base
}

// NewFlatten constructs a flattening reshape.
func NewFlatten(name string, in Shape, q QuantParams) *Flatten {
	return &Flatten{
		base: base{name: name, kind: KindFlatten, in: in, out: Shape{1, 1, in.Elems()}, outQuant: q},
	}
}

func (l *Flatten) ParamBytes() int64 { return 0 }
func (l *Flatten) MACs() int64       { return 0 }

func (l *Flatten) Forward(ins ...*Tensor) *Tensor {
	checkInput(l, ins)
	out := NewTensor(l.out, l.outQuant)
	copy(out.Data, ins[0].Data)
	return out
}
