package nn

import "fmt"

// AvgPool2D is a windowed spatial average pooling operator.
type AvgPool2D struct {
	base
	K, Stride int
	Pad       Padding
	InQuant   QuantParams
}

// NewAvgPool2D constructs a windowed average pooling layer.
func NewAvgPool2D(name string, in Shape, k, stride int, pad Padding, inQ, outQ QuantParams) *AvgPool2D {
	out := Shape{convOutDim(in.H, k, stride, pad), convOutDim(in.W, k, stride, pad), in.C}
	if !out.Valid() {
		panic(fmt.Sprintf("nn: avgpool %s produces invalid shape %v from %v", name, out, in))
	}
	return &AvgPool2D{
		base: base{name: name, kind: KindAvgPool, in: in, out: out, outQuant: outQ},
		K:    k, Stride: stride, Pad: pad, InQuant: inQ,
	}
}

func (l *AvgPool2D) ParamBytes() int64 { return 0 }
func (l *AvgPool2D) MACs() int64 {
	return int64(l.out.Elems()) * int64(l.K) * int64(l.K)
}

func (l *AvgPool2D) Forward(ins ...*Tensor) *Tensor {
	checkInput(l, ins)
	x := ins[0]
	out := NewTensor(l.out, l.outQuant)
	ph := padBefore(l.in.H, l.K, l.Stride, l.Pad)
	pw := padBefore(l.in.W, l.K, l.Stride, l.Pad)
	for oh := 0; oh < l.out.H; oh++ {
		for ow := 0; ow < l.out.W; ow++ {
			for c := 0; c < l.out.C; c++ {
				var sum, n int32
				for kh := 0; kh < l.K; kh++ {
					ih := oh*l.Stride + kh - ph
					if ih < 0 || ih >= l.in.H {
						continue
					}
					for kw := 0; kw < l.K; kw++ {
						iw := ow*l.Stride + kw - pw
						if iw < 0 || iw >= l.in.W {
							continue
						}
						sum += int32(x.At(ih, iw, c)) - l.InQuant.Zero
						n++
					}
				}
				var mean float64
				if n > 0 {
					mean = l.InQuant.Scale * float64(sum) / float64(n)
				}
				out.Set(oh, ow, c, l.outQuant.Quant(mean))
			}
		}
	}
	return out
}

// Concat joins two tensors along the channel dimension, requantizing both
// into the output domain.
type Concat struct {
	base
	AQuant, BQuant QuantParams
	BShape         Shape
}

// NewConcat constructs a channel concatenation; spatial dims must match.
func NewConcat(name string, a, b Shape, aQ, bQ, outQ QuantParams) *Concat {
	if a.H != b.H || a.W != b.W {
		panic(fmt.Sprintf("nn: concat %s spatial mismatch %v vs %v", name, a, b))
	}
	out := Shape{a.H, a.W, a.C + b.C}
	return &Concat{
		base:   base{name: name, kind: KindConcat, in: a, out: out, outQuant: outQ},
		AQuant: aQ, BQuant: bQ, BShape: b,
	}
}

func (l *Concat) Arity() int        { return 2 }
func (l *Concat) ParamBytes() int64 { return 0 }
func (l *Concat) MACs() int64       { return int64(l.out.Elems()) }

func (l *Concat) Forward(ins ...*Tensor) *Tensor {
	checkInput(l, ins)
	a, b := ins[0], ins[1]
	if b.Shape != l.BShape {
		panic(fmt.Sprintf("nn: concat %s second input %v, want %v", l.name, b.Shape, l.BShape))
	}
	out := NewTensor(l.out, l.outQuant)
	for h := 0; h < l.out.H; h++ {
		for w := 0; w < l.out.W; w++ {
			for c := 0; c < l.in.C; c++ {
				out.Set(h, w, c, l.outQuant.Quant(l.AQuant.Dequant(a.At(h, w, c))))
			}
			for c := 0; c < l.BShape.C; c++ {
				out.Set(h, w, l.in.C+c, l.outQuant.Quant(l.BQuant.Dequant(b.At(h, w, c))))
			}
		}
	}
	return out
}

// ZeroPad2D pads the spatial dimensions with the quantization zero point.
type ZeroPad2D struct {
	base
	Top, Bottom, Left, Right int
}

// NewZeroPad2D constructs an explicit spatial padding layer (output quant
// equals input quant).
func NewZeroPad2D(name string, in Shape, top, bottom, left, right int, q QuantParams) *ZeroPad2D {
	if top < 0 || bottom < 0 || left < 0 || right < 0 {
		panic(fmt.Sprintf("nn: zeropad %s negative padding", name))
	}
	out := Shape{in.H + top + bottom, in.W + left + right, in.C}
	return &ZeroPad2D{
		base: base{name: name, kind: KindPad, in: in, out: out, outQuant: q},
		Top:  top, Bottom: bottom, Left: left, Right: right,
	}
}

func (l *ZeroPad2D) ParamBytes() int64 { return 0 }
func (l *ZeroPad2D) MACs() int64       { return int64(l.out.Elems()) }

func (l *ZeroPad2D) Forward(ins ...*Tensor) *Tensor {
	checkInput(l, ins)
	x := ins[0]
	out := NewTensor(l.out, l.outQuant)
	z := satInt8(l.outQuant.Zero)
	for i := range out.Data {
		out.Data[i] = z
	}
	for h := 0; h < l.in.H; h++ {
		for w := 0; w < l.in.W; w++ {
			for c := 0; c < l.in.C; c++ {
				out.Set(h+l.Top, w+l.Left, c, x.At(h, w, c))
			}
		}
	}
	return out
}
