package nn

import "fmt"

// Node is one vertex of a model graph: a layer plus the indices of the
// nodes producing its inputs. An input index of -1 denotes the model input.
type Node struct {
	Layer  Layer
	Inputs []int
}

// Model is a directed acyclic graph of layers in topological order: node i
// may only consume outputs of nodes j < i (or the model input).
type Model struct {
	Name    string
	Input   Shape
	InQuant QuantParams
	Nodes   []Node
	// Output is the index of the node whose tensor is the model output.
	Output int
}

// Validate checks the structural invariants of the graph: topological input
// references, arity, and shape agreement along every edge.
func (m *Model) Validate() error {
	if !m.Input.Valid() {
		return fmt.Errorf("nn: model %s: invalid input shape %v", m.Name, m.Input)
	}
	if len(m.Nodes) == 0 {
		return fmt.Errorf("nn: model %s: empty graph", m.Name)
	}
	if m.Output < 0 || m.Output >= len(m.Nodes) {
		return fmt.Errorf("nn: model %s: output index %d out of range", m.Name, m.Output)
	}
	names := make(map[string]bool, len(m.Nodes))
	for i, n := range m.Nodes {
		l := n.Layer
		if l == nil {
			return fmt.Errorf("nn: model %s: node %d has nil layer", m.Name, i)
		}
		if names[l.Name()] {
			return fmt.Errorf("nn: model %s: duplicate layer name %q", m.Name, l.Name())
		}
		names[l.Name()] = true
		if len(n.Inputs) != l.Arity() {
			return fmt.Errorf("nn: model %s: node %d (%s) has %d inputs, arity %d",
				m.Name, i, l.Name(), len(n.Inputs), l.Arity())
		}
		for _, in := range n.Inputs {
			if in < -1 || in >= i {
				return fmt.Errorf("nn: model %s: node %d (%s) references input %d (not topological)",
					m.Name, i, l.Name(), in)
			}
			var s Shape
			if in == -1 {
				s = m.Input
			} else {
				s = m.Nodes[in].Layer.OutShape()
			}
			// Only the primary input shape is checked statically; binary
			// ops verify secondary inputs at Forward time.
			if n.Inputs[0] == in && s != l.InShape() {
				return fmt.Errorf("nn: model %s: node %d (%s) input shape %v, want %v",
					m.Name, i, l.Name(), s, l.InShape())
			}
		}
	}
	return nil
}

// OutShape returns the model's output tensor shape.
func (m *Model) OutShape() Shape { return m.Nodes[m.Output].Layer.OutShape() }

// TotalParamBytes sums parameter bytes over all layers: the total volume
// that must be staged from external memory per inference.
func (m *Model) TotalParamBytes() int64 {
	var n int64
	for _, nd := range m.Nodes {
		n += nd.Layer.ParamBytes()
	}
	return n
}

// TotalMACs sums MAC counts over all layers.
func (m *Model) TotalMACs() int64 {
	var n int64
	for _, nd := range m.Nodes {
		n += nd.Layer.MACs()
	}
	return n
}

// NumLayers returns the layer count.
func (m *Model) NumLayers() int { return len(m.Nodes) }

// PeakActivationBytes computes the exact peak of live activation bytes when
// nodes execute in graph order and tensors die after their last consumer.
// The model input is live from the start; the output stays live to the end.
func (m *Model) PeakActivationBytes() int64 {
	lastUse := make([]int, len(m.Nodes)+1)  // +1 slot for model input at index 0-shifted
	idx := func(i int) int { return i + 1 } // -1 → 0
	lastUse[idx(m.Output)] = len(m.Nodes)
	for i, n := range m.Nodes {
		for _, in := range n.Inputs {
			if i > lastUse[idx(in)] {
				lastUse[idx(in)] = i
			}
		}
	}
	size := func(i int) int64 {
		if i == -1 {
			return int64(m.Input.Elems())
		}
		return int64(m.Nodes[i].Layer.OutShape().Elems())
	}
	var peak int64
	live := size(-1)
	for i := range m.Nodes {
		live += size(i) // output of node i materializes during its execution
		if live > peak {
			peak = live
		}
		for j := -1; j < i; j++ {
			if lastUse[idx(j)] == i {
				live -= size(j)
			}
		}
	}
	return peak
}

// LiveBytesAfter returns the bytes of activation tensors that are still
// live after node `node` has executed: outputs of nodes ≤ node (and the
// model input) that some node > node still consumes, plus the model output
// once produced. It is the state a preempted job must keep resident when
// paused at the boundary after `node`.
func (m *Model) LiveBytesAfter(node int) int64 {
	if node < 0 || node >= len(m.Nodes) {
		return 0
	}
	size := func(i int) int64 {
		if i == -1 {
			return int64(m.Input.Elems())
		}
		return int64(m.Nodes[i].Layer.OutShape().Elems())
	}
	var live int64
	for src := -1; src <= node; src++ {
		needed := src == m.Output && src <= node
		for i := node + 1; i < len(m.Nodes) && !needed; i++ {
			for _, in := range m.Nodes[i].Inputs {
				if in == src {
					needed = true
					break
				}
			}
		}
		if needed {
			live += size(src)
		}
	}
	return live
}

// LiveBytesDuring returns the activation bytes resident while node `node`
// executes: everything live after node-1 plus the output being produced.
func (m *Model) LiveBytesDuring(node int) int64 {
	if node < 0 || node >= len(m.Nodes) {
		return 0
	}
	var prev int64
	if node == 0 {
		prev = int64(m.Input.Elems())
	} else {
		prev = m.LiveBytesAfter(node - 1)
	}
	return prev + int64(m.Nodes[node].Layer.OutShape().Elems())
}

// Forward runs the whole graph on one input tensor.
func (m *Model) Forward(input *Tensor) *Tensor {
	if input.Shape != m.Input {
		panic(fmt.Sprintf("nn: model %s input %v, want %v", m.Name, input.Shape, m.Input))
	}
	outs := make([]*Tensor, len(m.Nodes))
	get := func(i int) *Tensor {
		if i == -1 {
			return input
		}
		return outs[i]
	}
	for i, n := range m.Nodes {
		ins := make([]*Tensor, len(n.Inputs))
		for k, in := range n.Inputs {
			ins[k] = get(in)
		}
		outs[i] = n.Layer.Forward(ins...)
	}
	return outs[m.Output]
}

// Builder incrementally assembles a Model as a chain with optional skips.
type Builder struct {
	m    *Model
	last int
}

// NewBuilder starts a model with the given input description.
func NewBuilder(name string, input Shape, inQuant QuantParams) *Builder {
	return &Builder{
		m:    &Model{Name: name, Input: input, InQuant: inQuant},
		last: -1,
	}
}

// Last returns the index of the most recently added node (-1 if none; that
// value also denotes the model input when used as an input reference).
func (b *Builder) Last() int { return b.last }

// LastShape returns the output shape of the most recent node, or the model
// input shape if no node has been added.
func (b *Builder) LastShape() Shape {
	if b.last == -1 {
		return b.m.Input
	}
	return b.m.Nodes[b.last].Layer.OutShape()
}

// LastQuant returns the output quantization of the most recent node, or the
// model input quantization.
func (b *Builder) LastQuant() QuantParams {
	if b.last == -1 {
		return b.m.InQuant
	}
	return b.m.Nodes[b.last].Layer.OutQuant()
}

// NodeShape returns the output shape of node i; i == -1 denotes the model
// input.
func (b *Builder) NodeShape(i int) Shape {
	if i == -1 {
		return b.m.Input
	}
	return b.m.Nodes[i].Layer.OutShape()
}

// NodeQuant returns the output quantization of node i; i == -1 denotes the
// model input.
func (b *Builder) NodeQuant(i int) QuantParams {
	if i == -1 {
		return b.m.InQuant
	}
	return b.m.Nodes[i].Layer.OutQuant()
}

// Add appends a layer consuming the given inputs; with no inputs it chains
// from the previous node. It returns the new node's index.
func (b *Builder) Add(l Layer, inputs ...int) int {
	if len(inputs) == 0 {
		inputs = []int{b.last}
	}
	b.m.Nodes = append(b.m.Nodes, Node{Layer: l, Inputs: inputs})
	b.last = len(b.m.Nodes) - 1
	return b.last
}

// Build finalizes the model, validating it. The output defaults to the last
// node.
func (b *Builder) Build() (*Model, error) {
	b.m.Output = b.last
	if err := b.m.Validate(); err != nil {
		return nil, err
	}
	return b.m, nil
}

// MustBuild is Build that panics on error, for static model definitions.
func (b *Builder) MustBuild() *Model {
	m, err := b.Build()
	if err != nil {
		panic(err)
	}
	return m
}
