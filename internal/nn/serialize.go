package nn

// Binary model serialization. Real MCU deployments ship models as flat
// binary artifacts consumed straight from flash; this file defines the
// repository's equivalent: a little-endian, CRC-protected format holding
// the full graph — topology, quantization, weights — such that a loaded
// model is bit-for-bit equivalent to the original (round-trip property in
// serialize_test.go).
//
// Layout:
//
//	magic "RTMDM1\n" | format version u32
//	model name | input shape | input quant
//	node count u32, then per node: kind u32, layer payload
//	output index u32
//	crc32 (IEEE) of everything after the magic
import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

var magic = []byte("RTMDM1\n")

const formatVersion = 1

type writer struct {
	buf bytes.Buffer
	err error
}

func (w *writer) u32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	w.buf.Write(b[:])
}
func (w *writer) i32(v int32) { w.u32(uint32(v)) }
func (w *writer) i(v int)     { w.i32(int32(v)) }
func (w *writer) b(v bool) {
	if v {
		w.buf.WriteByte(1)
	} else {
		w.buf.WriteByte(0)
	}
}
func (w *writer) f64(v float64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
	w.buf.Write(b[:])
}
func (w *writer) str(s string) {
	w.u32(uint32(len(s)))
	w.buf.WriteString(s)
}
func (w *writer) i8s(v []int8) {
	w.u32(uint32(len(v)))
	for _, x := range v {
		w.buf.WriteByte(byte(x))
	}
}
func (w *writer) i32s(v []int32) {
	w.u32(uint32(len(v)))
	for _, x := range v {
		w.i32(x)
	}
}
func (w *writer) f64s(v []float64) {
	w.u32(uint32(len(v)))
	for _, x := range v {
		w.f64(x)
	}
}
func (w *writer) shape(s Shape)       { w.i(s.H); w.i(s.W); w.i(s.C) }
func (w *writer) quant(q QuantParams) { w.f64(q.Scale); w.i32(q.Zero) }

type reader struct {
	data []byte
	pos  int
	err  error
}

func (r *reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("nn: decode: "+format, args...)
	}
}
func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.pos+n > len(r.data) {
		r.fail("truncated at offset %d (+%d)", r.pos, n)
		return nil
	}
	b := r.data[r.pos : r.pos+n]
	r.pos += n
	return b
}
func (r *reader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}
func (r *reader) i32() int32 { return int32(r.u32()) }
func (r *reader) i() int     { return int(r.i32()) }
func (r *reader) b() bool {
	b := r.take(1)
	return b != nil && b[0] != 0
}
func (r *reader) f64() float64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}
func (r *reader) str() string {
	n := r.u32()
	if n > 1<<20 {
		r.fail("string length %d", n)
		return ""
	}
	return string(r.take(int(n)))
}
func (r *reader) i8s() []int8 {
	n := r.u32()
	if r.err != nil || n > 1<<28 {
		r.fail("i8 slice length %d", n)
		return nil
	}
	b := r.take(int(n))
	out := make([]int8, len(b))
	for i, x := range b {
		out[i] = int8(x)
	}
	return out
}
func (r *reader) i32s() []int32 {
	n := r.u32()
	if r.err != nil || n > 1<<26 {
		r.fail("i32 slice length %d", n)
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = r.i32()
	}
	return out
}
func (r *reader) f64s() []float64 {
	n := r.u32()
	if r.err != nil || n > 1<<24 {
		r.fail("f64 slice length %d", n)
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = r.f64()
	}
	return out
}
func (r *reader) shape() Shape       { return Shape{H: r.i(), W: r.i(), C: r.i()} }
func (r *reader) quant() QuantParams { return QuantParams{Scale: r.f64(), Zero: r.i32()} }

// Save writes the model to w in the binary format.
func (m *Model) Save(out io.Writer) error {
	if err := m.Validate(); err != nil {
		return err
	}
	w := &writer{}
	w.str(m.Name)
	w.shape(m.Input)
	w.quant(m.InQuant)
	w.u32(uint32(len(m.Nodes)))
	for _, nd := range m.Nodes {
		ins := make([]int32, len(nd.Inputs))
		for i, v := range nd.Inputs {
			ins[i] = int32(v)
		}
		w.u32(uint32(nd.Layer.Kind()))
		w.i32s(ins)
		if err := encodeLayer(w, nd.Layer); err != nil {
			return err
		}
	}
	w.u32(uint32(m.Output))

	payload := w.buf.Bytes()
	if _, err := out.Write(magic); err != nil {
		return err
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], formatVersion)
	if _, err := out.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := out.Write(payload); err != nil {
		return err
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload))
	_, err := out.Write(crc[:])
	return err
}

func encodeLayer(w *writer, l Layer) error {
	w.str(l.Name())
	switch t := l.(type) {
	case *Conv2D:
		w.shape(t.InShape())
		w.i(t.OutShape().C)
		w.i(t.KH)
		w.i(t.KW)
		w.i(t.Stride)
		w.i(int(t.Pad))
		w.quant(t.InQuant)
		w.quant(t.WQuant)
		w.quant(t.OutQuant())
		w.b(t.WScales != nil)
		if t.WScales != nil {
			w.f64s(t.WScales)
		}
		w.i8s(t.Weights)
		w.i32s(t.Bias)
		w.b(t.ReLU)
	case *DWConv2D:
		w.shape(t.InShape())
		w.i(t.KH)
		w.i(t.KW)
		w.i(t.Stride)
		w.i(int(t.Pad))
		w.quant(t.InQuant)
		w.quant(t.WQuant)
		w.quant(t.OutQuant())
		w.i8s(t.Weights)
		w.i32s(t.Bias)
		w.b(t.ReLU)
	case *Dense:
		w.shape(t.InShape())
		w.i(t.OutShape().C)
		w.quant(t.InQuant)
		w.quant(t.WQuant)
		w.quant(t.OutQuant())
		w.i8s(t.Weights)
		w.i32s(t.Bias)
		w.b(t.ReLU)
	case *MaxPool2D:
		w.shape(t.InShape())
		w.i(t.K)
		w.i(t.Stride)
		w.i(int(t.Pad))
		w.quant(t.OutQuant())
	case *AvgPool2D:
		w.shape(t.InShape())
		w.i(t.K)
		w.i(t.Stride)
		w.i(int(t.Pad))
		w.quant(t.InQuant)
		w.quant(t.OutQuant())
	case *GlobalAvgPool:
		w.shape(t.InShape())
		w.i(0) // window 0 marks the global variant (see decodeLayer)
		w.i(0)
		w.i(0)
		w.quant(t.InQuant)
		w.quant(t.OutQuant())
	case *Add:
		w.shape(t.InShape())
		w.quant(t.AQuant)
		w.quant(t.BQuant)
		w.quant(t.OutQuant())
		w.b(t.ReLU)
	case *Concat:
		w.shape(t.InShape())
		w.shape(t.BShape)
		w.quant(t.AQuant)
		w.quant(t.BQuant)
		w.quant(t.OutQuant())
	case *ZeroPad2D:
		w.shape(t.InShape())
		w.i(t.Top)
		w.i(t.Bottom)
		w.i(t.Left)
		w.i(t.Right)
		w.quant(t.OutQuant())
	case *ReLULayer:
		w.shape(t.InShape())
		w.quant(t.OutQuant())
	case *Softmax:
		w.shape(t.InShape())
		w.quant(t.InQuant)
	case *Flatten:
		w.shape(t.InShape())
		w.quant(t.OutQuant())
	default:
		return fmt.Errorf("nn: cannot serialize layer kind %v", l.Kind())
	}
	return nil
}

// Load reads a model in the binary format, verifying magic, version and
// checksum, and validates the decoded graph.
func Load(in io.Reader) (*Model, error) {
	data, err := io.ReadAll(in)
	if err != nil {
		return nil, err
	}
	if len(data) < len(magic)+8 || !bytes.Equal(data[:len(magic)], magic) {
		return nil, fmt.Errorf("nn: not an RTMDM model file")
	}
	ver := binary.LittleEndian.Uint32(data[len(magic):])
	if ver != formatVersion {
		return nil, fmt.Errorf("nn: unsupported model format version %d", ver)
	}
	payload := data[len(magic)+4 : len(data)-4]
	wantCRC := binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(payload) != wantCRC {
		return nil, fmt.Errorf("nn: model checksum mismatch")
	}

	r := &reader{data: payload}
	m := &Model{
		Name:    r.str(),
		Input:   r.shape(),
		InQuant: r.quant(),
	}
	n := r.u32()
	if n > 1<<16 {
		return nil, fmt.Errorf("nn: implausible node count %d", n)
	}
	for i := uint32(0); i < n && r.err == nil; i++ {
		kind := Kind(r.u32())
		ins32 := r.i32s()
		ins := make([]int, len(ins32))
		for k, v := range ins32 {
			ins[k] = int(v)
		}
		l := decodeLayer(r, kind)
		if r.err != nil {
			break
		}
		m.Nodes = append(m.Nodes, Node{Layer: l, Inputs: ins})
	}
	m.Output = r.i()
	if r.err != nil {
		return nil, r.err
	}
	if r.pos != len(payload) {
		return nil, fmt.Errorf("nn: %d trailing bytes in model file", len(payload)-r.pos)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

func decodeLayer(r *reader, kind Kind) Layer {
	name := r.str()
	defer func() {
		if p := recover(); p != nil {
			r.fail("layer %s: %v", name, p)
		}
	}()
	switch kind {
	case KindConv2D:
		in := r.shape()
		outC, kh, kw, stride, pad := r.i(), r.i(), r.i(), r.i(), Padding(r.i())
		inQ, wQ, outQ := r.quant(), r.quant(), r.quant()
		var scales []float64
		if r.b() {
			scales = r.f64s()
		}
		weights, bias, relu := r.i8s(), r.i32s(), r.b()
		if r.err != nil {
			return nil
		}
		if scales != nil {
			return NewConv2DPerChannel(name, in, outC, kh, kw, stride, pad, inQ, scales, outQ, weights, bias, relu)
		}
		return NewConv2D(name, in, outC, kh, kw, stride, pad, inQ, wQ, outQ, weights, bias, relu)
	case KindDWConv2D:
		in := r.shape()
		kh, kw, stride, pad := r.i(), r.i(), r.i(), Padding(r.i())
		inQ, wQ, outQ := r.quant(), r.quant(), r.quant()
		weights, bias, relu := r.i8s(), r.i32s(), r.b()
		if r.err != nil {
			return nil
		}
		return NewDWConv2D(name, in, kh, kw, stride, pad, inQ, wQ, outQ, weights, bias, relu)
	case KindDense:
		in := r.shape()
		outN := r.i()
		inQ, wQ, outQ := r.quant(), r.quant(), r.quant()
		weights, bias, relu := r.i8s(), r.i32s(), r.b()
		if r.err != nil {
			return nil
		}
		return NewDense(name, in, outN, inQ, wQ, outQ, weights, bias, relu)
	case KindMaxPool:
		in := r.shape()
		k, stride, pad := r.i(), r.i(), Padding(r.i())
		q := r.quant()
		if r.err != nil {
			return nil
		}
		return NewMaxPool2D(name, in, k, stride, pad, q)
	case KindAvgPool:
		in := r.shape()
		k, stride, pad := r.i(), r.i(), Padding(r.i())
		// GlobalAvgPool and windowed AvgPool2D share the kind; the window
		// value 0 marks the global variant.
		if k == 0 {
			inQ, outQ := r.quant(), r.quant()
			if r.err != nil {
				return nil
			}
			return NewGlobalAvgPool(name, in, inQ, outQ)
		}
		inQ, outQ := r.quant(), r.quant()
		if r.err != nil {
			return nil
		}
		return NewAvgPool2D(name, in, k, stride, pad, inQ, outQ)
	case KindAdd:
		in := r.shape()
		aQ, bQ, outQ := r.quant(), r.quant(), r.quant()
		relu := r.b()
		if r.err != nil {
			return nil
		}
		return NewAdd(name, in, aQ, bQ, outQ, relu)
	case KindConcat:
		a, b := r.shape(), r.shape()
		aQ, bQ, outQ := r.quant(), r.quant(), r.quant()
		if r.err != nil {
			return nil
		}
		return NewConcat(name, a, b, aQ, bQ, outQ)
	case KindPad:
		in := r.shape()
		top, bottom, left, right := r.i(), r.i(), r.i(), r.i()
		q := r.quant()
		if r.err != nil {
			return nil
		}
		return NewZeroPad2D(name, in, top, bottom, left, right, q)
	case KindReLU:
		in := r.shape()
		q := r.quant()
		if r.err != nil {
			return nil
		}
		return NewReLU(name, in, q)
	case KindSoftmax:
		in := r.shape()
		q := r.quant()
		if r.err != nil {
			return nil
		}
		return NewSoftmax(name, in, q)
	case KindFlatten:
		in := r.shape()
		q := r.quant()
		if r.err != nil {
			return nil
		}
		return NewFlatten(name, in, q)
	default:
		r.fail("unknown layer kind %d", kind)
		return nil
	}
}
