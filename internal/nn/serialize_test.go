package nn

import (
	"bytes"
	"math/rand"
	"testing"
)

// buildSerializable constructs a graph touching every serializable layer
// kind, including a per-channel conv, residual add and concat branches.
func buildSerializable(t *testing.T) *Model {
	t.Helper()
	rng := rand.New(rand.NewSource(77))
	qp := q(1.0/32, 0)
	in := Shape{8, 8, 2}
	b := NewBuilder("everything", in, qp)

	pad := NewZeroPad2D("pad", in, 1, 1, 1, 1, qp)
	b.Add(pad)
	scales := []float64{0.01, 0.012, 0.008, 0.011}
	conv := NewConv2DPerChannel("convpc", pad.OutShape(), 4, 3, 3, 1, PadValid,
		qp, scales, qp, randWeights(rng, 4*9*2), randBias(rng, 4, 60), true)
	trunk := b.Add(conv)
	dw := NewDWConv2D("dw", conv.OutShape(), 3, 3, 1, PadSame,
		qp, q(0.02, 0), qp, randWeights(rng, 9*4), randBias(rng, 4, 40), true)
	dwIdx := b.Add(dw, trunk)
	add := NewAdd("add", conv.OutShape(), qp, qp, qp, true)
	addIdx := b.Add(add, dwIdx, trunk)

	mp := NewMaxPool2D("mp", add.OutShape(), 2, 2, PadValid, qp)
	mpIdx := b.Add(mp, addIdx)
	ap := NewAvgPool2D("ap", add.OutShape(), 2, 2, PadValid, qp, qp)
	apIdx := b.Add(ap, addIdx)
	cat := NewConcat("cat", mp.OutShape(), ap.OutShape(), qp, qp, qp)
	catIdx := b.Add(cat, mpIdx, apIdx)

	relu := NewReLU("relu", cat.OutShape(), qp)
	b.Add(relu, catIdx)
	gap := NewGlobalAvgPool("gap", relu.OutShape(), qp, qp)
	b.Add(gap)
	fl := NewFlatten("fl", gap.OutShape(), qp)
	b.Add(fl)
	d := NewDense("fc", fl.OutShape(), 5, qp, q(0.01, 0), qp,
		randWeights(rng, fl.OutShape().Elems()*5), randBias(rng, 5, 80), false)
	b.Add(d)
	sm := NewSoftmax("sm", d.OutShape(), d.OutQuant())
	b.Add(sm)
	return b.MustBuild()
}

func roundTrip(t *testing.T, m *Model) *Model {
	t.Helper()
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestRoundTripAllLayerKinds(t *testing.T) {
	m := buildSerializable(t)
	got := roundTrip(t, m)
	if got.Name != m.Name || got.Input != m.Input || got.Output != m.Output {
		t.Fatalf("header mismatch: %s %v %d", got.Name, got.Input, got.Output)
	}
	if got.TotalParamBytes() != m.TotalParamBytes() || got.TotalMACs() != m.TotalMACs() {
		t.Fatal("accounting mismatch after round trip")
	}
	// Behavioural equality: identical outputs on random inputs.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 3; trial++ {
		x := randInput(rng, m.Input, m.InQuant)
		a, b := m.Forward(x), got.Forward(x)
		for i := range a.Data {
			if a.Data[i] != b.Data[i] {
				t.Fatalf("trial %d: outputs diverge at %d", trial, i)
			}
		}
	}
}

func TestSaveIsDeterministic(t *testing.T) {
	m := buildSerializable(t)
	var a, b bytes.Buffer
	if err := m.Save(&a); err != nil {
		t.Fatal(err)
	}
	if err := m.Save(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("serialization not deterministic")
	}
}

func TestLoadRejectsCorruption(t *testing.T) {
	m := buildSerializable(t)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	// Bad magic.
	bad := append([]byte(nil), data...)
	bad[0] ^= 0xff
	if _, err := Load(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Bad version.
	bad = append([]byte(nil), data...)
	bad[len(magic)] = 99
	if _, err := Load(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad version accepted")
	}
	// Flipped payload byte → CRC failure.
	bad = append([]byte(nil), data...)
	bad[len(data)/2] ^= 0x40
	if _, err := Load(bytes.NewReader(bad)); err == nil {
		t.Fatal("corrupted payload accepted")
	}
	// Truncation.
	if _, err := Load(bytes.NewReader(data[:len(data)-9])); err == nil {
		t.Fatal("truncated file accepted")
	}
	// Empty.
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty file accepted")
	}
}

func TestRoundTripPreservesPerChannelScales(t *testing.T) {
	m := buildSerializable(t)
	got := roundTrip(t, m)
	var orig, loaded *Conv2D
	for _, nd := range m.Nodes {
		if c, ok := nd.Layer.(*Conv2D); ok && c.WScales != nil {
			orig = c
		}
	}
	for _, nd := range got.Nodes {
		if c, ok := nd.Layer.(*Conv2D); ok && c.WScales != nil {
			loaded = c
		}
	}
	if orig == nil || loaded == nil {
		t.Fatal("per-channel conv lost in round trip")
	}
	for i := range orig.WScales {
		if orig.WScales[i] != loaded.WScales[i] {
			t.Fatal("per-channel scales differ")
		}
	}
}
