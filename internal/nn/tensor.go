// Package nn implements the quantized neural-network substrate used by the
// RT-MDM reproduction: tensors, int8 layer kernels in the style of CMSIS-NN,
// float32 reference kernels, and a small directed-acyclic-graph model
// representation with static shape, parameter and MAC accounting.
//
// The kernels really execute — model parameter counts, working-set sizes and
// MAC counts that feed the scheduling experiments are measured from the same
// graphs the examples run, not transcribed by hand.
package nn

import "fmt"

// Shape describes a tensor layout in NHWC order with the batch dimension
// fixed at 1 (MCU inference is single-sample). A fully-connected activation
// uses H=W=1.
type Shape struct {
	H, W, C int
}

// Elems returns the number of elements in the shape.
func (s Shape) Elems() int { return s.H * s.W * s.C }

// Valid reports whether all dimensions are positive.
func (s Shape) Valid() bool { return s.H > 0 && s.W > 0 && s.C > 0 }

func (s Shape) String() string { return fmt.Sprintf("%dx%dx%d", s.H, s.W, s.C) }

// QuantParams is a per-tensor affine quantization: real = Scale*(q - Zero).
type QuantParams struct {
	Scale float64
	Zero  int32
}

// Dequant converts a quantized value to its real-valued interpretation.
func (q QuantParams) Dequant(v int8) float64 { return q.Scale * float64(int32(v)-q.Zero) }

// Quant converts a real value to the nearest representable quantized value,
// saturating to the int8 range.
func (q QuantParams) Quant(r float64) int8 {
	v := roundHalfAwayFromZero(r/q.Scale) + float64(q.Zero)
	return satInt8(clampInt32Range(v))
}

// clampInt32Range converts a float to int32, saturating instead of relying
// on Go's implementation-defined out-of-range conversion.
func clampInt32Range(v float64) int32 {
	if v >= 2147483647 {
		return 2147483647
	}
	if v <= -2147483648 {
		return -2147483648
	}
	return int32(v)
}

// Tensor is an int8 activation or weight tensor with its quantization.
type Tensor struct {
	Shape Shape
	Quant QuantParams
	Data  []int8
}

// NewTensor allocates a zeroed tensor of the given shape.
func NewTensor(s Shape, q QuantParams) *Tensor {
	if !s.Valid() {
		panic(fmt.Sprintf("nn: invalid tensor shape %v", s))
	}
	return &Tensor{Shape: s, Quant: q, Data: make([]int8, s.Elems())}
}

// At returns the element at (h, w, c).
func (t *Tensor) At(h, w, c int) int8 {
	return t.Data[(h*t.Shape.W+w)*t.Shape.C+c]
}

// Set writes the element at (h, w, c).
func (t *Tensor) Set(h, w, c int, v int8) {
	t.Data[(h*t.Shape.W+w)*t.Shape.C+c] = v
}

// Floats dequantizes the whole tensor (reference-path helper).
func (t *Tensor) Floats() []float64 {
	out := make([]float64, len(t.Data))
	for i, v := range t.Data {
		out[i] = t.Quant.Dequant(v)
	}
	return out
}

// SizeBytes returns the in-memory footprint of the tensor payload.
func (t *Tensor) SizeBytes() int { return len(t.Data) }

func satInt8(v int32) int8 {
	if v > 127 {
		return 127
	}
	if v < -128 {
		return -128
	}
	return int8(v)
}

func roundHalfAwayFromZero(x float64) float64 {
	if x >= 0 {
		return float64(int64(x + 0.5))
	}
	return float64(int64(x - 0.5))
}
