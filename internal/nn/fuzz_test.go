package nn

import (
	"bytes"
	"math/rand"
	"testing"
)

// FuzzModelLoad asserts the binary decoder never panics on arbitrary
// input — it must fail with an error instead. The seed corpus includes a
// valid artifact and targeted corruptions.
func FuzzModelLoad(f *testing.F) {
	m := fuzzSeedModel()
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("RTMDM1\n"))
	f.Add(valid[:len(valid)/2])
	flip := append([]byte(nil), valid...)
	flip[len(flip)/3] ^= 0x5a
	f.Add(flip)

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Load(bytes.NewReader(data))
		if err == nil && m == nil {
			t.Fatal("nil model without error")
		}
		if err == nil {
			// Anything the decoder accepts must be a valid, executable
			// graph.
			if verr := m.Validate(); verr != nil {
				t.Fatalf("accepted model fails validation: %v", verr)
			}
		}
	})
}

func fuzzSeedModel() *Model {
	rng := rand.New(rand.NewSource(3))
	qp := QuantParams{Scale: 1.0 / 32, Zero: 0}
	in := Shape{4, 4, 1}
	b := NewBuilder("fuzz", in, qp)
	w := make([]int8, 2*9*1)
	for i := range w {
		w[i] = int8(rng.Intn(255) - 127)
	}
	b.Add(NewConv2D("c", in, 2, 3, 3, 1, PadSame, qp, QuantParams{Scale: 0.01}, qp,
		w, make([]int32, 2), true))
	b.Add(NewGlobalAvgPool("g", Shape{4, 4, 2}, qp, qp))
	return b.MustBuild()
}
