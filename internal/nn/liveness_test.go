package nn

import (
	"math/rand"
	"testing"
)

func TestLiveBytesChain(t *testing.T) {
	// input(16) → relu(16) → flatten(16) → softmax needs 1x1xC… use a
	// simple chain: input 2x2x4 → relu → gap(4).
	qp := q(1.0/32, 0)
	in := Shape{2, 2, 4}
	b := NewBuilder("live", in, qp)
	b.Add(NewReLU("r", in, qp))
	b.Add(NewGlobalAvgPool("g", in, qp, qp))
	m := b.MustBuild()

	// After node 0 (relu): its output (16) is needed by gap; input dead.
	if got := m.LiveBytesAfter(0); got != 16 {
		t.Fatalf("LiveBytesAfter(relu) = %d, want 16", got)
	}
	// After node 1 (gap, the output): only the model output (4) remains.
	if got := m.LiveBytesAfter(1); got != 4 {
		t.Fatalf("LiveBytesAfter(gap) = %d, want 4", got)
	}
	// During node 1: relu output (16) + gap output (4).
	if got := m.LiveBytesDuring(1); got != 20 {
		t.Fatalf("LiveBytesDuring(gap) = %d, want 20", got)
	}
	// During node 0: model input (16) + relu output (16).
	if got := m.LiveBytesDuring(0); got != 32 {
		t.Fatalf("LiveBytesDuring(relu) = %d, want 32", got)
	}
	// Out-of-range queries are zero.
	if m.LiveBytesAfter(-1) != 0 || m.LiveBytesAfter(99) != 0 ||
		m.LiveBytesDuring(-1) != 0 || m.LiveBytesDuring(99) != 0 {
		t.Fatal("out-of-range liveness not zero")
	}
}

func TestLiveBytesSkipConnection(t *testing.T) {
	// input → c1 → c2 → add(c1, c2): c1's output must stay live across c2.
	rng := rand.New(rand.NewSource(2))
	qp := q(1.0/32, 0)
	in := Shape{4, 4, 2}
	b := NewBuilder("skip", in, qp)
	mk := func(name string) *Conv2D {
		return NewConv2D(name, in, 2, 3, 3, 1, PadSame, qp, q(0.01, 0), qp,
			randWeights(rng, 2*9*2), randBias(rng, 2, 10), true)
	}
	n1 := b.Add(mk("c1"))
	n2 := b.Add(mk("c2"))
	b.Add(NewAdd("add", in, qp, qp, qp, false), n1, n2)
	m := b.MustBuild()
	// After c2: c1 out (32) + c2 out (32) both live for the add.
	if got := m.LiveBytesAfter(1); got != 64 {
		t.Fatalf("LiveBytesAfter(c2) = %d, want 64", got)
	}
	if m.OutShape() != in {
		t.Fatalf("OutShape = %v", m.OutShape())
	}
	if m.NumLayers() != 3 {
		t.Fatalf("NumLayers = %d", m.NumLayers())
	}
}

func TestBuilderAccessors(t *testing.T) {
	qp := q(1.0/32, 0)
	in := Shape{2, 2, 1}
	b := NewBuilder("acc", in, qp)
	if b.Last() != -1 {
		t.Fatal("Last before any node")
	}
	if b.NodeShape(-1) != in || b.NodeQuant(-1) != qp {
		t.Fatal("NodeShape/Quant(-1) should describe the input")
	}
	idx := b.Add(NewReLU("r", in, qp))
	if b.Last() != idx || b.NodeShape(idx) != in || b.NodeQuant(idx) != qp {
		t.Fatal("builder accessors after Add")
	}
}

func TestKindStrings(t *testing.T) {
	for k := KindConv2D; k <= KindPad; k++ {
		if s := k.String(); s == "" || s[0] == 'k' && len(s) > 4 && s[:5] == "kind(" {
			t.Errorf("kind %d has no name", int(k))
		}
	}
	if Kind(99).String() != "kind(99)" {
		t.Fatal("unknown kind string")
	}
}

func TestConstructorPanics(t *testing.T) {
	qp := q(1.0/32, 0)
	in := Shape{4, 4, 2}
	cases := map[string]func(){
		"conv geometry": func() {
			NewConv2D("c", in, 0, 3, 3, 1, PadSame, qp, qp, qp, nil, nil, false)
		},
		"conv weights": func() {
			NewConv2D("c", in, 2, 3, 3, 1, PadSame, qp, qp, qp, make([]int8, 5), make([]int32, 2), false)
		},
		"conv bias": func() {
			NewConv2D("c", in, 2, 3, 3, 1, PadSame, qp, qp, qp, make([]int8, 2*9*2), make([]int32, 1), false)
		},
		"conv shrink to nothing": func() {
			NewConv2D("c", Shape{2, 2, 1}, 1, 5, 5, 1, PadValid, qp, qp, qp, make([]int8, 25), make([]int32, 1), false)
		},
		"per-channel scales": func() {
			NewConv2DPerChannel("c", in, 2, 3, 3, 1, PadSame, qp, []float64{0.1}, qp,
				make([]int8, 2*9*2), make([]int32, 2), false)
		},
		"dw weights": func() {
			NewDWConv2D("d", in, 3, 3, 1, PadSame, qp, qp, qp, make([]int8, 5), make([]int32, 2), false)
		},
		"dw bias": func() {
			NewDWConv2D("d", in, 3, 3, 1, PadSame, qp, qp, qp, make([]int8, 9*2), make([]int32, 1), false)
		},
		"dense weights": func() {
			NewDense("f", in, 3, qp, qp, qp, make([]int8, 5), make([]int32, 3), false)
		},
		"dense bias": func() {
			NewDense("f", in, 3, qp, qp, qp, make([]int8, 32*3), make([]int32, 1), false)
		},
		"softmax shape": func() {
			NewSoftmax("s", in, qp)
		},
		"maxpool shrink": func() {
			NewMaxPool2D("p", Shape{1, 1, 1}, 3, 1, PadValid, qp)
		},
		"avgpool shrink": func() {
			NewAvgPool2D("p", Shape{1, 1, 1}, 3, 1, PadValid, qp, qp)
		},
		"pad negative": func() {
			NewZeroPad2D("z", in, -1, 0, 0, 0, qp)
		},
		"tensor shape": func() {
			NewTensor(Shape{0, 1, 1}, qp)
		},
		"wrong input shape": func() {
			NewReLU("r", in, qp).Forward(NewTensor(Shape{1, 1, 1}, qp))
		},
	}
	for name, f := range cases {
		name, f := name, f
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			f()
		})
	}
}
