package nn

import "fmt"

// This file implements output-channel slicing of weighted kernels: the
// executable counterpart of the segmenter's fractional layer parts. A
// sliced kernel computes output channels [from, to) of the original layer
// with exactly the weights the corresponding parameter chunk would stage,
// so segment-wise execution can be proven bit-identical to whole-model
// execution (see internal/cosim).

// SliceConv2D returns a convolution computing output channels [from, to)
// of l. The slice consumes the full input tensor.
func SliceConv2D(l *Conv2D, from, to int) *Conv2D {
	checkSlice(l.Name(), from, to, l.OutShape().C)
	n := to - from
	kSize := l.KH * l.KW * l.InShape().C
	sub := &Conv2D{
		base: base{
			name:     fmt.Sprintf("%s[%d:%d]", l.Name(), from, to),
			kind:     KindConv2D,
			in:       l.InShape(),
			out:      Shape{l.OutShape().H, l.OutShape().W, n},
			outQuant: l.OutQuant(),
		},
		KH: l.KH, KW: l.KW, Stride: l.Stride, Pad: l.Pad,
		InQuant: l.InQuant, WQuant: l.WQuant,
		Weights: l.Weights[from*kSize : to*kSize],
		Bias:    l.Bias[from:to],
		ReLU:    l.ReLU,
	}
	if l.WScales != nil {
		sub.WScales = l.WScales[from:to]
	}
	return sub
}

// SliceDense returns a fully-connected layer computing output neurons
// [from, to) of l.
func SliceDense(l *Dense, from, to int) *Dense {
	checkSlice(l.Name(), from, to, l.OutShape().C)
	inN := l.InShape().Elems()
	return &Dense{
		base: base{
			name:     fmt.Sprintf("%s[%d:%d]", l.Name(), from, to),
			kind:     KindDense,
			in:       l.InShape(),
			out:      Shape{1, 1, to - from},
			outQuant: l.OutQuant(),
		},
		InQuant: l.InQuant, WQuant: l.WQuant,
		Weights: l.Weights[from*inN : to*inN],
		Bias:    l.Bias[from:to],
		ReLU:    l.ReLU,
	}
}

// SliceDWConv2D returns a depthwise convolution computing channels
// [from, to) of l. Depthwise channels are independent, so the slice
// consumes only input channels [from, to) — use SliceChannels on the input
// tensor before calling Forward.
func SliceDWConv2D(l *DWConv2D, from, to int) *DWConv2D {
	checkSlice(l.Name(), from, to, l.OutShape().C)
	n := to - from
	in := l.InShape()
	// Depthwise weights are laid out [KH][KW][C]: gather the channel band.
	w := make([]int8, l.KH*l.KW*n)
	for k := 0; k < l.KH*l.KW; k++ {
		copy(w[k*n:(k+1)*n], l.Weights[k*in.C+from:k*in.C+to])
	}
	return &DWConv2D{
		base: base{
			name:     fmt.Sprintf("%s[%d:%d]", l.Name(), from, to),
			kind:     KindDWConv2D,
			in:       Shape{in.H, in.W, n},
			out:      Shape{l.OutShape().H, l.OutShape().W, n},
			outQuant: l.OutQuant(),
		},
		KH: l.KH, KW: l.KW, Stride: l.Stride, Pad: l.Pad,
		InQuant: l.InQuant, WQuant: l.WQuant,
		Weights: w,
		Bias:    l.Bias[from:to],
		ReLU:    l.ReLU,
	}
}

// SliceChannels extracts channels [from, to) of a tensor.
func SliceChannels(t *Tensor, from, to int) *Tensor {
	if from < 0 || to > t.Shape.C || from >= to {
		panic(fmt.Sprintf("nn: channel slice [%d, %d) of %v", from, to, t.Shape))
	}
	out := NewTensor(Shape{t.Shape.H, t.Shape.W, to - from}, t.Quant)
	for h := 0; h < t.Shape.H; h++ {
		for w := 0; w < t.Shape.W; w++ {
			for c := from; c < to; c++ {
				out.Set(h, w, c-from, t.At(h, w, c))
			}
		}
	}
	return out
}

// PlaceChannels writes src into channels [from, from+src.C) of dst.
func PlaceChannels(dst, src *Tensor, from int) {
	if src.Shape.H != dst.Shape.H || src.Shape.W != dst.Shape.W ||
		from < 0 || from+src.Shape.C > dst.Shape.C {
		panic(fmt.Sprintf("nn: cannot place %v into %v at channel %d", src.Shape, dst.Shape, from))
	}
	for h := 0; h < src.Shape.H; h++ {
		for w := 0; w < src.Shape.W; w++ {
			for c := 0; c < src.Shape.C; c++ {
				dst.Set(h, w, from+c, src.At(h, w, c))
			}
		}
	}
}

func checkSlice(name string, from, to, c int) {
	if from < 0 || to > c || from >= to {
		panic(fmt.Sprintf("nn: slice [%d, %d) of %s with %d channels", from, to, name, c))
	}
}
