package nn

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Slicing property: concatenating the outputs of channel slices reproduces
// the whole layer bit-for-bit, for any cut points.
func TestPropertyConvSliceEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := Shape{rng.Intn(5) + 3, rng.Intn(5) + 3, rng.Intn(3) + 1}
		outC := rng.Intn(7) + 2
		l := NewConv2D("c", in, outC, 3, 3, 1, PadSame,
			q(0.05, int32(rng.Intn(5)-2)), q(0.012, 0), q(0.3, 0),
			randWeights(rng, outC*9*in.C), randBias(rng, outC, 200), rng.Intn(2) == 0)
		x := randInput(rng, in, l.InQuant)
		want := l.Forward(x)
		cut := rng.Intn(outC-1) + 1
		got := NewTensor(want.Shape, want.Quant)
		PlaceChannels(got, SliceConv2D(l, 0, cut).Forward(x), 0)
		PlaceChannels(got, SliceConv2D(l, cut, outC).Forward(x), cut)
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyPerChannelConvSliceEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := Shape{4, 4, 2}
		outC := rng.Intn(6) + 2
		scales := make([]float64, outC)
		for i := range scales {
			scales[i] = 0.005 + 0.02*rng.Float64()
		}
		l := NewConv2DPerChannel("c", in, outC, 3, 3, 1, PadSame,
			q(0.05, 0), scales, q(0.3, 0),
			randWeights(rng, outC*9*2), randBias(rng, outC, 200), true)
		x := randInput(rng, in, l.InQuant)
		want := l.Forward(x)
		cut := rng.Intn(outC-1) + 1
		got := NewTensor(want.Shape, want.Quant)
		PlaceChannels(got, SliceConv2D(l, 0, cut).Forward(x), 0)
		PlaceChannels(got, SliceConv2D(l, cut, outC).Forward(x), cut)
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyDenseSliceEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := Shape{1, 1, rng.Intn(40) + 2}
		outN := rng.Intn(10) + 2
		l := NewDense("fc", in, outN, q(0.04, 0), q(0.01, 0), q(0.4, 0),
			randWeights(rng, in.Elems()*outN), randBias(rng, outN, 500), rng.Intn(2) == 0)
		x := randInput(rng, in, l.InQuant)
		want := l.Forward(x)
		cut := rng.Intn(outN-1) + 1
		got := NewTensor(want.Shape, want.Quant)
		PlaceChannels(got, SliceDense(l, 0, cut).Forward(x), 0)
		PlaceChannels(got, SliceDense(l, cut, outN).Forward(x), cut)
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyDWConvSliceEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := Shape{rng.Intn(4) + 3, rng.Intn(4) + 3, rng.Intn(6) + 2}
		l := NewDWConv2D("d", in, 3, 3, 1, PadSame,
			q(0.05, 0), q(0.02, 0), q(0.25, 0),
			randWeights(rng, 9*in.C), randBias(rng, in.C, 200), rng.Intn(2) == 0)
		x := randInput(rng, in, l.InQuant)
		want := l.Forward(x)
		cut := rng.Intn(in.C-1) + 1
		got := NewTensor(want.Shape, want.Quant)
		lo := SliceDWConv2D(l, 0, cut)
		hi := SliceDWConv2D(l, cut, in.C)
		PlaceChannels(got, lo.Forward(SliceChannels(x, 0, cut)), 0)
		PlaceChannels(got, hi.Forward(SliceChannels(x, cut, in.C)), cut)
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSliceBoundsChecked(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewDense("fc", Shape{1, 1, 4}, 4, q(0.04, 0), q(0.01, 0), q(0.4, 0),
		randWeights(rng, 16), randBias(rng, 4, 10), false)
	for _, c := range [][2]int{{-1, 2}, {2, 2}, {3, 5}} {
		c := c
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("slice [%d,%d) did not panic", c[0], c[1])
				}
			}()
			SliceDense(l, c[0], c[1])
		}()
	}
}

func TestSliceChannelsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := randInput(rng, Shape{3, 3, 5}, q(0.1, 0))
	dst := NewTensor(x.Shape, x.Quant)
	PlaceChannels(dst, SliceChannels(x, 0, 2), 0)
	PlaceChannels(dst, SliceChannels(x, 2, 5), 2)
	for i := range x.Data {
		if dst.Data[i] != x.Data[i] {
			t.Fatal("slice/place round trip lost data")
		}
	}
}
