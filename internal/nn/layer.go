package nn

import "fmt"

// Kind identifies a layer's operator type; the cost model keys per-type
// efficiency factors off it.
type Kind int

const (
	KindConv2D Kind = iota
	KindDWConv2D
	KindDense
	KindMaxPool
	KindAvgPool
	KindAdd
	KindReLU
	KindSoftmax
	KindFlatten
	KindConcat
	KindPad
)

var kindNames = map[Kind]string{
	KindConv2D:   "conv2d",
	KindDWConv2D: "dwconv2d",
	KindDense:    "dense",
	KindMaxPool:  "maxpool",
	KindAvgPool:  "avgpool",
	KindAdd:      "add",
	KindReLU:     "relu",
	KindSoftmax:  "softmax",
	KindFlatten:  "flatten",
	KindConcat:   "concat",
	KindPad:      "pad",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Padding selects the spatial padding policy of convolution and pooling.
type Padding int

const (
	// PadValid applies no padding; the output shrinks.
	PadValid Padding = iota
	// PadSame zero-pads so that OutDim = ceil(InDim/Stride).
	PadSame
)

// Layer is one operator in a model graph. All shape, parameter and MAC
// accounting is static: it is fixed when the layer is constructed, so the
// scheduling layers of the system never need to execute a kernel to cost it.
type Layer interface {
	// Name returns the unique layer name within its model.
	Name() string
	// Kind returns the operator type.
	Kind() Kind
	// Arity returns how many input tensors Forward expects.
	Arity() int
	// InShape returns the expected shape of the primary input.
	InShape() Shape
	// OutShape returns the produced shape.
	OutShape() Shape
	// ParamBytes returns the bytes of parameters (weights + biases) that
	// must be resident in SRAM before the layer can execute. Zero for
	// parameter-free operators.
	ParamBytes() int64
	// MACs returns the multiply-accumulate count of one execution; for
	// parameter-free operators it returns the element-operation count.
	MACs() int64
	// OutQuant returns the output tensor quantization.
	OutQuant() QuantParams
	// Forward executes the layer on quantized inputs.
	Forward(ins ...*Tensor) *Tensor
}

// base carries the bookkeeping shared by all layer implementations.
type base struct {
	name     string
	kind     Kind
	in, out  Shape
	outQuant QuantParams
}

func (b *base) Name() string          { return b.name }
func (b *base) Kind() Kind            { return b.kind }
func (b *base) Arity() int            { return 1 }
func (b *base) InShape() Shape        { return b.in }
func (b *base) OutShape() Shape       { return b.out }
func (b *base) OutQuant() QuantParams { return b.outQuant }

func checkInput(l Layer, ins []*Tensor) {
	if len(ins) != l.Arity() {
		panic(fmt.Sprintf("nn: layer %s expects %d inputs, got %d", l.Name(), l.Arity(), len(ins)))
	}
	if ins[0].Shape != l.InShape() {
		panic(fmt.Sprintf("nn: layer %s expects input %v, got %v", l.Name(), l.InShape(), ins[0].Shape))
	}
}

// convOutDim computes one spatial output dimension.
func convOutDim(in, k, stride int, pad Padding) int {
	switch pad {
	case PadSame:
		return (in + stride - 1) / stride
	default:
		return (in-k)/stride + 1
	}
}

// padBefore computes the leading pad for PadSame along one dimension.
func padBefore(in, k, stride int, pad Padding) int {
	if pad != PadSame {
		return 0
	}
	out := convOutDim(in, k, stride, pad)
	total := (out-1)*stride + k - in
	if total < 0 {
		total = 0
	}
	return total / 2
}

// Conv2D is a standard 2-D convolution with optional fused ReLU.
//
// Quantization is per-tensor by default (WQuant applies to every output
// channel). Setting WScales switches to TFLite-style per-output-channel
// weight quantization: channel oc uses scale WScales[oc], and WQuant.Scale
// is ignored (the weight zero point stays 0, as int8 conv requires).
type Conv2D struct {
	base
	KH, KW, Stride int
	Pad            Padding
	InQuant        QuantParams
	WQuant         QuantParams
	// WScales, when non-nil, holds one weight scale per output channel.
	WScales []float64
	// Weights laid out [OutC][KH][KW][InC].
	Weights []int8
	// Bias is in the accumulator domain (scale = InQuant.Scale·wscale(oc)).
	Bias []int32
	ReLU bool
}

// wScale returns the weight scale of output channel oc.
func (l *Conv2D) wScale(oc int) float64 {
	if l.WScales != nil {
		return l.WScales[oc]
	}
	return l.WQuant.Scale
}

// NewConv2D constructs a convolution layer. Weights and bias lengths must
// match the declared geometry.
func NewConv2D(name string, in Shape, outC, kh, kw, stride int, pad Padding,
	inQ, wQ, outQ QuantParams, weights []int8, bias []int32, relu bool) *Conv2D {
	if stride <= 0 || kh <= 0 || kw <= 0 || outC <= 0 {
		panic(fmt.Sprintf("nn: conv2d %s invalid geometry", name))
	}
	want := outC * kh * kw * in.C
	if len(weights) != want {
		panic(fmt.Sprintf("nn: conv2d %s weights len %d, want %d", name, len(weights), want))
	}
	if len(bias) != outC {
		panic(fmt.Sprintf("nn: conv2d %s bias len %d, want %d", name, len(bias), outC))
	}
	out := Shape{convOutDim(in.H, kh, stride, pad), convOutDim(in.W, kw, stride, pad), outC}
	if !out.Valid() {
		panic(fmt.Sprintf("nn: conv2d %s produces invalid shape %v from %v", name, out, in))
	}
	return &Conv2D{
		base: base{name: name, kind: KindConv2D, in: in, out: out, outQuant: outQ},
		KH:   kh, KW: kw, Stride: stride, Pad: pad,
		InQuant: inQ, WQuant: wQ, Weights: weights, Bias: bias, ReLU: relu,
	}
}

// NewConv2DPerChannel constructs a convolution with per-output-channel
// weight scales (TFLite int8 convention).
func NewConv2DPerChannel(name string, in Shape, outC, kh, kw, stride int, pad Padding,
	inQ QuantParams, wScales []float64, outQ QuantParams,
	weights []int8, bias []int32, relu bool) *Conv2D {
	if len(wScales) != outC {
		panic(fmt.Sprintf("nn: conv2d %s wScales len %d, want %d", name, len(wScales), outC))
	}
	l := NewConv2D(name, in, outC, kh, kw, stride, pad, inQ, QuantParams{}, outQ, weights, bias, relu)
	l.WScales = append([]float64(nil), wScales...)
	return l
}

func (l *Conv2D) ParamBytes() int64 { return int64(len(l.Weights)) + 4*int64(len(l.Bias)) }

func (l *Conv2D) MACs() int64 {
	return int64(l.out.H) * int64(l.out.W) * int64(l.out.C) *
		int64(l.KH) * int64(l.KW) * int64(l.in.C)
}

func (l *Conv2D) Forward(ins ...*Tensor) *Tensor {
	checkInput(l, ins)
	x := ins[0]
	out := NewTensor(l.out, l.outQuant)
	mults := make([]float64, l.out.C)
	for oc := range mults {
		mults[oc] = l.InQuant.Scale * l.wScale(oc) / l.outQuant.Scale
	}
	ph := padBefore(l.in.H, l.KH, l.Stride, l.Pad)
	pw := padBefore(l.in.W, l.KW, l.Stride, l.Pad)
	inZ := l.InQuant.Zero
	for oh := 0; oh < l.out.H; oh++ {
		for ow := 0; ow < l.out.W; ow++ {
			for oc := 0; oc < l.out.C; oc++ {
				acc := l.Bias[oc]
				wBase := oc * l.KH * l.KW * l.in.C
				for kh := 0; kh < l.KH; kh++ {
					ih := oh*l.Stride + kh - ph
					if ih < 0 || ih >= l.in.H {
						continue
					}
					for kw := 0; kw < l.KW; kw++ {
						iw := ow*l.Stride + kw - pw
						if iw < 0 || iw >= l.in.W {
							continue
						}
						xi := (ih*l.in.W + iw) * l.in.C
						wi := wBase + (kh*l.KW+kw)*l.in.C
						for ic := 0; ic < l.in.C; ic++ {
							acc += (int32(x.Data[xi+ic]) - inZ) * int32(l.Weights[wi+ic])
						}
					}
				}
				out.Set(oh, ow, oc, requantize(acc, mults[oc], l.outQuant.Zero, l.ReLU))
			}
		}
	}
	return out
}

// DWConv2D is a depthwise 2-D convolution (channel multiplier 1).
type DWConv2D struct {
	base
	KH, KW, Stride int
	Pad            Padding
	InQuant        QuantParams
	WQuant         QuantParams
	// Weights laid out [KH][KW][C].
	Weights []int8
	Bias    []int32
	ReLU    bool
}

// NewDWConv2D constructs a depthwise convolution layer.
func NewDWConv2D(name string, in Shape, kh, kw, stride int, pad Padding,
	inQ, wQ, outQ QuantParams, weights []int8, bias []int32, relu bool) *DWConv2D {
	want := kh * kw * in.C
	if len(weights) != want {
		panic(fmt.Sprintf("nn: dwconv2d %s weights len %d, want %d", name, len(weights), want))
	}
	if len(bias) != in.C {
		panic(fmt.Sprintf("nn: dwconv2d %s bias len %d, want %d", name, len(bias), in.C))
	}
	out := Shape{convOutDim(in.H, kh, stride, pad), convOutDim(in.W, kw, stride, pad), in.C}
	if !out.Valid() {
		panic(fmt.Sprintf("nn: dwconv2d %s produces invalid shape %v from %v", name, out, in))
	}
	return &DWConv2D{
		base: base{name: name, kind: KindDWConv2D, in: in, out: out, outQuant: outQ},
		KH:   kh, KW: kw, Stride: stride, Pad: pad,
		InQuant: inQ, WQuant: wQ, Weights: weights, Bias: bias, ReLU: relu,
	}
}

func (l *DWConv2D) ParamBytes() int64 { return int64(len(l.Weights)) + 4*int64(len(l.Bias)) }

func (l *DWConv2D) MACs() int64 {
	return int64(l.out.H) * int64(l.out.W) * int64(l.out.C) * int64(l.KH) * int64(l.KW)
}

func (l *DWConv2D) Forward(ins ...*Tensor) *Tensor {
	checkInput(l, ins)
	x := ins[0]
	out := NewTensor(l.out, l.outQuant)
	m := l.InQuant.Scale * l.WQuant.Scale / l.outQuant.Scale
	ph := padBefore(l.in.H, l.KH, l.Stride, l.Pad)
	pw := padBefore(l.in.W, l.KW, l.Stride, l.Pad)
	inZ := l.InQuant.Zero
	for oh := 0; oh < l.out.H; oh++ {
		for ow := 0; ow < l.out.W; ow++ {
			for c := 0; c < l.out.C; c++ {
				acc := l.Bias[c]
				for kh := 0; kh < l.KH; kh++ {
					ih := oh*l.Stride + kh - ph
					if ih < 0 || ih >= l.in.H {
						continue
					}
					for kw := 0; kw < l.KW; kw++ {
						iw := ow*l.Stride + kw - pw
						if iw < 0 || iw >= l.in.W {
							continue
						}
						w := l.Weights[(kh*l.KW+kw)*l.in.C+c]
						acc += (int32(x.At(ih, iw, c)) - inZ) * int32(w)
					}
				}
				out.Set(oh, ow, c, requantize(acc, m, l.outQuant.Zero, l.ReLU))
			}
		}
	}
	return out
}

// Dense is a fully-connected layer over a flattened input.
type Dense struct {
	base
	InQuant QuantParams
	WQuant  QuantParams
	// Weights laid out [Out][In].
	Weights []int8
	Bias    []int32
	ReLU    bool
}

// NewDense constructs a fully-connected layer; the input shape is flattened.
func NewDense(name string, in Shape, outN int,
	inQ, wQ, outQ QuantParams, weights []int8, bias []int32, relu bool) *Dense {
	inN := in.Elems()
	if len(weights) != inN*outN {
		panic(fmt.Sprintf("nn: dense %s weights len %d, want %d", name, len(weights), inN*outN))
	}
	if len(bias) != outN {
		panic(fmt.Sprintf("nn: dense %s bias len %d, want %d", name, len(bias), outN))
	}
	return &Dense{
		base:    base{name: name, kind: KindDense, in: in, out: Shape{1, 1, outN}, outQuant: outQ},
		InQuant: inQ, WQuant: wQ, Weights: weights, Bias: bias, ReLU: relu,
	}
}

func (l *Dense) ParamBytes() int64 { return int64(len(l.Weights)) + 4*int64(len(l.Bias)) }

func (l *Dense) MACs() int64 { return int64(l.in.Elems()) * int64(l.out.C) }

func (l *Dense) Forward(ins ...*Tensor) *Tensor {
	checkInput(l, ins)
	x := ins[0]
	out := NewTensor(l.out, l.outQuant)
	m := l.InQuant.Scale * l.WQuant.Scale / l.outQuant.Scale
	inN := l.in.Elems()
	inZ := l.InQuant.Zero
	for o := 0; o < l.out.C; o++ {
		acc := l.Bias[o]
		wBase := o * inN
		for i := 0; i < inN; i++ {
			acc += (int32(x.Data[i]) - inZ) * int32(l.Weights[wBase+i])
		}
		out.Data[o] = requantize(acc, m, l.outQuant.Zero, l.ReLU)
	}
	return out
}

// requantize scales an int32 accumulator into the int8 output domain.
func requantize(acc int32, multiplier float64, outZero int32, relu bool) int8 {
	v := clampInt32Range(roundHalfAwayFromZero(float64(acc)*multiplier)) + outZero
	if relu && v < outZero {
		v = outZero
	}
	return satInt8(v)
}
