package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func q(scale float64, zero int32) QuantParams { return QuantParams{Scale: scale, Zero: zero} }

func randWeights(rng *rand.Rand, n int) []int8 {
	w := make([]int8, n)
	for i := range w {
		w[i] = int8(rng.Intn(255) - 127)
	}
	return w
}

func randBias(rng *rand.Rand, n, span int) []int32 {
	b := make([]int32, n)
	for i := range b {
		b[i] = int32(rng.Intn(2*span+1) - span)
	}
	return b
}

func randInput(rng *rand.Rand, s Shape, qp QuantParams) *Tensor {
	t := NewTensor(s, qp)
	for i := range t.Data {
		t.Data[i] = int8(rng.Intn(255) - 127)
	}
	return t
}

func TestShapeElemsAndString(t *testing.T) {
	s := Shape{4, 5, 6}
	if s.Elems() != 120 {
		t.Fatalf("Elems = %d, want 120", s.Elems())
	}
	if s.String() != "4x5x6" {
		t.Fatalf("String = %q", s.String())
	}
	if (Shape{0, 1, 1}).Valid() {
		t.Fatal("zero dimension reported valid")
	}
}

func TestQuantRoundTrip(t *testing.T) {
	qp := q(0.05, 3)
	for _, v := range []int8{-128, -1, 0, 3, 42, 127} {
		r := qp.Dequant(v)
		if got := qp.Quant(r); got != v {
			t.Errorf("Quant(Dequant(%d)) = %d", v, got)
		}
	}
}

func TestQuantSaturates(t *testing.T) {
	qp := q(0.1, 0)
	if qp.Quant(1e9) != 127 {
		t.Fatal("positive overflow did not saturate to 127")
	}
	if qp.Quant(-1e9) != -128 {
		t.Fatal("negative overflow did not saturate to -128")
	}
}

func TestTensorIndexing(t *testing.T) {
	x := NewTensor(Shape{2, 3, 4}, q(1, 0))
	x.Set(1, 2, 3, 42)
	if x.At(1, 2, 3) != 42 {
		t.Fatal("Set/At round trip failed")
	}
	if x.Data[(1*3+2)*4+3] != 42 {
		t.Fatal("NHWC layout violated")
	}
}

func TestConvOutDimSameAndValid(t *testing.T) {
	// PadSame: ceil(in/stride).
	if got := convOutDim(28, 3, 1, PadSame); got != 28 {
		t.Fatalf("same 28/s1 = %d", got)
	}
	if got := convOutDim(28, 3, 2, PadSame); got != 14 {
		t.Fatalf("same 28/s2 = %d", got)
	}
	if got := convOutDim(28, 3, 1, PadValid); got != 26 {
		t.Fatalf("valid 28 k3 = %d", got)
	}
	if got := convOutDim(28, 3, 2, PadValid); got != 13 {
		t.Fatalf("valid 28 k3 s2 = %d", got)
	}
}

func TestConv2DAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	in := Shape{8, 8, 3}
	outC := 16
	l := NewConv2D("c1", in, outC, 3, 3, 1, PadSame,
		q(0.05, 0), q(0.01, 0), q(0.2, 0),
		randWeights(rng, outC*3*3*3), randBias(rng, outC, 100), true)
	if l.OutShape() != (Shape{8, 8, 16}) {
		t.Fatalf("OutShape = %v", l.OutShape())
	}
	if want := int64(outC*3*3*3 + 4*outC); l.ParamBytes() != want {
		t.Fatalf("ParamBytes = %d, want %d", l.ParamBytes(), want)
	}
	if want := int64(8 * 8 * 16 * 3 * 3 * 3); l.MACs() != want {
		t.Fatalf("MACs = %d, want %d", l.MACs(), want)
	}
}

func TestConv2DIdentityKernel(t *testing.T) {
	// A 1x1 conv with a single unit weight and matched scales must copy
	// the input channel exactly.
	in := Shape{3, 3, 1}
	w := []int8{100} // value 100 at wScale 0.01 → weight 1.0
	l := NewConv2D("id", in, 1, 1, 1, 1, PadValid,
		q(0.05, 0), q(0.01, 0), q(0.05, 0), w, []int32{0}, false)
	x := NewTensor(in, q(0.05, 0))
	for i := range x.Data {
		x.Data[i] = int8(i*7 - 30)
	}
	y := l.Forward(x)
	for i := range x.Data {
		if y.Data[i] != x.Data[i] {
			t.Fatalf("identity conv mismatch at %d: got %d want %d", i, y.Data[i], x.Data[i])
		}
	}
}

// tolerance: dequantized int8 output vs float reference must agree within
// just over half an output step (rounding) — saturation handled by clampRef.
func maxAbsDiff(a, b []float64) float64 {
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func dequantAll(t *Tensor) []float64 { return t.Floats() }

// PT-5: int8 conv2d matches the float reference within quantization error.
func TestPropertyConv2DMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := Shape{rng.Intn(6) + 3, rng.Intn(6) + 3, rng.Intn(4) + 1}
		outC := rng.Intn(8) + 1
		k := []int{1, 3, 5}[rng.Intn(3)]
		stride := rng.Intn(2) + 1
		pad := Padding(rng.Intn(2))
		if convOutDim(in.H, k, stride, pad) <= 0 || convOutDim(in.W, k, stride, pad) <= 0 {
			return true // geometry invalid, skip
		}
		inQ, wQ := q(0.05, int32(rng.Intn(11)-5)), q(0.01, 0)
		outQ := q(0.3, int32(rng.Intn(11)-5))
		l := NewConv2D("c", in, outC, k, k, stride, pad, inQ, wQ, outQ,
			randWeights(rng, outC*k*k*in.C), randBias(rng, outC, 500), rng.Intn(2) == 0)
		x := randInput(rng, in, inQ)
		got := dequantAll(l.Forward(x))
		want := RefConv2D(l, x)
		return maxAbsDiff(got, want) <= 0.51*outQ.Scale+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyDWConv2DMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := Shape{rng.Intn(6) + 3, rng.Intn(6) + 3, rng.Intn(6) + 1}
		k := 3
		stride := rng.Intn(2) + 1
		pad := Padding(rng.Intn(2))
		if convOutDim(in.H, k, stride, pad) <= 0 || convOutDim(in.W, k, stride, pad) <= 0 {
			return true
		}
		inQ, wQ := q(0.05, int32(rng.Intn(7)-3)), q(0.02, 0)
		outQ := q(0.25, 0)
		l := NewDWConv2D("d", in, k, k, stride, pad, inQ, wQ, outQ,
			randWeights(rng, k*k*in.C), randBias(rng, in.C, 300), rng.Intn(2) == 0)
		x := randInput(rng, in, inQ)
		got := dequantAll(l.Forward(x))
		want := RefDWConv2D(l, x)
		return maxAbsDiff(got, want) <= 0.51*outQ.Scale+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyDenseMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := Shape{1, 1, rng.Intn(64) + 1}
		outN := rng.Intn(16) + 1
		inQ, wQ := q(0.04, int32(rng.Intn(5)-2)), q(0.015, 0)
		outQ := q(0.5, 0)
		l := NewDense("fc", in, outN, inQ, wQ, outQ,
			randWeights(rng, in.Elems()*outN), randBias(rng, outN, 1000), rng.Intn(2) == 0)
		x := randInput(rng, in, inQ)
		got := dequantAll(l.Forward(x))
		want := RefDense(l, x)
		return maxAbsDiff(got, want) <= 0.51*outQ.Scale+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxPoolBasic(t *testing.T) {
	in := Shape{4, 4, 1}
	qp := q(0.1, 0)
	l := NewMaxPool2D("p", in, 2, 2, PadValid, qp)
	if l.OutShape() != (Shape{2, 2, 1}) {
		t.Fatalf("OutShape = %v", l.OutShape())
	}
	x := NewTensor(in, qp)
	for i := range x.Data {
		x.Data[i] = int8(i)
	}
	y := l.Forward(x)
	want := []int8{5, 7, 13, 15}
	for i, w := range want {
		if y.Data[i] != w {
			t.Fatalf("maxpool out %v, want %v", y.Data, want)
		}
	}
}

func TestMaxPoolIsOrderPreserving(t *testing.T) {
	// Property: every output element equals some input element.
	rng := rand.New(rand.NewSource(7))
	in := Shape{7, 7, 3}
	qp := q(0.1, -4)
	l := NewMaxPool2D("p", in, 3, 2, PadSame, qp)
	x := randInput(rng, in, qp)
	y := l.Forward(x)
	present := map[int8]bool{}
	for _, v := range x.Data {
		present[v] = true
	}
	for _, v := range y.Data {
		if !present[v] {
			t.Fatalf("maxpool invented value %d", v)
		}
	}
}

func TestGlobalAvgPool(t *testing.T) {
	in := Shape{2, 2, 1}
	inQ := q(0.5, 0)
	outQ := q(0.5, 0)
	l := NewGlobalAvgPool("gap", in, inQ, outQ)
	x := NewTensor(in, inQ)
	copy(x.Data, []int8{2, 4, 6, 8}) // mean 5 → 2.5 real → q 5
	y := l.Forward(x)
	if y.Data[0] != 5 {
		t.Fatalf("gap out = %d, want 5", y.Data[0])
	}
	if l.OutShape() != (Shape{1, 1, 1}) {
		t.Fatalf("OutShape = %v", l.OutShape())
	}
}

func TestAddCombinesQuantDomains(t *testing.T) {
	in := Shape{1, 1, 2}
	aQ, bQ, outQ := q(0.1, 0), q(0.2, 0), q(0.1, 0)
	l := NewAdd("add", in, aQ, bQ, outQ, false)
	a := NewTensor(in, aQ)
	b := NewTensor(in, bQ)
	copy(a.Data, []int8{10, -10}) // 1.0, -1.0
	copy(b.Data, []int8{5, 5})    // 1.0,  1.0
	y := l.Forward(a, b)
	if y.Data[0] != 20 || y.Data[1] != 0 {
		t.Fatalf("add out = %v, want [20 0]", y.Data)
	}
}

func TestAddReLUClampsNegatives(t *testing.T) {
	in := Shape{1, 1, 1}
	qp := q(0.1, 0)
	l := NewAdd("add", in, qp, qp, qp, true)
	a := NewTensor(in, qp)
	b := NewTensor(in, qp)
	a.Data[0], b.Data[0] = -50, -50
	if y := l.Forward(a, b); y.Data[0] != 0 {
		t.Fatalf("relu add out = %d, want 0", y.Data[0])
	}
}

func TestReLULayerIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	in := Shape{4, 4, 2}
	qp := q(0.1, -8)
	l := NewReLU("r", in, qp)
	x := randInput(rng, in, qp)
	y1 := l.Forward(x)
	y2 := l.Forward(y1)
	for i := range y1.Data {
		if y1.Data[i] != y2.Data[i] {
			t.Fatal("relu not idempotent")
		}
		if y1.Data[i] < int8(qp.Zero) {
			t.Fatal("relu output below zero point")
		}
	}
}

func TestSoftmaxSumsToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	in := Shape{1, 1, 10}
	inQ := q(0.2, 0)
	l := NewSoftmax("sm", in, inQ)
	x := randInput(rng, in, inQ)
	y := l.Forward(x)
	var sum float64
	maxIn, maxInIdx := int8(-128), 0
	maxOut, maxOutIdx := int8(-128), 0
	for i := range y.Data {
		sum += SoftmaxQuant.Dequant(y.Data[i])
		if x.Data[i] > maxIn {
			maxIn, maxInIdx = x.Data[i], i
		}
		if y.Data[i] > maxOut {
			maxOut, maxOutIdx = y.Data[i], i
		}
	}
	if math.Abs(sum-1.0) > 0.05 {
		t.Fatalf("softmax sum = %v", sum)
	}
	if maxInIdx != maxOutIdx {
		t.Fatalf("softmax argmax moved: in %d out %d", maxInIdx, maxOutIdx)
	}
}

func TestFlattenPreservesData(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	in := Shape{3, 3, 2}
	qp := q(0.1, 0)
	l := NewFlatten("f", in, qp)
	x := randInput(rng, in, qp)
	y := l.Forward(x)
	if y.Shape != (Shape{1, 1, 18}) {
		t.Fatalf("flatten shape %v", y.Shape)
	}
	for i := range x.Data {
		if y.Data[i] != x.Data[i] {
			t.Fatal("flatten changed data")
		}
	}
}

func buildTinyModel(t *testing.T) *Model {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	inQ := q(0.05, 0)
	b := NewBuilder("tiny", Shape{8, 8, 1}, inQ)
	c1 := NewConv2D("c1", Shape{8, 8, 1}, 4, 3, 3, 1, PadSame,
		inQ, q(0.01, 0), q(0.1, 0), randWeights(rng, 4*3*3*1), randBias(rng, 4, 50), true)
	b.Add(c1)
	p := NewMaxPool2D("p1", c1.OutShape(), 2, 2, PadValid, c1.OutQuant())
	b.Add(p)
	fl := NewFlatten("fl", p.OutShape(), p.OutQuant())
	b.Add(fl)
	d := NewDense("fc", fl.OutShape(), 3, fl.OutQuant(), q(0.01, 0), q(0.3, 0),
		randWeights(rng, fl.OutShape().Elems()*3), randBias(rng, 3, 100), false)
	b.Add(d)
	sm := NewSoftmax("sm", d.OutShape(), d.OutQuant())
	b.Add(sm)
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestModelForwardEndToEnd(t *testing.T) {
	m := buildTinyModel(t)
	rng := rand.New(rand.NewSource(13))
	x := randInput(rng, m.Input, m.InQuant)
	y := m.Forward(x)
	if y.Shape != (Shape{1, 1, 3}) {
		t.Fatalf("output shape %v", y.Shape)
	}
	// Deterministic: same input twice gives identical output.
	y2 := m.Forward(x)
	for i := range y.Data {
		if y.Data[i] != y2.Data[i] {
			t.Fatal("model forward not deterministic")
		}
	}
}

func TestModelAccounting(t *testing.T) {
	m := buildTinyModel(t)
	var wantParams, wantMACs int64
	for _, n := range m.Nodes {
		wantParams += n.Layer.ParamBytes()
		wantMACs += n.Layer.MACs()
	}
	if m.TotalParamBytes() != wantParams {
		t.Fatal("TotalParamBytes disagrees with per-layer sum")
	}
	if m.TotalMACs() != wantMACs {
		t.Fatal("TotalMACs disagrees with per-layer sum")
	}
	if m.TotalParamBytes() == 0 || m.TotalMACs() == 0 {
		t.Fatal("accounting is trivially zero")
	}
}

func TestPeakActivationBytesSequential(t *testing.T) {
	m := buildTinyModel(t)
	peak := m.PeakActivationBytes()
	// For a sequential chain, peak = max over nodes of in+out (plus any
	// still-live earlier tensors; here none besides the direct input,
	// except the model input which dies after c1).
	if peak < int64(m.Input.Elems()) {
		t.Fatalf("peak %d below input size", peak)
	}
	// c1 executes with input 8*8*1=64 and output 8*8*4=256 live → ≥320.
	if peak < 320 {
		t.Fatalf("peak %d, want ≥ 320", peak)
	}
}

func TestPeakActivationWithResidualSkip(t *testing.T) {
	// input -> c1 -> c2 -> add(c1-out, c2-out): c1's output stays live
	// across c2.
	rng := rand.New(rand.NewSource(17))
	inQ := q(0.05, 0)
	in := Shape{4, 4, 2}
	b := NewBuilder("res", in, inQ)
	mk := func(name string) *Conv2D {
		return NewConv2D(name, in, 2, 3, 3, 1, PadSame, inQ, q(0.01, 0), q(0.05, 0),
			randWeights(rng, 2*3*3*2), randBias(rng, 2, 10), true)
	}
	n1 := b.Add(mk("c1"))
	n2 := b.Add(mk("c2"))
	add := NewAdd("add", Shape{4, 4, 2}, q(0.05, 0), q(0.05, 0), q(0.05, 0), false)
	b.Add(add, n1, n2)
	m := b.MustBuild()
	peak := m.PeakActivationBytes()
	// During c2: input(32, dead after c2... actually dead after c2 input? it
	// feeds c2 only) — at add: out(32) + c1(32) + c2(32) = 96 at least.
	if peak < 96 {
		t.Fatalf("residual peak %d, want ≥ 96", peak)
	}
	x := randInput(rng, in, inQ)
	if y := m.Forward(x); y.Shape != in {
		t.Fatalf("residual model output %v", y.Shape)
	}
}

func TestValidateCatchesBadGraphs(t *testing.T) {
	inQ := q(0.05, 0)
	in := Shape{4, 4, 1}
	relu := NewReLU("r", in, inQ)

	// Forward reference (non-topological).
	m := &Model{Name: "bad", Input: in, InQuant: inQ,
		Nodes: []Node{{Layer: relu, Inputs: []int{0}}}, Output: 0}
	if err := m.Validate(); err == nil {
		t.Fatal("self-reference passed validation")
	}

	// Duplicate names.
	m2 := &Model{Name: "dup", Input: in, InQuant: inQ,
		Nodes: []Node{
			{Layer: relu, Inputs: []int{-1}},
			{Layer: relu, Inputs: []int{0}},
		}, Output: 1}
	if err := m2.Validate(); err == nil {
		t.Fatal("duplicate layer name passed validation")
	}

	// Shape mismatch.
	relu2 := NewReLU("r2", Shape{9, 9, 9}, inQ)
	m3 := &Model{Name: "shape", Input: in, InQuant: inQ,
		Nodes: []Node{{Layer: relu2, Inputs: []int{-1}}}, Output: 0}
	if err := m3.Validate(); err == nil {
		t.Fatal("shape mismatch passed validation")
	}

	// Empty graph.
	m4 := &Model{Name: "empty", Input: in, InQuant: inQ}
	if err := m4.Validate(); err == nil {
		t.Fatal("empty graph passed validation")
	}
}

func TestBuilderChainsImplicitly(t *testing.T) {
	inQ := q(0.05, 0)
	in := Shape{4, 4, 1}
	b := NewBuilder("chain", in, inQ)
	if b.LastShape() != in {
		t.Fatal("LastShape before any node should be the input shape")
	}
	if b.LastQuant() != inQ {
		t.Fatal("LastQuant before any node should be the input quant")
	}
	b.Add(NewReLU("r1", in, inQ))
	b.Add(NewReLU("r2", in, inQ))
	m := b.MustBuild()
	if got := m.Nodes[1].Inputs[0]; got != 0 {
		t.Fatalf("implicit chain input = %d, want 0", got)
	}
}

func TestArityMismatchPanics(t *testing.T) {
	inQ := q(0.05, 0)
	in := Shape{2, 2, 1}
	add := NewAdd("a", in, inQ, inQ, inQ, false)
	x := NewTensor(in, inQ)
	defer func() {
		if recover() == nil {
			t.Fatal("Forward with wrong arity did not panic")
		}
	}()
	add.Forward(x)
}
