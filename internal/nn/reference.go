package nn

// This file provides float64 reference implementations of the weighted
// kernels. They exist solely to validate the int8 kernels: the quantized
// output, dequantized, must match the reference within half an output
// quantization step (plus saturation clamping).

// RefConv2D computes the real-valued convolution of the layer on the
// dequantized input and returns the result clamped to the layer's
// representable output range.
func RefConv2D(l *Conv2D, in *Tensor) []float64 {
	x := in.Floats()
	out := make([]float64, l.out.Elems())
	ph := padBefore(l.in.H, l.KH, l.Stride, l.Pad)
	pw := padBefore(l.in.W, l.KW, l.Stride, l.Pad)
	for oh := 0; oh < l.out.H; oh++ {
		for ow := 0; ow < l.out.W; ow++ {
			for oc := 0; oc < l.out.C; oc++ {
				ws := l.wScale(oc)
				acc := float64(l.Bias[oc]) * l.InQuant.Scale * ws
				wBase := oc * l.KH * l.KW * l.in.C
				for kh := 0; kh < l.KH; kh++ {
					ih := oh*l.Stride + kh - ph
					if ih < 0 || ih >= l.in.H {
						continue
					}
					for kw := 0; kw < l.KW; kw++ {
						iw := ow*l.Stride + kw - pw
						if iw < 0 || iw >= l.in.W {
							continue
						}
						xi := (ih*l.in.W + iw) * l.in.C
						wi := wBase + (kh*l.KW+kw)*l.in.C
						for ic := 0; ic < l.in.C; ic++ {
							acc += x[xi+ic] * ws * float64(l.Weights[wi+ic])
						}
					}
				}
				out[(oh*l.out.W+ow)*l.out.C+oc] = clampRef(acc, l.outQuant, l.ReLU)
			}
		}
	}
	return out
}

// RefDWConv2D is the reference depthwise convolution.
func RefDWConv2D(l *DWConv2D, in *Tensor) []float64 {
	out := make([]float64, l.out.Elems())
	ph := padBefore(l.in.H, l.KH, l.Stride, l.Pad)
	pw := padBefore(l.in.W, l.KW, l.Stride, l.Pad)
	biasScale := l.InQuant.Scale * l.WQuant.Scale
	for oh := 0; oh < l.out.H; oh++ {
		for ow := 0; ow < l.out.W; ow++ {
			for c := 0; c < l.out.C; c++ {
				acc := float64(l.Bias[c]) * biasScale
				for kh := 0; kh < l.KH; kh++ {
					ih := oh*l.Stride + kh - ph
					if ih < 0 || ih >= l.in.H {
						continue
					}
					for kw := 0; kw < l.KW; kw++ {
						iw := ow*l.Stride + kw - pw
						if iw < 0 || iw >= l.in.W {
							continue
						}
						w := l.WQuant.Scale * float64(l.Weights[(kh*l.KW+kw)*l.in.C+c])
						acc += l.InQuant.Dequant(in.At(ih, iw, c)) * w
					}
				}
				out[(oh*l.out.W+ow)*l.out.C+c] = clampRef(acc, l.outQuant, l.ReLU)
			}
		}
	}
	return out
}

// RefDense is the reference fully-connected kernel.
func RefDense(l *Dense, in *Tensor) []float64 {
	x := in.Floats()
	out := make([]float64, l.out.C)
	inN := l.in.Elems()
	biasScale := l.InQuant.Scale * l.WQuant.Scale
	for o := 0; o < l.out.C; o++ {
		acc := float64(l.Bias[o]) * biasScale
		wBase := o * inN
		for i := 0; i < inN; i++ {
			acc += x[i] * l.WQuant.Scale * float64(l.Weights[wBase+i])
		}
		out[o] = clampRef(acc, l.outQuant, l.ReLU)
	}
	return out
}

// clampRef applies optional ReLU then clamps to the representable range of
// the output quantization, mirroring int8 saturation.
func clampRef(v float64, q QuantParams, relu bool) float64 {
	if relu && v < 0 {
		v = 0
	}
	lo := q.Dequant(-128)
	hi := q.Dequant(127)
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
