package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAvgPool2DBasic(t *testing.T) {
	in := Shape{4, 4, 1}
	qp := q(0.5, 0)
	l := NewAvgPool2D("ap", in, 2, 2, PadValid, qp, qp)
	if l.OutShape() != (Shape{2, 2, 1}) {
		t.Fatalf("OutShape = %v", l.OutShape())
	}
	x := NewTensor(in, qp)
	for i := range x.Data {
		x.Data[i] = int8(i) // windows: {0,1,4,5},{2,3,6,7},{8,9,12,13},{10,11,14,15}
	}
	y := l.Forward(x)
	want := []int8{3, 5, 11, 13} // exact integer means
	for i, w := range want {
		if y.Data[i] != w {
			t.Fatalf("avgpool out %v, want %v", y.Data, want)
		}
	}
}

func TestAvgPool2DPadSameIgnoresPaddingInMean(t *testing.T) {
	// With PadSame the mean divides by the count of *valid* samples, not
	// the window area (CMSIS-NN behaviour).
	in := Shape{2, 2, 1}
	qp := q(1.0, 0)
	l := NewAvgPool2D("ap", in, 3, 1, PadSame, qp, qp)
	x := NewTensor(in, qp)
	copy(x.Data, []int8{4, 4, 4, 4})
	y := l.Forward(x)
	for i, v := range y.Data {
		if v != 4 {
			t.Fatalf("padded mean diluted at %d: %v", i, y.Data)
		}
	}
}

func TestAvgPool2DBoundedByExtremes(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	in := Shape{6, 6, 3}
	qp := q(0.1, -3)
	l := NewAvgPool2D("ap", in, 3, 2, PadValid, qp, qp)
	x := randInput(rng, in, qp)
	lo, hi := int8(127), int8(-128)
	for _, v := range x.Data {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	for _, v := range l.Forward(x).Data {
		if v < lo-1 || v > hi+1 {
			t.Fatalf("mean %d outside input range [%d, %d]", v, lo, hi)
		}
	}
}

func TestConcatLaysOutChannels(t *testing.T) {
	a := NewTensor(Shape{1, 2, 2}, q(0.1, 0))
	b := NewTensor(Shape{1, 2, 1}, q(0.2, 0))
	copy(a.Data, []int8{1, 2, 3, 4})
	copy(b.Data, []int8{10, 20}) // real 2.0, 4.0 → at out scale 0.1: 20, 40
	l := NewConcat("cat", a.Shape, b.Shape, a.Quant, b.Quant, q(0.1, 0))
	if l.OutShape() != (Shape{1, 2, 3}) {
		t.Fatalf("OutShape = %v", l.OutShape())
	}
	y := l.Forward(a, b)
	want := []int8{1, 2, 20, 3, 4, 40}
	for i, w := range want {
		if y.Data[i] != w {
			t.Fatalf("concat out %v, want %v", y.Data, want)
		}
	}
}

func TestConcatRejectsSpatialMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("spatial mismatch accepted")
		}
	}()
	NewConcat("cat", Shape{2, 2, 1}, Shape{3, 2, 1}, q(1, 0), q(1, 0), q(1, 0))
}

func TestZeroPad2D(t *testing.T) {
	in := Shape{2, 2, 1}
	qp := q(0.1, 5)
	l := NewZeroPad2D("pad", in, 1, 1, 1, 1, qp)
	if l.OutShape() != (Shape{4, 4, 1}) {
		t.Fatalf("OutShape = %v", l.OutShape())
	}
	x := NewTensor(in, qp)
	copy(x.Data, []int8{1, 2, 3, 4})
	y := l.Forward(x)
	// Border must carry the zero point (= real 0.0), interior the data.
	if y.At(0, 0, 0) != 5 || y.At(3, 3, 0) != 5 {
		t.Fatalf("padding not at zero point: %v", y.Data)
	}
	if y.At(1, 1, 0) != 1 || y.At(2, 2, 0) != 4 {
		t.Fatalf("interior misplaced: %v", y.Data)
	}
}

func TestPerChannelConvMatchesPerTensorWhenUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	in := Shape{5, 5, 3}
	outC := 4
	w := randWeights(rng, outC*3*3*3)
	bias := randBias(rng, outC, 100)
	inQ, outQ := q(0.05, 0), q(0.3, 0)
	const ws = 0.013
	perTensor := NewConv2D("pt", in, outC, 3, 3, 1, PadSame, inQ, q(ws, 0), outQ, w, bias, true)
	scales := make([]float64, outC)
	for i := range scales {
		scales[i] = ws
	}
	perChannel := NewConv2DPerChannel("pc", in, outC, 3, 3, 1, PadSame, inQ, scales, outQ, w, bias, true)
	x := randInput(rng, in, inQ)
	a, b := perTensor.Forward(x), perChannel.Forward(x)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatalf("uniform per-channel differs from per-tensor at %d", i)
		}
	}
}

// Per-channel conv matches the float reference within quantization error
// for arbitrary per-channel scales (PT-5 extension).
func TestPropertyPerChannelConvMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := Shape{rng.Intn(5) + 3, rng.Intn(5) + 3, rng.Intn(3) + 1}
		outC := rng.Intn(6) + 1
		scales := make([]float64, outC)
		for i := range scales {
			scales[i] = 0.002 + 0.03*rng.Float64()
		}
		inQ := q(0.05, int32(rng.Intn(7)-3))
		outQ := q(0.3, 0)
		l := NewConv2DPerChannel("pc", in, outC, 3, 3, 1, PadSame, inQ, scales, outQ,
			randWeights(rng, outC*3*3*in.C), randBias(rng, outC, 300), rng.Intn(2) == 0)
		x := randInput(rng, in, inQ)
		got := l.Forward(x).Floats()
		want := RefConv2D(l, x)
		return maxAbsDiff(got, want) <= 0.51*outQ.Scale+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestNewOpsInGraphs(t *testing.T) {
	// input → pad → conv(valid) → branch {maxpool, avgpool} → concat.
	rng := rand.New(rand.NewSource(33))
	qp := q(1.0/32, 0)
	in := Shape{8, 8, 2}
	b := NewBuilder("newops", in, qp)
	pad := NewZeroPad2D("pad", in, 1, 1, 1, 1, qp)
	b.Add(pad)
	conv := NewConv2D("conv", pad.OutShape(), 4, 3, 3, 1, PadValid,
		qp, q(0.01, 0), qp, randWeights(rng, 4*3*3*2), randBias(rng, 4, 50), true)
	trunk := b.Add(conv)
	mp := NewMaxPool2D("mp", conv.OutShape(), 2, 2, PadValid, qp)
	mpIdx := b.Add(mp, trunk)
	ap := NewAvgPool2D("ap", conv.OutShape(), 2, 2, PadValid, qp, qp)
	apIdx := b.Add(ap, trunk)
	cat := NewConcat("cat", mp.OutShape(), ap.OutShape(), qp, qp, qp)
	b.Add(cat, mpIdx, apIdx)
	m := b.MustBuild()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	x := randInput(rng, in, qp)
	y := m.Forward(x)
	if y.Shape != (Shape{4, 4, 8}) {
		t.Fatalf("graph output %v", y.Shape)
	}
	if m.TotalMACs() == 0 || m.PeakActivationBytes() == 0 {
		t.Fatal("accounting zero on new-op graph")
	}
}

func TestAvgPoolRefSanity(t *testing.T) {
	// Quantized windowed mean tracks the float mean within half a step.
	rng := rand.New(rand.NewSource(8))
	in := Shape{4, 4, 2}
	inQ, outQ := q(0.07, 2), q(0.07, 2)
	l := NewAvgPool2D("ap", in, 2, 2, PadValid, inQ, outQ)
	x := randInput(rng, in, inQ)
	y := l.Forward(x)
	for oh := 0; oh < 2; oh++ {
		for ow := 0; ow < 2; ow++ {
			for c := 0; c < 2; c++ {
				var sum float64
				for kh := 0; kh < 2; kh++ {
					for kw := 0; kw < 2; kw++ {
						sum += inQ.Dequant(x.At(oh*2+kh, ow*2+kw, c))
					}
				}
				want := sum / 4
				got := outQ.Dequant(y.At(oh, ow, c))
				if math.Abs(got-want) > 0.51*outQ.Scale {
					t.Fatalf("mean mismatch: got %v want %v", got, want)
				}
			}
		}
	}
}
