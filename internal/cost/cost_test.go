package cost

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rtmdm/internal/models"
	"rtmdm/internal/nn"
	"rtmdm/internal/uarch"
)

func TestPresetsValidate(t *testing.T) {
	for _, p := range Platforms() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
	if err := NoContention().Validate(); err != nil {
		t.Errorf("NoContention: %v", err)
	}
}

func TestPlatformByName(t *testing.T) {
	p, err := PlatformByName("stm32h743")
	if err != nil {
		t.Fatal(err)
	}
	if p.CPU.Hz != 480_000_000 {
		t.Fatalf("wrong preset resolved: %+v", p.CPU)
	}
	if _, err := PlatformByName("z80"); err == nil {
		t.Fatal("unknown platform did not error")
	}
}

func TestValidateCatchesBadConfigs(t *testing.T) {
	bad := []Platform{
		func() Platform { p := STM32H743; p.CPU.Hz = 0; return p }(),
		func() Platform { p := STM32H743; p.Mem.BandwidthBps = 0; return p }(),
		func() Platform { p := STM32H743; p.SRAMBytes = 0; return p }(),
		func() Platform { p := STM32H743; p.WeightBufBytes = p.SRAMBytes + 1; return p }(),
		func() Platform { p := STM32H743; p.Bus.CPUNum = 11; return p }(), // speed-up forbidden
		func() Platform { p := STM32H743; p.Bus.DMADen = 0; return p }(),
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad config %d passed validation", i)
		}
	}
}

func TestTransferNs(t *testing.T) {
	m := MemProfile{Name: "m", BandwidthBps: 1 << 20, SetupNs: 1000} // 1 MiB/s
	if got := m.TransferNs(0); got != 0 {
		t.Fatalf("zero-byte transfer cost %d", got)
	}
	// 1 MiB at 1 MiB/s = 1 s plus setup.
	if got := m.TransferNs(1 << 20); got != 1_000_000_000+1000 {
		t.Fatalf("TransferNs(1MiB) = %d", got)
	}
	// Transfer time is monotone in size.
	if m.TransferNs(100) >= m.TransferNs(200) {
		t.Fatal("transfer time not monotone")
	}
}

func TestLayerCyclesUsesKindEfficiency(t *testing.T) {
	p := CortexM7_480
	p.DCache = uarch.Cache{} // isolate the throughput term
	rng := rand.New(rand.NewSource(1))
	in := nn.Shape{H: 16, W: 16, C: 8}
	w := make([]int8, 8*3*3*8)
	for i := range w {
		w[i] = int8(rng.Intn(255) - 127)
	}
	conv := nn.NewConv2D("c", in, 8, 3, 3, 1, nn.PadSame,
		nn.QuantParams{Scale: 0.05}, nn.QuantParams{Scale: 0.01}, nn.QuantParams{Scale: 0.1},
		w, make([]int32, 8), true)
	cycles := p.LayerCycles(conv)
	macs := conv.MACs()
	eff := p.MACsPerCycle[nn.KindConv2D]
	want := int64(float64(macs)/eff) + p.LayerOverheadCycles
	// Allow ceil slack of 1.
	if cycles < want || cycles > want+1 {
		t.Fatalf("LayerCycles = %d, want ≈ %d", cycles, want)
	}
}

func TestLayerTimeScalesWithClock(t *testing.T) {
	m := models.DSCNN(1)
	slow, fast := CortexM7_216, CortexM7_480
	slow.DCache, fast.DCache = uarch.Cache{}, uarch.Cache{}
	var tSlow, tFast int64
	for _, nd := range m.Nodes {
		tSlow += slow.LayerTimeNs(nd.Layer)
		tFast += fast.LayerTimeNs(nd.Layer)
	}
	// With caches disabled, 480/216 ≈ 2.22× pure clock scaling.
	ratio := float64(tSlow) / float64(tFast)
	if ratio < 2.0 || ratio > 2.5 {
		t.Fatalf("clock scaling ratio = %.3f, want ≈ 2.22", ratio)
	}
	// With the presets' caches (4 KiB vs 16 KiB) the smaller cache
	// amplifies the gap beyond pure clock scaling.
	var cSlow, cFast int64
	for _, nd := range m.Nodes {
		cSlow += CortexM7_216.LayerTimeNs(nd.Layer)
		cFast += CortexM7_480.LayerTimeNs(nd.Layer)
	}
	if cached := float64(cSlow) / float64(cFast); cached <= ratio {
		t.Fatalf("cache model did not amplify the clock gap: %.3f vs %.3f", cached, ratio)
	}
}

func TestDCacheSweepIsMonotone(t *testing.T) {
	// Larger caches never slow a model down; a disabled cache is fastest
	// (zero-wait-state idealization).
	m := models.MobileNetV1Q25(1)
	prev := int64(-1)
	for _, size := range []int64{64 << 10, 16 << 10, 4 << 10, 1 << 10} {
		p := STM32H743.WithDCache(size)
		var ns int64
		for _, nd := range m.Nodes {
			ns += p.CPU.LayerTimeNs(nd.Layer)
		}
		if prev >= 0 && ns < prev {
			t.Fatalf("smaller cache %d got faster: %d < %d", size, ns, prev)
		}
		prev = ns
	}
	noCache := STM32H743.WithDCache(0)
	var base int64
	for _, nd := range m.Nodes {
		base += noCache.CPU.LayerTimeNs(nd.Layer)
	}
	if base > prev {
		t.Fatal("disabled cache slower than 1 KiB cache")
	}
}

func TestModelLatencyMagnitudes(t *testing.T) {
	// Sanity-anchor: MLPerf-Tiny class models take single-digit to
	// low-hundreds of milliseconds on Cortex-M class parts. Check compute
	// time (no loads) for the zoo on the default platform is in
	// [0.1 ms, 500 ms].
	p := STM32H743.CPU
	for _, info := range models.Catalog() {
		m := info.Build(1)
		var ns int64
		for _, nd := range m.Nodes {
			ns += p.LayerTimeNs(nd.Layer)
		}
		if ns < 100_000 || ns > 500_000_000 {
			t.Errorf("%s: compute %.3f ms out of plausible range", info.Name, float64(ns)/1e6)
		}
	}
}

func TestLoadVsComputeBalance(t *testing.T) {
	// The autoencoder is parameter-heavy: on QSPI flash its parameter
	// load time must exceed its compute time (that is what motivates
	// prefetch overlap). For ResNet-8 compute dominates.
	p := STM32H743
	ae := models.Autoencoder(1)
	rn := models.ResNet8(1)
	ld := func(m *nn.Model) int64 { return p.Mem.TransferNs(m.TotalParamBytes()) }
	cp := func(m *nn.Model) int64 {
		var ns int64
		for _, nd := range m.Nodes {
			ns += p.CPU.LayerTimeNs(nd.Layer)
		}
		return ns
	}
	if ld(ae) < cp(ae) {
		t.Errorf("autoencoder: load %.3fms < compute %.3fms; expected load-bound",
			float64(ld(ae))/1e6, float64(cp(ae))/1e6)
	}
	if ld(rn) > cp(rn) {
		t.Errorf("resnet8: load %.3fms > compute %.3fms; expected compute-bound",
			float64(ld(rn))/1e6, float64(cp(rn))/1e6)
	}
}

func TestCyclesToNsRoundsUp(t *testing.T) {
	p := CPUProfile{Name: "x", Hz: 3, DefaultMACsPerCycle: 1} // 3 Hz: 1 cycle = 333333333.3 ns
	if got := p.CyclesToNs(1); got != 333333334 {
		t.Fatalf("CyclesToNs(1) = %d, want 333333334", got)
	}
}

// Property: transfer time is additive-superadditive: splitting a transfer
// into two never gets cheaper than one combined transfer (the setup cost is
// paid per transfer).
func TestPropertyTransferSplitNeverCheaper(t *testing.T) {
	m := QSPIFlash64
	f := func(a, b uint32) bool {
		x, y := int64(a%(1<<24)), int64(b%(1<<24))
		if x == 0 || y == 0 {
			return true
		}
		return m.TransferNs(x)+m.TransferNs(y) >= m.TransferNs(x+y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSwitchCostConfig(t *testing.T) {
	p := STM32H743.WithSwitchCost(9999)
	if p.CPU.SwitchNs != 9999 || STM32H743.CPU.SwitchNs == 9999 {
		t.Fatal("WithSwitchCost must copy, not mutate")
	}
	bad := STM32H743
	bad.CPU.SwitchNs = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative switch cost accepted")
	}
	for _, plat := range Platforms() {
		if plat.CPU.SwitchNs <= 0 {
			t.Errorf("%s: preset should model a context-switch cost", plat.Name)
		}
	}
}

func TestWithHelpers(t *testing.T) {
	p := STM32H743.WithWeightBuf(100)
	if p.WeightBufBytes != 100 || STM32H743.WeightBufBytes == 100 {
		t.Fatal("WithWeightBuf must copy, not mutate")
	}
	q := STM32H743.WithBandwidth(1234)
	if q.Mem.BandwidthBps != 1234 || STM32H743.Mem.BandwidthBps == 1234 {
		t.Fatal("WithBandwidth must copy, not mutate")
	}
}

func TestEnergyProfile(t *testing.T) {
	e := EnergyProfile{CPUActiveMw: 100, IdleMw: 10, DMAActiveMw: 20, FlashReadNjPerByte: 2}
	// 1 s horizon, 0.5 s CPU, 0.25 s DMA, 1 MB flash:
	// idle 10 mW·1 s = 10 mJ = 10000 µJ; cpu 100·0.5 = 50 mJ; dma 20·0.25 = 5 mJ;
	// flash 2 nJ × 1e6 B = 2 mJ → 67 mJ = 67000 µJ.
	got := e.EnergyMicroJ(1e9, 5e8, 25e7, 1_000_000)
	if got < 66999 || got > 67001 {
		t.Fatalf("EnergyMicroJ = %v, want 67000", got)
	}
	if (EnergyProfile{}).EnergyMicroJ(1e9, 1e9, 1e9, 1e9) != 0 {
		t.Fatal("zero profile should cost nothing")
	}
	bad := EnergyProfile{CPUActiveMw: -1}
	if err := bad.Validate(); err == nil {
		t.Fatal("negative power accepted")
	}
	for _, p := range Platforms() {
		if p.Energy.CPUActiveMw <= 0 {
			t.Errorf("%s: preset lacks an energy profile", p.Name)
		}
	}
}
