// Package cost maps neural-network layers onto MCU execution time and
// external-memory transfer time. Profiles are calibrated against published
// CMSIS-NN int8 throughput figures (MACs/cycle by operator class) and
// datasheet external-memory bandwidths, so the simulated latencies land in
// the millisecond range real boards exhibit for the same models.
package cost

import (
	"fmt"
	"math"

	"rtmdm/internal/nn"
	"rtmdm/internal/uarch"
)

// CPUProfile describes an MCU core for cost purposes.
type CPUProfile struct {
	Name string
	// Hz is the core clock frequency.
	Hz int64
	// MACsPerCycle is the sustained int8 multiply-accumulate throughput by
	// operator kind. Operators absent from the map fall back to
	// DefaultMACsPerCycle.
	MACsPerCycle map[nn.Kind]float64
	// DefaultMACsPerCycle covers operator kinds without a specific entry.
	DefaultMACsPerCycle float64
	// LayerOverheadCycles is the fixed per-layer dispatch cost (operator
	// setup, im2col bookkeeping, function-call overhead).
	LayerOverheadCycles int64
	// SwitchNs is the context-switch cost charged when the scheduler
	// dispatches a segment of a different job than the previous one
	// (register save/restore, pipeline refill, cache pollution).
	SwitchNs int64
	// DCache models the data cache in front of the SRAM holding staged
	// weights and activations; the zero value disables it (zero-wait-state
	// SRAM, M4-style).
	DCache uarch.Cache
}

// Validate reports configuration errors.
func (p CPUProfile) Validate() error {
	if p.Hz <= 0 {
		return fmt.Errorf("cost: cpu %q: non-positive clock %d", p.Name, p.Hz)
	}
	if p.DefaultMACsPerCycle <= 0 {
		return fmt.Errorf("cost: cpu %q: non-positive default throughput", p.Name)
	}
	if p.SwitchNs < 0 {
		return fmt.Errorf("cost: cpu %q: negative switch cost", p.Name)
	}
	if err := p.DCache.Validate(); err != nil {
		return fmt.Errorf("cost: cpu %q: %w", p.Name, err)
	}
	for k, v := range p.MACsPerCycle {
		if v <= 0 {
			return fmt.Errorf("cost: cpu %q: non-positive throughput for %v", p.Name, k)
		}
	}
	return nil
}

// macsPerCycle resolves the throughput for a layer kind.
func (p CPUProfile) macsPerCycle(k nn.Kind) float64 {
	if v, ok := p.MACsPerCycle[k]; ok {
		return v
	}
	return p.DefaultMACsPerCycle
}

// LayerCycles returns the execution cost of one layer in core cycles: the
// MAC throughput term, the fixed dispatch overhead, and (when a D-cache is
// configured) the memory stall cycles of the layer's traversal pattern.
func (p CPUProfile) LayerCycles(l nn.Layer) int64 {
	macs := l.MACs()
	if macs == 0 {
		return p.LayerOverheadCycles
	}
	c := int64(math.Ceil(float64(macs) / p.macsPerCycle(l.Kind())))
	return c + p.LayerOverheadCycles + p.DCache.LayerMissCycles(layerShape(l))
}

// layerShape maps an nn layer onto the micro-architectural traversal model.
func layerShape(l nn.Layer) uarch.LayerShape {
	out := l.OutShape()
	sh := uarch.LayerShape{
		ParamBytes: l.ParamBytes(),
		InBytes:    int64(l.InShape().Elems()),
		OutBytes:   int64(out.Elems()),
		SpatialOut: int64(out.H) * int64(out.W),
		OutC:       int64(out.C),
	}
	switch l.Kind() {
	case nn.KindConv2D:
		sh.Kind = uarch.KindConv
	case nn.KindDWConv2D:
		sh.Kind = uarch.KindDWConv
	case nn.KindDense:
		sh.Kind = uarch.KindDense
	default:
		sh.Kind = uarch.KindElementwise
	}
	return sh
}

// CyclesToNs converts core cycles to nanoseconds, rounding up.
func (p CPUProfile) CyclesToNs(cycles int64) int64 {
	return int64(math.Ceil(float64(cycles) * 1e9 / float64(p.Hz)))
}

// LayerTimeNs returns the execution time of one layer in nanoseconds.
func (p CPUProfile) LayerTimeNs(l nn.Layer) int64 {
	return p.CyclesToNs(p.LayerCycles(l))
}

// MemProfile describes an external memory reachable by DMA.
type MemProfile struct {
	Name string
	// BandwidthBps is the sustained DMA read bandwidth in bytes/second.
	BandwidthBps int64
	// SetupNs is the fixed per-transfer cost (DMA programming, command
	// phase, address phase, interrupt latency).
	SetupNs int64
}

// Validate reports configuration errors.
func (m MemProfile) Validate() error {
	if m.BandwidthBps <= 0 {
		return fmt.Errorf("cost: mem %q: non-positive bandwidth %d", m.Name, m.BandwidthBps)
	}
	if m.SetupNs < 0 {
		return fmt.Errorf("cost: mem %q: negative setup %d", m.Name, m.SetupNs)
	}
	return nil
}

// TransferNs returns the time to DMA-read the given number of bytes.
// Zero-byte transfers are free (no transfer is issued).
func (m MemProfile) TransferNs(bytes int64) int64 {
	if bytes <= 0 {
		return 0
	}
	return m.SetupNs + int64(math.Ceil(float64(bytes)*1e9/float64(m.BandwidthBps)))
}

// Contention models shared-bus interference between concurrent CPU compute
// and DMA transfers as exact rational rate factors. A factor of 9/10 means
// the resource progresses at 90% speed while the other is active.
// Num == Den (the default via NoContention) disables interference.
type Contention struct {
	CPUNum, CPUDen int64 // CPU compute rate while DMA is active
	DMANum, DMADen int64 // DMA transfer rate while CPU is computing
}

// NoContention returns an interference-free bus model.
func NoContention() Contention {
	return Contention{CPUNum: 1, CPUDen: 1, DMANum: 1, DMADen: 1}
}

// Validate reports configuration errors.
func (c Contention) Validate() error {
	if c.CPUNum <= 0 || c.CPUDen <= 0 || c.DMANum <= 0 || c.DMADen <= 0 {
		return fmt.Errorf("cost: contention rates must be positive: %+v", c)
	}
	if c.CPUNum > c.CPUDen || c.DMANum > c.DMADen {
		return fmt.Errorf("cost: contention cannot speed a resource up: %+v", c)
	}
	return nil
}

// EnergyProfile models the platform's power draw for energy accounting.
// Numbers are typical Cortex-M datasheet magnitudes; energy is derived
// from simulated busy times and transferred bytes, so it is deterministic.
type EnergyProfile struct {
	// CPUActiveMw is the core's active-compute power in milliwatts.
	CPUActiveMw float64
	// IdleMw is the sleep/WFI floor.
	IdleMw float64
	// DMAActiveMw is the DMA engine + bus power while transferring.
	DMAActiveMw float64
	// FlashReadNjPerByte is the external-flash read energy.
	FlashReadNjPerByte float64
}

// Validate reports configuration errors.
func (e EnergyProfile) Validate() error {
	if e.CPUActiveMw < 0 || e.IdleMw < 0 || e.DMAActiveMw < 0 || e.FlashReadNjPerByte < 0 {
		return fmt.Errorf("cost: negative energy parameter: %+v", e)
	}
	return nil
}

// EnergyMicroJ computes the energy of a window: idle floor over the whole
// horizon plus active increments for CPU and DMA busy time plus flash read
// energy per byte.
func (e EnergyProfile) EnergyMicroJ(horizonNs, cpuBusyNs, dmaBusyNs, flashBytes int64) float64 {
	toS := func(ns int64) float64 { return float64(ns) / 1e9 }
	// mW · s = mJ; ×1000 → µJ.
	uj := e.IdleMw*toS(horizonNs)*1000 +
		e.CPUActiveMw*toS(cpuBusyNs)*1000 +
		e.DMAActiveMw*toS(dmaBusyNs)*1000 +
		e.FlashReadNjPerByte*float64(flashBytes)/1000
	return uj
}

// Platform bundles everything the executor and the analyses need to know
// about the target hardware.
type Platform struct {
	Name string
	CPU  CPUProfile
	Mem  MemProfile
	// SRAMBytes is the total on-chip SRAM.
	SRAMBytes int64
	// WeightBufBytes is the SRAM carved out for staged parameter buffers
	// (the rest holds activations, stacks, and the runtime).
	WeightBufBytes int64
	Bus            Contention
	Energy         EnergyProfile
}

// Validate reports configuration errors.
func (p Platform) Validate() error {
	if err := p.CPU.Validate(); err != nil {
		return err
	}
	if err := p.Mem.Validate(); err != nil {
		return err
	}
	if err := p.Bus.Validate(); err != nil {
		return err
	}
	if p.SRAMBytes <= 0 {
		return fmt.Errorf("cost: platform %q: non-positive SRAM", p.Name)
	}
	if p.WeightBufBytes <= 0 || p.WeightBufBytes > p.SRAMBytes {
		return fmt.Errorf("cost: platform %q: weight buffer %d outside (0, %d]",
			p.Name, p.WeightBufBytes, p.SRAMBytes)
	}
	if err := p.Energy.Validate(); err != nil {
		return err
	}
	return nil
}

// Fingerprint returns a deterministic string covering every cost-relevant
// field of the platform — clock, throughput tables (fmt prints maps in
// sorted key order), memory timing, SRAM partition, bus contention, D-cache.
// Two platforms with equal fingerprints produce identical segmentation and
// analysis results, so the string is safe as a memoization key. Platform
// itself contains a map and cannot be a map key directly.
func (p Platform) Fingerprint() string {
	return fmt.Sprintf("%+v", p)
}

// WithWeightBuf returns a copy of the platform with a different staging
// budget (used by SRAM-sweep experiments).
func (p Platform) WithWeightBuf(bytes int64) Platform {
	p.WeightBufBytes = bytes
	return p
}

// WithBandwidth returns a copy of the platform with a different external
// memory bandwidth (used by bandwidth-sweep experiments).
func (p Platform) WithBandwidth(bps int64) Platform {
	p.Mem.BandwidthBps = bps
	return p
}

// WithSwitchCost returns a copy of the platform with a different context
// switch cost (used by the preemption-overhead ablation).
func (p Platform) WithSwitchCost(ns int64) Platform {
	p.CPU.SwitchNs = ns
	return p
}

// WithDCache returns a copy of the platform with a different data-cache
// size (0 disables the model; used by the cache-sensitivity sweep).
func (p Platform) WithDCache(sizeBytes int64) Platform {
	if sizeBytes <= 0 {
		p.CPU.DCache = uarch.Cache{}
	} else {
		p.CPU.DCache = uarch.Cache{SizeBytes: sizeBytes, LineBytes: 32, MissPenaltyCycles: 8}
	}
	return p
}

// cmsisNN returns the operator throughput table for a CMSIS-NN-class int8
// kernel library. dsp selects an M4/M7-style core with SIMD MAC support.
func cmsisNN(scale float64) map[nn.Kind]float64 {
	return map[nn.Kind]float64{
		nn.KindConv2D:   0.45 * scale,
		nn.KindDWConv2D: 0.28 * scale, // depthwise vectorizes poorly
		nn.KindDense:    0.50 * scale,
		nn.KindMaxPool:  0.80 * scale, // comparisons, not MACs
		nn.KindAvgPool:  0.60 * scale,
		nn.KindAdd:      0.50 * scale,
		nn.KindReLU:     1.00 * scale,
		nn.KindSoftmax:  0.05 * scale, // exp-heavy
		nn.KindConcat:   0.70 * scale, // requantizing copy
		nn.KindPad:      1.20 * scale, // memset + copy
	}
}

// Cortex-M CPU presets. The M7 gets a modest uplift over the M4 from its
// dual-issue pipeline and wider load path.
var (
	CortexM4_180 = CPUProfile{
		Name: "cortex-m4@180MHz", Hz: 180_000_000,
		MACsPerCycle: cmsisNN(1.0), DefaultMACsPerCycle: 0.4,
		LayerOverheadCycles: 2_000, SwitchNs: 4_000,
	}
	CortexM7_216 = CPUProfile{
		Name: "cortex-m7@216MHz", Hz: 216_000_000,
		MACsPerCycle: cmsisNN(1.3), DefaultMACsPerCycle: 0.5,
		LayerOverheadCycles: 2_000, SwitchNs: 2_500,
		DCache: uarch.Cache{SizeBytes: 4 << 10, LineBytes: 32, MissPenaltyCycles: 8},
	}
	CortexM7_480 = CPUProfile{
		Name: "cortex-m7@480MHz", Hz: 480_000_000,
		MACsPerCycle: cmsisNN(1.3), DefaultMACsPerCycle: 0.5,
		LayerOverheadCycles: 2_000, SwitchNs: 1_500,
		DCache: uarch.Cache{SizeBytes: 16 << 10, LineBytes: 32, MissPenaltyCycles: 8},
	}
)

// External memory presets.
var (
	// QSPIFlash64 is a quad-SPI NOR flash at ~64 MB/s sustained reads.
	QSPIFlash64 = MemProfile{Name: "qspi-flash", BandwidthBps: 64 << 20, SetupNs: 2_000}
	// QSPIFlash32 is a slower quad-SPI configuration.
	QSPIFlash32 = MemProfile{Name: "qspi-flash-slow", BandwidthBps: 32 << 20, SetupNs: 2_500}
	// OctalPSRAM is an octal-SPI PSRAM at ~250 MB/s.
	OctalPSRAM = MemProfile{Name: "octal-psram", BandwidthBps: 250 << 20, SetupNs: 1_000}
	// SDRAM is an FMC-attached SDRAM at ~320 MB/s.
	SDRAM = MemProfile{Name: "sdram", BandwidthBps: 320 << 20, SetupNs: 500}
)

// DefaultContention models a 10% CPU slowdown and 10% DMA slowdown while
// the other party is on the bus — typical for a well-partitioned AXI/AHB
// matrix where weight buffers live in a dedicated SRAM bank.
var DefaultContention = Contention{CPUNum: 9, CPUDen: 10, DMANum: 9, DMADen: 10}

// Platform presets used throughout the evaluation.
var (
	// STM32F446 is a low-end target: 180 MHz M4, 128 KB SRAM, slow QSPI.
	STM32F446 = Platform{
		Name: "stm32f446", CPU: CortexM4_180, Mem: QSPIFlash32,
		SRAMBytes: 128 << 10, WeightBufBytes: 48 << 10,
		Bus:    DefaultContention,
		Energy: EnergyProfile{CPUActiveMw: 90, IdleMw: 2, DMAActiveMw: 15, FlashReadNjPerByte: 3.5},
	}
	// STM32F746 is a mid-range target: 216 MHz M7, 320 KB SRAM.
	STM32F746 = Platform{
		Name: "stm32f746", CPU: CortexM7_216, Mem: QSPIFlash64,
		SRAMBytes: 320 << 10, WeightBufBytes: 96 << 10,
		Bus:    DefaultContention,
		Energy: EnergyProfile{CPUActiveMw: 180, IdleMw: 3, DMAActiveMw: 20, FlashReadNjPerByte: 3.0},
	}
	// STM32H743 is the default evaluation target: 480 MHz M7, 512 KB of
	// usable SRAM, QSPI flash for parameters. The flash runs the common
	// 32 MB/s quad-SPI configuration: at 480 MHz the core outruns the
	// external bus, which is exactly the regime that motivates RT-MDM.
	STM32H743 = Platform{
		Name: "stm32h743", CPU: CortexM7_480, Mem: QSPIFlash32,
		SRAMBytes: 512 << 10, WeightBufBytes: 192 << 10,
		Bus:    DefaultContention,
		Energy: EnergyProfile{CPUActiveMw: 260, IdleMw: 4, DMAActiveMw: 25, FlashReadNjPerByte: 3.0},
	}
)

// Platforms lists the built-in platform presets.
func Platforms() []Platform { return []Platform{STM32F446, STM32F746, STM32H743} }

// PlatformByName resolves a preset by name.
func PlatformByName(name string) (Platform, error) {
	for _, p := range Platforms() {
		if p.Name == name {
			return p, nil
		}
	}
	return Platform{}, fmt.Errorf("cost: unknown platform %q", name)
}
