// Package segment partitions a DNN model into SRAM-feasible execution
// segments: units whose parameters are staged from external memory into an
// on-chip buffer before their layers execute. Segments are the scheduling
// granule of RT-MDM — preemption happens only at segment boundaries, and
// the prefetch pipeline overlaps segment k+1's parameter load with segment
// k's compute.
package segment

import (
	"fmt"
	"math"

	"rtmdm/internal/cost"
	"rtmdm/internal/nn"
)

// Part is a (possibly fractional) slice of one model node inside a segment.
// Layers whose parameters exceed the staging budget are split along their
// output-channel dimension into Num/Den fractions; parameter bytes, MACs
// and cycles scale proportionally. Whole layers have Num == Den == 1.
type Part struct {
	Node     int
	Num, Den int64
}

// Whole reports whether the part covers its full layer.
func (p Part) Whole() bool { return p.Num == p.Den }

// Segment is one staged execution unit.
type Segment struct {
	Index int
	Parts []Part
	// LoadBytes is the parameter volume staged before the segment runs.
	LoadBytes int64
	// ComputeCycles is the CPU cost of the segment's layers.
	ComputeCycles int64
	// ComputeNs is ComputeCycles at the plan's CPU clock.
	ComputeNs int64
	// LoadNs is the DMA time for LoadBytes on the plan's external memory
	// (zero when LoadBytes is zero: no transfer is issued).
	LoadNs int64
	// ResidentBytes is the activation state a preempted job holds in SRAM
	// while paused at this segment's *end* boundary (zero for the final
	// segment: the job is complete).
	ResidentBytes int64
}

// Policy selects the packing strategy.
type Policy int

const (
	// Greedy packs consecutive layers into a segment until the staging
	// budget would be exceeded, splitting oversized layers.
	Greedy Policy = iota
	// PerLayer emits one segment per weighted layer (parameter-free
	// layers ride along with their predecessor), still splitting layers
	// that exceed the budget.
	PerLayer
)

func (p Policy) String() string {
	if p == PerLayer {
		return "per-layer"
	}
	return "greedy"
}

// Plan is a complete segmentation of one model for one platform.
type Plan struct {
	Model    *nn.Model
	Platform cost.Platform
	Policy   Policy
	// BudgetBytes is the per-segment staging limit the plan was built for.
	BudgetBytes int64
	Segments    []Segment
}

// Limits bounds a segment along both axes: staged parameter bytes (SRAM
// feasibility) and compute time (non-preemptive region length — the
// preemption granularity δ of the framework). ComputeNs == 0 means
// unbounded compute.
type Limits struct {
	Bytes     int64
	ComputeNs int64
}

// Build segments a model with a byte budget only (unbounded compute). The
// budget is typically Platform.WeightBufBytes divided across tasks and
// pipeline buffer depths, so that all staged segments coexist in SRAM.
func Build(m *nn.Model, p cost.Platform, budgetBytes int64, policy Policy) (*Plan, error) {
	return BuildLimits(m, p, Limits{Bytes: budgetBytes}, policy)
}

// BuildLimits segments a model subject to both the staging byte budget and
// the non-preemptive compute bound. Weighted layers exceeding either limit
// split along their output-channel dimension. Parameter-free operators
// whose standalone cost exceeds the compute bound keep their own segment
// (the bound is soft for them); the resulting plan's MaxComputeNs reports
// the achieved granularity, which the analyses use directly.
func BuildLimits(m *nn.Model, p cost.Platform, lim Limits, policy Policy) (*Plan, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if lim.Bytes <= 0 {
		return nil, fmt.Errorf("segment: non-positive budget %d", lim.Bytes)
	}
	if lim.ComputeNs < 0 {
		return nil, fmt.Errorf("segment: negative compute bound %d", lim.ComputeNs)
	}
	budgetBytes := lim.Bytes
	// Convert the compute bound to cycles once; 0 means unbounded.
	var budgetCycles int64
	if lim.ComputeNs > 0 {
		budgetCycles = int64(float64(lim.ComputeNs) / 1e9 * float64(p.CPU.Hz))
		if budgetCycles < 1 {
			budgetCycles = 1
		}
	}
	pl := &Plan{Model: m, Platform: p, Policy: policy, BudgetBytes: budgetBytes}

	var cur Segment
	flush := func() {
		if len(cur.Parts) == 0 {
			return
		}
		cur.Index = len(pl.Segments)
		pl.Segments = append(pl.Segments, cur)
		cur = Segment{}
	}
	addPart := func(node int, num, den, bytes, cycles int64) {
		cur.Parts = append(cur.Parts, Part{Node: node, Num: num, Den: den})
		cur.LoadBytes += bytes
		cur.ComputeCycles += cycles
	}

	overCycles := func(c int64) bool { return budgetCycles > 0 && c > budgetCycles }
	for i, nd := range m.Nodes {
		l := nd.Layer
		bytes := l.ParamBytes()
		cycles := p.CPU.LayerCycles(l)
		oversized := bytes > budgetBytes || (overCycles(cycles) && splittable(l.Kind()))
		switch {
		case oversized:
			// Oversized layer (by either axis): emit the current segment,
			// then split the layer into equal fractions within both
			// limits.
			if !splittable(l.Kind()) {
				return nil, fmt.Errorf(
					"segment: layer %s (%s, %d B) exceeds budget %d B and kind is not splittable",
					l.Name(), l.Kind(), bytes, budgetBytes)
			}
			flush()
			pieces := (bytes + budgetBytes - 1) / budgetBytes
			if budgetCycles > 0 {
				if cp := (cycles + budgetCycles - 1) / budgetCycles; cp > pieces {
					pieces = cp
				}
			}
			for k := int64(0); k < pieces; k++ {
				pb := share(bytes, k, pieces)
				pc := share(cycles, k, pieces)
				addPart(i, 1, pieces, pb, pc)
				if k < pieces-1 {
					flush()
				}
			}
			if policy == PerLayer {
				// Keep the tail fraction as its own segment boundary
				// candidate: next weighted layer starts fresh.
				continue
			}
		case bytes == 0:
			// Parameter-free layers ride with the current segment, unless
			// that would breach the compute bound; then they open a fresh
			// (zero-load) segment.
			if overCycles(cur.ComputeCycles + cycles) {
				flush()
			}
			addPart(i, 1, 1, 0, cycles)
		case policy == PerLayer:
			flush()
			addPart(i, 1, 1, bytes, cycles)
		default: // Greedy
			if cur.LoadBytes+bytes > budgetBytes || overCycles(cur.ComputeCycles+cycles) {
				flush()
			}
			addPart(i, 1, 1, bytes, cycles)
		}
	}
	flush()

	if len(pl.Segments) == 0 {
		return nil, fmt.Errorf("segment: model %s produced no segments", m.Name)
	}
	for i := range pl.Segments {
		s := &pl.Segments[i]
		s.ComputeNs = p.CPU.CyclesToNs(s.ComputeCycles)
		s.LoadNs = p.Mem.TransferNs(s.LoadBytes)
		if i == len(pl.Segments)-1 {
			continue // job done at the final boundary: nothing resident
		}
		last := s.Parts[len(s.Parts)-1]
		if last.Whole() {
			s.ResidentBytes = m.LiveBytesAfter(last.Node)
		} else {
			// A mid-layer boundary keeps the layer's input and its
			// partially-written output resident.
			s.ResidentBytes = m.LiveBytesDuring(last.Node)
		}
	}
	if err := pl.Validate(); err != nil {
		return nil, err
	}
	return pl, nil
}

// share splits total into `pieces` near-equal integer shares; piece k gets
// share(total,k,pieces) and the shares sum exactly to total.
func share(total, k, pieces int64) int64 {
	return total*(k+1)/pieces - total*k/pieces
}

// splittable reports whether a layer kind supports output-channel splitting.
func splittable(k nn.Kind) bool {
	switch k {
	case nn.KindConv2D, nn.KindDWConv2D, nn.KindDense:
		return true
	}
	return false
}

// Validate checks the plan's structural invariants: the parts cover every
// node exactly once (fractions summing to 1), in order, with conserved
// bytes and cycles, and every segment within budget.
func (pl *Plan) Validate() error {
	covered := make(map[int]float64, len(pl.Model.Nodes))
	prevNode := -1
	var bytes, cycles int64
	for _, s := range pl.Segments {
		if s.LoadBytes > pl.BudgetBytes {
			return fmt.Errorf("segment: segment %d load %d exceeds budget %d",
				s.Index, s.LoadBytes, pl.BudgetBytes)
		}
		if len(s.Parts) == 0 {
			return fmt.Errorf("segment: segment %d is empty", s.Index)
		}
		for _, p := range s.Parts {
			if p.Node < prevNode {
				return fmt.Errorf("segment: node order violated at node %d", p.Node)
			}
			prevNode = p.Node
			covered[p.Node] += float64(p.Num) / float64(p.Den)
		}
		bytes += s.LoadBytes
		cycles += s.ComputeCycles
	}
	for i, nd := range pl.Model.Nodes {
		c := covered[i]
		if math.Abs(c-1) > 1e-9 {
			return fmt.Errorf("segment: node %d (%s) covered %.4f times",
				i, nd.Layer.Name(), c)
		}
	}
	if bytes != pl.Model.TotalParamBytes() {
		return fmt.Errorf("segment: load bytes %d != model param bytes %d",
			bytes, pl.Model.TotalParamBytes())
	}
	var wantCycles int64
	for _, nd := range pl.Model.Nodes {
		wantCycles += pl.Platform.CPU.LayerCycles(nd.Layer)
	}
	if cycles != wantCycles {
		return fmt.Errorf("segment: cycles %d != model cycles %d", cycles, wantCycles)
	}
	return nil
}

// NumSegments returns the segment count.
func (pl *Plan) NumSegments() int { return len(pl.Segments) }

// TotalLoadNs sums per-segment DMA times (each paying its own setup cost).
func (pl *Plan) TotalLoadNs() int64 {
	var n int64
	for _, s := range pl.Segments {
		n += s.LoadNs
	}
	return n
}

// TotalComputeNs sums per-segment CPU times.
func (pl *Plan) TotalComputeNs() int64 {
	var n int64
	for _, s := range pl.Segments {
		n += s.ComputeNs
	}
	return n
}

// MaxLoadBytes returns the largest per-segment staging requirement.
func (pl *Plan) MaxLoadBytes() int64 {
	var m int64
	for _, s := range pl.Segments {
		if s.LoadBytes > m {
			m = s.LoadBytes
		}
	}
	return m
}

// MaxComputeNs returns the largest per-segment compute time — the
// non-preemptive CPU region length that enters blocking analysis.
func (pl *Plan) MaxComputeNs() int64 {
	var m int64
	for _, s := range pl.Segments {
		if s.ComputeNs > m {
			m = s.ComputeNs
		}
	}
	return m
}

// MaxLoadNs returns the largest per-segment DMA time — the non-preemptive
// DMA region length that enters blocking analysis.
func (pl *Plan) MaxLoadNs() int64 {
	var m int64
	for _, s := range pl.Segments {
		if s.LoadNs > m {
			m = s.LoadNs
		}
	}
	return m
}

// ChunkedLoadNs returns the DMA time for `bytes` when transfers are issued
// in chunks of at most chunkBytes (each paying the per-transfer setup).
// chunkBytes ≤ 0 means a single transfer.
func ChunkedLoadNs(mem cost.MemProfile, bytes, chunkBytes int64) int64 {
	if bytes <= 0 {
		return 0
	}
	if chunkBytes <= 0 || bytes <= chunkBytes {
		return mem.TransferNs(bytes)
	}
	full := bytes / chunkBytes
	rem := bytes % chunkBytes
	ns := full * mem.TransferNs(chunkBytes) //lint:allow millitime -- chunk count and per-chunk ns both bounded by validated model sizes; product << 2^63
	if rem > 0 {
		ns += mem.TransferNs(rem)
	}
	return ns
}

// Chunked returns a copy of the plan whose per-segment LoadNs reflects
// chunked DMA issuing: every transfer is at most chunkBytes long, so the
// non-preemptive DMA region shrinks to one chunk at the price of one setup
// per chunk. chunkBytes ≤ 0 returns the receiver unchanged.
func (pl *Plan) Chunked(chunkBytes int64) *Plan {
	if chunkBytes <= 0 {
		return pl
	}
	out := *pl
	out.Segments = append([]Segment(nil), pl.Segments...)
	for i := range out.Segments {
		s := &out.Segments[i]
		s.LoadNs = ChunkedLoadNs(pl.Platform.Mem, s.LoadBytes, chunkBytes)
	}
	return &out
}

// MaxChunkNs returns the longest single DMA transfer of the plan under
// chunking: the non-preemptive DMA region length that enters blocking
// analysis.
func (pl *Plan) MaxChunkNs(chunkBytes int64) int64 {
	var m int64
	for _, s := range pl.Segments {
		b := s.LoadBytes
		if chunkBytes > 0 && b > chunkBytes {
			b = chunkBytes
		}
		if ns := pl.Platform.Mem.TransferNs(b); ns > m {
			m = ns
		}
	}
	return m
}

// MaxResidentBytes returns the largest activation state a preempted job of
// this plan can hold at any segment boundary.
func (pl *Plan) MaxResidentBytes() int64 {
	var m int64
	for _, s := range pl.Segments {
		if s.ResidentBytes > m {
			m = s.ResidentBytes
		}
	}
	return m
}

// SerialNs is the job length when loads and computes strictly alternate
// with no overlap (the load-then-compute baseline).
func (pl *Plan) SerialNs() int64 { return pl.TotalLoadNs() + pl.TotalComputeNs() }

// PipelineNs is the job length under in-order prefetch with the given
// buffer depth: the DMA may run at most `depth-1` segments ahead of the
// CPU (depth ≥ 2 enables overlap; depth 1 degenerates to serial). It is
// the exact makespan of the two-stage in-order pipeline recurrence:
//
//	loadDone[j] = max(loadDone[j-1], compDone[j-depth]) + L[j]
//	compDone[j] = max(compDone[j-1], loadDone[j]) + C[j]
func (pl *Plan) PipelineNs(depth int) int64 {
	return pl.PipelineNsWith(depth, 0, 0, 1, 1, 1, 1)
}

// PipelineNsWith is PipelineNs with analysis hooks: every load is inflated
// by extraLoadNs (per-segment blocking on the DMA), every compute by
// extraCompNs (context-switch overhead), and load/compute stage times are
// scaled by the rational factors loadNum/loadDen and compNum/compDen (≥ 1
// slowdowns for worst-case bus contention).
func (pl *Plan) PipelineNsWith(depth int, extraLoadNs, extraCompNs, loadDen, loadNum, compDen, compNum int64) int64 {
	if depth < 1 {
		panic(fmt.Sprintf("segment: pipeline depth %d", depth))
	}
	n := len(pl.Segments)
	loadDone := make([]int64, n+1)
	compDone := make([]int64, n+1)
	get := func(a []int64, j int) int64 {
		if j < 0 {
			return 0
		}
		return a[j]
	}
	scale := func(v, den, num int64) int64 {
		if den == num {
			return v
		}
		return (v*den + num - 1) / num
	}
	for j := 1; j <= n; j++ {
		s := pl.Segments[j-1]
		load := scale(s.LoadNs, loadDen, loadNum)
		if s.LoadNs > 0 {
			// Zero-byte segments never visit the DMA and are staged the
			// instant the dispatcher reaches them, so per-load blocking
			// only applies to real transfers.
			load += extraLoadNs
		}
		ld := get(loadDone, j-1)
		if prior := get(compDone, j-depth); prior > ld {
			ld = prior
		}
		loadDone[j] = ld + load
		cd := get(compDone, j-1)
		if loadDone[j] > cd {
			cd = loadDone[j]
		}
		compDone[j] = cd + scale(s.ComputeNs, compDen, compNum) + extraCompNs
	}
	return compDone[n]
}
