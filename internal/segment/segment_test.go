package segment

import (
	"testing"
	"testing/quick"

	"rtmdm/internal/cost"
	"rtmdm/internal/models"
	"rtmdm/internal/nn"
)

func plat() cost.Platform { return cost.STM32H743 }

func mustBuild(t *testing.T, m *nn.Model, budget int64, pol Policy) *Plan {
	t.Helper()
	pl, err := Build(m, plat(), budget, pol)
	if err != nil {
		t.Fatalf("Build(%s, %d, %v): %v", m.Name, budget, pol, err)
	}
	return pl
}

func TestGreedyRespectsBudgetAndConserves(t *testing.T) {
	for _, info := range models.Catalog() {
		m := info.Build(1)
		for _, budget := range []int64{16 << 10, 32 << 10, 128 << 10} {
			pl, err := Build(m, plat(), budget, Greedy)
			if err != nil {
				t.Fatalf("%s budget %d: %v", m.Name, budget, err)
			}
			// Validate() runs inside Build; re-run explicitly anyway.
			if err := pl.Validate(); err != nil {
				t.Fatalf("%s budget %d: %v", m.Name, budget, err)
			}
		}
	}
}

func TestPerLayerMakesOneSegmentPerWeightedLayer(t *testing.T) {
	m := models.TinyMLP(1) // 3 dense + softmax, all dense fit in 128K
	pl := mustBuild(t, m, 128<<10, PerLayer)
	weighted := 0
	for _, nd := range m.Nodes {
		if nd.Layer.ParamBytes() > 0 {
			weighted++
		}
	}
	if pl.NumSegments() != weighted {
		t.Fatalf("segments = %d, want %d (one per weighted layer)", pl.NumSegments(), weighted)
	}
}

func TestGreedyPacksMoreThanPerLayer(t *testing.T) {
	m := models.MobileNetV1Q25(1)
	g := mustBuild(t, m, 64<<10, Greedy)
	p := mustBuild(t, m, 64<<10, PerLayer)
	if g.NumSegments() > p.NumSegments() {
		t.Fatalf("greedy %d segments > per-layer %d", g.NumSegments(), p.NumSegments())
	}
	if g.NumSegments() == p.NumSegments() {
		t.Fatal("greedy did not pack anything on mobilenet at 64K")
	}
}

func TestOversizedLayerIsSplit(t *testing.T) {
	m := models.Autoencoder(1) // first dense: 640*128 ≈ 82 KB
	pl := mustBuild(t, m, 32<<10, Greedy)
	// Some part must be fractional.
	frac := false
	for _, s := range pl.Segments {
		if s.LoadBytes > 32<<10 {
			t.Fatalf("segment %d load %d exceeds 32K budget", s.Index, s.LoadBytes)
		}
		for _, p := range s.Parts {
			if !p.Whole() {
				frac = true
			}
		}
	}
	if !frac {
		t.Fatal("no fractional parts despite oversized layers")
	}
}

func TestTinyBudgetStillWorksOrErrors(t *testing.T) {
	// At an absurdly small budget every weighted layer splits into many
	// pieces; conservation must still hold.
	m := models.LeNet5(1)
	pl, err := Build(m, plat(), 2<<10, Greedy)
	if err != nil {
		t.Fatalf("2K budget: %v", err)
	}
	if pl.NumSegments() < 30 {
		t.Fatalf("expected heavy splitting, got %d segments", pl.NumSegments())
	}
}

func TestBadInputs(t *testing.T) {
	m := models.TinyMLP(1)
	if _, err := Build(m, plat(), 0, Greedy); err == nil {
		t.Fatal("zero budget accepted")
	}
	badPlat := plat()
	badPlat.SRAMBytes = 0
	if _, err := Build(m, badPlat, 1<<10, Greedy); err == nil {
		t.Fatal("invalid platform accepted")
	}
}

func TestSerialEqualsPipelineDepth1(t *testing.T) {
	for _, info := range models.Catalog() {
		m := info.Build(1)
		pl := mustBuild(t, m, 32<<10, Greedy)
		if pl.PipelineNs(1) != pl.SerialNs() {
			t.Fatalf("%s: depth-1 pipeline %d != serial %d",
				m.Name, pl.PipelineNs(1), pl.SerialNs())
		}
	}
}

// PT-1: pipeline makespan is monotone nonincreasing in depth and bounded
// below by both resource sums.
func TestPropertyPipelineMonotoneAndBounded(t *testing.T) {
	type seg struct{ L, C uint16 }
	f := func(segs []seg) bool {
		if len(segs) == 0 {
			return true
		}
		pl := &Plan{BudgetBytes: 1}
		var sumL, sumC int64
		for i, s := range segs {
			pl.Segments = append(pl.Segments, Segment{
				Index: i, LoadNs: int64(s.L), ComputeNs: int64(s.C),
				Parts: []Part{{Node: i, Num: 1, Den: 1}},
			})
			sumL += int64(s.L)
			sumC += int64(s.C)
		}
		prev := pl.PipelineNs(1)
		if prev != sumL+sumC {
			return false
		}
		for d := 2; d <= 6; d++ {
			cur := pl.PipelineNs(d)
			if cur > prev {
				return false // must not get worse with more buffers
			}
			if cur < sumL || cur < sumC {
				return false // cannot beat either resource's total demand
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPipelineKnownExample(t *testing.T) {
	// Two segments, L=[10,10], C=[10,10].
	// Serial: 40. Depth 2: load1(10) comp1(10..20) || load2(10..20),
	// comp2(20..30) → 30.
	pl := &Plan{Segments: []Segment{
		{Index: 0, LoadNs: 10, ComputeNs: 10, Parts: []Part{{0, 1, 1}}},
		{Index: 1, LoadNs: 10, ComputeNs: 10, Parts: []Part{{1, 1, 1}}},
	}}
	if got := pl.PipelineNs(2); got != 30 {
		t.Fatalf("depth-2 makespan = %d, want 30", got)
	}
	if got := pl.SerialNs(); got != 40 {
		t.Fatalf("serial = %d, want 40", got)
	}
}

func TestPipelineLoadBoundSaturation(t *testing.T) {
	// Load-dominated chain: makespan ≈ ΣL + last C at depth 2.
	pl := &Plan{}
	for i := 0; i < 10; i++ {
		pl.Segments = append(pl.Segments, Segment{
			Index: i, LoadNs: 100, ComputeNs: 10,
			Parts: []Part{{Node: i, Num: 1, Den: 1}},
		})
	}
	if got, want := pl.PipelineNs(2), int64(10*100+10); got != want {
		t.Fatalf("load-bound makespan = %d, want %d", got, want)
	}
}

func TestPipelineComputeBoundSaturation(t *testing.T) {
	// Compute-dominated chain: makespan ≈ first L + ΣC at depth 2.
	pl := &Plan{}
	for i := 0; i < 10; i++ {
		pl.Segments = append(pl.Segments, Segment{
			Index: i, LoadNs: 10, ComputeNs: 100,
			Parts: []Part{{Node: i, Num: 1, Den: 1}},
		})
	}
	if got, want := pl.PipelineNs(2), int64(10+10*100); got != want {
		t.Fatalf("compute-bound makespan = %d, want %d", got, want)
	}
}

func TestMaxAccessors(t *testing.T) {
	pl := &Plan{Segments: []Segment{
		{LoadBytes: 5, LoadNs: 50, ComputeNs: 7},
		{LoadBytes: 9, LoadNs: 20, ComputeNs: 3},
	}}
	if pl.MaxLoadBytes() != 9 || pl.MaxLoadNs() != 50 || pl.MaxComputeNs() != 7 {
		t.Fatalf("max accessors wrong: %d %d %d",
			pl.MaxLoadBytes(), pl.MaxLoadNs(), pl.MaxComputeNs())
	}
	if pl.TotalLoadNs() != 70 || pl.TotalComputeNs() != 10 {
		t.Fatal("totals wrong")
	}
}

func TestShareSumsExactly(t *testing.T) {
	f := func(total uint32, pieces uint8) bool {
		p := int64(pieces%20) + 1
		tot := int64(total)
		var sum int64
		for k := int64(0); k < p; k++ {
			s := share(tot, k, p)
			if s < 0 {
				return false
			}
			sum += s
		}
		return sum == tot
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSegmentationDeterministic(t *testing.T) {
	m := models.ResNet8(1)
	a := mustBuild(t, m, 24<<10, Greedy)
	b := mustBuild(t, m, 24<<10, Greedy)
	if a.NumSegments() != b.NumSegments() {
		t.Fatal("segment count differs across identical builds")
	}
	for i := range a.Segments {
		if a.Segments[i].LoadBytes != b.Segments[i].LoadBytes ||
			a.Segments[i].ComputeNs != b.Segments[i].ComputeNs {
			t.Fatalf("segment %d differs across identical builds", i)
		}
	}
}

func TestSmallerBudgetNeverFewerSegments(t *testing.T) {
	m := models.MobileNetV1Q25(1)
	prev := 1 << 30
	for _, budget := range []int64{8 << 10, 16 << 10, 32 << 10, 64 << 10, 128 << 10} {
		pl := mustBuild(t, m, budget, Greedy)
		if pl.NumSegments() > prev {
			t.Fatalf("larger budget %d produced more segments (%d > %d)",
				budget, pl.NumSegments(), prev)
		}
		prev = pl.NumSegments()
	}
}

func TestChunkedLoadNs(t *testing.T) {
	mem := cost.MemProfile{Name: "m", BandwidthBps: 1_000_000_000, SetupNs: 100}
	// 2500 bytes in 1000-byte chunks: 2 full (1100 each) + 500 (600).
	if got := ChunkedLoadNs(mem, 2500, 1000); got != 2*1100+600 {
		t.Fatalf("ChunkedLoadNs = %d, want 2800", got)
	}
	// No chunking when chunk ≥ bytes or chunk ≤ 0.
	if got := ChunkedLoadNs(mem, 2500, 0); got != 2600 {
		t.Fatalf("unchunked = %d, want 2600", got)
	}
	if got := ChunkedLoadNs(mem, 500, 1000); got != 600 {
		t.Fatalf("small transfer = %d, want 600", got)
	}
	if got := ChunkedLoadNs(mem, 0, 1000); got != 0 {
		t.Fatalf("zero bytes = %d", got)
	}
}

func TestChunkedPlanAndMaxChunk(t *testing.T) {
	p := plat()
	m := models.Autoencoder(1)
	pl := mustBuild(t, m, 64<<10, Greedy)
	const chunk = 8 << 10
	ch := pl.Chunked(chunk)
	// Totals grow (extra setups), per-segment bytes unchanged.
	if ch.TotalLoadNs() <= pl.TotalLoadNs() {
		t.Fatal("chunking did not add setup cost")
	}
	for i := range ch.Segments {
		if ch.Segments[i].LoadBytes != pl.Segments[i].LoadBytes {
			t.Fatal("chunking changed byte accounting")
		}
	}
	// The np DMA region shrinks to one chunk.
	if got, want := pl.MaxChunkNs(chunk), p.Mem.TransferNs(chunk); got != want {
		t.Fatalf("MaxChunkNs = %d, want %d", got, want)
	}
	if pl.MaxChunkNs(0) != pl.MaxLoadNs() {
		t.Fatal("MaxChunkNs(0) != MaxLoadNs")
	}
	// Chunked(0) returns the receiver unchanged.
	if pl.Chunked(0) != pl {
		t.Fatal("Chunked(0) did not return the receiver")
	}
}

// Property: chunked totals are monotone up to per-chunk ceil rounding —
// finer chunks never reduce total load time by more than the rounding
// slack, and chunking never beats the single transfer.
func TestPropertyChunkingMonotone(t *testing.T) {
	mem := cost.MemProfile{Name: "m", BandwidthBps: 1 << 25, SetupNs: 1500}
	f := func(bytesRaw uint32, c1Raw, c2Raw uint16) bool {
		bytes := int64(bytesRaw%200_000) + 1
		c1 := int64(c1Raw%8_000) + 64
		c2 := int64(c2Raw%8_000) + 64
		if c1 > c2 {
			c1, c2 = c2, c1
		}
		slack := (bytes+c1-1)/c1 + (bytes+c2-1)/c2 + 2 // ±1 ns ceil per chunk
		fine := ChunkedLoadNs(mem, bytes, c1)
		coarse := ChunkedLoadNs(mem, bytes, c2)
		return fine+slack >= coarse && coarse+slack >= mem.TransferNs(bytes)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}
