// Package platform provides the simulated MCU hardware: a single CPU core,
// a single-channel DMA engine fed by an external memory, an SRAM staging
// allocator, and the shared bus that couples CPU and DMA progress rates.
// All components operate in the virtual time of an internal/sim engine, so
// behaviour is deterministic and independent of the Go runtime.
package platform

import (
	"container/heap"
	"fmt"

	"rtmdm/internal/cost"
	"rtmdm/internal/sim"
)

// Bus couples the progress rates of the CPU and the DMA engine according to
// a cost.Contention model: while both are active each runs derated.
type Bus struct {
	eng *sim.Engine
	c   cost.Contention
	cpu *CPU
	dma *DMA
}

// NewBus creates the shared bus and the attached CPU and DMA devices.
func NewBus(eng *sim.Engine, p cost.Platform) (*Bus, *CPU, *DMA) {
	if err := p.Validate(); err != nil {
		panic(fmt.Sprintf("platform: %v", err))
	}
	b := &Bus{eng: eng, c: p.Bus}
	b.cpu = &CPU{eng: eng, bus: b}
	b.dma = &DMA{eng: eng, bus: b, mem: p.Mem}
	return b, b.cpu, b.dma
}

// update recomputes both devices' progress rates after any activity change.
func (b *Bus) update() {
	cpuBusy, dmaBusy := b.cpu.Busy(), b.dma.Busy()
	if b.cpu.act != nil && b.cpu.act.Running() {
		num, den := int64(1), int64(1)
		if dmaBusy {
			num, den = b.c.CPUNum, b.c.CPUDen
		}
		b.cpu.act.SetRate(num, den)
	}
	if b.dma.act != nil && b.dma.act.Running() {
		num, den := int64(1), int64(1)
		if cpuBusy {
			num, den = b.c.DMANum, b.c.DMADen
		}
		b.dma.act.SetRate(num, den)
	}
}

// CPU is the single MCU core. It executes one non-preemptive work item at a
// time; the executor layers preemption at segment boundaries above it.
type CPU struct {
	eng  *sim.Engine
	bus  *Bus
	act  *sim.Activity
	busy bool
	// BusyNs accumulates pure work-ns executed (at unit rate), for
	// utilization accounting.
	BusyNs int64
}

// Busy reports whether a work item is in flight.
func (c *CPU) Busy() bool { return c.busy }

// RemainingWorkNs returns the work-ns left in the current item (0 when
// idle). Wall-clock remaining is at least this (rates never exceed 1).
func (c *CPU) RemainingWorkNs() int64 {
	if !c.busy || c.act == nil {
		return 0
	}
	return c.act.Remaining()
}

// Run starts a non-preemptive work item of the given duration (work-ns at
// full rate). onDone fires in virtual time when it completes. Running while
// busy panics: the executor must serialize.
func (c *CPU) Run(workNs int64, onDone func()) {
	if c.busy {
		panic("platform: CPU.Run while busy")
	}
	if workNs < 0 {
		panic(fmt.Sprintf("platform: negative CPU work %d", workNs))
	}
	c.busy = true
	c.BusyNs += workNs
	c.act = sim.NewActivity(c.eng, workNs, func() {
		c.busy = false
		c.act = nil
		c.bus.update()
		onDone()
	})
	// Start at the rate implied by current DMA activity.
	num, den := int64(1), int64(1)
	if c.bus.dma.Busy() {
		num, den = c.bus.c.CPUNum, c.bus.c.CPUDen
	}
	c.act.Start(num, den)
	c.bus.update()
}

// Abort cancels the in-flight work item without firing its onDone: the
// core is reclaimed immediately (fault handling: a job killed at its
// deadline). The unexecuted remainder is refunded from BusyNs so
// utilization accounting reflects work actually done. Returns the refunded
// work-ns (0 when idle).
func (c *CPU) Abort() int64 {
	if !c.busy || c.act == nil {
		return 0
	}
	rem := c.act.Remaining()
	c.BusyNs -= rem
	c.act.Pause() // banks progress and cancels the armed completion event
	c.act = nil
	c.busy = false
	c.bus.update()
	return rem
}

// Arbitration selects the DMA queue ordering.
type Arbitration int

const (
	// ArbPriority serves the pending transfer with the numerically
	// smallest priority value first (ties FIFO).
	ArbPriority Arbitration = iota
	// ArbFIFO serves transfers strictly in submission order.
	ArbFIFO
)

func (a Arbitration) String() string {
	if a == ArbFIFO {
		return "fifo"
	}
	return "priority"
}

// Transfer is a queued DMA request.
type Transfer struct {
	// Bytes to move from external memory to SRAM.
	Bytes int64
	// Priority orders the queue under ArbPriority; smaller is more urgent.
	Priority int
	// OnStart fires when the transfer leaves the queue and occupies the
	// channel; OnDone when it completes. Either may be nil.
	OnStart func()
	OnDone  func()

	seq   uint64
	index int
}

type transferQueue struct {
	items []*Transfer
	arb   Arbitration
}

func (q *transferQueue) Len() int { return len(q.items) }
func (q *transferQueue) Less(i, j int) bool {
	a, b := q.items[i], q.items[j]
	if q.arb == ArbPriority && a.Priority != b.Priority {
		return a.Priority < b.Priority
	}
	return a.seq < b.seq
}
func (q *transferQueue) Swap(i, j int) {
	q.items[i], q.items[j] = q.items[j], q.items[i]
	q.items[i].index = i
	q.items[j].index = j
}
func (q *transferQueue) Push(x any) {
	t := x.(*Transfer)
	t.index = len(q.items)
	q.items = append(q.items, t)
}
func (q *transferQueue) Pop() any {
	old := q.items
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.index = -1
	q.items = old[:n-1]
	return t
}

// DMA is the single-channel DMA engine reading from external memory.
// Transfers are non-preemptive; queued requests are served according to the
// configured arbitration.
type DMA struct {
	eng     *sim.Engine
	bus     *Bus
	mem     cost.MemProfile
	queue   transferQueue
	current *Transfer
	act     *sim.Activity
	seq     uint64
	derate  func(at sim.Time, workNs int64) int64
	// BusyNs accumulates pure transfer work-ns (at unit rate).
	BusyNs int64
	// Completed counts finished transfers.
	Completed uint64
}

// SetDerate installs a hook that transforms each transfer's nominal work-ns
// at the instant it occupies the channel (fault injection: transient bus
// slowdown windows). The hook must be deterministic in its arguments; a nil
// hook (the default) keeps nominal timing.
func (d *DMA) SetDerate(fn func(at sim.Time, workNs int64) int64) { d.derate = fn }

// Current returns the transfer occupying the channel, or nil when idle.
func (d *DMA) Current() *Transfer { return d.current }

// Abort cancels the in-flight transfer without firing its OnDone and starts
// the next queued transfer, if any (fault handling: the submitting job was
// killed). The unmoved remainder is refunded from BusyNs. Returns the
// refunded work-ns (0 when idle).
func (d *DMA) Abort() int64 {
	if d.current == nil || d.act == nil {
		return 0
	}
	rem := d.act.Remaining()
	d.BusyNs -= rem
	d.act.Pause()
	d.act = nil
	d.current = nil
	d.bus.update()
	d.tryStart()
	return rem
}

// SetArbitration selects the queue policy; it must be called before any
// transfer is submitted.
func (d *DMA) SetArbitration(a Arbitration) {
	if d.current != nil || d.queue.Len() > 0 {
		panic("platform: SetArbitration with transfers in flight")
	}
	d.queue.arb = a
}

// Busy reports whether a transfer occupies the channel.
func (d *DMA) Busy() bool { return d.current != nil }

// QueueLen returns the number of queued (not yet started) transfers.
func (d *DMA) QueueLen() int { return d.queue.Len() }

// Submit enqueues a transfer. Zero-byte transfers complete immediately
// without occupying the channel.
func (d *DMA) Submit(t *Transfer) {
	if t.Bytes < 0 {
		panic(fmt.Sprintf("platform: negative transfer size %d", t.Bytes))
	}
	if t.Bytes == 0 {
		if t.OnStart != nil {
			t.OnStart()
		}
		if t.OnDone != nil {
			t.OnDone()
		}
		return
	}
	t.seq = d.seq
	d.seq++
	heap.Push(&d.queue, t)
	d.tryStart()
}

// Cancel removes a still-queued transfer. It returns false if the transfer
// already started (non-preemptive transfers cannot be revoked).
func (d *DMA) Cancel(t *Transfer) bool {
	if t == d.current || t.index < 0 {
		return false
	}
	heap.Remove(&d.queue, t.index)
	t.index = -1
	return true
}

func (d *DMA) tryStart() {
	if d.current != nil || d.queue.Len() == 0 {
		return
	}
	t := heap.Pop(&d.queue).(*Transfer)
	d.current = t
	work := d.mem.TransferNs(t.Bytes)
	if d.derate != nil {
		if w := d.derate(d.eng.Now(), work); w > 0 {
			work = w
		}
	}
	d.BusyNs += work
	if t.OnStart != nil {
		t.OnStart()
	}
	d.act = sim.NewActivity(d.eng, work, func() {
		d.current = nil
		d.act = nil
		d.Completed++
		d.bus.update()
		if t.OnDone != nil {
			t.OnDone()
		}
		d.tryStart()
	})
	num, den := int64(1), int64(1)
	if d.bus.cpu.Busy() {
		num, den = d.bus.c.DMANum, d.bus.c.DMADen
	}
	d.act.Start(num, den)
	d.bus.update()
}

// SRAM is the staging allocator for parameter buffers. It does pure
// capacity accounting: the executor owns placement policy.
type SRAM struct {
	Capacity int64
	used     int64
	peak     int64
}

// NewSRAM creates an allocator with the given capacity in bytes.
func NewSRAM(capacity int64) *SRAM {
	if capacity <= 0 {
		panic(fmt.Sprintf("platform: non-positive SRAM capacity %d", capacity))
	}
	return &SRAM{Capacity: capacity}
}

// Used returns the currently allocated bytes.
func (s *SRAM) Used() int64 { return s.used }

// Peak returns the high-water mark of allocated bytes.
func (s *SRAM) Peak() int64 { return s.peak }

// Free returns the available bytes.
func (s *SRAM) Free() int64 { return s.Capacity - s.used }

// Alloc reserves n bytes, failing (false) if capacity would be exceeded.
func (s *SRAM) Alloc(n int64) bool {
	if n < 0 {
		panic(fmt.Sprintf("platform: negative alloc %d", n))
	}
	if s.used+n > s.Capacity {
		return false
	}
	s.used += n
	if s.used > s.peak {
		s.peak = s.used
	}
	return true
}

// Release returns n bytes to the pool.
func (s *SRAM) Release(n int64) {
	if n < 0 || n > s.used {
		panic(fmt.Sprintf("platform: release %d with %d used", n, s.used))
	}
	s.used -= n
}
