package platform

import (
	"testing"

	"rtmdm/internal/cost"
	"rtmdm/internal/sim"
)

// testPlatform returns a platform with round numbers: CPU work passes
// through 1:1; memory moves 1 byte/ns with 100 ns setup; 20% mutual
// slowdown under contention.
func testPlatform() cost.Platform {
	return cost.Platform{
		Name: "test",
		CPU: cost.CPUProfile{
			Name: "testcpu", Hz: 1_000_000_000, DefaultMACsPerCycle: 1,
		},
		Mem:            cost.MemProfile{Name: "testmem", BandwidthBps: 1_000_000_000, SetupNs: 100},
		SRAMBytes:      1 << 20,
		WeightBufBytes: 1 << 19,
		Bus:            cost.Contention{CPUNum: 4, CPUDen: 5, DMANum: 4, DMADen: 5},
	}
}

func noContention() cost.Platform {
	p := testPlatform()
	p.Bus = cost.NoContention()
	return p
}

func TestCPURunsWorkToCompletion(t *testing.T) {
	eng := sim.NewEngine()
	_, cpu, _ := NewBus(eng, noContention())
	done := sim.Time(-1)
	cpu.Run(5000, func() { done = eng.Now() })
	eng.RunAll(0)
	if done != 5000 {
		t.Fatalf("CPU work finished at %v, want 5000", done)
	}
	if cpu.Busy() {
		t.Fatal("CPU still busy after completion")
	}
	if cpu.BusyNs != 5000 {
		t.Fatalf("BusyNs = %d, want 5000", cpu.BusyNs)
	}
}

func TestCPURunWhileBusyPanics(t *testing.T) {
	eng := sim.NewEngine()
	_, cpu, _ := NewBus(eng, noContention())
	cpu.Run(100, func() {})
	defer func() {
		if recover() == nil {
			t.Fatal("second Run did not panic")
		}
	}()
	cpu.Run(100, func() {})
}

func TestDMATransferTiming(t *testing.T) {
	eng := sim.NewEngine()
	_, _, dma := NewBus(eng, noContention())
	var started, done sim.Time = -1, -1
	dma.Submit(&Transfer{
		Bytes:   1000,
		OnStart: func() { started = eng.Now() },
		OnDone:  func() { done = eng.Now() },
	})
	eng.RunAll(0)
	if started != 0 {
		t.Fatalf("transfer started at %v, want 0", started)
	}
	// 100 ns setup + 1000 bytes at 1 B/ns.
	if done != 1100 {
		t.Fatalf("transfer done at %v, want 1100", done)
	}
	if dma.Completed != 1 {
		t.Fatalf("Completed = %d", dma.Completed)
	}
}

func TestDMAZeroByteCompletesInline(t *testing.T) {
	eng := sim.NewEngine()
	_, _, dma := NewBus(eng, noContention())
	done := false
	dma.Submit(&Transfer{Bytes: 0, OnDone: func() { done = true }})
	if !done {
		t.Fatal("zero-byte transfer did not complete synchronously")
	}
	if dma.Busy() {
		t.Fatal("zero-byte transfer occupies the channel")
	}
}

func TestDMAPriorityArbitration(t *testing.T) {
	eng := sim.NewEngine()
	_, _, dma := NewBus(eng, noContention())
	var order []int
	mk := func(prio int) *Transfer {
		return &Transfer{Bytes: 100, Priority: prio,
			OnDone: func() { order = append(order, prio) }}
	}
	// First transfer occupies the channel; the rest queue and must be
	// served by ascending priority value.
	dma.Submit(mk(5))
	dma.Submit(mk(3))
	dma.Submit(mk(1))
	dma.Submit(mk(2))
	eng.RunAll(0)
	want := []int{5, 1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("service order %v, want %v", order, want)
		}
	}
}

func TestDMAFIFOArbitration(t *testing.T) {
	eng := sim.NewEngine()
	_, _, dma := NewBus(eng, noContention())
	dma.SetArbitration(ArbFIFO)
	var order []int
	mk := func(prio int) *Transfer {
		return &Transfer{Bytes: 100, Priority: prio,
			OnDone: func() { order = append(order, prio) }}
	}
	dma.Submit(mk(5))
	dma.Submit(mk(3))
	dma.Submit(mk(1))
	eng.RunAll(0)
	want := []int{5, 3, 1}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("FIFO service order %v, want %v", order, want)
		}
	}
}

func TestDMAPriorityTiesAreFIFO(t *testing.T) {
	eng := sim.NewEngine()
	_, _, dma := NewBus(eng, noContention())
	var order []int
	for i := 0; i < 4; i++ {
		i := i
		dma.Submit(&Transfer{Bytes: 10, Priority: 7,
			OnDone: func() { order = append(order, i) }})
	}
	eng.RunAll(0)
	for i, v := range order {
		if v != i {
			t.Fatalf("equal-priority order %v not FIFO", order)
		}
	}
}

func TestDMACancelQueuedTransfer(t *testing.T) {
	eng := sim.NewEngine()
	_, _, dma := NewBus(eng, noContention())
	fired := false
	dma.Submit(&Transfer{Bytes: 1000}) // occupies channel
	tr := &Transfer{Bytes: 10, OnDone: func() { fired = true }}
	dma.Submit(tr)
	if !dma.Cancel(tr) {
		t.Fatal("Cancel of queued transfer failed")
	}
	eng.RunAll(0)
	if fired {
		t.Fatal("cancelled transfer completed")
	}
}

func TestDMACancelInFlightFails(t *testing.T) {
	eng := sim.NewEngine()
	_, _, dma := NewBus(eng, noContention())
	tr := &Transfer{Bytes: 1000}
	dma.Submit(tr)
	if dma.Cancel(tr) {
		t.Fatal("Cancel of in-flight transfer succeeded")
	}
	eng.RunAll(0)
}

func TestBusContentionSlowsBothParties(t *testing.T) {
	// CPU: 1000 work-ns. DMA: 100 setup + 900 bytes = 1000 work-ns.
	// Both start at t=0 with 4/5 mutual derating. They finish their
	// overlapped portions at the same time: 1000 work at 4/5 rate = 1250.
	eng := sim.NewEngine()
	_, cpu, dma := NewBus(eng, testPlatform())
	var cpuDone, dmaDone sim.Time = -1, -1
	cpu.Run(1000, func() { cpuDone = eng.Now() })
	dma.Submit(&Transfer{Bytes: 900, OnDone: func() { dmaDone = eng.Now() }})
	eng.RunAll(0)
	if cpuDone != 1250 {
		t.Fatalf("CPU finished at %v, want 1250", cpuDone)
	}
	if dmaDone != 1250 {
		t.Fatalf("DMA finished at %v, want 1250", dmaDone)
	}
}

func TestBusContentionRecoversWhenPeerFinishes(t *testing.T) {
	// CPU has 1000 work; DMA transfer is short (100 setup + 100 bytes =
	// 200 work). Overlap ends when DMA finishes at 200/(4/5) = 250; by
	// then CPU progressed 250·4/5 = 200 work-ns; the remaining 800 runs
	// at full rate → done at 1050.
	eng := sim.NewEngine()
	_, cpu, dma := NewBus(eng, testPlatform())
	var cpuDone sim.Time = -1
	cpu.Run(1000, func() { cpuDone = eng.Now() })
	dma.Submit(&Transfer{Bytes: 100})
	eng.RunAll(0)
	if cpuDone != 1050 {
		t.Fatalf("CPU finished at %v, want 1050", cpuDone)
	}
}

func TestNoContentionIsTransparent(t *testing.T) {
	eng := sim.NewEngine()
	_, cpu, dma := NewBus(eng, noContention())
	var cpuDone, dmaDone sim.Time = -1, -1
	cpu.Run(1000, func() { cpuDone = eng.Now() })
	dma.Submit(&Transfer{Bytes: 900, OnDone: func() { dmaDone = eng.Now() }})
	eng.RunAll(0)
	if cpuDone != 1000 || dmaDone != 1000 {
		t.Fatalf("cpu %v dma %v, want 1000 both", cpuDone, dmaDone)
	}
}

func TestSRAMAccounting(t *testing.T) {
	s := NewSRAM(1000)
	if !s.Alloc(600) {
		t.Fatal("alloc 600/1000 failed")
	}
	if s.Alloc(500) {
		t.Fatal("overcommit allowed")
	}
	if !s.Alloc(400) {
		t.Fatal("alloc to exactly full failed")
	}
	if s.Free() != 0 || s.Used() != 1000 {
		t.Fatalf("used %d free %d", s.Used(), s.Free())
	}
	s.Release(500)
	if s.Used() != 500 {
		t.Fatalf("used after release = %d", s.Used())
	}
	if s.Peak() != 1000 {
		t.Fatalf("peak = %d, want 1000", s.Peak())
	}
}

func TestSRAMReleaseTooMuchPanics(t *testing.T) {
	s := NewSRAM(100)
	s.Alloc(50)
	defer func() {
		if recover() == nil {
			t.Fatal("over-release did not panic")
		}
	}()
	s.Release(60)
}

func TestSetArbitrationLatePanics(t *testing.T) {
	eng := sim.NewEngine()
	_, _, dma := NewBus(eng, noContention())
	dma.Submit(&Transfer{Bytes: 10})
	defer func() {
		if recover() == nil {
			t.Fatal("late SetArbitration did not panic")
		}
	}()
	dma.SetArbitration(ArbFIFO)
}

func TestDMABackToBackKeepsChannelBusy(t *testing.T) {
	// Serving n equal transfers takes exactly n·(setup+size) with no gaps.
	eng := sim.NewEngine()
	_, _, dma := NewBus(eng, noContention())
	var last sim.Time
	for i := 0; i < 5; i++ {
		dma.Submit(&Transfer{Bytes: 400, OnDone: func() { last = eng.Now() }})
	}
	eng.RunAll(0)
	if want := sim.Time(5 * (100 + 400)); last != want {
		t.Fatalf("5 transfers finished at %v, want %v", last, want)
	}
	if dma.BusyNs != 2500 {
		t.Fatalf("BusyNs = %d, want 2500", dma.BusyNs)
	}
}

func TestArbitrationStringAndQueueLen(t *testing.T) {
	if ArbPriority.String() != "priority" || ArbFIFO.String() != "fifo" {
		t.Fatal("Arbitration strings")
	}
	eng := sim.NewEngine()
	_, _, dma := NewBus(eng, noContention())
	dma.Submit(&Transfer{Bytes: 100})
	dma.Submit(&Transfer{Bytes: 100})
	if dma.QueueLen() != 1 {
		t.Fatalf("QueueLen = %d, want 1 (one in flight, one queued)", dma.QueueLen())
	}
	eng.RunAll(0)
	if dma.QueueLen() != 0 {
		t.Fatal("queue not drained")
	}
}

func TestNewBusRejectsInvalidPlatform(t *testing.T) {
	bad := testPlatform()
	bad.SRAMBytes = 0
	defer func() {
		if recover() == nil {
			t.Fatal("invalid platform accepted")
		}
	}()
	NewBus(sim.NewEngine(), bad)
}

func TestNewSRAMRejectsZeroCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero capacity accepted")
		}
	}()
	NewSRAM(0)
}

func TestSRAMNegativeAllocPanics(t *testing.T) {
	s := NewSRAM(10)
	defer func() {
		if recover() == nil {
			t.Fatal("negative alloc accepted")
		}
	}()
	s.Alloc(-1)
}

func TestCPUNegativeWorkPanics(t *testing.T) {
	eng := sim.NewEngine()
	_, cpu, _ := NewBus(eng, noContention())
	defer func() {
		if recover() == nil {
			t.Fatal("negative CPU work accepted")
		}
	}()
	cpu.Run(-5, func() {})
}

func TestDMANegativeTransferPanics(t *testing.T) {
	eng := sim.NewEngine()
	_, _, dma := NewBus(eng, noContention())
	defer func() {
		if recover() == nil {
			t.Fatal("negative transfer accepted")
		}
	}()
	dma.Submit(&Transfer{Bytes: -1})
}
