// Package core implements the RT-MDM scheduling framework itself: the
// runtime policy space (preemption granularity, prefetch depth, priority
// discipline, DMA arbitration), the named policies compared in the
// evaluation, and the SRAM provisioning rule that makes the prefetch
// pipeline safe.
//
// The framework schedules multi-DNN workloads at *segment* granularity:
// each DNN is partitioned (internal/segment) into units whose parameters
// are staged from external memory into SRAM before execution. RT-MDM's
// contribution is the combination of
//
//  1. segment-boundary preemption (bounded non-preemptive regions on the
//     CPU and the DMA channel),
//  2. a prefetch pipeline that overlaps segment k+1's parameter load with
//     segment k's compute (double buffering, depth configurable),
//  3. priority-consistent DMA arbitration (the memory channel serves
//     transfers in the same order the CPU scheduler would run their jobs),
//  4. static per-task staging buffers so prefetching can never deadlock
//     or overcommit SRAM, and
//  5. a response-time analysis (internal/analysis) that exploits the
//     pipelined per-job demand instead of the serial load+compute sum.
package core

import (
	"fmt"
	"sort"

	"rtmdm/internal/cost"
	"rtmdm/internal/segment"
	"rtmdm/internal/task"
)

// DMAOrder selects how queued parameter transfers are arbitrated.
type DMAOrder int

const (
	// DMAPriority serves transfers in the CPU scheduler's job order —
	// the RT-MDM design point.
	DMAPriority DMAOrder = iota
	// DMAFIFO serves transfers in job-release order (ablation baseline).
	DMAFIFO
)

func (d DMAOrder) String() string {
	if d == DMAFIFO {
		return "fifo"
	}
	return "priority"
}

// OverrunPolicy selects what the executor does when a job misses its
// deadline (which, under fault injection, is how compute overruns surface).
type OverrunPolicy int

const (
	// OverrunContinue lets the late job keep running to completion — the
	// historical behavior. The miss is recorded; nothing else changes.
	OverrunContinue OverrunPolicy = iota
	// OverrunAbort kills the job at its deadline: the CPU and DMA channel
	// are reclaimed immediately and every staging buffer the job holds is
	// released.
	OverrunAbort
	// OverrunSkipNext lets the late job finish but suppresses the task's
	// next release, shedding load so the backlog cannot build up.
	OverrunSkipNext
)

func (o OverrunPolicy) String() string {
	switch o {
	case OverrunAbort:
		return "abort"
	case OverrunSkipNext:
		return "skip-next"
	default:
		return "continue"
	}
}

// ParseOverrunPolicy resolves "continue", "abort", or "skip-next".
func ParseOverrunPolicy(name string) (OverrunPolicy, error) {
	switch name {
	case "continue", "":
		return OverrunContinue, nil
	case "abort":
		return OverrunAbort, nil
	case "skip-next":
		return OverrunSkipNext, nil
	}
	return 0, fmt.Errorf("core: unknown overrun policy %q (try continue, abort, skip-next)", name)
}

// Policy is a point in the scheduling design space. The named constructors
// below produce the configurations compared in the evaluation.
type Policy struct {
	Name string
	// JobLevelNP runs each job non-preemptively start-to-finish (baseline
	// B1 semantics). When false, preemption happens at segment boundaries.
	JobLevelNP bool
	// Depth is the per-task staging buffer depth: the DMA may run at most
	// Depth segments ahead of the CPU within a job. Depth 1 disables
	// overlap (strictly serial load→compute); Depth 2 is double buffering.
	Depth int
	// EDF prioritizes jobs by absolute deadline instead of fixed task
	// priority.
	EDF bool
	// DMA selects the transfer arbitration.
	DMA DMAOrder
	// PrefetchAcrossJobs lets the DMA stage segments for ready jobs other
	// than the one holding (or next to hold) the CPU. RT-MDM enables it;
	// serial baselines do not.
	PrefetchAcrossJobs bool
	// MaxSegNs bounds each segment's non-preemptive compute region (the
	// preemption granularity δ); 0 leaves compute regions unbounded.
	// Segment-preemptive policies use DefaultGranularityNs.
	MaxSegNs int64
	// ChunkBytes splits parameter transfers into chunks of at most this
	// many bytes, bounding the non-preemptive DMA region to one chunk at
	// the price of one transfer setup per chunk (limited-preemption on
	// the memory channel). 0 issues whole-segment transfers.
	ChunkBytes int64
	// TaskDepth overrides Depth per task name (heterogeneous prefetch
	// windows, extension T24): load-heavy tasks can run deep windows
	// while compute-heavy ones stay shallow and cheap in staging SRAM.
	// Missing or zero entries fall back to Depth. Only meaningful for
	// cross-job prefetching policies.
	TaskDepth map[string]int
	// Overrun selects the deadline-miss handling discipline (robustness
	// testbed): continue (default), abort, or skip-next.
	Overrun OverrunPolicy
}

// DepthFor returns the prefetch window depth for a named task: its
// TaskDepth override when present, the policy's Depth otherwise.
func (p Policy) DepthFor(name string) int {
	if d, ok := p.TaskDepth[name]; ok && d > 0 {
		return d
	}
	return p.Depth
}

// Fingerprint returns a deterministic string covering every field that can
// change the policy's offline pipeline (fmt prints the TaskDepth map in
// sorted key order). Two policies with equal fingerprints segment, provision,
// and analyze identically, so the string is safe as a memoization key.
func (p Policy) Fingerprint() string {
	return fmt.Sprintf("%+v", p)
}

// DefaultGranularityNs is the default preemption granularity budget δ₀:
// a policy with buffer depth d splits compute regions to at most δ₀/d, so
// the staged *inventory* a task can hold (depth × segment) — and with it
// the blocking it imposes on more urgent tasks — stays bounded by δ₀
// regardless of depth.
const DefaultGranularityNs = 2_000_000

// granularityFor derives a policy's segment compute bound from its depth.
func granularityFor(depth int) int64 {
	g := int64(DefaultGranularityNs) / int64(depth)
	if g < 250_000 {
		g = 250_000
	}
	return g
}

// Validate reports configuration errors.
func (p Policy) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("core: policy without name")
	}
	if p.Depth < 1 {
		return fmt.Errorf("core: policy %s: depth %d < 1", p.Name, p.Depth)
	}
	if p.MaxSegNs < 0 {
		return fmt.Errorf("core: policy %s: negative preemption granularity", p.Name)
	}
	if p.ChunkBytes < 0 {
		return fmt.Errorf("core: policy %s: negative DMA chunk size", p.Name)
	}
	if p.JobLevelNP && p.Depth > 1 && p.PrefetchAcrossJobs {
		return fmt.Errorf("core: policy %s: cross-job prefetch is meaningless under job-level non-preemption", p.Name)
	}
	if p.TaskDepth != nil && !p.PrefetchAcrossJobs {
		return fmt.Errorf("core: policy %s: per-task depths require cross-job prefetching", p.Name)
	}
	// Sorted so the reported violation is the same task on every run,
	// not whichever the map yields first.
	var depthTasks []string
	for name := range p.TaskDepth {
		depthTasks = append(depthTasks, name)
	}
	sort.Strings(depthTasks)
	for _, name := range depthTasks {
		if d := p.TaskDepth[name]; d < 1 {
			return fmt.Errorf("core: policy %s: task %s depth %d < 1", p.Name, name, d)
		}
	}
	if p.Overrun < OverrunContinue || p.Overrun > OverrunSkipNext {
		return fmt.Errorf("core: policy %s: unknown overrun policy %d", p.Name, p.Overrun)
	}
	return nil
}

// RTMDM is the proposed framework at double-buffering depth: segment-level
// fixed-priority preemption, prefetch pipeline, priority DMA arbitration.
func RTMDM() Policy {
	return Policy{Name: "rt-mdm", Depth: 2, DMA: DMAPriority, PrefetchAcrossJobs: true,
		MaxSegNs: granularityFor(2)}
}

// RTMDMDepth is RT-MDM with a configurable buffer depth (ablation T9).
func RTMDMDepth(depth int) Policy {
	p := RTMDM()
	p.Name = fmt.Sprintf("rt-mdm-d%d", depth)
	p.Depth = depth
	p.MaxSegNs = granularityFor(depth)
	return p
}

// RTMDMEDF is the EDF extension of RT-MDM (experiment F12).
func RTMDMEDF() Policy {
	p := RTMDM()
	p.Name = "rt-mdm-edf"
	p.EDF = true
	return p
}

// RTMDMChunked is RT-MDM with limited-preemption DMA: transfers are issued
// in chunks of at most the given bytes, re-arbitrating the channel between
// chunks (extension T15).
func RTMDMChunked(chunkBytes int64) Policy {
	p := RTMDM()
	p.Name = fmt.Sprintf("rt-mdm-c%dk", chunkBytes>>10)
	p.ChunkBytes = chunkBytes
	return p
}

// RTMDMPerTaskDepth is RT-MDM with heterogeneous prefetch windows
// (extension T24): each named task runs the given buffer depth, anyone
// missing from the map runs the base depth 2. Policy.Depth is set to the
// largest depth so the derived segmentation budget and δ = δ₀/depth remain
// conservative for every task, keeping each task's staged inventory — and
// so the blocking it can impose — bounded by δ₀.
func RTMDMPerTaskDepth(depths map[string]int) Policy {
	maxD := 2
	for _, d := range depths {
		if d > maxD {
			maxD = d
		}
	}
	p := RTMDM()
	p.Name = "rt-mdm-het"
	p.Depth = maxD
	p.MaxSegNs = granularityFor(maxD)
	p.TaskDepth = depths
	return p
}

// RTMDMFIFODMA is RT-MDM with FIFO transfer arbitration (ablation T9).
func RTMDMFIFODMA() Policy {
	p := RTMDM()
	p.Name = "rt-mdm-fifodma"
	p.DMA = DMAFIFO
	return p
}

// SerialNPFP is baseline B1: vanilla TFLM-style execution — each job loads
// and computes strictly serially and runs non-preemptively to completion
// under fixed priorities.
func SerialNPFP() Policy {
	return Policy{Name: "serial-npfp", JobLevelNP: true, Depth: 1, DMA: DMAPriority}
}

// SerialSegFP is baseline B2: segment-boundary preemption but no
// load/compute overlap — isolates the benefit of preemption alone.
func SerialSegFP() Policy {
	return Policy{Name: "serial-segfp", Depth: 1, DMA: DMAPriority,
		MaxSegNs: DefaultGranularityNs}
}

// SerialSegEDF is the EDF counterpart of B2.
func SerialSegEDF() Policy {
	return Policy{Name: "serial-segedf", Depth: 1, EDF: true, DMA: DMAPriority,
		MaxSegNs: DefaultGranularityNs}
}

// ComparisonSet returns the policies of the headline experiments, ordered
// baseline-first.
func ComparisonSet() []Policy {
	return []Policy{SerialNPFP(), SerialSegFP(), RTMDM()}
}

// MaxBufferBytes returns the SRAM staging footprint policy p can reach for
// one task: Depth simultaneously-held segment buffers. The bound uses the
// task's largest segment, so it is safe for any mix of segments.
func MaxBufferBytes(t *task.Task, p Policy) int64 {
	depth := p.DepthFor(t.Name)
	if depth > t.NumSegments() {
		depth = t.NumSegments()
	}
	return int64(depth) * t.Plan.MaxLoadBytes()
}

// Limits returns the segmentation limits a policy implies for one of n
// tasks on the platform: its share of the staging SRAM and its preemption
// granularity.
func (p Policy) Limits(plat cost.Platform, n int) segment.Limits {
	return segment.Limits{Bytes: SegmentBudget(plat, n, p), ComputeNs: p.MaxSegNs}
}

// Provision checks that the task set's staging buffers fit the platform's
// weight-buffer SRAM under policy p.
//
// RT-MDM statically partitions the staging SRAM per task (each task owns
// Depth buffers of its own max segment size), which makes cross-job
// prefetching deadlock-free by construction. Serial policies hold at most
// one staged segment plus one in-flight transfer globally, so only the two
// largest segments matter.
func Provision(s *task.Set, plat cost.Platform, p Policy) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if err := s.Validate(); err != nil {
		return err
	}
	var need int64
	if p.PrefetchAcrossJobs {
		for _, t := range s.Tasks {
			need += MaxBufferBytes(t, p)
		}
	} else {
		// At most one job holds a staged segment while another segment
		// (of the same or the next job) is in flight.
		var first, second int64
		for _, t := range s.Tasks {
			m := t.Plan.MaxLoadBytes()
			if m > first {
				first, second = m, first
			} else if m > second {
				second = m
			}
		}
		need = int64(p.Depth)*first + second
	}
	if need > plat.WeightBufBytes {
		return fmt.Errorf("core: policy %s needs %d B of staging SRAM, platform %s provides %d B",
			p.Name, need, plat.Name, plat.WeightBufBytes)
	}
	// Activation residency: every preempted job parks its boundary
	// activations in the non-staging SRAM while the running job uses its
	// in-flight working set. Job-level non-preemption never parks state.
	actSRAM := plat.SRAMBytes - plat.WeightBufBytes
	var actNeed int64
	for _, t := range s.Tasks {
		if t.Plan.Model == nil {
			continue // synthetic plans (tests) carry no activation data
		}
		if peak := t.Plan.Model.PeakActivationBytes(); peak > actNeed {
			actNeed = peak
		}
	}
	if !p.JobLevelNP {
		var resident int64
		for _, t := range s.Tasks {
			resident += t.Plan.MaxResidentBytes()
		}
		actNeed += resident
	}
	if actNeed > actSRAM {
		return fmt.Errorf("core: policy %s needs %d B of activation SRAM, platform %s provides %d B",
			p.Name, actNeed, plat.Name, actSRAM)
	}
	return nil
}

// SegmentBudget returns the per-segment staging budget to use when
// segmenting models for n tasks under policy p on the platform: the weight
// buffer divided evenly across tasks and buffer depths. Workload generators
// use it so that Provision holds by construction.
func SegmentBudget(plat cost.Platform, n int, p Policy) int64 {
	depth := int64(p.Depth)
	if !p.PrefetchAcrossJobs {
		// Serial policies share the staging SRAM: one resident buffer
		// plus one in flight.
		return plat.WeightBufBytes / (depth + 1)
	}
	if n < 1 {
		n = 1
	}
	return plat.WeightBufBytes / (int64(n) * depth)
}

// PolicyByName resolves a named policy: "rt-mdm", "rt-mdm-edf",
// "rt-mdm-fifodma", "serial-npfp", "serial-segfp", "serial-segedf", or
// "rt-mdm-dN" for a depth-N variant.
func PolicyByName(name string) (Policy, error) {
	switch name {
	case "rt-mdm":
		return RTMDM(), nil
	case "rt-mdm-edf":
		return RTMDMEDF(), nil
	case "rt-mdm-fifodma":
		return RTMDMFIFODMA(), nil
	case "serial-npfp":
		return SerialNPFP(), nil
	case "serial-segfp":
		return SerialSegFP(), nil
	case "serial-segedf":
		return SerialSegEDF(), nil
	}
	var d int
	if n, err := fmt.Sscanf(name, "rt-mdm-d%d", &d); err == nil && n == 1 && d >= 1 {
		return RTMDMDepth(d), nil
	}
	return Policy{}, fmt.Errorf("core: unknown policy %q (try rt-mdm, serial-npfp, serial-segfp, rt-mdm-edf, rt-mdm-fifodma, rt-mdm-dN)", name)
}

// PolicyNames lists the canonical policy names.
func PolicyNames() []string {
	return []string{"serial-npfp", "serial-segfp", "serial-segedf",
		"rt-mdm", "rt-mdm-edf", "rt-mdm-fifodma"}
}
