package core

import (
	"math"
	"testing"

	"rtmdm/internal/sim"
)

func TestSatMulTimeExactInRange(t *testing.T) {
	cases := []struct {
		t sim.Time
		k int64
	}{
		{0, 5}, {1, 1}, {1500 * sim.Millisecond, 20}, {sim.Second, -3},
		{-7 * sim.Millisecond, 9}, {123456789, 987654},
	}
	for _, c := range cases {
		want := sim.Time(int64(c.t) * c.k)
		if got := SatMulTime(c.t, c.k); got != want {
			t.Errorf("SatMulTime(%d, %d) = %d, want %d", c.t, c.k, got, want)
		}
	}
}

func TestSatMulTimeSaturates(t *testing.T) {
	if got := SatMulTime(sim.Time(math.MaxInt64), 2); got != sim.Time(math.MaxInt64) {
		t.Errorf("positive overflow = %d, want MaxInt64", got)
	}
	if got := SatMulTime(sim.Time(math.MaxInt64), -2); got != sim.Time(math.MinInt64) {
		t.Errorf("negative overflow = %d, want MinInt64", got)
	}
	if got := SatMulTime(sim.Time(math.MinInt64), -1); got != sim.Time(math.MaxInt64) {
		t.Errorf("MinInt64 * -1 = %d, want MaxInt64", got)
	}
}

func TestSatAddTime(t *testing.T) {
	if got := SatAddTime(3*sim.Second, 4*sim.Second); got != 7*sim.Second {
		t.Errorf("SatAddTime in range = %d", got)
	}
	if got := SatAddTime(sim.Time(math.MaxInt64), 1); got != sim.Time(math.MaxInt64) {
		t.Errorf("SatAddTime overflow = %d, want MaxInt64", got)
	}
	if got := SatAddTime(sim.Time(math.MinInt64), -1); got != sim.Time(math.MinInt64) {
		t.Errorf("SatAddTime underflow = %d, want MinInt64", got)
	}
}

// TestScaleNsMilliMatchesRaw pins the contract the dogfooded call sites
// rely on: bit-identical to `ns * milli / 1000` whenever the raw
// product fits int64.
func TestScaleNsMilliMatchesRaw(t *testing.T) {
	cases := []struct{ ns, milli int64 }{
		{0, 500}, {1_000_000, 1500}, {1_000_000, 999}, {7, 1},
		{123_456_789, 2750}, {-1_000_000, 1500}, {1_000_000, -300},
		{999, 999}, {1, 1000}, {1e15, 9000},
	}
	for _, c := range cases {
		want := c.ns * c.milli / 1000
		if got := ScaleNsMilli(c.ns, c.milli); got != want {
			t.Errorf("ScaleNsMilli(%d, %d) = %d, want %d", c.ns, c.milli, got, want)
		}
	}
}

func TestScaleNsMilliWideIntermediate(t *testing.T) {
	// ns*milli overflows int64, but the quotient is still in range: the
	// raw expression would wrap, the checked helper stays exact.
	ns := int64(math.MaxInt64 / 1000 * 999)
	got := ScaleNsMilli(ns, 1000)
	if got != ns {
		t.Errorf("ScaleNsMilli(%d, 1000) = %d, want identity", ns, got)
	}
	// Quotient itself out of range: saturate.
	if got := ScaleNsMilli(math.MaxInt64, 2000); got != math.MaxInt64 {
		t.Errorf("saturation = %d, want MaxInt64", got)
	}
	if got := ScaleNsMilli(math.MaxInt64, -2000); got != math.MinInt64 {
		t.Errorf("negative saturation = %d, want MinInt64", got)
	}
}

func TestSatMulNs(t *testing.T) {
	if got := SatMulNs(1<<40, 1<<40); got != math.MaxInt64 {
		t.Errorf("SatMulNs overflow = %d, want MaxInt64", got)
	}
	if got := SatMulNs(-(1 << 40), 1<<40); got != math.MinInt64 {
		t.Errorf("SatMulNs underflow = %d, want MinInt64", got)
	}
	if got := SatMulNs(123, 456); got != 123*456 {
		t.Errorf("SatMulNs in range = %d", got)
	}
}
