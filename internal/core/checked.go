package core

import (
	"math"
	"math/bits"

	"rtmdm/internal/sim"
)

// Checked milli-time arithmetic.
//
// sim.Time is an int64 nanosecond count, so a plain `t * k` silently
// wraps once the product leaves the int64 range — a 5-minute horizon
// times a careless factor is already 2^58. The helpers below are the
// blessed way to scale virtual-time quantities: they compute the full
// 128-bit product and saturate at the int64 range instead of wrapping.
// For every in-range input they return exactly the same value as the
// raw int64 expression they replace, so swapping them in does not
// perturb simulation results. The millitime analyzer (internal/lint)
// points violators here.

// SatMulTime returns t×k, saturating at the sim.Time range instead of
// wrapping. Exact for every in-range product.
func SatMulTime(t sim.Time, k int64) sim.Time {
	return sim.Time(SatMulNs(int64(t), k))
}

// SatAddTime returns a+b, saturating at the sim.Time range instead of
// wrapping.
func SatAddTime(a, b sim.Time) sim.Time {
	s := a + b
	// Overflow iff both operands share a sign the sum does not.
	if (a > 0 && b > 0 && s < 0) || (a < 0 && b < 0 && s >= 0) {
		if a > 0 {
			return sim.Time(math.MaxInt64)
		}
		return sim.Time(math.MinInt64)
	}
	return s
}

// ScaleTimeMilli returns t×milli/1000 — application of a parts-per-
// thousand factor to a virtual-time quantity — computed through a
// 128-bit intermediate so the product cannot wrap. Matches the integer
// expression `t * milli / 1000` exactly whenever that expression does
// not overflow.
func ScaleTimeMilli(t sim.Time, milli int64) sim.Duration {
	return sim.Duration(ScaleNsMilli(int64(t), milli))
}

// ScaleNsMilli is ScaleTimeMilli for raw nanosecond counts held as
// int64 (fault factors, cost-model outputs).
func ScaleNsMilli(nsv, milli int64) int64 {
	neg := (nsv < 0) != (milli < 0)
	hi, lo := bits.Mul64(absU64(nsv), absU64(milli))
	if hi >= 1000 { // quotient would itself overflow 64 bits
		return satBound(neg)
	}
	q, _ := bits.Div64(hi, lo, 1000)
	return clampU64(q, neg)
}

// SatMulNs multiplies two int64 nanosecond-scale quantities with
// saturation at the int64 range. Exact for in-range products.
func SatMulNs(a, b int64) int64 {
	neg := (a < 0) != (b < 0)
	hi, lo := bits.Mul64(absU64(a), absU64(b))
	if hi != 0 {
		return satBound(neg)
	}
	return clampU64(lo, neg)
}

// absU64 is |v| without the MinInt64 trap: the two's-complement bit
// pattern of MinInt64 already reads as 2^63 when reinterpreted.
func absU64(v int64) uint64 {
	if v < 0 {
		return -uint64(v)
	}
	return uint64(v)
}

// clampU64 re-signs an unsigned magnitude, saturating when it does not
// fit the requested sign's int64 half-range.
func clampU64(mag uint64, neg bool) int64 {
	if neg {
		if mag > 1<<63 {
			return math.MinInt64
		}
		return -int64(mag)
	}
	if mag > math.MaxInt64 {
		return math.MaxInt64
	}
	return int64(mag)
}

func satBound(neg bool) int64 {
	if neg {
		return math.MinInt64
	}
	return math.MaxInt64
}
