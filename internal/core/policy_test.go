package core

import (
	"strings"
	"testing"

	"rtmdm/internal/cost"
	"rtmdm/internal/models"
	"rtmdm/internal/segment"
	"rtmdm/internal/sim"
	"rtmdm/internal/task"
)

func TestNamedPoliciesValidate(t *testing.T) {
	pols := []Policy{
		RTMDM(), RTMDMDepth(3), RTMDMEDF(), RTMDMFIFODMA(), RTMDMChunked(4 << 10),
		SerialNPFP(), SerialSegFP(), SerialSegEDF(),
	}
	seen := map[string]bool{}
	for _, p := range pols {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		if seen[p.Name] {
			t.Errorf("duplicate policy name %s", p.Name)
		}
		seen[p.Name] = true
	}
}

func TestPolicyShape(t *testing.T) {
	p := RTMDM()
	if p.JobLevelNP || p.Depth != 2 || p.EDF || !p.PrefetchAcrossJobs || p.DMA != DMAPriority {
		t.Fatalf("RTMDM misconfigured: %+v", p)
	}
	b1 := SerialNPFP()
	if !b1.JobLevelNP || b1.Depth != 1 || b1.PrefetchAcrossJobs {
		t.Fatalf("SerialNPFP misconfigured: %+v", b1)
	}
	b2 := SerialSegFP()
	if b2.JobLevelNP || b2.Depth != 1 {
		t.Fatalf("SerialSegFP misconfigured: %+v", b2)
	}
	if !RTMDMEDF().EDF {
		t.Fatal("RTMDMEDF not EDF")
	}
	if RTMDMFIFODMA().DMA != DMAFIFO {
		t.Fatal("RTMDMFIFODMA not FIFO")
	}
}

func TestValidateRejectsBadPolicies(t *testing.T) {
	bad := Policy{Name: "x", Depth: 0}
	if err := bad.Validate(); err == nil {
		t.Fatal("depth 0 accepted")
	}
	bad = Policy{Name: "", Depth: 1}
	if err := bad.Validate(); err == nil {
		t.Fatal("empty name accepted")
	}
	bad = Policy{Name: "x", Depth: 2, JobLevelNP: true, PrefetchAcrossJobs: true}
	if err := bad.Validate(); err == nil {
		t.Fatal("NP + cross-job prefetch accepted")
	}
	bad = Policy{Name: "x", Depth: 2, ChunkBytes: -1}
	if err := bad.Validate(); err == nil {
		t.Fatal("negative chunk size accepted")
	}
}

func TestComparisonSetOrder(t *testing.T) {
	cs := ComparisonSet()
	if len(cs) != 3 || cs[0].Name != "serial-npfp" || cs[2].Name != "rt-mdm" {
		t.Fatalf("comparison set %v", cs)
	}
}

func mkSet(t *testing.T, budget int64, names ...string) *task.Set {
	t.Helper()
	var ts []*task.Task
	for i, n := range names {
		m, err := models.Build(n, 1)
		if err != nil {
			t.Fatal(err)
		}
		pl, err := segment.Build(m, cost.STM32H743, budget, segment.Greedy)
		if err != nil {
			t.Fatal(err)
		}
		ts = append(ts, &task.Task{
			Name: n, Plan: pl,
			Period:   sim.Duration(100+50*i) * sim.Millisecond,
			Deadline: sim.Duration(100+50*i) * sim.Millisecond,
			Priority: i,
		})
	}
	return task.NewSet(ts...)
}

func TestProvisionAcceptsBudgetedSet(t *testing.T) {
	pol := RTMDM()
	n := 3
	budget := SegmentBudget(cost.STM32H743, n, pol)
	s := mkSet(t, budget, "ds-cnn", "lenet5", "tinymlp")
	if err := Provision(s, cost.STM32H743, pol); err != nil {
		t.Fatal(err)
	}
}

func TestProvisionRejectsOversizedSet(t *testing.T) {
	pol := RTMDM()
	// Segment with the full weight buffer per segment: 3 tasks at depth 2
	// cannot fit.
	s := mkSet(t, cost.STM32H743.WeightBufBytes, "mobilenetv1-0.25", "autoencoder", "resnet8")
	err := Provision(s, cost.STM32H743, pol)
	if err == nil || !strings.Contains(err.Error(), "staging SRAM") {
		t.Fatalf("want staging SRAM error, got %v", err)
	}
}

func TestProvisionSerialOnlyNeedsTwoBuffers(t *testing.T) {
	// Serial policies share staging SRAM, so even large per-task segments
	// provision as long as ~2 of the largest fit.
	pol := SerialSegFP()
	budget := SegmentBudget(cost.STM32H743, 3, pol)
	s := mkSet(t, budget, "mobilenetv1-0.25", "autoencoder", "resnet8")
	if err := Provision(s, cost.STM32H743, pol); err != nil {
		t.Fatal(err)
	}
}

func TestSegmentBudgetScalesWithTasks(t *testing.T) {
	p := RTMDM()
	b2 := SegmentBudget(cost.STM32H743, 2, p)
	b4 := SegmentBudget(cost.STM32H743, 4, p)
	if b4 >= b2 {
		t.Fatalf("budget should shrink with task count: n=2 %d, n=4 %d", b2, b4)
	}
	if b2 != cost.STM32H743.WeightBufBytes/4 {
		t.Fatalf("n=2 depth=2 budget = %d", b2)
	}
	serial := SegmentBudget(cost.STM32H743, 4, SerialSegFP())
	if serial != cost.STM32H743.WeightBufBytes/2 {
		t.Fatalf("serial budget = %d", serial)
	}
}

func TestMaxBufferBytesCapsAtSegmentCount(t *testing.T) {
	s := mkSet(t, 256<<10, "tinymlp") // few segments
	tk := s.Tasks[0]
	deep := RTMDMDepth(64)
	if got := MaxBufferBytes(tk, deep); got != int64(tk.NumSegments())*tk.Plan.MaxLoadBytes() {
		t.Fatalf("MaxBufferBytes with depth > segments = %d", got)
	}
}

func TestDMAOrderString(t *testing.T) {
	if DMAPriority.String() != "priority" || DMAFIFO.String() != "fifo" {
		t.Fatal("DMAOrder strings wrong")
	}
}

func TestPolicyByName(t *testing.T) {
	for _, n := range PolicyNames() {
		p, err := PolicyByName(n)
		if err != nil {
			t.Errorf("%s: %v", n, err)
			continue
		}
		if p.Name != n {
			t.Errorf("resolved %q as %q", n, p.Name)
		}
	}
	p, err := PolicyByName("rt-mdm-d4")
	if err != nil || p.Depth != 4 {
		t.Fatalf("depth variant: %+v, %v", p, err)
	}
	if _, err := PolicyByName("bogus"); err == nil {
		t.Fatal("unknown policy resolved")
	}
}

func TestPerTaskDepthResolution(t *testing.T) {
	p := RTMDMPerTaskDepth(map[string]int{"kws": 4, "det": 1})
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Depth != 4 {
		t.Fatalf("base depth %d, want max override 4", p.Depth)
	}
	if p.MaxSegNs != DefaultGranularityNs/4 {
		t.Fatalf("δ %d not derived from the deepest window", p.MaxSegNs)
	}
	for name, want := range map[string]int{"kws": 4, "det": 1, "other": 4} {
		if got := p.DepthFor(name); got != want {
			t.Errorf("DepthFor(%s) = %d, want %d", name, got, want)
		}
	}
	// Empty map still behaves.
	if d := RTMDM().DepthFor("any"); d != 2 {
		t.Fatalf("uniform policy DepthFor = %d", d)
	}
}

func TestPerTaskDepthValidation(t *testing.T) {
	bad := SerialSegFP()
	bad.TaskDepth = map[string]int{"a": 2}
	if err := bad.Validate(); err == nil {
		t.Fatal("per-task depths accepted without cross-job prefetching")
	}
	neg := RTMDMPerTaskDepth(map[string]int{"a": 0})
	neg.TaskDepth["a"] = -1
	if err := neg.Validate(); err == nil {
		t.Fatal("negative per-task depth accepted")
	}
}

// mkDepthTask builds a synthetic four-segment task whose segments each
// stage segBytes, for provisioning arithmetic tests.
func mkDepthTask(name string, period sim.Duration, prio int, segBytes int64) *task.Task {
	pl := &segment.Plan{Platform: cost.STM32H743, BudgetBytes: segBytes}
	for i := 0; i < 4; i++ {
		pl.Segments = append(pl.Segments, segment.Segment{
			Index:     i,
			Parts:     []segment.Part{{Node: i, Num: 1, Den: 1}},
			LoadBytes: segBytes,
			ComputeNs: 1000,
			LoadNs:    cost.STM32H743.Mem.TransferNs(segBytes),
		})
	}
	return &task.Task{Name: name, Plan: pl, Period: period, Deadline: period, Priority: prio}
}

func TestPerTaskDepthProvisioning(t *testing.T) {
	plat := cost.STM32H743
	deep := mkDepthTask("deep", 40*sim.Millisecond, 0, 3000)
	shallow := mkDepthTask("shallow", 60*sim.Millisecond, 1, 3000)
	s := task.NewSet(deep, shallow)

	het := RTMDMPerTaskDepth(map[string]int{"deep": 4, "shallow": 2})
	if got := MaxBufferBytes(deep, het); got != 4*3000 {
		t.Fatalf("deep buffer %d, want 12000", got)
	}
	if got := MaxBufferBytes(shallow, het); got != 2*3000 {
		t.Fatalf("shallow buffer %d, want 6000", got)
	}
	// 12000 + 6000 = 18000: fits a 20 KB buffer where uniform depth 4
	// (24000) does not.
	plat.WeightBufBytes = 20_000
	if err := Provision(s, plat, het); err != nil {
		t.Fatalf("heterogeneous provisioning failed: %v", err)
	}
	if err := Provision(s, plat, RTMDMDepth(4)); err == nil {
		t.Fatal("uniform depth-4 provisioning unexpectedly fit")
	}
}
