// Package workload generates randomized multi-DNN task sets for the
// evaluation: UUniFast utilization splits over zoo models, periods derived
// from a policy-independent reference demand, and per-policy instantiation
// (each policy re-segments the same spec with its own staging budget).
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"rtmdm/internal/core"
	"rtmdm/internal/cost"
	"rtmdm/internal/models"
	"rtmdm/internal/nn"
	"rtmdm/internal/segment"
	"rtmdm/internal/sim"
	"rtmdm/internal/task"
)

// UUniFast draws n utilization shares summing to total, uniformly over the
// valid simplex (Bini & Buttazzo).
func UUniFast(rng *rand.Rand, n int, total float64) []float64 {
	u := make([]float64, n)
	sum := total
	for i := 0; i < n-1; i++ {
		next := sum * math.Pow(rng.Float64(), 1.0/float64(n-1-i))
		u[i] = sum - next
		sum = next
	}
	u[n-1] = sum
	return u
}

// TaskSpec is the policy-independent description of one task.
type TaskSpec struct {
	Model    string
	Seed     int64
	Period   sim.Duration
	Deadline sim.Duration
	Jitter   sim.Duration
}

// SetSpec is a policy-independent task-set description. Each scheduling
// policy instantiates it with its own segmentation budget, so cross-policy
// comparisons hold models and periods fixed.
type SetSpec struct {
	Tasks []TaskSpec
	// Util is the reference (serial) utilization the spec was generated
	// for.
	Util float64
}

// Params configures task-set generation.
type Params struct {
	Seed int64
	// N is the number of tasks.
	N int
	// Util is the target reference utilization (serial demand / period,
	// summed over tasks).
	Util float64
	// Platform fixes the reference demand used to derive periods.
	Platform cost.Platform
	// Models restricts the zoo subset (nil = whole catalog).
	Models []string
	// MinPeriod and MaxPeriod clamp derived periods (0 = no clamp).
	MinPeriod, MaxPeriod sim.Duration
	// DeadlineFrac scales deadlines relative to periods (0 → 1.0,
	// i.e. implicit deadlines).
	DeadlineFrac float64
	// JitterFrac sets each task's maximum release jitter as a fraction of
	// its period (0 = strictly periodic).
	JitterFrac float64
}

// modelCache avoids rebuilding identical zoo models across thousands of
// generated sets. Models are immutable once built; the mutex makes the
// cache safe for the parallel experiment harness.
var (
	modelCacheMu sync.Mutex
	modelCache   = map[string]*nn.Model{}
)

func cachedModel(name string, seed int64) (*nn.Model, error) {
	key := fmt.Sprintf("%s/%d", name, seed)
	modelCacheMu.Lock()
	m, ok := modelCache[key]
	modelCacheMu.Unlock()
	if ok {
		return m, nil
	}
	m, err := models.Build(name, seed)
	if err != nil {
		return nil, err
	}
	modelCacheMu.Lock()
	modelCache[key] = m
	modelCacheMu.Unlock()
	return m, nil
}

// refBudget is the policy-independent staging budget used to compute the
// reference demand a spec's periods are derived from: the platform weight
// buffer split across n double-buffered tasks.
func refBudget(plat cost.Platform, n int) int64 {
	b := plat.WeightBufBytes / int64(2*n)
	if b < 4<<10 {
		b = 4 << 10
	}
	return b
}

// refDemand returns the serial (load+compute) nanoseconds of one job of
// the model at the reference segmentation.
func refDemand(name string, seed int64, plat cost.Platform, n int) (int64, error) {
	m, err := cachedModel(name, seed)
	if err != nil {
		return 0, err
	}
	pl, err := segment.Build(m, plat, refBudget(plat, n), segment.Greedy)
	if err != nil {
		return 0, err
	}
	return pl.SerialNs(), nil
}

// Generate draws a SetSpec: models uniformly from the catalog subset,
// utilization shares by UUniFast, periods = refDemand/share (clamped).
func Generate(p Params) (SetSpec, error) {
	if p.N < 1 {
		return SetSpec{}, fmt.Errorf("workload: N = %d", p.N)
	}
	if p.Util <= 0 {
		return SetSpec{}, fmt.Errorf("workload: utilization %f", p.Util)
	}
	if err := p.Platform.Validate(); err != nil {
		return SetSpec{}, err
	}
	names := p.Models
	if len(names) == 0 {
		names = models.Names()
	}
	if p.DeadlineFrac == 0 {
		p.DeadlineFrac = 1.0
	}
	if p.DeadlineFrac < 0 || p.DeadlineFrac > 1 {
		return SetSpec{}, fmt.Errorf("workload: deadline fraction %f", p.DeadlineFrac)
	}
	if p.JitterFrac < 0 || p.JitterFrac >= 1 {
		return SetSpec{}, fmt.Errorf("workload: jitter fraction %f", p.JitterFrac)
	}
	rng := rand.New(rand.NewSource(p.Seed))
	shares := UUniFast(rng, p.N, p.Util)
	// Draw a model mix that is *deployable*: a segment-preemptive policy
	// must be able to park every preempted job's boundary activations in
	// the non-staging SRAM alongside the running job's working set. The
	// paper's workloads run on real boards, so feasibility is a
	// precondition of generation, not a scheduling outcome.
	actSRAM := p.Platform.SRAMBytes - p.Platform.WeightBufBytes
	var picks []string
	for try := 0; ; try++ {
		picks = picks[:0]
		var resident, peak int64
		for i := 0; i < p.N; i++ {
			name := names[rng.Intn(len(names))]
			picks = append(picks, name)
			r, pk, err := actFootprint(name, p.Platform, p.N)
			if err != nil {
				return SetSpec{}, err
			}
			resident += r
			if pk > peak {
				peak = pk
			}
		}
		if resident+peak <= actSRAM {
			break
		}
		if try >= 200 {
			return SetSpec{}, fmt.Errorf(
				"workload: no activation-feasible %d-task mix fits %d B on %s",
				p.N, actSRAM, p.Platform.Name)
		}
	}
	spec := SetSpec{Util: p.Util}
	for i := 0; i < p.N; i++ {
		name := picks[i]
		seed := int64(rng.Intn(1 << 16))
		demand, err := refDemand(name, seed, p.Platform, p.N)
		if err != nil {
			return SetSpec{}, err
		}
		period := sim.Duration(float64(demand) / shares[i])
		if p.MinPeriod > 0 && period < p.MinPeriod {
			period = p.MinPeriod
		}
		if p.MaxPeriod > 0 && period > p.MaxPeriod {
			period = p.MaxPeriod
		}
		deadline := sim.Duration(float64(period) * p.DeadlineFrac)
		if deadline < 1 {
			deadline = 1
		}
		spec.Tasks = append(spec.Tasks, TaskSpec{
			Model: name, Seed: seed, Period: period, Deadline: deadline,
			Jitter: sim.Duration(float64(period) * p.JitterFrac),
		})
	}
	return spec, nil
}

// actFootprint returns (max resident boundary bytes, peak working set) of a
// model at the reference segmentation, cached per (model, platform, n).
func actFootprint(name string, plat cost.Platform, n int) (int64, int64, error) {
	key := fmt.Sprintf("act/%s/%s/%d", name, plat.Name, n)
	footprintMu.Lock()
	v, ok := footprintCache[key]
	footprintMu.Unlock()
	if ok {
		return v[0], v[1], nil
	}
	m, err := cachedModel(name, 1)
	if err != nil {
		return 0, 0, err
	}
	pl, err := segment.BuildLimits(m, plat,
		segment.Limits{Bytes: refBudget(plat, n), ComputeNs: core.DefaultGranularityNs / 2},
		segment.Greedy)
	if err != nil {
		return 0, 0, err
	}
	r, pk := pl.MaxResidentBytes(), m.PeakActivationBytes()
	footprintMu.Lock()
	footprintCache[key] = [2]int64{r, pk}
	footprintMu.Unlock()
	return r, pk, nil
}

var (
	footprintMu    sync.Mutex
	footprintCache = map[string][2]int64{}
)

// Instantiate builds the runnable task set for one policy: every model is
// segmented with the policy's staging budget and preemption granularity,
// and priorities are assigned rate-monotonically.
func (sp SetSpec) Instantiate(plat cost.Platform, pol core.Policy) (*task.Set, error) {
	return sp.InstantiateLimits(plat, pol.Limits(plat, len(sp.Tasks)))
}

// InstantiateLimits is Instantiate with explicit segmentation limits (used
// by the SRAM-sweep experiment).
func (sp SetSpec) InstantiateLimits(plat cost.Platform, lim segment.Limits) (*task.Set, error) {
	if len(sp.Tasks) == 0 {
		return nil, fmt.Errorf("workload: empty spec")
	}
	var ts []*task.Task
	for i, tsp := range sp.Tasks {
		m, err := cachedModel(tsp.Model, tsp.Seed)
		if err != nil {
			return nil, err
		}
		pl, err := segment.BuildLimits(m, plat, lim, segment.Greedy)
		if err != nil {
			return nil, err
		}
		ts = append(ts, &task.Task{
			Name:     fmt.Sprintf("t%d-%s", i, tsp.Model),
			Plan:     pl,
			Period:   tsp.Period,
			Deadline: tsp.Deadline,
			Jitter:   tsp.Jitter,
			Priority: i,
		})
	}
	s := task.NewSet(ts...)
	s.AssignRM()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}
