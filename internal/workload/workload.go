// Package workload generates randomized multi-DNN task sets for the
// evaluation: UUniFast utilization splits over zoo models, periods derived
// from a policy-independent reference demand, and per-policy instantiation
// (each policy re-segments the same spec with its own staging budget).
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"

	"rtmdm/internal/core"
	"rtmdm/internal/cost"
	"rtmdm/internal/metrics"
	"rtmdm/internal/models"
	"rtmdm/internal/nn"
	"rtmdm/internal/segment"
	"rtmdm/internal/sim"
	"rtmdm/internal/task"
)

// cacheIns carries hit/miss counters for the memoized generation pipeline
// (nil metrics when instrumentation is off, making every update a no-op).
type cacheIns struct {
	modelHits, modelMisses *metrics.Counter
	planHits, planMisses   *metrics.Counter
	specHits, specMisses   *metrics.Counter
}

var instr atomic.Pointer[cacheIns]

func init() { instr.Store(&cacheIns{}) }

// Instrument wires the generation caches to the registry; Instrument(nil)
// disables instrumentation again.
func Instrument(r *metrics.Registry) {
	if r == nil {
		instr.Store(&cacheIns{})
		return
	}
	instr.Store(&cacheIns{
		modelHits:   r.Counter("workload.model_cache_hits", "lookups", "zoo models served from cache"),
		modelMisses: r.Counter("workload.model_cache_misses", "lookups", "zoo models built from scratch"),
		planHits:    r.Counter("workload.plan_cache_hits", "lookups", "segmentation plans served from cache"),
		planMisses:  r.Counter("workload.plan_cache_misses", "lookups", "segmentation plans built from scratch"),
		specHits:    r.Counter("workload.spec_cache_hits", "lookups", "generated specs served from cache"),
		specMisses:  r.Counter("workload.spec_cache_misses", "lookups", "generated specs drawn from scratch"),
	})
}

// UUniFast draws n utilization shares summing to total, uniformly over the
// valid simplex (Bini & Buttazzo).
func UUniFast(rng *rand.Rand, n int, total float64) []float64 {
	u := make([]float64, n)
	sum := total
	for i := 0; i < n-1; i++ {
		next := sum * math.Pow(rng.Float64(), 1.0/float64(n-1-i))
		u[i] = sum - next
		sum = next
	}
	u[n-1] = sum
	return u
}

// TaskSpec is the policy-independent description of one task.
type TaskSpec struct {
	Model    string
	Seed     int64
	Period   sim.Duration
	Deadline sim.Duration
	Jitter   sim.Duration
}

// SetSpec is a policy-independent task-set description. Each scheduling
// policy instantiates it with its own segmentation budget, so cross-policy
// comparisons hold models and periods fixed.
type SetSpec struct {
	Tasks []TaskSpec
	// Util is the reference (serial) utilization the spec was generated
	// for.
	Util float64
}

// Fingerprint returns a deterministic string covering every field of the
// spec, for use as a memoization key alongside platform and policy
// fingerprints.
func (sp SetSpec) Fingerprint() string {
	return fmt.Sprintf("%+v", sp)
}

// Params configures task-set generation.
type Params struct {
	Seed int64
	// N is the number of tasks.
	N int
	// Util is the target reference utilization (serial demand / period,
	// summed over tasks).
	Util float64
	// Platform fixes the reference demand used to derive periods.
	Platform cost.Platform
	// Models restricts the zoo subset (nil = whole catalog).
	Models []string
	// MinPeriod and MaxPeriod clamp derived periods (0 = no clamp).
	MinPeriod, MaxPeriod sim.Duration
	// DeadlineFrac scales deadlines relative to periods (0 → 1.0,
	// i.e. implicit deadlines).
	DeadlineFrac float64
	// JitterFrac sets each task's maximum release jitter as a fraction of
	// its period (0 = strictly periodic).
	JitterFrac float64
}

// The generation pipeline is memoized at every level that repeats across
// sweep points: models, segmentation plans, reference demands, activation
// footprints, and whole generated specs. All caches are sync.Map so the
// parallel experiment harness's workers never serialize on a shared mutex;
// every cached computation is a pure function of its key, so a racing
// duplicate compute stores an identical value and determinism is preserved.
//
// modelCache avoids rebuilding identical zoo models across thousands of
// generated sets. Models are immutable once built.
var modelCache sync.Map // "name/seed" → *nn.Model

func cachedModel(name string, seed int64) (*nn.Model, error) {
	key := fmt.Sprintf("%s/%d", name, seed)
	if m, ok := modelCache.Load(key); ok {
		instr.Load().modelHits.Add(1)
		return m.(*nn.Model), nil
	}
	instr.Load().modelMisses.Add(1)
	m, err := models.Build(name, seed)
	if err != nil {
		return nil, err
	}
	modelCache.Store(key, m)
	return m, nil
}

// planCache memoizes segment.BuildLimits results. Plans are immutable after
// Build and every consumer (Provision, the analyses, the executor) treats
// them as read-only, so one plan is safely shared across task sets and
// goroutines. The key includes the full platform fingerprint: WithWeightBuf/
// WithDCache/WithBandwidth variants keep the platform name but change
// segmentation, and must not collide.
var planCache sync.Map // model/seed/limits/platform-fingerprint → *segment.Plan

func cachedPlan(name string, seed int64, plat cost.Platform, lim segment.Limits) (*segment.Plan, error) {
	key := fmt.Sprintf("%s/%d/%d/%d|%s", name, seed, lim.Bytes, lim.ComputeNs, plat.Fingerprint())
	if pl, ok := planCache.Load(key); ok {
		instr.Load().planHits.Add(1)
		return pl.(*segment.Plan), nil
	}
	instr.Load().planMisses.Add(1)
	m, err := cachedModel(name, seed)
	if err != nil {
		return nil, err
	}
	pl, err := segment.BuildLimits(m, plat, lim, segment.Greedy)
	if err != nil {
		return nil, err
	}
	planCache.Store(key, pl)
	return pl, nil
}

// refBudget is the policy-independent staging budget used to compute the
// reference demand a spec's periods are derived from: the platform weight
// buffer split across n double-buffered tasks.
func refBudget(plat cost.Platform, n int) int64 {
	b := plat.WeightBufBytes / int64(2*n)
	if b < 4<<10 {
		b = 4 << 10
	}
	return b
}

// refDemandCache memoizes the reference serial demand per (model, seed,
// platform, n). Keyed on the full platform fingerprint so cost-model
// variants of a platform (different D-cache, bandwidth, buffer split) never
// reuse each other's demands.
var refDemandCache sync.Map

// refDemand returns the serial (load+compute) nanoseconds of one job of
// the model at the reference segmentation.
func refDemand(name string, seed int64, plat cost.Platform, n int) (int64, error) {
	key := fmt.Sprintf("%s/%d/%d|%s", name, seed, n, plat.Fingerprint())
	if d, ok := refDemandCache.Load(key); ok {
		return d.(int64), nil
	}
	m, err := cachedModel(name, seed)
	if err != nil {
		return 0, err
	}
	pl, err := segment.Build(m, plat, refBudget(plat, n), segment.Greedy)
	if err != nil {
		return 0, err
	}
	d := pl.SerialNs()
	refDemandCache.Store(key, d)
	return d, nil
}

// specCache memoizes Generate: the whole draw is a pure function of Params
// (the rng is seeded from p.Seed and the catalog order is fixed), so one
// generated spec serves every experiment that sweeps the same point.
var specCache sync.Map // Params fingerprint → SetSpec

// Generate draws a SetSpec: models uniformly from the catalog subset,
// utilization shares by UUniFast, periods = refDemand/share (clamped).
func Generate(p Params) (SetSpec, error) {
	key := fmt.Sprintf("%+v", p)
	if sp, ok := specCache.Load(key); ok {
		instr.Load().specHits.Add(1)
		return sp.(SetSpec), nil
	}
	instr.Load().specMisses.Add(1)
	sp, err := generate(p)
	if err != nil {
		return SetSpec{}, err
	}
	specCache.Store(key, sp)
	return sp, nil
}

func generate(p Params) (SetSpec, error) {
	if p.N < 1 {
		return SetSpec{}, fmt.Errorf("workload: N = %d", p.N)
	}
	if p.Util <= 0 {
		return SetSpec{}, fmt.Errorf("workload: utilization %f", p.Util)
	}
	if err := p.Platform.Validate(); err != nil {
		return SetSpec{}, err
	}
	names := p.Models
	if len(names) == 0 {
		names = models.Names()
	}
	if p.DeadlineFrac == 0 {
		p.DeadlineFrac = 1.0
	}
	if p.DeadlineFrac < 0 || p.DeadlineFrac > 1 {
		return SetSpec{}, fmt.Errorf("workload: deadline fraction %f", p.DeadlineFrac)
	}
	if p.JitterFrac < 0 || p.JitterFrac >= 1 {
		return SetSpec{}, fmt.Errorf("workload: jitter fraction %f", p.JitterFrac)
	}
	rng := rand.New(rand.NewSource(p.Seed))
	shares := UUniFast(rng, p.N, p.Util)
	// Draw a model mix that is *deployable*: a segment-preemptive policy
	// must be able to park every preempted job's boundary activations in
	// the non-staging SRAM alongside the running job's working set. The
	// paper's workloads run on real boards, so feasibility is a
	// precondition of generation, not a scheduling outcome.
	actSRAM := p.Platform.SRAMBytes - p.Platform.WeightBufBytes
	var picks []string
	for try := 0; ; try++ {
		picks = picks[:0]
		var resident, peak int64
		for i := 0; i < p.N; i++ {
			name := names[rng.Intn(len(names))]
			picks = append(picks, name)
			r, pk, err := actFootprint(name, p.Platform, p.N)
			if err != nil {
				return SetSpec{}, err
			}
			resident += r
			if pk > peak {
				peak = pk
			}
		}
		if resident+peak <= actSRAM {
			break
		}
		if try >= 200 {
			return SetSpec{}, fmt.Errorf(
				"workload: no activation-feasible %d-task mix fits %d B on %s",
				p.N, actSRAM, p.Platform.Name)
		}
	}
	spec := SetSpec{Util: p.Util}
	for i := 0; i < p.N; i++ {
		name := picks[i]
		seed := int64(rng.Intn(1 << 16))
		demand, err := refDemand(name, seed, p.Platform, p.N)
		if err != nil {
			return SetSpec{}, err
		}
		period := sim.Duration(float64(demand) / shares[i]) //lint:allow millitime -- UUniFast share division at generation time; clamped to [MinPeriod, MaxPeriod]
		if p.MinPeriod > 0 && period < p.MinPeriod {
			period = p.MinPeriod
		}
		if p.MaxPeriod > 0 && period > p.MaxPeriod {
			period = p.MaxPeriod
		}
		deadline := sim.Duration(float64(period) * p.DeadlineFrac) //lint:allow millitime -- generation-time fraction of an already-clamped period
		if deadline < 1 {
			deadline = 1
		}
		spec.Tasks = append(spec.Tasks, TaskSpec{
			Model: name, Seed: seed, Period: period, Deadline: deadline,
			Jitter: sim.Duration(float64(period) * p.JitterFrac), //lint:allow millitime -- generation-time fraction of an already-clamped period
		})
	}
	return spec, nil
}

// actFootprint returns (max resident boundary bytes, peak working set) of a
// model at the reference segmentation, cached per (model, platform name, n).
// The key deliberately uses the platform *name*, matching the behaviour the
// published result tables were generated with: cost-model variants of a
// named platform share one footprint entry.
func actFootprint(name string, plat cost.Platform, n int) (int64, int64, error) {
	key := fmt.Sprintf("act/%s/%s/%d", name, plat.Name, n)
	if v, ok := footprintCache.Load(key); ok {
		f := v.([2]int64)
		return f[0], f[1], nil
	}
	m, err := cachedModel(name, 1)
	if err != nil {
		return 0, 0, err
	}
	pl, err := segment.BuildLimits(m, plat,
		segment.Limits{Bytes: refBudget(plat, n), ComputeNs: core.DefaultGranularityNs / 2},
		segment.Greedy)
	if err != nil {
		return 0, 0, err
	}
	r, pk := pl.MaxResidentBytes(), m.PeakActivationBytes()
	footprintCache.Store(key, [2]int64{r, pk})
	return r, pk, nil
}

var footprintCache sync.Map // "act/name/platName/n" → [2]int64{resident, peak}

// Instantiate builds the runnable task set for one policy: every model is
// segmented with the policy's staging budget and preemption granularity,
// and priorities are assigned rate-monotonically.
func (sp SetSpec) Instantiate(plat cost.Platform, pol core.Policy) (*task.Set, error) {
	return sp.InstantiateLimits(plat, pol.Limits(plat, len(sp.Tasks)))
}

// InstantiateLimits is Instantiate with explicit segmentation limits (used
// by the SRAM-sweep experiment).
func (sp SetSpec) InstantiateLimits(plat cost.Platform, lim segment.Limits) (*task.Set, error) {
	if len(sp.Tasks) == 0 {
		return nil, fmt.Errorf("workload: empty spec")
	}
	var ts []*task.Task
	for i, tsp := range sp.Tasks {
		pl, err := cachedPlan(tsp.Model, tsp.Seed, plat, lim)
		if err != nil {
			return nil, err
		}
		ts = append(ts, &task.Task{
			Name:     fmt.Sprintf("t%d-%s", i, tsp.Model),
			Plan:     pl,
			Period:   tsp.Period,
			Deadline: tsp.Deadline,
			Jitter:   tsp.Jitter,
			Priority: i,
		})
	}
	s := task.NewSet(ts...)
	s.AssignRM()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}
