package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"rtmdm/internal/core"
	"rtmdm/internal/cost"
	"rtmdm/internal/models"
	"rtmdm/internal/segment"
	"rtmdm/internal/sim"
)

// PT-4: UUniFast shares sum to the target and are all nonnegative.
func TestPropertyUUniFast(t *testing.T) {
	f := func(seed int64, nRaw uint8, uRaw uint8) bool {
		n := int(nRaw%10) + 1
		total := float64(uRaw%40)/10.0 + 0.05
		rng := rand.New(rand.NewSource(seed))
		u := UUniFast(rng, n, total)
		if len(u) != n {
			return false
		}
		var sum float64
		for _, v := range u {
			if v < 0 {
				return false
			}
			sum += v
		}
		return math.Abs(sum-total) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateHitsTargetUtilization(t *testing.T) {
	plat := cost.STM32H743
	for _, util := range []float64{0.3, 0.6, 0.9} {
		spec, err := Generate(Params{Seed: 42, N: 4, Util: util, Platform: plat})
		if err != nil {
			t.Fatal(err)
		}
		if len(spec.Tasks) != 4 {
			t.Fatalf("got %d tasks", len(spec.Tasks))
		}
		// Instantiate at the reference budget and check the realized
		// serial utilization is close to the target (clamping and
		// re-segmentation introduce slack).
		s, err := spec.InstantiateLimits(plat, segment.Limits{Bytes: refBudget(plat, 4)})
		if err != nil {
			t.Fatal(err)
		}
		got := s.SerialUtilization()
		if math.Abs(got-util) > 0.05*util+0.02 {
			t.Errorf("target %v realized %v", util, got)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := Params{Seed: 7, N: 5, Util: 0.5, Platform: cost.STM32H743}
	a, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Tasks {
		if a.Tasks[i] != b.Tasks[i] {
			t.Fatalf("spec differs at task %d: %+v vs %+v", i, a.Tasks[i], b.Tasks[i])
		}
	}
	c, err := Generate(Params{Seed: 8, N: 5, Util: 0.5, Platform: cost.STM32H743})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Tasks {
		if a.Tasks[i] != c.Tasks[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical specs")
	}
}

func TestInstantiatePerPolicyBudgets(t *testing.T) {
	plat := cost.STM32H743
	spec, err := Generate(Params{Seed: 1, N: 3, Util: 0.4, Platform: plat})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := spec.Instantiate(plat, core.RTMDM())
	if err != nil {
		t.Fatal(err)
	}
	np, err := spec.Instantiate(plat, core.SerialNPFP())
	if err != nil {
		t.Fatal(err)
	}
	// RT-MDM splits the SRAM across tasks and buffers → more segments.
	var rtSegs, npSegs int
	for i := range rt.Tasks {
		rtSegs += rt.Tasks[i].NumSegments()
		npSegs += np.Tasks[i].NumSegments()
	}
	if rtSegs < npSegs {
		t.Fatalf("RT-MDM budget produced fewer segments (%d) than NP (%d)", rtSegs, npSegs)
	}
	// Instantiated sets must provision under their policies.
	if err := core.Provision(rt, plat, core.RTMDM()); err != nil {
		t.Fatal(err)
	}
	if err := core.Provision(np, plat, core.SerialNPFP()); err != nil {
		t.Fatal(err)
	}
	// Same periods across policies (the comparison axis).
	for i := range rt.Tasks {
		if rt.Tasks[i].Period != np.Tasks[i].Period {
			t.Fatal("periods differ across policy instantiations")
		}
	}
}

func TestPeriodClamping(t *testing.T) {
	plat := cost.STM32H743
	spec, err := Generate(Params{
		Seed: 3, N: 4, Util: 0.5, Platform: plat,
		MinPeriod: 50 * sim.Millisecond, MaxPeriod: 500 * sim.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, tk := range spec.Tasks {
		if tk.Period < 50*sim.Millisecond || tk.Period > 500*sim.Millisecond {
			t.Fatalf("period %v escaped clamp", tk.Period)
		}
	}
}

func TestDeadlineFraction(t *testing.T) {
	plat := cost.STM32H743
	spec, err := Generate(Params{Seed: 3, N: 4, Util: 0.5, Platform: plat, DeadlineFrac: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	for _, tk := range spec.Tasks {
		want := sim.Duration(float64(tk.Period) * 0.8)
		if diff := tk.Deadline - want; diff < -1 || diff > 1 {
			t.Fatalf("deadline %v, want ≈ %v", tk.Deadline, want)
		}
	}
	if _, err := Generate(Params{Seed: 3, N: 4, Util: 0.5, Platform: plat, DeadlineFrac: 1.5}); err == nil {
		t.Fatal("deadline fraction > 1 accepted (constrained model)")
	}
}

func TestModelSubset(t *testing.T) {
	plat := cost.STM32H743
	spec, err := Generate(Params{
		Seed: 11, N: 6, Util: 0.5, Platform: plat,
		Models: []string{"ds-cnn", "lenet5"},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, tk := range spec.Tasks {
		if tk.Model != "ds-cnn" && tk.Model != "lenet5" {
			t.Fatalf("model %q outside subset", tk.Model)
		}
	}
}

func TestGenerateRejectsBadParams(t *testing.T) {
	plat := cost.STM32H743
	if _, err := Generate(Params{Seed: 1, N: 0, Util: 0.5, Platform: plat}); err == nil {
		t.Fatal("N=0 accepted")
	}
	if _, err := Generate(Params{Seed: 1, N: 2, Util: 0, Platform: plat}); err == nil {
		t.Fatal("U=0 accepted")
	}
	if _, err := Generate(Params{Seed: 1, N: 2, Util: 0.5}); err == nil {
		t.Fatal("zero platform accepted")
	}
}

func TestInstantiateEmptySpecFails(t *testing.T) {
	if _, err := (SetSpec{}).Instantiate(cost.STM32H743, core.RTMDM()); err == nil {
		t.Fatal("empty spec instantiated")
	}
}

func TestCacheReturnsEquivalentModels(t *testing.T) {
	a, err := cachedModel("ds-cnn", 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := cachedModel("ds-cnn", 5)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("cache did not reuse the model instance")
	}
	fresh, err := models.Build("ds-cnn", 5)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.TotalParamBytes() != a.TotalParamBytes() {
		t.Fatal("cached model differs from fresh build")
	}
}
