package uarch

import (
	"testing"
	"testing/quick"
)

func cache() Cache { return Cache{SizeBytes: 16 << 10, LineBytes: 32, MissPenaltyCycles: 10} }

func TestDisabledCacheCostsNothing(t *testing.T) {
	c := Cache{}
	if c.Enabled() {
		t.Fatal("zero cache enabled")
	}
	if got := c.MissCycles([]Region{{Bytes: 1 << 20, Passes: 100}}); got != 0 {
		t.Fatalf("disabled cache cost %d", got)
	}
}

func TestColdMissesOnlyWhenResident(t *testing.T) {
	c := cache()
	// 8 KiB region, 100 passes: fits in 16 KiB → cold misses only.
	got := c.MissCycles([]Region{{Bytes: 8 << 10, Passes: 100}})
	want := int64((8<<10)/32) * 10
	if got != want {
		t.Fatalf("resident region cost %d, want %d", got, want)
	}
}

func TestThrashingRegionMissesEveryPass(t *testing.T) {
	c := cache()
	// 32 KiB region, 4 passes: exceeds cache → all passes miss.
	got := c.MissCycles([]Region{{Bytes: 32 << 10, Passes: 4}})
	want := int64((32<<10)/32) * 4 * 10
	if got != want {
		t.Fatalf("thrashing cost %d, want %d", got, want)
	}
}

func TestValidate(t *testing.T) {
	if err := cache().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Cache{SizeBytes: 1024}).Validate(); err == nil {
		t.Fatal("cache without line size accepted")
	}
	if err := (Cache{SizeBytes: -1}).Validate(); err == nil {
		t.Fatal("negative size accepted")
	}
	if err := (Cache{}).Validate(); err != nil {
		t.Fatalf("disabled cache invalid: %v", err)
	}
}

func TestDenseIsWeightStreaming(t *testing.T) {
	// A dense layer's weights are traversed once regardless of neuron
	// count: miss cost must not scale with OutC for the weight region.
	c := cache()
	small := c.LayerMissCycles(LayerShape{Kind: KindDense, ParamBytes: 64 << 10, InBytes: 256, OutBytes: 64, OutC: 1})
	big := c.LayerMissCycles(LayerShape{Kind: KindDense, ParamBytes: 64 << 10, InBytes: 256, OutBytes: 64, OutC: 1000})
	if big != small {
		t.Fatalf("dense weight misses scaled with neurons: %d vs %d (input is resident)", big, small)
	}
}

func TestConvWeightsThrashOnlyWhenOversized(t *testing.T) {
	c := cache()
	fit := c.LayerMissCycles(LayerShape{Kind: KindConv, ParamBytes: 8 << 10, InBytes: 1024, OutBytes: 1024, SpatialOut: 100, OutC: 8})
	thrash := c.LayerMissCycles(LayerShape{Kind: KindConv, ParamBytes: 64 << 10, InBytes: 1024, OutBytes: 1024, SpatialOut: 100, OutC: 8})
	if thrash <= fit {
		t.Fatal("oversized conv weights did not thrash")
	}
	// The thrash cost scales with the spatial re-traversals.
	moreSpatial := c.LayerMissCycles(LayerShape{Kind: KindConv, ParamBytes: 64 << 10, InBytes: 1024, OutBytes: 1024, SpatialOut: 200, OutC: 8})
	if moreSpatial <= thrash {
		t.Fatal("thrash cost did not scale with passes")
	}
}

func TestElementwiseSinglePass(t *testing.T) {
	c := cache()
	got := c.LayerMissCycles(LayerShape{Kind: KindElementwise, InBytes: 64 << 10, OutBytes: 64 << 10})
	want := 2 * int64((64<<10)/32) * 10 // cold misses only, even though oversized (1 pass)
	if got != want {
		t.Fatalf("elementwise cost %d, want %d", got, want)
	}
}

// Properties: miss cycles are monotone — larger cache never costs more;
// higher penalty, more bytes, more passes never cost less.
func TestPropertyCacheMonotone(t *testing.T) {
	f := func(bytesRaw, passesRaw uint16, size1Raw, size2Raw uint16) bool {
		r := []Region{{Bytes: int64(bytesRaw) + 1, Passes: int64(passesRaw%50) + 1}}
		s1 := int64(size1Raw)*8 + 64
		s2 := int64(size2Raw)*8 + 64
		if s1 > s2 {
			s1, s2 = s2, s1
		}
		c1 := Cache{SizeBytes: s1, LineBytes: 32, MissPenaltyCycles: 10}
		c2 := Cache{SizeBytes: s2, LineBytes: 32, MissPenaltyCycles: 10}
		return c1.MissCycles(r) >= c2.MissCycles(r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestZeroOrNegativeRegionsIgnored(t *testing.T) {
	c := cache()
	if got := c.MissCycles([]Region{{Bytes: 0, Passes: 5}, {Bytes: -3, Passes: 1}, {Bytes: 100, Passes: 0}}); got != 0 {
		t.Fatalf("degenerate regions cost %d", got)
	}
}
