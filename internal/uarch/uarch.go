// Package uarch models the micro-architectural memory behaviour of a
// Cortex-M-class core executing NN kernels: a single-level data cache over
// the SRAM holding staged weights and activations. The model refines the
// flat MACs/cycle cost estimate with per-layer miss stalls, capturing the
// well-known effect that weight-streaming layers (fully-connected) run
// memory-bound while convolutions with cache-resident working sets run
// compute-bound.
//
// The model is deliberately simple and fully documented: each kernel is a
// set of *regions* traversed a known number of times; a region whose bytes
// fit the cache misses only on its cold pass, otherwise every pass misses.
// This streaming approximation ignores inter-region conflict misses and
// partial reuse, which is the right fidelity for a scheduling study —
// costs stay deterministic, monotone in cache size, and explainable.
package uarch

import "fmt"

// Cache is a single-level data cache.
type Cache struct {
	// SizeBytes is the cache capacity. 0 disables the model (e.g. an M4
	// running from zero-wait-state SRAM).
	SizeBytes int64
	// LineBytes is the fill granularity (default 32).
	LineBytes int64
	// MissPenaltyCycles is the stall per line fill from backing SRAM.
	MissPenaltyCycles int64
}

// Validate reports configuration errors.
func (c Cache) Validate() error {
	if c.SizeBytes < 0 || c.LineBytes < 0 || c.MissPenaltyCycles < 0 {
		return fmt.Errorf("uarch: negative cache parameter: %+v", c)
	}
	if c.SizeBytes > 0 && c.LineBytes == 0 {
		return fmt.Errorf("uarch: cache without line size")
	}
	return nil
}

// Enabled reports whether the cache model applies.
func (c Cache) Enabled() bool { return c.SizeBytes > 0 }

// Region is one data structure a kernel traverses.
type Region struct {
	// Bytes is the region footprint.
	Bytes int64
	// Passes is how many times the kernel traverses the whole region.
	Passes int64
}

// MissCycles returns the stall cycles of traversing the regions: every
// region pays cold misses once; regions larger than the cache also miss on
// every additional pass.
func (c Cache) MissCycles(regions []Region) int64 {
	if !c.Enabled() {
		return 0
	}
	var cycles int64
	for _, r := range regions {
		if r.Bytes <= 0 || r.Passes <= 0 {
			continue
		}
		lines := (r.Bytes + c.LineBytes - 1) / c.LineBytes
		passes := int64(1) // cold pass always misses
		if r.Bytes > c.SizeBytes {
			passes = r.Passes // no residency: every pass misses
		}
		cycles += lines * passes * c.MissPenaltyCycles
	}
	return cycles
}

// LayerShape is the geometry the kernel-to-region mapping needs; the cost
// package fills it from an nn.Layer.
type LayerShape struct {
	Kind       Kind
	ParamBytes int64
	InBytes    int64
	OutBytes   int64
	// SpatialOut is OutH·OutW (weight re-traversals of conv kernels).
	SpatialOut int64
	// OutC is the output channel / neuron count (input re-traversals).
	OutC int64
}

// Kind mirrors the operator classes the mapping distinguishes.
type Kind int

const (
	// KindConv is a standard convolution: weights re-traversed per output
	// position, input per output channel.
	KindConv Kind = iota
	// KindDWConv is a depthwise convolution: single input pass, weights
	// re-traversed per position.
	KindDWConv
	// KindDense is a fully-connected layer: weights streamed exactly once
	// (no reuse — the memory-bound case), input re-read per neuron.
	KindDense
	// KindElementwise covers pools, activations, adds: single pass over
	// input and output.
	KindElementwise
)

// Regions maps a layer onto its traversal pattern.
func Regions(l LayerShape) []Region {
	switch l.Kind {
	case KindConv:
		return []Region{
			{Bytes: l.ParamBytes, Passes: max1(l.SpatialOut)},
			{Bytes: l.InBytes, Passes: max1(l.OutC)},
			{Bytes: l.OutBytes, Passes: 1},
		}
	case KindDWConv:
		return []Region{
			{Bytes: l.ParamBytes, Passes: max1(l.SpatialOut)},
			{Bytes: l.InBytes, Passes: 1},
			{Bytes: l.OutBytes, Passes: 1},
		}
	case KindDense:
		return []Region{
			{Bytes: l.ParamBytes, Passes: 1}, // streamed once, never reused
			{Bytes: l.InBytes, Passes: max1(l.OutC)},
			{Bytes: l.OutBytes, Passes: 1},
		}
	default:
		return []Region{
			{Bytes: l.InBytes, Passes: 1},
			{Bytes: l.OutBytes, Passes: 1},
		}
	}
}

// LayerMissCycles is the convenience composition of Regions and MissCycles.
func (c Cache) LayerMissCycles(l LayerShape) int64 {
	return c.MissCycles(Regions(l))
}

func max1(v int64) int64 {
	if v < 1 {
		return 1
	}
	return v
}
