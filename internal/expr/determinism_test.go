package expr

import (
	"runtime"
	"testing"
)

// TestF5DeterministicAcrossGOMAXPROCS is the bit-reproducibility oracle for
// the parallelized experiment loops: the empirical-miss sweep (F5) exercises
// workload generation, the memoized accepted() pipeline and full simulations
// under parallelEach, and its rendered table must not depend on how many
// workers the runtime hands us. Results are reduced in index order into
// pre-sized slices, so float accumulation order — and therefore every
// rounded cell — is fixed.
func TestF5DeterministicAcrossGOMAXPROCS(t *testing.T) {
	if testing.Short() {
		t.Skip("runs F5 twice; skipped in -short")
	}
	cfg := QuickConfig()
	e, err := ByID("F5")
	if err != nil {
		t.Fatal(err)
	}
	render := func(procs int) string {
		prev := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(prev)
		tb, err := e.Run(cfg)
		if err != nil {
			t.Fatalf("F5 with GOMAXPROCS=%d: %v", procs, err)
		}
		return tb.String()
	}
	serial := render(1)
	parallel := render(8)
	if serial != parallel {
		t.Fatalf("F5 output depends on GOMAXPROCS:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial, parallel)
	}
}
