package expr

import (
	"fmt"

	"rtmdm/internal/core"
	"rtmdm/internal/exec"
	"rtmdm/internal/fault"
)

func init() {
	register(Experiment{ID: "T25", Title: "Robustness: deadline misses vs WCET overrun rate and handling policy", Run: runT25})
}

// overrunRates is the fault-intensity axis: the probability that any given
// segment execution exceeds its WCET.
var overrunRates = []float64{0, 0.1, 0.25, 0.5, 1.0}

// robustConfig is one (policy, overrun handling) column of T25.
type robustConfig struct {
	label   string
	pol     core.Policy
	overrun core.OverrunPolicy
}

func runT25(cfg Config) (*Table, error) {
	const util = 0.6
	configs := []robustConfig{
		{"serial-npfp", core.SerialNPFP(), core.OverrunContinue},
		{"serial-segfp", core.SerialSegFP(), core.OverrunContinue},
		{"rt-mdm/continue", core.RTMDM(), core.OverrunContinue},
		{"rt-mdm/abort", core.RTMDM(), core.OverrunAbort},
		{"rt-mdm/skip-next", core.RTMDM(), core.OverrunSkipNext},
	}
	cols := []string{"overrun-rate"}
	for _, rc := range configs {
		cols = append(cols, rc.label)
	}
	t := &Table{
		ID:      "T25",
		Title:   fmt.Sprintf("Mean job deadline-miss ratio at U=%.1f under injected WCET overruns (%d sets, %d tasks)", util, cfg.Sets, cfg.N),
		Columns: cols,
		Notes: "each segment execution overruns (×2 WCET) with the given probability; abort kills the job at " +
			"its deadline and reclaims CPU/DMA, skip-next finishes late but sheds the next release — both bound " +
			"the cascade that continue lets propagate into subsequent jobs",
	}
	specs, err := genSpecs(cfg, util, cfg.N)
	if err != nil {
		return nil, err
	}
	for _, rate := range overrunRates {
		plan, err := fault.New(fault.Config{
			Seed:          cfg.Seed,
			OverrunRate:   rate,
			OverrunFactor: 2.0,
		}, cfg.MaxHorizon)
		if err != nil {
			return nil, err
		}
		row := []string{f2(rate)}
		for _, rc := range configs {
			rc := rc
			pol := rc.pol
			pol.Overrun = rc.overrun
			type res struct {
				jobs float64
				err  error
			}
			results := make([]res, len(specs))
			parallelEach(len(specs), func(k int) {
				s, err := specs[k].Instantiate(cfg.Platform, pol)
				if err != nil {
					results[k] = res{jobs: 1} // undeployable counts as all-missing
					return
				}
				r, err := exec.RunWithFaults(s, cfg.Platform, pol, simHorizon(s, cfg.MaxHorizon), plan)
				if err != nil {
					results[k] = res{err: err}
					return
				}
				results[k] = res{jobs: r.Metrics.TotalMissRatio()}
			})
			missJobs := 0.0
			for _, rr := range results {
				if rr.err != nil {
					return nil, rr.err
				}
				missJobs += rr.jobs
			}
			row = append(row, pct(missJobs/float64(len(specs))))
		}
		t.AddRow(row...)
	}
	return t, nil
}
