package expr

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"rtmdm/internal/cost"
	"rtmdm/internal/sim"
)

// Config tunes experiment scale. Quick configurations keep every
// experiment's structure intact while shrinking sample counts, so tests and
// benchmarks exercise the identical code paths as the full evaluation.
type Config struct {
	// Platform is the target MCU model (default STM32H743).
	Platform cost.Platform
	// Sets is the number of random task sets per sweep point.
	Sets int
	// N is the number of tasks per generated set.
	N int
	// Seed roots all pseudo-randomness.
	Seed int64
	// MaxHorizon caps empirical simulation windows.
	MaxHorizon sim.Duration
}

// DefaultConfig is the full-scale evaluation configuration.
func DefaultConfig() Config {
	return Config{
		Platform:   cost.STM32H743,
		Sets:       200,
		N:          4,
		Seed:       20240601,
		MaxHorizon: 400 * sim.Millisecond,
	}
}

// QuickConfig shrinks sample counts for smoke tests and benchmarks.
func QuickConfig() Config {
	c := DefaultConfig()
	c.Sets = 12
	c.MaxHorizon = 150 * sim.Millisecond
	return c
}

// Experiment is one reconstructed table or figure.
type Experiment struct {
	// ID matches DESIGN.md §6 (T1, F2, …).
	ID string
	// Title is the one-line description.
	Title string
	// Run produces the table.
	Run func(Config) (*Table, error)
}

var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("expr: duplicate experiment " + e.ID)
	}
	registry[e.ID] = e
}

// All returns every experiment in DESIGN.md order (T1, F2, F3, …).
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := idOrder(out[i].ID), idOrder(out[j].ID)
		if a != b {
			return a < b
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// idOrder sorts by the numeric part of the ID.
func idOrder(id string) int {
	n := 0
	for _, c := range id {
		if c >= '0' && c <= '9' {
			n = n*10 + int(c-'0')
		}
	}
	return n
}

// ByID resolves one experiment.
func ByID(id string) (Experiment, error) {
	e, ok := registry[id]
	if !ok {
		ids := make([]string, 0, len(registry))
		for _, e := range All() {
			ids = append(ids, e.ID)
		}
		return Experiment{}, fmt.Errorf("expr: unknown experiment %q (have %v)", id, ids)
	}
	return e, nil
}

// ms formats nanoseconds as milliseconds.
func ms(ns int64) string { return fmt.Sprintf("%.3f", float64(ns)/1e6) }

// pct formats a ratio as a percentage.
func pct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }

// f2 formats with two decimals.
func f2(x float64) string { return fmt.Sprintf("%.2f", x) }

// parallelEach runs f(k) for every k in [0, n) on up to GOMAXPROCS
// workers. Callers collect per-k results into pre-sized slices and reduce
// sequentially afterwards, so aggregate results stay bit-deterministic
// regardless of scheduling.
func parallelEach(n int, f func(k int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for k := 0; k < n; k++ {
			f(k)
		}
		return
	}
	var wg sync.WaitGroup
	var next int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				k := int(atomic.AddInt64(&next, 1)) - 1
				if k >= n {
					return
				}
				f(k)
			}
		}()
	}
	wg.Wait()
}
