// Package expr is the evaluation harness: one registered experiment per
// reconstructed table/figure of the paper (see DESIGN.md §6), each
// producing a Table that renders as aligned text or CSV.
package expr

import (
	"fmt"
	"io"
	"strings"
)

// Table is one experiment's output: a titled grid of string cells.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	// Notes carries caveats and reading hints, printed under the grid.
	Notes string
}

// AddRow appends a row, padding or truncating to the column count.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Columns))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len([]rune(c))
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if l := len([]rune(c)); l > widths[i] {
				widths[i] = l
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = c + strings.Repeat(" ", widths[i]-len([]rune(c)))
		}
		fmt.Fprintln(w, "  "+strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(w, "  note: %s\n", t.Notes)
	}
}

// CSV renders the table as comma-separated values (cells containing commas
// or quotes are quoted).
func (t *Table) CSV(w io.Writer) {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	cells := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		cells[i] = esc(c)
	}
	fmt.Fprintln(w, strings.Join(cells, ","))
	for _, row := range t.Rows {
		for i, c := range row {
			cells[i] = esc(c)
		}
		fmt.Fprintln(w, strings.Join(cells, ","))
	}
}

// String renders the table as text.
func (t *Table) String() string {
	var sb strings.Builder
	t.Fprint(&sb)
	return sb.String()
}
