package expr

import (
	"fmt"

	"rtmdm/internal/core"
	"rtmdm/internal/cost"
	"rtmdm/internal/exec"
	"rtmdm/internal/models"
	"rtmdm/internal/segment"
	"rtmdm/internal/sim"
	"rtmdm/internal/task"
)

const modelSeed = 1

func init() {
	register(Experiment{ID: "T1", Title: "Model zoo inventory and segmentation on the default platform", Run: runT1})
	register(Experiment{ID: "F2", Title: "Single-DNN latency: serial load-then-compute vs RT-MDM prefetch pipeline", Run: runF2})
	register(Experiment{ID: "F3", Title: "Pipeline speedup vs external-memory bandwidth (crossover sweep)", Run: runF3})
}

func runT1(cfg Config) (*Table, error) {
	plat := cfg.Platform
	budget := core.SegmentBudget(plat, 3, core.RTMDM())
	t := &Table{
		ID:    "T1",
		Title: fmt.Sprintf("Model zoo on %s (staging budget %d KiB/segment)", plat.Name, budget>>10),
		Columns: []string{"model", "params(KiB)", "MACs(M)", "act-peak(KiB)", "layers",
			"segments", "load(ms)", "compute(ms)", "serial(ms)", "pipelined(ms)", "speedup"},
		Notes: "reconstructed experiment; pipelined = depth-2 double buffering",
	}
	catalog := models.Catalog()
	rows := make([][]string, len(catalog))
	errs := make([]error, len(catalog))
	parallelEach(len(catalog), func(i int) {
		info := catalog[i]
		m := info.Build(modelSeed)
		pl, err := segment.Build(m, plat, budget, segment.Greedy)
		if err != nil {
			errs[i] = err
			return
		}
		serial := pl.SerialNs()
		pipe := pl.PipelineNs(2)
		rows[i] = []string{
			info.Name,
			fmt.Sprintf("%.1f", float64(m.TotalParamBytes())/1024),
			fmt.Sprintf("%.2f", float64(m.TotalMACs())/1e6),
			fmt.Sprintf("%.1f", float64(m.PeakActivationBytes())/1024),
			fmt.Sprintf("%d", m.NumLayers()),
			fmt.Sprintf("%d", pl.NumSegments()),
			ms(pl.TotalLoadNs()),
			ms(pl.TotalComputeNs()),
			ms(serial),
			ms(pipe),
			f2(float64(serial) / float64(pipe)),
		}
	})
	for i, row := range rows {
		if errs[i] != nil {
			return nil, errs[i]
		}
		t.AddRow(row...)
	}
	return t, nil
}

// singleJobResponse simulates one isolated inference of the model under a
// policy and returns the observed response time in ns.
func singleJobResponse(plat cost.Platform, model string, pol core.Policy) (int64, error) {
	m, err := models.Build(model, modelSeed)
	if err != nil {
		return 0, err
	}
	pl, err := segment.BuildLimits(m, plat, pol.Limits(plat, 1), segment.Greedy)
	if err != nil {
		return 0, err
	}
	tk := &task.Task{Name: model, Plan: pl, Period: sim.Second, Deadline: sim.Second}
	s := task.NewSet(tk)
	r, err := exec.Run(s, plat, pol, sim.Second)
	if err != nil {
		return 0, err
	}
	tm := r.Metrics.PerTask[model]
	if tm.Completed == 0 {
		return 0, fmt.Errorf("expr: %s under %s never completed", model, pol.Name)
	}
	return int64(tm.MaxResponse), nil
}

func runF2(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "F2",
		Title: fmt.Sprintf("Isolated inference latency on %s (simulated)", cfg.Platform.Name),
		Columns: []string{"model", "serial(ms)", "rt-mdm(ms)", "speedup",
			"analytic-pipe(ms)", "bound"},
		Notes: "serial = load-then-compute baseline; bound = by which resource the pipeline saturates",
	}
	catalog := models.Catalog()
	rows := make([][]string, len(catalog))
	errs := make([]error, len(catalog))
	parallelEach(len(catalog), func(i int) {
		info := catalog[i]
		serial, err := singleJobResponse(cfg.Platform, info.Name, core.SerialNPFP())
		if err != nil {
			errs[i] = err
			return
		}
		pipe, err := singleJobResponse(cfg.Platform, info.Name, core.RTMDM())
		if err != nil {
			errs[i] = err
			return
		}
		m := info.Build(modelSeed)
		pl, err := segment.BuildLimits(m, cfg.Platform, core.RTMDM().Limits(cfg.Platform, 1), segment.Greedy)
		if err != nil {
			errs[i] = err
			return
		}
		bound := "compute"
		if pl.TotalLoadNs() > pl.TotalComputeNs() {
			bound = "memory"
		}
		rows[i] = []string{info.Name, ms(serial), ms(pipe),
			f2(float64(serial) / float64(pipe)), ms(pl.PipelineNs(2)), bound}
	})
	for i, row := range rows {
		if errs[i] != nil {
			return nil, errs[i]
		}
		t.AddRow(row...)
	}
	return t, nil
}

func runF3(cfg Config) (*Table, error) {
	bws := []int64{16 << 20, 32 << 20, 64 << 20, 128 << 20, 256 << 20}
	names := models.Names()
	cols := []string{"bandwidth(MB/s)"}
	cols = append(cols, names...)
	t := &Table{
		ID:      "F3",
		Title:   "Pipeline speedup (serial / RT-MDM latency) vs external-memory bandwidth",
		Columns: cols,
		Notes: "each model peaks where load ≈ compute: compute-bound models gain as bandwidth drops, " +
			"load-bound models as it rises; ≈1 when either resource dominates outright",
	}
	for _, bw := range bws {
		plat := cfg.Platform.WithBandwidth(bw)
		row := []string{fmt.Sprintf("%d", bw>>20)}
		cells := make([]string, len(names))
		errs := make([]error, len(names))
		parallelEach(len(names), func(i int) {
			serial, err := singleJobResponse(plat, names[i], core.SerialNPFP())
			if err != nil {
				errs[i] = err
				return
			}
			pipe, err := singleJobResponse(plat, names[i], core.RTMDM())
			if err != nil {
				errs[i] = err
				return
			}
			cells[i] = f2(float64(serial) / float64(pipe))
		})
		for i, c := range cells {
			if errs[i] != nil {
				return nil, errs[i]
			}
			row = append(row, c)
		}
		t.AddRow(row...)
	}
	return t, nil
}
