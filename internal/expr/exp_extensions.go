package expr

import (
	"fmt"

	"rtmdm/internal/analysis"
	"rtmdm/internal/core"
	"rtmdm/internal/cost"
	"rtmdm/internal/exec"
	"rtmdm/internal/models"
	"rtmdm/internal/segment"
	"rtmdm/internal/sim"
	"rtmdm/internal/workload"
)

func init() {
	register(Experiment{ID: "T13", Title: "Preemption granularity δ vs context-switch cost", Run: runT13})
	register(Experiment{ID: "F13", Title: "Platform comparison: deployability and schedulability across MCU classes", Run: runF13})
	register(Experiment{ID: "T15", Title: "Limited-preemption DMA: transfer chunk-size sweep", Run: runT15})
	register(Experiment{ID: "T16", Title: "Data-cache sensitivity of kernel costs and schedulability", Run: runT16})
	register(Experiment{ID: "T17", Title: "Energy accounting: the prefetch pipeline is energy-neutral", Run: runT17})
	register(Experiment{ID: "T18", Title: "Automated preemption-granularity tuning (design-space search)", Run: runT18})
	register(Experiment{ID: "F19", Title: "Constrained deadlines: schedulability vs deadline fraction", Run: runF19})
	register(Experiment{ID: "F20", Title: "Release jitter: schedulability vs arrival-delay bound", Run: runF20})
	register(Experiment{ID: "T21", Title: "Statistical robustness: headline ratios across independent seeds", Run: runT21})
	register(Experiment{ID: "T22", Title: "Segmentation policy ablation: greedy packing vs per-layer", Run: runT22})
}

// runT13 sweeps the preemption granularity against the context-switch cost:
// fine segments bound blocking but multiply switch overhead; coarse
// segments do the opposite. With realistic switch costs the optimum is
// interior.
func runT13(cfg Config) (*Table, error) {
	grans := []int64{250_000, 500_000, 1_000_000, 2_000_000, 4_000_000}
	switches := []int64{0, cfg.Platform.CPU.SwitchNs, 20_000, 50_000}
	cols := []string{"δ(ms)"}
	for _, sw := range switches {
		cols = append(cols, fmt.Sprintf("switch=%dus", sw/1000))
	}
	t := &Table{
		ID:      "T13",
		Title:   fmt.Sprintf("RT-MDM schedulability at U=0.6 vs preemption granularity (%d sets, %d tasks)", cfg.Sets, cfg.N),
		Columns: cols,
		Notes:   "finer δ bounds blocking but pays one context switch per segment; the sweet spot moves right as switching gets dearer",
	}
	for _, g := range grans {
		row := []string{fmt.Sprintf("%.2f", float64(g)/1e6)}
		for _, sw := range switches {
			plat := cfg.Platform.WithSwitchCost(sw)
			pol := core.RTMDM()
			pol.MaxSegNs = g
			frac, err := acceptFrac(cfg, plat, 0.6, cfg.N, pol)
			if err != nil {
				return nil, err
			}
			row = append(row, pct(frac))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// runF13 compares MCU classes: can the motivating case study deploy and
// pass analysis at all, and what fraction of random sets each platform
// sustains.
func runF13(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "F13",
		Title: "MCU platform classes under RT-MDM (case study + random sets at U=0.5, n=3)",
		Columns: []string{"platform", "cpu", "flash(MB/s)", "SRAM(KiB)",
			"case-deploys", "case-sched", "case-misses", "rand-sched(U=0.5)"},
		Notes: "deploys = segmentation + SRAM provisioning succeed; the smallest part cannot even hold the workload's activations",
	}
	for _, plat := range cost.Platforms() {
		pol := core.RTMDM()
		deploys, sched, misses := "yes", "-", "-"
		set, err := CaseStudySet(plat, pol)
		if err == nil {
			err = core.Provision(set, plat, pol)
		}
		if err != nil {
			deploys = "no"
		} else {
			if test, terr := analysis.ForPolicy(pol); terr == nil {
				sched = fmt.Sprintf("%v", test(set, plat).Schedulable)
			}
			r, rerr := exec.Run(set, plat, pol, 600*sim.Millisecond)
			if rerr != nil {
				return nil, rerr
			}
			n := 0
			for _, tm := range r.Metrics.PerTask {
				n += tm.Misses
			}
			misses = fmt.Sprintf("%d", n)
		}
		rand := "-"
		if frac, err := acceptFracN(cfg, plat, 0.5, 3, pol); err == nil {
			rand = pct(frac)
		}
		t.AddRow(plat.Name, plat.CPU.Name,
			fmt.Sprintf("%d", plat.Mem.BandwidthBps>>20),
			fmt.Sprintf("%d", plat.SRAMBytes>>10),
			deploys, sched, misses, rand)
	}
	return t, nil
}

// acceptFracN is acceptFrac but tolerant of workload-generation failures on
// constrained platforms (counts them as rejections).
func acceptFracN(cfg Config, plat cost.Platform, util float64, n int, pol core.Policy) (float64, error) {
	acc := make([]bool, cfg.Sets)
	parallelEach(cfg.Sets, func(k int) {
		sp, err := genOneSpec(cfg, plat, util, n, int64(k))
		if err != nil {
			return // platform cannot host any feasible mix: rejection
		}
		acc[k], _, _ = accepted(sp, plat, pol)
	})
	ok := 0
	for _, a := range acc {
		if a {
			ok++
		}
	}
	return float64(ok) / float64(cfg.Sets), nil
}

// runT15 sweeps the DMA chunk size: smaller chunks bound the channel's
// non-preemptive region (less blocking for urgent loads) but pay one
// transfer setup per chunk (more total load time).
func runT15(cfg Config) (*Table, error) {
	chunks := []int64{0, 32 << 10, 8 << 10, 2 << 10, 512}
	t := &Table{
		ID:    "T15",
		Title: fmt.Sprintf("RT-MDM with chunked transfers (%d sets, %d tasks)", cfg.Sets, cfg.N),
		Columns: []string{"chunk", "sched(U=0.6)", "sched(U=0.8)",
			"kws-max(ms)", "kws-bound(ms)"},
		Notes: "chunk 0 = whole-segment transfers; kws columns from the case study (urgent task worst response)",
	}
	for _, c := range chunks {
		pol := core.RTMDM()
		if c > 0 {
			pol = core.RTMDMChunked(c)
		}
		s6, err := acceptFrac(cfg, cfg.Platform, 0.6, cfg.N, pol)
		if err != nil {
			return nil, err
		}
		s8, err := acceptFrac(cfg, cfg.Platform, 0.8, cfg.N, pol)
		if err != nil {
			return nil, err
		}
		set, err := CaseStudySet(cfg.Platform, pol)
		if err != nil {
			return nil, err
		}
		r, err := exec.Run(set, cfg.Platform, pol, 600*sim.Millisecond)
		if err != nil {
			return nil, err
		}
		bound := "-"
		if test, err := analysis.ForPolicy(pol); err == nil {
			if v := test(set, cfg.Platform); v.WCRT != nil {
				bound = ms(int64(v.WCRT["kws"]))
			}
		}
		label := "whole"
		if c > 0 {
			label = fmt.Sprintf("%dKiB", c>>10)
			if c < 1024 {
				label = fmt.Sprintf("%dB", c)
			}
		}
		t.AddRow(label, pct(s6), pct(s8),
			ms(int64(r.Metrics.PerTask["kws"].MaxResponse)), bound)
	}
	return t, nil
}

// runT16 sweeps the core's data-cache size: weight-streaming and oversized
// working sets stall the pipeline, stretching compute and shifting the
// compute/memory balance the whole framework schedules around.
func runT16(cfg Config) (*Table, error) {
	sizes := []int64{0, 4 << 10, 16 << 10, 64 << 10}
	cols := []string{"d-cache"}
	zoo := []string{"mobilenetv1-0.25", "resnet8", "autoencoder"}
	for _, m := range zoo {
		cols = append(cols, m+"(ms)")
	}
	cols = append(cols, "rt-mdm sched(U=0.6)")
	t := &Table{
		ID:      "T16",
		Title:   fmt.Sprintf("Compute time and schedulability vs D-cache size (%d sets, %d tasks)", cfg.Sets, cfg.N),
		Columns: cols,
		Notes:   "d-cache 0 idealizes zero-wait-state SRAM; small caches thrash conv weight re-traversals",
	}
	for _, size := range sizes {
		plat := cfg.Platform.WithDCache(size)
		label := "off"
		if size > 0 {
			label = fmt.Sprintf("%dKiB", size>>10)
		}
		row := []string{label}
		for _, name := range zoo {
			lat, err := singleJobResponse(plat, name, core.RTMDM())
			if err != nil {
				return nil, err
			}
			row = append(row, ms(lat))
		}
		frac, err := acceptFrac(cfg, plat, 0.6, cfg.N, core.RTMDM())
		if err != nil {
			return nil, err
		}
		row = append(row, pct(frac))
		t.AddRow(row...)
	}
	return t, nil
}

// runT17 accounts energy on the case study: the pipeline moves the same
// bytes and burns the same active cycles as the serial baselines, so the
// only differences are bookkeeping-level — prefetching buys schedulability
// for free in energy terms.
func runT17(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "T17",
		Title: fmt.Sprintf("Energy over 600 ms of the case study on %s", cfg.Platform.Name),
		Columns: []string{"policy", "flash(KiB)", "cpu-busy(ms)", "dma-busy(ms)",
			"energy(mJ)", "avg-power(mW)"},
		Notes: "identical flash traffic and compute across policies: overlap changes *when* work happens, not how much",
	}
	pols := append(core.ComparisonSet(), core.RTMDMEDF())
	for _, pol := range pols {
		set, err := CaseStudySet(cfg.Platform, pol)
		if err != nil {
			return nil, err
		}
		r, err := exec.Run(set, cfg.Platform, pol, 600*sim.Millisecond)
		if err != nil {
			return nil, err
		}
		t.AddRow(pol.Name,
			fmt.Sprintf("%.1f", float64(r.FlashBytes)/1024),
			ms(r.CPUBusyNs), ms(r.DMABusyNs),
			fmt.Sprintf("%.2f", r.EnergyMicroJ/1000),
			fmt.Sprintf("%.1f", r.AvgPowerMw))
	}
	return t, nil
}

// runT18 closes the design-automation loop: for each task set, search the
// preemption granularity δ that maximizes the analysis's breakdown factor,
// and compare acceptance against the fixed default.
func runT18(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "T18",
		Title:   fmt.Sprintf("Fixed vs per-set tuned δ under RT-MDM (%d sets, %d tasks)", cfg.Sets, cfg.N),
		Columns: []string{"util", "fixed-δ sched", "tuned-δ sched", "mean tuned δ(ms)", "mean α gain"},
		Notes:   "tuned = best δ from {0.25, 0.5, 1, 2, 4} ms by breakdown factor; gain = α(tuned)/α(fixed) over sets feasible under both",
	}
	grans := []int64{250_000, 500_000, 1_000_000, 2_000_000, 4_000_000}
	for _, u := range []float64{0.5, 0.6, 0.7, 0.8} {
		specs, err := genSpecs(cfg, u, cfg.N)
		if err != nil {
			return nil, err
		}
		type t18res struct {
			fixedAcc  bool
			bestAcc   bool
			bestDelta int64
			gain      float64
			hasGain   bool
		}
		results := make([]t18res, len(specs))
		parallelEach(len(specs), func(k int) {
			sp := specs[k]
			fixedPol := core.RTMDM()
			fixedAcc, _, fixedSet := accepted(sp, cfg.Platform, fixedPol)
			// Search δ by breakdown factor.
			bestAlpha, bestDelta, bestAcc := -1.0, int64(0), false
			for _, g := range grans {
				pol := core.RTMDM()
				pol.MaxSegNs = g
				acc, v, set := accepted(sp, cfg.Platform, pol)
				if set == nil || v == nil {
					continue // segmentation or SRAM provisioning failed at this δ
				}
				test, err := analysis.ForPolicy(pol)
				if err != nil {
					continue
				}
				alpha := analysis.BreakdownFactor(set, cfg.Platform, test, 0.05)
				// Prefer acceptance at nominal rates; break ties by α.
				better := (acc && !bestAcc) || (acc == bestAcc && alpha > bestAlpha)
				if better {
					bestAlpha, bestDelta, bestAcc = alpha, g, acc
				}
			}
			r := t18res{fixedAcc: fixedAcc, bestAcc: bestAcc, bestDelta: bestDelta}
			if fixedSet != nil && bestAlpha > 0 {
				test, _ := analysis.ForPolicy(fixedPol)
				if fixedAlpha := analysis.BreakdownFactor(fixedSet, cfg.Platform, test, 0.05); fixedAlpha > 0 {
					r.gain = bestAlpha / fixedAlpha
					r.hasGain = true
				}
			}
			results[k] = r
		})
		fixedOK, tunedOK := 0, 0
		var deltaSum, gainSum float64
		gainN := 0
		for _, r := range results {
			if r.fixedAcc {
				fixedOK++
			}
			if r.bestAcc {
				tunedOK++
			}
			if r.bestDelta > 0 {
				deltaSum += float64(r.bestDelta) / 1e6
			}
			if r.hasGain {
				gainSum += r.gain
				gainN++
			}
		}
		n := float64(len(specs))
		gain := "-"
		if gainN > 0 {
			gain = f2(gainSum / float64(gainN))
		}
		t.AddRow(f2(u), pct(float64(fixedOK)/n), pct(float64(tunedOK)/n),
			f2(deltaSum/n), gain)
	}
	return t, nil
}

// runF19 sweeps constrained deadlines (D = frac·T): tighter deadlines cut
// the laxity every policy lives on, and expose how much of RT-MDM's margin
// survives.
func runF19(cfg Config) (*Table, error) {
	pols := core.ComparisonSet()
	cols := []string{"deadline-frac"}
	for _, p := range pols {
		cols = append(cols, p.Name)
	}
	t := &Table{
		ID:      "F19",
		Title:   fmt.Sprintf("Schedulability at U=0.5 vs deadline fraction (%d sets, %d tasks)", cfg.Sets, cfg.N),
		Columns: cols,
		Notes:   "D = frac·T with rate-monotonic priorities (density rises as frac falls)",
	}
	for _, frac := range []float64{1.0, 0.9, 0.8, 0.7, 0.6, 0.5} {
		frac := frac
		row := []string{f2(frac)}
		for _, pol := range pols {
			pol := pol
			acc := make([]bool, cfg.Sets)
			errs := make([]error, cfg.Sets)
			parallelEach(cfg.Sets, func(k int) {
				sp, err := workload.Generate(workload.Params{
					Seed:         cfg.Seed + int64(k)*7907 + int64(frac*1000),
					N:            cfg.N,
					Util:         0.5,
					Platform:     cfg.Platform,
					DeadlineFrac: frac,
				})
				if err != nil {
					errs[k] = err
					return
				}
				acc[k], _, _ = accepted(sp, cfg.Platform, pol)
			})
			ok := 0
			for k := range acc {
				if errs[k] != nil {
					return nil, errs[k]
				}
				if acc[k] {
					ok++
				}
			}
			row = append(row, pct(float64(ok)/float64(cfg.Sets)))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// runF20 sweeps bounded release jitter (sensor pipelines rarely tick
// perfectly): the analyses charge wider interference windows and the
// executor delays arrivals pseudo-randomly.
func runF20(cfg Config) (*Table, error) {
	pols := core.ComparisonSet()
	cols := []string{"jitter/T"}
	for _, p := range pols {
		cols = append(cols, p.Name)
	}
	cols = append(cols, "rt-mdm sim-missing")
	t := &Table{
		ID:      "F20",
		Title:   fmt.Sprintf("Schedulability at U=0.5 vs release jitter (%d sets, %d tasks)", cfg.Sets, cfg.N),
		Columns: cols,
		Notes:   "jitter widens every interference window by J_h; the executor delays arrivals deterministically per job",
	}
	for _, frac := range []float64{0, 0.1, 0.2, 0.3, 0.5} {
		frac := frac
		row := []string{f2(frac)}
		specs := make([]workload.SetSpec, cfg.Sets)
		genErrs := make([]error, cfg.Sets)
		parallelEach(cfg.Sets, func(k int) {
			specs[k], genErrs[k] = workload.Generate(workload.Params{
				Seed:       cfg.Seed + int64(k)*7907 + int64(frac*1000),
				N:          cfg.N,
				Util:       0.5,
				Platform:   cfg.Platform,
				JitterFrac: frac,
			})
		})
		for _, err := range genErrs {
			if err != nil {
				return nil, err
			}
		}
		for _, pol := range pols {
			pol := pol
			acc := make([]bool, len(specs))
			parallelEach(len(specs), func(k int) {
				acc[k], _, _ = accepted(specs[k], cfg.Platform, pol)
			})
			ok := 0
			for _, a := range acc {
				if a {
					ok++
				}
			}
			row = append(row, pct(float64(ok)/float64(len(specs))))
		}
		// Empirical column for RT-MDM under jittered arrivals.
		pol := core.RTMDM()
		missed := make([]bool, len(specs))
		errs := make([]error, len(specs))
		parallelEach(len(specs), func(k int) {
			s, err := specs[k].Instantiate(cfg.Platform, pol)
			if err != nil {
				missed[k] = true
				return
			}
			r, err := exec.Run(s, cfg.Platform, pol, simHorizon(s, cfg.MaxHorizon))
			if err != nil {
				errs[k] = err
				return
			}
			missed[k] = r.Metrics.AnyMiss()
		})
		miss := 0
		for k := range missed {
			if errs[k] != nil {
				return nil, errs[k]
			}
			if missed[k] {
				miss++
			}
		}
		row = append(row, pct(float64(miss)/float64(len(specs))))
		t.AddRow(row...)
	}
	return t, nil
}

// runT21 repeats the headline measurement under independent random seeds
// and reports the spread, guarding the conclusions against seed luck.
func runT21(cfg Config) (*Table, error) {
	seeds := []int64{cfg.Seed, cfg.Seed + 101, cfg.Seed + 202}
	pols := core.ComparisonSet()
	cols := []string{"util"}
	for _, p := range pols {
		cols = append(cols, p.Name+" min..max")
	}
	t := &Table{
		ID:      "T21",
		Title:   fmt.Sprintf("Acceptance spread over %d independent seeds (%d sets each, %d tasks)", len(seeds), cfg.Sets, cfg.N),
		Columns: cols,
		Notes:   "per-policy acceptance range across seed replications at each utilization",
	}
	for _, u := range []float64{0.4, 0.6, 0.8} {
		row := []string{f2(u)}
		for _, pol := range pols {
			lo, hi := 101.0, -1.0
			for _, seed := range seeds {
				c2 := cfg
				c2.Seed = seed
				frac, err := acceptFrac(c2, cfg.Platform, u, cfg.N, pol)
				if err != nil {
					return nil, err
				}
				pcts := 100 * frac
				if pcts < lo {
					lo = pcts
				}
				if pcts > hi {
					hi = pcts
				}
			}
			row = append(row, fmt.Sprintf("%.1f..%.1f%%", lo, hi))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// runT22 compares the greedy packer against naive per-layer segmentation
// on the zoo: packing amortizes transfer setups and shortens serial
// demand, while per-layer maximizes preemption points.
func runT22(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "T22",
		Title: "Greedy packing vs per-layer segmentation (RT-MDM limits, 1 of 3 tasks)",
		Columns: []string{"model", "greedy-segs", "perlayer-segs",
			"greedy-serial(ms)", "perlayer-serial(ms)", "greedy-maxC(ms)", "perlayer-maxC(ms)"},
		Notes: "per-layer pays one DMA setup per weighted layer; greedy packs to the budget and still respects δ",
	}
	lim := core.RTMDM().Limits(cfg.Platform, 3)
	for _, name := range models.Names() {
		m, err := models.Build(name, 1)
		if err != nil {
			return nil, err
		}
		g, err := segment.BuildLimits(m, cfg.Platform, lim, segment.Greedy)
		if err != nil {
			return nil, err
		}
		pl, err := segment.BuildLimits(m, cfg.Platform, lim, segment.PerLayer)
		if err != nil {
			return nil, err
		}
		t.AddRow(name,
			fmt.Sprintf("%d", g.NumSegments()), fmt.Sprintf("%d", pl.NumSegments()),
			ms(g.SerialNs()), ms(pl.SerialNs()),
			ms(g.MaxComputeNs()), ms(pl.MaxComputeNs()))
	}
	return t, nil
}
