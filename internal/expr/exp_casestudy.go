package expr

import (
	"fmt"

	"rtmdm/internal/analysis"
	"rtmdm/internal/core"
	"rtmdm/internal/cost"
	"rtmdm/internal/exec"
	"rtmdm/internal/models"
	"rtmdm/internal/segment"
	"rtmdm/internal/sim"
	"rtmdm/internal/task"
)

func init() {
	register(Experiment{ID: "F10", Title: "Case study: keyword spotting + person detection + anomaly detection", Run: runF10})
}

// caseStudyTasks is the three-DNN always-on sensing workload motivating the
// paper: a keyword spotter every 50 ms, a person detector every 150 ms, and
// an acoustic anomaly detector every 100 ms.
var caseStudyTasks = []struct {
	name   string
	model  string
	period sim.Duration
}{
	{"kws", "ds-cnn", 50 * sim.Millisecond},
	{"persondet", "mobilenetv1-0.25", 150 * sim.Millisecond},
	{"anomaly", "autoencoder", 100 * sim.Millisecond},
}

// CaseStudySet instantiates the case-study workload for one policy.
func CaseStudySet(plat cost.Platform, pol core.Policy) (*task.Set, error) {
	lim := pol.Limits(plat, len(caseStudyTasks))
	var ts []*task.Task
	for _, ct := range caseStudyTasks {
		m, err := models.Build(ct.model, modelSeed)
		if err != nil {
			return nil, err
		}
		pl, err := segment.BuildLimits(m, plat, lim, segment.Greedy)
		if err != nil {
			return nil, err
		}
		ts = append(ts, &task.Task{
			Name: ct.name, Plan: pl, Period: ct.period, Deadline: ct.period,
		})
	}
	s := task.NewSet(ts...)
	s.AssignRM()
	return s, nil
}

func runF10(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "F10",
		Title: fmt.Sprintf("Case study on %s: kws@50ms + persondet@150ms + anomaly@100ms", cfg.Platform.Name),
		Columns: []string{"policy", "task", "bound(ms)", "max-resp(ms)", "p95(ms)", "avg-resp(ms)",
			"miss-ratio", "cpu-util", "dma-util"},
		Notes: "bound '-' where no sound analysis exists for the policy",
	}
	pols := append(core.ComparisonSet(), core.RTMDMEDF(), core.RTMDMFIFODMA())
	horizon := 2 * 300 * sim.Millisecond // two hyperperiods
	blocks := make([][][]string, len(pols))
	errs := make([]error, len(pols))
	parallelEach(len(pols), func(pi int) {
		pol := pols[pi]
		s, err := CaseStudySet(cfg.Platform, pol)
		if err != nil {
			errs[pi] = err
			return
		}
		bounds := map[string]sim.Duration{}
		if test, err := analysis.ForPolicy(pol); err == nil {
			if v := test(s, cfg.Platform); v.WCRT != nil {
				for k, b := range v.WCRT {
					bounds[k] = b
				}
			}
		}
		r, err := exec.Run(s, cfg.Platform, pol, horizon)
		if err != nil {
			errs[pi] = err
			return
		}
		for _, ct := range caseStudyTasks {
			tm := r.Metrics.PerTask[ct.name]
			bcell := "-"
			if b, ok := bounds[ct.name]; ok {
				bcell = ms(int64(b))
			}
			blocks[pi] = append(blocks[pi], []string{pol.Name, ct.name, bcell,
				ms(int64(tm.MaxResponse)), ms(int64(tm.Percentile(95))), ms(int64(tm.AvgResponse())),
				pct(tm.MissRatio()),
				f2(r.CPUUtilization()), f2(r.DMAUtilization())})
		}
	})
	for pi, block := range blocks {
		if errs[pi] != nil {
			return nil, errs[pi]
		}
		for _, row := range block {
			t.AddRow(row...)
		}
	}
	return t, nil
}
