package expr

import (
	"fmt"
	"math"

	"rtmdm/internal/analysis"
	"rtmdm/internal/core"
	"rtmdm/internal/cost"
	"rtmdm/internal/exec"
	"rtmdm/internal/task"
)

func init() {
	register(Experiment{ID: "T8", Title: "Analysis pessimism: WCRT bound vs observed worst response", Run: runT8})
	register(Experiment{ID: "T9", Title: "Ablations: buffer depth, DMA arbitration, priority assignment", Run: runT9})
	register(Experiment{ID: "T11", Title: "Bus-contention sensitivity", Run: runT11})
}

func runT8(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "T8",
		Title:   fmt.Sprintf("Bound/observed response ratio over accepted sets (%d sets/point, %d tasks)", cfg.Sets, cfg.N),
		Columns: []string{"util", "policy", "accepted", "mean-ratio", "max-ratio", "min-ratio"},
		Notes:   "ratios ≥ 1 certify soundness in simulation; mean quantifies pessimism",
	}
	pols := core.ComparisonSet()
	for _, util := range []float64{0.3, 0.5, 0.7} {
		specs, err := genSpecs(cfg, util, cfg.N)
		if err != nil {
			return nil, err
		}
		for _, pol := range pols {
			acc := 0
			minR, maxR, sumR, cnt := math.Inf(1), 0.0, 0.0, 0
			for _, sp := range specs {
				ok, v, s := accepted(sp, cfg.Platform, pol)
				if !ok {
					continue
				}
				acc++
				r, err := exec.Run(s, cfg.Platform, pol, simHorizon(s, cfg.MaxHorizon))
				if err != nil {
					return nil, err
				}
				for name, tm := range r.Metrics.PerTask {
					if tm.Completed == 0 {
						continue
					}
					bound, okB := v.WCRT[name]
					if !okB || tm.MaxResponse == 0 {
						continue
					}
					ratio := float64(bound) / float64(tm.MaxResponse) //lint:allow millitime -- bound/observed pessimism ratio; dimensionless
					sumR += ratio
					cnt++
					if ratio > maxR {
						maxR = ratio
					}
					if ratio < minR {
						minR = ratio
					}
				}
			}
			if cnt == 0 {
				t.AddRow(f2(util), pol.Name, "0", "-", "-", "-")
				continue
			}
			t.AddRow(f2(util), pol.Name, fmt.Sprintf("%d", acc),
				f2(sumR/float64(cnt)), f2(maxR), f2(minR))
		}
	}
	return t, nil
}

// empiricalMissFrac runs one policy over specs and returns the fraction of
// sets that miss at least one deadline.
func empiricalMissFrac(cfg Config, plat cost.Platform, util float64, n int, pol core.Policy) (float64, error) {
	specs, err := genSpecs(cfg, util, n)
	if err != nil {
		return 0, err
	}
	missed := make([]bool, len(specs))
	errs := make([]error, len(specs))
	parallelEach(len(specs), func(k int) {
		s, err := specs[k].Instantiate(plat, pol)
		if err != nil {
			missed[k] = true
			return
		}
		r, err := exec.Run(s, plat, pol, simHorizon(s, cfg.MaxHorizon))
		if err != nil {
			errs[k] = err
			return
		}
		missed[k] = r.Metrics.AnyMiss()
	})
	miss := 0
	for k := range missed {
		if errs[k] != nil {
			return 0, errs[k]
		}
		if missed[k] {
			miss++
		}
	}
	return float64(miss) / float64(len(specs)), nil
}

// acceptFrac returns the fraction of specs a policy's analysis accepts.
func acceptFrac(cfg Config, plat cost.Platform, util float64, n int, pol core.Policy) (float64, error) {
	specs, err := genSpecs(cfg, util, n)
	if err != nil {
		return 0, err
	}
	acc := make([]bool, len(specs))
	parallelEach(len(specs), func(k int) {
		acc[k], _, _ = accepted(specs[k], plat, pol)
	})
	ok := 0
	for _, a := range acc {
		if a {
			ok++
		}
	}
	return float64(ok) / float64(len(specs)), nil
}

func runT9(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "T9",
		Title:   fmt.Sprintf("Design-choice ablations (%d sets, %d tasks)", cfg.Sets, cfg.N),
		Columns: []string{"knob", "variant", "sched-ratio(U=0.6)", "sets-missing(U=0.8)"},
		Notes:   "FIFO DMA is analyzable but pays lower-priority transfers as repeated interference",
	}

	// Buffer depth.
	for _, d := range []int{1, 2, 3, 4} {
		pol := core.RTMDMDepth(d)
		sched, err := acceptFrac(cfg, cfg.Platform, 0.6, cfg.N, pol)
		if err != nil {
			return nil, err
		}
		missf, err := empiricalMissFrac(cfg, cfg.Platform, 0.8, cfg.N, pol)
		if err != nil {
			return nil, err
		}
		t.AddRow("depth", fmt.Sprintf("%d", d), pct(sched), pct(missf))
	}

	// DMA arbitration.
	for _, pol := range []core.Policy{core.RTMDM(), core.RTMDMFIFODMA()} {
		schedCell := "n/a"
		if _, err := analysis.ForPolicy(pol); err == nil {
			sched, err := acceptFrac(cfg, cfg.Platform, 0.6, cfg.N, pol)
			if err != nil {
				return nil, err
			}
			schedCell = pct(sched)
		}
		missf, err := empiricalMissFrac(cfg, cfg.Platform, 0.8, cfg.N, pol)
		if err != nil {
			return nil, err
		}
		t.AddRow("dma-arb", pol.DMA.String(), schedCell, missf2(missf))
	}

	// Priority assignment: RM (as generated) vs Audsley OPA, judged by the
	// OPA-compatible test so the comparison is apples-to-apples.
	specs, err := genSpecs(cfg, 0.6, cfg.N)
	if err != nil {
		return nil, err
	}
	rmOK, opaOK := 0, 0
	for _, sp := range specs {
		s, err := sp.Instantiate(cfg.Platform, core.RTMDM())
		if err != nil {
			continue
		}
		if analysis.RTMDMRTAForOPA(s, cfg.Platform, 2).Schedulable {
			rmOK++
		}
		opaTest := func(ss *task.Set, p cost.Platform) analysis.Verdict {
			return analysis.RTMDMRTAForOPA(ss, p, 2)
		}
		if analysis.Audsley(s, cfg.Platform, opaTest) {
			opaOK++
		}
	}
	n := float64(len(specs))
	t.AddRow("priorities", "rate-monotonic", pct(float64(rmOK)/n), "-")
	t.AddRow("priorities", "audsley-opa", pct(float64(opaOK)/n), "-")
	return t, nil
}

func missf2(x float64) string { return pct(x) }

func runT11(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "T11",
		Title:   fmt.Sprintf("Sensitivity to CPU/DMA bus contention (%d sets, %d tasks)", cfg.Sets, cfg.N),
		Columns: []string{"mutual-slowdown", "rt-mdm sched(U=0.6)", "serial-segfp sched(U=0.6)", "mobilenet rt-mdm(ms)"},
		Notes:   "slowdown x% derates each party while the other is on the bus",
	}
	cases := []struct {
		label string
		c     cost.Contention
	}{
		{"0%", cost.NoContention()},
		{"10%", cost.Contention{CPUNum: 9, CPUDen: 10, DMANum: 9, DMADen: 10}},
		{"25%", cost.Contention{CPUNum: 3, CPUDen: 4, DMANum: 3, DMADen: 4}},
		{"50%", cost.Contention{CPUNum: 1, CPUDen: 2, DMANum: 1, DMADen: 2}},
	}
	for _, c := range cases {
		plat := cfg.Platform
		plat.Bus = c.c
		rt, err := acceptFrac(cfg, plat, 0.6, cfg.N, core.RTMDM())
		if err != nil {
			return nil, err
		}
		sg, err := acceptFrac(cfg, plat, 0.6, cfg.N, core.SerialSegFP())
		if err != nil {
			return nil, err
		}
		lat, err := singleJobResponse(plat, "mobilenetv1-0.25", core.RTMDM())
		if err != nil {
			return nil, err
		}
		t.AddRow(c.label, pct(rt), pct(sg), ms(lat))
	}
	return t, nil
}
