package expr

import (
	"fmt"
	"strconv"
	"strings"
	"testing"

	"rtmdm/internal/core"
	"rtmdm/internal/sim"
)

func TestRegistryCompleteAndOrdered(t *testing.T) {
	want := []string{"T1", "F2", "F3", "F4", "F5", "F6", "F7", "T8", "T9", "F10", "T11", "F12", "F13", "T13", "T15", "T16", "T17", "T18", "F19", "F20", "T21", "T22", "T23", "T24", "T25"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(all), len(want))
	}
	for i, e := range all {
		if e.ID != want[i] {
			t.Fatalf("order %v, want %v at %d", e.ID, want[i], i)
		}
	}
	if _, err := ByID("T1"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByID("nope"); err == nil {
		t.Fatal("unknown ID resolved")
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{ID: "X", Title: "demo", Columns: []string{"a", "bb"}}
	tb.AddRow("1", "2")
	tb.AddRow("longer") // second cell padded
	text := tb.String()
	if !strings.Contains(text, "X — demo") || !strings.Contains(text, "longer") {
		t.Fatalf("render:\n%s", text)
	}
	var sb strings.Builder
	tb.CSV(&sb)
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 || lines[0] != "a,bb" || lines[1] != "1,2" {
		t.Fatalf("csv: %q", sb.String())
	}
}

func TestCSVEscaping(t *testing.T) {
	tb := &Table{ID: "X", Title: "demo", Columns: []string{"a"}}
	tb.AddRow(`va"l,ue`)
	var sb strings.Builder
	tb.CSV(&sb)
	if !strings.Contains(sb.String(), `"va""l,ue"`) {
		t.Fatalf("csv escaping: %q", sb.String())
	}
}

// percentage parses a "12.3%" cell.
func percentage(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "%"), 64)
	if err != nil {
		t.Fatalf("bad percentage cell %q", cell)
	}
	return v
}

func mustRun(t *testing.T, id string) *Table {
	t.Helper()
	e, err := ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	cfg := QuickConfig()
	cfg.Sets = 6
	tb, err := e.Run(cfg)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if len(tb.Rows) == 0 {
		t.Fatalf("%s: empty table", id)
	}
	return tb
}

func TestT1Inventory(t *testing.T) {
	tb := mustRun(t, "T1")
	if len(tb.Rows) != 8 {
		t.Fatalf("T1 rows = %d, want 8 (zoo size)", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		speedup, err := strconv.ParseFloat(row[len(row)-1], 64)
		if err != nil {
			t.Fatalf("bad speedup %q", row[len(row)-1])
		}
		if speedup < 1.0 || speedup > 2.01 {
			t.Errorf("%s: pipeline speedup %v outside (1, 2]", row[0], speedup)
		}
	}
}

func TestF2LatencyShape(t *testing.T) {
	tb := mustRun(t, "F2")
	for _, row := range tb.Rows {
		serial, _ := strconv.ParseFloat(row[1], 64)
		pipe, _ := strconv.ParseFloat(row[2], 64)
		if pipe > serial {
			t.Errorf("%s: pipelined %v slower than serial %v", row[0], pipe, serial)
		}
		// The load-bound autoencoder should profit visibly.
		if row[0] == "autoencoder" {
			speedup, _ := strconv.ParseFloat(row[3], 64)
			if speedup < 1.05 {
				t.Errorf("autoencoder speedup %v, want > 1.05", speedup)
			}
		}
	}
}

func TestF3CrossoverShape(t *testing.T) {
	tb := mustRun(t, "F3")
	col := func(name string) int {
		for i, c := range tb.Columns {
			if c == name {
				return i
			}
		}
		t.Fatalf("no %s column", name)
		return -1
	}
	first := func(name string) float64 {
		v, _ := strconv.ParseFloat(tb.Rows[0][col(name)], 64)
		return v
	}
	last := func(name string) float64 {
		v, _ := strconv.ParseFloat(tb.Rows[len(tb.Rows)-1][col(name)], 64)
		return v
	}
	// Heavily load-bound autoencoder approaches balance as bandwidth
	// rises: speedup grows with bandwidth.
	if last("autoencoder") <= first("autoencoder") {
		t.Errorf("autoencoder speedup did not grow with bandwidth: %v → %v",
			first("autoencoder"), last("autoencoder"))
	}
	// Compute-bound mobilenet moves away from balance as bandwidth rises:
	// speedup shrinks.
	if last("mobilenetv1-0.25") >= first("mobilenetv1-0.25") {
		t.Errorf("mobilenet speedup did not shrink with bandwidth: %v → %v",
			first("mobilenetv1-0.25"), last("mobilenetv1-0.25"))
	}
	// Every speedup stays within the theoretical (1, 2] band.
	for _, row := range tb.Rows {
		for i := 1; i < len(row); i++ {
			v, _ := strconv.ParseFloat(row[i], 64)
			if v < 0.99 || v > 2.01 {
				t.Errorf("speedup %v outside [1, 2] at %v/%v", v, row[0], tb.Columns[i])
			}
		}
	}
}

func TestF4DominanceShape(t *testing.T) {
	tb := mustRun(t, "F4")
	// Columns: util, serial-npfp, serial-segfp, rt-mdm. At every point
	// RT-MDM acceptance ≥ NP acceptance; ratios nonincreasing overall in
	// U for each policy (allowing small sampling noise).
	for _, row := range tb.Rows {
		np := percentage(t, row[1])
		rt := percentage(t, row[3])
		if rt < np {
			t.Errorf("U=%s: rt-mdm %v%% < serial-npfp %v%%", row[0], rt, np)
		}
	}
	first := percentage(t, tb.Rows[0][3])
	last := percentage(t, tb.Rows[len(tb.Rows)-1][3])
	if last > first {
		t.Errorf("rt-mdm acceptance rose with utilization: %v → %v", first, last)
	}
}

func TestF5EmpiricalShape(t *testing.T) {
	tb := mustRun(t, "F5")
	// Misses grow with utilization for the NP baseline.
	firstNP := percentage(t, tb.Rows[0][1])
	lastNP := percentage(t, tb.Rows[len(tb.Rows)-1][1])
	if lastNP < firstNP {
		t.Errorf("NP sets-missing fell with utilization: %v → %v", firstNP, lastNP)
	}
}

func TestF6PartitionTradeoff(t *testing.T) {
	tb := mustRun(t, "F6")
	// The staging/activation partition has an interior sweet spot: the
	// best acceptance must not be at the largest staging budget (which
	// starves parked activations), and at least one point must accept a
	// majority of sets.
	best, bestIdx := -1.0, 0
	for i, row := range tb.Rows {
		if rt := percentage(t, row[2]); rt > best {
			best, bestIdx = rt, i
		}
	}
	if best < 50 {
		t.Errorf("no partition point accepts a majority (best %v%%)", best)
	}
	if bestIdx == len(tb.Rows)-1 {
		t.Error("largest staging budget is optimal — activation starvation not modeled?")
	}
}

func TestT8BoundsAreSound(t *testing.T) {
	tb := mustRun(t, "T8")
	for _, row := range tb.Rows {
		if row[5] == "-" {
			continue
		}
		minRatio, _ := strconv.ParseFloat(row[5], 64)
		if minRatio < 1.0 {
			t.Errorf("U=%s %s: min bound/observed ratio %v < 1 (unsound!)", row[0], row[1], minRatio)
		}
	}
}

func TestT9HasAllKnobs(t *testing.T) {
	tb := mustRun(t, "T9")
	knobs := map[string]int{}
	for _, row := range tb.Rows {
		knobs[row[0]]++
	}
	if knobs["depth"] != 4 || knobs["dma-arb"] != 2 || knobs["priorities"] != 2 {
		t.Fatalf("knob coverage: %v", knobs)
	}
}

func TestF10CaseStudyRuns(t *testing.T) {
	tb := mustRun(t, "F10")
	if len(tb.Rows) != 5*3 {
		t.Fatalf("F10 rows = %d, want 15 (5 policies × 3 tasks)", len(tb.Rows))
	}
	// At this modest load no policy should miss; p95 ≤ max.
	for _, row := range tb.Rows {
		if row[6] != "0.0%" {
			t.Errorf("%s/%s missed deadlines: %s", row[0], row[1], row[6])
		}
		mx, _ := strconv.ParseFloat(row[3], 64)
		p95, _ := strconv.ParseFloat(row[4], 64)
		if p95 > mx {
			t.Errorf("%s/%s p95 %v > max %v", row[0], row[1], p95, mx)
		}
	}
}

func TestT11ContentionStretchesLatency(t *testing.T) {
	tb := mustRun(t, "T11")
	first, _ := strconv.ParseFloat(tb.Rows[0][3], 64)
	last, _ := strconv.ParseFloat(tb.Rows[len(tb.Rows)-1][3], 64)
	if last <= first {
		t.Errorf("50%% contention latency %v ≤ 0%% latency %v", last, first)
	}
}

func TestF12BothVariantsProduceVerdicts(t *testing.T) {
	tb := mustRun(t, "F12")
	// Columns: util, fp-sched, fp-missing, edf-sched, edf-missing.
	fp := percentage(t, tb.Rows[0][1])
	edf := percentage(t, tb.Rows[0][3])
	if fp == 0 && edf == 0 {
		t.Error("both RT-MDM variants reject everything at U=0.2")
	}
	// At the lowest utilization neither runtime misses.
	if percentage(t, tb.Rows[0][2]) != 0 || percentage(t, tb.Rows[0][4]) != 0 {
		t.Error("empirical misses at U=0.2")
	}
}

func TestT13GranularityTradeoff(t *testing.T) {
	tb := mustRun(t, "T13")
	if len(tb.Rows) != 5 {
		t.Fatalf("T13 rows = %d", len(tb.Rows))
	}
	// At 50 µs switch cost (last column), the finest granularity must not
	// beat the coarsest by much — switching eats the blocking gains — and
	// with zero switch cost (column 1) finer is never substantially worse
	// than the 4 ms extreme.
	last := len(tb.Columns) - 1
	fine50 := percentage(t, tb.Rows[0][last])
	coarse50 := percentage(t, tb.Rows[len(tb.Rows)-1][last])
	fine0 := percentage(t, tb.Rows[0][1])
	if fine0 == 0 && coarse50 == 0 && fine50 == 0 {
		t.Skip("quick config too small to resolve the tradeoff")
	}
	if fine0 < percentage(t, tb.Rows[len(tb.Rows)-1][1])-25 {
		t.Errorf("zero-switch fine granularity collapsed: %v", fine0)
	}
}

func TestF13PlatformsCompared(t *testing.T) {
	tb := mustRun(t, "F13")
	if len(tb.Rows) != 3 {
		t.Fatalf("F13 rows = %d", len(tb.Rows))
	}
	// The H743 must deploy and schedule the case study cleanly.
	for _, row := range tb.Rows {
		if row[0] == "stm32h743" {
			if row[4] != "yes" || row[5] != "true" || row[6] != "0" {
				t.Errorf("h743 case study row: %v", row)
			}
		}
	}
}

func TestT16CacheMonotone(t *testing.T) {
	tb := mustRun(t, "T16")
	// mobilenet latency: off ≤ 64KiB rows... rows are ordered off, 4K,
	// 16K, 64K; the 4K row must be the slowest of the cached rows.
	l4, _ := strconv.ParseFloat(tb.Rows[1][1], 64)
	l64, _ := strconv.ParseFloat(tb.Rows[3][1], 64)
	if l4 < l64 {
		t.Fatalf("4KiB cache faster than 64KiB: %v < %v", l4, l64)
	}
	off, _ := strconv.ParseFloat(tb.Rows[0][1], 64)
	if off > l64 {
		t.Fatalf("disabled cache slower than 64KiB: %v > %v", off, l64)
	}
}

func TestT17EnergyNeutral(t *testing.T) {
	tb := mustRun(t, "T17")
	// Flash traffic identical across policies; energy within 2%.
	flash0, _ := strconv.ParseFloat(tb.Rows[0][1], 64)
	e0, _ := strconv.ParseFloat(tb.Rows[0][4], 64)
	for _, row := range tb.Rows[1:] {
		f, _ := strconv.ParseFloat(row[1], 64)
		e, _ := strconv.ParseFloat(row[4], 64)
		if f != flash0 {
			t.Errorf("%s: flash %v != %v", row[0], f, flash0)
		}
		if e < 0.98*e0 || e > 1.02*e0 {
			t.Errorf("%s: energy %v vs %v (not neutral)", row[0], e, e0)
		}
	}
}

// T25: injected overruns must hurt — every configuration's miss ratio is
// nondecreasing in the overrun rate (modest sampling slack) — and at rate 0
// the fault path must be inert: the rt-mdm columns agree exactly with each
// other, since no overrun ever fires to differentiate the handling policies.
func TestT25OverrunsDegradeMonotonically(t *testing.T) {
	tb := mustRun(t, "T25")
	if len(tb.Rows) != len(overrunRates) {
		t.Fatalf("T25 rows = %d, want %d", len(tb.Rows), len(overrunRates))
	}
	for c := 1; c < len(tb.Columns); c++ {
		prev := -1e9
		for _, row := range tb.Rows {
			v := percentage(t, row[c])
			if v < prev-10 { // quick-scale slack
				t.Errorf("%s: miss ratio fell with overrun rate: %v%% after %v%%", tb.Columns[c], v, prev)
			}
			prev = v
		}
		first := percentage(t, tb.Rows[0][c])
		last := percentage(t, tb.Rows[len(tb.Rows)-1][c])
		if last < first {
			t.Errorf("%s: 100%% overruns (%v%%) miss less than none (%v%%)", tb.Columns[c], last, first)
		}
	}
	// Rate 0: the three rt-mdm handling policies are indistinguishable.
	zero := tb.Rows[0]
	if zero[3] != zero[4] || zero[3] != zero[5] {
		t.Errorf("rate-0 rt-mdm columns differ: %v %v %v", zero[3], zero[4], zero[5])
	}
}

func TestSimHorizonBounds(t *testing.T) {
	cfg := QuickConfig()
	specs, err := genSpecs(cfg, 0.4, 2)
	if err != nil {
		t.Fatal(err)
	}
	s, err := specs[0].Instantiate(cfg.Platform, core.RTMDM())
	if err != nil {
		t.Fatal(err)
	}
	h := simHorizon(s, cfg.MaxHorizon)
	if h <= 0 || h > cfg.MaxHorizon {
		t.Fatalf("horizon %v outside (0, %v]", h, cfg.MaxHorizon)
	}
	var maxT sim.Duration
	for _, tk := range s.Tasks {
		if tk.Period > maxT {
			maxT = tk.Period
		}
	}
	want := maxT
	if cfg.MaxHorizon < want {
		want = cfg.MaxHorizon
	}
	if h < want {
		t.Fatalf("horizon %v shorter than min(longest period, cap) = %v", h, want)
	}
}

func TestAcceptedPipelineStages(t *testing.T) {
	cfg := QuickConfig()
	specs, err := genSpecs(cfg, 0.3, 2)
	if err != nil {
		t.Fatal(err)
	}
	ok, v, s := accepted(specs[0], cfg.Platform, core.RTMDM())
	if s == nil {
		t.Fatal("instantiation failed for a generated spec")
	}
	if ok && (v == nil || !v.Schedulable) {
		t.Fatal("accepted without a positive verdict")
	}
	// A policy without analysis must be rejected with the set preserved.
	ok2, v2, s2 := accepted(specs[0], cfg.Platform, core.SerialSegEDF())
	if ok2 || v2 != nil || s2 == nil {
		t.Fatalf("serial EDF acceptance: ok=%v verdict=%v set=%v", ok2, v2, s2 != nil)
	}
}

func TestT18TuningNeverHurts(t *testing.T) {
	tb := mustRun(t, "T18")
	for _, row := range tb.Rows {
		fixed := percentage(t, row[1])
		tuned := percentage(t, row[2])
		if tuned < fixed {
			t.Errorf("U=%s: tuned δ acceptance %v%% < fixed %v%%", row[0], tuned, fixed)
		}
	}
}

func TestF19TighterDeadlinesNeverHelp(t *testing.T) {
	tb := mustRun(t, "F19")
	prev := 1e9
	for _, row := range tb.Rows {
		rt := percentage(t, row[3])
		if rt > prev+20 { // sampling slack at quick scale
			t.Errorf("rt-mdm acceptance rose as deadlines tightened: %v after %v", rt, prev)
		}
		prev = rt
	}
}

func TestF20JitterDegradesMonotonically(t *testing.T) {
	tb := mustRun(t, "F20")
	prev := 1e9
	for _, row := range tb.Rows {
		rt := percentage(t, row[3])
		if rt > prev+20 {
			t.Errorf("rt-mdm acceptance rose with jitter: %v after %v", rt, prev)
		}
		prev = rt
		// Empirical misses stay at zero for accepted-dominated regimes at
		// this utilization.
		if miss := percentage(t, row[4]); miss > 25 {
			t.Errorf("jitter %s: rt-mdm missing in %v%% of sets at U=0.5", row[0], miss)
		}
	}
}

func TestT21SpreadIsTight(t *testing.T) {
	tb := mustRun(t, "T21")
	// At quick scale wide spreads are expected; just verify the format
	// and that the ranges are ordered.
	for _, row := range tb.Rows {
		for _, cell := range row[1:] {
			var lo, hi float64
			if _, err := fmt.Sscanf(cell, "%f..%f%%", &lo, &hi); err != nil {
				t.Fatalf("bad range cell %q: %v", cell, err)
			}
			if lo > hi {
				t.Fatalf("inverted range %q", cell)
			}
		}
	}
}

func TestT22GreedyNeverMoreSegments(t *testing.T) {
	tb := mustRun(t, "T22")
	for _, row := range tb.Rows {
		g, _ := strconv.Atoi(row[1])
		p, _ := strconv.Atoi(row[2])
		if g > p {
			t.Errorf("%s: greedy %d segments > per-layer %d", row[0], g, p)
		}
		gs, _ := strconv.ParseFloat(row[3], 64)
		ps, _ := strconv.ParseFloat(row[4], 64)
		if gs > ps+0.001 {
			t.Errorf("%s: greedy serial %v > per-layer %v", row[0], gs, ps)
		}
	}
}

// T23: joint exploration must never rescue fewer sets than the fixed
// reference configuration, and the recommended margin must not grow as
// load rises.
func TestT23ExplorationNeverHurts(t *testing.T) {
	tb := mustRun(t, "T23")
	prevAlpha := 1e9
	for _, row := range tb.Rows {
		fixed := percentage(t, row[1])
		explored := percentage(t, row[2])
		if explored < fixed {
			t.Errorf("U=%s: explored acceptance %v%% < fixed %v%%", row[0], explored, fixed)
		}
		if row[4] != "-" {
			var a float64
			if _, err := fmt.Sscanf(row[4], "%f", &a); err != nil {
				t.Fatalf("bad alpha cell %q", row[4])
			}
			if a > prevAlpha+0.15 { // quick-scale slack
				t.Errorf("recommended α rose with load: %v after %v", a, prevAlpha)
			}
			prevAlpha = a
		}
	}
}

// T24: tuned per-task windows must dominate uniform depth 2 in acceptance
// (the lattice contains it), the cheapest accepted assignment must not
// cost more staging than uniform depth 2, and the depth gradient must
// point the right way (top-priority windows at least as deep as
// bottom-priority ones).
func TestT24TunedWindowsDominate(t *testing.T) {
	tb := mustRun(t, "T24")
	for _, row := range tb.Rows {
		d2 := percentage(t, row[1])
		tuned := percentage(t, row[3])
		if tuned < d2 {
			t.Errorf("U=%s: tuned %v%% < uniform-d2 %v%%", row[0], tuned, d2)
		}
		if row[4] == "-" {
			continue
		}
		var cheap, d2kb, top, bot float64
		if _, err := fmt.Sscanf(row[4], "%f", &cheap); err != nil {
			t.Fatalf("bad cheapest cell %q", row[4])
		}
		if _, err := fmt.Sscanf(row[5], "%f", &d2kb); err != nil {
			t.Fatalf("bad d2-staging cell %q", row[5])
		}
		if cheap > d2kb {
			t.Errorf("U=%s: cheapest accepted staging %v KiB > uniform-d2 %v KiB", row[0], cheap, d2kb)
		}
		if _, err := fmt.Sscanf(row[6], "%f", &top); err != nil {
			t.Fatalf("bad top-depth cell %q", row[6])
		}
		if _, err := fmt.Sscanf(row[7], "%f", &bot); err != nil {
			t.Fatalf("bad bottom-depth cell %q", row[7])
		}
		if top < bot {
			t.Errorf("U=%s: depth gradient inverted: top %v < bottom %v", row[0], top, bot)
		}
	}
}
