package expr

import (
	"fmt"

	"rtmdm/internal/core"
	"rtmdm/internal/dse"
)

func init() {
	register(Experiment{ID: "T23", Title: "Design-space exploration: co-tuning the SRAM partition, depth, δ and chunking", Run: runT23})
}

// runT23 measures what full design-space exploration buys over the fixed
// reference configuration: for each task set it sweeps the staging
// partition jointly with the software knobs (T18 tunes δ alone) and
// reports how many sets any grid point rescues, what the recommended
// configuration costs in staging SRAM, and the guaranteed margin it
// achieves.
func runT23(cfg Config) (*Table, error) {
	t := &Table{
		ID: "T23",
		Title: fmt.Sprintf("Design-space exploration vs fixed configuration (%d sets, %d tasks)",
			cfg.Sets, cfg.N),
		Columns: []string{"util", "fixed-config sched", "explored sched",
			"mean rec staging(KiB)", "mean rec α", "mean frontier size"},
		Notes: "explored = some point of the 16-point grid (staging 64-256 KiB × depth 2-3 × δ 0.5-1 ms) is schedulable; rec = Recommend(α ≥ 1.1) over schedulable sets",
	}
	knobs := dse.Knobs{
		StagingBytes:  []int64{64 << 10, 128 << 10, 192 << 10, 256 << 10},
		Depths:        []int{2, 3},
		GranularityNs: []int64{500_000, 1_000_000},
		ChunkBytes:    []int64{0},
	}
	for _, u := range []float64{0.5, 0.6, 0.7, 0.8} {
		specs, err := genSpecs(cfg, u, cfg.N)
		if err != nil {
			return nil, err
		}
		type t23res struct {
			fixed   bool
			hasRec  bool
			staging float64
			alpha   float64
			front   float64
			err     error
		}
		results := make([]t23res, len(specs))
		parallelEach(len(specs), func(k int) {
			sp := specs[k]
			r := t23res{}
			r.fixed, _, _ = accepted(sp, cfg.Platform, core.RTMDM())
			// Explore parallelizes internally too; nesting just feeds the
			// same GOMAXPROCS-wide pool more evenly when grids are small.
			er, err := dse.Explore(sp, cfg.Platform, knobs)
			if err != nil {
				r.err = err
				results[k] = r
				return
			}
			if rec, ok := er.Recommend(1.1); ok {
				r.hasRec = true
				r.staging = float64(rec.StagingBytes) / 1024
				r.alpha = rec.Alpha
				r.front = float64(len(er.Frontier))
			}
			results[k] = r
		})
		fixedOK, expOK := 0, 0
		var stagingSum, alphaSum, frontSum float64
		for _, r := range results {
			if r.err != nil {
				return nil, r.err
			}
			if r.fixed {
				fixedOK++
			}
			if !r.hasRec {
				continue
			}
			expOK++
			stagingSum += r.staging
			alphaSum += r.alpha
			frontSum += r.front
		}
		n := float64(len(specs))
		staging, alpha, front := "-", "-", "-"
		if expOK > 0 {
			staging = fmt.Sprintf("%.0f", stagingSum/float64(expOK))
			alpha = f2(alphaSum / float64(expOK))
			front = f2(frontSum / float64(expOK))
		}
		t.AddRow(f2(u), pct(float64(fixedOK)/n), pct(float64(expOK)/n),
			staging, alpha, front)
	}
	return t, nil
}
