package expr

import (
	"fmt"
	"sync"
	"sync/atomic"

	"rtmdm/internal/analysis"
	"rtmdm/internal/core"
	"rtmdm/internal/cost"
	"rtmdm/internal/exec"
	"rtmdm/internal/metrics"
	"rtmdm/internal/sim"
	"rtmdm/internal/task"
	"rtmdm/internal/workload"
)

func init() {
	register(Experiment{ID: "F4", Title: "Schedulability ratio vs utilization (offline analyses)", Run: runF4})
	register(Experiment{ID: "F5", Title: "Empirical deadline-miss ratio vs utilization (simulation)", Run: runF5})
	register(Experiment{ID: "F6", Title: "Schedulability vs staging SRAM budget", Run: runF6})
	register(Experiment{ID: "F7", Title: "Schedulability vs number of DNN tasks", Run: runF7})
	register(Experiment{ID: "F12", Title: "EDF extension: RT-MDM-FP vs RT-MDM-EDF schedulability", Run: runF12})
}

// sweepUtils is the utilization axis of the headline experiments.
var sweepUtils = []float64{0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}

// genOneSpec draws one task-set spec for an explicit platform.
func genOneSpec(cfg Config, plat cost.Platform, util float64, n int, k int64) (workload.SetSpec, error) {
	return workload.Generate(workload.Params{
		Seed:     cfg.Seed + k*7907 + int64(util*1000)*13 + int64(n),
		N:        n,
		Util:     util,
		Platform: plat,
	})
}

// genSpecs draws cfg.Sets task-set specs at one utilization point. Each
// spec is a pure function of its seed, so the draws parallelize into
// pre-sized slots without changing any output.
func genSpecs(cfg Config, util float64, n int) ([]workload.SetSpec, error) {
	specs := make([]workload.SetSpec, cfg.Sets)
	errs := make([]error, cfg.Sets)
	parallelEach(cfg.Sets, func(k int) {
		specs[k], errs[k] = genOneSpec(cfg, cfg.Platform, util, n, int64(k))
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return specs, nil
}

// acceptResult is one memoized offline-pipeline outcome. The verdict and
// task set are shared across all callers with the same inputs; both are
// read-only by contract (every analysis and the executor treat sets as
// immutable, and BreakdownFactor copies before scaling).
type acceptResult struct {
	acc bool
	v   *analysis.Verdict
	s   *task.Set
}

// acceptCache memoizes accepted() on (spec, platform, policy) fingerprints.
// The offline pipeline is deterministic in those inputs, so sweep points
// that revisit a configuration — F4/F6/F7 share specs at U=0.6, T18 re-runs
// the default δ, benchmarks iterate whole experiments — skip segmentation,
// provisioning and analysis entirely.
var acceptCache sync.Map

// cacheIns carries the harness's cache-effectiveness counters (nil metrics
// when instrumentation is off). rtmdm-bench -metrics snapshots the registry
// around each experiment, so the diffs read as per-experiment hit/miss.
type cacheIns struct {
	hits   *metrics.Counter
	misses *metrics.Counter
}

var instr atomic.Pointer[cacheIns]

func init() { instr.Store(&cacheIns{}) }

// Instrument wires the harness's offline-pipeline cache to the registry;
// Instrument(nil) disables instrumentation.
func Instrument(r *metrics.Registry) {
	if r == nil {
		instr.Store(&cacheIns{})
		return
	}
	instr.Store(&cacheIns{
		hits:   r.Counter("expr.accept_cache_hits", "lookups", "offline-pipeline results served from the accept cache"),
		misses: r.Counter("expr.accept_cache_misses", "lookups", "offline-pipeline runs that had to compute"),
	})
}

// accepted runs a policy's offline pipeline on one spec: instantiate,
// provision, analyze. Any stage failing means "not schedulable offline".
// Results are memoized; callers must treat the returned verdict and set as
// read-only.
func accepted(sp workload.SetSpec, plat cost.Platform, pol core.Policy) (bool, *analysis.Verdict, *task.Set) {
	key := sp.Fingerprint() + "|" + plat.Fingerprint() + "|" + pol.Fingerprint()
	if r, ok := acceptCache.Load(key); ok {
		instr.Load().hits.Add(1)
		ar := r.(acceptResult)
		return ar.acc, ar.v, ar.s
	}
	instr.Load().misses.Add(1)
	acc, v, s := acceptedUncached(sp, plat, pol)
	acceptCache.Store(key, acceptResult{acc: acc, v: v, s: s})
	return acc, v, s
}

func acceptedUncached(sp workload.SetSpec, plat cost.Platform, pol core.Policy) (bool, *analysis.Verdict, *task.Set) {
	s, err := sp.Instantiate(plat, pol)
	if err != nil {
		return false, nil, nil
	}
	if err := core.Provision(s, plat, pol); err != nil {
		return false, nil, s
	}
	test, err := analysis.ForPolicy(pol)
	if err != nil {
		return false, nil, s
	}
	v := test(s, plat)
	return v.Schedulable, &v, s
}

func schedRatioRow(cfg Config, util float64, n int, pols []core.Policy) ([]string, error) {
	specs, err := genSpecs(cfg, util, n)
	if err != nil {
		return nil, err
	}
	row := []string{f2(util)}
	for _, pol := range pols {
		pol := pol
		acc := make([]bool, len(specs))
		parallelEach(len(specs), func(k int) {
			acc[k], _, _ = accepted(specs[k], cfg.Platform, pol)
		})
		ok := 0
		for _, a := range acc {
			if a {
				ok++
			}
		}
		row = append(row, pct(float64(ok)/float64(len(specs))))
	}
	return row, nil
}

func runF4(cfg Config) (*Table, error) {
	pols := core.ComparisonSet()
	cols := []string{"util"}
	for _, p := range pols {
		cols = append(cols, p.Name)
	}
	t := &Table{
		ID:      "F4",
		Title:   fmt.Sprintf("Fraction of %d random %d-task sets deemed schedulable (offline)", cfg.Sets, cfg.N),
		Columns: cols,
		Notes:   "reconstructed headline figure; utilization = serial demand / period at the reference segmentation",
	}
	for _, u := range sweepUtils {
		row, err := schedRatioRow(cfg, u, cfg.N, pols)
		if err != nil {
			return nil, err
		}
		t.AddRow(row...)
	}
	return t, nil
}

// simHorizon picks the empirical window for a set.
func simHorizon(s *task.Set, cap sim.Duration) sim.Duration {
	var maxT sim.Duration
	for _, tk := range s.Tasks {
		if tk.Period > maxT {
			maxT = tk.Period
		}
	}
	h := core.SatMulTime(maxT, 20)
	if h > cap {
		h = cap
	}
	if hp := s.Hyperperiod(cap); hp < h {
		h = hp
	}
	return h
}

func runF5(cfg Config) (*Table, error) {
	pols := core.ComparisonSet()
	cols := []string{"util"}
	for _, p := range pols {
		cols = append(cols, p.Name+" sets-missing", p.Name+" job-miss")
	}
	t := &Table{
		ID:      "F5",
		Title:   fmt.Sprintf("Empirical misses over %d random %d-task sets (synchronous release)", cfg.Sets, cfg.N),
		Columns: cols,
		Notes:   "sets-missing = fraction of sets with ≥1 miss; job-miss = mean per-set job miss ratio",
	}
	for _, u := range sweepUtils {
		specs, err := genSpecs(cfg, u, cfg.N)
		if err != nil {
			return nil, err
		}
		row := []string{f2(u)}
		for _, pol := range pols {
			pol := pol
			type res struct {
				miss bool
				jobs float64
				err  error
			}
			results := make([]res, len(specs))
			parallelEach(len(specs), func(k int) {
				s, err := specs[k].Instantiate(cfg.Platform, pol)
				if err != nil {
					results[k] = res{miss: true, jobs: 1} // undeployable counts as failing
					return
				}
				r, err := exec.Run(s, cfg.Platform, pol, simHorizon(s, cfg.MaxHorizon))
				if err != nil {
					results[k] = res{err: err}
					return
				}
				results[k] = res{miss: r.Metrics.AnyMiss(), jobs: r.Metrics.TotalMissRatio()}
			})
			missSets, missJobs := 0, 0.0
			for _, rr := range results {
				if rr.err != nil {
					return nil, rr.err
				}
				if rr.miss {
					missSets++
				}
				missJobs += rr.jobs
			}
			n := float64(len(specs))
			row = append(row, pct(float64(missSets)/n), pct(missJobs/n))
		}
		t.AddRow(row...)
	}
	return t, nil
}

func runF6(cfg Config) (*Table, error) {
	bufs := []int64{32 << 10, 64 << 10, 128 << 10, 192 << 10, 256 << 10, 384 << 10}
	const util = 0.6
	pols := []core.Policy{core.SerialSegFP(), core.RTMDM()}
	cols := []string{"staging-SRAM(KiB)"}
	for _, p := range pols {
		cols = append(cols, p.Name)
	}
	t := &Table{
		ID:      "F6",
		Title:   fmt.Sprintf("Schedulability at U=%.1f vs staging/activation SRAM partition (%d sets, %d tasks)", util, cfg.Sets, cfg.N),
		Columns: cols,
		Notes: "the 512 KiB SRAM is partitioned between staging buffers and activations: too little staging " +
			"means fine segments and transfer setups, too much starves preempted jobs' parked activations; " +
			"the shared-buffer serial baseline additionally suffers long non-preemptive transfers at large budgets",
	}
	specs, err := genSpecs(cfg, util, cfg.N)
	if err != nil {
		return nil, err
	}
	for _, buf := range bufs {
		plat := cfg.Platform.WithWeightBuf(buf)
		row := []string{fmt.Sprintf("%d", buf>>10)}
		for _, pol := range pols {
			pol := pol
			acc := make([]bool, len(specs))
			parallelEach(len(specs), func(k int) {
				acc[k], _, _ = accepted(specs[k], plat, pol)
			})
			ok := 0
			for _, a := range acc {
				if a {
					ok++
				}
			}
			row = append(row, pct(float64(ok)/float64(len(specs))))
		}
		t.AddRow(row...)
	}
	return t, nil
}

func runF7(cfg Config) (*Table, error) {
	ns := []int{2, 3, 4, 6, 8}
	const util = 0.6
	pols := core.ComparisonSet()
	cols := []string{"tasks"}
	for _, p := range pols {
		cols = append(cols, p.Name)
	}
	t := &Table{
		ID:      "F7",
		Title:   fmt.Sprintf("Schedulability at U=%.1f vs task-set size (%d sets)", util, cfg.Sets),
		Columns: cols,
		Notes:   "RT-MDM splits staging SRAM per task, so larger sets pay finer segmentation",
	}
	for _, n := range ns {
		row, err := schedRatioRow(cfg, util, n, pols)
		if err != nil {
			return nil, err
		}
		row[0] = fmt.Sprintf("%d", n)
		t.AddRow(row...)
	}
	return t, nil
}

func runF12(cfg Config) (*Table, error) {
	pols := []core.Policy{core.RTMDM(), core.RTMDMEDF()}
	cols := []string{"util"}
	for _, p := range pols {
		cols = append(cols, p.Name+" sched", p.Name+" sim-missing")
	}
	t := &Table{
		ID:      "F12",
		Title:   fmt.Sprintf("Fixed-priority vs EDF variant of RT-MDM (%d sets, %d tasks)", cfg.Sets, cfg.N),
		Columns: cols,
		Notes: "sched = offline acceptance; sim-missing = sets with ≥1 empirical miss. " +
			"The EDF runtime matches FP, but its suspension-oblivious demand test is weaker than the FP RTA",
	}
	for _, u := range sweepUtils {
		specs, err := genSpecs(cfg, u, cfg.N)
		if err != nil {
			return nil, err
		}
		row := []string{f2(u)}
		for _, pol := range pols {
			pol := pol
			type res struct {
				acc  bool
				miss bool
				err  error
			}
			results := make([]res, len(specs))
			parallelEach(len(specs), func(k int) {
				acc, _, s := accepted(specs[k], cfg.Platform, pol)
				if s == nil {
					results[k] = res{acc: acc, miss: true}
					return
				}
				r, err := exec.Run(s, cfg.Platform, pol, simHorizon(s, cfg.MaxHorizon))
				if err != nil {
					results[k] = res{err: err}
					return
				}
				results[k] = res{acc: acc, miss: r.Metrics.AnyMiss()}
			})
			ok, missSets := 0, 0
			for _, rr := range results {
				if rr.err != nil {
					return nil, rr.err
				}
				if rr.acc {
					ok++
				}
				if rr.miss {
					missSets++
				}
			}
			n := float64(len(specs))
			row = append(row, pct(float64(ok)/n), pct(float64(missSets)/n))
		}
		t.AddRow(row...)
	}
	return t, nil
}
