package expr

import (
	"fmt"

	"rtmdm/internal/analysis"
	"rtmdm/internal/core"
	"rtmdm/internal/cost"
	"rtmdm/internal/sim"
	"rtmdm/internal/task"
)

func init() {
	register(Experiment{ID: "T24", Title: "Heterogeneous prefetch windows: per-task depth tuning at fixed segmentation", Run: runT24})
}

// runT24 isolates the prefetch-window knob: every variant runs on the SAME
// depth-2 segmentation (unlike T9, which re-segments per depth), so the
// only difference is how far each task's DMA may run ahead — and how much
// staging SRAM its window pins. A brute-force tuner searches {1,2,3,4}ⁿ
// per set and reports two optima over the accepted assignments: the
// CHEAPEST (least staging SRAM — the economy story: the same guarantee at
// a fraction of the partition) and the SLACK-MAXIMAL one (the gradient
// story: the top-priority task deepens for free since its window blocks
// nobody, while lower tasks stay shallow because their staged inventory
// is exactly what blocks everyone above them).
func runT24(cfg Config) (*Table, error) {
	t := &Table{
		ID: "T24",
		Title: fmt.Sprintf("Per-task prefetch depths vs uniform windows (%d sets, %d tasks, fixed depth-2 segmentation)",
			cfg.Sets, cfg.N),
		Columns: []string{"util", "uniform-d2 sched", "uniform-d4 sched", "tuned sched",
			"cheapest staging(KiB)", "d2 staging(KiB)", "slack-opt depth(top)", "slack-opt depth(bottom)"},
		Notes: "tuned = any accepted point of {1..4}ⁿ windows on the same plans; cheapest = least-staging accepted assignment; slack-opt = the accepted assignment maximizing worst-case slack (ties → less staging)",
	}
	base := core.RTMDM()
	for _, u := range []float64{0.5, 0.6, 0.7, 0.8} {
		specs, err := genSpecs(cfg, u, cfg.N)
		if err != nil {
			return nil, err
		}
		type t24res struct {
			deployed bool
			d2OK     bool
			d4OK     bool
			tuned    bool
			d2Stage  float64
			top, bot float64
			cheap    float64
		}
		results := make([]t24res, len(specs))
		parallelEach(len(specs), func(k int) {
			set, err := specs[k].Instantiate(cfg.Platform, base)
			if err != nil || core.Provision(set, cfg.Platform, base) != nil {
				return
			}
			r := t24res{deployed: true}
			r.d2OK = analysis.RTMDMRTA(set, cfg.Platform, 2).Schedulable
			r.d2Stage = float64(stagingNeed(set, uniformDepths(set, 2))) / 1024
			r.d4OK = acceptedAtDepths(set, cfg.Platform, uniformDepths(set, 4))
			if cheapest, slackOpt, ok := tuneDepths(set, cfg.Platform); ok {
				r.tuned = true
				byPrio := set.ByPriority()
				r.top = float64(slackOpt[byPrio[0].Name])
				r.bot = float64(slackOpt[byPrio[len(byPrio)-1].Name])
				r.cheap = float64(stagingNeed(set, cheapest)) / 1024
			}
			results[k] = r
		})
		var d2OK, d4OK, tunedOK int
		var topSum, botSum, cheapSum, d2StagingSum float64
		tunedN := 0
		for _, r := range results {
			if !r.deployed {
				continue
			}
			if r.d2OK {
				d2OK++
			}
			d2StagingSum += r.d2Stage
			if r.d4OK {
				d4OK++
			}
			if !r.tuned {
				continue
			}
			tunedOK++
			tunedN++
			topSum += r.top
			botSum += r.bot
			cheapSum += r.cheap
		}
		n := float64(len(specs))
		top, bot, cheap := "-", "-", "-"
		if tunedN > 0 {
			top = f2(topSum / float64(tunedN))
			bot = f2(botSum / float64(tunedN))
			cheap = fmt.Sprintf("%.0f", cheapSum/float64(tunedN))
		}
		t.AddRow(f2(u), pct(float64(d2OK)/n), pct(float64(d4OK)/n), pct(float64(tunedOK)/n),
			cheap, fmt.Sprintf("%.0f", d2StagingSum/n), top, bot)
	}
	return t, nil
}

func uniformDepths(s *task.Set, d int) map[string]int {
	out := make(map[string]int, len(s.Tasks))
	for _, tk := range s.Tasks {
		out[tk.Name] = d
	}
	return out
}

// stagingNeed is the SRAM the given window assignment pins: each task's
// depth buffers of its largest segment.
func stagingNeed(s *task.Set, depths map[string]int) int64 {
	var need int64
	for _, tk := range s.Tasks {
		d := depths[tk.Name]
		if d > tk.NumSegments() {
			d = tk.NumSegments()
		}
		need += int64(d) * tk.Plan.MaxLoadBytes()
	}
	return need
}

func acceptedAtDepths(s *task.Set, plat cost.Platform, depths map[string]int) bool {
	pol := core.RTMDMPerTaskDepth(depths)
	if core.Provision(s, plat, pol) != nil {
		return false
	}
	v := analysis.RTMDMRTADepths(s, plat, func(tk *task.Task) int { return pol.DepthFor(tk.Name) })
	return v.Schedulable
}

// tuneDepths brute-forces window assignments over {1,2,3,4}ⁿ and returns
// two accepted optima: the cheapest in staging SRAM (slack breaking ties)
// and the slack-maximal one (staging breaking ties). ok is false when no
// assignment is accepted.
func tuneDepths(s *task.Set, plat cost.Platform) (cheapest, slackOpt map[string]int, ok bool) {
	names := make([]string, len(s.Tasks))
	for i, tk := range s.Tasks {
		names[i] = tk.Name
	}
	candidates := []int{1, 2, 3, 4}
	var cheapStaging, slackOptStaging int64
	var cheapSlack, bestSlack sim.Duration
	assign := make([]int, len(names))
	var walk func(int)
	walk = func(i int) {
		if i == len(names) {
			depths := make(map[string]int, len(names))
			for k, n := range names {
				depths[n] = assign[k]
			}
			pol := core.RTMDMPerTaskDepth(depths)
			if core.Provision(s, plat, pol) != nil {
				return
			}
			v := analysis.RTMDMRTADepths(s, plat, func(tk *task.Task) int { return pol.DepthFor(tk.Name) })
			if !v.Schedulable {
				return
			}
			staging := stagingNeed(s, depths)
			slack := sim.Duration(1<<63 - 1)
			for _, tk := range s.Tasks {
				if d := tk.Deadline - v.WCRT[tk.Name]; d < slack {
					slack = d
				}
			}
			if cheapest == nil || staging < cheapStaging ||
				(staging == cheapStaging && slack > cheapSlack) {
				cheapest, cheapStaging, cheapSlack = depths, staging, slack
			}
			if slackOpt == nil || slack > bestSlack ||
				(slack == bestSlack && staging < slackOptStaging) {
				slackOpt, bestSlack, slackOptStaging = depths, slack, staging
			}
			return
		}
		for _, d := range candidates {
			assign[i] = d
			walk(i + 1)
		}
	}
	walk(0)
	return cheapest, slackOpt, cheapest != nil
}
