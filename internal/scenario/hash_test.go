package scenario

import (
	"encoding/json"
	"regexp"
	"testing"
)

func mustHash(t *testing.T, sc *Scenario) string {
	t.Helper()
	h, err := CanonicalHash(sc)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// TestCanonicalHashStable pins the digest shape and that hashing is a
// pure function of the scenario.
func TestCanonicalHashStable(t *testing.T) {
	sc := &Scenario{Tasks: []TaskSpec{{Name: "kws", Model: "ds-cnn", PeriodMs: 50}}}
	h1 := mustHash(t, sc)
	h2 := mustHash(t, sc)
	if h1 != h2 {
		t.Fatalf("hash not stable: %s vs %s", h1, h2)
	}
	if !regexp.MustCompile(`^[0-9a-f]{64}$`).MatchString(h1) {
		t.Fatalf("hash %q is not 64 hex chars", h1)
	}
}

// TestCanonicalHashDefaultInsensitive verifies every spelling of the
// defaults lands on the same digest: omitted platform/policy/horizon,
// deadline = period, seed 1, faults-stanza defaults.
func TestCanonicalHashDefaultInsensitive(t *testing.T) {
	implicit := &Scenario{
		Tasks: []TaskSpec{{Name: "kws", Model: "ds-cnn", PeriodMs: 50}},
	}
	explicit := &Scenario{
		Platform:  "stm32h743",
		Policy:    "rt-mdm",
		HorizonMs: 1000,
		Tasks:     []TaskSpec{{Name: "kws", Model: "ds-cnn", PeriodMs: 50, DeadlineMs: 50, Seed: 1}},
	}
	if a, b := mustHash(t, implicit), mustHash(t, explicit); a != b {
		t.Fatalf("explicit defaults changed the hash: %s vs %s", a, b)
	}

	fImplicit := &Scenario{
		Tasks:  []TaskSpec{{Name: "kws", Model: "ds-cnn", PeriodMs: 50}},
		Faults: &FaultSpec{},
	}
	fExplicit := &Scenario{
		Tasks:  []TaskSpec{{Name: "kws", Model: "ds-cnn", PeriodMs: 50}},
		Faults: &FaultSpec{Overrun: "continue"},
	}
	fExplicit.Faults.Seed = 1
	if a, b := mustHash(t, fImplicit), mustHash(t, fExplicit); a != b {
		t.Fatalf("explicit fault defaults changed the hash: %s vs %s", a, b)
	}
	if a, b := mustHash(t, implicit), mustHash(t, fImplicit); a == b {
		t.Fatal("adding a faults stanza did not change the hash")
	}
}

// TestCanonicalHashOrderInsensitive verifies task order is not semantic.
func TestCanonicalHashOrderInsensitive(t *testing.T) {
	ab := &Scenario{Tasks: []TaskSpec{
		{Name: "a", Model: "ds-cnn", PeriodMs: 50},
		{Name: "b", Model: "autoencoder", PeriodMs: 100},
	}}
	ba := &Scenario{Tasks: []TaskSpec{
		{Name: "b", Model: "autoencoder", PeriodMs: 100},
		{Name: "a", Model: "ds-cnn", PeriodMs: 50},
	}}
	if x, y := mustHash(t, ab), mustHash(t, ba); x != y {
		t.Fatalf("task order changed the hash: %s vs %s", x, y)
	}
}

// TestCanonicalHashSensitive verifies any real parameter change moves the
// digest.
func TestCanonicalHashSensitive(t *testing.T) {
	base := func() *Scenario {
		return &Scenario{Tasks: []TaskSpec{{Name: "kws", Model: "ds-cnn", PeriodMs: 50}}}
	}
	h0 := mustHash(t, base())
	prio := 3
	muts := map[string]func(*Scenario){
		"platform": func(sc *Scenario) { sc.Platform = "nucleo-h7a3" },
		"policy":   func(sc *Scenario) { sc.Policy = "serial-segfp" },
		"horizon":  func(sc *Scenario) { sc.HorizonMs = 2000 },
		"period":   func(sc *Scenario) { sc.Tasks[0].PeriodMs = 60 },
		"deadline": func(sc *Scenario) { sc.Tasks[0].DeadlineMs = 40 },
		"offset":   func(sc *Scenario) { sc.Tasks[0].OffsetMs = 5 },
		"seed":     func(sc *Scenario) { sc.Tasks[0].Seed = 2 },
		"model":    func(sc *Scenario) { sc.Tasks[0].Model = "autoencoder" },
		"priority": func(sc *Scenario) { sc.Tasks[0].Priority = &prio },
		"addtask": func(sc *Scenario) {
			sc.Tasks = append(sc.Tasks, TaskSpec{Name: "det", Model: "autoencoder", PeriodMs: 100})
		},
		"faults": func(sc *Scenario) {
			sc.Faults = &FaultSpec{}
			sc.Faults.OverrunRate = 0.1
		},
	}
	for name, mut := range muts {
		sc := base()
		mut(sc)
		if mustHash(t, sc) == h0 {
			t.Errorf("mutation %q did not change the hash", name)
		}
	}
}

// TestCanonicalizeDoesNotMutate verifies the receiver survives untouched
// (the server hashes the request before running it verbatim).
func TestCanonicalizeDoesNotMutate(t *testing.T) {
	sc := &Scenario{Tasks: []TaskSpec{
		{Name: "b", Model: "autoencoder", PeriodMs: 100},
		{Name: "a", Model: "ds-cnn", PeriodMs: 50},
	}}
	before, _ := json.Marshal(sc)
	_ = sc.Canonicalize()
	after, _ := json.Marshal(sc)
	if string(before) != string(after) {
		t.Fatalf("Canonicalize mutated the receiver:\n%s\n%s", before, after)
	}
}

// TestCanonicalizeIdempotent verifies canonical form is a fixpoint.
func TestCanonicalizeIdempotent(t *testing.T) {
	sc := &Scenario{Tasks: []TaskSpec{
		{Name: "b", Model: "autoencoder", PeriodMs: 100},
		{Name: "a", Model: "ds-cnn", PeriodMs: 50},
	}}
	c1 := sc.Canonicalize()
	c2 := c1.Canonicalize()
	b1, _ := json.Marshal(c1)
	b2, _ := json.Marshal(c2)
	if string(b1) != string(b2) {
		t.Fatalf("Canonicalize not idempotent:\n%s\n%s", b1, b2)
	}
}

// FuzzCanonicalHash asserts hashing is total on every parseable scenario
// and invariant under a canonicalize → marshal → parse round trip.
func FuzzCanonicalHash(f *testing.F) {
	f.Add([]byte(good))
	f.Add([]byte(withFaults))
	f.Add([]byte(`{"tasks":[{"name":"a","model":"lenet5","period_ms":10}]}`))
	f.Add([]byte(`{"horizon_ms":2.5,"tasks":[{"name":"a","model":"lenet5","period_ms":10,"priority":1}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		sc, err := Parse(data)
		if err != nil {
			return
		}
		h1, err := CanonicalHash(sc)
		if err != nil {
			// Parse's validateNumbers bounds every timing field, so the
			// canonical encoding of an accepted scenario must succeed.
			t.Fatalf("accepted scenario failed to hash: %v", err)
		}
		enc, err := json.Marshal(sc.Canonicalize())
		if err != nil {
			t.Fatalf("canonical form failed to marshal: %v", err)
		}
		rt, err := Parse(enc)
		if err != nil {
			t.Fatalf("canonical form failed to re-parse: %v\n%s", err, enc)
		}
		h2, err := CanonicalHash(rt)
		if err != nil {
			t.Fatal(err)
		}
		if h1 != h2 {
			t.Fatalf("round trip moved the hash: %s vs %s\n%s", h1, h2, enc)
		}
	})
}
