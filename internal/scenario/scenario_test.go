package scenario

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rtmdm/internal/core"
	"rtmdm/internal/models"
	"rtmdm/internal/sim"
)

const good = `{
  "platform": "stm32h743",
  "policy": "rt-mdm",
  "horizon_ms": 600,
  "tasks": [
    {"name": "kws", "model": "ds-cnn", "period_ms": 50},
    {"name": "det", "model": "mobilenetv1-0.25", "period_ms": 150, "deadline_ms": 120},
    {"name": "anomaly", "model": "autoencoder", "period_ms": 100, "offset_ms": 5}
  ]
}`

const withFaults = `{
  "horizon_ms": 200,
  "tasks": [{"name": "kws", "model": "ds-cnn", "period_ms": 50}],
  "faults": {
    "seed": 7,
    "overrun_rate": 0.25,
    "overrun_factor": 1.5,
    "transfer_fault_rate": 0.1,
    "max_retries": 2,
    "overrun": "abort"
  }
}`

func TestParseAndBuild(t *testing.T) {
	sc, err := Parse([]byte(good))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Horizon() != 600*sim.Millisecond {
		t.Fatalf("horizon %v", sc.Horizon())
	}
	set, plat, pol, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	if plat.Name != "stm32h743" || pol.Name != "rt-mdm" {
		t.Fatalf("resolved %s/%s", plat.Name, pol.Name)
	}
	if len(set.Tasks) != 3 {
		t.Fatalf("%d tasks", len(set.Tasks))
	}
	for _, tk := range set.Tasks {
		if tk.Name == "det" && tk.Deadline != 120*sim.Millisecond {
			t.Fatalf("det deadline %v", tk.Deadline)
		}
		if tk.Name == "anomaly" && tk.Offset != 5*sim.Millisecond {
			t.Fatalf("anomaly offset %v", tk.Offset)
		}
	}
	// RM assignment: kws (50 ms) most urgent.
	for _, tk := range set.ByPriority()[:1] {
		if tk.Name != "kws" {
			t.Fatalf("most urgent is %s", tk.Name)
		}
	}
}

func TestDefaultsApplied(t *testing.T) {
	sc, err := Parse([]byte(`{"tasks":[{"name":"a","model":"lenet5","period_ms":100}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Horizon() != sim.Second {
		t.Fatalf("default horizon %v", sc.Horizon())
	}
	_, plat, pol, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	if plat.Name != "stm32h743" || pol.Name != "rt-mdm" {
		t.Fatalf("defaults resolved %s/%s", plat.Name, pol.Name)
	}
}

func TestPinnedPriorities(t *testing.T) {
	sc, err := Parse([]byte(`{"tasks":[
		{"name":"a","model":"lenet5","period_ms":100,"priority":1},
		{"name":"b","model":"tinymlp","period_ms":50,"priority":0}
	]}`))
	if err != nil {
		t.Fatal(err)
	}
	set, _, _, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	if set.ByPriority()[0].Name != "b" {
		t.Fatal("pinned priorities not honored")
	}
}

func TestMixedPinningRejected(t *testing.T) {
	sc, err := Parse([]byte(`{"tasks":[
		{"name":"a","model":"lenet5","period_ms":100,"priority":1},
		{"name":"b","model":"tinymlp","period_ms":50}
	]}`))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := sc.Build(); err == nil || !strings.Contains(err.Error(), "pin all or none") {
		t.Fatalf("mixed pinning accepted: %v", err)
	}
}

func TestParseRejections(t *testing.T) {
	cases := map[string]string{
		"unknown field": `{"tasks":[{"name":"a","model":"lenet5","period_ms":1}],"bogus":1}`,
		"no tasks":      `{"tasks":[]}`,
		"not json":      `hello`,
	}
	for what, in := range cases {
		if _, err := Parse([]byte(in)); err == nil {
			t.Errorf("%s accepted", what)
		}
	}
}

func TestBuildRejections(t *testing.T) {
	cases := map[string]string{
		"bad platform": `{"platform":"z80","tasks":[{"name":"a","model":"lenet5","period_ms":1}]}`,
		"bad policy":   `{"policy":"fifo9000","tasks":[{"name":"a","model":"lenet5","period_ms":1}]}`,
		"bad model":    `{"tasks":[{"name":"a","model":"gpt4","period_ms":1}]}`,
		"zero period":  `{"tasks":[{"name":"a","model":"lenet5","period_ms":0}]}`,
	}
	for what, in := range cases {
		sc, err := Parse([]byte(in))
		if err != nil {
			t.Fatalf("%s failed at parse: %v", what, err)
		}
		if _, _, _, err := sc.Build(); err == nil {
			t.Errorf("%s accepted at build", what)
		}
	}
}

func TestLoadFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "scenario.json")
	if err := os.WriteFile(path, []byte(good), 0o644); err != nil {
		t.Fatal(err)
	}
	sc, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Tasks) != 3 {
		t.Fatalf("loaded %d tasks", len(sc.Tasks))
	}
	if _, err := Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestModelFileTasks(t *testing.T) {
	dir := t.TempDir()
	m, err := models.Build("lenet5", 3)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "lenet5.rtmdm")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Save(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	cfgJSON := `{"tasks":[{"name":"a","model_file":"` + path + `","period_ms":100}]}`
	sc, err := Parse([]byte(cfgJSON))
	if err != nil {
		t.Fatal(err)
	}
	set, _, _, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	if set.Tasks[0].Plan.Model.Name != "lenet5" {
		t.Fatalf("loaded model %q", set.Tasks[0].Plan.Model.Name)
	}

	// Both model and model_file rejected.
	both := `{"tasks":[{"name":"a","model":"lenet5","model_file":"` + path + `","period_ms":100}]}`
	sc, err = Parse([]byte(both))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := sc.Build(); err == nil {
		t.Fatal("model + model_file accepted")
	}
	// Neither rejected.
	neither := `{"tasks":[{"name":"a","period_ms":100}]}`
	sc, err = Parse([]byte(neither))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := sc.Build(); err == nil {
		t.Fatal("task without model accepted")
	}
	// Missing file rejected.
	missing := `{"tasks":[{"name":"a","model_file":"` + filepath.Join(dir, "nope.bin") + `","period_ms":100}]}`
	sc, err = Parse([]byte(missing))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := sc.Build(); err == nil {
		t.Fatal("missing model file accepted")
	}
}

func TestFaultsStanza(t *testing.T) {
	sc, err := Parse([]byte(withFaults))
	if err != nil {
		t.Fatal(err)
	}
	_, _, pol, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	if pol.Overrun != core.OverrunAbort {
		t.Fatalf("overrun policy %v, want abort", pol.Overrun)
	}
	plan, err := sc.FaultPlan()
	if err != nil {
		t.Fatal(err)
	}
	if plan == nil {
		t.Fatal("enabled faults stanza produced nil plan")
	}

	// No stanza: nil plan, default policy.
	sc2, err := Parse([]byte(good))
	if err != nil {
		t.Fatal(err)
	}
	if plan, err := sc2.FaultPlan(); err != nil || plan != nil {
		t.Fatalf("plan without stanza: %v, %v", plan, err)
	}
	_, _, pol2, err := sc2.Build()
	if err != nil {
		t.Fatal(err)
	}
	if pol2.Overrun != core.OverrunContinue {
		t.Fatalf("default overrun policy %v", pol2.Overrun)
	}
}

func TestFaultsStanzaRejections(t *testing.T) {
	base := `{"tasks":[{"name":"a","model":"lenet5","period_ms":10}],"faults":%s}`
	builds := map[string]string{
		"bad overrun policy": `{"overrun":"panic"}`,
	}
	for what, faults := range builds {
		sc, err := Parse([]byte(fmt.Sprintf(base, faults)))
		if err != nil {
			t.Fatalf("%s failed at parse: %v", what, err)
		}
		if _, _, _, err := sc.Build(); err == nil {
			t.Errorf("%s accepted at build", what)
		}
	}
	plans := map[string]string{
		"negative rate":    `{"overrun_rate":-0.5}`,
		"rate above one":   `{"transfer_fault_rate":1.5}`,
		"hostile factor":   `{"overrun_rate":0.1,"overrun_factor":1e300}`,
		"negative retries": `{"transfer_fault_rate":0.1,"max_retries":-1}`,
	}
	for what, faults := range plans {
		sc, err := Parse([]byte(fmt.Sprintf(base, faults)))
		if err != nil {
			t.Fatalf("%s failed at parse: %v", what, err)
		}
		if _, err := sc.FaultPlan(); err == nil {
			t.Errorf("%s accepted at FaultPlan", what)
		}
	}
}

func TestNonFiniteTimingRejected(t *testing.T) {
	// JSON cannot carry NaN, but Go callers can: a NaN period sails past
	// the "<= 0" guard unless rejected explicitly.
	nan := math.NaN()
	cases := map[string]*Scenario{
		"nan period":   {Tasks: []TaskSpec{{Name: "a", Model: "lenet5", PeriodMs: nan}}},
		"nan deadline": {Tasks: []TaskSpec{{Name: "a", Model: "lenet5", PeriodMs: 10, DeadlineMs: nan}}},
		"inf offset":   {Tasks: []TaskSpec{{Name: "a", Model: "lenet5", PeriodMs: 10, OffsetMs: math.Inf(1)}}},
		"nan horizon":  {HorizonMs: nan, Tasks: []TaskSpec{{Name: "a", Model: "lenet5", PeriodMs: 10}}},
	}
	for what, sc := range cases {
		if _, _, _, err := sc.Build(); err == nil {
			t.Errorf("%s accepted at build", what)
		}
	}
}

func TestParseTaskList(t *testing.T) {
	specs, err := ParseTaskList("ds-cnn:50, lenet5:100:80", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 {
		t.Fatalf("%d specs", len(specs))
	}
	if specs[0].Name != "t0-ds-cnn" || specs[0].PeriodMs != 50 || specs[0].DeadlineMs != 50 {
		t.Fatalf("spec0 %+v", specs[0])
	}
	if specs[1].DeadlineMs != 80 || specs[1].Seed != 3 {
		t.Fatalf("spec1 %+v", specs[1])
	}
	sc := &Scenario{Tasks: specs}
	if _, _, _, err := sc.Build(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"", "nope", "m:0", "m:10:0", "m:x", "m:10:20:30"} {
		if _, err := ParseTaskList(bad, 1); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}
