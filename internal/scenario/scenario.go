// Package scenario loads multi-DNN deployment descriptions from JSON, so
// experiments and CLI runs can be version-controlled and shared. A scenario
// pins the platform, the policy, the horizon, and the task list; Build
// turns it into a runnable, provisioned task set.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"rtmdm/internal/core"
	"rtmdm/internal/cost"
	"rtmdm/internal/fault"
	"rtmdm/internal/models"
	"rtmdm/internal/nn"
	"rtmdm/internal/segment"
	"rtmdm/internal/sim"
	"rtmdm/internal/task"
)

// TaskSpec is one periodic DNN inference in a scenario file.
type TaskSpec struct {
	// Name is the task identifier (unique within the scenario).
	Name string `json:"name"`
	// Model names a zoo entry. Mutually exclusive with ModelFile.
	Model string `json:"model,omitempty"`
	// ModelFile points at a binary model artifact (see nn.Save / the
	// rtmdm-inspect -export flag). Mutually exclusive with Model.
	ModelFile string `json:"model_file,omitempty"`
	// Seed selects the synthetic weights (default 1).
	Seed int64 `json:"seed,omitempty"`
	// PeriodMs is the release period in milliseconds.
	PeriodMs float64 `json:"period_ms"`
	// DeadlineMs is the relative deadline (default: the period).
	DeadlineMs float64 `json:"deadline_ms,omitempty"`
	// OffsetMs delays the first release.
	OffsetMs float64 `json:"offset_ms,omitempty"`
	// Priority pins a fixed priority; omit everywhere for rate-monotonic
	// assignment (mixing pinned and unpinned priorities is rejected).
	Priority *int `json:"priority,omitempty"`
}

// FaultSpec is the optional fault-injection stanza: the fault.Config rates
// (inlined) plus the overrun-handling discipline the executor applies to
// deadline misses.
type FaultSpec struct {
	fault.Config
	// Overrun selects the handling policy: "continue" (default), "abort",
	// or "skip-next".
	Overrun string `json:"overrun,omitempty"`
}

// Scenario is a complete deployment description.
type Scenario struct {
	// Platform names a preset (default "stm32h743").
	Platform string `json:"platform,omitempty"`
	// Policy names a scheduling policy (default "rt-mdm").
	Policy string `json:"policy,omitempty"`
	// HorizonMs bounds the simulation (default 1000).
	HorizonMs float64    `json:"horizon_ms,omitempty"`
	Tasks     []TaskSpec `json:"tasks"`
	// Faults optionally enables deterministic fault injection for the run.
	Faults *FaultSpec `json:"faults,omitempty"`
}

// Parse decodes a scenario from JSON, rejecting unknown fields.
func Parse(data []byte) (*Scenario, error) {
	var sc Scenario
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sc); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if len(sc.Tasks) == 0 {
		return nil, fmt.Errorf("scenario: no tasks")
	}
	if err := sc.ValidateNumbers(); err != nil {
		return nil, err
	}
	return &sc, nil
}

// maxMs bounds every millisecond-denominated field: anything larger would
// overflow the int64 nanosecond conversion (1e12 ms = ~11.5 simulated days,
// comfortably inside int64 ns).
const maxMs = 1e12

// ValidateNumbers rejects non-finite or overflow-prone timing fields early:
// JSON permits no NaN/Inf literals, but scenarios can also be constructed in
// Go, a NaN period slips past ordinary "<= 0" guards, and a huge horizon
// overflows the ns conversion into negative virtual time. Build applies it
// implicitly; the incremental admission path (internal/analysis) calls it
// directly so its error behavior matches Build's exactly.
func (sc *Scenario) ValidateNumbers() error {
	sane := func(v float64) bool { return !math.IsNaN(v) && v <= maxMs && v >= -maxMs }
	if !sane(sc.HorizonMs) {
		return fmt.Errorf("scenario: horizon_ms %v out of range", sc.HorizonMs)
	}
	for _, tsp := range sc.Tasks {
		if !sane(tsp.PeriodMs) || !sane(tsp.DeadlineMs) || !sane(tsp.OffsetMs) {
			return fmt.Errorf("scenario: task %s: timing out of range (period %v, deadline %v, offset %v)",
				tsp.Name, tsp.PeriodMs, tsp.DeadlineMs, tsp.OffsetMs)
		}
	}
	return nil
}

// Load reads and parses a scenario file.
func Load(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	return Parse(data)
}

// Horizon returns the simulation window.
func (sc *Scenario) Horizon() sim.Duration {
	ms := sc.HorizonMs
	if ms <= 0 {
		ms = 1000
	}
	return sim.Duration(ms * float64(sim.Millisecond)) //lint:allow millitime -- config-parse boundary: horizon given as float ms in the scenario file
}

// Resolve returns the platform and policy presets the scenario names.
func (sc *Scenario) Resolve() (cost.Platform, core.Policy, error) {
	platName := sc.Platform
	if platName == "" {
		platName = "stm32h743"
	}
	plat, err := cost.PlatformByName(platName)
	if err != nil {
		return cost.Platform{}, core.Policy{}, err
	}
	polName := sc.Policy
	if polName == "" {
		polName = "rt-mdm"
	}
	pol, err := core.PolicyByName(polName)
	if err != nil {
		return cost.Platform{}, core.Policy{}, err
	}
	if sc.Faults != nil {
		op, err := core.ParseOverrunPolicy(sc.Faults.Overrun)
		if err != nil {
			return cost.Platform{}, core.Policy{}, fmt.Errorf("scenario: %w", err)
		}
		pol.Overrun = op
	}
	return plat, pol, nil
}

// FaultPlan compiles the scenario's faults stanza into an injection plan
// spanning the scenario horizon. It returns (nil, nil) when the stanza is
// absent or describes no faults.
func (sc *Scenario) FaultPlan() (*fault.Plan, error) {
	if sc.Faults == nil {
		return nil, nil
	}
	plan, err := fault.New(sc.Faults.Config, sc.Horizon())
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	return plan, nil
}

// Build instantiates the scenario: models are built and segmented under
// the policy's limits, priorities are pinned or assigned rate-monotonic,
// and SRAM provisioning is verified.
func (sc *Scenario) Build() (*task.Set, cost.Platform, core.Policy, error) {
	if err := sc.ValidateNumbers(); err != nil {
		return nil, cost.Platform{}, core.Policy{}, err
	}
	plat, pol, err := sc.Resolve()
	if err != nil {
		return nil, cost.Platform{}, core.Policy{}, err
	}
	lim := pol.Limits(plat, len(sc.Tasks))
	pinned := 0
	var ts []*task.Task
	for _, tsp := range sc.Tasks {
		tk, err := BuildTask(tsp, plat, lim)
		if err != nil {
			return nil, plat, pol, err
		}
		if tsp.Priority != nil {
			pinned++
		}
		ts = append(ts, tk)
	}
	if pinned != 0 && pinned != len(ts) {
		return nil, plat, pol, fmt.Errorf("scenario: %d of %d tasks pin priorities; pin all or none", pinned, len(ts))
	}
	set := task.NewSet(ts...)
	if pinned == 0 {
		set.AssignRM()
	}
	if err := set.Validate(); err != nil {
		return nil, plat, pol, err
	}
	if err := core.Provision(set, plat, pol); err != nil {
		return nil, plat, pol, err
	}
	return set, plat, pol, nil
}

// BuildTask instantiates one task spec under a platform and segmentation
// limits: the model is built (zoo name + seed) or loaded (model_file),
// segmented greedily under lim, and wrapped in a task with converted
// timing. A pinned Priority is applied; rate-monotonic assignment over a
// whole set remains the caller's job. This is Build's per-task body,
// extracted so the admission hot path (internal/analysis) can build and
// cache tasks one at a time with error behavior identical to Build's.
// Note lim normally comes from pol.Limits(plat, n): segment budgets
// depend on the task COUNT of the surrounding set, so a cached build is
// only reusable at the same n.
func BuildTask(tsp TaskSpec, plat cost.Platform, lim segment.Limits) (*task.Task, error) {
	if tsp.PeriodMs <= 0 {
		return nil, fmt.Errorf("scenario: task %s: period %v ms", tsp.Name, tsp.PeriodMs)
	}
	var m *nn.Model
	switch {
	case tsp.Model != "" && tsp.ModelFile != "":
		return nil, fmt.Errorf("scenario: task %s: set model or model_file, not both", tsp.Name)
	case tsp.ModelFile != "":
		f, err := os.Open(tsp.ModelFile)
		if err != nil {
			return nil, fmt.Errorf("scenario: task %s: %w", tsp.Name, err)
		}
		m, err = nn.Load(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("scenario: task %s: %w", tsp.Name, err)
		}
	case tsp.Model != "":
		seed := tsp.Seed
		if seed == 0 {
			seed = 1
		}
		var err error
		m, err = models.Build(tsp.Model, seed)
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("scenario: task %s: no model", tsp.Name)
	}
	pl, err := segment.BuildLimits(m, plat, lim, segment.Greedy)
	if err != nil {
		return nil, err
	}
	deadlineMs := tsp.DeadlineMs
	if deadlineMs == 0 {
		deadlineMs = tsp.PeriodMs
	}
	tk := &task.Task{
		Name:     tsp.Name,
		Plan:     pl,
		Period:   sim.Duration(tsp.PeriodMs * float64(sim.Millisecond)), //lint:allow millitime -- config-parse boundary: validated float ms from the scenario file
		Deadline: sim.Duration(deadlineMs * float64(sim.Millisecond)),   //lint:allow millitime -- config-parse boundary: validated float ms from the scenario file
		Offset:   sim.Duration(tsp.OffsetMs * float64(sim.Millisecond)), //lint:allow millitime -- config-parse boundary: validated float ms from the scenario file
	}
	if tsp.Priority != nil {
		tk.Priority = *tsp.Priority
	}
	return tk, nil
}

// ParseTaskList parses the compact CLI syntax
// "model:period_ms[:deadline_ms]( , ...)" into task specs.
func ParseTaskList(spec string, seed int64) ([]TaskSpec, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("scenario: empty task list")
	}
	var out []TaskSpec
	for i, item := range strings.Split(spec, ",") {
		parts := strings.Split(strings.TrimSpace(item), ":")
		if len(parts) < 2 || len(parts) > 3 {
			return nil, fmt.Errorf("scenario: bad task spec %q (want model:period_ms[:deadline_ms])", item)
		}
		period, err := strconv.ParseFloat(parts[1], 64)
		if err != nil || period <= 0 {
			return nil, fmt.Errorf("scenario: bad period in %q", item)
		}
		deadline := period
		if len(parts) == 3 {
			if deadline, err = strconv.ParseFloat(parts[2], 64); err != nil || deadline <= 0 {
				return nil, fmt.Errorf("scenario: bad deadline in %q", item)
			}
		}
		out = append(out, TaskSpec{
			Name:       fmt.Sprintf("t%d-%s", i, parts[0]),
			Model:      parts[0],
			Seed:       seed,
			PeriodMs:   period,
			DeadlineMs: deadline,
		})
	}
	return out, nil
}
