package scenario

import "testing"

// FuzzParse asserts the JSON scenario parser never panics and that any
// accepted scenario resolves or fails cleanly at Build.
func FuzzParse(f *testing.F) {
	f.Add([]byte(good))
	f.Add([]byte(`{"tasks":[]}`))
	f.Add([]byte(`{"tasks":[{"name":"a","model":"lenet5","period_ms":-1}]}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`[]`))
	f.Fuzz(func(t *testing.T, data []byte) {
		sc, err := Parse(data)
		if err != nil {
			return
		}
		// Build must not panic either; errors are fine.
		_, _, _, _ = sc.Build()
	})
}

// FuzzParseTaskList asserts the compact CLI syntax parser is total.
func FuzzParseTaskList(f *testing.F) {
	f.Add("ds-cnn:50,lenet5:100:80")
	f.Add(":::")
	f.Add(",")
	f.Add("m:1e309")
	f.Fuzz(func(t *testing.T, s string) {
		specs, err := ParseTaskList(s, 1)
		if err == nil && len(specs) == 0 {
			t.Fatal("accepted empty task list")
		}
	})
}
