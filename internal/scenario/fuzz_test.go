package scenario

import "testing"

// FuzzParse asserts the JSON scenario parser never panics and that any
// accepted scenario resolves or fails cleanly at Build.
func FuzzParse(f *testing.F) {
	f.Add([]byte(good))
	f.Add([]byte(`{"tasks":[]}`))
	f.Add([]byte(`{"tasks":[{"name":"a","model":"lenet5","period_ms":-1}]}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`[]`))
	f.Add([]byte(withFaults))
	f.Add([]byte(`{"tasks":[{"name":"a","model":"lenet5","period_ms":10}],"faults":{"overrun":"bogus"}}`))
	f.Add([]byte(`{"tasks":[{"name":"a","model":"lenet5","period_ms":10}],"faults":{"overrun_rate":-3}}`))
	f.Add([]byte(`{"tasks":[{"name":"a","model":"lenet5","period_ms":10}],"faults":{"overrun_factor":1e300,"max_retries":-1}}`))
	f.Add([]byte(`{"horizon_ms":1e308,"tasks":[{"name":"a","model":"lenet5","period_ms":1e-300}],"faults":{"dma_slowdown_rate_per_sec":1e6,"dma_slowdown_ms":1}}`))
	// Corpus-promoted edge cases (rtmdm-corpus smoke spec, seed 1):
	// generated instances combining fractional ms periods, constrained
	// deadlines, release offsets, and fault stanzas in shapes the
	// hand-authored seeds above never reach.
	// Smoke index 7: EDF + mixed fault profile + offsets + skip-next.
	f.Add([]byte(`{"platform":"stm32f746","policy":"rt-mdm-edf","horizon_ms":200,"tasks":[{"name":"t00","model":"ds-cnn","seed":18418,"period_ms":141.022477,"deadline_ms":119.869105,"offset_ms":59.31},{"name":"t01","model":"lenet5","seed":43909,"period_ms":19.472646,"deadline_ms":16.551749,"offset_ms":8.73},{"name":"t02","model":"ds-cnn","seed":44269,"period_ms":85.799129,"deadline_ms":72.929259,"offset_ms":1.79}],"faults":{"seed":6646498528271145315,"overrun_rate":0.05,"overrun_factor":1.3,"release_jitter_rate":0.1,"release_jitter_max_ms":1,"dma_slowdown_rate_per_sec":10,"dma_slowdown_ms":0.5,"dma_slowdown_factor":2,"transfer_fault_rate":0.01,"overrun":"skip-next"}}`))
	// Smoke index 33: depth-4 prefetch budget (maximum SRAM pressure)
	// at util 0.9 with constrained deadlines.
	f.Add([]byte(`{"platform":"stm32f746","policy":"rt-mdm-d4","horizon_ms":200,"tasks":[{"name":"t00","model":"resnet8","seed":11734,"period_ms":241.40695,"deadline_ms":205.195907,"offset_ms":64.62},{"name":"t01","model":"lenet5","seed":19304,"period_ms":37.236242,"deadline_ms":31.650805,"offset_ms":18.21},{"name":"t02","model":"mobilenetv1-0.25","seed":9361,"period_ms":290.596316,"deadline_ms":247.006868,"offset_ms":102.5},{"name":"t03","model":"resnet8","seed":49161,"period_ms":500,"deadline_ms":425,"offset_ms":186.51}]}`))
	// Smoke index 62: overloaded EDF set under DMA-slowdown windows.
	f.Add([]byte(`{"platform":"stm32h743","policy":"rt-mdm-edf","horizon_ms":200,"tasks":[{"name":"t00","model":"tinymlp","seed":43842,"period_ms":21.14754,"deadline_ms":17.975409,"offset_ms":8.59},{"name":"t01","model":"squeezenet-micro","seed":5987,"period_ms":9.770755,"deadline_ms":8.305141,"offset_ms":2.5},{"name":"t02","model":"tinymlp","seed":17932,"period_ms":6.489368,"deadline_ms":5.515962,"offset_ms":1.21},{"name":"t03","model":"autoencoder","seed":13313,"period_ms":500,"deadline_ms":425,"offset_ms":226.16}],"faults":{"seed":4466546882246487355,"dma_slowdown_rate_per_sec":40,"dma_slowdown_ms":1,"dma_slowdown_factor":2.5,"overrun":"continue"}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		sc, err := Parse(data)
		if err != nil {
			return
		}
		// Build and FaultPlan must not panic either; errors are fine.
		_, _, _, _ = sc.Build()
		_, _ = sc.FaultPlan()
	})
}

// FuzzParseTaskList asserts the compact CLI syntax parser is total.
func FuzzParseTaskList(f *testing.F) {
	f.Add("ds-cnn:50,lenet5:100:80")
	f.Add(":::")
	f.Add(",")
	f.Add("m:1e309")
	f.Fuzz(func(t *testing.T, s string) {
		specs, err := ParseTaskList(s, 1)
		if err == nil && len(specs) == 0 {
			t.Fatal("accepted empty task list")
		}
	})
}
