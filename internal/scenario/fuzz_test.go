package scenario

import "testing"

// FuzzParse asserts the JSON scenario parser never panics and that any
// accepted scenario resolves or fails cleanly at Build.
func FuzzParse(f *testing.F) {
	f.Add([]byte(good))
	f.Add([]byte(`{"tasks":[]}`))
	f.Add([]byte(`{"tasks":[{"name":"a","model":"lenet5","period_ms":-1}]}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`[]`))
	f.Add([]byte(withFaults))
	f.Add([]byte(`{"tasks":[{"name":"a","model":"lenet5","period_ms":10}],"faults":{"overrun":"bogus"}}`))
	f.Add([]byte(`{"tasks":[{"name":"a","model":"lenet5","period_ms":10}],"faults":{"overrun_rate":-3}}`))
	f.Add([]byte(`{"tasks":[{"name":"a","model":"lenet5","period_ms":10}],"faults":{"overrun_factor":1e300,"max_retries":-1}}`))
	f.Add([]byte(`{"horizon_ms":1e308,"tasks":[{"name":"a","model":"lenet5","period_ms":1e-300}],"faults":{"dma_slowdown_rate_per_sec":1e6,"dma_slowdown_ms":1}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		sc, err := Parse(data)
		if err != nil {
			return
		}
		// Build and FaultPlan must not panic either; errors are fine.
		_, _, _, _ = sc.Build()
		_, _ = sc.FaultPlan()
	})
}

// FuzzParseTaskList asserts the compact CLI syntax parser is total.
func FuzzParseTaskList(f *testing.F) {
	f.Add("ds-cnn:50,lenet5:100:80")
	f.Add(":::")
	f.Add(",")
	f.Add("m:1e309")
	f.Fuzz(func(t *testing.T, s string) {
		specs, err := ParseTaskList(s, 1)
		if err == nil && len(specs) == 0 {
			t.Fatal("accepted empty task list")
		}
	})
}
