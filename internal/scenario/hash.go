package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
)

// hashDomain versions the canonical encoding: bump it whenever the
// Scenario schema or the canonicalization rules change, so digests from
// different schema generations can never collide silently.
const hashDomain = "rtmdm-scenario-v1\n"

// Canonicalize returns a semantically equivalent copy of the scenario
// with every default made explicit and the task list sorted by name:
//
//   - Platform, Policy and HorizonMs take their documented defaults
//     ("stm32h743", "rt-mdm", 1000 ms);
//   - each task's DeadlineMs defaults to its period and Seed to 1 (zoo
//     models only — file-backed models carry no synthetic seed);
//   - a faults stanza normalizes Seed 0 → 1 and Overrun "" → "continue",
//     mirroring fault.New and core.ParseOverrunPolicy.
//
// Task order is not semantic: priorities are either pinned per task or
// assigned rate-monotonic with name tie-breaking, and the executor
// dispatches by urgency, never by set order — so sorting by name maps
// every spelling of the same deployment onto one representative. The
// receiver is not modified.
func (sc *Scenario) Canonicalize() *Scenario {
	out := &Scenario{
		Platform:  sc.Platform,
		Policy:    sc.Policy,
		HorizonMs: sc.HorizonMs,
		Tasks:     append([]TaskSpec(nil), sc.Tasks...),
	}
	if out.Platform == "" {
		out.Platform = "stm32h743"
	}
	if out.Policy == "" {
		out.Policy = "rt-mdm"
	}
	if out.HorizonMs <= 0 {
		out.HorizonMs = 1000
	}
	for i := range out.Tasks {
		t := &out.Tasks[i]
		if t.DeadlineMs == 0 {
			t.DeadlineMs = t.PeriodMs
		}
		if t.Model != "" && t.Seed == 0 {
			t.Seed = 1
		}
	}
	sort.SliceStable(out.Tasks, func(i, j int) bool { return out.Tasks[i].Name < out.Tasks[j].Name })
	if sc.Faults != nil {
		f := *sc.Faults
		if f.Seed == 0 {
			f.Seed = 1
		}
		if f.Overrun == "" {
			f.Overrun = "continue"
		}
		out.Faults = &f
	}
	return out
}

// CanonicalHash returns a stable hex digest of the scenario: the SHA-256
// of its canonicalized form under a deterministic JSON encoding (struct
// fields in declaration order, map keys sorted by encoding/json). Two
// scenarios hash equal iff they describe the same deployment — omitted
// defaults, task order and faults-stanza default spellings do not matter;
// any change to a platform, policy, horizon, task parameter or fault rate
// does. It is the cache and dedup key for the admission server, and
// equally usable to fold duplicate points in bench/DSE sweeps.
//
// Non-finite timing fields cannot be encoded; they return an error (the
// same inputs Parse and Build already reject).
func CanonicalHash(sc *Scenario) (string, error) {
	enc, err := json.Marshal(sc.Canonicalize())
	if err != nil {
		return "", fmt.Errorf("scenario: canonical hash: %w", err)
	}
	h := sha256.New()
	h.Write([]byte(hashDomain))
	h.Write(enc)
	return hex.EncodeToString(h.Sum(nil)), nil
}
