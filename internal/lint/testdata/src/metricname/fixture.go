// Package metricname is the golden fixture for the metricname analyzer.
// Its test installs a catalogue containing only "exec.runs" and
// "exec.job_response_ns", so every other registration is off-catalogue.
package metricname

import "rtmdm/internal/metrics"

func register(r *metrics.Registry, dynamic string) {
	r.Counter("exec.runs", "runs", "completed executor simulations") // in catalogue: fine
	r.Counter("exec.bogus_metric", "x", "not documented")            // want "not in the docs/OBSERVABILITY.md catalogue"
	r.Gauge(dynamic, "x", "computed name")                           // want "string literal"
	r.Histogram("exec.job_response_ns", "ns", "documented", []int64{1, 2})
	//lint:allow metricname -- experimental metric, catalogue entry lands with the dashboard PR
	r.Histogram("exec.experimental", "ns", "prototype", []int64{1, 2})
}

// otherCounter is not a Registry method, so its string argument is not a
// metric registration.
type otherCounter struct{}

func (otherCounter) Counter(name, unit, help string) {}

func notARegistry(o otherCounter) {
	o.Counter("whatever.name", "x", "different type entirely")
}
