// Package millitime is the golden fixture for the millitime analyzer:
// float conversions of sim.Time and unchecked multiplies are flagged;
// constant expressions, non-sim types and suppressed lines are not.
package millitime

import "rtmdm/internal/sim"

// Constant arithmetic is compiler-checked and stays unflagged.
const tick = 250 * sim.Microsecond

func toFloat(t sim.Time) float64 {
	return float64(t) // want "float conversion of sim.Time"
}

func fromFloat(ms float64) sim.Duration {
	return sim.Duration(ms * 1e6) // want "float to sim.Time"
}

func scale(t sim.Time, k int64) sim.Time {
	return t * sim.Time(k) // want "unchecked multiply on sim.Time"
}

func grid(period sim.Duration, k int) sim.Time {
	return sim.Duration(k) * period // want "unchecked multiply on sim.Time"
}

func msHeuristic(computeNs int64, factor int64) int64 {
	return computeNs * factor // want "milli/nano-scaled quantity"
}

func allowedPresentation(t sim.Time) float64 {
	//lint:allow millitime -- plot-axis scaling; precision loss is acceptable at render time
	return float64(t)
}

func secondsIsBlessed(t sim.Time) float64 {
	return t.Seconds() // the Time API is the conversion boundary
}

// localNs is scaled-looking but not sim.Time; only the name heuristic
// applies to values of it, keyed on the value's name, not the type's.
type localNs int64

func localType(a, b localNs) localNs {
	return a * b // non-sim named type, idents without Ns suffix: fine
}

func divisionFine(t sim.Time, n int64) sim.Time {
	return t / sim.Time(n) // division cannot overflow the ns scale
}

func additionFine(t sim.Time, d sim.Duration) sim.Time {
	return t + d // addition is guarded by the kernel's causality panics
}
