// Package goroleak is the golden fixture for the goroleak analyzer.
// The positive cases are seeded from the pre-fix lane-pump shape: a
// goroutine spawned per shard that loops forever with no ctx/done exit,
// no WaitGroup, and no ownership annotation.
package goroleak

import (
	"context"
	"sync"

	"rtmdm-lint-fixture/goroleak/gorodep"
)

// leakyPump spawns an anonymous forever-loop with no way out.
func leakyPump(ch chan int) {
	go func() {
		for { // want "unbounded loop with no termination path"
			ch <- 1
		}
	}()
}

// leakyNamed spawns the dependency's worker; the NonTerminatingFact
// crosses the package boundary to flag the spawn site.
func leakyNamed(ch chan int) {
	go gorodep.PumpForever(ch) // want "go gorodep.PumpForever: it loops forever"
}

// ctxAware exits through ctx.Done — clean.
func ctxAware(ctx context.Context, ch chan int) {
	go func() {
		for {
			select {
			case ch <- 1:
			case <-ctx.Done():
				return
			}
		}
	}()
}

// reaped is owned by a WaitGroup — clean.
func reaped(wg *sync.WaitGroup, ch chan int) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		for v := range ch {
			_ = v
		}
	}()
}

// owned carries an audited ownership annotation — clean.
func owned(ch chan int) {
	go gorodep.PumpForever(ch) //rtmdm:owned-by fixture.Shutdown
}

// suppressed exercises the //lint:allow path.
func suppressed(ch chan int) {
	go gorodep.PumpForever(ch) //lint:allow goroleak -- fixture exercises the suppression path
}

// badDirective claims ownership without naming an owner.
func badDirective(ch chan int) {
	//rtmdm:owned-by // want "malformed //rtmdm:owned-by directive"
	go func() {
		for v := range ch {
			_ = v
		}
	}()
}

var _ = []any{leakyPump, leakyNamed, ctxAware, reaped, owned, suppressed, badDirective}
