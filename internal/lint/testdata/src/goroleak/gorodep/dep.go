// Package gorodep is the dependency half of the goroleak fixture: a
// worker that loops forever with no termination path, whose
// NonTerminatingFact must reach spawn sites in the fixture root.
package gorodep

// PumpForever loops with no exit — no return, no break, no
// cancellation receive. goroleak exports a NonTerminatingFact for it.
func PumpForever(ch chan int) {
	for {
		ch <- 1
	}
}
