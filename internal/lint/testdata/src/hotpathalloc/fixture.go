// Package hotpathalloc is the golden fixture for the hotpathalloc
// analyzer: allocating constructs inside //rtmdm:hotpath functions are
// flagged; the same constructs in unannotated functions, pre-capped
// appends, immediately-invoked literals and suppressed lines are not.
package hotpathalloc

import "fmt"

var sink func()

//rtmdm:hotpath
func hotFmt(x int) string {
	return fmt.Sprintf("%d", x) // want "fmt.Sprintf allocates"
}

//rtmdm:hotpath
func hotConcat(a, b string) string {
	return a + b // want "string concatenation"
}

//rtmdm:hotpath
func hotAppend(n int) []int {
	var out []int
	for i := 0; i < n; i++ {
		out = append(out, i) // want "un-capped slice"
	}
	return out
}

//rtmdm:hotpath
func hotAppendCapped(n int) []int {
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, i) // pre-sized: amortized, fine
	}
	return out
}

//rtmdm:hotpath
func hotAppendParam(out []int, v int) []int {
	return append(out, v) // caller-owned buffer: fine
}

//rtmdm:hotpath
func hotClosure(x int) {
	sink = func() { _ = x } // want "closure"
}

//rtmdm:hotpath
func hotInvokedLit(x int) int {
	return func() int { return x + 1 }() // immediately invoked: does not escape
}

//rtmdm:hotpath
func hotBox(v int64) any {
	return any(v) // want "boxes"
}

func sinkArgs(args ...any) {}

//rtmdm:hotpath
func hotVariadic(v int64) {
	sinkArgs(v) // want "boxes"
}

//rtmdm:hotpath
func hotPanic(x int) {
	if x < 0 {
		//lint:allow hotpathalloc -- cold panic path; allocation is irrelevant mid-crash
		panic(fmt.Sprintf("negative %d", x))
	}
}

// coldFmt is not annotated, so nothing in it is flagged.
func coldFmt(x int) string {
	return fmt.Sprintf("%d", x)
}
