// Package lockdep is the dependency half of the lockhold fixture:
// blocking helpers whose BlocksFact must reach callers in the fixture
// root across the package boundary — including through one extra hop of
// the call graph (Fanout -> Recv).
package lockdep

import "sync"

// WaitBatch blocks on a WaitGroup (a std-table blocker).
func WaitBatch(wg *sync.WaitGroup) {
	wg.Wait()
}

// Recv blocks on a bare channel receive.
func Recv(ch chan int) int {
	return <-ch
}

// Fanout blocks only transitively: the fact propagates from Recv.
func Fanout(ch chan int) int {
	return Recv(ch)
}
