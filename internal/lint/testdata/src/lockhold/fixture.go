// Package lockhold is the golden fixture for the lockhold analyzer.
// The positive cases are seeded from the pre-fix shard-forwarding
// shape: registry state locked while a peer HTTP call or a batch wait
// is in flight, and early returns that skip the Unlock.
package lockhold

import (
	"net/http"
	"sync"

	"rtmdm-lint-fixture/lockhold/lockdep"
)

type registry struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
}

// holdAcrossHTTP mirrors the pre-fix forward path: shard state locked
// while the peer call is in flight.
func (r *registry) holdAcrossHTTP(url string) error {
	r.mu.Lock()
	r.n++
	_, err := http.Get(url) // want "r.mu is held across http.Get"
	r.mu.Unlock()
	return err
}

// holdAcrossFact crosses the package boundary through the BlocksFact.
func (r *registry) holdAcrossFact(wg *sync.WaitGroup) {
	r.mu.Lock()
	defer r.mu.Unlock()
	lockdep.WaitBatch(wg) // want "r.mu is held across lockdep.WaitBatch"
}

// holdAcrossChain sees through one extra hop (Fanout calls Recv).
func (r *registry) holdAcrossChain(ch chan int) int {
	r.mu.Lock()
	v := lockdep.Fanout(ch) // want "r.mu is held across lockdep.Fanout"
	r.mu.Unlock()
	return v
}

// earlyReturn leaves the lock held on the ok path.
func (r *registry) earlyReturn(ok bool) int {
	r.mu.Lock()
	if ok {
		return r.n // want "return while r.mu is still Locked"
	}
	r.mu.Unlock()
	return 0
}

// missingUnlock never releases at all.
func (r *registry) missingUnlock() {
	r.mu.Lock() // want "no matching Unlock in this function"
	r.n++
}

// readSide pairs RLock with RUnlock independently of the write side.
func (r *registry) readSide(ch chan int) int {
	r.rw.RLock()
	v := <-ch // want "r.rw is held across a channel receive"
	r.rw.RUnlock()
	return v
}

// audited exercises the suppression path.
func (r *registry) audited(url string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, err := http.Get(url) //lint:allow lockhold -- fixture exercises the suppression path
	return err
}

// lockUnlockRelock is clean: the blocking call sits between two
// distinct lock regions, and the nearest-Unlock pairing must not let
// the trailing deferred Unlock swallow the first region.
func (r *registry) lockUnlockRelock(url string) error {
	r.mu.Lock()
	r.n++
	r.mu.Unlock()
	_, err := http.Get(url)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.n--
	return err
}

// drainer mirrors the gateway's cond-over-count drain: sync.Cond.Wait
// with the lock held is the protocol, not a finding.
type drainer struct {
	mu   sync.Mutex
	cond *sync.Cond
	n    int
}

func (d *drainer) drain() {
	d.mu.Lock()
	for d.n > 0 {
		d.cond.Wait()
	}
	d.mu.Unlock()
}

var _ = []any{
	(*registry).holdAcrossHTTP, (*registry).holdAcrossFact,
	(*registry).holdAcrossChain, (*registry).earlyReturn,
	(*registry).missingUnlock, (*registry).readSide,
	(*registry).audited, (*registry).lockUnlockRelock,
	(*drainer).drain,
}
