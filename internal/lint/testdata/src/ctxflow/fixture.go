// Package ctxflow is the golden fixture for the ctxflow analyzer. The
// positive cases are seeded from the pre-fix shapes this repo actually
// had: fresh context.Background roots in constructors (server.New,
// cluster.NewGateway) and helpers that sleep or build requests without
// threading the caller's ctx.
package ctxflow

import (
	"context"
	"net/http"
	"time"

	"rtmdm-lint-fixture/ctxflow/ctxdep"
)

// handleAdmit mirrors a request-path handler: it receives a ctx and
// must keep threading it.
func handleAdmit(ctx context.Context, url string) error {
	bg := context.Background() // want "context.Background discards the caller's ctx"
	_ = bg
	req, err := http.NewRequest(http.MethodGet, url, nil) // want "use http.NewRequestWithContext"
	if err != nil {
		return err
	}
	_ = req
	time.Sleep(5 * time.Millisecond) // want "time.Sleep cannot be cancelled"
	_ = ctx
	return ctxdep.FetchState() // want "call to ctxdep.FetchState, which re-roots onto context.Background"
}

// pollLoop has no ctx to discard; a fresh root is still a finding off
// the request path unless audited.
func pollLoop() {
	ctx := context.TODO() // want "context.TODO creates a fresh root"
	_ = ctx
}

// localHop proves the fact works within a package too: pollLoop
// re-roots, and a ctx-carrying caller is told at the call site.
func localHop(ctx context.Context) {
	_ = ctx
	pollLoop() // want "call to ctxflow.pollLoop, which re-roots onto context.TODO"
}

// newLifecycleRoot mirrors the audited roots in server.New and
// cluster.NewGateway: a process-lifetime context with a written reason.
func newLifecycleRoot() (context.Context, context.CancelFunc) {
	return context.WithCancel(context.Background()) //lint:allow ctxflow -- fixture lifecycle root, mirrors server.New
}

// forward threads the ctx all the way through — the clean shape.
func forward(ctx context.Context, url string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	return http.DefaultClient.Do(req)
}

var _ = []any{handleAdmit, localHop, newLifecycleRoot, forward}
