// Package ctxdep is the dependency half of the ctxflow fixture: a
// helper that buries an ambient context one package below the caller,
// so the finding must travel through an exported AmbientCtxFact.
package ctxdep

import "context"

// FetchState re-roots onto context.Background instead of accepting the
// caller's ctx; ctxflow exports an AmbientCtxFact for it, and the
// fixture root asserts the call site is flagged across the boundary.
func FetchState() error {
	ctx := context.Background() // want "context.Background creates a fresh root"
	return ctx.Err()
}
