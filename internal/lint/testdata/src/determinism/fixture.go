// Package determinism is the golden fixture for the determinism
// analyzer: wall-clock reads, global rand, env reads and unsorted
// order-sensitive map iteration are flagged; seeded *rand.Rand use,
// sorted iteration and //lint:allow-suppressed lines are not.
package determinism

import (
	"fmt"
	"math/rand"
	"os"
	"sort"
	"time"
)

func wallClock() time.Time {
	return time.Now() // want "wall clock"
}

func sleeps() {
	time.Sleep(time.Millisecond) // want "wall clock"
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want "wall clock"
}

func allowedWallClock() time.Time {
	//lint:allow determinism -- harness-side timing, never feeds simulation state
	return time.Now()
}

func globalRand() int {
	return rand.Intn(6) // want "global source"
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "global source"
}

func seededRand(seed int64) int {
	rng := rand.New(rand.NewSource(seed)) // constructors of seeded generators are fine
	return rng.Intn(6)
}

func env() string {
	return os.Getenv("HOME") // want "environment"
}

func mapRangeAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "without a later sort"
	}
	return keys
}

func mapRangeSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k) // sorted below: deterministic
	}
	sort.Strings(keys)
	return keys
}

func mapRangePrint(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want "nondeterministic order"
	}
}

func mapRangeAllowed(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) //lint:allow determinism -- consumed as a set; order never observed
	}
	return keys
}

func sliceRangeFine(xs []string, out []string) []string {
	for _, x := range xs {
		out = append(out, x) // ranging a slice is ordered
	}
	return out
}
