package lint

import (
	"go/ast"
	"go/types"
	"strconv"
)

// MetricName enforces the docs/OBSERVABILITY.md metric catalogue at the
// registration call site: every metrics.Registry.Counter/Gauge/Histogram
// call must pass a string literal (so the docsync contract can be
// checked statically at all), and the literal must appear in the
// catalogue. This is the same contract docsync_test.go checks at
// runtime, moved to where the name is written.
var MetricName = &Analyzer{
	Name: "metricname",
	Doc: "metric registrations must use string literals from the " +
		"docs/OBSERVABILITY.md catalogue",
	Run: runMetricName,
}

// MetricCatalog is the set of documented metric names, loaded by the
// driver from docs/OBSERVABILITY.md (and set directly by tests). When
// nil, only literal-ness is enforced — membership cannot be checked
// without a catalogue.
var MetricCatalog map[string]bool

var registryMethods = map[string]bool{"Counter": true, "Gauge": true, "Histogram": true}

func runMetricName(pass *Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !registryMethods[sel.Sel.Name] {
				return true
			}
			if !isRegistryMethod(pass, sel) || len(call.Args) == 0 {
				return true
			}
			lit, ok := call.Args[0].(*ast.BasicLit)
			if !ok {
				pass.Reportf(call.Args[0].Pos(),
					"metric name must be a string literal so the catalogue check can see it; got a computed expression")
				return true
			}
			name, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			if MetricCatalog != nil && !MetricCatalog[name] {
				pass.Reportf(lit.Pos(),
					"metric %q is not in the docs/OBSERVABILITY.md catalogue; document it (or fix the name) before registering it", name)
			}
			return true
		})
	}
	return nil, nil
}

// isRegistryMethod reports whether sel resolves to a method of
// *metrics.Registry.
func isRegistryMethod(pass *Pass, sel *ast.SelectorExpr) bool {
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Registry" && obj.Pkg() != nil && pkgPathIs(obj.Pkg().Path(), "internal/metrics")
}
