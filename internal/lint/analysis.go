// Package lint implements rtmdm's custom static analyzers: mechanized
// enforcement of the invariants the simulator's bit-reproducibility
// claims rest on (no wall-clock or ambient randomness in sim paths,
// checked arithmetic on milli-scaled sim.Time values, zero allocation in
// //rtmdm:hotpath functions, metric names pinned to the documented
// catalogue). See docs/STATIC_ANALYSIS.md for the analyzer catalogue and
// the suppression directive.
//
// # Framework
//
// The types in this file mirror the shape of
// golang.org/x/tools/go/analysis (Analyzer, Pass, Diagnostic) so each
// analyzer's Run function would port to the upstream framework
// mechanically. The build environment vendors no third-party modules, so
// a minimal stand-in is implemented here on the standard library alone;
// if x/tools is ever vendored, only this file and the loader need to
// change, not the analyzers.
//
// Analyzers are pure functions of a type-checked package: they receive a
// Pass holding the syntax trees and types.Info and report findings
// through Pass.Reportf. Suppression (//lint:allow) is applied by the
// caller after the analyzer runs, so analyzers stay oblivious to it.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one static check. It is the unit the driver,
// the tests, and docs/STATIC_ANALYSIS.md all enumerate.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:allow directives. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description; the first line is the summary
	// printed by rtmdm-lint -list.
	Doc string
	// Run performs the check on one package, reporting findings via
	// pass.Reportf. The returned value is unused by this suite (the
	// upstream framework threads it to dependent analyzers).
	Run func(pass *Pass) (any, error)
	// FactTypes lists the fact types this analyzer exports (pointers to
	// JSON-serializable structs). Registration makes the fact decodable
	// from its persisted form; an analyzer with no FactTypes neither
	// exports nor imports facts.
	FactTypes []Fact
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	facts *FactStore
	diags []Diagnostic
}

// Diagnostic is one finding, positioned at Pos.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run executes one analyzer over a loaded package and returns its
// findings with //lint:allow suppressions already applied: suppressed
// diagnostics are dropped, and malformed directives (a missing
// "-- reason") surface as diagnostics themselves so a suppression can
// never be silent. Findings are sorted by position. The analyzer runs
// against a fresh fact store; use RunAllWith to thread facts across
// packages.
func Run(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	return run(a, pkg, NewFactStore([]*Analyzer{a}), true)
}

func run(a *Analyzer, pkg *Package, store *FactStore, reportBad bool) ([]Diagnostic, error) {
	pass := &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		facts:     store,
	}
	if _, err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %w", a.Name, err)
	}
	diags := filterSuppressed(pkg, a.Name, pass.diags, reportBad)
	sort.SliceStable(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, nil
}

// RunAll executes every analyzer in as over the package, concatenating
// sorted per-analyzer findings in analyzer order. Malformed //lint:allow
// directives are reported once, not once per analyzer. Facts live in a
// store private to this call; use RunAllWith to share one across
// packages.
func RunAll(as []*Analyzer, pkg *Package) ([]Diagnostic, error) {
	return RunAllWith(as, pkg, NewFactStore(as), nil)
}

// RunAllWith executes every analyzer in as over the package, reading
// and exporting cross-package facts through store. Every analyzer runs
// (so its facts are computed for downstream packages), but diagnostics
// are kept only for analyzers where keep returns true; a nil keep keeps
// everything. This is how the driver scopes reporting (determinism to
// sim paths, ctxflow/goroleak to the service tier) without starving
// downstream packages of upstream facts.
func RunAllWith(as []*Analyzer, pkg *Package, store *FactStore, keep func(*Analyzer) bool) ([]Diagnostic, error) {
	var out []Diagnostic
	reportedBad := false
	for _, a := range as {
		kept := keep == nil || keep(a)
		d, err := run(a, pkg, store, kept && !reportedBad)
		if err != nil {
			return nil, err
		}
		if !kept {
			continue
		}
		reportedBad = true
		out = append(out, d...)
	}
	return out, nil
}

// All is the suite in catalogue order. docsync pins this list against
// docs/STATIC_ANALYSIS.md.
func All() []*Analyzer {
	return []*Analyzer{Determinism, MilliTime, HotPathAlloc, MetricName, CtxFlow, LockHold, GoroLeak}
}

// Names returns the analyzer names in catalogue order.
func Names() []string {
	var names []string
	for _, a := range All() {
		names = append(names, a.Name)
	}
	return names
}
