package lint

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

// fakeObj builds a minimal types.Object-shaped fixture via the real
// type-checker is overkill here; the store is exercised through its
// encode/decode wire layer instead, which is what the vet driver and
// the standalone driver actually persist.

func TestFactStoreEncodeDecodeRoundTrip(t *testing.T) {
	store := NewFactStore(All())
	// Inject facts at the wire layer for two packages.
	in := []encodedFact{
		{Analyzer: "lockhold", Object: "Forward", Type: "BlocksFact", Data: json.RawMessage(`{"Why":"a channel receive"}`)},
		{Analyzer: "ctxflow", Object: "FetchState", Type: "AmbientCtxFact", Data: json.RawMessage(`{"Call":"context.Background"}`)},
		{Analyzer: "goroleak", Object: "Pump", Type: "NonTerminatingFact", Data: json.RawMessage(`{}`)},
	}
	raw, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.DecodePackage("example.com/dep", raw); err != nil {
		t.Fatal(err)
	}
	if store.Len() != 3 {
		t.Fatalf("Len() = %d, want 3", store.Len())
	}

	out, err := store.EncodePackage("example.com/dep")
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic order: sorted by analyzer, then object, then type.
	var got []encodedFact
	if err := json.Unmarshal(out, &got); err != nil {
		t.Fatal(err)
	}
	wantOrder := []string{"ctxflow/FetchState", "goroleak/Pump", "lockhold/Forward"}
	if len(got) != len(wantOrder) {
		t.Fatalf("encoded %d facts, want %d", len(got), len(wantOrder))
	}
	for i, w := range wantOrder {
		if k := got[i].Analyzer + "/" + got[i].Object; k != w {
			t.Errorf("encoded[%d] = %s, want %s", i, k, w)
		}
	}

	// Round trip into a second store preserves the bytes.
	store2 := NewFactStore(All())
	if err := store2.DecodePackage("example.com/dep", out); err != nil {
		t.Fatal(err)
	}
	out2, err := store2.EncodePackage("example.com/dep")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, out2) {
		t.Fatalf("round trip changed encoding:\n%s\n%s", out, out2)
	}

	// A different package path encodes to no facts.
	empty, err := store.EncodePackage("example.com/other")
	if err != nil {
		t.Fatal(err)
	}
	if string(empty) != "null" {
		t.Fatalf("EncodePackage(other) = %s, want null", empty)
	}
}

func TestFactStoreSkipsUnregisteredTypes(t *testing.T) {
	// A store built for one analyzer tolerates (and drops) facts from
	// others — the upstream framework's stale-vetx tolerance.
	store := NewFactStore([]*Analyzer{CtxFlow})
	raw, _ := json.Marshal([]encodedFact{
		{Analyzer: "lockhold", Object: "F", Type: "BlocksFact", Data: json.RawMessage(`{"Why":"x"}`)},
		{Analyzer: "ctxflow", Object: "G", Type: "AmbientCtxFact", Data: json.RawMessage(`{"Call":"context.TODO"}`)},
	})
	if err := store.DecodePackage("example.com/dep", raw); err != nil {
		t.Fatal(err)
	}
	if store.Len() != 1 {
		t.Fatalf("Len() = %d, want 1 (unregistered fact dropped)", store.Len())
	}
}

func TestFactStoreRejectsMalformedPayload(t *testing.T) {
	store := NewFactStore(All())
	raw, _ := json.Marshal([]encodedFact{
		{Analyzer: "ctxflow", Object: "G", Type: "AmbientCtxFact", Data: json.RawMessage(`{"Call":7}`)},
	})
	if err := store.DecodePackage("example.com/dep", raw); err == nil {
		t.Fatal("DecodePackage accepted a payload that does not match the registered type")
	}
}

// TestFactStoreConcurrentAccess drives the store from many goroutines;
// the race tier (make race includes internal/lint) turns any unguarded
// access into a failure.
func TestFactStoreConcurrentAccess(t *testing.T) {
	store := NewFactStore(All())
	raw, _ := json.Marshal([]encodedFact{
		{Analyzer: "goroleak", Object: "Pump", Type: "NonTerminatingFact", Data: json.RawMessage(`{}`)},
	})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				if err := store.DecodePackage("example.com/dep", raw); err != nil {
					t.Error(err)
					return
				}
				if _, err := store.EncodePackage("example.com/dep"); err != nil {
					t.Error(err)
					return
				}
				store.Len()
			}
		}()
	}
	wg.Wait()
	if store.Len() != 1 {
		t.Fatalf("Len() = %d, want 1", store.Len())
	}
}
