package lint

import (
	"os"
	"path/filepath"
	"testing"
)

// TestSuppressionsAudit checks the audit API the driver's -suppressions
// mode is built on: well-formed directives list with their analyzer and
// reason, and a directive without the mandatory "-- reason" comes back
// as malformed so the audit can fail on silent suppressions.
func TestSuppressionsAudit(t *testing.T) {
	dir := t.TempDir()
	src := `package supp

import "time"

func a() { _ = time.Now() } //lint:allow determinism -- fixture: audited wall-clock read

//lint:allow millitime
func b() int64 { return 0 }
`
	if err := os.WriteFile(filepath.Join(dir, "supp.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(testModuleRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.LoadDir("rtmdm-lint-fixture/supp", dir)
	if err != nil {
		t.Fatal(err)
	}
	ok, malformed := Suppressions(pkg)
	if len(ok) != 1 {
		t.Fatalf("got %d well-formed suppressions, want 1: %+v", len(ok), ok)
	}
	s := ok[0]
	if s.Analyzer != "determinism" || s.Reason != "fixture: audited wall-clock read" || s.Line != 5 {
		t.Errorf("unexpected suppression record: %+v", s)
	}
	if len(malformed) != 1 {
		t.Fatalf("got %d malformed directives, want 1 (reason is mandatory): %+v", len(malformed), malformed)
	}
}
