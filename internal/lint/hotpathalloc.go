package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotPathAlloc pins the zero-allocation property of functions annotated
// with a //rtmdm:hotpath doc-comment directive (the event-slab kernel,
// the executor's dispatch predicates, the metrics mutators). Inside an
// annotated function it flags the constructs that heap-allocate per
// call:
//
//   - any fmt.* call (formatting allocates),
//   - string concatenation with +,
//   - append to a slice declared in the function without capacity
//     (fresh, un-capped backing array growth),
//   - boxing a concrete value into an interface (explicit conversions
//     and non-constant arguments to ...any variadics), and
//   - function literals that are not immediately invoked (escaping
//     closures).
//
// Cold paths inside hot functions (panic formatting, error exits) are
// suppressed case-by-case with //lint:allow hotpathalloc -- <reason>.
var HotPathAlloc = &Analyzer{
	Name: "hotpathalloc",
	Doc:  "flag allocating constructs inside //rtmdm:hotpath functions",
	Run:  runHotPathAlloc,
}

// hotPathDirective marks a function as allocation-free by contract.
const hotPathDirective = "//rtmdm:hotpath"

// isHotPath reports whether the function's doc comment carries the
// directive.
func isHotPath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == hotPathDirective || strings.HasPrefix(c.Text, hotPathDirective+" ") {
			return true
		}
	}
	return false
}

func runHotPathAlloc(pass *Pass) (any, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotPath(fd) {
				continue
			}
			checkHotFunc(pass, fd)
		}
	}
	return nil, nil
}

func checkHotFunc(pass *Pass, fd *ast.FuncDecl) {
	freshSlices := collectFreshSlices(pass, fd)
	invoked := immediatelyInvokedLits(fd.Body)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkHotCall(pass, fd, n, freshSlices)
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if tv, ok := pass.TypesInfo.Types[n]; ok && tv.Value == nil {
					if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						pass.Reportf(n.Pos(), "string concatenation allocates on the hot path; precompute or use a reused buffer")
					}
				}
			}
		case *ast.FuncLit:
			if !invoked[n] {
				pass.Reportf(n.Pos(), "closure allocates when it escapes; hoist it to a method or pre-bind it outside the hot path")
			}
		}
		return true
	})
}

// checkHotCall flags fmt calls, un-capped appends and interface boxing
// at one call site.
func checkHotCall(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr, fresh map[types.Object]bool) {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if pkg, name := pkgFunc(pass, sel); pkg == "fmt" {
			pass.Reportf(call.Pos(), "fmt.%s allocates on the hot path", name)
			return // don't double-report its variadic boxing
		}
	}
	if isBuiltinAppend(pass, call) && len(call.Args) > 0 {
		if id, ok := call.Args[0].(*ast.Ident); ok {
			if obj := pass.TypesInfo.Uses[id]; obj != nil && fresh[obj] {
				pass.Reportf(call.Pos(), "append to %q grows a fresh un-capped slice; pre-size it with make(..., 0, n) or reuse a buffer", id.Name)
			}
		}
		return
	}
	checkBoxing(pass, call)
	checkInterfaceConversion(pass, call)
}

// checkBoxing flags non-constant concrete arguments passed to a ...any
// variadic (each one boxes).
func checkBoxing(pass *Pass, call *ast.CallExpr) {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || tv.IsType() {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok || !sig.Variadic() || call.Ellipsis != token.NoPos {
		return
	}
	last := sig.Params().At(sig.Params().Len() - 1)
	slice, ok := last.Type().(*types.Slice)
	if !ok {
		return
	}
	iface, ok := slice.Elem().Underlying().(*types.Interface)
	if !ok || !iface.Empty() {
		return
	}
	for _, arg := range call.Args[sig.Params().Len()-1:] {
		at, ok := pass.TypesInfo.Types[arg]
		if !ok || at.Value != nil {
			continue
		}
		if _, isIface := at.Type.Underlying().(*types.Interface); isIface {
			continue
		}
		pass.Reportf(arg.Pos(), "passing %s to a ...any parameter boxes it on the hot path", at.Type)
	}
}

// checkInterfaceConversion flags explicit conversions of non-constant
// concrete values to interface types.
func checkInterfaceConversion(pass *Pass, call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || !tv.IsType() {
		return
	}
	if _, isIface := tv.Type.Underlying().(*types.Interface); !isIface {
		return
	}
	at, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || at.Value != nil {
		return
	}
	if _, isIface := at.Type.Underlying().(*types.Interface); isIface {
		return
	}
	pass.Reportf(call.Pos(), "converting %s to an interface boxes it on the hot path", at.Type)
}

// collectFreshSlices finds slice variables declared inside fd with no
// capacity: `var s []T`, `s := []T{}`, `s := make([]T, 0)`. Appending to
// these grows a new backing array; appending to parameters, fields or
// pre-capped slices is amortized reuse and stays unflagged.
func collectFreshSlices(pass *Pass, fd *ast.FuncDecl) map[types.Object]bool {
	fresh := map[types.Object]bool{}
	note := func(id *ast.Ident, rhs ast.Expr) {
		obj := pass.TypesInfo.Defs[id]
		if obj == nil {
			return
		}
		if _, ok := obj.Type().Underlying().(*types.Slice); !ok {
			return
		}
		if rhs == nil { // var s []T
			fresh[obj] = true
			return
		}
		switch rhs := rhs.(type) {
		case *ast.CompositeLit:
			if len(rhs.Elts) == 0 {
				fresh[obj] = true
			}
		case *ast.CallExpr:
			if id, ok := rhs.Fun.(*ast.Ident); ok {
				if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "make" {
					if len(rhs.Args) < 3 && lenIsZero(pass, rhs) {
						fresh[obj] = true
					}
				}
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE {
				return true
			}
			for i, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && i < len(n.Rhs) {
					note(id, n.Rhs[i])
				}
			}
		case *ast.DeclStmt:
			gd, ok := n.Decl.(*ast.GenDecl)
			if !ok {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, id := range vs.Names {
					var rhs ast.Expr
					if i < len(vs.Values) {
						rhs = vs.Values[i]
					}
					note(id, rhs)
				}
			}
		}
		return true
	})
	return fresh
}

// lenIsZero reports whether make's length argument is the literal 0 (or
// absent, which cannot happen for slices).
func lenIsZero(pass *Pass, call *ast.CallExpr) bool {
	if len(call.Args) < 2 {
		return true
	}
	tv, ok := pass.TypesInfo.Types[call.Args[1]]
	if !ok || tv.Value == nil {
		return false
	}
	return tv.Value.String() == "0"
}

// immediatelyInvokedLits returns the function literals that appear as
// the callee of a call expression (`func(){...}()`, including deferred
// ones) — these do not escape.
func immediatelyInvokedLits(body *ast.BlockStmt) map[*ast.FuncLit]bool {
	out := map[*ast.FuncLit]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if lit, ok := call.Fun.(*ast.FuncLit); ok {
				out[lit] = true
			}
		}
		return true
	})
	return out
}
