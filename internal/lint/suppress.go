package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// The suppression directive:
//
//	//lint:allow <analyzer> -- <reason>
//
// silences one analyzer's findings on the directive's own line, or — when
// the directive stands alone on a line — on the line immediately below it.
// The reason is mandatory: a directive without "-- <reason>" is itself
// reported, so every suppression in the tree carries a written
// justification a reviewer can audit.

const allowPrefix = "//lint:allow "

// allowDirective is one parsed //lint:allow comment.
type allowDirective struct {
	analyzer string
	reason   string
	pos      token.Pos
	// line is the source line the directive suppresses (its own line for
	// trailing comments, the following line for standalone ones).
	line int
}

// parseAllows extracts the directives of one file. Malformed directives
// (no "-- reason") are reported into bad.
func parseAllows(pkg *Package, file *ast.File, bad *[]Diagnostic) []allowDirective {
	var out []allowDirective
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, allowPrefix) {
				continue
			}
			rest := strings.TrimSpace(strings.TrimPrefix(c.Text, allowPrefix))
			name, reason, ok := strings.Cut(rest, "--")
			name = strings.TrimSpace(name)
			reason = strings.TrimSpace(reason)
			if !ok || name == "" || reason == "" {
				*bad = append(*bad, Diagnostic{
					Pos:      c.Pos(),
					Analyzer: "lint",
					Message:  "malformed //lint:allow directive: want \"//lint:allow <analyzer> -- <reason>\"",
				})
				continue
			}
			line := pkg.Fset.Position(c.Pos()).Line
			if startsLine(pkg, c) {
				line++ // standalone directive covers the next line
			}
			out = append(out, allowDirective{analyzer: name, reason: reason, pos: c.Pos(), line: line})
		}
	}
	return out
}

// Suppression is one audited //lint:allow directive: where it is, which
// analyzer it silences, and the written justification. The driver's
// -suppressions mode lists these so the repo's boundary crossings stay
// reviewable as a set.
type Suppression struct {
	File     string
	Line     int
	Analyzer string
	Reason   string
}

// Suppressions returns every well-formed //lint:allow directive in the
// package (positioned at the directive, not the line it covers) plus
// the malformed ones — directives missing the mandatory "-- reason" —
// as diagnostics, so an audit can fail on silent suppressions.
func Suppressions(pkg *Package) (ok []Suppression, malformed []Diagnostic) {
	for _, f := range pkg.Files {
		for _, d := range parseAllows(pkg, f, &malformed) {
			pos := pkg.Fset.Position(d.pos)
			ok = append(ok, Suppression{
				File:     pos.Filename,
				Line:     pos.Line,
				Analyzer: d.analyzer,
				Reason:   d.reason,
			})
		}
	}
	return ok, malformed
}

// startsLine reports whether only whitespace precedes comment c on its
// source line (a standalone directive rather than a trailing one).
func startsLine(pkg *Package, c *ast.Comment) bool {
	pos := pkg.Fset.Position(c.Pos())
	src := pkg.Src[pos.Filename]
	if src == nil {
		return false
	}
	start := pos.Offset - (pos.Column - 1)
	if start < 0 || pos.Offset > len(src) {
		return false
	}
	return strings.TrimSpace(string(src[start:pos.Offset])) == ""
}

// filterSuppressed drops diagnostics covered by a matching //lint:allow
// directive. Only directives naming this analyzer (or "all") match.
// Malformed directives are appended as findings exactly once per package
// run (reportBad), so the suite never stacks four copies.
func filterSuppressed(pkg *Package, analyzer string, diags []Diagnostic, reportBad bool) []Diagnostic {
	var bad []Diagnostic
	allowed := map[string]map[int]bool{} // filename -> suppressed lines
	for _, f := range pkg.Files {
		fname := pkg.Fset.Position(f.Pos()).Filename
		for _, d := range parseAllows(pkg, f, &bad) {
			if d.analyzer != analyzer && d.analyzer != "all" {
				continue
			}
			if allowed[fname] == nil {
				allowed[fname] = map[int]bool{}
			}
			allowed[fname][d.line] = true
		}
	}
	out := diags[:0]
	for _, d := range diags {
		p := pkg.Fset.Position(d.Pos)
		if allowed[p.Filename][p.Line] {
			continue
		}
		out = append(out, d)
	}
	if reportBad {
		out = append(out, bad...)
	}
	return out
}
