package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	// Src holds each file's raw bytes (keyed by filename) for the
	// suppression scanner's line-shape checks.
	Src   map[string][]byte
	Types *types.Package
	Info  *types.Info
}

// listedPkg is the subset of `go list -json` output the loader consumes.
type listedPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Imports    []string
	Standard   bool
}

// Loader type-checks repository packages using only the standard
// library: package metadata and compiled export data come from
// `go list -export -json`, and imports resolve through the stdlib gc
// importer reading those export files. This is the dependency-gated
// stand-in for golang.org/x/tools/go/packages, which the build
// environment does not vendor.
type Loader struct {
	// ModuleDir is the module root every `go list` invocation runs in.
	ModuleDir string

	fset *token.FileSet
	pkgs map[string]*listedPkg
	gc   types.ImporterFrom
	// dirLoaded caches packages loaded via LoadDir so fixture packages
	// can import each other (`go list` cannot enumerate testdata trees,
	// and no export data exists for them). Real module packages never
	// land here, keeping the module's import graph export-data-based.
	dirLoaded map[string]*types.Package
}

// NewLoader lists the module's full non-test dependency closure
// (compiling export data as a side effect) rooted at moduleDir.
func NewLoader(moduleDir string) (*Loader, error) {
	l := &Loader{
		ModuleDir: moduleDir,
		fset:      token.NewFileSet(),
		pkgs:      map[string]*listedPkg{},
		dirLoaded: map[string]*types.Package{},
	}
	gc, ok := importer.ForCompiler(l.fset, "gc", l.lookupExport).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("lint: gc importer does not implement ImporterFrom")
	}
	l.gc = gc
	if err := l.list("./..."); err != nil {
		return nil, err
	}
	return l, nil
}

// list merges `go list -export -deps -json` output for the patterns into
// the loader's package table.
func (l *Loader) list(patterns ...string) error {
	args := append([]string{"list", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,Imports,Standard"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.ModuleDir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return fmt.Errorf("lint: go %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return fmt.Errorf("lint: decoding go list output: %v", err)
		}
		l.pkgs[p.ImportPath] = &p
	}
	return nil
}

// lookupExport opens the export data file for an import path, listing it
// on demand when outside the already-known closure.
func (l *Loader) lookupExport(path string) (io.ReadCloser, error) {
	p, ok := l.pkgs[path]
	if !ok || p.Export == "" {
		if err := l.list(path); err != nil {
			return nil, err
		}
		p, ok = l.pkgs[path]
		if !ok || p.Export == "" {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
	}
	return os.Open(p.Export)
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.ModuleDir, 0)
}

// ImportFrom implements types.ImporterFrom by delegating to the gc
// export-data importer, falling back to the dir-loaded cache for
// fixture packages the go tool knows nothing about.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if _, listed := l.pkgs[path]; !listed {
		if tp, ok := l.dirLoaded[path]; ok {
			return tp, nil
		}
	}
	return l.gc.ImportFrom(path, dir, mode)
}

// Roots returns the import paths of the module's own packages: the
// non-standard members of the listed closure whose source lives under
// ModuleDir, sorted for deterministic iteration.
func (l *Loader) Roots() []string {
	prefix := l.ModuleDir + string(filepath.Separator)
	var out []string
	for p, lp := range l.pkgs {
		if lp.Standard || len(lp.GoFiles) == 0 {
			continue
		}
		if lp.Dir == l.ModuleDir || strings.HasPrefix(lp.Dir, prefix) {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// RootsTopo returns the module's own packages in dependency order —
// every package after all the module packages it imports — so a fact
// store threaded through the list in order always sees upstream facts
// before they are needed. Ties break lexically, keeping the order
// deterministic.
func (l *Loader) RootsTopo() []string {
	roots := l.Roots()
	inModule := map[string]bool{}
	for _, p := range roots {
		inModule[p] = true
	}
	out := make([]string, 0, len(roots))
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(p string)
	visit = func(p string) {
		if state[p] != 0 {
			return // done, or a cycle (go list would have rejected it)
		}
		state[p] = 1
		lp := l.pkgs[p]
		if lp != nil {
			deps := append([]string(nil), lp.Imports...)
			sort.Strings(deps)
			for _, d := range deps {
				if inModule[d] {
					visit(d)
				}
			}
		}
		state[p] = 2
		out = append(out, p)
	}
	for _, p := range roots {
		visit(p)
	}
	return out
}

// LoadImportPath loads and type-checks one already-listed package.
func (l *Loader) LoadImportPath(path string) (*Package, error) {
	p, ok := l.pkgs[path]
	if !ok {
		if err := l.list(path); err != nil {
			return nil, err
		}
		if p, ok = l.pkgs[path]; !ok {
			return nil, fmt.Errorf("lint: unknown package %q", path)
		}
	}
	var files []string
	for _, f := range p.GoFiles {
		files = append(files, filepath.Join(p.Dir, f))
	}
	return l.load(path, p.Dir, files)
}

// LoadDir loads a directory of Go files directly (no `go list`), used
// for testdata fixture packages the go tool refuses to enumerate. Test
// files are skipped; importPath is the identity the type-checker records.
func (l *Loader) LoadDir(importPath, dir string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, filepath.Join(dir, name))
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	pkg, err := l.load(importPath, dir, files)
	if err != nil {
		return nil, err
	}
	l.dirLoaded[importPath] = pkg.Types
	return pkg, nil
}

// load parses and type-checks one package from explicit file paths.
func (l *Loader) load(importPath, dir string, filenames []string) (*Package, error) {
	pkg := &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       l.fset,
		Src:        map[string][]byte{},
	}
	for _, fn := range filenames {
		src, err := os.ReadFile(fn)
		if err != nil {
			return nil, err
		}
		f, err := parser.ParseFile(l.fset, fn, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		pkg.Src[fn] = src
		pkg.Files = append(pkg.Files, f)
	}
	pkg.Info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{
		Importer:    l,
		FakeImportC: true,
		Sizes:       types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(importPath, l.fset, pkg.Files, pkg.Info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", importPath, err)
	}
	pkg.Types = tpkg
	return pkg, nil
}
