package lint

import (
	"os"
	"path/filepath"
	"testing"
)

func testModuleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above working directory")
		}
		dir = parent
	}
}

// TestRootsTopo checks the dependency-order walk the driver threads the
// fact store through: same package set as Roots, every package after
// all the module packages it imports, and a deterministic order.
func TestRootsTopo(t *testing.T) {
	l, err := NewLoader(testModuleRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	roots := l.Roots()
	topo := l.RootsTopo()
	if len(topo) != len(roots) {
		t.Fatalf("RootsTopo has %d packages, Roots has %d", len(topo), len(roots))
	}
	inModule := map[string]bool{}
	for _, p := range roots {
		inModule[p] = true
	}
	seen := map[string]bool{}
	for _, p := range topo {
		if !inModule[p] {
			t.Fatalf("RootsTopo includes %q, not a module package", p)
		}
		if seen[p] {
			t.Fatalf("RootsTopo lists %q twice", p)
		}
		for _, dep := range l.pkgs[p].Imports {
			if inModule[dep] && !seen[dep] {
				t.Errorf("package %s listed before its import %s", p, dep)
			}
		}
		seen[p] = true
	}
	// Determinism: a second walk yields the identical order.
	again := l.RootsTopo()
	for i := range topo {
		if topo[i] != again[i] {
			t.Fatalf("RootsTopo not deterministic at index %d: %s vs %s", i, topo[i], again[i])
		}
	}
	// Spot-check a known edge: the lint package itself imports nothing
	// in-module, and cmd/rtmdm-lint must come after it.
	pos := map[string]int{}
	for i, p := range topo {
		pos[p] = i
	}
	if pos["rtmdm/cmd/rtmdm-lint"] < pos["rtmdm/internal/lint"] {
		t.Errorf("cmd/rtmdm-lint ordered before internal/lint")
	}
}
