// Package linttest runs a lint.Analyzer over a golden fixture package
// and checks its findings against `// want "regex"` comments, mirroring
// golang.org/x/tools/go/analysis/analysistest on the repo's own
// dependency-free framework.
//
// Expectations are written on the line they apply to:
//
//	x := rand.Intn(5) // want "global source"
//
// Each quoted string is a regular expression that must match the message
// of one diagnostic reported on that line; conversely every diagnostic
// must be matched by an expectation, so fixtures fail loudly on both
// false positives and false negatives. Lines carrying a //lint:allow
// directive and no want comment double as suppression golden cases.
package linttest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"

	"rtmdm/internal/lint"
)

var (
	loaderOnce sync.Once
	loader     *lint.Loader
	loaderErr  error
)

// sharedLoader builds one Loader per test process: the initial
// `go list -export` of the module closure dominates load time, so every
// analyzer test reuses it.
func sharedLoader(t *testing.T) *lint.Loader {
	t.Helper()
	loaderOnce.Do(func() {
		root, err := moduleRoot()
		if err != nil {
			loaderErr = err
			return
		}
		loader, loaderErr = lint.NewLoader(root)
	})
	if loaderErr != nil {
		t.Fatalf("linttest: building loader: %v", loaderErr)
	}
	return loader
}

// moduleRoot walks up from the working directory to the enclosing go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("linttest: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// wantRe extracts the quoted regexes of a `// want` comment.
var wantRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// expectation is one unmatched want-regex.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
}

// Run loads testdata/src/<fixture> relative to the caller's package
// directory, runs the analyzer (with suppressions applied), and
// diffs findings against the fixture's want comments.
func Run(t *testing.T, a *lint.Analyzer, fixture string) {
	t.Helper()
	l := sharedLoader(t)
	dir, err := filepath.Abs(filepath.Join("testdata", "src", fixture))
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.LoadDir("rtmdm-lint-fixture/"+fixture, dir)
	if err != nil {
		t.Fatalf("linttest: loading %s: %v", dir, err)
	}
	diags, err := lint.Run(a, pkg)
	if err != nil {
		t.Fatal(err)
	}

	// Collect expectations from raw source lines.
	var wants []*expectation
	for fname, src := range pkg.Src {
		for i, line := range strings.Split(string(src), "\n") {
			_, comment, ok := strings.Cut(line, "// want ")
			if !ok {
				continue
			}
			ms := wantRe.FindAllStringSubmatch(comment, -1)
			if len(ms) == 0 {
				t.Errorf("%s:%d: malformed want comment (no quoted regex)", fname, i+1)
			}
			for _, m := range ms {
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want regex %q: %v", fname, i+1, m[1], err)
				}
				wants = append(wants, &expectation{file: fname, line: i + 1, re: re})
			}
		}
	}

	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if w.re == nil || w.file != pos.Filename || w.line != pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.re = nil // consumed
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected diagnostic: %s: %s", pos.Filename, pos.Line, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if w.re != nil {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}
