// Package linttest runs a lint.Analyzer over a golden fixture package
// and checks its findings against `// want "regex"` comments, mirroring
// golang.org/x/tools/go/analysis/analysistest on the repo's own
// dependency-free framework.
//
// Expectations are written on the line they apply to:
//
//	x := rand.Intn(5) // want "global source"
//
// Each quoted string is a regular expression that must match the message
// of one diagnostic reported on that line; conversely every diagnostic
// must be matched by an expectation, so fixtures fail loudly on both
// false positives and false negatives. Lines carrying a //lint:allow
// directive and no want comment double as suppression golden cases.
package linttest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"

	"rtmdm/internal/lint"
)

var (
	loaderOnce sync.Once
	loader     *lint.Loader
	loaderErr  error
)

// sharedLoader builds one Loader per test process: the initial
// `go list -export` of the module closure dominates load time, so every
// analyzer test reuses it.
func sharedLoader(t *testing.T) *lint.Loader {
	t.Helper()
	loaderOnce.Do(func() {
		root, err := moduleRoot()
		if err != nil {
			loaderErr = err
			return
		}
		loader, loaderErr = lint.NewLoader(root)
	})
	if loaderErr != nil {
		t.Fatalf("linttest: building loader: %v", loaderErr)
	}
	return loader
}

// moduleRoot walks up from the working directory to the enclosing go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("linttest: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// wantRe extracts the quoted regexes of a `// want` comment.
var wantRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// expectation is one unmatched want-regex.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
}

// Run loads testdata/src/<fixture> relative to the caller's package
// directory, runs the analyzer (with suppressions applied), and diffs
// findings against the fixture's want comments.
//
// A fixture's immediate subdirectories are dependency packages: they
// load (sorted) and are analyzed before the root package, all sharing
// one fact store, so cross-package fact cases — a dep exporting a
// blocking or ambient-context function, the root calling it — run
// exactly like the driver's dependency-ordered module walk. Want
// comments in dependency files are checked too.
func Run(t *testing.T, a *lint.Analyzer, fixture string) {
	t.Helper()
	l := sharedLoader(t)
	dir, err := filepath.Abs(filepath.Join("testdata", "src", fixture))
	if err != nil {
		t.Fatal(err)
	}
	base := "rtmdm-lint-fixture/" + fixture

	// Dependency subpackages first, then the fixture root.
	type loadUnit struct {
		importPath string
		dir        string
	}
	units := []loadUnit{}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("linttest: reading %s: %v", dir, err)
	}
	for _, e := range ents {
		if e.IsDir() {
			units = append(units, loadUnit{base + "/" + e.Name(), filepath.Join(dir, e.Name())})
		}
	}
	units = append(units, loadUnit{base, dir})

	store := lint.NewFactStore([]*lint.Analyzer{a})
	var wants []*expectation
	type located struct {
		pos  string // "file:line"
		diag lint.Diagnostic
		file string
		line int
	}
	var diags []located
	for _, u := range units {
		pkg, err := l.LoadDir(u.importPath, u.dir)
		if err != nil {
			t.Fatalf("linttest: loading %s: %v", u.dir, err)
		}
		ds, err := lint.RunAllWith([]*lint.Analyzer{a}, pkg, store, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range ds {
			pos := pkg.Fset.Position(d.Pos)
			diags = append(diags, located{diag: d, file: pos.Filename, line: pos.Line})
		}
		// Collect expectations from raw source lines.
		for fname, src := range pkg.Src {
			for i, line := range strings.Split(string(src), "\n") {
				_, comment, ok := strings.Cut(line, "// want ")
				if !ok {
					continue
				}
				ms := wantRe.FindAllStringSubmatch(comment, -1)
				if len(ms) == 0 {
					t.Errorf("%s:%d: malformed want comment (no quoted regex)", fname, i+1)
				}
				for _, m := range ms {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want regex %q: %v", fname, i+1, m[1], err)
					}
					wants = append(wants, &expectation{file: fname, line: i + 1, re: re})
				}
			}
		}
	}

	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.re == nil || w.file != d.file || w.line != d.line {
				continue
			}
			if w.re.MatchString(d.diag.Message) {
				w.re = nil // consumed
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected diagnostic: %s: %s", d.file, d.line, d.diag.Analyzer, d.diag.Message)
		}
	}
	for _, w := range wants {
		if w.re != nil {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}
