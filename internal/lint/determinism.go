package lint

import (
	"go/ast"
	"go/types"
)

// Determinism enforces the simulator's bit-reproducibility contract in
// the sim-path packages: no ambient wall-clock reads, no global
// (unseeded) math/rand, no environment reads, and no map iteration that
// feeds an order-sensitive sink without an intervening sort. The driver
// scopes this analyzer to internal/{sim,exec,core,trace,expr,workload,
// fault,scenario,dse}; seeded *rand.Rand values are explicitly fine.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "forbid wall-clock, global rand, env reads, and unsorted " +
		"order-sensitive map iteration in sim-path packages",
	Run: runDeterminism,
}

// rand top-level functions that do NOT touch the global source: they
// construct or wrap explicitly seeded generators.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
}

// fmtOutputFuncs are the fmt functions whose output ordering is
// observable (all of them — Sprint* and Errorf feed errors and strings
// whose content then depends on iteration order).
var fmtOutputFuncs = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Sprint": true, "Sprintf": true, "Sprintln": true,
	"Errorf": true, "Appendf": true, "Append": true, "Appendln": true,
}

func runDeterminism(pass *Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				checkForbiddenRef(pass, n)
			case *ast.RangeStmt:
				checkMapRange(pass, f, n)
			}
			return true
		})
	}
	return nil, nil
}

// pkgFunc resolves a selector to a package-level function, returning its
// package path and name ("" when it is something else: a method, a
// variable, a field).
func pkgFunc(pass *Pass, sel *ast.SelectorExpr) (pkgPath, name string) {
	obj := pass.TypesInfo.Uses[sel.Sel]
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", ""
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return "", "" // methods (e.g. (*rand.Rand).Intn) are fine
	}
	return fn.Pkg().Path(), fn.Name()
}

func checkForbiddenRef(pass *Pass, sel *ast.SelectorExpr) {
	pkg, name := pkgFunc(pass, sel)
	switch pkg {
	case "time":
		switch name {
		case "Now", "Since", "Sleep", "Until":
			pass.Reportf(sel.Pos(), "time.%s reads the wall clock; sim paths must use virtual sim.Time only", name)
		}
	case "math/rand", "math/rand/v2":
		if name != "" && !randConstructors[name] {
			pass.Reportf(sel.Pos(), "rand.%s draws from the global source; use an explicitly seeded *rand.Rand", name)
		}
	case "os":
		switch name {
		case "Getenv", "LookupEnv", "Environ":
			pass.Reportf(sel.Pos(), "os.%s makes simulation behaviour depend on the environment; thread configuration explicitly", name)
		}
	}
}

// checkMapRange flags `range m` over a map whose body feeds an
// order-sensitive sink: fmt output or trace emission directly, or append
// into a variable declared outside the loop that is never subsequently
// sorted in the enclosing function.
func checkMapRange(pass *Pass, file *ast.File, rs *ast.RangeStmt) {
	tv, ok := pass.TypesInfo.Types[rs.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	// appendTargets: outer variables accumulated into from inside the loop.
	type target struct {
		obj types.Object
		pos ast.Node
	}
	var targets []target
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isBuiltinAppend(pass, call) || i >= len(n.Lhs) {
					continue
				}
				id, ok := n.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.TypesInfo.Uses[id]
				if obj == nil {
					obj = pass.TypesInfo.Defs[id]
				}
				// Only accumulation into variables that outlive the loop
				// is order-sensitive.
				if obj != nil && (obj.Pos() < rs.Pos() || obj.Pos() > rs.End()) {
					targets = append(targets, target{obj: obj, pos: n})
				}
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				pkg, name := pkgFunc(pass, sel)
				if pkg == "fmt" && fmtOutputFuncs[name] {
					pass.Reportf(n.Pos(), "fmt.%s inside map iteration emits in nondeterministic order; iterate sorted keys", name)
				}
				if isTraceEmission(pass, sel) {
					pass.Reportf(n.Pos(), "trace emission inside map iteration records events in nondeterministic order; iterate sorted keys")
				}
			}
		}
		return true
	})
	if len(targets) == 0 {
		return
	}
	fnBody := enclosingFuncBody(file, rs)
	for _, t := range targets {
		if !sortedAfter(pass, fnBody, rs, t.obj) {
			pass.Reportf(t.pos.Pos(),
				"append to %q inside map iteration without a later sort makes its order nondeterministic; sort it (or the keys) before use",
				t.obj.Name())
		}
	}
}

// isBuiltinAppend reports whether call invokes the append builtin.
func isBuiltinAppend(pass *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// isTraceEmission reports whether sel names a method or function of the
// repo's trace package (Trace.Add and friends), or any method literally
// named Emit/emit — the executor's conventional wrapper names.
func isTraceEmission(pass *Pass, sel *ast.SelectorExpr) bool {
	if sel.Sel.Name == "Emit" || sel.Sel.Name == "emit" {
		return true
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return pkgPathIs(fn.Pkg().Path(), "internal/trace")
}

// pkgPathIs reports whether path is exactly suffix or ends in "/"+suffix,
// so analyzers recognise repo packages regardless of the module name the
// fixture tree is loaded under.
func pkgPathIs(path, suffix string) bool {
	if path == suffix {
		return true
	}
	const sep = "/"
	return len(path) > len(suffix) && path[len(path)-len(suffix)-1:] == sep+suffix
}

// enclosingFuncBody returns the body of the innermost function literal
// or declaration containing n (or nil at package scope).
func enclosingFuncBody(file *ast.File, n ast.Node) *ast.BlockStmt {
	var body *ast.BlockStmt
	ast.Inspect(file, func(cand ast.Node) bool {
		if cand == nil {
			return false
		}
		if cand.Pos() > n.Pos() || cand.End() < n.End() {
			return false
		}
		switch cand := cand.(type) {
		case *ast.FuncDecl:
			if cand.Body != nil {
				body = cand.Body
			}
		case *ast.FuncLit:
			body = cand.Body
		}
		return true
	})
	return body
}

// sortedAfter reports whether, lexically after rs within body, obj is
// passed to a sort.* or slices.* call — the "intervening sort" that
// restores a deterministic order before the accumulated slice is used.
func sortedAfter(pass *Pass, body *ast.BlockStmt, rs *ast.RangeStmt, obj types.Object) bool {
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found || n == nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, _ := pkgFunc(pass, sel)
		if pkg != "sort" && pkg != "slices" {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(a ast.Node) bool {
				if id, ok := a.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}
