package lint

import (
	"go/ast"
	"go/types"
)

// CtxFlow enforces context propagation on the service tier's request
// paths (the driver scopes it to internal/server and internal/cluster;
// directory fixtures run it everywhere). A request that carries a
// context must keep carrying it: a handler that quietly re-roots onto
// context.Background() detaches its work from cancellation, deadlines,
// and the drain path — exactly how shutdown leaks start. Flagged:
//
//   - context.Background() / context.TODO() anywhere in a scoped
//     package. Genuine lifecycle roots (a server's base context) are
//     audited case-by-case with //lint:allow ctxflow -- <reason>.
//   - http.NewRequest, which builds a request without a context; use
//     http.NewRequestWithContext with the caller's ctx.
//   - time.Sleep inside a function that receives a ctx: a sleep cannot
//     be cancelled; use a timer select with ctx.Done().
//   - calling a function that carries an AmbientCtxFact — "this
//     function constructs its own ambient context" — from a function
//     that has a ctx to offer. The fact crosses package boundaries, so
//     a helper that buries context.Background() two packages down still
//     surfaces at the request-path call site.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc: "request-path functions must thread the incoming " +
		"context.Context, not re-root onto context.Background",
	Run:       runCtxFlow,
	FactTypes: []Fact{new(AmbientCtxFact)},
}

// AmbientCtxFact marks a function that constructs its own ambient
// context (context.Background or context.TODO) instead of accepting the
// caller's. Exported so downstream packages can flag calls into it from
// request paths.
type AmbientCtxFact struct {
	// Call names the ambient constructor used, e.g. "context.Background".
	Call string
}

// AFact marks AmbientCtxFact as a lint fact.
func (*AmbientCtxFact) AFact() {}

func runCtxFlow(pass *Pass) (any, error) {
	// Sweep 1: export facts, so same-package calls resolve no matter
	// the declaration order (cross-package facts are already in the
	// store from upstream packages).
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			call := ambientCtxCall(pass, fd.Body)
			if call == "" {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				pass.ExportObjectFact(fn, &AmbientCtxFact{Call: call})
			}
		}
	}
	// Sweep 2: report.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkCtxFlow(pass, fd)
		}
	}
	return nil, nil
}

// ambientCtxCall returns the first context.Background/TODO call in
// body ("" when none), for the fact sweep.
func ambientCtxCall(pass *Pass, body *ast.BlockStmt) string {
	found := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if pkg, name := pkgFunc(pass, sel); pkg == "context" && (name == "Background" || name == "TODO") {
			found = "context." + name
		}
		return true
	})
	return found
}

func checkCtxFlow(pass *Pass, fd *ast.FuncDecl) {
	hasCtx := funcHasCtxParam(pass, fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			switch pkg, name := pkgFunc(pass, sel); pkg {
			case "context":
				if name == "Background" || name == "TODO" {
					if hasCtx {
						pass.Reportf(call.Pos(), "context.%s discards the caller's ctx; thread the incoming context instead", name)
					} else {
						pass.Reportf(call.Pos(), "context.%s creates a fresh root off the request path; thread a caller ctx here (audited lifecycle roots use //lint:allow ctxflow)", name)
					}
					return true
				}
			case "net/http":
				if name == "NewRequest" {
					pass.Reportf(call.Pos(), "http.NewRequest builds a request without a context; use http.NewRequestWithContext with the caller's ctx")
					return true
				}
			case "time":
				if name == "Sleep" && hasCtx {
					pass.Reportf(call.Pos(), "time.Sleep cannot be cancelled; wait on a timer select with ctx.Done() instead")
					return true
				}
			}
		}
		if !hasCtx {
			return true
		}
		// Fact check: a call to a function (same package or imported)
		// that constructs its own ambient context.
		fn := calleeFunc(pass, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() == "context" {
			return true
		}
		var fact AmbientCtxFact
		if pass.ImportObjectFact(fn, &fact) {
			pass.Reportf(call.Pos(), "call to %s.%s, which re-roots onto %s instead of accepting a ctx; pass the caller's context through",
				fn.Pkg().Name(), objectKey(fn), fact.Call)
		}
		return true
	})
}

// funcHasCtxParam reports whether fd's signature carries a
// context.Context parameter.
func funcHasCtxParam(pass *Pass, fd *ast.FuncDecl) bool {
	fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// calleeFunc resolves a call expression to the function or method it
// invokes (nil for builtins, conversions, and dynamic calls).
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}
