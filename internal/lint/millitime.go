package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MilliTime guards the checked-arithmetic contract on virtual time
// (PR-3's overflow class: Time.String's MinInt64 recursion came from one
// unchecked ms conversion). It flags
//
//   - conversions between sim.Time and floating point in either
//     direction (precision loss / silent wrap on the way back), and
//   - non-constant multiplies involving a sim.Time operand, which must
//     route through the checked helpers in internal/core
//     (core.SatMulTime, core.ScaleTimeMilli), and
//   - non-constant multiplies on raw int64 identifiers spelled like
//     milli/nano-scaled quantities (…Ns, …Ms, …Us) — the naming
//     convention the codebase uses for ms-scaled scalars that have not
//     been lifted into sim.Time.
//
// Constant expressions are exempt (the compiler rejects overflowing
// constants), as are methods declared on sim.Time itself — the type's
// own accessors (String, Seconds) are the blessed conversion boundary.
var MilliTime = &Analyzer{
	Name: "millitime",
	Doc: "flag float arithmetic on sim.Time and unchecked multiplies " +
		"on milli-scaled quantities outside the checked helpers",
	Run: runMilliTime,
}

func runMilliTime(pass *Pass) (any, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if recvIsSimTime(pass, fd) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					checkTimeConversion(pass, n)
				case *ast.BinaryExpr:
					checkTimeArith(pass, n)
				}
				return true
			})
		}
	}
	return nil, nil
}

// isSimTime reports whether t is the simulator's Time type (Duration is
// an alias of it, so both spellings resolve here).
func isSimTime(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != "Time" || obj.Pkg() == nil {
		return false
	}
	return pkgPathIs(obj.Pkg().Path(), "internal/sim")
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func recvIsSimTime(pass *Pass, fd *ast.FuncDecl) bool {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return false
	}
	tv, ok := pass.TypesInfo.Types[fd.Recv.List[0].Type]
	if !ok {
		return false
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	return isSimTime(t)
}

// checkTimeConversion flags non-constant conversions between sim.Time
// and floating point, in either direction.
func checkTimeConversion(pass *Pass, call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || !tv.IsType() {
		return
	}
	if whole, ok := pass.TypesInfo.Types[call]; ok && whole.Value != nil {
		return // constant conversion, checked by the compiler
	}
	argT, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok {
		return
	}
	switch {
	case isFloat(tv.Type) && isSimTime(argT.Type):
		pass.Reportf(call.Pos(), "float conversion of sim.Time loses ns precision past 2^53; use Time.Seconds at the presentation boundary or keep integer math")
	case isSimTime(tv.Type) && isFloat(argT.Type):
		pass.Reportf(call.Pos(), "converting float to sim.Time can silently wrap; derive times with integer math or the checked helpers in internal/core")
	}
}

// checkTimeArith flags non-constant multiplies where either operand is
// sim.Time, and — as a naming heuristic — non-constant multiplies on
// integer identifiers suffixed Ns/Ms/Us.
func checkTimeArith(pass *Pass, be *ast.BinaryExpr) {
	if be.Op != token.MUL {
		return
	}
	if tv, ok := pass.TypesInfo.Types[be]; ok && tv.Value != nil {
		return // constant-folded: overflow is a compile error
	}
	xt, xok := pass.TypesInfo.Types[be.X]
	yt, yok := pass.TypesInfo.Types[be.Y]
	if !xok || !yok {
		return
	}
	if isSimTime(xt.Type) || isSimTime(yt.Type) {
		pass.Reportf(be.Pos(), "unchecked multiply on sim.Time can overflow int64 ns; use core.SatMulTime or core.ScaleTimeMilli")
		return
	}
	if scaledName(pass, be.X) || scaledName(pass, be.Y) {
		pass.Reportf(be.Pos(), "unchecked multiply on a milli/nano-scaled quantity; lift it into sim.Time and use the checked helpers in internal/core")
	}
}

// scaledName reports whether e is a non-constant integer identifier or
// field selector whose name follows the …Ns/…Ms/…Us convention.
func scaledName(pass *Pass, e ast.Expr) bool {
	var name string
	switch e := e.(type) {
	case *ast.Ident:
		name = e.Name
	case *ast.SelectorExpr:
		name = e.Sel.Name
	case *ast.CallExpr: // accessor methods like t.ComputeNs()
		if sel, ok := e.Fun.(*ast.SelectorExpr); ok {
			name = sel.Sel.Name
		}
	default:
		return false
	}
	if !strings.HasSuffix(name, "Ns") && !strings.HasSuffix(name, "Ms") && !strings.HasSuffix(name, "Us") {
		return false
	}
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value != nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}
