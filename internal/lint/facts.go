package lint

// Cross-package facts.
//
// An analyzer running on package P can attach serialized facts to P's
// functions; when a downstream package Q (which imports P) is analyzed
// later, the same analyzer reads those facts back and reasons about
// calls into P without re-analyzing it. This mirrors the Fact mechanism
// of golang.org/x/tools/go/analysis on the standard library alone:
// facts are JSON documents keyed by (analyzer, package path, object),
// so they persist alongside the `go list -export` data — the standalone
// driver threads one FactStore over the module in dependency order, and
// the vet-tool driver round-trips the store through the .vetx files the
// go command passes between packages.
//
// Facts are exported with Pass.ExportObjectFact and read back with
// Pass.ImportObjectFact. Every fact type an analyzer exports must be
// listed in its FactTypes so the decoder knows the concrete type; a
// fact is marshalled at export time, which both validates
// serializability at the source and makes every import an honest
// decode of the persisted form.

import (
	"encoding/json"
	"fmt"
	"go/types"
	"reflect"
	"sort"
	"sync"
)

// Fact is a datum attached to an object (a package-level function or a
// method) by one analyzer and visible to the same analyzer in
// downstream packages. Implementations must be pointers to
// JSON-serializable structs; AFact is a marker.
type Fact interface {
	AFact()
}

// factKey identifies one stored fact: which analyzer wrote it, which
// package owns the object, the object's stable key (see objectKey), and
// the fact's concrete type name.
type factKey struct {
	analyzer string
	pkg      string
	obj      string
	typ      string
}

// FactStore holds the facts of every package analyzed so far in one
// lint run. It is shared mutable state across packages (and, in tests,
// across goroutines), so all access is mutex-guarded.
type FactStore struct {
	mu    sync.RWMutex
	facts map[factKey]json.RawMessage
	// types maps "analyzer/TypeName" to the concrete fact type for
	// decoding persisted facts.
	types map[string]reflect.Type
}

// NewFactStore builds an empty store whose decoder knows the fact
// types of every analyzer in as.
func NewFactStore(as []*Analyzer) *FactStore {
	s := &FactStore{
		facts: map[factKey]json.RawMessage{},
		types: map[string]reflect.Type{},
	}
	for _, a := range as {
		for _, f := range a.FactTypes {
			s.types[a.Name+"/"+factTypeName(f)] = reflect.TypeOf(f)
		}
	}
	return s
}

// factTypeName is the unqualified concrete type name of a fact pointer,
// the stable identity used in the persisted form.
func factTypeName(f Fact) string {
	t := reflect.TypeOf(f)
	for t.Kind() == reflect.Pointer {
		t = t.Elem()
	}
	return t.Name()
}

// objectKey is the stable within-package identity facts are keyed by:
// the bare name for package-level objects, "Type.Method" for methods
// (pointer receivers and value receivers collapse to the same key).
func objectKey(obj types.Object) string {
	fn, ok := obj.(*types.Func)
	if !ok {
		return obj.Name()
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return fn.Name()
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// set validates and stores one fact. The error is reserved for
// non-serializable fact values — an analyzer bug, surfaced loudly.
func (s *FactStore) set(analyzer string, obj types.Object, f Fact) error {
	if obj == nil || obj.Pkg() == nil {
		return fmt.Errorf("lint: fact exported on object without a package")
	}
	data, err := json.Marshal(f)
	if err != nil {
		return fmt.Errorf("lint: fact %T is not JSON-serializable: %v", f, err)
	}
	k := factKey{analyzer: analyzer, pkg: obj.Pkg().Path(), obj: objectKey(obj), typ: factTypeName(f)}
	s.mu.Lock()
	s.facts[k] = data
	s.mu.Unlock()
	return nil
}

// get decodes the fact for (analyzer, obj, type-of-f) into f, reporting
// whether one was stored.
func (s *FactStore) get(analyzer string, obj types.Object, f Fact) bool {
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	k := factKey{analyzer: analyzer, pkg: obj.Pkg().Path(), obj: objectKey(obj), typ: factTypeName(f)}
	s.mu.RLock()
	data, ok := s.facts[k]
	s.mu.RUnlock()
	if !ok {
		return false
	}
	return json.Unmarshal(data, f) == nil
}

// encodedFact is the persisted wire form of one fact.
type encodedFact struct {
	Analyzer string          `json:"analyzer"`
	Object   string          `json:"object"`
	Type     string          `json:"type"`
	Data     json.RawMessage `json:"data"`
}

// EncodePackage serializes every fact attached to pkgPath's objects, in
// a deterministic order, for persistence alongside the package's export
// data (the vet-tool driver writes this to the .vetx file).
func (s *FactStore) EncodePackage(pkgPath string) ([]byte, error) {
	s.mu.RLock()
	var out []encodedFact
	for k, data := range s.facts {
		if k.pkg != pkgPath {
			continue
		}
		out = append(out, encodedFact{Analyzer: k.analyzer, Object: k.obj, Type: k.typ, Data: data})
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Analyzer != out[j].Analyzer {
			return out[i].Analyzer < out[j].Analyzer
		}
		if out[i].Object != out[j].Object {
			return out[i].Object < out[j].Object
		}
		return out[i].Type < out[j].Type
	})
	return json.Marshal(out)
}

// DecodePackage merges previously persisted facts for pkgPath into the
// store. Facts whose type is not registered (an analyzer this run does
// not know) are skipped, mirroring the upstream framework's tolerance
// of stale fact files.
func (s *FactStore) DecodePackage(pkgPath string, data []byte) error {
	var in []encodedFact
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("lint: decoding facts for %s: %v", pkgPath, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, ef := range in {
		rt, ok := s.types[ef.Analyzer+"/"+ef.Type]
		if !ok {
			continue
		}
		// Validate the payload against the registered type before storing.
		v := reflect.New(rt.Elem()).Interface()
		if err := json.Unmarshal(ef.Data, v); err != nil {
			return fmt.Errorf("lint: fact %s/%s on %s.%s: %v", ef.Analyzer, ef.Type, pkgPath, ef.Object, err)
		}
		k := factKey{analyzer: ef.Analyzer, pkg: pkgPath, obj: ef.Object, typ: ef.Type}
		s.facts[k] = ef.Data
	}
	return nil
}

// Len reports the number of stored facts (for tests and audits).
func (s *FactStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.facts)
}

// ExportObjectFact attaches fact to obj for this pass's analyzer. The
// fact becomes visible to the same analyzer in every package analyzed
// later in the run (and, through the store's encode/decode round trip,
// in later vet-tool invocations). A non-serializable fact panics: that
// is an analyzer bug, not a finding.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if p.facts == nil {
		return
	}
	if err := p.facts.set(p.Analyzer.Name, obj, fact); err != nil {
		panic(err)
	}
}

// ImportObjectFact decodes the fact of this pass's analyzer attached to
// obj (typically an object of an imported package) into fact, reporting
// whether one exists.
func (p *Pass) ImportObjectFact(obj types.Object, fact Fact) bool {
	if p.facts == nil {
		return false
	}
	return p.facts.get(p.Analyzer.Name, obj, fact)
}
