package lint_test

import (
	"testing"

	"rtmdm/internal/lint"
	"rtmdm/internal/lint/linttest"
)

func TestDeterminism(t *testing.T) {
	linttest.Run(t, lint.Determinism, "determinism")
}

func TestMilliTime(t *testing.T) {
	linttest.Run(t, lint.MilliTime, "millitime")
}

func TestHotPathAlloc(t *testing.T) {
	linttest.Run(t, lint.HotPathAlloc, "hotpathalloc")
}

func TestMetricName(t *testing.T) {
	old := lint.MetricCatalog
	lint.MetricCatalog = map[string]bool{
		"exec.runs":            true,
		"exec.job_response_ns": true,
	}
	defer func() { lint.MetricCatalog = old }()
	linttest.Run(t, lint.MetricName, "metricname")
}

func TestCtxFlow(t *testing.T) {
	linttest.Run(t, lint.CtxFlow, "ctxflow")
}

func TestLockHold(t *testing.T) {
	linttest.Run(t, lint.LockHold, "lockhold")
}

func TestGoroLeak(t *testing.T) {
	linttest.Run(t, lint.GoroLeak, "goroleak")
}

// TestNamesMatchesAll pins the catalogue-order name list the docs and
// driver both rely on.
func TestNamesMatchesAll(t *testing.T) {
	want := []string{"determinism", "millitime", "hotpathalloc", "metricname", "ctxflow", "lockhold", "goroleak"}
	got := lint.Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}
