package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockHold enforces mutex discipline everywhere in the module: a
// sync.Mutex/RWMutex acquired in a function must not be held across a
// blocking operation (a channel send or receive, a select with no
// default, a Wait, network I/O, a sleep — or a call to any function the
// BlocksFact marks as blocking, across package boundaries), and a Lock
// must be released on every path: a `return` between Lock and the
// matching Unlock, or a Lock with no Unlock at all, is reported.
//
// The region analysis is lexical, not a full CFG: a Lock is paired with
// the nearest following Unlock of the same lock expression (a deferred
// Unlock extends the region to the end of the function and satisfies
// every return path). Branchy early-unlock patterns are
// under-approximated rather than guessed at. sync.Cond.Wait is exempt —
// it must be called with the lock held; that is the cond-over-count
// drain pattern the gateway uses.
var LockHold = &Analyzer{
	Name: "lockhold",
	Doc: "a held sync.Mutex/RWMutex must not cross a blocking call, " +
		"and every Lock needs an Unlock on all return paths",
	Run:       runLockHold,
	FactTypes: []Fact{new(BlocksFact)},
}

// BlocksFact marks a function that can block the calling goroutine:
// channel operations, selects without default, Wait calls, network
// I/O, sleeps, or a call to another blocking function. lockhold uses
// it to see through call chains — including into other packages —
// from inside a lock region.
type BlocksFact struct {
	// Why is a one-phrase justification, e.g. "a channel receive"
	// or "calls cluster.forward, which blocks".
	Why string
}

// AFact marks BlocksFact as a lint fact.
func (*BlocksFact) AFact() {}

func runLockHold(pass *Pass) (any, error) {
	type decl struct {
		fd *ast.FuncDecl
		fn *types.Func
	}
	var decls []decl
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			decls = append(decls, decl{fd: fd, fn: fn})
		}
	}

	// Sweep 1a: direct blocking evidence, exported as facts.
	marked := map[*types.Func]bool{}
	for _, d := range decls {
		if why := directBlockWhy(pass, d.fd.Body); why != "" {
			marked[d.fn] = true
			pass.ExportObjectFact(d.fn, &BlocksFact{Why: why})
		}
	}
	// Sweep 1b: propagate through the call graph to a fixpoint. The
	// scan order is fixed (source order, repeated), so the chosen
	// evidence — the first blocking callee — is deterministic.
	for changed := true; changed; {
		changed = false
		for _, d := range decls {
			if marked[d.fn] {
				continue
			}
			callee := firstBlockingCallee(pass, d.fd.Body, d.fn)
			if callee == nil {
				continue
			}
			marked[d.fn] = true
			pass.ExportObjectFact(d.fn, &BlocksFact{
				Why: "calls " + qualifiedFuncName(callee) + ", which blocks",
			})
			changed = true
		}
	}

	// Sweep 2: lock regions, one scope per function declaration or
	// literal (a literal's locks are its own goroutine's business, so
	// each literal is analyzed as a scope of its own).
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkLockScope(pass, fd.Body)
			for _, lit := range nestedFuncLits(fd.Body) {
				checkLockScope(pass, lit.Body)
			}
		}
	}
	return nil, nil
}

// walkScope visits the nodes of body that execute on the enclosing
// goroutine: GoStmt subtrees are skipped (spawning never blocks the
// spawner). Function literals are skipped too, unless descendInvoked is
// set and the literal is immediately invoked. visit returning false
// prunes the subtree.
func walkScope(body *ast.BlockStmt, descendInvoked bool, visit func(n ast.Node) bool) {
	invoked := immediatelyInvokedLits(body)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			return false
		case *ast.FuncLit:
			if !descendInvoked || !invoked[n] {
				return false
			}
		case nil:
			return true
		}
		return visit(n)
	})
}

// selectCommNodes collects the communication operations that are select
// case guards (`case <-ch:`, `case ch <- v:`, `case v := <-ch:`). These
// never block on their own — the select arbitrates — so the blocking
// classification must skip them and judge the select as a whole.
func selectCommNodes(body *ast.BlockStmt) map[ast.Node]bool {
	comms := map[ast.Node]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, c := range sel.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok || cc.Comm == nil {
				continue
			}
			switch comm := cc.Comm.(type) {
			case *ast.SendStmt:
				comms[comm] = true
			case *ast.ExprStmt:
				comms[ast.Unparen(comm.X)] = true
			case *ast.AssignStmt:
				if len(comm.Rhs) == 1 {
					comms[ast.Unparen(comm.Rhs[0])] = true
				}
			}
		}
		return true
	})
	return comms
}

// directBlockWhy returns a one-phrase description of the first
// construct in body that blocks the calling goroutine ("" when none).
func directBlockWhy(pass *Pass, body *ast.BlockStmt) string {
	comms := selectCommNodes(body)
	why := ""
	walkScope(body, true, func(n ast.Node) bool {
		if why != "" {
			return false
		}
		if !comms[n] {
			why = blockingNodeWhy(pass, n)
		}
		return why == ""
	})
	return why
}

// blockingNodeWhy classifies one node as a blocking construct,
// returning "" for non-blocking nodes. Calls are classified against
// the std-library blocker table only — fact-carrying callees are the
// caller's concern (firstBlockingCallee / checkLockScope).
func blockingNodeWhy(pass *Pass, n ast.Node) string {
	switch n := n.(type) {
	case *ast.SendStmt:
		return "a channel send"
	case *ast.UnaryExpr:
		if n.Op == token.ARROW {
			return "a channel receive"
		}
	case *ast.SelectStmt:
		for _, c := range n.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				return "" // a default case makes the select non-blocking
			}
		}
		return "a select with no default"
	case *ast.RangeStmt:
		if tv, ok := pass.TypesInfo.Types[n.X]; ok {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				return "ranging over a channel"
			}
		}
	case *ast.CallExpr:
		return stdBlockerWhy(pass, n)
	}
	return ""
}

// stdBlockers maps package path -> callable -> short description. Keys
// are bare names for package-level functions and "Type.Method" for
// methods. sync.Cond.Wait is deliberately absent: it requires the lock.
var stdBlockers = map[string]map[string]string{
	"time": {
		"Sleep": "time.Sleep",
	},
	"sync": {
		"WaitGroup.Wait": "sync.WaitGroup.Wait",
	},
	"net": {
		"Dial": "net.Dial", "DialTimeout": "net.DialTimeout",
		"Listener.Accept": "net.Listener.Accept",
	},
	"net/http": {
		"Get": "http.Get", "Post": "http.Post", "PostForm": "http.PostForm", "Head": "http.Head",
		"Client.Do": "http.Client.Do", "Client.Get": "http.Client.Get",
		"Client.Post": "http.Client.Post", "Client.PostForm": "http.Client.PostForm",
		"Client.Head": "http.Client.Head",
		"Server.Serve": "http.Server.Serve", "Server.ListenAndServe": "http.Server.ListenAndServe",
		"Server.ListenAndServeTLS": "http.Server.ListenAndServeTLS",
		"Server.Shutdown": "http.Server.Shutdown",
	},
	"os/exec": {
		"Cmd.Run": "exec.Cmd.Run", "Cmd.Wait": "exec.Cmd.Wait",
		"Cmd.Output": "exec.Cmd.Output", "Cmd.CombinedOutput": "exec.Cmd.CombinedOutput",
	},
}

// stdBlockerWhy reports whether call invokes a known-blocking standard
// library function or method.
func stdBlockerWhy(pass *Pass, call *ast.CallExpr) string {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	table, ok := stdBlockers[fn.Pkg().Path()]
	if !ok {
		return ""
	}
	return table[objectKey(fn)]
}

// firstBlockingCallee finds the first call in body (source order) to a
// function carrying a BlocksFact, skipping self-recursion.
func firstBlockingCallee(pass *Pass, body *ast.BlockStmt, self *types.Func) *types.Func {
	var found *types.Func
	walkScope(body, true, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass, call)
		if fn == nil || fn == self {
			return true
		}
		var fact BlocksFact
		if pass.ImportObjectFact(fn, &fact) {
			found = fn
			return false
		}
		return true
	})
	return found
}

// qualifiedFuncName renders a function for diagnostics: "pkg.Fn" or
// "pkg.Type.Method".
func qualifiedFuncName(fn *types.Func) string {
	if fn.Pkg() == nil {
		return fn.Name()
	}
	return fn.Pkg().Name() + "." + objectKey(fn)
}

// lockEvent is one Lock/Unlock call in a scope.
type lockEvent struct {
	call     *ast.CallExpr
	key      string // lock expression, "/R" suffix for the read side
	method   string // Lock, RLock, Unlock, RUnlock
	expr     string // rendered lock expression, for messages
	deferred bool
}

// checkLockScope runs the lexical region analysis over one function
// body. Nested literals are pruned entirely — each is its own scope.
func checkLockScope(pass *Pass, body *ast.BlockStmt) {
	comms := selectCommNodes(body)
	var events []lockEvent
	type blockSite struct {
		n   ast.Node
		why string
	}
	var blockers []blockSite
	var returns []*ast.ReturnStmt
	deferredCalls := map[*ast.CallExpr]bool{}

	walkScope(body, false, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			deferredCalls[n.Call] = true
		case *ast.ReturnStmt:
			returns = append(returns, n)
		case *ast.CallExpr:
			if ev, ok := mutexEvent(pass, n); ok {
				ev.deferred = deferredCalls[n]
				events = append(events, ev)
				return true
			}
			if why := stdBlockerWhy(pass, n); why != "" {
				blockers = append(blockers, blockSite{n: n, why: why})
				return true
			}
			if fn := calleeFunc(pass, n); fn != nil {
				var fact BlocksFact
				if pass.ImportObjectFact(fn, &fact) {
					blockers = append(blockers, blockSite{n: n, why: qualifiedFuncName(fn) + " (" + fact.Why + ")"})
				}
			}
		default:
			if !comms[n] {
				if why := blockingNodeWhy(pass, n); why != "" {
					blockers = append(blockers, blockSite{n: n, why: why})
					// Keep descending: a select's case bodies carry
					// their own lock traffic.
				}
			}
		}
		return true
	})

	for _, ev := range events {
		if ev.method != "Lock" && ev.method != "RLock" {
			continue
		}
		unlockName := "Unlock"
		if ev.method == "RLock" {
			unlockName = "RUnlock"
		}
		// The nearest following Unlock of the same lock expression
		// bounds the region; a deferred one extends it to the end of
		// the function and satisfies every return path.
		var nearest *lockEvent
		for i := range events {
			u := &events[i]
			if u.key != ev.key || u.method != unlockName || u.call.Pos() <= ev.call.Pos() {
				continue
			}
			if nearest == nil || u.call.Pos() < nearest.call.Pos() {
				nearest = u
			}
		}
		if nearest == nil {
			pass.Reportf(ev.call.Pos(), "%s.%s() has no matching %s in this function; release it on every path (or defer the %s)",
				ev.expr, ev.method, unlockName, unlockName)
			continue
		}
		regionEnd := nearest.call.Pos()
		if nearest.deferred {
			regionEnd = body.End()
		} else {
			for _, r := range returns {
				if r.Pos() > ev.call.End() && r.End() < regionEnd {
					pass.Reportf(r.Pos(), "return while %s is still %sed (line %d); unlock on this path or defer the %s",
						ev.expr, ev.method, pass.Fset.Position(ev.call.Pos()).Line, unlockName)
				}
			}
		}
		for _, b := range blockers {
			if b.n.Pos() > ev.call.End() && b.n.Pos() < regionEnd {
				pass.Reportf(b.n.Pos(), "%s is held across %s; release the lock before blocking", ev.expr, b.why)
			}
		}
	}
}

// mutexEvent recognizes X.Lock/RLock/Unlock/RUnlock where X is a
// sync.Mutex or sync.RWMutex (directly or through embedding).
func mutexEvent(pass *Pass, call *ast.CallExpr) (lockEvent, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockEvent{}, false
	}
	m := sel.Sel.Name
	if m != "Lock" && m != "RLock" && m != "Unlock" && m != "RUnlock" {
		return lockEvent{}, false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return lockEvent{}, false
	}
	recv := recvTypeName(fn)
	if recv != "Mutex" && recv != "RWMutex" {
		return lockEvent{}, false
	}
	key := types.ExprString(sel.X)
	expr := key
	if m == "RLock" || m == "RUnlock" {
		key += "/R"
	}
	return lockEvent{call: call, key: key, method: m, expr: expr}, true
}

// recvTypeName returns the name of fn's receiver type ("" for
// non-methods), with pointers stripped.
func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// nestedFuncLits collects every function literal under body.
func nestedFuncLits(body *ast.BlockStmt) []*ast.FuncLit {
	var out []*ast.FuncLit
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			out = append(out, lit)
		}
		return true
	})
	return out
}
