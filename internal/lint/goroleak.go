package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// GoroLeak requires every `go` statement to have a termination story —
// the invariant behind the service tier's clean-drain guarantee (the
// gateway's lane and drain goroutines, the server's admit batches).
// A spawned goroutine is fine when any of these hold:
//
//   - its body's loops all have an exit (a return, a break, or a
//     receive from ctx.Done()/a done-style channel) — one-shot bodies
//     with no unbounded loop trivially qualify;
//   - it is reaped through a sync.WaitGroup (a wg.Done() in the body);
//   - the go statement is annotated `//rtmdm:owned-by <lifecycle>`,
//     naming the mechanism that reaps it — an audited ownership claim,
//     reviewed like a //lint:allow.
//
// Functions whose body runs an unbounded loop with no exit export a
// NonTerminatingFact, so `go pkg.Worker()` is flagged at the spawn
// site even when Worker lives in another package.
var GoroLeak = &Analyzer{
	Name: "goroleak",
	Doc: "every go statement needs a termination path: a ctx/done " +
		"exit, a WaitGroup, or an //rtmdm:owned-by annotation",
	Run:       runGoroLeak,
	FactTypes: []Fact{new(NonTerminatingFact)},
}

// NonTerminatingFact marks a function whose body contains an unbounded
// loop (`for { ... }`) with no termination path: no return, no break
// out of the loop, and no receive from a cancellation channel.
// Spawning such a function leaks the goroutine unless a lifecycle
// annotation claims it.
type NonTerminatingFact struct{}

// AFact marks NonTerminatingFact as a lint fact.
func (*NonTerminatingFact) AFact() {}

// ownedByPrefix is the goroutine-ownership annotation. It must name
// the lifecycle that reaps the goroutine:
//
//	//rtmdm:owned-by Gateway.Shutdown
//	go g.pump() //rtmdm:owned-by Gateway.Shutdown
//
// A directive covers its own line and the line below it.
const ownedByPrefix = "//rtmdm:owned-by"

func runGoroLeak(pass *Pass) (any, error) {
	// Sweep 1: facts — functions that loop forever with no exit.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !hasUnboundedLoop(pass, fd.Body) {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				pass.ExportObjectFact(fn, &NonTerminatingFact{})
			}
		}
	}
	// Sweep 2: go statements.
	for _, f := range pass.Files {
		owned := parseOwnedBy(pass, f)
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if owned[pass.Fset.Position(g.Pos()).Line] {
				return true
			}
			checkGoStmt(pass, g)
			return true
		})
	}
	return nil, nil
}

// parseOwnedBy collects the lines of f covered by well-formed
// //rtmdm:owned-by directives and reports malformed ones (no lifecycle
// name — an ownership claim with no owner is not auditable).
func parseOwnedBy(pass *Pass, f *ast.File) map[int]bool {
	covered := map[int]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if c.Text != ownedByPrefix && !strings.HasPrefix(c.Text, ownedByPrefix+" ") {
				continue
			}
			name := strings.TrimSpace(strings.TrimPrefix(c.Text, ownedByPrefix))
			// Trailing commentary after the lifecycle name is allowed.
			if i := strings.Index(name, "//"); i >= 0 {
				name = strings.TrimSpace(name[:i])
			}
			if name == "" {
				pass.Reportf(c.Pos(), "malformed //rtmdm:owned-by directive: name the lifecycle that reaps the goroutine (e.g. //rtmdm:owned-by Gateway.Shutdown)")
				continue
			}
			line := pass.Fset.Position(c.Pos()).Line
			covered[line] = true
			covered[line+1] = true
		}
	}
	return covered
}

// checkGoStmt judges one unannotated go statement.
func checkGoStmt(pass *Pass, g *ast.GoStmt) {
	switch fun := ast.Unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		if callsWaitGroupDone(pass, fun.Body) {
			return // reaped by a WaitGroup
		}
		reportUnboundedLoops(pass, fun.Body)
		// Calls to known-non-terminating functions from inside the
		// goroutine body (the fact crosses package boundaries).
		walkScope(fun.Body, true, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass, call)
			if fn == nil {
				return true
			}
			var fact NonTerminatingFact
			if pass.ImportObjectFact(fn, &fact) {
				pass.Reportf(call.Pos(), "goroutine calls %s, which loops forever with no termination path; give it a ctx/done exit, a WaitGroup, or annotate //rtmdm:owned-by <lifecycle>",
					qualifiedFuncName(fn))
			}
			return true
		})
	default:
		fn := calleeFunc(pass, g.Call)
		if fn == nil {
			return
		}
		var fact NonTerminatingFact
		if pass.ImportObjectFact(fn, &fact) {
			pass.Reportf(g.Pos(), "go %s: it loops forever with no termination path; give it a ctx/done exit, a WaitGroup, or annotate //rtmdm:owned-by <lifecycle>",
				qualifiedFuncName(fn))
		}
	}
}

// reportUnboundedLoops flags each exit-less unbounded loop directly in
// body (nested literals and go statements are their own scopes).
func reportUnboundedLoops(pass *Pass, body *ast.BlockStmt) {
	walkScope(body, true, func(n ast.Node) bool {
		loop, ok := n.(*ast.ForStmt)
		if !ok {
			return true
		}
		if loop.Cond == nil && !loopHasExit(loop) {
			pass.Reportf(loop.Pos(), "goroutine runs an unbounded loop with no termination path; select on ctx.Done() or a done channel, use a WaitGroup, or annotate the go statement //rtmdm:owned-by <lifecycle>")
		}
		return true
	})
}

// hasUnboundedLoop reports whether body (pruned of literals and go
// statements) contains a `for { ... }` with no exit.
func hasUnboundedLoop(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	walkScope(body, true, func(n ast.Node) bool {
		if found {
			return false
		}
		if loop, ok := n.(*ast.ForStmt); ok && loop.Cond == nil && !loopHasExit(loop) {
			found = true
			return false
		}
		return true
	})
	return found
}

// doneChanName matches identifiers conventionally naming a
// cancellation channel.
var doneChanName = regexp.MustCompile(`(?i)(done|stop|quit|halt|exit|clos)`)

// loopHasExit reports whether an unbounded loop has a way out: a
// return, a break that targets it (plain break with no intervening
// breakable construct, or any labeled break), or a receive from a
// cancellation channel (ctx.Done() or a done-style name) — the latter
// counts as evidence of a termination path even when the exit is
// indirect.
func loopHasExit(loop *ast.ForStmt) bool {
	exit := false
	// depth counts breakable constructs between the loop and the node
	// under inspection; a plain break at depth 0 exits our loop.
	depth := 0
	var stack []bool // parallel to Inspect's descent: was this node breakable?
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		if n == nil {
			if len(stack) > 0 {
				if stack[len(stack)-1] {
					depth--
				}
				stack = stack[:len(stack)-1]
			}
			return true
		}
		if exit {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false // pruned; f(nil) is not called for pruned nodes
		case *ast.ReturnStmt:
			exit = true
			return false
		case *ast.BranchStmt:
			if n.Tok == token.BREAK && (n.Label != nil || depth == 0) {
				exit = true
				return false
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && isCancellationChan(n.X) {
				exit = true
				return false
			}
		}
		breakable := false
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.SelectStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt:
			breakable = true
			depth++
		}
		stack = append(stack, breakable)
		return true
	})
	return exit
}

// isCancellationChan reports whether the received-from expression looks
// like a cancellation signal: a ctx.Done()-style call or a done-named
// channel.
func isCancellationChan(x ast.Expr) bool {
	switch x := ast.Unparen(x).(type) {
	case *ast.CallExpr:
		if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
			return sel.Sel.Name == "Done"
		}
		if id, ok := x.Fun.(*ast.Ident); ok {
			return doneChanName.MatchString(id.Name)
		}
	case *ast.Ident:
		return doneChanName.MatchString(x.Name)
	case *ast.SelectorExpr:
		return doneChanName.MatchString(x.Sel.Name)
	}
	return false
}

// callsWaitGroupDone reports whether body calls (*sync.WaitGroup).Done
// or Add — evidence the goroutine is reaped by a Wait elsewhere.
func callsWaitGroupDone(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
			return true
		}
		if recvTypeName(fn) == "WaitGroup" && (fn.Name() == "Done" || fn.Name() == "Add") {
			found = true
			return false
		}
		return true
	})
	return found
}
