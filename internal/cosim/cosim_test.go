package cosim

import (
	"math/rand"
	"testing"

	"rtmdm/internal/cost"
	"rtmdm/internal/models"
	"rtmdm/internal/nn"
	"rtmdm/internal/segment"
)

func randInput(m *nn.Model, seed int64) *nn.Tensor {
	rng := rand.New(rand.NewSource(seed))
	x := nn.NewTensor(m.Input, m.InQuant)
	for i := range x.Data {
		x.Data[i] = int8(rng.Intn(255) - 127)
	}
	return x
}

// The keystone equivalence property: for every zoo model and a spread of
// staging budgets and preemption granularities, executing the segmented
// plan reproduces whole-model inference bit-for-bit — the segmenter and
// the kernel slicer together provably preserve semantics.
func TestSegmentedExecutionIsBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full-zoo cosim in -short mode")
	}
	plat := cost.STM32H743
	limits := []segment.Limits{
		{Bytes: 8 << 10},
		{Bytes: 32 << 10, ComputeNs: 1_000_000},
		{Bytes: 128 << 10, ComputeNs: 250_000},
	}
	for _, info := range models.Catalog() {
		info := info
		t.Run(info.Name, func(t *testing.T) {
			m := info.Build(42)
			x := randInput(m, 7)
			want := m.Forward(x)
			for _, lim := range limits {
				pl, err := segment.BuildLimits(m, plat, lim, segment.Greedy)
				if err != nil {
					t.Fatalf("limits %+v: %v", lim, err)
				}
				got, err := ExecutePlan(pl, x)
				if err != nil {
					t.Fatalf("limits %+v: %v", lim, err)
				}
				if got.Shape != want.Shape {
					t.Fatalf("limits %+v: shape %v, want %v", lim, got.Shape, want.Shape)
				}
				for i := range want.Data {
					if got.Data[i] != want.Data[i] {
						t.Fatalf("limits %+v (%d segments): output diverges at %d: %d vs %d",
							lim, pl.NumSegments(), i, got.Data[i], want.Data[i])
					}
				}
			}
		})
	}
}

func TestPerLayerPolicyAlsoEquivalent(t *testing.T) {
	plat := cost.STM32H743
	m := models.LeNet5(3)
	x := randInput(m, 9)
	want := m.Forward(x)
	pl, err := segment.BuildLimits(m, plat, segment.Limits{Bytes: 16 << 10}, segment.PerLayer)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ExecutePlan(pl, x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatal("per-layer plan diverges")
		}
	}
}

func TestHeavySplittingManyPieces(t *testing.T) {
	// A 2 KiB budget splits dense layers into dozens of pieces, exercising
	// the empty-piece (more chunks than channels) path.
	plat := cost.STM32H743
	m := models.Autoencoder(5)
	x := randInput(m, 11)
	want := m.Forward(x)
	pl, err := segment.BuildLimits(m, plat, segment.Limits{Bytes: 2 << 10}, segment.Greedy)
	if err != nil {
		t.Fatal(err)
	}
	if pl.NumSegments() < 100 {
		t.Fatalf("expected heavy splitting, got %d segments", pl.NumSegments())
	}
	got, err := ExecutePlan(pl, x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatal("heavily split plan diverges")
		}
	}
}

func TestExecutePlanRejectsBadInputs(t *testing.T) {
	plat := cost.STM32H743
	m := models.TinyMLP(1)
	pl, err := segment.BuildLimits(m, plat, segment.Limits{Bytes: 64 << 10}, segment.Greedy)
	if err != nil {
		t.Fatal(err)
	}
	wrong := nn.NewTensor(nn.Shape{H: 2, W: 2, C: 2}, m.InQuant)
	if _, err := ExecutePlan(pl, wrong); err == nil {
		t.Fatal("wrong input shape accepted")
	}
	noModel := &segment.Plan{Segments: pl.Segments}
	if _, err := ExecutePlan(noModel, randInput(m, 1)); err == nil {
		t.Fatal("model-less plan accepted")
	}
}
