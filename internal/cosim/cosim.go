// Package cosim executes a segmentation plan *functionally*: it runs the
// model's actual int8 kernels segment by segment, slicing fractionally
// split layers along their output channels exactly as the staged parameter
// chunks would arrive from external memory. Its purpose is the correctness
// half of the reproduction's trust story: segment-wise execution must be
// bit-identical to whole-model execution, for every model, budget and
// preemption granularity (property test in cosim_test.go).
package cosim

import (
	"fmt"

	"rtmdm/internal/nn"
	"rtmdm/internal/segment"
)

// ExecutePlan runs one inference through the plan's segments in order,
// returning the model output. It fails on plans without an attached model
// (synthetic test plans) or with parts whose layer kind cannot execute
// partially.
func ExecutePlan(pl *segment.Plan, input *nn.Tensor) (*nn.Tensor, error) {
	m := pl.Model
	if m == nil {
		return nil, fmt.Errorf("cosim: plan has no model attached")
	}
	if input.Shape != m.Input {
		return nil, fmt.Errorf("cosim: input %v, want %v", input.Shape, m.Input)
	}
	outputs := make([]*nn.Tensor, len(m.Nodes))
	get := func(i int) *nn.Tensor {
		if i == -1 {
			return input
		}
		return outputs[i]
	}
	gather := func(node int) ([]*nn.Tensor, error) {
		nd := m.Nodes[node]
		ins := make([]*nn.Tensor, len(nd.Inputs))
		for k, in := range nd.Inputs {
			t := get(in)
			if t == nil {
				return nil, fmt.Errorf("cosim: node %d needs node %d before it ran", node, in)
			}
			ins[k] = t
		}
		return ins, nil
	}
	piecesSeen := map[int]int{}

	for _, seg := range pl.Segments {
		for _, part := range seg.Parts {
			nd := m.Nodes[part.Node]
			l := nd.Layer
			if part.Whole() {
				ins, err := gather(part.Node)
				if err != nil {
					return nil, err
				}
				outputs[part.Node] = l.Forward(ins...)
				continue
			}
			// Fractional part: piece k of part.Den equal channel shares.
			k := piecesSeen[part.Node]
			piecesSeen[part.Node]++
			outC := l.OutShape().C
			from := outC * k / int(part.Den)
			to := outC * (k + 1) / int(part.Den)
			if outputs[part.Node] == nil {
				outputs[part.Node] = nn.NewTensor(l.OutShape(), l.OutQuant())
			}
			if from == to {
				continue // more pieces than channels: this chunk is pure padding
			}
			ins, err := gather(part.Node)
			if err != nil {
				return nil, err
			}
			switch lt := l.(type) {
			case *nn.Conv2D:
				nn.PlaceChannels(outputs[part.Node], nn.SliceConv2D(lt, from, to).Forward(ins[0]), from)
			case *nn.Dense:
				nn.PlaceChannels(outputs[part.Node], nn.SliceDense(lt, from, to).Forward(ins[0]), from)
			case *nn.DWConv2D:
				sub := nn.SliceDWConv2D(lt, from, to)
				nn.PlaceChannels(outputs[part.Node], sub.Forward(nn.SliceChannels(ins[0], from, to)), from)
			default:
				return nil, fmt.Errorf("cosim: layer %s (%s) cannot execute partially", l.Name(), l.Kind())
			}
		}
	}
	out := outputs[m.Output]
	if out == nil {
		return nil, fmt.Errorf("cosim: plan never produced the model output")
	}
	return out, nil
}
