// Incremental warm-start admission analysis.
//
// The admission server re-runs a schedulability test on every /v1/admit
// delta: one task added to (or removed from) a node's committed set. The
// cold path rebuilds every model, re-segments every plan, and iterates
// every RTA fixpoint from its base — O(full analysis) per single-task
// delta. IncrementalAnalyzer keeps three layers of warm state per node:
//
//  1. a term cache: per-task build products (segmentation plan, derated
//     ΣC/ΣL sums, inventory segC lists, pipelined/serial demand) keyed by
//     the task spec's canonical hash and the set size its segment budget
//     was computed for;
//  2. warm fixpoint starts: the previously converged WCRT of every
//     committed task, used as the starting point of its RTA fixpoint when
//     the delta leaves every task's segmentation unchanged — any addition
//     under the serial families (their segment budget ignores the set
//     size), but only committed-size evaluations under the prefetch
//     families, whose SegmentBudget divides the staging SRAM by n·depth
//     (see docs/ANALYSIS.md for the monotonicity argument; removals
//     restart cold from the C+L base);
//  3. an early-exit infeasibility screen (necessary utilization + demand
//     conditions) that rejects before any fixpoint runs.
//
// Verdicts are bit-identical to the cold EvaluateScenario below — pinned
// by FuzzIncrementalRTA — because the warm path runs the *same* loops
// (rtmdmRTATerms / fpRTATerms) and every extension is identity-preserving:
// cached demands are values of the same pure expressions, warm starts are
// guarded by cold replays (warmIterate), and the screen fires only where
// the fixpoint provably fails and is applied by both paths.
package analysis

import (
	"container/list"
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"rtmdm/internal/core"
	"rtmdm/internal/cost"
	"rtmdm/internal/metrics"
	"rtmdm/internal/scenario"
	"rtmdm/internal/segment"
	"rtmdm/internal/sim"
	"rtmdm/internal/task"
)

// aInstruments holds the analysis metrics; the zero struct (nil counters)
// means "disabled" — metrics.Counter methods are nil-safe.
type aInstruments struct {
	warmHits         *metrics.Counter
	termsInvalidated *metrics.Counter
}

// ainstr is swapped atomically so Instrument may race with concurrent
// evaluations (one analyzer per server node) without a lock on the path.
var ainstr atomic.Pointer[aInstruments]

func init() { ainstr.Store(&aInstruments{}) }

// Instrument wires the incremental-analysis counters to the registry;
// Instrument(nil) disables them again. See docs/OBSERVABILITY.md for the
// metric catalogue.
func Instrument(r *metrics.Registry) {
	if r == nil {
		ainstr.Store(&aInstruments{})
		return
	}
	ainstr.Store(&aInstruments{
		warmHits:         r.Counter("analysis.warm_hits", "evaluations", "incremental admissions where at least one RTA fixpoint warm-started"),
		termsInvalidated: r.Counter("analysis.terms_invalidated", "entries", "cached per-task analysis terms dropped (LRU eviction or binding reset)"),
	})
}

// admitScreened reports whether the policy's admission test is one of the
// fixed-priority RTA families the necessary-condition screen applies to.
// The cases mirror ForPolicyContext's dispatch order: FIFO DMA policies
// (errors or the FIFO ablation) and the EDF demand test are excluded.
func admitScreened(pol core.Policy) bool {
	if pol.DMA == core.DMAFIFO {
		return false
	}
	return pol.JobLevelNP || !pol.EDF
}

// rtmdmTestShape returns the test name and per-task depth function the
// prefetching FP family uses — shared between ForPolicyContext-style cold
// dispatch and the incremental analyzer so their Test strings cannot drift.
func rtmdmTestShape(pol core.Policy) (string, func(*task.Task) int) {
	if pol.TaskDepth != nil {
		return "rta-rtmdm-het", func(t *task.Task) int { return pol.DepthFor(t.Name) }
	}
	d := pol.Depth
	return fmt.Sprintf("rta-rtmdm-d%d", d), func(*task.Task) int { return d }
}

// admitTest returns the admission-path schedulability test for a policy:
// ForPolicyContext's test with the pre-fixpoint demand screen enabled for
// the FP RTA families, ForPolicyContext verbatim for everything else.
func admitTest(ctx context.Context, pol core.Policy) (func(*task.Set, cost.Platform) Verdict, error) {
	if !admitScreened(pol) {
		return ForPolicyContext(ctx, pol)
	}
	opt := &admitOpts{screen: true}
	switch {
	case pol.JobLevelNP:
		return func(s *task.Set, p cost.Platform) Verdict {
			if err := s.Validate(); err != nil {
				return Verdict{Test: "rta-serial-npfp", Reason: err.Error()}
			}
			ts := mkTerms(task.NewSet(s.ByPriority()...), p, 0)
			return fpRTATerms(ctx, ts, "rta-serial-npfp", false, npfpBaseFn(), sumCL, opt)
		}, nil
	case pol.PrefetchAcrossJobs:
		name, depthFor := rtmdmTestShape(pol)
		c := pol.ChunkBytes
		return func(s *task.Set, p cost.Platform) Verdict {
			if err := s.Validate(); err != nil {
				return Verdict{Test: name, Reason: err.Error()}
			}
			ts := mkTerms(task.NewSet(s.ByPriority()...), p, c)
			return rtmdmRTATerms(ctx, ts, p, name, depthFor, c, false, opt)
		}, nil
	default:
		return func(s *task.Set, p cost.Platform) Verdict {
			if err := s.Validate(); err != nil {
				return Verdict{Test: "rta-serial-segfp", Reason: err.Error()}
			}
			ts := mkTerms(task.NewSet(s.ByPriority()...), p, 0)
			return fpRTATerms(ctx, ts, "rta-serial-segfp", false, segfpBaseFn(p, nil), sumCL, opt)
		}, nil
	}
}

// EvaluateScenario is the cold admission reference: build the scenario
// and run its policy's schedulability test, with the admission screen
// (necessary utilization, then per-task demand) in front of the FP
// fixpoint analyses. IncrementalAnalyzer.Evaluate produces bit-identical
// verdicts and errors (FuzzIncrementalRTA pins both); the server's admit
// path runs the analyzer, which falls back to this function when its warm
// state cannot apply.
func EvaluateScenario(ctx context.Context, sc *scenario.Scenario) (Verdict, error) {
	set, plat, pol, err := sc.Build()
	if err != nil {
		return Verdict{}, err
	}
	test, err := admitTest(ctx, pol)
	if err != nil {
		return Verdict{}, err
	}
	if admitScreened(pol) {
		if v := NecessaryUtilization(set, plat); !v.Schedulable {
			return v, nil
		}
	}
	return test(set, plat), nil
}

// EvalStats reports how one IncrementalAnalyzer evaluation was served.
type EvalStats struct {
	// Warm is true when at least one RTA fixpoint warm-started from a
	// previously converged bound (and the warm run survived its guards).
	Warm bool
	// WarmStarts counts the fixpoints that warm-started.
	WarmStarts int
	// TasksReused and TasksBuilt count candidate tasks served from the
	// term cache vs built (model + segmentation) from scratch.
	TasksReused, TasksBuilt int
	// Screened is true when a necessary-condition screen rejected the
	// candidate before any fixpoint ran.
	Screened bool
}

// entryKey identifies one term-cache entry: the canonical hash of the
// single-task scenario (spec + binding) plus the task count the segment
// budget was computed for — SegmentBudget divides the staging SRAM by the
// set size under prefetch policies, so a build is only reusable at the
// same n.
type entryKey struct {
	hash string
	n    int
}

// taskEntry is one cached task build plus the derived analysis terms.
// Everything in it is immutable after construction: evaluations copy tmpl
// (AssignRM mutates priorities) and the terms struct (attaching the
// per-evaluation task pointer); the segC slice inside tm is shared
// read-only.
type taskEntry struct {
	key  entryKey
	tmpl task.Task
	// tm is the task's analysis terms under the policy's test chunking,
	// with the t field cleared.
	tm terms
	// sumC0/sumL0 are the chunk-0 derated demand sums NecessaryUtilization
	// computes — the utilization screen's inputs.
	sumC0, sumL0 int64
	// demandSerial and demandTop are the per-job demand (the base term's
	// own-work component) at depth 1 and at the task's own prefetch depth.
	demandSerial, demandTop int64
}

// warmEntry is one task's committed warm state: its converged WCRT and
// the spec hash it was computed for (a changed spec invalidates the bound).
type warmEntry struct {
	wcrt sim.Duration
	spec string
}

// termCacheCapacity bounds the per-analyzer term cache. Entries are small
// (a segmentation plan plus derated sums); 1024 covers far more distinct
// (spec, set-size) pairs than one node's admission stream produces.
const termCacheCapacity = 1024

// IncrementalAnalyzer keeps warm schedulability-analysis state for one
// admission stream (one server node): a binding (platform/policy/horizon),
// a term cache, and the committed set's converged WCRTs. It is safe for
// concurrent use; evaluations of one analyzer serialize on its mutex.
type IncrementalAnalyzer struct {
	mu sync.Mutex

	// binding: the canonical platform/policy/horizon every cached entry
	// and warm bound was computed under. Any change resets all state
	// (the cold-path fallback).
	bound     bool
	platform  string
	policy    string
	horizonMs float64
	plat      cost.Platform
	pol       core.Policy

	// term cache: deterministic LRU (front = most recently used).
	entries  map[entryKey]*list.Element
	order    *list.List
	capacity int

	// warmSet holds the committed set's converged bounds; lastHash and
	// lastWarm snapshot the most recent evaluation for Commit.
	warmSet  map[string]warmEntry
	lastHash string
	lastWarm map[string]warmEntry
}

// NewIncrementalAnalyzer returns an empty analyzer; it binds to the first
// scenario it evaluates.
func NewIncrementalAnalyzer() *IncrementalAnalyzer {
	return &IncrementalAnalyzer{
		entries:  make(map[entryKey]*list.Element),
		order:    list.New(),
		capacity: termCacheCapacity,
	}
}

// Reset drops all cached and warm state; the next Evaluate runs fully cold.
func (a *IncrementalAnalyzer) Reset() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.reset()
}

func (a *IncrementalAnalyzer) reset() {
	if n := len(a.entries); n > 0 {
		ainstr.Load().termsInvalidated.Add(int64(n))
	}
	a.entries = make(map[entryKey]*list.Element)
	a.order.Init()
	a.warmSet, a.lastHash, a.lastWarm = nil, "", nil
	a.bound = false
}

// bind resolves and pins the scenario's platform/policy/horizon binding.
// A binding change invalidates every cached term and warm bound: segment
// budgets, derated costs, and test family all depend on it.
func (a *IncrementalAnalyzer) bind(sc *scenario.Scenario) error {
	if a.bound && sc.Platform == a.platform && sc.Policy == a.policy && sc.HorizonMs == a.horizonMs {
		return nil
	}
	plat, pol, err := sc.Resolve()
	if err != nil {
		return err
	}
	a.reset()
	a.bound = true
	a.platform, a.policy, a.horizonMs = sc.Platform, sc.Policy, sc.HorizonMs
	a.plat, a.pol = plat, pol
	return nil
}

// taskSpecHash is the cache identity of one task spec under a binding:
// the canonical hash of the single-task scenario holding just this spec.
func taskSpecHash(platform, policy string, horizonMs float64, tsp scenario.TaskSpec) (string, error) {
	return scenario.CanonicalHash(&scenario.Scenario{
		Platform: platform, Policy: policy, HorizonMs: horizonMs,
		Tasks: []scenario.TaskSpec{tsp},
	})
}

// entry returns the cached build for a task spec, building and inserting
// on miss. ModelFile-backed specs are never cached: the file's content is
// outside the spec hash and may change between evaluations.
func (a *IncrementalAnalyzer) entry(tsp scenario.TaskSpec, hash string, n int, lim segment.Limits, st *EvalStats) (*taskEntry, error) {
	key := entryKey{hash: hash, n: n}
	if tsp.ModelFile == "" {
		if el, ok := a.entries[key]; ok {
			a.order.MoveToFront(el)
			st.TasksReused++
			return el.Value.(*taskEntry), nil
		}
	}
	tk, err := scenario.BuildTask(tsp, a.plat, lim)
	if err != nil {
		return nil, err
	}
	ent := a.newEntry(tk)
	ent.key = key
	st.TasksBuilt++
	if tsp.ModelFile == "" {
		a.entries[key] = a.order.PushFront(ent)
		for a.order.Len() > a.capacity {
			el := a.order.Back()
			a.order.Remove(el)
			delete(a.entries, el.Value.(*taskEntry).key)
			ainstr.Load().termsInvalidated.Inc()
		}
	}
	return ent, nil
}

// newEntry precomputes everything the admission analyses need from one
// built task: analysis terms under the policy's test chunking, the
// chunk-0 sums the utilization screen uses, and the per-job demand at
// depth 1 and at the task's own prefetch depth. All are values of the
// same pure expressions the cold path computes per evaluation.
func (a *IncrementalAnalyzer) newEntry(tk *task.Task) *taskEntry {
	var chunk int64
	if a.pol.PrefetchAcrossJobs {
		chunk = a.pol.ChunkBytes
	}
	tm := mkTerms(task.NewSet(tk), a.plat, chunk)[0]
	tm.t = nil
	t0 := tm
	if chunk != 0 {
		t0 = mkTerms(task.NewSet(tk), a.plat, 0)[0]
	}
	ent := &taskEntry{tmpl: *tk, tm: tm, sumC0: t0.sumC, sumL0: t0.sumL}
	sw := switchCost(a.plat)
	pl := tk.Plan.Chunked(chunk)
	ent.demandSerial = pl.PipelineNsWith(1, 0, sw,
		a.plat.Bus.DMADen, a.plat.Bus.DMANum, a.plat.Bus.CPUDen, a.plat.Bus.CPUNum)
	ent.demandTop = ent.demandSerial
	if d := a.pol.DepthFor(tk.Name); a.pol.PrefetchAcrossJobs && d != 1 {
		ent.demandTop = pl.PipelineNsWith(d, 0, sw,
			a.plat.Bus.DMADen, a.plat.Bus.DMANum, a.plat.Bus.CPUDen, a.plat.Bus.CPUNum)
	}
	return ent
}

// warmStart returns the warm fixpoint hook when the committed warm state
// applies to the candidate: every committed task must appear in the
// candidate with an unchanged spec, and the candidate's segmentation must
// be the one the bounds were computed under. The serial families segment
// against a budget that ignores the set size, so any addition on top of
// the committed set is covered by the monotonicity argument
// (docs/ANALYSIS.md §9). The prefetch families divide the staging SRAM
// by n·depth: a candidate at a different size re-segments every task,
// blocking and demand terms can shrink, and the old bounds could start
// the iteration above the new least fixpoint — where convergence lands
// on a non-least fixpoint that no runtime guard detects. Those policies
// therefore warm only at the committed size (re-evaluations of the
// committed set itself); a size change, removal, or spec change returns
// nil and the fixpoints run cold from their C+L bases.
func (a *IncrementalAnalyzer) warmStart(sc *scenario.Scenario, hashes []string) *warmState {
	if len(a.warmSet) == 0 {
		return nil
	}
	if a.pol.PrefetchAcrossJobs && len(sc.Tasks) != len(a.warmSet) {
		return nil
	}
	cand := make(map[string]string, len(sc.Tasks))
	for i := range sc.Tasks {
		cand[sc.Tasks[i].Name] = hashes[i]
	}
	for name, w := range a.warmSet {
		if cand[name] != w.spec {
			return nil
		}
	}
	ws := a.warmSet
	return &warmState{start: func(name string) (int64, bool) {
		w, ok := ws[name]
		return int64(w.wcrt), ok
	}}
}

// record snapshots the evaluation for Commit: the candidate's canonical
// hash and — when the verdict is schedulable with full WCRT coverage —
// the per-task bounds that become the warm state if the candidate is
// committed.
func (a *IncrementalAnalyzer) record(sc *scenario.Scenario, clones []*task.Task, hashes []string, v Verdict) {
	h, err := scenario.CanonicalHash(sc)
	if err != nil {
		a.lastHash, a.lastWarm = "", nil
		return
	}
	a.lastHash, a.lastWarm = h, nil
	if !v.Schedulable || v.WCRT == nil {
		return
	}
	lw := make(map[string]warmEntry, len(clones))
	for i, c := range clones {
		r, ok := v.WCRT[c.Name]
		if !ok {
			return
		}
		lw[c.Name] = warmEntry{wcrt: r, spec: hashes[i]}
	}
	a.lastWarm = lw
}

// Commit installs the warm state of the last Evaluate whose candidate
// equals sc (by canonical hash) — the server calls it when an admission
// commits a new task set. Any other scenario, including every removal,
// clears the warm state: removals shrink interference, so old bounds
// could overshoot the new least fixpoints and are discarded (the next
// evaluation restarts from the C+L bases).
func (a *IncrementalAnalyzer) Commit(sc *scenario.Scenario) {
	a.mu.Lock()
	defer a.mu.Unlock()
	h, err := scenario.CanonicalHash(sc)
	if err != nil || h != a.lastHash || a.lastWarm == nil {
		a.warmSet = nil
		return
	}
	a.warmSet = a.lastWarm
}

// Evaluate runs the admission analysis for a candidate scenario, reusing
// the analyzer's warm state. Verdicts and errors are bit-identical to
// EvaluateScenario on the same input. Evaluate does not change the
// committed warm state — call Commit once the candidate is accepted.
func (a *IncrementalAnalyzer) Evaluate(ctx context.Context, sc *scenario.Scenario) (Verdict, EvalStats, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	var st EvalStats

	sc = sc.Canonicalize()
	if sc.Faults != nil {
		// Fault stanzas rewrite the policy's overrun handling and never
		// appear on the admission path; evaluate cold.
		v, err := EvaluateScenario(ctx, sc)
		return v, st, err
	}
	if err := sc.ValidateNumbers(); err != nil {
		return Verdict{}, st, err
	}
	if err := a.bind(sc); err != nil {
		return Verdict{}, st, err
	}

	// Assemble the candidate set from cached builds, replicating Build's
	// error order exactly: per-task build errors in spec order, then the
	// pinned-mix check, then set validation, then provisioning.
	n := len(sc.Tasks)
	lim := a.pol.Limits(a.plat, n)
	clones := make([]*task.Task, n)
	ents := make([]*taskEntry, n)
	hashes := make([]string, n)
	pinned := 0
	for i := range sc.Tasks {
		tsp := sc.Tasks[i]
		h, err := taskSpecHash(a.platform, a.policy, a.horizonMs, tsp)
		if err != nil {
			return Verdict{}, st, err
		}
		hashes[i] = h
		ent, err := a.entry(tsp, h, n, lim, &st)
		if err != nil {
			return Verdict{}, st, err
		}
		ents[i] = ent
		c := ent.tmpl
		clones[i] = &c
		if tsp.Priority != nil {
			pinned++
		}
	}
	if pinned != 0 && pinned != n {
		return Verdict{}, st, fmt.Errorf("scenario: %d of %d tasks pin priorities; pin all or none", pinned, n)
	}
	set := task.NewSet(clones...)
	if pinned == 0 {
		set.AssignRM()
	}
	if err := set.Validate(); err != nil {
		return Verdict{}, st, err
	}
	if err := core.Provision(set, a.plat, a.pol); err != nil {
		return Verdict{}, st, err
	}

	if !admitScreened(a.pol) {
		// EDF (and any non-FP family): no warm fixpoints to reuse beyond
		// the cached builds; run the policy's test as the cold path does.
		test, err := ForPolicyContext(ctx, a.pol)
		if err != nil {
			return Verdict{}, st, err
		}
		v := test(set, a.plat)
		a.record(sc, nil, nil, Verdict{})
		return v, st, nil
	}

	// Necessary-utilization screen, mirroring NecessaryUtilization bit for
	// bit: the same float expression over the same chunk-0 sums in the
	// same (canonical spec) order.
	var uc, ul float64
	for i := range clones {
		uc += float64(ents[i].sumC0) / float64(clones[i].Period) //lint:allow millitime -- utilization ratio; dimensionless by construction
		ul += float64(ents[i].sumL0) / float64(clones[i].Period) //lint:allow millitime -- utilization ratio; dimensionless by construction
	}
	if !(uc <= 1.0 && ul <= 1.0) {
		st.Screened = true
		a.record(sc, nil, nil, Verdict{})
		return Verdict{Test: "necessary-utilization",
			Reason: fmt.Sprintf("U_cpu=%.3f U_dma=%.3f", uc, ul)}, st, nil
	}

	// Priority-ordered terms from the cache, with per-evaluation task
	// pointers attached (the terms structs are copies; segC is shared
	// read-only).
	byPrio := set.ByPriority()
	idx := make(map[string]int, n)
	for i, c := range clones {
		idx[c.Name] = i
	}
	ts := make([]terms, n)
	dSerial := make([]int64, n)
	dTop := make([]int64, n)
	for j, t := range byPrio {
		i := idx[t.Name]
		tm := ents[i].tm
		tm.t = t
		ts[j] = tm
		dSerial[j] = ents[i].demandSerial
		dTop[j] = ents[i].demandTop
	}

	opt := &admitOpts{screen: true, warm: a.warmStart(sc, hashes)}
	var v Verdict
	switch {
	case a.pol.JobLevelNP:
		v = fpRTATerms(ctx, ts, "rta-serial-npfp", false, npfpBaseFn(), sumCL, opt)
	case a.pol.PrefetchAcrossJobs:
		name, depthFor := rtmdmTestShape(a.pol)
		opt.demandFor = func(i, depth int) int64 {
			if depth == 1 {
				return dSerial[i]
			}
			return dTop[i]
		}
		v = rtmdmRTATerms(ctx, ts, a.plat, name, depthFor, a.pol.ChunkBytes, false, opt)
	default:
		v = fpRTATerms(ctx, ts, "rta-serial-segfp", false,
			segfpBaseFn(a.plat, func(i int) int64 { return dSerial[i] }), sumCL, opt)
	}

	if opt.warm != nil && opt.warm.warmStarts > 0 {
		st.Warm = true
		st.WarmStarts = opt.warm.warmStarts
		ainstr.Load().warmHits.Inc()
	}
	if v.Test == "necessary-demand" {
		st.Screened = true
	}
	a.record(sc, clones, hashes, v)
	return v, st, nil
}
