package analysis

import (
	"context"
	"strings"
	"testing"

	"rtmdm/internal/core"
	"rtmdm/internal/cost"
	"rtmdm/internal/models"
	"rtmdm/internal/segment"
	"rtmdm/internal/sim"
	"rtmdm/internal/task"
)

func ctxTestSet(t *testing.T, plat cost.Platform, pol core.Policy) *task.Set {
	t.Helper()
	names := []string{"ds-cnn", "autoencoder"}
	periods := []sim.Duration{50 * sim.Millisecond, 100 * sim.Millisecond}
	var ts []*task.Task
	for i, n := range names {
		m, err := models.Build(n, 1)
		if err != nil {
			t.Fatal(err)
		}
		pl, err := segment.BuildLimits(m, plat, pol.Limits(plat, len(names)), segment.Greedy)
		if err != nil {
			t.Fatal(err)
		}
		ts = append(ts, &task.Task{
			Name: n, Plan: pl, Period: periods[i], Deadline: periods[i], Priority: i,
		})
	}
	return task.NewSet(ts...)
}

// TestForPolicyContextCanceled verifies every analyzable policy's test
// reports an unschedulable "canceled" verdict under a dead context, and
// that the same test under a live context still decides normally.
func TestForPolicyContextCanceled(t *testing.T) {
	plat := cost.STM32H743
	dead, cancel := context.WithCancel(context.Background())
	cancel()
	for _, pol := range []core.Policy{core.RTMDM(), core.RTMDMEDF(), core.SerialSegFP(), core.SerialNPFP()} {
		set := ctxTestSet(t, plat, pol)
		test, err := ForPolicyContext(dead, pol)
		if err != nil {
			t.Fatalf("%s: %v", pol.Name, err)
		}
		v := test(set, plat)
		if v.Schedulable || !strings.Contains(v.Reason, "canceled") {
			t.Fatalf("%s: verdict %+v; want canceled", pol.Name, v)
		}

		live, err := ForPolicyContext(context.Background(), pol)
		if err != nil {
			t.Fatal(err)
		}
		lv := live(set, plat)
		if strings.Contains(lv.Reason, "canceled") {
			t.Fatalf("%s: live context produced canceled verdict %+v", pol.Name, lv)
		}
		// The live verdict must match the context-free API exactly.
		plain, err := ForPolicy(pol)
		if err != nil {
			t.Fatal(err)
		}
		pv := plain(set, plat)
		if pv.Schedulable != lv.Schedulable || pv.Test != lv.Test {
			t.Fatalf("%s: context verdict %+v diverges from plain %+v", pol.Name, lv, pv)
		}
	}
}
