package analysis

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"rtmdm/internal/scenario"
)

// verdictsEqual is the bit-identity relation FuzzIncrementalRTA pins:
// every Verdict field, including WCRT map contents and Reason strings.
func verdictsEqual(a, b Verdict) bool {
	return a.Test == b.Test && a.Schedulable == b.Schedulable &&
		a.Reason == b.Reason && reflect.DeepEqual(a.WCRT, b.WCRT)
}

// diffDriver replays an admission stream through an IncrementalAnalyzer
// and the cold EvaluateScenario, asserting bit-identical verdicts and
// errors at every step, while mirroring the server's commit protocol
// (commit on admitted additions, commit the shrunk set on removals).
type diffDriver struct {
	t         *testing.T
	inc       *IncrementalAnalyzer
	policy    string
	committed []scenario.TaskSpec
	seq       int
	warmSeen  bool
}

func newDiffDriver(t *testing.T, policy string) *diffDriver {
	return &diffDriver{t: t, inc: NewIncrementalAnalyzer(), policy: policy}
}

func (d *diffDriver) scenarioFor(tasks []scenario.TaskSpec) *scenario.Scenario {
	return (&scenario.Scenario{Policy: d.policy,
		Tasks: append([]scenario.TaskSpec(nil), tasks...)}).Canonicalize()
}

// check evaluates cand through both paths and fails the test on any
// divergence. Returns the verdict and whether evaluation succeeded.
func (d *diffDriver) check(cand *scenario.Scenario) (Verdict, bool) {
	d.t.Helper()
	gotV, st, gotErr := d.inc.Evaluate(context.Background(), cand)
	wantV, wantErr := EvaluateScenario(context.Background(), cand)
	if (gotErr != nil) != (wantErr != nil) ||
		(gotErr != nil && gotErr.Error() != wantErr.Error()) {
		d.t.Fatalf("error diverged:\n inc: %v\ncold: %v", gotErr, wantErr)
	}
	if gotErr != nil {
		return Verdict{}, false
	}
	if !verdictsEqual(gotV, wantV) {
		d.t.Fatalf("verdict diverged:\n inc: %+v\ncold: %+v", gotV, wantV)
	}
	if st.Warm {
		d.warmSeen = true
	}
	return gotV, true
}

// add evaluates committed+spec and commits on admission, like decide().
func (d *diffDriver) add(spec scenario.TaskSpec) bool {
	d.t.Helper()
	cand := d.scenarioFor(append(append([]scenario.TaskSpec(nil), d.committed...), spec))
	v, ok := d.check(cand)
	if !ok || !v.Schedulable {
		return false
	}
	d.committed = append(d.committed, spec)
	d.inc.Commit(cand)
	return true
}

// probe evaluates committed+spec without ever committing.
func (d *diffDriver) probe(spec scenario.TaskSpec) {
	d.t.Helper()
	d.check(d.scenarioFor(append(append([]scenario.TaskSpec(nil), d.committed...), spec)))
}

// remove drops committed[i] and commits the shrunk set, like the server's
// removal op.
func (d *diffDriver) remove(i int) {
	d.committed = append(d.committed[:i:i], d.committed[i+1:]...)
	d.inc.Commit(d.scenarioFor(d.committed))
}

var fuzzPolicies = []string{
	"rt-mdm", "serial-segfp", "serial-npfp", "rt-mdm-edf",
	"rt-mdm-d4", "rt-mdm-fifodma", "serial-segedf",
}

var fuzzModels = []string{"tinymlp", "lenet5", "autoencoder"}

// fuzzPeriods spans infeasible (1 ms under lenet5's demand exercises the
// screens) through comfortable rates.
var fuzzPeriods = []float64{1, 5, 40, 90, 200}

// replayOps interprets data as one admission stream: data[0] selects the
// policy, each following byte is one op — bits 0-1 kind (add/add/remove/
// probe), bits 2-3 model, bits 4-6 period, bit 7 pins a priority
// (mixing pinned and unpinned specs exercises Build's error parity).
func replayOps(t *testing.T, data []byte) *diffDriver {
	t.Helper()
	d := newDiffDriver(t, fuzzPolicies[int(data[0])%len(fuzzPolicies)])
	ops := data[1:]
	if len(ops) > 12 {
		ops = ops[:12]
	}
	for _, b := range ops {
		spec := scenario.TaskSpec{
			Name:     fmt.Sprintf("t%02d", d.seq),
			Model:    fuzzModels[int(b>>2)%len(fuzzModels)],
			PeriodMs: fuzzPeriods[int(b>>4)%len(fuzzPeriods)],
		}
		if b&0x80 != 0 {
			p := d.seq
			spec.Priority = &p
		}
		d.seq++
		switch b % 4 {
		case 2:
			if len(d.committed) > 0 {
				d.remove(int(b>>2) % len(d.committed))
			}
		case 3:
			d.probe(spec)
		default:
			d.add(spec)
		}
	}
	// Final full-set check: the evolved warm state must still reproduce
	// the cold verdict on the committed set itself.
	if len(d.committed) > 0 {
		d.check(d.scenarioFor(d.committed))
	}
	return d
}

// FuzzIncrementalRTA replays random add/remove/probe sequences through
// the incremental analyzer and the cold reference, asserting bit-identical
// Verdicts (Schedulable, Test, WCRT maps, Reason strings) and errors.
func FuzzIncrementalRTA(f *testing.F) {
	// Descending periods under the default prefetch policy: additions run
	// cold (set-size gate), the final committed-set check warm-starts.
	f.Add([]byte{0, 0x40, 0x30, 0x20, 0x10, 0x00})
	// The same stream under a serial family, where additions warm-start.
	f.Add([]byte{1, 0x40, 0x30, 0x20, 0x10, 0x00})
	// Every policy family over the same stream.
	for p := 1; p < len(fuzzPolicies); p++ {
		f.Add([]byte{byte(p), 0x40, 0x30, 0x20})
	}
	// Removal in the middle, then more additions.
	f.Add([]byte{0, 0x40, 0x30, 0x02, 0x20, 0x10})
	// Rejected/infeasible probes riding on a committed set.
	f.Add([]byte{0, 0x40, 0x30, 0x03, 0x43, 0x20})
	// Pinned priorities (first pinned, later unpinned: error parity).
	f.Add([]byte{0, 0xc0, 0x40})
	f.Add([]byte{0, 0xc0, 0xd0, 0xe0})
	// Corpus-promoted edge cases (rtmdm-corpus smoke spec axes the
	// original seeds never combined):
	// rt-mdm-d4 — the deepest prefetch budget (SRAM pressure: the
	// corpus found d4 mixes that exceed activation SRAM outright) —
	// filled with the two largest fuzz models, then an infeasible
	// 1 ms probe that must hit the screens identically on both paths.
	f.Add([]byte{4, 0x14, 0x28, 0x07})
	// rt-mdm-edf at high utilization with a mid-stream removal: the
	// corpus' EDF instances cluster near the demand-test boundary.
	f.Add([]byte{3, 0x14, 0x28, 0x02, 0x10})
	// serial-segedf (no sound test): error parity across add, probe,
	// and remove rather than a single evaluation.
	f.Add([]byte{6, 0x28, 0x03, 0x02})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		replayOps(t, data)
	})
}

// TestIncrementalWarmStarts pins where the warm path engages. The serial
// families segment against an n-independent budget, so admitting in
// descending period order leaves every committed bound valid and the
// third admission must warm-start at least one fixpoint. The prefetch
// families divide the staging SRAM by n·depth: an addition re-segments
// every task, blocking/demand terms can shrink, and warm starts must be
// refused — they apply only to evaluations at the committed set size.
func TestIncrementalWarmStarts(t *testing.T) {
	addAll := func(d *diffDriver) {
		t.Helper()
		for i, p := range []float64{200, 100, 50, 40} {
			if !d.add(scenario.TaskSpec{Name: fmt.Sprintf("t%d", i), Model: "tinymlp", PeriodMs: p}) {
				t.Fatalf("add t%d rejected", i)
			}
		}
	}

	d := newDiffDriver(t, "serial-segfp")
	addAll(d)
	if !d.warmSeen {
		t.Fatal("no serial-family addition warm-started")
	}

	d = newDiffDriver(t, "rt-mdm")
	addAll(d)
	if d.warmSeen {
		t.Fatal("prefetch-family addition warm-started across a set-size change")
	}
	// Re-evaluating the committed set itself preserves the segmentation
	// the bounds were computed under, so the warm path must engage.
	if _, st, err := d.inc.Evaluate(context.Background(), d.scenarioFor(d.committed)); err != nil {
		t.Fatal(err)
	} else if !st.Warm || st.WarmStarts == 0 {
		t.Fatalf("committed-size re-evaluation did not warm-start: %+v", st)
	}
	// Probes still win through the term cache. The first probe at this
	// set size builds fresh terms (segment budgets depend on the task
	// count), so probe twice: the second must reuse every committed entry.
	probe := func(name string) EvalStats {
		cand := d.scenarioFor(append(append([]scenario.TaskSpec(nil), d.committed...),
			scenario.TaskSpec{Name: name, Model: "tinymlp", PeriodMs: 30}))
		_, st, err := d.inc.Evaluate(context.Background(), cand)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	if st := probe("p0"); st.Warm {
		t.Fatalf("prefetch-family probe warm-started at a new set size: %+v", st)
	}
	if st := probe("p1"); st.TasksBuilt != 1 || st.TasksReused != len(d.committed) {
		t.Fatalf("term cache missed on second probe: %+v", st)
	}
}

// TestIncrementalScreenStats pins the early-exit screen: an infeasible
// probe must be rejected by a necessary condition before any fixpoint.
func TestIncrementalScreenStats(t *testing.T) {
	d := newDiffDriver(t, "rt-mdm")
	if !d.add(scenario.TaskSpec{Name: "base", Model: "tinymlp", PeriodMs: 100}) {
		t.Fatal("base add rejected")
	}
	cand := d.scenarioFor(append(append([]scenario.TaskSpec(nil), d.committed...),
		scenario.TaskSpec{Name: "hog", Model: "lenet5", PeriodMs: 0.001}))
	v, st, err := d.inc.Evaluate(context.Background(), cand)
	if err != nil {
		t.Fatal(err)
	}
	if v.Schedulable || !st.Screened {
		t.Fatalf("infeasible probe not screened: v=%+v st=%+v", v, st)
	}
	if v.Test != "necessary-utilization" && v.Test != "necessary-demand" {
		t.Fatalf("unexpected screen test %q", v.Test)
	}
}

// TestIncrementalBindingReset: rebinding the analyzer to a different
// policy drops all warm state and still matches cold.
func TestIncrementalBindingReset(t *testing.T) {
	inc := NewIncrementalAnalyzer()
	mk := func(policy string) *scenario.Scenario {
		return (&scenario.Scenario{Policy: policy, Tasks: []scenario.TaskSpec{
			{Name: "a", Model: "tinymlp", PeriodMs: 100},
			{Name: "b", Model: "tinymlp", PeriodMs: 50},
		}}).Canonicalize()
	}
	for _, policy := range []string{"rt-mdm", "serial-segfp", "rt-mdm"} {
		cand := mk(policy)
		got, st, err := inc.Evaluate(context.Background(), cand)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := EvaluateScenario(context.Background(), cand)
		if !verdictsEqual(got, want) {
			t.Fatalf("%s diverged:\n inc: %+v\ncold: %+v", policy, got, want)
		}
		// Every evaluation after a rebind starts from an empty cache.
		if st.TasksReused != 0 || st.TasksBuilt != 2 {
			t.Fatalf("%s: expected cold cache after rebind, got %+v", policy, st)
		}
	}
}

// TestIncrementalErrorParity: every Build-path error the cold reference
// produces must come out of the analyzer verbatim.
func TestIncrementalErrorParity(t *testing.T) {
	cases := []*scenario.Scenario{
		{Tasks: []scenario.TaskSpec{{Name: "a", Model: "nope", PeriodMs: 10}}},
		{Tasks: []scenario.TaskSpec{{Name: "a", Model: "tinymlp", PeriodMs: -1}}},
		{Tasks: []scenario.TaskSpec{{Name: "a", PeriodMs: 10}}},
		{Tasks: []scenario.TaskSpec{{Name: "a", Model: "tinymlp", ModelFile: "x", PeriodMs: 10}}},
		{Tasks: []scenario.TaskSpec{}},
		{Policy: "bogus", Tasks: []scenario.TaskSpec{{Name: "a", Model: "tinymlp", PeriodMs: 10}}},
		{Platform: "bogus", Tasks: []scenario.TaskSpec{{Name: "a", Model: "tinymlp", PeriodMs: 10}}},
		{HorizonMs: 1e300, Tasks: []scenario.TaskSpec{{Name: "a", Model: "tinymlp", PeriodMs: 10}}},
		{Tasks: []scenario.TaskSpec{
			{Name: "a", Model: "tinymlp", PeriodMs: 10},
			{Name: "a", Model: "tinymlp", PeriodMs: 20}}},
	}
	// Pinned-mix error.
	p := 0
	cases = append(cases, &scenario.Scenario{Tasks: []scenario.TaskSpec{
		{Name: "a", Model: "tinymlp", PeriodMs: 10, Priority: &p},
		{Name: "b", Model: "tinymlp", PeriodMs: 20}}})

	for i, sc := range cases {
		inc := NewIncrementalAnalyzer()
		_, _, gotErr := inc.Evaluate(context.Background(), sc.Canonicalize())
		_, wantErr := EvaluateScenario(context.Background(), sc.Canonicalize())
		switch {
		case (gotErr == nil) != (wantErr == nil):
			t.Errorf("case %d: inc err %v, cold err %v", i, gotErr, wantErr)
		case gotErr == nil:
			t.Errorf("case %d: expected an error", i)
		case gotErr.Error() != wantErr.Error():
			t.Errorf("case %d: error text diverged:\n inc: %v\ncold: %v", i, gotErr, wantErr)
		}
	}
}

// TestScreenDecisionEquivalence: the admission screens may change the
// Test/Reason of a rejection but never flip a decision — any scenario the
// screen rejects must also fail the unscreened policy test.
func TestScreenDecisionEquivalence(t *testing.T) {
	for _, policy := range []string{"rt-mdm", "serial-segfp", "serial-npfp"} {
		for _, periodMs := range []float64{0.01, 0.15, 1, 5, 60} {
			sc := (&scenario.Scenario{Policy: policy, Tasks: []scenario.TaskSpec{
				{Name: "a", Model: "lenet5", PeriodMs: periodMs * 3},
				{Name: "b", Model: "tinymlp", PeriodMs: periodMs},
			}}).Canonicalize()
			screened, err := EvaluateScenario(context.Background(), sc)
			if err != nil {
				t.Fatal(err)
			}
			set, plat, pol, err := sc.Build()
			if err != nil {
				t.Fatal(err)
			}
			test, err := ForPolicy(pol)
			if err != nil {
				t.Fatal(err)
			}
			plain := test(set, plat)
			if screened.Schedulable != plain.Schedulable {
				t.Errorf("%s @%vms: screened=%t plain=%t (%s / %s)",
					policy, periodMs, screened.Schedulable, plain.Schedulable,
					screened.Test, plain.Test)
			}
		}
	}
}

// TestIncrementalConcurrent hammers one analyzer from many goroutines
// (the race-tier pin for the analyzer's mutable state): all evaluations
// of the same candidate must return the cold verdict.
func TestIncrementalConcurrent(t *testing.T) {
	inc := NewIncrementalAnalyzer()
	base := (&scenario.Scenario{Policy: "rt-mdm", Tasks: []scenario.TaskSpec{
		{Name: "a", Model: "tinymlp", PeriodMs: 200},
		{Name: "b", Model: "tinymlp", PeriodMs: 100},
	}}).Canonicalize()
	if _, _, err := inc.Evaluate(context.Background(), base); err != nil {
		t.Fatal(err)
	}
	inc.Commit(base)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cand := (&scenario.Scenario{Policy: "rt-mdm", Tasks: append(
				append([]scenario.TaskSpec(nil), base.Tasks...),
				scenario.TaskSpec{Name: fmt.Sprintf("p%d", g%3), Model: "tinymlp",
					PeriodMs: float64(30 + 10*(g%3))},
			)}).Canonicalize()
			got, _, err := inc.Evaluate(context.Background(), cand)
			if err != nil {
				t.Error(err)
				return
			}
			want, _ := EvaluateScenario(context.Background(), cand)
			if !verdictsEqual(got, want) {
				t.Errorf("goroutine %d diverged:\n inc: %+v\ncold: %+v", g, got, want)
			}
		}(g)
	}
	wg.Wait()
}
