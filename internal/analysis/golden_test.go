package analysis

import (
	"testing"

	"rtmdm/internal/cost"
	"rtmdm/internal/sim"
	"rtmdm/internal/task"
)

// Golden regression tests: exact WCRT bounds for a fixed scenario catalog.
// Any change to a blocking term, derating rule, jitter model or iteration
// scheme shows up here as a precise diff. (Values were derived from the
// analysis definitions in docs/ANALYSIS.md; the relative ordering —
// chunked ≤ rt-mdm ≤ segfp ≤ npfp ≤ fifo on the urgent task — is the
// structural claim.)
func TestGoldenWCRTBounds(t *testing.T) {
	plain := testPlat()
	con := testPlat()
	con.Bus = cost.Contention{CPUNum: 4, CPUDen: 5, DMANum: 4, DMADen: 5}
	sw := testPlat()
	sw.CPU.SwitchNs = 200

	type golden struct {
		hi, lo sim.Duration
	}
	cases := []struct {
		name string
		plat cost.Platform
		set  *task.Set
		want map[string]golden
		edf  bool
	}{
		{
			name: "two-task",
			plat: plain,
			set: task.NewSet(
				mkTask(plain, "hi", 20_000, 0, segSpec{1000, 1500}, segSpec{500, 2000}),
				mkTask(plain, "lo", 60_000, 1, segSpec{3000, 2500})),
			want: map[string]golden{
				"rtmdm": {10_000, 15_500},
				"segfp": {10_500, 15_500},
				"npfp":  {13_500, 15_500},
				"fifo":  {18_500, 15_500},
				"chunk": {8_000, 10_500},
			},
			edf: true,
		},
		{
			name: "contended",
			plat: con,
			set: task.NewSet(
				mkTask(con, "hi", 30_000, 0, segSpec{2000, 2000}),
				mkTask(con, "lo", 90_000, 1, segSpec{4000, 1000}, segSpec{1000, 4000})),
			want: map[string]golden{
				"rtmdm": {15_000, 22_500},
				"segfp": {15_000, 22_500},
				"npfp":  {22_500, 22_500},
				"fifo":  {27_500, 21_250},
				"chunk": {11_250, 17_500},
			},
			edf: true,
		},
		{
			name: "switchcost",
			plat: sw,
			set: task.NewSet(
				mkTask(sw, "hi", 25_000, 0, segSpec{800, 1200}, segSpec{800, 1200}),
				mkTask(sw, "lo", 70_000, 1, segSpec{2500, 2500})),
			want: map[string]golden{
				"rtmdm": {8_800, 9_600},
				"segfp": {9_600, 9_600},
				"npfp":  {12_100, 9_600},
				"fifo":  {16_500, 14_000},
				"chunk": {7_300, 9_600},
			},
			edf: true,
		},
	}

	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			run := map[string]Verdict{
				"rtmdm": RTMDMRTA(c.set, c.plat, 2),
				"segfp": SerialSegFPRTA(c.set, c.plat),
				"npfp":  SerialNPFPRTA(c.set, c.plat),
				"fifo":  RTMDMFIFORTA(c.set, c.plat, 2, 0),
				"chunk": RTMDMRTAChunked(c.set, c.plat, 2, 1000),
			}
			for name, want := range c.want {
				v := run[name]
				if !v.Schedulable {
					t.Errorf("%s: unexpectedly unschedulable (%s)", name, v.Reason)
					continue
				}
				if v.WCRT["hi"] != want.hi || v.WCRT["lo"] != want.lo {
					t.Errorf("%s: WCRT hi=%v lo=%v, want hi=%v lo=%v",
						name, v.WCRT["hi"], v.WCRT["lo"], want.hi, want.lo)
				}
			}
			// Structural ordering on the urgent task.
			hi := func(n string) sim.Duration { return run[n].WCRT["hi"] }
			if !(hi("chunk") <= hi("rtmdm") && hi("rtmdm") <= hi("segfp") &&
				hi("segfp") <= hi("npfp") && hi("npfp") <= hi("fifo")) {
				t.Errorf("urgent-task bound ordering violated: chunk=%v rtmdm=%v segfp=%v npfp=%v fifo=%v",
					hi("chunk"), hi("rtmdm"), hi("segfp"), hi("npfp"), hi("fifo"))
			}
			if got := RTMDMEDF(c.set, c.plat, 2).Schedulable; got != c.edf {
				t.Errorf("edf verdict %v, want %v", got, c.edf)
			}
		})
	}
}
