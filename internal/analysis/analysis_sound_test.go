package analysis

import (
	"fmt"
	"math/rand"
	"testing"

	"rtmdm/internal/core"
	"rtmdm/internal/cost"
	"rtmdm/internal/exec"
	"rtmdm/internal/sim"
	"rtmdm/internal/task"
)

// randomSet builds a deterministic pseudo-random synthetic task set with n
// tasks on platform p. Utilizations span the schedulability boundary so
// verdicts come out mixed.
func randomSet(p cost.Platform, seed int64, n int) *task.Set {
	rng := rand.New(rand.NewSource(seed*7919 + 17))
	var ts []*task.Task
	for i := 0; i < n; i++ {
		nseg := rng.Intn(4) + 1
		var specs []segSpec
		for k := 0; k < nseg; k++ {
			specs = append(specs, segSpec{
				bytes:   int64(rng.Intn(2500)),
				compute: int64(rng.Intn(2500) + 50),
			})
		}
		period := sim.Duration(rng.Intn(40_000) + 8_000)
		ts = append(ts, mkTask(p, fmt.Sprintf("t%d", i), period, i, specs...))
	}
	s := task.NewSet(ts...)
	s.AssignRM()
	return s
}

// withOffsets returns a copy of the set with pseudo-random release offsets.
// Analytical verdicts are offset-independent, so they must hold for any
// offset pattern.
func withOffsets(s *task.Set, seed int64) *task.Set {
	rng := rand.New(rand.NewSource(seed))
	var out []*task.Task
	for _, t := range s.Tasks {
		c := *t
		c.Offset = sim.Duration(rng.Intn(int(t.Period)))
		out = append(out, &c)
	}
	return task.NewSet(out...)
}

// withJitter returns a copy whose tasks carry maximal-entropy release
// jitter up to frac·T. Verdicts computed on the jittered set must hold for
// the executor's pseudo-random arrival delays.
func withJitter(s *task.Set, frac float64) *task.Set {
	var out []*task.Task
	for _, t := range s.Tasks {
		c := *t
		c.Jitter = sim.Duration(float64(t.Period) * frac)
		out = append(out, &c)
	}
	return task.NewSet(out...)
}

// PT-7: analysis soundness against the executor. Any task set an analysis
// deems schedulable must complete every job by its deadline in simulation —
// under synchronous release and under random offsets, with and without bus
// contention.
func TestPropertyAnalysisSoundAgainstExecutor(t *testing.T) {
	type pair struct {
		pol  core.Policy
		test func(*task.Set, cost.Platform) Verdict
	}
	pairs := []pair{
		{core.RTMDM(), func(s *task.Set, p cost.Platform) Verdict { return RTMDMRTA(s, p, 2) }},
		{core.RTMDMDepth(3), func(s *task.Set, p cost.Platform) Verdict { return RTMDMRTA(s, p, 3) }},
		{core.RTMDMDepth(4), func(s *task.Set, p cost.Platform) Verdict { return RTMDMRTA(s, p, 4) }},
		{core.RTMDMChunked(700), func(s *task.Set, p cost.Platform) Verdict { return RTMDMRTAChunked(s, p, 2, 700) }},
		{core.RTMDMFIFODMA(), func(s *task.Set, p cost.Platform) Verdict { return RTMDMFIFORTA(s, p, 2, 0) }},
		{core.SerialSegFP(), SerialSegFPRTA},
		{core.SerialNPFP(), SerialNPFPRTA},
		{core.RTMDMEDF(), func(s *task.Set, p cost.Platform) Verdict { return RTMDMEDF(s, p, 2) }},
	}
	// Heterogeneous per-task prefetch windows (extension T24): the same
	// soundness obligation with every task on its own depth — randomSet
	// names tasks t0..t4, so the map covers any generated size.
	hetPol := core.RTMDMPerTaskDepth(map[string]int{"t0": 3, "t1": 1, "t2": 4, "t3": 2, "t4": 3})
	hetTest, err := ForPolicy(hetPol)
	if err != nil {
		t.Fatal(err)
	}
	pairs = append(pairs, pair{hetPol, hetTest},
		pair{func() core.Policy {
			p := hetPol
			p.EDF = true
			return p
		}(), func(s *task.Set, p cost.Platform) Verdict {
			return RTMDMEDFDepths(s, p, func(tk *task.Task) int { return hetPol.DepthFor(tk.Name) })
		}})
	plats := []cost.Platform{testPlat()}
	con := testPlat()
	con.Bus = cost.Contention{CPUNum: 4, CPUDen: 5, DMANum: 4, DMADen: 5}
	plats = append(plats, con)
	sw := testPlat()
	sw.CPU.SwitchNs = 300 // context-switch overhead variant
	plats = append(plats, sw)

	trials := 60
	if testing.Short() {
		trials = 15
	}
	accepted := 0
	for trial := 0; trial < trials; trial++ {
		for pi, plat := range plats {
			base := randomSet(plat, int64(trial*10+pi), 2+trial%3)
			s := base
			if trial%3 == 1 {
				// Every third trial analyzes and runs a jittered variant:
				// the verdict must account for the executor's release
				// delays via the analyses' jitter terms.
				s = withJitter(base, 0.2)
			}
			for _, pr := range pairs {
				v := pr.test(s, plat)
				if !v.Schedulable {
					continue
				}
				accepted++
				horizon := s.Hyperperiod(1 * sim.Millisecond)
				if horizon < 300*sim.Microsecond {
					horizon = 300 * sim.Microsecond
				}
				for variant, ss := range map[string]*task.Set{
					"sync":    s,
					"offsets": withOffsets(s, int64(trial)),
				} {
					r, err := exec.Run(ss, plat, pr.pol, horizon)
					if err != nil {
						t.Fatalf("trial %d %s %s: %v", trial, pr.pol.Name, variant, err)
					}
					if r.Metrics.AnyMiss() {
						for name, tm := range r.Metrics.PerTask {
							t.Logf("  %s: rel=%d done=%d miss=%d maxResp=%v wcrt=%v",
								name, tm.Released, tm.Completed, tm.Misses,
								tm.MaxResponse, v.WCRT[name])
						}
						t.Fatalf("trial %d plat %d %s (%s, %s): analysis said schedulable but simulation missed",
							trial, pi, pr.pol.Name, v.Test, variant)
					}
					// WCRT bounds must also dominate observed responses.
					if v.WCRT != nil {
						for name, tm := range r.Metrics.PerTask {
							if bound, ok := v.WCRT[name]; ok && tm.MaxResponse > bound {
								t.Fatalf("trial %d %s %s: task %s observed %v > bound %v",
									trial, pr.pol.Name, variant, name, tm.MaxResponse, bound)
							}
						}
					}
				}
			}
		}
	}
	if accepted < trials/3 {
		t.Fatalf("only %d accepted verdicts across %d trials — workload too hard to exercise soundness", accepted, trials)
	}
}

// The analyses must also not be vacuous: across random sets each test
// accepts some and rejects some.
func TestAnalysesAreNotVacuous(t *testing.T) {
	p := testPlat()
	tests := map[string]func(*task.Set, cost.Platform) Verdict{
		"rtmdm": func(s *task.Set, pl cost.Platform) Verdict { return RTMDMRTA(s, pl, 2) },
		"segfp": SerialSegFPRTA,
		"npfp":  SerialNPFPRTA,
		"edf":   func(s *task.Set, pl cost.Platform) Verdict { return RTMDMEDF(s, pl, 2) },
	}
	acc := map[string]int{}
	rej := map[string]int{}
	for trial := 0; trial < 80; trial++ {
		s := randomSet(p, int64(trial), 3)
		for name, test := range tests {
			if test(s, p).Schedulable {
				acc[name]++
			} else {
				rej[name]++
			}
		}
	}
	for name := range tests {
		if acc[name] == 0 || rej[name] == 0 {
			t.Errorf("%s is vacuous: accepted %d rejected %d", name, acc[name], rej[name])
		}
	}
	// Dominance shape: RT-MDM accepts at least as many as the NP baseline.
	if acc["rtmdm"] < acc["npfp"] {
		t.Errorf("RT-MDM accepted %d < NP baseline %d", acc["rtmdm"], acc["npfp"])
	}
}

// TestOverlapDegradationRegression is the distilled counterexample that
// falsified the earlier pipeline-credit RTA for non-top tasks (stress
// trial 1440 shape): the higher-priority job's full prefetch window gates
// the lower job's staging even while the lower job computes, so the lower
// job's own computes hide none of its remaining loads and it degrades to
// its serial chain interleaved with the interferer. The current analysis
// must accept the set and its serial-based lower bound must dominate the
// observed response.
func TestOverlapDegradationRegression(t *testing.T) {
	p := testPlat()
	lo := &task.Task{Name: "lo", Plan: mkPlan(p,
		segSpec{1000, 3000}, segSpec{1000, 3000}, segSpec{1000, 3000}),
		Period: 50_000, Deadline: 50_000, Priority: 1}
	hi := &task.Task{Name: "hi", Plan: mkPlan(p,
		segSpec{500, 5000}, segSpec{500, 5000}, segSpec{500, 5000}),
		Period: 50_000, Deadline: 50_000, Offset: 500, Priority: 0}
	s := task.NewSet(lo, hi)

	v := RTMDMRTA(s, p, 2)
	if !v.Schedulable {
		t.Fatalf("verdict negative: %s", v.Reason)
	}
	r, err := exec.Run(s, p, core.RTMDM(), 50_000)
	if err != nil {
		t.Fatal(err)
	}
	obs := r.Metrics.PerTask["lo"].MaxResponse
	// The degradation is total here: lo's response is its serial chain
	// (12 µs) plus hi's entire two-resource demand (16.5 µs) minus only
	// the pre-release slice of lo's first compute (3.5 µs).
	if obs != 25_000 {
		t.Fatalf("lo observed %v, want 25000 (scenario drifted)", obs)
	}
	// lo's pipelined makespan is 10 µs; a bound of pipe + hi's ΣC+ΣL with
	// one interfering job would be 26.5 µs — barely above this instance,
	// which is why only the randomized stress caught the general case.
	// The serial-based bound must cover it with the fixpoint's window
	// count.
	if bound := v.WCRT["lo"]; obs > bound {
		t.Fatalf("lo observed %v exceeds bound %v", obs, bound)
	}
	if hiObs := r.Metrics.PerTask["hi"].MaxResponse; hiObs > v.WCRT["hi"] {
		t.Fatalf("hi observed %v exceeds bound %v", hiObs, v.WCRT["hi"])
	}
	if ratio := r.Metrics.TotalMissRatio(); ratio != 0 {
		t.Fatalf("accepted set missed deadlines (ratio %v)", ratio)
	}
}

// TestPropertyAnalysisMonotone pins two structural invariants of every
// fixed-priority test: bounds never improve when (a) the platform gets
// harsher (more bus contention, costlier context switches) or (b) a new
// highest-priority interferer is added. A violation would mean some term
// credits interference or derating as a benefit — historically the kind
// of sign error that survives spot checks.
func TestPropertyAnalysisMonotone(t *testing.T) {
	tests := []struct {
		name string
		run  func(*task.Set, cost.Platform) Verdict
	}{
		{"rtmdm", func(s *task.Set, p cost.Platform) Verdict { return RTMDMRTA(s, p, 2) }},
		{"rtmdm-d3", func(s *task.Set, p cost.Platform) Verdict { return RTMDMRTA(s, p, 3) }},
		{"chunked", func(s *task.Set, p cost.Platform) Verdict { return RTMDMRTAChunked(s, p, 2, 500) }},
		{"segfp", SerialSegFPRTA},
		{"npfp", SerialNPFPRTA},
		{"fifo", func(s *task.Set, p cost.Platform) Verdict { return RTMDMFIFORTA(s, p, 2, 0) }},
	}
	plat := testPlat()
	harsh := testPlat()
	harsh.Bus = cost.Contention{CPUNum: 3, CPUDen: 4, DMANum: 3, DMADen: 4}
	harsh.CPU.SwitchNs += 150

	for trial := 0; trial < 80; trial++ {
		s := randomSet(plat, int64(trial)*104729+5, 2+trial%3)
		// The interferer: shorter period than anything randomSet emits,
		// so rate-monotonic assignment puts it on top and leaves the
		// existing relative order untouched.
		intf := mkTask(plat, "aintf", 4000, 0, segSpec{300, 400})
		grown := task.NewSet(append([]*task.Task{intf}, s.Tasks...)...)
		grown.AssignRM()

		for _, tc := range tests {
			base := tc.run(s, plat)
			for variant, v := range map[string]Verdict{
				"harsher-platform": tc.run(s, harsh),
				"added-interferer": tc.run(grown, plat),
			} {
				if !base.Schedulable {
					continue // nothing to compare: base bounds are partial
				}
				if v.Schedulable {
					for _, tk := range s.Tasks {
						if v.WCRT[tk.Name] < base.WCRT[tk.Name] {
							t.Fatalf("trial %d %s/%s: task %s bound improved %v -> %v",
								trial, tc.name, variant, tk.Name,
								base.WCRT[tk.Name], v.WCRT[tk.Name])
						}
					}
				}
			}
			// Monotone verdicts: a set the analysis rejects must stay
			// rejected on the harsher platform.
			if !base.Schedulable && tc.run(s, harsh).Schedulable {
				t.Fatalf("trial %d %s: rejected set accepted under harsher platform", trial, tc.name)
			}
		}
	}
}

// TestHeterogeneousDepthAnalysisRelations pins the directional effects of
// per-task windows on the bounds: deepening a LOWER task's window can only
// raise the top task's bound (more staged inventory to block with), while
// deepening the TOP task's own window can only lower its bound (deeper
// pipeline, same blocking).
func TestHeterogeneousDepthAnalysisRelations(t *testing.T) {
	plat := testPlat()
	hi := mkTask(plat, "hi", 20_000, 0,
		segSpec{800, 900}, segSpec{800, 900}, segSpec{800, 900})
	lo := mkTask(plat, "lo", 60_000, 1,
		segSpec{1500, 1200}, segSpec{1500, 1200}, segSpec{1500, 1200}, segSpec{1500, 1200})
	s := task.NewSet(hi, lo)

	depths := func(h, l int) func(*task.Task) int {
		return func(tk *task.Task) int {
			if tk.Name == "hi" {
				return h
			}
			return l
		}
	}
	uniform := RTMDMRTA(s, plat, 2)
	if !uniform.Schedulable {
		t.Fatalf("baseline unschedulable: %s", uniform.Reason)
	}
	deepLo := RTMDMRTADepths(s, plat, depths(2, 4))
	if deepLo.WCRT["hi"] < uniform.WCRT["hi"] {
		t.Fatalf("deeper lower window lowered hi bound: %v < %v",
			deepLo.WCRT["hi"], uniform.WCRT["hi"])
	}
	deepHi := RTMDMRTADepths(s, plat, depths(4, 2))
	if deepHi.WCRT["hi"] > uniform.WCRT["hi"] {
		t.Fatalf("deeper own window raised hi bound: %v > %v",
			deepHi.WCRT["hi"], uniform.WCRT["hi"])
	}
	// The het analysis at uniform depths must agree exactly with the
	// uniform analysis.
	same := RTMDMRTADepths(s, plat, depths(2, 2))
	for name, want := range uniform.WCRT {
		if same.WCRT[name] != want {
			t.Fatalf("uniform-depth het analysis diverged on %s: %v != %v",
				name, same.WCRT[name], want)
		}
	}
	// EDF counterpart: uniform-depth agreement.
	eu := RTMDMEDF(s, plat, 2)
	eh := RTMDMEDFDepths(s, plat, depths(2, 2))
	if eu.Schedulable != eh.Schedulable {
		t.Fatalf("EDF het/uniform verdicts diverge: %v vs %v", eu.Schedulable, eh.Schedulable)
	}
}
