package analysis

import (
	"testing"

	"rtmdm/internal/core"
	"rtmdm/internal/cost"
	"rtmdm/internal/segment"
	"rtmdm/internal/sim"
	"rtmdm/internal/task"
)

// testPlat: 1 byte/ns memory with zero setup, 1:1 CPU, no contention.
func testPlat() cost.Platform {
	return cost.Platform{
		Name:           "test",
		CPU:            cost.CPUProfile{Name: "cpu", Hz: 1_000_000_000, DefaultMACsPerCycle: 1},
		Mem:            cost.MemProfile{Name: "mem", BandwidthBps: 1_000_000_000, SetupNs: 0},
		SRAMBytes:      1 << 20,
		WeightBufBytes: 1 << 19,
		Bus:            cost.NoContention(),
	}
}

type segSpec struct{ bytes, compute int64 }

func mkPlan(p cost.Platform, specs ...segSpec) *segment.Plan {
	pl := &segment.Plan{Platform: p, BudgetBytes: 1 << 19}
	for i, s := range specs {
		pl.Segments = append(pl.Segments, segment.Segment{
			Index:     i,
			Parts:     []segment.Part{{Node: i, Num: 1, Den: 1}},
			LoadBytes: s.bytes,
			ComputeNs: s.compute,
			LoadNs:    p.Mem.TransferNs(s.bytes),
		})
	}
	return pl
}

func mkTask(p cost.Platform, name string, period sim.Duration, prio int, specs ...segSpec) *task.Task {
	return &task.Task{Name: name, Plan: mkPlan(p, specs...),
		Period: period, Deadline: period, Priority: prio}
}

func TestSingleTaskWCRTEqualsOwnDemand(t *testing.T) {
	p := testPlat()
	tk := mkTask(p, "a", 10_000, 0, segSpec{1000, 1000}, segSpec{1000, 1000})
	s := task.NewSet(tk)

	v := RTMDMRTA(s, p, 2)
	if !v.Schedulable {
		t.Fatalf("not schedulable: %s", v.Reason)
	}
	// No lower tasks → no blocking; WCRT = pipelined WCET = 3000.
	if v.WCRT["a"] != 3000 {
		t.Fatalf("RTMDM WCRT = %v, want 3000", v.WCRT["a"])
	}

	v = SerialSegFPRTA(s, p)
	if v.WCRT["a"] != 4000 {
		t.Fatalf("serial WCRT = %v, want 4000", v.WCRT["a"])
	}

	v = SerialNPFPRTA(s, p)
	if v.WCRT["a"] != 4000 {
		t.Fatalf("NP WCRT = %v, want 4000", v.WCRT["a"])
	}
}

func TestSingleTaskUnschedulableWhenDemandExceedsDeadline(t *testing.T) {
	p := testPlat()
	tk := mkTask(p, "a", 2500, 0, segSpec{1000, 1000}, segSpec{1000, 1000})
	s := task.NewSet(tk)
	if v := RTMDMRTA(s, p, 2); v.Schedulable {
		t.Fatal("pipe WCET 3000 > D 2500 deemed schedulable")
	}
}

func TestRTMDMBeatsSerialOnLoadHeavySet(t *testing.T) {
	p := testPlat()
	// A load-dominated high-priority task whose pipelined demand fits its
	// deadline while the serial demand (plus blocking) does not.
	a := &task.Task{Name: "a",
		Plan:   mkPlan(p, segSpec{2000, 1800}, segSpec{2000, 1800}, segSpec{2000, 1800}),
		Period: 24_000, Deadline: 12_000, Priority: 0}
	b := mkTask(p, "b", 30_000, 1, segSpec{800, 700}, segSpec{800, 700})
	s := task.NewSet(a, b)

	rtmdm := RTMDMRTA(s, p, 2)
	np := SerialNPFPRTA(s, p)
	seg := SerialSegFPRTA(s, p)
	if !rtmdm.Schedulable {
		t.Fatalf("RTMDM should accept this set: %s (WCRT %v)", rtmdm.Reason, rtmdm.WCRT)
	}
	// Exact arithmetic: a's pipelined demand is 7800; CPU blocking =
	// min(3 stalls × 700, b's 2-segment inventory 1400) = 1400; DMA
	// blocking = 800 → 10000.
	if rtmdm.WCRT["a"] != 10_000 {
		t.Fatalf("RTMDM WCRT[a] = %v, want 10000", rtmdm.WCRT["a"])
	}
	if np.Schedulable {
		t.Fatalf("NP baseline should reject this set (WCRT %v)", np.WCRT)
	}
	if seg.Schedulable {
		t.Fatalf("serial seg baseline should reject this set (WCRT %v)", seg.WCRT)
	}
}

func TestBlockingTermsOrderDependence(t *testing.T) {
	p := testPlat()
	// The highest-priority task's bound includes lower-priority blocking;
	// the lowest-priority task's includes none.
	hi := mkTask(p, "hi", 50_000, 0, segSpec{500, 500})
	lo := mkTask(p, "lo", 200_000, 1, segSpec{4000, 4000})
	s := task.NewSet(hi, lo)
	v := RTMDMRTA(s, p, 2)
	if !v.Schedulable {
		t.Fatal(v.Reason)
	}
	// hi: pipe(1000) + blkC(4000)+blkL(4000) both in base and in the load
	// inflation → strictly more than its own 1000.
	if v.WCRT["hi"] <= 1000 {
		t.Fatalf("hi WCRT %v ignores blocking", v.WCRT["hi"])
	}
	// lo has no lower tasks: base is its pipe plus hi interference.
	if v.WCRT["lo"] < 8000 {
		t.Fatalf("lo WCRT %v below its own demand", v.WCRT["lo"])
	}
}

func TestNecessaryUtilization(t *testing.T) {
	p := testPlat()
	ok := task.NewSet(mkTask(p, "a", 10_000, 0, segSpec{1000, 1000}))
	if v := NecessaryUtilization(ok, p); !v.Schedulable {
		t.Fatalf("feasible set rejected: %s", v.Reason)
	}
	over := task.NewSet(mkTask(p, "a", 1500, 0, segSpec{100, 2000}))
	if v := NecessaryUtilization(over, p); v.Schedulable {
		t.Fatal("CPU-overloaded set accepted")
	}
	dmaOver := task.NewSet(mkTask(p, "a", 1500, 0, segSpec{3000, 100}))
	if v := NecessaryUtilization(dmaOver, p); v.Schedulable {
		t.Fatal("DMA-overloaded set accepted")
	}
}

func TestContentionDeratesAnalysis(t *testing.T) {
	pNo := testPlat()
	pCon := testPlat()
	pCon.Bus = cost.Contention{CPUNum: 1, CPUDen: 2, DMANum: 1, DMADen: 2}
	tk := mkTask(pNo, "a", 10_000, 0, segSpec{1000, 1000})
	s := task.NewSet(tk)
	rNo := RTMDMRTA(s, pNo, 2).WCRT["a"]
	rCon := RTMDMRTA(s, pCon, 2).WCRT["a"]
	if rCon <= rNo {
		t.Fatalf("contention did not inflate WCRT: %v vs %v", rCon, rNo)
	}
	// Full 2× derating on a single-segment task: load 2000 + comp 2000.
	if rCon != 4000 {
		t.Fatalf("derated WCRT = %v, want 4000", rCon)
	}
}

func TestEDFTestAcceptsAndRejects(t *testing.T) {
	p := testPlat()
	light := task.NewSet(
		mkTask(p, "a", 20_000, 0, segSpec{1000, 1000}),
		mkTask(p, "b", 30_000, 1, segSpec{1000, 1000}),
	)
	if v := RTMDMEDF(light, p, 2); !v.Schedulable {
		t.Fatalf("light set rejected: %s", v.Reason)
	}
	heavy := task.NewSet(
		mkTask(p, "a", 2500, 0, segSpec{1000, 1000}),
		mkTask(p, "b", 2500, 1, segSpec{1000, 1000}),
	)
	if v := RTMDMEDF(heavy, p, 2); v.Schedulable {
		t.Fatal("overloaded set accepted by EDF test")
	}
}

// PT-6: schedulability is monotone — relaxing periods never flips a
// schedulable verdict to unschedulable.
func TestPropertyMonotoneInPeriod(t *testing.T) {
	p := testPlat()
	tests := []func(*task.Set, cost.Platform) Verdict{
		func(s *task.Set, pl cost.Platform) Verdict { return RTMDMRTA(s, pl, 2) },
		SerialSegFPRTA,
		SerialNPFPRTA,
		func(s *task.Set, pl cost.Platform) Verdict { return RTMDMEDF(s, pl, 2) },
	}
	for trial := 0; trial < 40; trial++ {
		s := randomSet(p, int64(trial), 3)
		for ti, test := range tests {
			before := test(s, p)
			if !before.Schedulable {
				continue
			}
			relaxed := scalePeriods(s, 2)
			after := test(relaxed, p)
			if !after.Schedulable {
				t.Fatalf("trial %d test %d: schedulable at T but not 2T (%s)",
					trial, ti, after.Reason)
			}
		}
	}
}

func scalePeriods(s *task.Set, f sim.Duration) *task.Set {
	var out []*task.Task
	for _, t := range s.Tasks {
		c := *t
		c.Period *= f
		c.Deadline *= f
		out = append(out, &c)
	}
	return task.NewSet(out...)
}

func TestForPolicyMapping(t *testing.T) {
	cases := []struct {
		pol  core.Policy
		want string
		err  bool
	}{
		{core.RTMDM(), "rta-rtmdm-d2", false},
		{core.RTMDMDepth(3), "rta-rtmdm-d3", false},
		{core.SerialSegFP(), "rta-serial-segfp", false},
		{core.SerialNPFP(), "rta-serial-npfp", false},
		{core.RTMDMEDF(), "edf-rtmdm-d2", false},
		{core.RTMDMFIFODMA(), "rta-rtmdm-fifo-d2", false},
		{core.SerialSegEDF(), "", true},
	}
	p := testPlat()
	s := task.NewSet(mkTask(p, "a", 10_000, 0, segSpec{100, 100}))
	for _, c := range cases {
		fn, err := ForPolicy(c.pol)
		if c.err {
			if err == nil {
				t.Errorf("%s: expected error", c.pol.Name)
			}
			continue
		}
		if err != nil {
			t.Errorf("%s: %v", c.pol.Name, err)
			continue
		}
		if v := fn(s, p); v.Test != c.want {
			t.Errorf("%s: test %q, want %q", c.pol.Name, v.Test, c.want)
		}
	}
}

func TestAudsleyFindsAssignmentAndRestoresOnFailure(t *testing.T) {
	p := testPlat()
	// Easily schedulable: OPA must succeed regardless of initial order.
	a := mkTask(p, "a", 50_000, 5, segSpec{500, 500})
	b := mkTask(p, "b", 100_000, 3, segSpec{500, 500})
	c := mkTask(p, "c", 200_000, 9, segSpec{500, 500})
	s := task.NewSet(a, b, c)
	test := func(ss *task.Set, pl cost.Platform) Verdict { return RTMDMRTAForOPA(ss, pl, 2) }
	if !Audsley(s, p, test) {
		t.Fatal("Audsley failed on a trivially schedulable set")
	}
	// Result priorities are a permutation of 0..n-1 and schedulable.
	seen := map[int]bool{}
	for _, tk := range s.Tasks {
		seen[tk.Priority] = true
	}
	if !seen[0] || !seen[1] || !seen[2] {
		t.Fatalf("priorities not 0..2: a=%d b=%d c=%d", a.Priority, b.Priority, c.Priority)
	}
	if v := RTMDMRTAForOPA(s, p, 2); !v.Schedulable {
		t.Fatalf("OPA result not schedulable: %s", v.Reason)
	}

	// Impossible set: restore original priorities.
	x := mkTask(p, "x", 1500, 7, segSpec{1000, 1000})
	y := mkTask(p, "y", 1500, 4, segSpec{1000, 1000})
	s2 := task.NewSet(x, y)
	if Audsley(s2, p, test) {
		t.Fatal("Audsley succeeded on an infeasible set")
	}
	if x.Priority != 7 || y.Priority != 4 {
		t.Fatal("priorities not restored after OPA failure")
	}
}

func TestAudsleyBeatsNaiveOrderSometimes(t *testing.T) {
	p := testPlat()
	// A blocking-sensitive case: the long-segment task placed at high
	// priority blocks nothing but suffers nothing; at low priority its
	// giant np segments blow up everyone's blocking term. OPA should find
	// the good ordering even from a bad initial assignment.
	big := mkTask(p, "big", 100_000, 0, segSpec{9000, 9000})   // huge np regions
	small := mkTask(p, "small", 25_000, 1, segSpec{300, 2500}) // tight period
	s := task.NewSet(big, small)
	// As given (big = prio 0): small is fine (it's lower, no blocking from
	// below... actually small suffers interference from big). Check OPA
	// just finds some schedulable order.
	test := func(ss *task.Set, pl cost.Platform) Verdict { return RTMDMRTAForOPA(ss, pl, 2) }
	if !Audsley(s, p, test) {
		t.Skip("set not schedulable under any order for this test's parameters")
	}
	if v := RTMDMRTAForOPA(s, p, 2); !v.Schedulable {
		t.Fatalf("OPA accepted but verdict unschedulable: %+v", v.WCRT)
	}
}

func TestVerdictOnInvalidSet(t *testing.T) {
	p := testPlat()
	v := RTMDMRTA(task.NewSet(), p, 2)
	if v.Schedulable || v.Reason == "" {
		t.Fatal("empty set produced a positive/silent verdict")
	}
}

func TestFIFORTAIsMorePessimisticThanGatedForUrgentTask(t *testing.T) {
	p := testPlat()
	// For the most urgent task, FIFO turns one lower-priority blocking
	// region into repeated lower-task DMA interference, so its bound must
	// be ≥ the gated bound. (Lower tasks can compare either way: the
	// gated analysis pays the gate-idle term that FIFO avoids.)
	for trial := 0; trial < 20; trial++ {
		s := randomSet(p, int64(trial)+4242, 3)
		hi := s.ByPriority()[0].Name
		gated := RTMDMRTA(s, p, 2)
		fifo := RTMDMFIFORTA(s, p, 2, 0)
		rg, okG := gated.WCRT[hi]
		rf, okF := fifo.WCRT[hi]
		if okG && okF && rf < rg {
			t.Fatalf("trial %d: FIFO bound %v < gated bound %v for urgent %s", trial, rf, rg, hi)
		}
	}
}

func TestBreakdownFactor(t *testing.T) {
	p := testPlat()
	// Single task with demand 2000 and period 10000: RTMDM accepts up to
	// α ≈ 10000/2000 = 5 (pipe = 2000 = load 1000 ∥ hidden? single
	// segment: pipe = serial = 2000 → breakdown α = 5).
	s := task.NewSet(mkTask(p, "a", 10_000, 0, segSpec{1000, 1000}))
	test := func(ss *task.Set, pl cost.Platform) Verdict { return RTMDMRTA(ss, pl, 2) }
	alpha := BreakdownFactor(s, p, test, 0.01)
	if alpha < 4.9 || alpha > 5.01 {
		t.Fatalf("breakdown α = %v, want ≈ 5.0", alpha)
	}
	// An over-subscribed set breaks below 1.
	tight := task.NewSet(mkTask(p, "a", 1500, 0, segSpec{1000, 1000}))
	a2 := BreakdownFactor(tight, p, test, 0.01)
	if a2 >= 1 {
		t.Fatalf("over-subscribed breakdown α = %v, want < 1", a2)
	}
	// Breakdown ordering matches analysis dominance: RT-MDM ≥ NP baseline.
	mixed := task.NewSet(
		mkTask(p, "a", 20_000, 0, segSpec{2000, 2000}, segSpec{2000, 2000}),
		mkTask(p, "b", 50_000, 1, segSpec{1000, 1000}),
	)
	aRT := BreakdownFactor(mixed, p, test, 0.01)
	aNP := BreakdownFactor(mixed, p, SerialNPFPRTA, 0.01)
	if aRT < aNP {
		t.Fatalf("RT-MDM breakdown %v < NP %v", aRT, aNP)
	}
}

func TestBreakdownFactorInfeasibleSetIsZero(t *testing.T) {
	p := testPlat()
	// Demand so large that even near-zero rates fail (deadline < WCET at
	// any α ≥ 1e-3... period scaled UP by 1/α → huge deadlines pass).
	// Construct failure via deadline cap: deadline > period impossible, so
	// use a set whose pipe exceeds any deadline reachable: not possible by
	// scaling alone; instead check the trivial acceptance floor.
	s := task.NewSet(mkTask(p, "a", 10_000, 0, segSpec{1000, 1000}))
	test := func(ss *task.Set, pl cost.Platform) Verdict { return RTMDMRTA(ss, pl, 2) }
	if BreakdownFactor(s, p, test, 0.05) <= 0 {
		t.Fatal("feasible set reported zero breakdown")
	}
}
