// Package analysis provides the offline schedulability tests of the RT-MDM
// framework: response-time analyses (RTA) for the fixed-priority policies
// (RT-MDM pipelined, serial segment-preemptive, whole-job non-preemptive),
// a processor-demand test for the EDF variants, utilization-based necessary
// tests, and Audsley's optimal priority assignment on top of any of the
// FP tests.
//
// # Model and soundness
//
// The executor (internal/exec) is a two-resource limited-preemptive system:
// segment computes are non-preemptive CPU regions and parameter transfers
// are non-preemptive DMA regions; a job self-suspends whenever its next
// segment is not yet staged. The analyses here make conservative choices at
// every known pitfall of that model:
//
//   - Self-suspension: higher-priority interference carries a release
//     jitter J_h = R_h (its full response bound — an upper bound on
//     R_h − BCET_h), which soundly covers back-to-back interference
//     bursts from suspending tasks without needing best-case execution
//     times.
//   - Blocking: the executor's priority-gated DMA issuing means a job
//     waits for at most one in-flight lower-priority transfer over its
//     lifetime (DMA blocking once), and lower-priority tasks cannot stage
//     new segments while a more urgent job has loads remaining — so the
//     total lower-priority CPU blocking is bounded by the lower tasks'
//     staged *inventory* at release (at most Depth segments per lower
//     task) and, independently, by one non-preemptive overhang per stall.
//     The analyses charge min(stalls·maxSegC, Σ inventory) as a lump sum;
//     injecting total delay D into a chain's load stages shifts its
//     makespan by at most D, so the lump-sum charge is sound.
//   - Bus contention: every CPU and DMA term is derated by the platform's
//     worst-case contention factors, as if the other party were always on
//     the bus.
//   - Two-resource interference: a higher-priority job charges its full
//     CPU plus DMA demand (ΣC+ΣL); either can sit on the analyzed job's
//     critical path.
//
// Property test PT-7 (analysis_sound_test.go) checks every verdict against
// synchronous-release simulation: no set deemed schedulable may ever miss.
package analysis

import (
	"context"
	"fmt"
	"sort"

	"rtmdm/internal/core"
	"rtmdm/internal/cost"
	"rtmdm/internal/sim"
	"rtmdm/internal/task"
)

// cancelPollInterval is how many loop iterations (busy-period checkpoints,
// fixpoint rounds) the analyses run between context polls. Polling is
// amortized so a completed analysis is bit-identical with or without a
// deadline on the context.
const cancelPollInterval = 256

// canceled polls ctx without allocating; it is the guard the long
// analysis loops check every cancelPollInterval iterations.
//
//rtmdm:hotpath
func canceled(ctx context.Context) bool {
	return ctx != nil && ctx.Err() != nil
}

// canceledVerdict is the uniform outcome of an aborted analysis: never
// schedulable, with the context's error as the reason.
func canceledVerdict(name string, ctx context.Context) Verdict {
	return Verdict{Test: name, Reason: "canceled: " + ctx.Err().Error()}
}

// Verdict is the outcome of one schedulability test on one task set.
type Verdict struct {
	// Test names the analysis that produced the verdict.
	Test string
	// Schedulable is the offline guarantee.
	Schedulable bool
	// WCRT maps task name → response-time upper bound. Tasks whose bound
	// exceeded their deadline (or diverged) carry the value that first
	// crossed the deadline; only present for RTA-based tests.
	WCRT map[string]sim.Duration
	// Reason explains a negative verdict.
	Reason string
}

const maxIterations = 4096

// derate returns the worst-case contention-scaled value ceil(v·den/num).
func derate(v, num, den int64) int64 {
	if num == den {
		return v
	}
	return (v*den + num - 1) / num
}

// terms precomputes per-task quantities under a platform's contention.
type terms struct {
	t *task.Task
	// sumC and sumL are the total CPU and DMA demand of one job, derated.
	sumC, sumL int64
	// maxSegC and maxSegL are the largest non-preemptive regions, derated.
	maxSegC, maxSegL int64
	// segs is the number of segments; loads counts real (non-zero)
	// parameter transfers.
	segs, loads int
	// segC holds the derated per-segment compute times, descending.
	segC []int64
}

// mkTerms precomputes per-task terms; chunkBytes > 0 accounts for
// limited-preemption DMA (chunked transfers): per-segment load times pay a
// setup per chunk, and the non-preemptive DMA region shrinks to one chunk.
func mkTerms(s *task.Set, plat cost.Platform, chunkBytes int64) []terms {
	// Context switches are CPU work: charge one (derated) switch per
	// segment everywhere — an upper bound on the executor, which pays
	// only on actual job changes.
	sw := derate(plat.CPU.SwitchNs, plat.Bus.CPUNum, plat.Bus.CPUDen)
	out := make([]terms, len(s.Tasks))
	for i, t := range s.Tasks {
		pl := t.Plan.Chunked(chunkBytes)
		tm := terms{
			t:       t,
			sumC:    derate(pl.TotalComputeNs(), plat.Bus.CPUNum, plat.Bus.CPUDen) + sw*int64(t.NumSegments()),
			sumL:    derate(pl.TotalLoadNs(), plat.Bus.DMANum, plat.Bus.DMADen),
			maxSegC: derate(pl.MaxComputeNs(), plat.Bus.CPUNum, plat.Bus.CPUDen) + sw,
			maxSegL: derate(t.Plan.MaxChunkNs(chunkBytes), plat.Bus.DMANum, plat.Bus.DMADen),
			segs:    t.NumSegments(),
		}
		for _, seg := range pl.Segments {
			tm.segC = append(tm.segC, derate(seg.ComputeNs, plat.Bus.CPUNum, plat.Bus.CPUDen)+sw)
			if seg.LoadNs > 0 {
				tm.loads++
			}
		}
		sort.Slice(tm.segC, func(a, b int) bool { return tm.segC[a] > tm.segC[b] })
		out[i] = tm
	}
	return out
}

// switchCost returns the derated per-segment context-switch charge.
func switchCost(plat cost.Platform) int64 {
	return derate(plat.CPU.SwitchNs, plat.Bus.CPUNum, plat.Bus.CPUDen)
}

// inventoryC bounds the staged-but-uncomputed CPU work a task can hold
// when a more urgent job releases: its `depth` largest segments.
func (tm *terms) inventoryC(depth int) int64 {
	if depth > len(tm.segC) {
		depth = len(tm.segC)
	}
	var sum int64
	for k := 0; k < depth; k++ {
		sum += tm.segC[k]
	}
	return sum
}

// cpuBlocking bounds the total lower-priority CPU blocking of task i:
// one overhang per stall (stalls ≤ real loads, with a floor of one for the
// release instant) and, independently, the lower tasks' total staged
// inventory — each lower task holding at most depthAt(k) segments (its own
// prefetch window, which may differ per task under heterogeneous depths).
func cpuBlocking(ts []terms, i int, depthAt func(int) int) int64 {
	blkC, _ := lowerMax(ts, i)
	stalls := int64(ts[i].loads)
	if stalls < 1 {
		stalls = 1
	}
	perStall := stalls * blkC
	var inv int64
	for k := i + 1; k < len(ts); k++ {
		inv += ts[k].inventoryC(depthAt(k))
	}
	if inv < perStall {
		return inv
	}
	return perStall
}

// uniformDepth adapts a constant buffer depth to cpuBlocking's shape.
func uniformDepth(d int) func(int) int { return func(int) int { return d } }

// rtaIterate solves R = base + Σ_h ceil((R+J_h)/T_h)·I_h by fixpoint
// iteration, returning (R, true) on convergence within the deadline and
// (lastR, false) otherwise.
func rtaIterate(base int64, deadline sim.Duration, hp []hpTerm) (sim.Duration, bool) {
	return rtaIterateFrom(base, base, deadline, hp)
}

// rtaIterateFrom is rtaIterate with an explicit starting point. Cold
// callers pass start == base; the incremental analyzer passes a previous
// converged bound (see incremental.go for the monotonicity argument that
// makes any start in [base, lfp] land on the same least fixpoint).
//
//rtmdm:hotpath
func rtaIterateFrom(start, base int64, deadline sim.Duration, hp []hpTerm) (sim.Duration, bool) {
	r := start
	for iter := 0; iter < maxIterations; iter++ {
		var interf int64
		for _, h := range hp {
			n := (r + h.jitter + int64(h.period) - 1) / int64(h.period)
			if n < 0 {
				n = 0
			}
			interf += n * h.demand
		}
		next := base + interf
		if next == r {
			return sim.Duration(r), sim.Duration(r) <= deadline
		}
		r = next
		if sim.Duration(r) > deadline {
			return sim.Duration(r), false
		}
	}
	return sim.Duration(r), false
}

// coldIterations bounds the iteration count rtaIterate(base, …) needs to
// reach the converged value r: the fixpoint sequence from base is
// strictly increasing, each non-final step bumps at least one
// higher-priority arrival count, and detecting convergence costs two
// more rounds — so 2 + Σ_h (n_h(r) − n_h(base)) iterations suffice. The
// warm path uses it to prove the cold run would NOT have hit the
// maxIterations cap before trusting a warm-started convergence.
//
//rtmdm:hotpath
func coldIterations(r, base int64, hp []hpTerm) int {
	// Accumulate in int64, clamped at maxIterations: nanosecond-scale
	// periods under large response bounds make n_h(r) − n_h(base) reach
	// ~1e18, which a conversion to a 32-bit int would wrap negative —
	// letting the warm path trust a convergence the cold run would have
	// reported as an iteration-budget failure.
	iters := int64(2)
	for _, h := range hp {
		nr := (r + h.jitter + int64(h.period) - 1) / int64(h.period)
		nb := (base + h.jitter + int64(h.period) - 1) / int64(h.period)
		if nr < 0 {
			nr = 0
		}
		if nb < 0 {
			nb = 0
		}
		d := nr - nb
		if d >= maxIterations {
			return maxIterations
		}
		iters += d
		if iters >= maxIterations {
			return maxIterations
		}
	}
	return int(iters)
}

// admitOpts carries the admission-path extensions threaded through the
// FP analyses. nil (every cold caller) is the plain analysis; the
// admission paths enable the necessary-condition screen, and the
// incremental analyzer additionally supplies cached demands and warm
// fixpoint starts. All three extensions preserve bit-identical verdicts:
// the screen only fires where the fixpoint provably fails (and is
// applied by cold and warm admission paths alike), cached demands are
// values of the same pure computation, and warm starts are guarded by
// cold replays (see warmIterate).
type admitOpts struct {
	// screen enables the pre-fixpoint demand screen: any task whose base
	// (blocking + own demand) already exceeds its deadline yields a
	// necessary-demand verdict before any fixpoint runs.
	screen bool
	// demandFor overrides the per-task own-demand computation with cached
	// values; nil computes from the plan. The index is the task's
	// priority-order position; depth is the pipeline depth the analysis
	// would have used.
	demandFor func(i, depth int) int64
	// warm supplies previous converged bounds as fixpoint starts.
	warm *warmState
}

// warmState is the fixpoint warm-start hook of an IncrementalAnalyzer
// evaluation: start returns the previously converged WCRT for a task
// name, and warmStarts counts the fixpoints that actually used one.
type warmState struct {
	start      func(name string) (int64, bool)
	warmStarts int
}

// warmIterate is the guarded warm-start wrapper around the RTA fixpoint:
// it starts from the previous converged bound when one is available and
// sound to use, and replays the cold iteration whenever the warm run
// cannot be proven bit-identical — on non-convergence (the cold run's
// deadline-crossing VALUE differs from the warm run's) and when the cold
// iteration count could have hit the maxIterations cap (where cold
// reports failure at a value warm convergence would mask).
//
//rtmdm:hotpath
func warmIterate(base int64, deadline sim.Duration, hp []hpTerm, name string, opt *admitOpts) (sim.Duration, bool) {
	if opt == nil || opt.warm == nil {
		return rtaIterate(base, deadline, hp)
	}
	start, ok := opt.warm.start(name)
	if !ok || start <= base || sim.Duration(start) > deadline {
		return rtaIterate(base, deadline, hp)
	}
	r, converged := rtaIterateFrom(start, base, deadline, hp)
	if !converged || coldIterations(int64(r), base, hp) >= maxIterations {
		return rtaIterate(base, deadline, hp)
	}
	opt.warm.warmStarts++
	return r, true
}

// demandScreenVerdict is the uniform outcome of the pre-fixpoint demand
// screen: task t's blocking plus own demand already exceeds its deadline,
// a necessary condition for the FP-RTA verdict to fail (the fixpoint
// starts at base and never decreases), so rejecting here cannot change an
// admission decision — only the Test/Reason strings of the rejection.
func demandScreenVerdict(t *task.Task, base int64) Verdict {
	return Verdict{Test: "necessary-demand",
		Reason: fmt.Sprintf("task %s: base demand %v > D %v", t.Name, sim.Duration(base), t.Deadline)}
}

type hpTerm struct {
	period sim.Duration
	demand int64
	jitter int64
}

// lowerMax returns the largest np CPU region and np DMA region among tasks
// with lower priority than index i (in the byPriority order).
func lowerMax(ts []terms, i int) (maxC, maxL int64) {
	for k := i + 1; k < len(ts); k++ {
		if ts[k].maxSegC > maxC {
			maxC = ts[k].maxSegC
		}
		if ts[k].maxSegL > maxL {
			maxL = ts[k].maxSegL
		}
	}
	return maxC, maxL
}

// RTMDMRTA is the response-time analysis for the RT-MDM policy (segment
// preemptive, prefetch depth ≥ 2, priority DMA arbitration).
//
// Per-job demand is position-dependent — the pipelined makespan for the
// highest-priority task (the gate is always its whenever it has loads
// remaining, so its overlap is never broken), the serial chain for every
// other task (a more urgent job's remaining DMA demand freezes this
// task's staging even while this task computes, so interference can
// expose all of its hidden loads) — plus the lump-sum lower-priority CPU
// blocking (inventory-bounded) plus one lower-priority in-flight DMA
// region (the gated-DMA guarantee).
//
// Higher-priority interference charges ΣC + ΣL per job with release
// jitter R_h; this is sound against single-path (serial or top-pipe)
// demand because each no-progress wall-clock second is charged exactly
// once. Two earlier bounds that credited pipelined overlap to non-top
// tasks were falsified by the multi-thousand-trial executor stress; see
// docs/ANALYSIS.md §4 for the full argument.
func RTMDMRTA(s *task.Set, plat cost.Platform, depth int) Verdict {
	return rtmdmRTA(s, plat, depth, 0, false)
}

// RTMDMRTAChunked analyzes RT-MDM with limited-preemption (chunked) DMA.
func RTMDMRTAChunked(s *task.Set, plat cost.Platform, depth int, chunkBytes int64) Verdict {
	return rtmdmRTA(s, plat, depth, chunkBytes, false)
}

func rtmdmRTA(s *task.Set, plat cost.Platform, depth int, chunkBytes int64, constJitter bool) Verdict {
	return rtmdmRTADepths(context.Background(), s, plat, fmt.Sprintf("rta-rtmdm-d%d", depth),
		func(*task.Task) int { return depth }, chunkBytes, constJitter)
}

// RTMDMRTADepths analyzes RT-MDM with heterogeneous per-task prefetch
// windows: depthFor returns each task's buffer depth. All blocking and
// demand terms use the owning task's own depth — a lower task's staged
// inventory is bounded by ITS window, and the top task's pipelined demand
// by its own look-ahead — so every soundness argument of the uniform
// analysis carries over verbatim.
func RTMDMRTADepths(s *task.Set, plat cost.Platform, depthFor func(*task.Task) int) Verdict {
	return rtmdmRTADepths(context.Background(), s, plat, "rta-rtmdm-het", depthFor, 0, false)
}

func rtmdmRTADepths(ctx context.Context, s *task.Set, plat cost.Platform, name string, depthFor func(*task.Task) int, chunkBytes int64, constJitter bool) Verdict {
	if err := s.Validate(); err != nil {
		return Verdict{Test: name, Reason: err.Error()}
	}
	ts := mkTerms(task.NewSet(s.ByPriority()...), plat, chunkBytes)
	return rtmdmRTATerms(ctx, ts, plat, name, depthFor, chunkBytes, constJitter, nil)
}

// rtmdmRTATerms is the RT-MDM RTA over precomputed priority-ordered
// terms. Both the cold analysis (rtmdmRTADepths, fresh terms) and the
// incremental admission path (cache-assembled terms, admitOpts) run this
// same loop, so the two can only differ through opt — and every opt
// extension is bit-identity preserving (see admitOpts).
func rtmdmRTATerms(ctx context.Context, ts []terms, plat cost.Platform, name string, depthFor func(*task.Task) int, chunkBytes int64, constJitter bool, opt *admitOpts) Verdict {
	v := Verdict{Test: name, Schedulable: true, WCRT: map[string]sim.Duration{}}

	// Per-task bases are pure in the terms (no fixpoint feedback), so they
	// are computed up front — which is what lets the admission screen
	// reject before any fixpoint runs.
	bases := make([]int64, len(ts))
	for i := range ts {
		if canceled(ctx) {
			return canceledVerdict(name, ctx)
		}
		blk := cpuBlocking(ts, i, func(k int) int { return depthFor(ts[k].t) })
		_, blkL := lowerMax(ts, i)
		d := depthFor(ts[i].t)
		if i > 0 {
			d = 1 // serial chain for non-top tasks
		}
		var demand int64
		if opt != nil && opt.demandFor != nil {
			demand = opt.demandFor(i, d)
		} else {
			pl := ts[i].t.Plan.Chunked(chunkBytes)
			demand = pl.PipelineNsWith(d, 0, switchCost(plat),
				plat.Bus.DMADen, plat.Bus.DMANum, plat.Bus.CPUDen, plat.Bus.CPUNum)
		}
		bases[i] = blk + blkL + demand
	}
	if opt != nil && opt.screen {
		for i := range ts {
			if bases[i] > int64(ts[i].t.Deadline) {
				return demandScreenVerdict(ts[i].t, bases[i])
			}
		}
	}

	// Per-job demand is position-dependent:
	//  - the HIGHEST-priority task uses its pipelined makespan: the gate
	//    is always its whenever it has loads remaining, so its overlap is
	//    never broken by anyone (only bounded lower-priority blocking);
	//  - every other task uses its SERIAL chain: while any more urgent
	//    job has loads remaining, the gate freezes this task's staging,
	//    so its own computes no longer hide its own loads — interference
	//    can stretch its critical path up to the serial length. The
	//    serial chain is single-path, so each wall-clock no-progress
	//    second is charged once: it is higher-priority CPU time, higher-
	//    priority DMA time, gate-idle under a higher-priority compute
	//    (also ΣC_h), or bounded lower-priority blocking. Interference is
	//    therefore ΣC_h + ΣL_h with release jitter R_h.
	//
	// An earlier version charged pipe + 2·ΣC_h everywhere; the 1000-trial
	// soundness stress falsified it (a full higher-priority window can
	// freeze this task's loads while this task itself computes, exposing
	// its hidden loads beyond any per-hp-job charge).
	var hps []hpTerm
	for i := range ts {
		if canceled(ctx) {
			return canceledVerdict(name, ctx)
		}
		r, ok := warmIterate(bases[i], ts[i].t.Deadline, hps, ts[i].t.Name, opt)
		v.WCRT[ts[i].t.Name] = r
		jitter := int64(r) + int64(ts[i].t.Jitter)
		if !ok {
			if v.Schedulable {
				v.Schedulable = false
				v.Reason = fmt.Sprintf("task %s: R %v > D %v", ts[i].t.Name, r, ts[i].t.Deadline)
			}
			if !constJitter {
				return v
			}
		}
		if constJitter {
			jitter = int64(ts[i].t.Deadline) + int64(ts[i].t.Jitter)
		}
		hps = append(hps, hpTerm{
			period: ts[i].t.Period, jitter: jitter,
			demand: ts[i].sumC + ts[i].sumL,
		})
	}
	return v
}

// RTMDMFIFORTA analyzes RT-MDM with *ungated FIFO* DMA arbitration (the
// memory-unaware ablation). Two things get strictly worse than under the
// gated design: (i) lower-priority tasks' transfers are served in release
// order, so they interfere like higher-priority demand (with deadline
// jitter) instead of blocking once; (ii) lower tasks can re-stage segments
// at any time, so the CPU-overhang blocking loses its inventory cap and is
// charged once per stall.
func RTMDMFIFORTA(s *task.Set, plat cost.Platform, depth int, chunkBytes int64) Verdict {
	return rtmdmFIFORTA(context.Background(), s, plat, depth, chunkBytes)
}

func rtmdmFIFORTA(ctx context.Context, s *task.Set, plat cost.Platform, depth int, chunkBytes int64) Verdict {
	v := fpRTA(ctx, s, plat, fmt.Sprintf("rta-rtmdm-fifo-d%d", depth), chunkBytes, false,
		func(ts []terms, i int) (int64, int64) {
			blkC, blkL := lowerMax(ts, i)
			stalls := int64(ts[i].loads)
			if stalls < 1 {
				stalls = 1
			}
			pipe := ts[i].t.Plan.Chunked(chunkBytes).PipelineNsWith(depth, 0, switchCost(plat),
				plat.Bus.DMADen, plat.Bus.DMANum, plat.Bus.CPUDen, plat.Bus.CPUNum)
			base := stalls*blkC + blkL + pipe
			// Lower-priority DMA demand behaves like interference under
			// FIFO: fold each lower task's load demand into the base via
			// its worst-case arrival count (deadline jitter, iterated by
			// the caller through the higher-priority terms only — lower
			// tasks are added here against the deadline horizon).
			for k := i + 1; k < len(ts); k++ {
				horizon := int64(ts[i].t.Deadline) + int64(ts[k].t.Deadline)
				n := (horizon + int64(ts[k].t.Period) - 1) / int64(ts[k].t.Period)
				base += n * ts[k].sumL
			}
			return base, pipe
		},
		func(ts []terms, h int) int64 { return ts[h].sumC + ts[h].sumL })
	return v
}

// RTMDMRTAForOPA is the Audsley-compatible variant of RTMDMRTA: it uses
// constant (deadline) jitter so a task's bound is independent of the
// relative order of its higher-priority tasks, and it analyzes every task
// even when one fails.
func RTMDMRTAForOPA(s *task.Set, plat cost.Platform, depth int) Verdict {
	return rtmdmRTA(s, plat, depth, 0, true)
}

// SerialSegFPRTA analyzes the serial segment-preemptive baseline (B2):
// per-job demand is the serial sum with one lower-priority CPU overhang per
// real load, plus initial blocking.
func SerialSegFPRTA(s *task.Set, plat cost.Platform) Verdict {
	return serialSegFPRTA(context.Background(), s, plat)
}

func serialSegFPRTA(ctx context.Context, s *task.Set, plat cost.Platform) Verdict {
	return fpRTA(ctx, s, plat, "rta-serial-segfp", 0, false, segfpBaseFn(plat, nil), sumCL)
}

// sumCL is the per-job interference demand every FP analysis here
// charges: the higher-priority task's full CPU plus DMA demand.
func sumCL(ts []terms, h int) int64 { return ts[h].sumC + ts[h].sumL }

// segfpBaseFn builds the serial-segfp base function. demandFor, when
// non-nil, replaces the serial-demand computation with cached values of
// the same pure expression (the incremental analyzer's term cache).
func segfpBaseFn(plat cost.Platform, demandFor func(i int) int64) func(ts []terms, i int) (int64, int64) {
	return func(ts []terms, i int) (int64, int64) {
		_, blkL := lowerMax(ts, i)
		var serial int64
		if demandFor != nil {
			serial = demandFor(i)
		} else {
			serial = ts[i].t.Plan.PipelineNsWith(1, 0, switchCost(plat),
				plat.Bus.DMADen, plat.Bus.DMANum, plat.Bus.CPUDen, plat.Bus.CPUNum)
		}
		base := cpuBlocking(ts, i, uniformDepth(1)) + blkL + serial
		return base, serial
	}
}

// npfpBaseFn builds the serial-npfp base function; all of its inputs are
// already in the terms, so it needs no demand override.
func npfpBaseFn() func(ts []terms, i int) (int64, int64) {
	return func(ts []terms, i int) (int64, int64) {
		var blkJob int64
		for k := i + 1; k < len(ts); k++ {
			if v := ts[k].sumC + ts[k].sumL; v > blkJob {
				blkJob = v
			}
		}
		_, blkL := lowerMax(ts, i)
		serial := ts[i].sumC + ts[i].sumL
		base := blkJob + blkL + serial
		return base, serial
	}
}

// SerialNPFPRTA analyzes the whole-job non-preemptive baseline (B1): the
// blocking term is an entire lower-priority job (its serial demand) plus
// one in-flight transfer.
func SerialNPFPRTA(s *task.Set, plat cost.Platform) Verdict {
	return serialNPFPRTA(context.Background(), s, plat)
}

func serialNPFPRTA(ctx context.Context, s *task.Set, plat cost.Platform) Verdict {
	return fpRTA(ctx, s, plat, "rta-serial-npfp", 0, false, npfpBaseFn(), sumCL)
}

// fpRTA runs a priority-ordered RTA. baseFn returns (base including
// blocking and own demand, own demand alone); interfFn returns the per-job
// interference demand a higher-priority task imposes.
//
// With constJitter, every higher-priority task carries jitter D_h instead
// of its response-time jitter: strictly more pessimistic, but independent
// of the relative order of higher-priority tasks — the property Audsley's
// algorithm requires — and the analysis of one task no longer depends on
// the others being schedulable.
func fpRTA(ctx context.Context, s *task.Set, plat cost.Platform, name string, chunkBytes int64, constJitter bool,
	baseFn func(ts []terms, i int) (base, self int64),
	interfFn func(ts []terms, h int) int64) Verdict {

	if err := s.Validate(); err != nil {
		return Verdict{Test: name, Reason: err.Error()}
	}
	ts := mkTerms(task.NewSet(s.ByPriority()...), plat, chunkBytes)
	return fpRTATerms(ctx, ts, name, constJitter, baseFn, interfFn, nil)
}

// fpRTATerms is the generic priority-ordered RTA over precomputed terms,
// shared — like rtmdmRTATerms — between the cold analyses and the
// incremental admission path (which differs only through opt).
func fpRTATerms(ctx context.Context, ts []terms, name string, constJitter bool,
	baseFn func(ts []terms, i int) (base, self int64),
	interfFn func(ts []terms, h int) int64, opt *admitOpts) Verdict {

	v := Verdict{Test: name, Schedulable: true, WCRT: map[string]sim.Duration{}}
	bases := make([]int64, len(ts))
	for i := range ts {
		if canceled(ctx) {
			return canceledVerdict(name, ctx)
		}
		bases[i], _ = baseFn(ts, i)
	}
	if opt != nil && opt.screen {
		for i := range ts {
			if bases[i] > int64(ts[i].t.Deadline) {
				return demandScreenVerdict(ts[i].t, bases[i])
			}
		}
	}

	var hps []hpTerm
	for i := range ts {
		if canceled(ctx) {
			return canceledVerdict(name, ctx)
		}
		r, ok := warmIterate(bases[i], ts[i].t.Deadline, hps, ts[i].t.Name, opt)
		v.WCRT[ts[i].t.Name] = r
		// Interference jitter: the task's own release jitter plus its
		// response bound (burst compression of self-suspending demand).
		jitter := int64(r) + int64(ts[i].t.Jitter)
		if !ok {
			if v.Schedulable {
				v.Schedulable = false
				v.Reason = fmt.Sprintf("task %s: R %v > D %v", ts[i].t.Name, r, ts[i].t.Deadline)
			}
			if !constJitter {
				// Lower-priority tasks cannot be analyzed soundly once a
				// higher one fails (its jitter is unbounded); stop here.
				return v
			}
		}
		if constJitter {
			jitter = int64(ts[i].t.Deadline) + int64(ts[i].t.Jitter)
		}
		if jitter < 0 {
			jitter = 0
		}
		hps = append(hps, hpTerm{period: ts[i].t.Period, demand: interfFn(ts, i), jitter: jitter})
	}
	return v
}

// NecessaryUtilization is the per-resource necessary condition: a task set
// whose derated CPU or DMA utilization exceeds 1 is infeasible on this
// platform under any policy that serializes each resource.
func NecessaryUtilization(s *task.Set, plat cost.Platform) Verdict {
	ts := mkTerms(s, plat, 0)
	var uc, ul float64
	for _, t := range ts {
		uc += float64(t.sumC) / float64(t.t.Period) //lint:allow millitime -- utilization ratio; dimensionless by construction
		ul += float64(t.sumL) / float64(t.t.Period) //lint:allow millitime -- utilization ratio; dimensionless by construction
	}
	v := Verdict{Test: "necessary-utilization", Schedulable: uc <= 1.0 && ul <= 1.0}
	if !v.Schedulable {
		v.Reason = fmt.Sprintf("U_cpu=%.3f U_dma=%.3f", uc, ul)
	}
	return v
}

// RTMDMEDF is the processor-demand schedulability test for the EDF variant
// of RT-MDM: dbf(t) + B(t) ≤ t at every absolute deadline t in the level
// busy period.
//
// Per-job demand is the *serial* chain length ΣL+ΣC (suspension-oblivious,
// both resources serialized): at every busy-window instant some incomplete
// job advances its own critical path (if the CPU idles, the in-flight
// transfer is its loader's next needed segment; if the gate idles the DMA,
// the gate job is computing), and a job's critical-path seconds are
// bounded by its serial length — the pipelined makespan is NOT a sound
// per-job charge here, because interference can expose hidden loads and
// stretch a job's critical path up to the serial chain (the same
// overlap-degradation effect that restricts the FP analysis's pipelined
// demand to the top-priority task).
//
// Blocking is charged once per checkpoint, in the classic np-EDF style
// (George et al.): only tasks with relative deadline > t can hold work
// against the busy period ending at t — a job released earlier with
// D_k ≤ t ≤ d would itself have the earlier absolute deadline. B(t) sums
// those tasks' staged inventories (which existed before the busy period
// and cannot be replenished while gated) plus one in-flight transfer.
func RTMDMEDF(s *task.Set, plat cost.Platform, depth int) Verdict {
	return rtmdmEDF(s, plat, depth, 0)
}

func rtmdmEDF(s *task.Set, plat cost.Platform, depth int, chunkBytes int64) Verdict {
	return rtmdmEDFDepths(context.Background(), s, plat, fmt.Sprintf("edf-rtmdm-d%d", depth),
		func(*task.Task) int { return depth }, chunkBytes)
}

// RTMDMEDFDepths is the EDF demand test with heterogeneous per-task
// prefetch windows; each task's carried-in inventory is bounded by its own
// window depth.
func RTMDMEDFDepths(s *task.Set, plat cost.Platform, depthFor func(*task.Task) int) Verdict {
	return rtmdmEDFDepths(context.Background(), s, plat, "edf-rtmdm-het", depthFor, 0)
}

func rtmdmEDFDepths(ctx context.Context, s *task.Set, plat cost.Platform, name string, depthFor func(*task.Task) int, chunkBytes int64) Verdict {
	if err := s.Validate(); err != nil {
		return Verdict{Test: name, Reason: err.Error()}
	}
	ts := mkTerms(s, plat, chunkBytes)
	type dtask struct {
		c    int64
		d    sim.Duration
		p    sim.Duration
		jit  sim.Duration
		inv  int64
		segL int64
	}
	dts := make([]dtask, len(ts))
	var util float64
	var sumC, maxBlk int64
	for i := range ts {
		serial := ts[i].t.Plan.Chunked(chunkBytes).PipelineNsWith(1, 0, switchCost(plat),
			plat.Bus.DMADen, plat.Bus.DMANum, plat.Bus.CPUDen, plat.Bus.CPUNum)
		dts[i] = dtask{c: serial, d: ts[i].t.Deadline, p: ts[i].t.Period,
			jit: ts[i].t.Jitter, inv: ts[i].inventoryC(depthFor(ts[i].t)), segL: ts[i].maxSegL}
		util += float64(serial) / float64(ts[i].t.Period) //lint:allow millitime -- utilization ratio; dimensionless by construction
		sumC += serial
		if b := dts[i].inv + dts[i].segL; b > maxBlk {
			maxBlk = b
		}
	}
	if util > 1.0 {
		return Verdict{Test: name, Reason: fmt.Sprintf("utilization %.3f > 1", util)}
	}
	// blocking bounds the carried-in work of longer-deadline tasks.
	blocking := func(t int64) int64 {
		var invSum, segLMax int64
		for _, dt := range dts {
			if int64(dt.d) > t {
				invSum += dt.inv
				if dt.segL > segLMax {
					segLMax = dt.segL
				}
			}
		}
		return invSum + segLMax
	}
	// Busy-period bound: fixpoint of w = B + Σ ceil(w/T)·C.
	w := sumC + maxBlk
	for iter := 0; iter < maxIterations; iter++ {
		if iter%cancelPollInterval == 0 && canceled(ctx) {
			return canceledVerdict(name, ctx)
		}
		next := maxBlk
		for _, dt := range dts {
			next += ((w + int64(dt.jit) + int64(dt.p) - 1) / int64(dt.p)) * dt.c
		}
		if next == w {
			break
		}
		w = next
		if w > int64(100*sim.Second) {
			return Verdict{Test: name, Reason: "busy period did not converge"}
		}
	}
	// Collect deadline checkpoints ≤ w.
	var points []int64
	for _, dt := range dts {
		for t := int64(dt.d); t <= w; t += int64(dt.p) {
			if len(points)%cancelPollInterval == 0 && canceled(ctx) {
				return canceledVerdict(name, ctx)
			}
			points = append(points, t)
		}
	}
	sort.Slice(points, func(i, j int) bool { return points[i] < points[j] })
	dbf := func(t int64) int64 {
		var sum int64
		for _, dt := range dts {
			// Release jitter lets up to ⌊(t + J − D)/T⌋ + 1 jobs have both
			// release and deadline inside the window.
			n := (t+int64(dt.jit)-int64(dt.d))/int64(dt.p) + 1
			if n > 0 {
				sum += n * dt.c
			}
		}
		return sum
	}
	for i, t := range points {
		// The checkpoint list scales with horizon/period ratios and can run
		// to millions of points on dense sets; this is the loop a server
		// deadline most needs to be able to cut short.
		if i%cancelPollInterval == 0 && canceled(ctx) {
			return canceledVerdict(name, ctx)
		}
		if d := dbf(t) + blocking(t); d > t {
			return Verdict{Test: name,
				Reason: fmt.Sprintf("demand %v exceeds supply at t=%v", d, sim.Time(t))}
		}
	}
	return Verdict{Test: name, Schedulable: true}
}

// ForPolicy returns the analysis matching a runtime policy, or an
// unsupported verdict constructor for policies without a sound test (FIFO
// DMA arbitration is a runtime ablation only).
func ForPolicy(pol core.Policy) (func(*task.Set, cost.Platform) Verdict, error) {
	return ForPolicyContext(context.Background(), pol)
}

// ForPolicyContext is ForPolicy with a cancellation context threaded into
// the returned test: the RTA per-task loops and the EDF busy-period and
// checkpoint loops poll ctx every cancelPollInterval iterations, and an
// aborted analysis returns an unschedulable Verdict whose Reason carries
// ctx.Err(). The admission server uses this so a request deadline bounds
// analysis work instead of leaking it.
func ForPolicyContext(ctx context.Context, pol core.Policy) (func(*task.Set, cost.Platform) Verdict, error) {
	switch {
	case pol.DMA == core.DMAFIFO && pol.EDF:
		return nil, fmt.Errorf("analysis: no sound test for FIFO DMA under EDF (%s)", pol.Name)
	case pol.DMA == core.DMAFIFO && pol.PrefetchAcrossJobs:
		if pol.TaskDepth != nil {
			return nil, fmt.Errorf("analysis: no per-task-depth test under FIFO DMA (%s)", pol.Name)
		}
		d, c := pol.Depth, pol.ChunkBytes
		return func(s *task.Set, p cost.Platform) Verdict { return rtmdmFIFORTA(ctx, s, p, d, c) }, nil
	case pol.DMA == core.DMAFIFO:
		return nil, fmt.Errorf("analysis: no sound test for FIFO DMA on serial policies (%s)", pol.Name)
	case pol.JobLevelNP:
		return func(s *task.Set, p cost.Platform) Verdict { return serialNPFPRTA(ctx, s, p) }, nil
	case pol.EDF && pol.PrefetchAcrossJobs:
		if pol.TaskDepth != nil {
			depthFor := func(t *task.Task) int { return pol.DepthFor(t.Name) }
			c := pol.ChunkBytes
			return func(s *task.Set, p cost.Platform) Verdict {
				return rtmdmEDFDepths(ctx, s, p, "edf-rtmdm-het", depthFor, c)
			}, nil
		}
		d, c := pol.Depth, pol.ChunkBytes
		return func(s *task.Set, p cost.Platform) Verdict {
			return rtmdmEDFDepths(ctx, s, p, fmt.Sprintf("edf-rtmdm-d%d", d),
				func(*task.Task) int { return d }, c)
		}, nil
	case pol.EDF:
		return nil, fmt.Errorf("analysis: no test for serial EDF (%s)", pol.Name)
	case pol.PrefetchAcrossJobs:
		if pol.TaskDepth != nil {
			depthFor := func(t *task.Task) int { return pol.DepthFor(t.Name) }
			c := pol.ChunkBytes
			return func(s *task.Set, p cost.Platform) Verdict {
				return rtmdmRTADepths(ctx, s, p, "rta-rtmdm-het", depthFor, c, false)
			}, nil
		}
		d, c := pol.Depth, pol.ChunkBytes
		return func(s *task.Set, p cost.Platform) Verdict {
			return rtmdmRTADepths(ctx, s, p, fmt.Sprintf("rta-rtmdm-d%d", d),
				func(*task.Task) int { return d }, c, false)
		}, nil
	default:
		return func(s *task.Set, p cost.Platform) Verdict { return serialSegFPRTA(ctx, s, p) }, nil
	}
}

// Audsley performs optimal priority assignment for an OPA-compatible FP
// test: it mutates the set's priorities; on success the final assignment is
// schedulable under the test. The supplied test must judge a task's
// schedulability using only the partition into higher/lower tasks (all
// three RTAs here qualify).
//
// On failure the set's original priorities are restored.
func Audsley(s *task.Set, plat cost.Platform, test func(*task.Set, cost.Platform) Verdict) bool {
	orig := make(map[string]int, len(s.Tasks))
	for _, t := range s.Tasks {
		orig[t.Name] = t.Priority
	}
	n := len(s.Tasks)
	unassigned := append([]*task.Task(nil), s.Tasks...)
	// Deterministic candidate order.
	sort.Slice(unassigned, func(i, j int) bool { return unassigned[i].Name < unassigned[j].Name })

	for level := n - 1; level >= 0; level-- {
		placed := false
		for k, cand := range unassigned {
			if cand == nil {
				continue
			}
			// Tentatively: cand at this level, remaining unassigned above.
			lvl := level - 1
			for _, u := range unassigned {
				if u == nil || u == cand {
					continue
				}
				u.Priority = lvl
				lvl--
			}
			cand.Priority = level
			v := test(s, plat)
			if v.WCRT != nil {
				if r, ok := v.WCRT[cand.Name]; ok && r <= cand.Deadline {
					unassigned[k] = nil
					placed = true
					break
				}
			} else if v.Schedulable {
				unassigned[k] = nil
				placed = true
				break
			}
		}
		if !placed {
			for _, t := range s.Tasks {
				t.Priority = orig[t.Name]
			}
			return false
		}
	}
	return true
}

// BreakdownFactor binary-searches the largest period-compression factor α
// (demand stays fixed, every period and deadline divides by α) under which
// the test still accepts the set: the classic breakdown-utilization metric.
// It returns α within the given tolerance; α > 1 means headroom beyond the
// given rates, α < 1 means the set is already over-subscribed.
func BreakdownFactor(s *task.Set, plat cost.Platform,
	test func(*task.Set, cost.Platform) Verdict, tol float64) float64 {
	if tol <= 0 {
		tol = 0.01
	}
	scaled := func(alpha float64) *task.Set {
		var out []*task.Task
		for _, t := range s.Tasks {
			c := *t
			c.Period = sim.Duration(float64(t.Period) / alpha)     //lint:allow millitime -- sensitivity sweep scales analytically, not in simulation
			c.Deadline = sim.Duration(float64(t.Deadline) / alpha) //lint:allow millitime -- sensitivity sweep scales analytically, not in simulation
			if c.Period < 1 {
				c.Period = 1
			}
			if c.Deadline < 1 {
				c.Deadline = 1
			}
			if c.Deadline > c.Period {
				c.Deadline = c.Period
			}
			out = append(out, &c)
		}
		return task.NewSet(out...)
	}
	ok := func(alpha float64) bool { return test(scaled(alpha), plat).Schedulable }
	if !ok(1e-3) {
		return 0
	}
	lo, hi := 1e-3, 1e-3
	for hi < 64 && ok(hi*2) {
		hi *= 2
		lo = hi
	}
	hi *= 2
	for hi-lo > tol {
		mid := (lo + hi) / 2
		if ok(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}
