package task

import (
	"testing"

	"rtmdm/internal/cost"
	"rtmdm/internal/models"
	"rtmdm/internal/segment"
	"rtmdm/internal/sim"
)

func mkTask(t *testing.T, name, model string, period sim.Duration, prio int) *Task {
	t.Helper()
	m, err := models.Build(model, 1)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := segment.Build(m, cost.STM32H743, 64<<10, segment.Greedy)
	if err != nil {
		t.Fatal(err)
	}
	return &Task{Name: name, Plan: pl, Period: period, Deadline: period, Priority: prio}
}

func TestTaskValidate(t *testing.T) {
	tk := mkTask(t, "a", "ds-cnn", 100*sim.Millisecond, 0)
	if err := tk.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := *tk
	bad.Period = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero period accepted")
	}
	bad = *tk
	bad.Deadline = tk.Period + 1
	if err := bad.Validate(); err == nil {
		t.Fatal("deadline > period accepted (constrained model)")
	}
	bad = *tk
	bad.Name = ""
	if err := bad.Validate(); err == nil {
		t.Fatal("empty name accepted")
	}
	bad = *tk
	bad.Offset = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative offset accepted")
	}
	bad = *tk
	bad.Plan = nil
	if err := bad.Validate(); err == nil {
		t.Fatal("nil plan accepted")
	}
}

func TestWCETRelations(t *testing.T) {
	tk := mkTask(t, "a", "mobilenetv1-0.25", 100*sim.Millisecond, 0)
	serial := tk.SerialWCET()
	pipe := tk.PipelineWCET(2)
	if pipe > serial {
		t.Fatalf("pipelined WCET %v > serial %v", pipe, serial)
	}
	if pipe < sim.Duration(tk.ComputeNs()) || pipe < sim.Duration(tk.LoadNs()) {
		t.Fatal("pipelined WCET below a single resource's demand")
	}
	if serial != sim.Duration(tk.ComputeNs()+tk.LoadNs()) {
		t.Fatal("serial WCET != compute + load")
	}
}

func TestUtilizations(t *testing.T) {
	tk := mkTask(t, "a", "ds-cnn", 100*sim.Millisecond, 0)
	uc, ud, us := tk.CPUUtilization(), tk.DMAUtilization(), tk.SerialUtilization()
	if uc <= 0 || ud <= 0 {
		t.Fatal("utilizations must be positive")
	}
	if diff := us - (uc + ud); diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("serial util %v != cpu %v + dma %v", us, uc, ud)
	}
}

func TestSetValidateRejectsDuplicates(t *testing.T) {
	a := mkTask(t, "a", "ds-cnn", 100*sim.Millisecond, 0)
	b := mkTask(t, "b", "lenet5", 200*sim.Millisecond, 1)
	s := NewSet(a, b)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	dup := NewSet(a, mkTask(t, "a", "lenet5", 50*sim.Millisecond, 1))
	if err := dup.Validate(); err == nil {
		t.Fatal("duplicate name accepted")
	}
	samePrio := NewSet(a, mkTask(t, "c", "lenet5", 50*sim.Millisecond, 0))
	if err := samePrio.Validate(); err == nil {
		t.Fatal("duplicate priority accepted")
	}
	if err := NewSet().Validate(); err == nil {
		t.Fatal("empty set accepted")
	}
}

func TestByPriorityOrdersAscending(t *testing.T) {
	a := mkTask(t, "a", "ds-cnn", 100*sim.Millisecond, 2)
	b := mkTask(t, "b", "lenet5", 200*sim.Millisecond, 0)
	c := mkTask(t, "c", "tinymlp", 300*sim.Millisecond, 1)
	s := NewSet(a, b, c)
	got := s.ByPriority()
	if got[0] != b || got[1] != c || got[2] != a {
		t.Fatal("ByPriority wrong order")
	}
	// Receiver untouched.
	if s.Tasks[0] != a {
		t.Fatal("ByPriority mutated the set")
	}
}

func TestAssignRMAndDM(t *testing.T) {
	a := mkTask(t, "a", "ds-cnn", 300*sim.Millisecond, 0)
	b := mkTask(t, "b", "lenet5", 100*sim.Millisecond, 0)
	c := mkTask(t, "c", "tinymlp", 200*sim.Millisecond, 0)
	s := NewSet(a, b, c)
	s.AssignRM()
	if b.Priority != 0 || c.Priority != 1 || a.Priority != 2 {
		t.Fatalf("RM priorities: a=%d b=%d c=%d", a.Priority, b.Priority, c.Priority)
	}
	// DM with deadlines shorter than periods.
	a.Deadline = 50 * sim.Millisecond
	s.AssignDM()
	if a.Priority != 0 {
		t.Fatalf("DM should make a most urgent, got %d", a.Priority)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAssignRMTiesBreakByName(t *testing.T) {
	a := mkTask(t, "zz", "ds-cnn", 100*sim.Millisecond, 0)
	b := mkTask(t, "aa", "lenet5", 100*sim.Millisecond, 0)
	s := NewSet(a, b)
	s.AssignRM()
	if b.Priority != 0 || a.Priority != 1 {
		t.Fatal("RM tie not broken by name")
	}
}

func TestHyperperiod(t *testing.T) {
	a := mkTask(t, "a", "ds-cnn", 20*sim.Millisecond, 0)
	b := mkTask(t, "b", "lenet5", 30*sim.Millisecond, 1)
	s := NewSet(a, b)
	if h := s.Hyperperiod(sim.Second); h != 60*sim.Millisecond {
		t.Fatalf("hyperperiod = %v, want 60ms", h)
	}
	// Cap applies.
	if h := s.Hyperperiod(50 * sim.Millisecond); h != 50*sim.Millisecond {
		t.Fatalf("capped hyperperiod = %v, want 50ms", h)
	}
	// Offsets extend the horizon.
	b.Offset = 5 * sim.Millisecond
	if h := s.Hyperperiod(sim.Second); h != 65*sim.Millisecond {
		t.Fatalf("hyperperiod with offset = %v, want 65ms", h)
	}
}

func TestHyperperiodOverflowReturnsCap(t *testing.T) {
	// Mutually prime giant periods force the cap path.
	a := mkTask(t, "a", "ds-cnn", 999999937, 0)  // prime ns
	b := mkTask(t, "b", "lenet5", 999999893, 1)  // prime ns
	c := mkTask(t, "c", "tinymlp", 999999797, 2) // prime ns
	s := NewSet(a, b, c)
	if h := s.Hyperperiod(10 * sim.Second); h != 10*sim.Second {
		t.Fatalf("overflow hyperperiod = %v, want cap", h)
	}
}

func TestSetUtilizationSums(t *testing.T) {
	a := mkTask(t, "a", "ds-cnn", 100*sim.Millisecond, 0)
	b := mkTask(t, "b", "lenet5", 200*sim.Millisecond, 1)
	s := NewSet(a, b)
	if got, want := s.CPUUtilization(), a.CPUUtilization()+b.CPUUtilization(); got != want {
		t.Fatalf("CPU util %v != %v", got, want)
	}
	if got, want := s.DMAUtilization(), a.DMAUtilization()+b.DMAUtilization(); got != want {
		t.Fatalf("DMA util %v != %v", got, want)
	}
	if got, want := s.SerialUtilization(), a.SerialUtilization()+b.SerialUtilization(); got != want {
		t.Fatalf("serial util %v != %v", got, want)
	}
}
