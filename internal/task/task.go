// Package task defines the periodic real-time task model of the RT-MDM
// reproduction: a task is a segmented DNN inference released periodically
// with a relative deadline, plus task-set level utilities (priority
// assignment, utilizations, hyperperiods).
package task

import (
	"fmt"
	"sort"

	"rtmdm/internal/segment"
	"rtmdm/internal/sim"
)

// Task is a periodic DNN inference task. Priorities are fixed per task and
// numerically ascending: smaller Priority value = more urgent.
type Task struct {
	Name string
	Plan *segment.Plan
	// Period is the inter-release time of jobs.
	Period sim.Duration
	// Deadline is relative to release; constrained model (Deadline ≤ Period).
	Deadline sim.Duration
	// Offset delays the first release.
	Offset sim.Duration
	// Jitter is the maximum release delay: job k arrives anywhere in
	// [Offset + k·Period, Offset + k·Period + Jitter]. Must be < Period
	// so releases stay ordered.
	Jitter sim.Duration
	// Priority orders fixed-priority scheduling; smaller is more urgent.
	Priority int
}

// Validate reports parameter errors.
func (t *Task) Validate() error {
	if t.Name == "" {
		return fmt.Errorf("task: empty name")
	}
	if t.Plan == nil || len(t.Plan.Segments) == 0 {
		return fmt.Errorf("task %s: missing segmentation plan", t.Name)
	}
	if t.Period <= 0 {
		return fmt.Errorf("task %s: non-positive period %v", t.Name, t.Period)
	}
	if t.Deadline <= 0 || t.Deadline > t.Period {
		return fmt.Errorf("task %s: deadline %v outside (0, period %v]", t.Name, t.Deadline, t.Period)
	}
	if t.Offset < 0 {
		return fmt.Errorf("task %s: negative offset %v", t.Name, t.Offset)
	}
	if t.Jitter < 0 || t.Jitter >= t.Period {
		return fmt.Errorf("task %s: jitter %v outside [0, period)", t.Name, t.Jitter)
	}
	return nil
}

// NumSegments returns the segment count of the task's plan.
func (t *Task) NumSegments() int { return t.Plan.NumSegments() }

// SerialWCET is the job length with strictly alternating load/compute.
func (t *Task) SerialWCET() sim.Duration { return sim.Duration(t.Plan.SerialNs()) }

// PipelineWCET is the job length under prefetch with the given buffer depth.
func (t *Task) PipelineWCET(depth int) sim.Duration {
	return sim.Duration(t.Plan.PipelineNs(depth))
}

// ComputeNs is the total CPU demand of one job.
func (t *Task) ComputeNs() int64 { return t.Plan.TotalComputeNs() }

// LoadNs is the total DMA demand of one job.
func (t *Task) LoadNs() int64 { return t.Plan.TotalLoadNs() }

// CPUUtilization is compute demand over period.
func (t *Task) CPUUtilization() float64 {
	return float64(t.ComputeNs()) / float64(t.Period) //lint:allow millitime -- utilization ratio; dimensionless by construction
}

// DMAUtilization is load demand over period.
func (t *Task) DMAUtilization() float64 {
	return float64(t.LoadNs()) / float64(t.Period) //lint:allow millitime -- utilization ratio; dimensionless by construction
}

// SerialUtilization is serial WCET over period — the utilization the
// load-then-compute baseline must fit under 1.
func (t *Task) SerialUtilization() float64 {
	return float64(t.SerialWCET()) / float64(t.Period) //lint:allow millitime -- utilization ratio; dimensionless by construction
}

// Set is an ordered collection of tasks.
type Set struct {
	Tasks []*Task
}

// NewSet wraps tasks into a set.
func NewSet(tasks ...*Task) *Set { return &Set{Tasks: tasks} }

// Validate checks every task plus set-level invariants (unique names and
// unique priorities).
func (s *Set) Validate() error {
	if len(s.Tasks) == 0 {
		return fmt.Errorf("task: empty set")
	}
	names := map[string]bool{}
	prios := map[int]string{}
	for _, t := range s.Tasks {
		if err := t.Validate(); err != nil {
			return err
		}
		if names[t.Name] {
			return fmt.Errorf("task: duplicate name %q", t.Name)
		}
		names[t.Name] = true
		if other, dup := prios[t.Priority]; dup {
			return fmt.Errorf("task: %s and %s share priority %d", other, t.Name, t.Priority)
		}
		prios[t.Priority] = t.Name
	}
	return nil
}

// ByPriority returns the tasks sorted most-urgent first (ascending
// Priority). The receiver is not modified.
func (s *Set) ByPriority() []*Task {
	out := append([]*Task(nil), s.Tasks...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Priority < out[j].Priority })
	return out
}

// CPUUtilization sums per-task compute utilizations.
func (s *Set) CPUUtilization() float64 {
	var u float64
	for _, t := range s.Tasks {
		u += t.CPUUtilization()
	}
	return u
}

// DMAUtilization sums per-task load utilizations.
func (s *Set) DMAUtilization() float64 {
	var u float64
	for _, t := range s.Tasks {
		u += t.DMAUtilization()
	}
	return u
}

// SerialUtilization sums per-task serial utilizations.
func (s *Set) SerialUtilization() float64 {
	var u float64
	for _, t := range s.Tasks {
		u += t.SerialUtilization()
	}
	return u
}

// Hyperperiod returns the least common multiple of periods (plus the
// largest offset), capped: if the LCM exceeds cap, cap is returned. Use it
// to bound simulation horizons for periodic workloads.
func (s *Set) Hyperperiod(cap sim.Duration) sim.Duration {
	l := int64(1)
	for _, t := range s.Tasks {
		l = lcm(l, int64(t.Period))
		if l <= 0 || sim.Duration(l) > cap {
			return cap
		}
	}
	var maxOff sim.Duration
	for _, t := range s.Tasks {
		if t.Offset > maxOff {
			maxOff = t.Offset
		}
	}
	h := sim.Duration(l) + maxOff
	if h > cap {
		return cap
	}
	return h
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func lcm(a, b int64) int64 {
	g := gcd(a, b)
	if g == 0 {
		return 0
	}
	return a / g * b
}

// AssignRM sets rate-monotonic priorities: shorter period = more urgent.
// Ties break by name for determinism. Priorities become 0..n-1.
func (s *Set) AssignRM() {
	order := append([]*Task(nil), s.Tasks...)
	sort.SliceStable(order, func(i, j int) bool {
		if order[i].Period != order[j].Period {
			return order[i].Period < order[j].Period
		}
		return order[i].Name < order[j].Name
	})
	for i, t := range order {
		t.Priority = i
	}
}

// AssignDM sets deadline-monotonic priorities: shorter relative deadline =
// more urgent. Ties break by name. Priorities become 0..n-1.
func (s *Set) AssignDM() {
	order := append([]*Task(nil), s.Tasks...)
	sort.SliceStable(order, func(i, j int) bool {
		if order[i].Deadline != order[j].Deadline {
			return order[i].Deadline < order[j].Deadline
		}
		return order[i].Name < order[j].Name
	})
	for i, t := range order {
		t.Priority = i
	}
}
