package fault

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"rtmdm/internal/sim"
)

func TestNilPlanInjectsNothing(t *testing.T) {
	var p *Plan
	if got := p.OverrunExtraNs("a", 0, 0, 1000); got != 0 {
		t.Errorf("nil plan OverrunExtraNs = %d", got)
	}
	if got := p.ReleaseDelay("a", 0); got != 0 {
		t.Errorf("nil plan ReleaseDelay = %v", got)
	}
	if got := p.DMADerateNs(0, 1000); got != 1000 {
		t.Errorf("nil plan DMADerateNs = %d", got)
	}
	if p.InSlowdown(0) || p.TransferFaulty("a", 0, 0, 0, 0) {
		t.Error("nil plan reports faults")
	}
	if p.MaxReleaseDelay() != 0 || p.RetryBackoffNs(1) != 0 || p.MaxRetries() != 0 || p.Windows() != 0 {
		t.Error("nil plan accessors not zero")
	}
}

func TestNewDisabledConfigReturnsNil(t *testing.T) {
	p, err := New(Config{Seed: 42}, sim.Duration(1e9))
	if err != nil {
		t.Fatal(err)
	}
	if p != nil {
		t.Fatal("disabled config compiled a plan")
	}
}

func TestValidateRejectsHostileValues(t *testing.T) {
	cases := []Config{
		{OverrunRate: -0.1},
		{OverrunRate: 1.5},
		{OverrunRate: math.NaN()},
		{OverrunRate: 0.5, OverrunFactor: 0.5},
		{OverrunRate: 0.5, OverrunFactor: math.Inf(1)},
		{TaskOverrunRate: map[string]float64{"kws": 2}},
		{ReleaseJitterRate: 0.5, ReleaseJitterMaxMs: math.NaN()},
		{ReleaseJitterRate: 0.5, ReleaseJitterMaxMs: -1},
		{DMASlowdownRatePerSec: math.Inf(1)},
		{DMASlowdownRatePerSec: 10, DMASlowdownMs: -2},
		{TransferFaultRate: 0.1, MaxRetries: -1},
		{TransferFaultRate: 0.1, MaxRetries: 1000},
		{TransferFaultRate: 0.1, RetryBackoffUs: math.Inf(-1)},
	}
	for i, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, c)
		}
		if _, err := New(c, sim.Duration(1e9)); err == nil {
			t.Errorf("case %d: New accepted %+v", i, c)
		}
	}
}

func TestDecisionsAreDeterministicAndOrderFree(t *testing.T) {
	cfg := Config{
		Seed:               7,
		OverrunRate:        0.3,
		OverrunFactor:      1.2,
		OverrunFactorMax:   2.0,
		ReleaseJitterRate:  0.4,
		ReleaseJitterMaxMs: 2,
		TransferFaultRate:  0.25,
	}
	a, err := New(cfg, sim.Duration(1e9))
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(cfg, sim.Duration(1e9))
	if err != nil {
		t.Fatal(err)
	}
	// Query b in a different order than a; per-decision hashing must make
	// the outcomes identical regardless.
	type q struct{ job, seg int }
	queries := []q{{0, 0}, {1, 2}, {5, 1}, {2, 0}, {9, 3}}
	got := map[q][3]int64{}
	for _, x := range queries {
		got[x] = [3]int64{
			a.OverrunExtraNs("kws", x.job, x.seg, 1_000_000),
			int64(a.ReleaseDelay("kws", x.job)),
			boolToInt(a.TransferFaulty("kws", x.job, x.seg, 4096, 0)),
		}
	}
	for i := len(queries) - 1; i >= 0; i-- {
		x := queries[i]
		want := got[x]
		have := [3]int64{
			b.OverrunExtraNs("kws", x.job, x.seg, 1_000_000),
			int64(b.ReleaseDelay("kws", x.job)),
			boolToInt(b.TransferFaulty("kws", x.job, x.seg, 4096, 0)),
		}
		if have != want {
			t.Errorf("query %+v: reordered plan gave %v, want %v", x, have, want)
		}
	}
}

func TestSeedChangesDecisions(t *testing.T) {
	mk := func(seed int64) *Plan {
		p, err := New(Config{Seed: seed, OverrunRate: 0.5}, sim.Duration(1e9))
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	a, b := mk(1), mk(2)
	same := true
	for job := 0; job < 64 && same; job++ {
		if a.OverrunExtraNs("t", job, 0, 1000) != b.OverrunExtraNs("t", job, 0, 1000) {
			same = false
		}
	}
	if same {
		t.Error("seeds 1 and 2 produced identical overrun decisions over 64 jobs")
	}
}

func TestOverrunRateExtremes(t *testing.T) {
	always, err := New(Config{OverrunRate: 1, OverrunFactor: 2}, sim.Duration(1e9))
	if err != nil {
		t.Fatal(err)
	}
	for job := 0; job < 32; job++ {
		if got := always.OverrunExtraNs("t", job, 0, 1000); got != 1000 {
			t.Fatalf("rate=1 factor=2: job %d extra = %d, want 1000", job, got)
		}
	}
	// Rate 1 on another class keeps this task's override at 0.
	never, err := New(Config{OverrunRate: 1, TaskOverrunRate: map[string]float64{"t": 0}}, sim.Duration(1e9))
	if err != nil {
		t.Fatal(err)
	}
	for job := 0; job < 32; job++ {
		if got := never.OverrunExtraNs("t", job, 0, 1000); got != 0 {
			t.Fatalf("per-task rate 0: job %d extra = %d, want 0", job, got)
		}
	}
	if got := never.OverrunExtraNs("other", 0, 0, 1000); got == 0 {
		t.Error("non-overridden task should use the global rate 1")
	}
}

func TestOverrunFactorRangeBounded(t *testing.T) {
	p, err := New(Config{OverrunRate: 1, OverrunFactor: 1.2, OverrunFactorMax: 3}, sim.Duration(1e9))
	if err != nil {
		t.Fatal(err)
	}
	const work = 1_000_000
	lo, hi := int64(work)*200/1000, int64(work)*2000/1000
	varied := false
	first := p.OverrunExtraNs("t", 0, 0, work)
	for job := 0; job < 64; job++ {
		got := p.OverrunExtraNs("t", job, 0, work)
		if got < lo || got > hi {
			t.Fatalf("job %d extra %d outside [%d, %d]", job, got, lo, hi)
		}
		if got != first {
			varied = true
		}
	}
	if !varied {
		t.Error("uniform factor range produced a constant exceedance over 64 jobs")
	}
}

func TestDMAWindowsSortedWithinHorizon(t *testing.T) {
	horizon := sim.Duration(1e9)
	p, err := New(Config{DMASlowdownRatePerSec: 50, DMASlowdownMs: 2, DMASlowdownFactor: 3}, horizon)
	if err != nil {
		t.Fatal(err)
	}
	if p.Windows() == 0 {
		t.Fatal("expected slowdown windows at 50/sec over 1s")
	}
	var prevEnd sim.Time
	for i := range p.windows {
		w := p.windows[i]
		if w.from < prevEnd {
			t.Fatalf("window %d [%v,%v) overlaps previous end %v", i, w.from, w.to, prevEnd)
		}
		if w.from >= sim.Time(horizon) {
			t.Fatalf("window %d starts past the horizon", i)
		}
		prevEnd = w.to
		mid := w.from + (w.to-w.from)/2
		if !p.InSlowdown(mid) {
			t.Fatalf("InSlowdown false inside window %d", i)
		}
		if got := p.DMADerateNs(mid, 1000); got != 3000 {
			t.Fatalf("derate inside window = %d, want 3000", got)
		}
		if p.InSlowdown(w.to) {
			t.Fatalf("window %d end should be exclusive", i)
		}
	}
	if got := p.DMADerateNs(p.windows[0].from-1, 1000); got != 1000 {
		t.Fatalf("derate outside window = %d, want identity", got)
	}
}

func TestTransferFaultBudgetTerminates(t *testing.T) {
	p, err := New(Config{TransferFaultRate: 1, MaxRetries: 4}, sim.Duration(1e9))
	if err != nil {
		t.Fatal(err)
	}
	for attempt := 0; attempt < 4; attempt++ {
		if !p.TransferFaulty("t", 0, 0, 0, attempt) {
			t.Fatalf("rate=1 attempt %d should fault", attempt)
		}
	}
	if p.TransferFaulty("t", 0, 0, 0, 4) {
		t.Error("attempt at the retry budget must succeed")
	}
	if got := p.RetryBackoffNs(1); got != 20_000 {
		t.Errorf("default first backoff = %v, want 20µs", got)
	}
	if got := p.RetryBackoffNs(3); got != 80_000 {
		t.Errorf("third backoff = %v, want 80µs", got)
	}
	if got, want := p.RetryBackoffNs(40), sim.Duration(20_000<<10); got != want {
		t.Errorf("backoff cap = %v, want %v", got, want)
	}
}

func TestParseSpec(t *testing.T) {
	cfg, err := ParseSpec("overrun=0.25, factor=2.0, factor-max=3, seed=7, xfer=0.1, retries=5, backoff-us=50, jitter=0.2, jitter-ms=3, dma-rate=10, dma-ms=2, dma-factor=3")
	if err != nil {
		t.Fatal(err)
	}
	want := Config{
		Seed: 7, OverrunRate: 0.25, OverrunFactor: 2, OverrunFactorMax: 3,
		ReleaseJitterRate: 0.2, ReleaseJitterMaxMs: 3,
		DMASlowdownRatePerSec: 10, DMASlowdownMs: 2, DMASlowdownFactor: 3,
		TransferFaultRate: 0.1, MaxRetries: 5, RetryBackoffUs: 50,
	}
	if !reflect.DeepEqual(cfg, want) {
		t.Errorf("ParseSpec = %+v, want %+v", cfg, want)
	}
	for _, bad := range []string{"overrun", "nope=1", "overrun=x", "overrun=2", "seed=1.5"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		} else if !strings.Contains(err.Error(), "fault:") {
			t.Errorf("ParseSpec(%q) error %v lacks package prefix", bad, err)
		}
	}
}

func boolToInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
