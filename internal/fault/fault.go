// Package fault provides deterministic, seed-driven fault injection for the
// executor. A Config describes *what* can go wrong (compute overruns, release
// delays, DMA slowdown windows, transient transfer faults) and with what
// rates; New compiles it into an immutable Plan that the executor consults at
// each injection point.
//
// Determinism is the load-bearing property: every per-job decision is a pure
// hash of (seed, fault class, task name, job index, segment, attempt) rather
// than a draw from a shared stream, so the outcome for one job never depends
// on the order in which other jobs are simulated. Two runs with the same
// task set, policy and plan produce byte-identical traces and metrics, and a
// Plan is safe for concurrent use by parallel sweeps. All timing math is
// integer (milli-scaled factors); floats appear only in configured rates,
// which are compared against uniform hash draws.
package fault

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"rtmdm/internal/core"
	"rtmdm/internal/sim"
)

// Config declares the fault classes a Plan injects. The zero value injects
// nothing. Rates are probabilities in [0, 1] unless noted.
type Config struct {
	// Seed drives every random decision. Zero means 1 (so the zero Config
	// plus one rate is still valid); any fixed value reproduces the run.
	Seed int64 `json:"seed,omitempty"`

	// OverrunRate is the per-segment probability that a compute phase
	// exceeds its modeled WCET.
	OverrunRate float64 `json:"overrun_rate,omitempty"`
	// OverrunFactor scales an overrunning segment's compute time
	// (1.5 = 50% over WCET). Values below 1 are rejected; the default is 1.5.
	OverrunFactor float64 `json:"overrun_factor,omitempty"`
	// OverrunFactorMax, when above OverrunFactor, makes the exceedance
	// uniform in [OverrunFactor, OverrunFactorMax] instead of constant.
	OverrunFactorMax float64 `json:"overrun_factor_max,omitempty"`
	// TaskOverrunRate overrides OverrunRate for the named tasks.
	TaskOverrunRate map[string]float64 `json:"task_overrun_rate,omitempty"`

	// ReleaseJitterRate is the per-job probability of a sporadic release
	// delay; ReleaseJitterMaxMs bounds the delay (uniform in [0, max]).
	ReleaseJitterRate  float64 `json:"release_jitter_rate,omitempty"`
	ReleaseJitterMaxMs float64 `json:"release_jitter_max_ms,omitempty"`

	// DMASlowdownRatePerSec is the expected number of transient
	// bus-contention windows per simulated second; each lasts DMASlowdownMs
	// and scales transfer work by DMASlowdownFactor (default 2.0).
	DMASlowdownRatePerSec float64 `json:"dma_slowdown_rate_per_sec,omitempty"`
	DMASlowdownMs         float64 `json:"dma_slowdown_ms,omitempty"`
	DMASlowdownFactor     float64 `json:"dma_slowdown_factor,omitempty"`

	// TransferFaultRate is the per-chunk probability that a parameter
	// transfer is lost and must be retried. MaxRetries bounds the retry
	// budget per chunk (default 3; the attempt after the last retry always
	// succeeds, so staging terminates). RetryBackoffUs is the first backoff
	// delay, doubling per attempt (default 20µs).
	TransferFaultRate float64 `json:"transfer_fault_rate,omitempty"`
	MaxRetries        int     `json:"max_retries,omitempty"`
	RetryBackoffUs    float64 `json:"retry_backoff_us,omitempty"`
}

// Enabled reports whether the Config injects any fault at all.
func (c Config) Enabled() bool {
	if c.OverrunRate > 0 || c.ReleaseJitterRate > 0 ||
		c.DMASlowdownRatePerSec > 0 || c.TransferFaultRate > 0 {
		return true
	}
	for _, r := range c.TaskOverrunRate {
		if r > 0 {
			return true
		}
	}
	return false
}

// Validate rejects rates outside [0, 1], non-finite values, factors below 1
// and budgets outside sane bounds, so hostile scenario files cannot drive
// the executor into overflow or unbounded work.
func (c Config) Validate() error {
	rate := func(name string, v float64) error {
		if math.IsNaN(v) || v < 0 || v > 1 {
			return fmt.Errorf("fault: %s %v outside [0, 1]", name, v)
		}
		return nil
	}
	pos := func(name string, v, max float64) error {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 || v > max {
			return fmt.Errorf("fault: %s %v outside [0, %v]", name, v, max)
		}
		return nil
	}
	if err := rate("overrun_rate", c.OverrunRate); err != nil {
		return err
	}
	for name, v := range c.TaskOverrunRate {
		if err := rate("task_overrun_rate["+name+"]", v); err != nil {
			return err
		}
	}
	for _, f := range [...]struct {
		name string
		v    float64
	}{{"overrun_factor", c.OverrunFactor}, {"overrun_factor_max", c.OverrunFactorMax}, {"dma_slowdown_factor", c.DMASlowdownFactor}} {
		if f.v == 0 {
			continue // defaulted
		}
		if math.IsNaN(f.v) || f.v < 1 || f.v > 1000 {
			return fmt.Errorf("fault: %s %v outside [1, 1000]", f.name, f.v)
		}
	}
	if err := rate("release_jitter_rate", c.ReleaseJitterRate); err != nil {
		return err
	}
	if err := pos("release_jitter_max_ms", c.ReleaseJitterMaxMs, 1e7); err != nil {
		return err
	}
	if err := pos("dma_slowdown_rate_per_sec", c.DMASlowdownRatePerSec, 1e6); err != nil {
		return err
	}
	if err := pos("dma_slowdown_ms", c.DMASlowdownMs, 1e7); err != nil {
		return err
	}
	if err := rate("transfer_fault_rate", c.TransferFaultRate); err != nil {
		return err
	}
	if c.MaxRetries < 0 || c.MaxRetries > 100 {
		return fmt.Errorf("fault: max_retries %d outside [0, 100]", c.MaxRetries)
	}
	if err := pos("retry_backoff_us", c.RetryBackoffUs, 1e9); err != nil {
		return err
	}
	return nil
}

// window is one compiled DMA-slowdown interval [from, to).
type window struct {
	from, to sim.Time
}

// Plan is a compiled, immutable fault schedule over one simulation horizon.
// All methods are safe on a nil receiver (inject nothing) and safe for
// concurrent use.
type Plan struct {
	seed uint64

	overrunRate     float64
	taskOverrun     map[string]float64
	factorMilliLo   int64 // overrun factor x1000, lower bound
	factorMilliSpan int64 // inclusive span above lower bound

	jitterRate  float64
	jitterMaxNs int64

	windows        []window
	dmaFactorMilli int64

	xferRate  float64
	maxRetry  int
	backoffNs int64
}

// Hash-domain separators, one per fault class, so a segment's overrun draw
// never correlates with its transfer-fault draw.
const (
	classOverrun uint64 = 0x6f76722d636c6173 // "ovr-clas"
	classFactor  uint64 = 0x6661632d636c6173
	classJitter  uint64 = 0x6a69742d636c6173
	classJitAmt  uint64 = 0x6a616d2d636c6173
	classXfer    uint64 = 0x7866722d636c6173
)

// New compiles cfg into a Plan for a run of the given horizon. DMA slowdown
// windows are laid out once here from a seeded source (window placement is
// the only use of a sequential stream; everything per-job is hashed).
// Returns nil (inject nothing) when cfg.Enabled() is false.
func New(cfg Config, horizon sim.Duration) (*Plan, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !cfg.Enabled() {
		return nil, nil
	}
	if horizon <= 0 {
		return nil, fmt.Errorf("fault: horizon %v must be positive", horizon)
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	p := &Plan{
		seed:        mix64(uint64(seed) * 0x9e3779b97f4a7c15),
		overrunRate: cfg.OverrunRate,
		jitterRate:  cfg.ReleaseJitterRate,
		jitterMaxNs: int64(cfg.ReleaseJitterMaxMs * 1e6),
		xferRate:    cfg.TransferFaultRate,
		maxRetry:    cfg.MaxRetries,
	}
	if len(cfg.TaskOverrunRate) > 0 {
		p.taskOverrun = make(map[string]float64, len(cfg.TaskOverrunRate))
		for k, v := range cfg.TaskOverrunRate {
			p.taskOverrun[k] = v
		}
	}
	lo := cfg.OverrunFactor
	if lo == 0 {
		lo = 1.5
	}
	hi := cfg.OverrunFactorMax
	if hi < lo {
		hi = lo
	}
	p.factorMilliLo = int64(math.Round(lo * 1000))
	p.factorMilliSpan = int64(math.Round(hi*1000)) - p.factorMilliLo
	if p.maxRetry == 0 {
		p.maxRetry = 3
	}
	if cfg.RetryBackoffUs == 0 {
		p.backoffNs = 20_000
	} else {
		p.backoffNs = int64(cfg.RetryBackoffUs * 1000)
	}
	dmaFac := cfg.DMASlowdownFactor
	if dmaFac == 0 {
		dmaFac = 2.0
	}
	p.dmaFactorMilli = int64(math.Round(dmaFac * 1000))

	if cfg.DMASlowdownRatePerSec > 0 && cfg.DMASlowdownMs > 0 {
		meanGapNs := 1e9 / cfg.DMASlowdownRatePerSec
		lenNs := sim.Duration(cfg.DMASlowdownMs * 1e6) //lint:allow millitime -- plan-compile boundary: float ms from config, bounds-checked below
		if lenNs <= 0 {
			lenNs = 1
		}
		rng := rand.New(rand.NewSource(seed ^ 0x77696e646f7773)) // "windows"
		at := sim.Time(0)
		const maxWindows = 1 << 20 // backstop against hostile rate×horizon
		for len(p.windows) < maxWindows {
			gap := sim.Duration(meanGapNs * (0.5 + rng.Float64())) //lint:allow millitime -- plan-compile boundary: Poisson gap drawn once per window, clamped to >= 1
			if gap < 1 {
				gap = 1
			}
			at += sim.Time(gap)
			if at >= sim.Time(horizon) {
				break
			}
			end := at + sim.Time(lenNs)
			p.windows = append(p.windows, window{from: at, to: end})
			at = end
		}
	}
	return p, nil
}

// mix64 is the splitmix64 finalizer: a cheap, high-quality bijective mixer.
func mix64(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// draw hashes one decision point into a uniform uint64.
func (p *Plan) draw(class uint64, task string, a, b, c int64) uint64 {
	h := p.seed ^ mix64(class)
	for i := 0; i < len(task); i++ {
		h = (h ^ uint64(task[i])) * 1099511628211 // FNV-1a step
	}
	h = mix64(h ^ uint64(a)*0xa24baed4963ee407)
	h = mix64(h ^ uint64(b)*0x9fb21c651e98df25)
	h = mix64(h ^ uint64(c)*0xc2b2ae3d27d4eb4f)
	return h
}

// unit maps a hash to a uniform float in [0, 1).
func unit(h uint64) float64 { return float64(h>>11) / (1 << 53) }

// OverrunExtraNs returns the extra compute time injected into segment seg of
// job (task, job), or 0 when the segment runs at its modeled WCET.
func (p *Plan) OverrunExtraNs(task string, job, seg int, computeNs int64) int64 {
	if p == nil || computeNs <= 0 {
		return 0
	}
	rate := p.overrunRate
	if r, ok := p.taskOverrun[task]; ok {
		rate = r
	}
	if rate <= 0 || unit(p.draw(classOverrun, task, int64(job), int64(seg), 0)) >= rate {
		return 0
	}
	milli := p.factorMilliLo
	if p.factorMilliSpan > 0 {
		milli += int64(p.draw(classFactor, task, int64(job), int64(seg), 0) % uint64(p.factorMilliSpan+1))
	}
	return core.ScaleNsMilli(computeNs, milli-1000)
}

// ReleaseDelay returns the sporadic delay injected into job's release, or 0.
func (p *Plan) ReleaseDelay(task string, job int) sim.Duration {
	if p == nil || p.jitterRate <= 0 || p.jitterMaxNs <= 0 {
		return 0
	}
	if unit(p.draw(classJitter, task, int64(job), 0, 0)) >= p.jitterRate {
		return 0
	}
	return sim.Duration(p.draw(classJitAmt, task, int64(job), 0, 0) % uint64(p.jitterMaxNs+1))
}

// MaxReleaseDelay bounds ReleaseDelay; the executor folds it into each
// task's effective jitter so the trace invariants stay checkable.
func (p *Plan) MaxReleaseDelay() sim.Duration {
	if p == nil || p.jitterRate <= 0 {
		return 0
	}
	return sim.Duration(p.jitterMaxNs)
}

// DMADerateNs scales a transfer's nominal work when it starts inside a
// slowdown window; outside windows (and on a nil plan) it is the identity.
func (p *Plan) DMADerateNs(at sim.Time, workNs int64) int64 {
	if !p.InSlowdown(at) {
		return workNs
	}
	return core.ScaleNsMilli(workNs, p.dmaFactorMilli)
}

// InSlowdown reports whether at falls inside a compiled slowdown window.
func (p *Plan) InSlowdown(at sim.Time) bool {
	if p == nil || len(p.windows) == 0 {
		return false
	}
	i := sort.Search(len(p.windows), func(i int) bool { return p.windows[i].to > at })
	return i < len(p.windows) && p.windows[i].from <= at
}

// Windows returns the number of compiled DMA slowdown windows (for tests
// and reporting).
func (p *Plan) Windows() int {
	if p == nil {
		return 0
	}
	return len(p.windows)
}

// TransferFaulty reports whether the chunk at byte offset chunkOff of
// segment seg (job job of task) fails on this attempt. Attempts at or past
// the retry budget always succeed, so staging terminates.
func (p *Plan) TransferFaulty(task string, job, seg int, chunkOff int64, attempt int) bool {
	if p == nil || p.xferRate <= 0 || attempt >= p.maxRetry {
		return false
	}
	return unit(p.draw(classXfer, task, int64(job), int64(seg), chunkOff*131+int64(attempt))) < p.xferRate
}

// RetryBackoffNs returns the backoff before retry attempt n (1-based),
// doubling per attempt and capped at 1024x the base.
func (p *Plan) RetryBackoffNs(attempt int) sim.Duration {
	if p == nil {
		return 0
	}
	shift := attempt - 1
	if shift < 0 {
		shift = 0
	}
	if shift > 10 {
		shift = 10
	}
	return sim.Duration(p.backoffNs << uint(shift))
}

// MaxRetries returns the per-chunk retry budget.
func (p *Plan) MaxRetries() int {
	if p == nil {
		return 0
	}
	return p.maxRetry
}

// ParseSpec parses the compact command-line fault syntax used by
// rtmdm-sim's -faults flag: comma-separated key=value pairs, e.g.
//
//	overrun=0.25,factor=2.0,seed=7
//	xfer=0.1,retries=5,backoff-us=50
//	jitter=0.2,jitter-ms=3,dma-rate=10,dma-ms=2,dma-factor=3
//
// Keys: overrun, factor, factor-max, jitter, jitter-ms, dma-rate, dma-ms,
// dma-factor, xfer, retries, backoff-us, seed.
func ParseSpec(spec string) (Config, error) {
	var cfg Config
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return Config{}, fmt.Errorf("fault: spec field %q is not key=value", field)
		}
		key = strings.TrimSpace(key)
		val = strings.TrimSpace(val)
		if key == "seed" || key == "retries" {
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return Config{}, fmt.Errorf("fault: spec %s=%q: %v", key, val, err)
			}
			if key == "seed" {
				cfg.Seed = n
			} else {
				cfg.MaxRetries = int(n)
			}
			continue
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return Config{}, fmt.Errorf("fault: spec %s=%q: %v", key, val, err)
		}
		switch key {
		case "overrun":
			cfg.OverrunRate = f
		case "factor":
			cfg.OverrunFactor = f
		case "factor-max":
			cfg.OverrunFactorMax = f
		case "jitter":
			cfg.ReleaseJitterRate = f
		case "jitter-ms":
			cfg.ReleaseJitterMaxMs = f
		case "dma-rate":
			cfg.DMASlowdownRatePerSec = f
		case "dma-ms":
			cfg.DMASlowdownMs = f
		case "dma-factor":
			cfg.DMASlowdownFactor = f
		case "xfer":
			cfg.TransferFaultRate = f
		case "backoff-us":
			cfg.RetryBackoffUs = f
		default:
			return Config{}, fmt.Errorf("fault: unknown spec key %q", key)
		}
	}
	if err := cfg.Validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}
