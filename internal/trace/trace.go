// Package trace records what the virtual-time executor did — releases,
// parameter loads, segment executions, completions, deadline misses — and
// derives metrics and invariant checks from the record. Every scheduling
// claim in the evaluation is auditable against these traces.
package trace

import (
	"fmt"
	"io"
	"math"
	"sort"

	"rtmdm/internal/core"
	"rtmdm/internal/sim"
)

// Kind enumerates trace event types.
type Kind int

const (
	// Release marks a job arrival.
	Release Kind = iota
	// LoadStart marks a segment's parameter transfer occupying the DMA.
	LoadStart
	// LoadEnd marks the transfer completion (same instant as LoadStart
	// for zero-byte segments, which issue no transfer).
	LoadEnd
	// ComputeStart marks a segment occupying the CPU.
	ComputeStart
	// ComputeEnd marks the segment's completion.
	ComputeEnd
	// JobDone marks the completion of a job's last segment.
	JobDone
	// DeadlineMiss marks the instant a job's absolute deadline passed
	// without completion.
	DeadlineMiss
	// Overrun marks an injected compute-WCET exceedance: the segment's
	// compute phase runs longer than its modeled cost. Bytes carries the
	// extra nanoseconds. Emitted at the segment's ComputeStart instant.
	Overrun
	// Abort marks a job killed at its deadline under core.OverrunAbort.
	// Exactly one Abort is emitted per aborted job, at the same instant as
	// its DeadlineMiss, and no further events for that job may follow.
	Abort
	// DMARetry marks a chunk transfer lost to an injected transient fault:
	// the transfer occupied the channel for its full duration (DMARetry
	// closes the occupancy interval like LoadEnd) but staged nothing, and
	// the chunk is re-issued after a backoff.
	DMARetry
)

var kindNames = [...]string{
	"release", "load-start", "load-end", "compute-start", "compute-end",
	"job-done", "deadline-miss", "overrun", "abort", "dma-retry",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Event is one timestamped occurrence.
type Event struct {
	At      sim.Time
	Kind    Kind
	Task    string
	Job     int
	Segment int // -1 for job-level events
	// Bytes is the transfer size on LoadStart/LoadEnd events. Zero-byte
	// loads are instantaneous and never occupy the DMA channel, so the
	// exclusivity invariant ignores them.
	Bytes int64
}

func (e Event) String() string {
	if e.Segment >= 0 {
		return fmt.Sprintf("%v %s %s#%d seg%d", e.At, e.Kind, e.Task, e.Job, e.Segment)
	}
	return fmt.Sprintf("%v %s %s#%d", e.At, e.Kind, e.Task, e.Job)
}

// Trace is an append-only event log.
type Trace struct {
	Events []Event
}

// Add appends an event. Timestamps must be nondecreasing.
func (tr *Trace) Add(e Event) {
	if n := len(tr.Events); n > 0 && e.At < tr.Events[n-1].At {
		panic(fmt.Sprintf("trace: time went backwards: %v after %v", e, tr.Events[n-1]))
	}
	tr.Events = append(tr.Events, e)
}

// Len returns the event count.
func (tr *Trace) Len() int { return len(tr.Events) }

// Dump writes the whole trace, one event per line.
func (tr *Trace) Dump(w io.Writer) {
	for _, e := range tr.Events {
		fmt.Fprintln(w, e)
	}
}

// TaskInfo is the static description Metrics and CheckInvariants need
// about each task (kept minimal to avoid a dependency on internal/task).
type TaskInfo struct {
	Name     string
	Period   sim.Duration
	Deadline sim.Duration
	Offset   sim.Duration
	// Jitter is the maximum release delay past the nominal grid point.
	Jitter   sim.Duration
	Segments int
}

// TaskMetrics aggregates per-task outcomes.
type TaskMetrics struct {
	Released      int
	Completed     int
	Misses        int
	Aborted       int // jobs killed at their deadline under OverrunAbort
	Unfinished    int // released, incomplete at horizon, deadline already passed or not
	MaxResponse   sim.Duration
	TotalResponse sim.Duration
	MaxLateness   sim.Duration // max(completion - deadline), negative if always early
	// Responses holds every completed job's response time, in completion
	// order (the raw series percentiles derive from).
	Responses []sim.Duration
}

// Percentile returns the p-th percentile (0 < p ≤ 100) of completed
// responses using the nearest-rank method, or 0 with no completions.
func (m *TaskMetrics) Percentile(p float64) sim.Duration {
	if len(m.Responses) == 0 || p <= 0 {
		return 0
	}
	if p > 100 {
		p = 100
	}
	sorted := append([]sim.Duration(nil), m.Responses...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// AvgResponse returns the mean response time of completed jobs.
func (m *TaskMetrics) AvgResponse() sim.Duration {
	if m.Completed == 0 {
		return 0
	}
	return m.TotalResponse / sim.Duration(m.Completed)
}

// MissRatio returns misses (including unfinished jobs whose deadline fell
// within the horizon) over released jobs.
func (m *TaskMetrics) MissRatio() float64 {
	if m.Released == 0 {
		return 0
	}
	return float64(m.Misses) / float64(m.Released)
}

// Metrics summarizes a trace against a task set.
type Metrics struct {
	Horizon sim.Time
	PerTask map[string]*TaskMetrics
}

// TotalMissRatio is total misses over total releases.
func (m *Metrics) TotalMissRatio() float64 {
	var miss, rel int
	for _, tm := range m.PerTask {
		miss += tm.Misses
		rel += tm.Released
	}
	if rel == 0 {
		return 0
	}
	return float64(miss) / float64(rel)
}

// AnyMiss reports whether any deadline was missed.
func (m *Metrics) AnyMiss() bool {
	for _, tm := range m.PerTask {
		if tm.Misses > 0 {
			return true
		}
	}
	return false
}

// Analyze computes metrics from the trace. A job counts as a miss if a
// DeadlineMiss event was recorded for it, or if it remained unfinished at
// the horizon with its absolute deadline inside the horizon.
func (tr *Trace) Analyze(tasks []TaskInfo, horizon sim.Time) *Metrics {
	m := &Metrics{Horizon: horizon, PerTask: map[string]*TaskMetrics{}}
	info := map[string]TaskInfo{}
	for _, ti := range tasks {
		m.PerTask[ti.Name] = &TaskMetrics{MaxLateness: -1 << 62}
		info[ti.Name] = ti
	}
	type jobKey struct {
		task string
		job  int
	}
	released := map[jobKey]sim.Time{}
	completed := map[jobKey]bool{}
	missed := map[jobKey]bool{}
	for _, e := range tr.Events {
		tm, ok := m.PerTask[e.Task]
		if !ok {
			continue
		}
		k := jobKey{e.Task, e.Job}
		switch e.Kind {
		case Release:
			tm.Released++
			released[k] = e.At
		case JobDone:
			tm.Completed++
			completed[k] = true
			rel, ok := released[k]
			if !ok {
				continue
			}
			resp := e.At - rel
			tm.TotalResponse += resp
			tm.Responses = append(tm.Responses, resp)
			if resp > tm.MaxResponse {
				tm.MaxResponse = resp
			}
			lat := resp - info[e.Task].Deadline
			if lat > tm.MaxLateness {
				tm.MaxLateness = lat
			}
			// Late completion is a deadline miss even without an explicit
			// DeadlineMiss event.
			if lat > 0 && !missed[k] {
				missed[k] = true
				tm.Misses++
			}
		case DeadlineMiss:
			if !missed[k] {
				missed[k] = true
				tm.Misses++
			}
		case Abort:
			tm.Aborted++
		}
	}
	// Unfinished jobs whose deadline expired inside the horizon but that
	// recorded no explicit miss event still count as misses.
	for k, rel := range released {
		if completed[k] || missed[k] {
			continue
		}
		tm := m.PerTask[k.task]
		tm.Unfinished++
		if rel+info[k.task].Deadline <= horizon {
			tm.Misses++
		}
	}
	return m
}

// CheckInvariants verifies the physical consistency of the trace (PT-3):
//
//  1. CPU exclusivity: compute intervals never overlap.
//  2. DMA exclusivity: load intervals never overlap.
//  3. Per job, segment computes happen in index order, and each segment's
//     compute starts no earlier than its load completed.
//  4. Job releases fall within [Offset + k·Period, … + Jitter].
//  5. JobDone coincides with the job's last segment ComputeEnd.
//  6. DeadlineMiss events sit exactly at release + Deadline and only for
//     jobs that had not completed by then.
//  7. Abort events sit exactly at release + Deadline, occur at most once
//     per job, only for incomplete jobs, reclaim any CPU/DMA interval the
//     job held, and terminate the job: no later event may reference it.
//  8. DMARetry closes the DMA occupancy interval of the faulted chunk like
//     LoadEnd, but stages nothing (a segment may not compute on its back).
//  9. Overrun events reference a released, incomplete job.
func (tr *Trace) CheckInvariants(tasks []TaskInfo) error {
	info := map[string]TaskInfo{}
	for _, ti := range tasks {
		info[ti.Name] = ti
	}
	type jobKey struct {
		task string
		job  int
	}
	cpuBusy := false
	dmaBusy := false
	var cpuOwner, dmaOwner Event
	loadDone := map[jobKey]map[int]sim.Time{}
	lastSeg := map[jobKey]int{}
	releases := map[jobKey]sim.Time{}
	lastComputeEnd := map[jobKey]Event{}
	jobDone := map[jobKey]Event{}
	aborted := map[jobKey]bool{}

	for _, e := range tr.Events {
		k := jobKey{e.Task, e.Job}
		if aborted[k] {
			return fmt.Errorf("trace: %v references a job already aborted", e)
		}
		switch e.Kind {
		case Release:
			ti, ok := info[e.Task]
			if !ok {
				return fmt.Errorf("trace: release for unknown task %q", e.Task)
			}
			nominal := core.SatAddTime(ti.Offset, core.SatMulTime(ti.Period, int64(e.Job)))
			if e.At < nominal || e.At > nominal+ti.Jitter {
				return fmt.Errorf("trace: %s#%d released at %v, want within [%v, %v]",
					e.Task, e.Job, e.At, nominal, nominal+ti.Jitter)
			}
			releases[k] = e.At
		case LoadStart:
			if e.Bytes == 0 {
				continue // instantaneous, channel not occupied
			}
			if dmaBusy {
				return fmt.Errorf("trace: DMA overlap: %v begins while %v in flight", e, dmaOwner)
			}
			dmaBusy, dmaOwner = true, e
		case LoadEnd:
			if e.Bytes != 0 {
				if !dmaBusy || dmaOwner.Task != e.Task || dmaOwner.Job != e.Job || dmaOwner.Segment != e.Segment {
					return fmt.Errorf("trace: unmatched load-end %v (owner %v)", e, dmaOwner)
				}
				dmaBusy = false
			}
			if loadDone[k] == nil {
				loadDone[k] = map[int]sim.Time{}
			}
			loadDone[k][e.Segment] = e.At
		case ComputeStart:
			if cpuBusy {
				return fmt.Errorf("trace: CPU overlap: %v begins while %v in flight", e, cpuOwner)
			}
			cpuBusy, cpuOwner = true, e
			ld, ok := loadDone[k][e.Segment]
			if !ok {
				return fmt.Errorf("trace: %v computes before its load completed", e)
			}
			if e.At < ld {
				return fmt.Errorf("trace: %v computes at %v before load done at %v", e, e.At, ld)
			}
			if prev, ok := lastSeg[k]; ok && e.Segment != prev+1 {
				return fmt.Errorf("trace: %s#%d segment order %d after %d", e.Task, e.Job, e.Segment, prev)
			} else if !ok && e.Segment != 0 {
				return fmt.Errorf("trace: %s#%d first computed segment is %d", e.Task, e.Job, e.Segment)
			}
			lastSeg[k] = e.Segment
		case ComputeEnd:
			if !cpuBusy || cpuOwner.Task != e.Task || cpuOwner.Job != e.Job || cpuOwner.Segment != e.Segment {
				return fmt.Errorf("trace: unmatched compute-end %v (owner %v)", e, cpuOwner)
			}
			cpuBusy = false
			lastComputeEnd[k] = e
		case JobDone:
			ti := info[e.Task]
			le, ok := lastComputeEnd[k]
			if !ok || le.At != e.At || le.Segment != ti.Segments-1 {
				return fmt.Errorf("trace: job-done %v does not coincide with last segment end (%v)", e, le)
			}
			jobDone[k] = e
		case DeadlineMiss:
			ti, ok := info[e.Task]
			if !ok {
				return fmt.Errorf("trace: miss for unknown task %q", e.Task)
			}
			rel, ok := releases[k]
			if !ok {
				return fmt.Errorf("trace: %v without a release", e)
			}
			if want := rel + ti.Deadline; e.At != want {
				return fmt.Errorf("trace: %v at %v, want the absolute deadline %v", e, e.At, want)
			}
			if done, ok := jobDone[k]; ok && done.At <= e.At {
				return fmt.Errorf("trace: %v after the job completed at %v", e, done.At)
			}
		case Overrun:
			if _, ok := releases[k]; !ok {
				return fmt.Errorf("trace: %v without a release", e)
			}
			if _, ok := jobDone[k]; ok {
				return fmt.Errorf("trace: %v after the job completed", e)
			}
		case DMARetry:
			if e.Bytes == 0 {
				continue // zero-byte loads never occupy the channel
			}
			if !dmaBusy || dmaOwner.Task != e.Task || dmaOwner.Job != e.Job || dmaOwner.Segment != e.Segment {
				return fmt.Errorf("trace: unmatched dma-retry %v (owner %v)", e, dmaOwner)
			}
			dmaBusy = false
		case Abort:
			ti, ok := info[e.Task]
			if !ok {
				return fmt.Errorf("trace: abort for unknown task %q", e.Task)
			}
			rel, ok := releases[k]
			if !ok {
				return fmt.Errorf("trace: %v without a release", e)
			}
			if want := rel + ti.Deadline; e.At != want {
				return fmt.Errorf("trace: %v at %v, want the absolute deadline %v", e, e.At, want)
			}
			if _, ok := jobDone[k]; ok {
				return fmt.Errorf("trace: %v for a completed job", e)
			}
			// The abort reclaims whatever interval the job held open.
			if cpuBusy && cpuOwner.Task == e.Task && cpuOwner.Job == e.Job {
				cpuBusy = false
			}
			if dmaBusy && dmaOwner.Task == e.Task && dmaOwner.Job == e.Job {
				dmaBusy = false
			}
			aborted[k] = true
		}
	}
	return nil
}

// CSV writes the trace as comma-separated rows: at_ns, kind, task, job,
// segment, bytes — the interchange format for offline tooling.
func (tr *Trace) CSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "at_ns,kind,task,job,segment,bytes"); err != nil {
		return err
	}
	for _, e := range tr.Events {
		if _, err := fmt.Fprintf(w, "%d,%s,%s,%d,%d,%d\n",
			int64(e.At), e.Kind, e.Task, e.Job, e.Segment, e.Bytes); err != nil {
			return err
		}
	}
	return nil
}
