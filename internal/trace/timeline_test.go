package trace

import (
	"strings"
	"testing"
)

func renderGood(t *testing.T, tl Timeline) string {
	t.Helper()
	tr := goodTrace()
	var sb strings.Builder
	if err := tl.Render(&sb, tr, []TaskInfo{ti("a", 100, 100, 2)}); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func TestTimelineRenderBasics(t *testing.T) {
	out := renderGood(t, Timeline{From: 0, To: 200, Width: 100})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// header, CPU, DMA, one task lane, key.
	if len(lines) != 5 {
		t.Fatalf("rendered %d lines:\n%s", len(lines), out)
	}
	cpu := lines[1]
	dma := lines[2]
	lane := lines[3]
	if !strings.Contains(cpu, "A") {
		t.Fatalf("CPU lane has no compute marks: %q", cpu)
	}
	if !strings.Contains(dma, "a") {
		t.Fatalf("DMA lane has no load marks: %q", dma)
	}
	for _, want := range []string{"R", "D", "="} {
		if !strings.Contains(lane, want) {
			t.Fatalf("task lane missing %q: %q", want, lane)
		}
	}
	if !strings.Contains(lines[4], "A=a") {
		t.Fatalf("key missing: %q", lines[4])
	}
}

func TestTimelineColumnsAlign(t *testing.T) {
	// Job 0 computes in [10,50] of a 0..200 window at width 100: compute
	// marks must only appear in columns ~5..25 and ~55..80 (job 1).
	out := renderGood(t, Timeline{From: 0, To: 200, Width: 100})
	cpu := strings.Split(out, "\n")[1]
	row := cpu[strings.LastIndex(cpu, " ")+1:]
	first := strings.IndexByte(row, 'A')
	last := strings.LastIndexByte(row, 'A')
	if first < 4 || first > 7 {
		t.Fatalf("first compute column %d, want ≈ 5", first)
	}
	if last < 78 || last > 82 {
		t.Fatalf("last compute column %d, want ≈ 80", last)
	}
}

func TestTimelineWindowClipsEvents(t *testing.T) {
	// A window covering only job 1 must not show job 0's marks.
	out := renderGood(t, Timeline{From: 100, To: 200, Width: 50})
	lane := strings.Split(out, "\n")[3]
	if strings.Count(lane, "R") != 1 {
		t.Fatalf("clipped window shows wrong release count: %q", lane)
	}
}

func TestTimelineMissMarker(t *testing.T) {
	tr := &Trace{}
	tr.Add(Event{At: 0, Kind: Release, Task: "a", Job: 0, Segment: -1})
	tr.Add(Event{At: 50, Kind: DeadlineMiss, Task: "a", Job: 0, Segment: -1})
	var sb strings.Builder
	err := (Timeline{From: 0, To: 100, Width: 20}).Render(&sb, tr, []TaskInfo{ti("a", 100, 50, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "X") {
		t.Fatalf("miss marker absent:\n%s", sb.String())
	}
	// Pending job shows as R followed by '=' fill.
	if !strings.Contains(sb.String(), "R=") {
		t.Fatalf("pending fill absent:\n%s", sb.String())
	}
}

func TestTimelineRejectsEmptyWindow(t *testing.T) {
	tr := goodTrace()
	var sb strings.Builder
	if err := (Timeline{From: 10, To: 10}).Render(&sb, tr, nil); err == nil {
		t.Fatal("empty window accepted")
	}
}

func TestTimelineDefaultWidth(t *testing.T) {
	out := renderGood(t, Timeline{From: 0, To: 200})
	cpu := strings.Split(out, "\n")[1]
	row := cpu[strings.LastIndex(cpu, " ")+1:]
	if len(row) != 100 {
		t.Fatalf("default width = %d, want 100", len(row))
	}
}
