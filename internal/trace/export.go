package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Perfetto / Chrome Trace Event Format export.
//
// ExportJSON renders a trace in the JSON Trace Event Format that
// ui.perfetto.dev and chrome://tracing load directly. The track layout:
//
//   - one "CPU" track carrying every segment compute as a complete (X)
//     slice named "task#job seg k";
//   - one "DMA" track carrying every non-zero parameter transfer as an X
//     slice with the byte count in its args (zero-byte segments never
//     occupy the channel and are omitted);
//   - one track per task carrying its job lifetimes as async (b/e) spans
//     keyed by job index — overlapping jobs of one task render side by
//     side — plus instant (i) markers for releases and deadline misses.
//
// Timestamps are microseconds (the format's unit) with nanosecond
// precision preserved in the fraction. Output is byte-deterministic for a
// given trace: event order follows the trace, map-free structs serialize
// with fixed field order, and args use a fixed-order struct. The golden
// test in export_test.go pins the format.

// tevPhase values used by the exporter.
const (
	phComplete   = "X"
	phInstant    = "i"
	phAsyncBegin = "b"
	phAsyncEnd   = "e"
	phMetadata   = "M"
)

// tevArgs is the fixed-order argument payload attached to slices.
type tevArgs struct {
	Task    string `json:"task,omitempty"`
	Job     *int   `json:"job,omitempty"`
	Segment *int   `json:"segment,omitempty"`
	Bytes   int64  `json:"bytes,omitempty"`
	Name    string `json:"name,omitempty"` // metadata payload
	Sort    *int   `json:"sort_index,omitempty"`
}

// tev is one Trace Event Format record.
type tev struct {
	Name string   `json:"name"`
	Ph   string   `json:"ph"`
	Ts   float64  `json:"ts"`
	Dur  *float64 `json:"dur,omitempty"`
	Pid  int      `json:"pid"`
	Tid  int      `json:"tid"`
	Cat  string   `json:"cat,omitempty"`
	ID   string   `json:"id,omitempty"`
	S    string   `json:"s,omitempty"`
	Args *tevArgs `json:"args,omitempty"`
}

// Track ids inside the single exported process.
const (
	exportPid  = 1
	cpuTid     = 1
	dmaTid     = 2
	taskTidLo  = 10 // tasks occupy tid 10, 11, … in infos order
	instScopeT = "t"
)

// usec converts virtual nanoseconds to the format's microsecond unit,
// keeping sub-microsecond precision in the fraction.
func usec(ns int64) float64 { return float64(ns) / 1e3 }

// ExportJSON writes tr in the Trace Event Format. infos supplies the task
// universe (its order fixes per-task track placement); an event naming a
// task absent from infos is an error, mirroring CheckInvariants.
func ExportJSON(w io.Writer, tr *Trace, infos []TaskInfo) error {
	tids := make(map[string]int, len(infos))
	events := make([]tev, 0, len(tr.Events)+len(infos)+3)

	meta := func(tid int, kind, payload string, sort int) {
		s := sort
		events = append(events, tev{
			Name: kind, Ph: phMetadata, Pid: exportPid, Tid: tid,
			Args: &tevArgs{Name: payload, Sort: &s},
		})
	}
	meta(cpuTid, "process_name", "rtmdm", 0)
	meta(cpuTid, "thread_name", "CPU", 1)
	meta(dmaTid, "thread_name", "DMA", 2)
	for i, ti := range infos {
		if _, dup := tids[ti.Name]; dup {
			return fmt.Errorf("trace: duplicate task %q in infos", ti.Name)
		}
		tids[ti.Name] = taskTidLo + i
		meta(taskTidLo+i, "thread_name", "task "+ti.Name, taskTidLo+i)
	}

	type spanKey struct {
		task string
		job  int
		seg  int
	}
	openCompute := map[spanKey]int64{}
	openLoad := map[spanKey]int64{}

	for _, e := range tr.Events {
		tid, ok := tids[e.Task]
		if !ok {
			return fmt.Errorf("trace: event for unknown task %q (not in infos)", e.Task)
		}
		k := spanKey{e.Task, e.Job, e.Segment}
		job := e.Job
		seg := e.Segment
		switch e.Kind {
		case Release:
			events = append(events, tev{
				Name: fmt.Sprintf("%s#%d", e.Task, e.Job), Ph: phAsyncBegin,
				Ts: usec(int64(e.At)), Pid: exportPid, Tid: tid,
				Cat: "job", ID: fmt.Sprintf("%s#%d", e.Task, e.Job),
			})
			events = append(events, tev{
				Name: "release", Ph: phInstant, Ts: usec(int64(e.At)),
				Pid: exportPid, Tid: tid, S: instScopeT,
				Args: &tevArgs{Task: e.Task, Job: &job},
			})
		case LoadStart:
			if e.Bytes == 0 {
				continue // instantaneous: no DMA occupancy, no slice
			}
			openLoad[k] = int64(e.At)
		case LoadEnd:
			if e.Bytes == 0 {
				continue
			}
			start, ok := openLoad[k]
			if !ok {
				return fmt.Errorf("trace: load-end without load-start: %v", e)
			}
			delete(openLoad, k)
			dur := usec(int64(e.At) - start)
			events = append(events, tev{
				Name: fmt.Sprintf("%s#%d seg%d", e.Task, e.Job, e.Segment),
				Ph:   phComplete, Ts: usec(start), Dur: &dur,
				Pid: exportPid, Tid: dmaTid, Cat: "load",
				Args: &tevArgs{Task: e.Task, Job: &job, Segment: &seg, Bytes: e.Bytes},
			})
		case ComputeStart:
			openCompute[k] = int64(e.At)
		case ComputeEnd:
			start, ok := openCompute[k]
			if !ok {
				return fmt.Errorf("trace: compute-end without compute-start: %v", e)
			}
			delete(openCompute, k)
			dur := usec(int64(e.At) - start)
			events = append(events, tev{
				Name: fmt.Sprintf("%s#%d seg%d", e.Task, e.Job, e.Segment),
				Ph:   phComplete, Ts: usec(start), Dur: &dur,
				Pid: exportPid, Tid: cpuTid, Cat: "compute",
				Args: &tevArgs{Task: e.Task, Job: &job, Segment: &seg},
			})
		case JobDone:
			events = append(events, tev{
				Name: fmt.Sprintf("%s#%d", e.Task, e.Job), Ph: phAsyncEnd,
				Ts: usec(int64(e.At)), Pid: exportPid, Tid: tid,
				Cat: "job", ID: fmt.Sprintf("%s#%d", e.Task, e.Job),
			})
		case DeadlineMiss:
			events = append(events, tev{
				Name: "deadline-miss", Ph: phInstant, Ts: usec(int64(e.At)),
				Pid: exportPid, Tid: tid, S: instScopeT,
				Args: &tevArgs{Task: e.Task, Job: &job},
			})
		case Overrun:
			events = append(events, tev{
				Name: "overrun", Ph: phInstant, Ts: usec(int64(e.At)),
				Pid: exportPid, Tid: tid, S: instScopeT,
				Args: &tevArgs{Task: e.Task, Job: &job, Segment: &seg, Bytes: e.Bytes},
			})
		case DMARetry:
			if e.Bytes == 0 {
				continue
			}
			start, ok := openLoad[k]
			if !ok {
				return fmt.Errorf("trace: dma-retry without load-start: %v", e)
			}
			delete(openLoad, k)
			dur := usec(int64(e.At) - start)
			events = append(events, tev{
				Name: fmt.Sprintf("%s#%d seg%d retry", e.Task, e.Job, e.Segment),
				Ph:   phComplete, Ts: usec(start), Dur: &dur,
				Pid: exportPid, Tid: dmaTid, Cat: "load-retry",
				Args: &tevArgs{Task: e.Task, Job: &job, Segment: &seg, Bytes: e.Bytes},
			})
		case Abort:
			// Close whatever slices the job held open, truncated at the
			// abort instant (the platform interval really did end here).
			// Keys are collected and sorted by segment first: map
			// iteration order must never leak into the exported JSON.
			closeOpen := func(open map[spanKey]int64, tid int, cat string) {
				var keys []spanKey
				for sk := range open {
					if sk.task == e.Task && sk.job == e.Job {
						keys = append(keys, sk)
					}
				}
				sort.Slice(keys, func(i, j int) bool { return keys[i].seg < keys[j].seg })
				for _, sk := range keys {
					s := sk.seg
					dur := usec(int64(e.At) - open[sk])
					events = append(events, tev{
						Name: fmt.Sprintf("%s#%d seg%d", sk.task, sk.job, sk.seg),
						Ph:   phComplete, Ts: usec(open[sk]), Dur: &dur,
						Pid: exportPid, Tid: tid, Cat: cat,
						Args: &tevArgs{Task: sk.task, Job: &job, Segment: &s},
					})
					delete(open, sk)
				}
			}
			closeOpen(openCompute, cpuTid, "compute")
			closeOpen(openLoad, dmaTid, "load")
			events = append(events, tev{
				Name: "abort", Ph: phInstant, Ts: usec(int64(e.At)),
				Pid: exportPid, Tid: tid, S: instScopeT,
				Args: &tevArgs{Task: e.Task, Job: &job},
			})
			events = append(events, tev{
				Name: fmt.Sprintf("%s#%d", e.Task, e.Job), Ph: phAsyncEnd,
				Ts: usec(int64(e.At)), Pid: exportPid, Tid: tid,
				Cat: "job", ID: fmt.Sprintf("%s#%d", e.Task, e.Job),
			})
		}
	}
	// In-flight spans at the horizon stay open deliberately: Perfetto
	// renders unfinished async spans, and truncating X slices at an
	// arbitrary horizon would fabricate end times. Only fully recorded
	// slices are emitted.

	if _, err := io.WriteString(w, "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	for i, ev := range events {
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		sep := ",\n"
		if i == len(events)-1 {
			sep = "\n"
		}
		if _, err := w.Write(append(append([]byte("  "), b...), sep...)); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "]}\n")
	return err
}
