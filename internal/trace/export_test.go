package trace

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"rtmdm/internal/sim"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the Trace Event Format golden file")

// exportTrace builds a two-task trace exercising every exported shape:
// compute and load slices, a zero-byte (omitted) load, overlapping job
// spans across tasks, and a deadline miss.
func exportTrace() (*Trace, []TaskInfo) {
	tr := &Trace{}
	add := func(at sim.Time, k Kind, task string, job, seg int, bytes int64) {
		tr.Add(Event{At: at, Kind: k, Task: task, Job: job, Segment: seg, Bytes: bytes})
	}
	add(0, Release, "kws", 0, -1, 0)
	add(0, Release, "det", 0, -1, 0)
	add(0, LoadStart, "kws", 0, 0, 4096)
	add(1000, LoadEnd, "kws", 0, 0, 4096)
	add(1000, ComputeStart, "kws", 0, 0, 0)
	add(1000, LoadStart, "kws", 0, 1, 0) // zero-byte: no DMA slice
	add(1000, LoadEnd, "kws", 0, 1, 0)
	add(3000, ComputeEnd, "kws", 0, 0, 0)
	add(3000, ComputeStart, "kws", 0, 1, 0)
	add(3000, LoadStart, "det", 0, 0, 8192)
	add(5000, LoadEnd, "det", 0, 0, 8192)
	add(6000, ComputeEnd, "kws", 0, 1, 0)
	add(6000, JobDone, "kws", 0, -1, 0)
	add(6000, ComputeStart, "det", 0, 0, 0)
	add(9000, ComputeEnd, "det", 0, 0, 0)
	add(10000, DeadlineMiss, "det", 0, -1, 0)
	infos := []TaskInfo{
		{Name: "kws", Period: 20000, Deadline: 20000, Segments: 2},
		{Name: "det", Period: 10000, Deadline: 10000, Segments: 2},
	}
	return tr, infos
}

// TestExportJSONGolden pins the exporter's byte-level output so the format
// stays stable for downstream tooling. Refresh deliberately with
// go test ./internal/trace -run ExportJSONGolden -update-golden.
func TestExportJSONGolden(t *testing.T) {
	tr, infos := exportTrace()
	var buf bytes.Buffer
	if err := ExportJSON(&buf, tr, infos); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "export_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update-golden)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("export drifted from golden file %s:\ngot:\n%s", golden, buf.String())
	}
}

// TestExportJSONValid decodes the export as generic JSON and checks the
// Trace Event Format contract: the envelope keys, phase-specific required
// fields, and the track layout documented in export.go.
func TestExportJSONValid(t *testing.T) {
	tr, infos := exportTrace()
	var buf bytes.Buffer
	if err := ExportJSON(&buf, tr, infos); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string           `json:"displayTimeUnit"`
		TraceEvents     []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ns" {
		t.Fatalf("displayTimeUnit = %q, want ns", doc.DisplayTimeUnit)
	}
	var computes, loads, instants, begins, ends int
	for _, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		switch ph {
		case "X":
			if _, ok := ev["dur"]; !ok {
				t.Fatalf("X event without dur: %v", ev)
			}
			switch int(ev["tid"].(float64)) {
			case cpuTid:
				computes++
			case dmaTid:
				loads++
			default:
				t.Fatalf("X event on unexpected track: %v", ev)
			}
		case "i":
			instants++
		case "b":
			begins++
		case "e":
			ends++
		case "M":
		default:
			t.Fatalf("unexpected phase %q", ph)
		}
	}
	// 3 compute slices, 2 non-zero loads (the zero-byte one omitted),
	// 2 releases + 1 miss, 2 job begins, 1 job end (det unfinished).
	if computes != 3 || loads != 2 || instants != 3 || begins != 2 || ends != 1 {
		t.Fatalf("event census = X-cpu %d, X-dma %d, i %d, b %d, e %d; want 3,2,3,2,1",
			computes, loads, instants, begins, ends)
	}
}

// TestExportJSONUnknownTask mirrors CheckInvariants: an event for a task
// absent from infos is an error, not a silent drop.
func TestExportJSONUnknownTask(t *testing.T) {
	tr := &Trace{}
	tr.Add(Event{At: 0, Kind: Release, Task: "ghost", Job: 0, Segment: -1})
	if err := ExportJSON(&bytes.Buffer{}, tr, []TaskInfo{{Name: "a", Segments: 1}}); err == nil {
		t.Fatal("expected an error for an event naming an unknown task")
	}
}
