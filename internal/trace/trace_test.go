package trace

import (
	"strings"
	"testing"

	"rtmdm/internal/sim"
)

func ti(name string, period, deadline sim.Duration, segs int) TaskInfo {
	return TaskInfo{Name: name, Period: period, Deadline: deadline, Segments: segs}
}

// goodTrace builds a minimal consistent trace: task a, 2 jobs, 2 segments,
// period 100, deadline 100.
func goodTrace() *Trace {
	tr := &Trace{}
	add := func(at sim.Time, k Kind, job, seg int) {
		var bytes int64
		if k == LoadStart || k == LoadEnd {
			bytes = 100
		}
		tr.Add(Event{At: at, Kind: k, Task: "a", Job: job, Segment: seg, Bytes: bytes})
	}
	// Job 0.
	add(0, Release, 0, -1)
	add(0, LoadStart, 0, 0)
	add(10, LoadEnd, 0, 0)
	add(10, ComputeStart, 0, 0)
	add(10, LoadStart, 0, 1) // prefetch next segment during compute
	add(20, LoadEnd, 0, 1)
	add(30, ComputeEnd, 0, 0)
	add(30, ComputeStart, 0, 1)
	add(50, ComputeEnd, 0, 1)
	add(50, JobDone, 0, -1)
	// Job 1.
	add(100, Release, 1, -1)
	add(100, LoadStart, 1, 0)
	add(110, LoadEnd, 1, 0)
	add(110, ComputeStart, 1, 0)
	add(130, ComputeEnd, 1, 0)
	add(130, LoadStart, 1, 1)
	add(140, LoadEnd, 1, 1)
	add(140, ComputeStart, 1, 1)
	add(160, ComputeEnd, 1, 1)
	add(160, JobDone, 1, -1)
	return tr
}

func TestInvariantsPassOnGoodTrace(t *testing.T) {
	tr := goodTrace()
	if err := tr.CheckInvariants([]TaskInfo{ti("a", 100, 100, 2)}); err != nil {
		t.Fatal(err)
	}
}

func TestMetricsOnGoodTrace(t *testing.T) {
	tr := goodTrace()
	m := tr.Analyze([]TaskInfo{ti("a", 100, 100, 2)}, 200)
	tm := m.PerTask["a"]
	if tm.Released != 2 || tm.Completed != 2 || tm.Misses != 0 {
		t.Fatalf("metrics: %+v", *tm)
	}
	if tm.MaxResponse != 60 {
		t.Fatalf("max response = %v, want 60", tm.MaxResponse)
	}
	if tm.AvgResponse() != 55 {
		t.Fatalf("avg response = %v, want 55", tm.AvgResponse())
	}
	if tm.MaxLateness != -40 {
		t.Fatalf("max lateness = %v, want -40", tm.MaxLateness)
	}
	if m.AnyMiss() {
		t.Fatal("AnyMiss on clean trace")
	}
	if m.TotalMissRatio() != 0 {
		t.Fatal("nonzero miss ratio on clean trace")
	}
}

func TestExplicitDeadlineMissCounted(t *testing.T) {
	tr := &Trace{}
	tr.Add(Event{At: 0, Kind: Release, Task: "a", Job: 0, Segment: -1})
	tr.Add(Event{At: 100, Kind: DeadlineMiss, Task: "a", Job: 0, Segment: -1})
	m := tr.Analyze([]TaskInfo{ti("a", 100, 100, 1)}, 200)
	if m.PerTask["a"].Misses != 1 {
		t.Fatal("explicit miss not counted")
	}
	if !m.AnyMiss() {
		t.Fatal("AnyMiss false")
	}
	if got := m.PerTask["a"].MissRatio(); got != 1.0 {
		t.Fatalf("miss ratio = %v", got)
	}
}

func TestUnfinishedJobPastDeadlineCountsAsMiss(t *testing.T) {
	tr := &Trace{}
	tr.Add(Event{At: 0, Kind: Release, Task: "a", Job: 0, Segment: -1})
	m := tr.Analyze([]TaskInfo{ti("a", 100, 50, 1)}, 200)
	tm := m.PerTask["a"]
	if tm.Unfinished != 1 || tm.Misses != 1 {
		t.Fatalf("unfinished-past-deadline: %+v", *tm)
	}
}

func TestUnfinishedJobBeforeDeadlineIsNotAMiss(t *testing.T) {
	tr := &Trace{}
	tr.Add(Event{At: 150, Kind: Release, Task: "a", Job: 0, Segment: -1})
	// Deadline at 150+100=250 > horizon 200: job still pending, no miss.
	// (Release offset must match: use Offset=150.)
	infos := []TaskInfo{{Name: "a", Period: 100, Deadline: 100, Offset: 150, Segments: 1}}
	m := tr.Analyze(infos, 200)
	tm := m.PerTask["a"]
	if tm.Misses != 0 || tm.Unfinished != 1 {
		t.Fatalf("pending job wrongly counted: %+v", *tm)
	}
}

func TestInvariantCPUOverlapDetected(t *testing.T) {
	tr := &Trace{}
	infos := []TaskInfo{ti("a", 100, 100, 1), ti("b", 100, 100, 1)}
	tr.Add(Event{At: 0, Kind: Release, Task: "a", Job: 0, Segment: -1})
	tr.Add(Event{At: 0, Kind: Release, Task: "b", Job: 0, Segment: -1})
	for _, tk := range []string{"a", "b"} {
		tr.Add(Event{At: 0, Kind: LoadStart, Task: tk, Job: 0, Segment: 0})
		tr.Add(Event{At: 0, Kind: LoadEnd, Task: tk, Job: 0, Segment: 0})
	}
	// Zero-byte loads are instantaneous: both may "overlap" legally.
	tr.Add(Event{At: 0, Kind: ComputeStart, Task: "a", Job: 0, Segment: 0})
	tr.Add(Event{At: 1, Kind: ComputeStart, Task: "b", Job: 0, Segment: 0})
	err := tr.CheckInvariants(infos)
	if err == nil || !strings.Contains(err.Error(), "CPU overlap") {
		t.Fatalf("want CPU overlap error, got %v", err)
	}
}

func TestInvariantDMAOverlapDetected(t *testing.T) {
	tr := &Trace{}
	infos := []TaskInfo{ti("a", 100, 100, 2)}
	tr.Add(Event{At: 0, Kind: Release, Task: "a", Job: 0, Segment: -1})
	tr.Add(Event{At: 0, Kind: LoadStart, Task: "a", Job: 0, Segment: 0, Bytes: 10})
	tr.Add(Event{At: 1, Kind: LoadStart, Task: "a", Job: 0, Segment: 1, Bytes: 10})
	err := tr.CheckInvariants(infos)
	if err == nil || !strings.Contains(err.Error(), "DMA overlap") {
		t.Fatalf("want DMA overlap error, got %v", err)
	}
}

func TestInvariantComputeBeforeLoadDetected(t *testing.T) {
	tr := &Trace{}
	infos := []TaskInfo{ti("a", 100, 100, 1)}
	tr.Add(Event{At: 0, Kind: Release, Task: "a", Job: 0, Segment: -1})
	tr.Add(Event{At: 0, Kind: ComputeStart, Task: "a", Job: 0, Segment: 0})
	err := tr.CheckInvariants(infos)
	if err == nil || !strings.Contains(err.Error(), "before its load") {
		t.Fatalf("want load-before-compute error, got %v", err)
	}
}

func TestInvariantSegmentOrderDetected(t *testing.T) {
	tr := &Trace{}
	infos := []TaskInfo{ti("a", 100, 100, 2)}
	tr.Add(Event{At: 0, Kind: Release, Task: "a", Job: 0, Segment: -1})
	tr.Add(Event{At: 0, Kind: LoadStart, Task: "a", Job: 0, Segment: 1})
	tr.Add(Event{At: 1, Kind: LoadEnd, Task: "a", Job: 0, Segment: 1})
	tr.Add(Event{At: 1, Kind: ComputeStart, Task: "a", Job: 0, Segment: 1})
	err := tr.CheckInvariants(infos)
	if err == nil || !strings.Contains(err.Error(), "first computed segment") {
		t.Fatalf("want segment order error, got %v", err)
	}
}

func TestInvariantNonPeriodicReleaseDetected(t *testing.T) {
	tr := &Trace{}
	infos := []TaskInfo{ti("a", 100, 100, 1)}
	tr.Add(Event{At: 3, Kind: Release, Task: "a", Job: 0, Segment: -1})
	err := tr.CheckInvariants(infos)
	if err == nil || !strings.Contains(err.Error(), "released at") {
		t.Fatalf("want periodic release error, got %v", err)
	}
}

func TestInvariantJobDoneMustMatchLastSegment(t *testing.T) {
	tr := &Trace{}
	infos := []TaskInfo{ti("a", 100, 100, 2)}
	tr.Add(Event{At: 0, Kind: Release, Task: "a", Job: 0, Segment: -1})
	tr.Add(Event{At: 0, Kind: LoadStart, Task: "a", Job: 0, Segment: 0})
	tr.Add(Event{At: 1, Kind: LoadEnd, Task: "a", Job: 0, Segment: 0})
	tr.Add(Event{At: 1, Kind: ComputeStart, Task: "a", Job: 0, Segment: 0})
	tr.Add(Event{At: 2, Kind: ComputeEnd, Task: "a", Job: 0, Segment: 0})
	tr.Add(Event{At: 2, Kind: JobDone, Task: "a", Job: 0, Segment: -1})
	err := tr.CheckInvariants(infos)
	if err == nil || !strings.Contains(err.Error(), "job-done") {
		t.Fatalf("want job-done mismatch error, got %v", err)
	}
}

func TestAddRejectsTimeTravel(t *testing.T) {
	tr := &Trace{}
	tr.Add(Event{At: 10, Kind: Release, Task: "a"})
	defer func() {
		if recover() == nil {
			t.Fatal("backwards timestamp accepted")
		}
	}()
	tr.Add(Event{At: 5, Kind: Release, Task: "a"})
}

func TestDumpWritesAllEvents(t *testing.T) {
	tr := goodTrace()
	var sb strings.Builder
	tr.Dump(&sb)
	lines := strings.Count(sb.String(), "\n")
	if lines != tr.Len() {
		t.Fatalf("dump has %d lines, want %d", lines, tr.Len())
	}
	if !strings.Contains(sb.String(), "compute-start a#0 seg0") {
		t.Fatalf("dump content unexpected:\n%s", sb.String())
	}
}

func TestEventString(t *testing.T) {
	e := Event{At: 1500, Kind: JobDone, Task: "x", Job: 2, Segment: -1}
	if got := e.String(); got != "1.5us job-done x#2" {
		t.Fatalf("Event.String() = %q", got)
	}
}

func TestPercentiles(t *testing.T) {
	tm := &TaskMetrics{}
	for i := 1; i <= 100; i++ {
		tm.Responses = append(tm.Responses, sim.Duration(i))
	}
	cases := []struct {
		p    float64
		want sim.Duration
	}{
		{50, 50}, {95, 95}, {99, 99}, {100, 100}, {1, 1}, {150, 100},
	}
	for _, c := range cases {
		if got := tm.Percentile(c.p); got != c.want {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
	if (&TaskMetrics{}).Percentile(50) != 0 {
		t.Error("empty metrics percentile != 0")
	}
	if tm.Percentile(0) != 0 {
		t.Error("P0 should be 0")
	}
	// Percentile must not mutate the raw series order.
	tm2 := &TaskMetrics{Responses: []sim.Duration{30, 10, 20}}
	tm2.Percentile(50)
	if tm2.Responses[0] != 30 {
		t.Error("Percentile reordered the raw series")
	}
}

func TestAnalyzeRecordsResponseSeries(t *testing.T) {
	tr := goodTrace()
	m := tr.Analyze([]TaskInfo{ti("a", 100, 100, 2)}, 200)
	tm := m.PerTask["a"]
	if len(tm.Responses) != 2 || tm.Responses[0] != 50 || tm.Responses[1] != 60 {
		t.Fatalf("response series %v", tm.Responses)
	}
	if tm.Percentile(50) != 50 || tm.Percentile(100) != 60 {
		t.Fatalf("percentiles %v %v", tm.Percentile(50), tm.Percentile(100))
	}
}

func TestTraceCSV(t *testing.T) {
	tr := goodTrace()
	var sb strings.Builder
	if err := tr.CSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != tr.Len()+1 {
		t.Fatalf("csv rows = %d, want %d", len(lines), tr.Len()+1)
	}
	if lines[0] != "at_ns,kind,task,job,segment,bytes" {
		t.Fatalf("csv header %q", lines[0])
	}
	if lines[1] != "0,release,a,0,-1,0" {
		t.Fatalf("csv first row %q", lines[1])
	}
}

func TestInvariantMissPlacementChecked(t *testing.T) {
	infos := []TaskInfo{ti("a", 100, 50, 1)}
	// Wrong instant.
	tr := &Trace{}
	tr.Add(Event{At: 0, Kind: Release, Task: "a", Job: 0, Segment: -1})
	tr.Add(Event{At: 49, Kind: DeadlineMiss, Task: "a", Job: 0, Segment: -1})
	if err := tr.CheckInvariants(infos); err == nil || !strings.Contains(err.Error(), "absolute deadline") {
		t.Fatalf("misplaced miss accepted: %v", err)
	}
	// Miss without release.
	tr2 := &Trace{}
	tr2.Add(Event{At: 50, Kind: DeadlineMiss, Task: "a", Job: 0, Segment: -1})
	if err := tr2.CheckInvariants(infos); err == nil || !strings.Contains(err.Error(), "without a release") {
		t.Fatalf("orphan miss accepted: %v", err)
	}
	// Miss after completion.
	tr3 := &Trace{}
	tr3.Add(Event{At: 0, Kind: Release, Task: "a", Job: 0, Segment: -1})
	tr3.Add(Event{At: 0, Kind: LoadStart, Task: "a", Job: 0, Segment: 0, Bytes: 5})
	tr3.Add(Event{At: 5, Kind: LoadEnd, Task: "a", Job: 0, Segment: 0, Bytes: 5})
	tr3.Add(Event{At: 5, Kind: ComputeStart, Task: "a", Job: 0, Segment: 0})
	tr3.Add(Event{At: 10, Kind: ComputeEnd, Task: "a", Job: 0, Segment: 0})
	tr3.Add(Event{At: 10, Kind: JobDone, Task: "a", Job: 0, Segment: -1})
	tr3.Add(Event{At: 50, Kind: DeadlineMiss, Task: "a", Job: 0, Segment: -1})
	if err := tr3.CheckInvariants(infos); err == nil || !strings.Contains(err.Error(), "after the job completed") {
		t.Fatalf("post-completion miss accepted: %v", err)
	}
}

func TestInvariantJitteredReleaseWindow(t *testing.T) {
	infos := []TaskInfo{{Name: "a", Period: 100, Deadline: 100, Jitter: 20, Segments: 1}}
	tr := &Trace{}
	tr.Add(Event{At: 15, Kind: Release, Task: "a", Job: 0, Segment: -1})  // within [0, 20]
	tr.Add(Event{At: 105, Kind: Release, Task: "a", Job: 1, Segment: -1}) // within [100, 120]
	if err := tr.CheckInvariants(infos); err != nil {
		t.Fatal(err)
	}
	tr.Add(Event{At: 230, Kind: Release, Task: "a", Job: 2, Segment: -1}) // outside [200, 220]
	if err := tr.CheckInvariants(infos); err == nil {
		t.Fatal("out-of-window release accepted")
	}
}
