package trace

import (
	"fmt"
	"io"
	"sort"

	"rtmdm/internal/sim"
)

// Timeline renders a trace window as an ASCII Gantt chart: one lane for the
// CPU (uppercase letters = which task computes), one for the DMA (lowercase
// = which task's parameters transfer), and one lane per task showing job
// lifecycles (R release, = pending, D done, X deadline miss, A abort).
type Timeline struct {
	From, To sim.Time
	// Width is the number of character columns (default 100).
	Width int
}

// Render writes the chart. Tasks are assigned letters A, B, … in the order
// of the supplied infos.
func (tl Timeline) Render(w io.Writer, tr *Trace, infos []TaskInfo) error {
	if tl.To <= tl.From {
		return fmt.Errorf("trace: empty timeline window [%v, %v)", tl.From, tl.To)
	}
	width := tl.Width
	if width <= 0 {
		width = 100
	}
	span := tl.To - tl.From
	col := func(at sim.Time) int {
		c := int(int64(at-tl.From) * int64(width) / int64(span))
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		return c
	}

	letter := map[string]byte{}
	names := make([]string, len(infos))
	for i, ti := range infos {
		names[i] = ti.Name
	}
	sort.Strings(names)
	for i, n := range names {
		letter[n] = byte('A' + i%26)
	}

	blank := func() []byte {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		return row
	}
	cpu, dma := blank(), blank()
	taskRows := map[string][]byte{}
	for _, n := range names {
		taskRows[n] = blank()
	}
	fill := func(row []byte, from, to sim.Time, ch byte) {
		if to < tl.From || from > tl.To {
			return
		}
		a, b := col(from), col(to)
		for i := a; i <= b; i++ {
			row[i] = ch
		}
	}

	type open struct {
		at  sim.Time
		seg int
	}
	cpuOpen := map[string]open{}
	dmaOpen := map[string]open{}
	released := map[string]map[int]sim.Time{}
	for _, e := range tr.Events {
		l, known := letter[e.Task]
		if !known {
			continue
		}
		switch e.Kind {
		case ComputeStart:
			cpuOpen[e.Task] = open{e.At, e.Segment}
		case ComputeEnd:
			if o, ok := cpuOpen[e.Task]; ok {
				fill(cpu, o.at, e.At, l)
				delete(cpuOpen, e.Task)
			}
		case LoadStart:
			if e.Bytes > 0 {
				dmaOpen[e.Task] = open{e.At, e.Segment}
			}
		case LoadEnd, DMARetry:
			if o, ok := dmaOpen[e.Task]; ok {
				fill(dma, o.at, e.At, l+('a'-'A'))
				delete(dmaOpen, e.Task)
			}
		case Release:
			if released[e.Task] == nil {
				released[e.Task] = map[int]sim.Time{}
			}
			released[e.Task][e.Job] = e.At
		case JobDone:
			if rel, ok := released[e.Task][e.Job]; ok {
				fill(taskRows[e.Task], rel, e.At, '=')
				if c := col(rel); rel >= tl.From && rel <= tl.To {
					taskRows[e.Task][c] = 'R'
				}
				if e.At >= tl.From && e.At <= tl.To {
					taskRows[e.Task][col(e.At)] = 'D'
				}
			}
		case DeadlineMiss:
			if e.At >= tl.From && e.At <= tl.To {
				taskRows[e.Task][col(e.At)] = 'X'
			}
		case Abort:
			// The abort reclaims both devices and ends the job's lifecycle.
			if o, ok := cpuOpen[e.Task]; ok {
				fill(cpu, o.at, e.At, l)
				delete(cpuOpen, e.Task)
			}
			if o, ok := dmaOpen[e.Task]; ok {
				fill(dma, o.at, e.At, l+('a'-'A'))
				delete(dmaOpen, e.Task)
			}
			if rel, ok := released[e.Task][e.Job]; ok {
				fill(taskRows[e.Task], rel, e.At, '=')
				if rel >= tl.From && rel <= tl.To {
					taskRows[e.Task][col(rel)] = 'R'
				}
			}
			if e.At >= tl.From && e.At <= tl.To {
				taskRows[e.Task][col(e.At)] = 'A'
			}
			delete(released[e.Task], e.Job)
		}
	}
	// Still-open intervals extend to the window end.
	for tk, o := range cpuOpen {
		fill(cpu, o.at, tl.To, letter[tk])
	}
	for tk, o := range dmaOpen {
		fill(dma, o.at, tl.To, letter[tk]+('a'-'A'))
	}
	// Pending (released, not done) jobs.
	for tk, jobs := range released {
		row := taskRows[tk]
		for _, rel := range jobs {
			if row[col(rel)] == '.' {
				fill(row, rel, tl.To, '=')
				if rel >= tl.From && rel <= tl.To {
					row[col(rel)] = 'R'
				}
			}
		}
	}

	fmt.Fprintf(w, "timeline %v .. %v (%v/col)\n", tl.From, tl.To, sim.Duration(int64(span)/int64(width)))
	nameW := 4
	for _, n := range names {
		if len(n) > nameW {
			nameW = len(n)
		}
	}
	fmt.Fprintf(w, "%-*s %s\n", nameW, "CPU", cpu)
	fmt.Fprintf(w, "%-*s %s\n", nameW, "DMA", dma)
	for _, n := range names {
		fmt.Fprintf(w, "%-*s %s\n", nameW, n, taskRows[n])
	}
	fmt.Fprintf(w, "%-*s ", nameW, "key")
	for _, n := range names {
		fmt.Fprintf(w, "%c=%s ", letter[n], n)
	}
	fmt.Fprintln(w, "(uppercase compute, lowercase load; R release, D done, X miss, A abort)")
	return nil
}
